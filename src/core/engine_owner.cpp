#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "annsim/common/backoff.hpp"
#include "annsim/common/error.hpp"
#include "annsim/common/timer.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/core/protocol.hpp"

namespace annsim::core {

// Multiple-owner strategy (§IV): the VP tree is shared by all workers; each
// query's owner is determined by a hash; owners route and dispatch their own
// queries, merge the partial results, and forward the final answers to the
// master. The paper found a small win over master-worker that deteriorates at
// scale because this strategy cannot be combined with workgroup replication.

namespace {

/// The paper's "hash function" assigning queries to owners.
std::size_t owner_of(std::size_t query_id, std::size_t n_workers) {
  return (query_id * 0x9e3779b97f4a7c15ULL >> 32) % n_workers;
}

}  // namespace

void DistributedAnnEngine::master_search_owner(mpi::Comm& world,
                                               const data::Dataset& queries,
                                               std::size_t k, std::size_t ef,
                                               data::KnnResults& results,
                                               SearchStats& stats,
                                               const QueryDoneFn& on_query_done) {
  const std::size_t P = config_.n_workers;
  const std::size_t nq = queries.size();
  PhaseTimer dispatch_t, merge_t;

  // --- scatter query batches to owners.
  std::vector<std::vector<std::uint32_t>> batch_ids(P);
  for (std::size_t q = 0; q < nq; ++q) {
    batch_ids[owner_of(q, P)].push_back(std::uint32_t(q));
  }
  for (std::size_t w = 0; w < P; ++w) {
    BinaryWriter wtr;
    wtr.write(std::uint32_t(k));
    wtr.write(std::uint32_t(ef));
    wtr.write(std::uint64_t(batch_ids[w].size()));
    for (std::uint32_t qid : batch_ids[w]) {
      wtr.write(qid);
      const float* qv = queries.row(qid);
      wtr.write_span(std::span<const float>(qv, queries.dim()));
    }
    ScopedPhase p(dispatch_t);
    (void)world.isend(int(w) + 1, kTagOwnerBatch, wtr.bytes());
  }

  // --- collect per-destination dispatch counts; tell each worker how many
  // jobs to expect so its thread team can terminate.
  std::vector<std::uint64_t> totals(P, 0);
  std::uint64_t total_jobs = 0;
  for (std::size_t i = 0; i < P; ++i) {
    mpi::Message m = world.recv(mpi::kAnySource, kTagDispatchCounts);
    BinaryReader rd(m.payload);
    auto counts = rd.read_vector<std::uint64_t>();
    ANNSIM_CHECK(counts.size() == P);
    for (std::size_t w = 0; w < P; ++w) {
      totals[w] += counts[w];
      total_jobs += counts[w];
    }
  }
  for (std::size_t w = 0; w < P; ++w) {
    BinaryWriter wtr;
    wtr.write(totals[w]);
    ScopedPhase p(dispatch_t);
    (void)world.isend(int(w) + 1, kTagExpect, wtr.bytes());
  }

  // --- collect the merged per-query answers from the owners.
  for (std::size_t i = 0; i < nq; ++i) {
    mpi::Message m = world.recv(mpi::kAnySource, kTagResult);
    ScopedPhase p(merge_t);
    LocalResult r = decode_local_result(m.payload);
    results[r.query_id] = std::move(r.neighbors);
    // Owner mode runs without failure detection; coverage is always full
    // (a zero/zero QueryCoverage is never degraded).
    if (on_query_done) on_query_done(r.query_id, results[r.query_id], {});
  }

  // --- completion notices.
  for (std::size_t w = 0; w < P; ++w) {
    mpi::Message m = world.recv(mpi::kAnySource, kTagDone);
    BinaryReader rd(m.payload);
    const auto notice = rd.read<DoneNotice>();
    stats.jobs_per_worker[std::size_t(m.source) - 1] = notice.jobs_processed;
    stats.worker_compute_seconds += notice.compute_seconds;
    stats.worker_comm_seconds += notice.comm_seconds;
    stats.master_route_seconds += notice.route_seconds;  // owner-side routing
  }

  stats.master_dispatch_seconds = dispatch_t.total_seconds();
  stats.master_merge_seconds = merge_t.total_seconds();
  stats.total_jobs = total_jobs;
  stats.mean_partitions_per_query = nq ? double(total_jobs) / double(nq) : 0.0;
}

void DistributedAnnEngine::worker_search_owner(mpi::Comm& world,
                                               const data::Dataset& queries,
                                               std::size_t k, std::size_t ef) {
  (void)queries;  // owners receive their queries via kTagOwnerBatch
  (void)ef;
  const std::size_t P = config_.n_workers;
  const std::size_t me = std::size_t(world.rank()) - 1;
  const auto& tree = *router_;  // shared VP tree (replicated in the paper)

  std::atomic<bool> all_done{false};
  std::atomic<std::uint64_t> jobs{0};
  std::atomic<std::uint64_t> expected{~0ULL};
  std::mutex agg_mu;
  double compute_s = 0.0, comm_s = 0.0;

  // Processing threads: identical to Algorithm 4, but jobs arrive from any
  // owner and results return to the job's owner.
  auto thread_main = [&] {
    double my_compute = 0.0, my_comm = 0.0;
    for (;;) {
      mpi::Request req = world.irecv(mpi::kAnySource, kTagQuery);
      Backoff backoff;
      bool cancelled = false;
      while (!req.test()) {
        const std::uint64_t exp = expected.load(std::memory_order_acquire);
        if (all_done.load(std::memory_order_acquire) ||
            jobs.load(std::memory_order_acquire) >= exp) {
          if (req.cancel()) {
            cancelled = true;
            break;
          }
        }
        backoff.pause();
      }
      if (cancelled) break;
      mpi::Message m = req.take();

      const QueryJob job = decode_query_job(m.payload);
      const auto it = workers_[me].find(job.partition);
      ANNSIM_CHECK_MSG(it != workers_[me].end(),
                       "worker " << me << " has no replica of partition "
                                 << job.partition);
      WallTimer tc;
      auto local = it->second.index->search(job.query.data(), job.k, job.ef);
      my_compute += tc.seconds();

      WallTimer tm;
      LocalResult r;
      r.query_id = job.query_id;
      r.partition = job.partition;
      r.neighbors = std::move(local);
      (void)world.isend(int(job.reply_to), kTagOwnerResult,
                        encode_local_result(r));
      my_comm += tm.seconds();

      const std::uint64_t done_now = jobs.fetch_add(1) + 1;
      if (done_now >= expected.load(std::memory_order_acquire)) {
        all_done.store(true, std::memory_order_release);
      }
    }
    std::lock_guard lk(agg_mu);
    compute_s += my_compute;
    comm_s += my_comm;
  };

  std::vector<std::thread> team;
  team.reserve(config_.threads_per_worker);
  for (std::size_t t = 0; t < config_.threads_per_worker; ++t) {
    team.emplace_back(thread_main);
  }

  // --- owner duties on the main thread.
  PhaseTimer route_t;
  mpi::Message batch = world.recv(0, kTagOwnerBatch);
  BinaryReader rd(batch.payload);
  const auto kk = rd.read<std::uint32_t>();
  const auto my_ef = rd.read<std::uint32_t>();
  const auto n_mine = rd.read<std::uint64_t>();
  ANNSIM_CHECK(kk == std::uint32_t(k));

  struct OwnedQuery {
    std::uint32_t qid;
    std::vector<float> vec;
  };
  std::vector<OwnedQuery> mine;
  mine.reserve(n_mine);
  for (std::uint64_t i = 0; i < n_mine; ++i) {
    OwnedQuery oq;
    oq.qid = rd.read<std::uint32_t>();
    oq.vec = rd.read_vector<float>();
    mine.push_back(std::move(oq));
  }

  // Route and dispatch my queries (no replication in this strategy — the
  // paper notes it "does not lend itself to be optimized for load
  // balancing").
  std::vector<std::uint64_t> counts(P, 0);
  std::uint64_t my_dispatched = 0;
  for (const auto& oq : mine) {
    route_t.start();
    auto plan =
        tree.route_topk(oq.vec.data(), std::min(config_.n_probe, P)).partitions;
    route_t.stop();
    for (PartitionId d : plan) {
      QueryJob job;
      job.query_id = oq.qid;
      job.partition = d;
      job.k = std::uint32_t(k);
      job.ef = my_ef;
      job.reply_to = std::uint32_t(me) + 1;  // world rank of this owner
      job.query = oq.vec;
      (void)world.isend(int(d) + 1, kTagQuery, encode_query_job(job));
      ++counts[d];
      ++my_dispatched;
    }
  }
  {
    BinaryWriter w;
    w.write_vector(counts);
    world.send(0, kTagDispatchCounts, w.bytes());
  }

  // Learn how many jobs my processing threads must absorb.
  {
    mpi::Message m = world.recv(0, kTagExpect);
    BinaryReader r(m.payload);
    expected.store(r.read<std::uint64_t>(), std::memory_order_release);
    if (jobs.load() >= expected.load()) {
      all_done.store(true, std::memory_order_release);
    }
  }

  // Merge partial results for my queries as they return.
  std::map<std::uint32_t, TopK> acc;
  for (const auto& oq : mine) acc.emplace(oq.qid, TopK(k));
  for (std::uint64_t i = 0; i < my_dispatched; ++i) {
    mpi::Message m = world.recv(mpi::kAnySource, kTagOwnerResult);
    LocalResult r = decode_local_result(m.payload);
    acc.at(r.query_id).merge(r.neighbors);
  }
  for (auto& [qid, topk] : acc) {
    LocalResult r;
    r.query_id = qid;
    r.neighbors = topk.take_sorted();
    (void)world.isend(0, kTagResult, encode_local_result(r));
  }

  for (auto& t : team) t.join();

  DoneNotice notice;
  notice.jobs_processed = jobs.load();
  notice.compute_seconds = compute_s;
  notice.comm_seconds = comm_s;
  notice.route_seconds = route_t.total_seconds();
  BinaryWriter w;
  w.write(notice);
  world.send_reserved(0, kTagDone, w.bytes());
}

}  // namespace annsim::core
