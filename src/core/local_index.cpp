#include "annsim/core/local_index.hpp"

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/segment/segmented_index.hpp"

namespace annsim::core {

namespace {

[[noreturn]] void throw_read_only(LocalIndexKind kind, const char* op) {
  std::ostringstream os;
  os << "LocalIndex::" << op << ": '" << local_index_kind_name(kind)
     << "' is a read-only index kind; streaming writes need kind=segmented";
  throw Error(os.str());
}

}  // namespace

void LocalIndex::insert(std::span<const float> /*vec*/, GlobalId /*id*/) {
  throw_read_only(kind(), "insert");
}

bool LocalIndex::erase(GlobalId /*id*/) { throw_read_only(kind(), "erase"); }

bool LocalIndex::compact(ThreadPool* /*pool*/) {
  throw_read_only(kind(), "compact");
}

namespace {

class HnswLocalIndex final : public LocalIndex {
 public:
  HnswLocalIndex(hnsw::HnswIndex index) : index_(std::move(index)) {
    // Both construction paths (build(), from_bytes()) already hand over a
    // frozen index; freeze() is idempotent and makes the read-optimized
    // flat form a guarantee of this wrapper rather than a convention.
    index_.freeze();
  }

  std::vector<Neighbor> search(const float* query, std::size_t k,
                               std::size_t ef) const override {
    return index_.search(query, k, ef);
  }

  LocalIndexKind kind() const noexcept override { return LocalIndexKind::kHnsw; }
  std::size_t size() const noexcept override { return index_.size(); }

  std::vector<std::byte> to_bytes() const override { return index_.to_bytes(); }

 private:
  hnsw::HnswIndex index_;
};

class BruteForceLocalIndex final : public LocalIndex {
 public:
  BruteForceLocalIndex(const data::Dataset* data, simd::Metric metric)
      : index_(data, metric), n_(data->size()) {}

  std::vector<Neighbor> search(const float* query, std::size_t k,
                               std::size_t /*ef*/) const override {
    return index_.search(query, k);
  }

  LocalIndexKind kind() const noexcept override {
    return LocalIndexKind::kBruteForce;
  }
  std::size_t size() const noexcept override { return n_; }

  std::vector<std::byte> to_bytes() const override { return {}; }  // stateless

 private:
  hnsw::BruteForceIndex index_;
  std::size_t n_;
};

class VpTreeLocalIndex final : public LocalIndex {
 public:
  VpTreeLocalIndex(const data::Dataset* data, simd::Metric metric) : tree_([&] {
    vptree::VpTreeParams p;
    p.metric = metric;
    return vptree::VpTree(data, p);
  }()) {}

  std::vector<Neighbor> search(const float* query, std::size_t k,
                               std::size_t /*ef*/) const override {
    return tree_.search(query, k);
  }

  LocalIndexKind kind() const noexcept override { return LocalIndexKind::kVpTree; }
  std::size_t size() const noexcept override { return tree_.size(); }

  // The tree rebuilds deterministically from the data; ship nothing.
  std::vector<std::byte> to_bytes() const override { return {}; }

 private:
  vptree::VpTree tree_;
};

class IvfPqLocalIndex final : public LocalIndex {
 public:
  IvfPqLocalIndex(const data::Dataset* data, pq::IvfPqParams params)
      : index_(pq::IvfPqIndex::build(
            *data, clamp_params(std::move(params), data->size()))) {}

  std::vector<Neighbor> search(const float* query, std::size_t k,
                               std::size_t ef) const override {
    // Interpret the beam-width hint as nprobe (both are the recall dial).
    return index_.search(query, k, ef);
  }

  LocalIndexKind kind() const noexcept override { return LocalIndexKind::kIvfPq; }
  std::size_t size() const noexcept override { return index_.size(); }

  // IVF-PQ rebuilds deterministically from the partition data; replicas
  // re-train rather than ship codebooks.
  std::vector<std::byte> to_bytes() const override { return {}; }

 private:
  static pq::IvfPqParams clamp_params(pq::IvfPqParams p, std::size_t n) {
    p.nlist = std::min(p.nlist, std::max<std::size_t>(1, n / 8));
    p.pq.ks = std::min(p.pq.ks, n);
    return p;
  }

  pq::IvfPqIndex index_;
};

/// Adapter exposing segment::SegmentedIndex through the LocalIndex plug
/// point. Unlike the read-only kinds it *owns* its data (segments reference
/// their own frozen Datasets; the delta pre-allocates), so the partition
/// Dataset handed to the factories is copied once at build and unused on the
/// from_bytes path — replicas ship the full image in the index bytes.
class SegmentedLocalIndex final : public LocalIndex {
 public:
  explicit SegmentedLocalIndex(std::unique_ptr<segment::SegmentedIndex> idx)
      : idx_(std::move(idx)) {}

  std::vector<Neighbor> search(const float* query, std::size_t k,
                               std::size_t ef) const override {
    return idx_->search(query, k, ef);
  }

  LocalIndexKind kind() const noexcept override {
    return LocalIndexKind::kSegmented;
  }
  std::size_t size() const noexcept override { return idx_->size(); }

  std::vector<std::byte> to_bytes() const override { return idx_->to_bytes(); }

  bool supports_writes() const noexcept override { return true; }
  void insert(std::span<const float> vec, GlobalId id) override {
    idx_->insert(vec, id);
  }
  bool erase(GlobalId id) override { return idx_->erase(id); }
  bool compact(ThreadPool* pool) override { return idx_->compact(pool); }
  std::size_t delta_fill() const override { return idx_->delta_fill(); }
  const segment::SegmentedIndex* segmented() const noexcept override {
    return idx_.get();
  }

 private:
  std::unique_ptr<segment::SegmentedIndex> idx_;
};

segment::SegmentedParams segmented_params(const LocalIndexParams& params) {
  segment::SegmentedParams sp;
  sp.hnsw = params.hnsw;
  sp.hnsw.metric = params.metric;
  sp.delta_capacity = params.segment_delta_capacity;
  sp.quantize_frozen = params.quantize_frozen;
  sp.float_cache_fraction = params.float_cache_fraction;
  return sp;
}

}  // namespace

const char* local_index_kind_name(LocalIndexKind kind) noexcept {
  switch (kind) {
    case LocalIndexKind::kHnsw: return "hnsw";
    case LocalIndexKind::kBruteForce: return "bruteforce";
    case LocalIndexKind::kVpTree: return "vptree";
    case LocalIndexKind::kIvfPq: return "ivfpq";
    case LocalIndexKind::kSegmented: return "segmented";
  }
  return "?";
}

std::unique_ptr<LocalIndex> build_local_index(const data::Dataset* data,
                                              const LocalIndexParams& params,
                                              ThreadPool* pool) {
  ANNSIM_CHECK(data != nullptr);
  switch (params.kind) {
    case LocalIndexKind::kHnsw: {
      hnsw::HnswParams hp = params.hnsw;
      hp.metric = params.metric;
      hnsw::HnswIndex index(data, hp);
      index.build(pool);
      return std::make_unique<HnswLocalIndex>(std::move(index));
    }
    case LocalIndexKind::kBruteForce:
      return std::make_unique<BruteForceLocalIndex>(data, params.metric);
    case LocalIndexKind::kVpTree:
      return std::make_unique<VpTreeLocalIndex>(data, params.metric);
    case LocalIndexKind::kIvfPq:
      ANNSIM_CHECK_MSG(params.metric == simd::Metric::kL2,
                       "IVF-PQ local index supports L2 only");
      return std::make_unique<IvfPqLocalIndex>(data, params.ivfpq);
    case LocalIndexKind::kSegmented:
      return std::make_unique<SegmentedLocalIndex>(
          std::make_unique<segment::SegmentedIndex>(
              data->slice(0, data->size()), segmented_params(params), pool));
  }
  ANNSIM_CHECK_MSG(false, "unknown local index kind");
  return nullptr;
}

std::unique_ptr<LocalIndex> local_index_from_bytes(
    std::span<const std::byte> bytes, const data::Dataset* data,
    const LocalIndexParams& params) {
  ANNSIM_CHECK(data != nullptr);
  switch (params.kind) {
    case LocalIndexKind::kHnsw:
      // Params (M, ef_construction, metric) travel inside the byte image.
      return std::make_unique<HnswLocalIndex>(
          hnsw::HnswIndex::from_bytes(bytes, data));
    case LocalIndexKind::kBruteForce:
      return std::make_unique<BruteForceLocalIndex>(data, params.metric);
    case LocalIndexKind::kVpTree:
      return std::make_unique<VpTreeLocalIndex>(data, params.metric);
    case LocalIndexKind::kIvfPq:
      return std::make_unique<IvfPqLocalIndex>(data, params.ivfpq);
    case LocalIndexKind::kSegmented: {
      // The image is self-contained (it owns its vectors); `data` is the
      // replica's empty placeholder Dataset, used only to sanity-check dim.
      auto idx = segment::SegmentedIndex::from_bytes(bytes);
      ANNSIM_CHECK_MSG(data->dim() == 0 || data->dim() == idx->dim(),
                       "segmented image dim " << idx->dim()
                                              << " != replica dim "
                                              << data->dim());
      return std::make_unique<SegmentedLocalIndex>(std::move(idx));
    }
  }
  ANNSIM_CHECK_MSG(false, "unknown local index kind");
  return nullptr;
}

}  // namespace annsim::core
