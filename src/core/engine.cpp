#include "annsim/core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <filesystem>
#include <fstream>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>

#include "annsim/common/backoff.hpp"
#include "annsim/common/error.hpp"
#include "annsim/common/log.hpp"
#include "annsim/common/timer.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/core/dataset_transfer.hpp"
#include "annsim/core/protocol.hpp"
#include "annsim/recovery/checkpoint.hpp"
#include "annsim/segment/segmented_index.hpp"

namespace annsim::core {

// Validate outside the SPMD region: a rank that throws mid-collective would
// leave its peers blocked, as in real MPI. Field-specific messages so a
// misconfigured caller learns which knob is wrong, not just that something is.
void validate_engine_config(const EngineConfig& config) {
  ANNSIM_CHECK_MSG(config.n_workers >= 1,
                   "n_workers must be nonzero: the engine needs at least one "
                   "worker process");
  ANNSIM_CHECK_MSG(std::has_single_bit(config.n_workers),
                   "n_workers must be a power of two (got "
                       << config.n_workers << ")");
  ANNSIM_CHECK_MSG(config.replication >= 1,
                   "replication must be nonzero (r=1 means no replication)");
  ANNSIM_CHECK_MSG(config.replication <= config.n_workers,
                   "replication (" << config.replication
                                   << ") cannot exceed n_workers ("
                                   << config.n_workers
                                   << "): a workgroup has at most P members");
  ANNSIM_CHECK_MSG(config.n_probe >= 1,
                   "n_probe must be nonzero: every query probes at least one "
                   "partition");
  ANNSIM_CHECK_MSG(config.threads_per_worker >= 1,
                   "threads_per_worker must be nonzero");
  if (config.strategy == DispatchStrategy::kMultipleOwner) {
    ANNSIM_CHECK_MSG(!config.one_sided && !config.exact_routing,
                     "multiple-owner mode supports two-sided single-pass only");
  }
  ANNSIM_CHECK_MSG(simd::is_true_metric(config.hnsw.metric),
                   "VP-tree partitioning requires a true metric (L2 or L1)");
  if (config.local_index == LocalIndexKind::kIvfPq) {
    ANNSIM_CHECK_MSG(config.hnsw.metric == simd::Metric::kL2,
                     "IVF-PQ local indexes support L2 only");
  }
  if (config.local_index == LocalIndexKind::kSegmented) {
    ANNSIM_CHECK_MSG(config.segment_delta_capacity >= 1,
                     "segment_delta_capacity must be nonzero: the mutable "
                     "delta needs room for at least one streamed insert");
  }
  if (config.quantize_frozen) {
    ANNSIM_CHECK_MSG(config.local_index == LocalIndexKind::kSegmented,
                     "quantize_frozen requires the segmented local index "
                     "(quantization happens when segments freeze)");
    ANNSIM_CHECK_MSG(config.hnsw.metric == simd::Metric::kL2 ||
                         config.hnsw.metric == simd::Metric::kInnerProduct,
                     "quantize_frozen supports L2 and InnerProduct only");
    ANNSIM_CHECK_MSG(config.float_cache_fraction >= 0.0 &&
                         config.float_cache_fraction <= 1.0,
                     "float_cache_fraction must be within [0, 1]");
  }
  ANNSIM_CHECK_MSG(config.result_timeout_ms >= 0.0,
                   "result_timeout_ms cannot be negative (0 disables failure "
                   "detection)");
  ANNSIM_CHECK_MSG(config.heartbeat_interval_ms >= 0.0,
                   "heartbeat_interval_ms cannot be negative (0 means "
                   "result_timeout_ms / 4)");
  if (config.result_timeout_ms > 0.0) {
    ANNSIM_CHECK_MSG(config.strategy == DispatchStrategy::kMasterWorker,
                     "result_timeout_ms (failure detection) requires the "
                     "master-worker dispatch strategy");
    ANNSIM_CHECK_MSG(!config.exact_routing,
                     "result_timeout_ms (failure detection) does not support "
                     "exact_routing's two-phase protocol");
  }
  ANNSIM_CHECK_MSG(
      config.fault.drop_probability >= 0.0 && config.fault.drop_probability <= 1.0,
      "fault.drop_probability must be within [0, 1]");
  ANNSIM_CHECK_MSG(config.fault.delay_probability >= 0.0 &&
                       config.fault.delay_probability <= 1.0,
                   "fault.delay_probability must be within [0, 1]");
  ANNSIM_CHECK_MSG(config.fault.delay.count() >= 0,
                   "fault.delay cannot be negative");
  ANNSIM_CHECK_MSG(config.fault.duplicate_probability >= 0.0 &&
                       config.fault.duplicate_probability <= 1.0,
                   "fault.duplicate_probability must be within [0, 1]");
  ANNSIM_CHECK_MSG(config.fault.reorder_probability >= 0.0 &&
                       config.fault.reorder_probability <= 1.0,
                   "fault.reorder_probability must be within [0, 1]");
  if (config.fault.enabled()) {
    // Only plans that can actually fire need the failure detector: a killed
    // (or dropped-on) worker is silent, and the non-detect search master
    // blocks forever on the missing result. Plans whose every trigger sits at
    // kNeverFires merely arm the injector plumbing — annsim::explore uses
    // such plans to turn the write plane's recv_for deadlines into schedule
    // choice points — and cannot silence anyone, so they are safe without
    // detection (the write plane's recv_for keeps its 1s floor regardless).
    bool can_fire = config.fault.drop_probability > 0.0 ||
                    config.fault.delay_probability > 0.0 ||
                    config.fault.duplicate_probability > 0.0 ||
                    config.fault.reorder_probability > 0.0;
    for (const mpi::KillRule& kill : config.fault.kills) {
      can_fire = can_fire || kill.after_ops != mpi::kNeverFires ||
                 kill.at_step != mpi::kNeverFires;
    }
    for (const mpi::DiskFaultRule& df : config.fault.disk_faults) {
      can_fire = can_fire || df.at_lsn != mpi::kNeverFires;
    }
    ANNSIM_CHECK_MSG(!can_fire || config.result_timeout_ms > 0.0,
                     "fault injection without failure detection would hang the "
                     "master: set result_timeout_ms > 0");
    for (const mpi::KillRule& kill : config.fault.kills) {
      ANNSIM_CHECK_MSG(kill.rank >= 1 && kill.rank <= int(config.n_workers),
                       "fault.kills rank " << kill.rank
                                           << " must name a worker rank in [1, "
                                           << config.n_workers
                                           << "] (rank 0 is the master)");
    }
    for (const mpi::DiskFaultRule& df : config.fault.disk_faults) {
      ANNSIM_CHECK_MSG(df.rank >= 1 && df.rank <= int(config.n_workers),
                       "fault.disk_faults rank "
                           << df.rank << " must name a worker rank in [1, "
                           << config.n_workers << "] (rank 0 is the master)");
    }
    ANNSIM_CHECK_MSG(config.fault.disk_faults.empty() || !config.wal_dir.empty(),
                     "fault.disk_faults target the write-ahead log: set "
                     "wal_dir");
  }
  if (!config.wal_dir.empty()) {
    ANNSIM_CHECK_MSG(config.local_index == LocalIndexKind::kSegmented,
                     "wal_dir (durable writes) requires the segmented local "
                     "index — only segmented replicas accept replayed writes");
  }
  ANNSIM_CHECK_MSG(config.checkpoint_every_rounds >= 1,
                   "checkpoint_every_rounds must be nonzero (1 = every write "
                   "round)");
}

DistributedAnnEngine::DistributedAnnEngine(const data::Dataset* base,
                                           EngineConfig config)
    : base_(base), config_(std::move(config)) {
  ANNSIM_CHECK(base_ != nullptr);
  validate_engine_config(config_);
  ANNSIM_CHECK_MSG(base_->size() >= config_.n_workers * 2,
                   "dataset too small for the requested partition count");
  config_.partitioner.metric = config_.hnsw.metric;
}

DistributedAnnEngine::~DistributedAnnEngine() = default;

const vptree::PartitionVpTree& DistributedAnnEngine::router() const {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  return *router_;
}

std::vector<std::size_t> DistributedAnnEngine::partition_sizes() const {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  return build_stats_.partition_sizes;
}

// ----------------------------------------------------------------- build ---

void DistributedAnnEngine::build() {
  ANNSIM_CHECK_MSG(!router_.has_value(), "engine already built");
  // Re-validate at build time: the config travels through save/load and
  // default construction, so the constructor check alone is not airtight.
  validate_engine_config(config_);
  const std::size_t P = config_.n_workers;
  const std::size_t n = base_->size();
  workers_.clear();
  workers_.resize(P);
  partition_last_lsn_.assign(P, 0);

  std::vector<double> vp_seconds(P, 0.0), hnsw_seconds(P, 0.0),
      repl_seconds(P, 0.0);
  std::vector<std::size_t> part_sizes(P, 0);
  std::vector<std::byte> tree_bytes;

  WallTimer total_timer;
  mpi::Runtime rt(int(P) + 1);
  configure_runtime_check(rt);
  auto run_checked = [&](const std::function<void(mpi::Comm&)>& body) {
    try {
      rt.run(body);
    } catch (...) {
      absorb_check_report(rt);
      throw;
    }
    absorb_check_report(rt);
  };
  run_checked([&](mpi::Comm& world) {
    const int wr = world.rank();
    mpi::Comm grp = world.split(wr == 0 ? 0 : 1);

    if (wr == 0) {
      // Master: receive the assembled routing tree from worker 0.
      mpi::Message m = world.recv(1, kTagTree);
      tree_bytes = std::move(m.payload);
      return;
    }

    const std::size_t w = std::size_t(wr) - 1;
    // Initial equi-partition of D across the P worker cores (§IV).
    data::Dataset slice = base_->slice(w * n / P, (w + 1) * n / P);

    // Algorithms 1-2: distributed VP-tree construction.
    PartitionerResult res =
        build_distributed_vp_tree(grp, std::move(slice), config_.partitioner);
    vp_seconds[w] = res.build_seconds;
    ANNSIM_CHECK(res.partition_id == PartitionId(w));
    if (grp.rank() == 0) {
      world.send(0, kTagTree, res.serialized_tree);
    }

    // Local index over the owned partition (HNSW by default; §VI allows
    // any algorithm here).
    WallTimer hnsw_timer;
    Replica primary;
    primary.data = std::make_unique<data::Dataset>(std::move(res.partition));
    LocalIndexParams lp;
    lp.kind = config_.local_index;
    lp.hnsw = config_.hnsw;
    lp.hnsw.seed = Rng(config_.seed).split(w).next();
    lp.ivfpq = config_.ivfpq;
    lp.metric = config_.hnsw.metric;
    lp.segment_delta_capacity = config_.segment_delta_capacity;
    lp.quantize_frozen = config_.quantize_frozen;
    lp.float_cache_fraction = config_.float_cache_fraction;
    if (config_.parallel_local_build && config_.threads_per_worker > 1) {
      // The paper's hybrid model: each MPI process builds its local index
      // with an OpenMP-style thread team.
      ThreadPool pool(config_.threads_per_worker);
      primary.index = build_local_index(primary.data.get(), lp, &pool);
    } else {
      primary.index = build_local_index(primary.data.get(), lp);
    }
    hnsw_seconds[w] = hnsw_timer.seconds();
    part_sizes[w] = primary.data->size();
    if (config_.local_index == LocalIndexKind::kSegmented) {
      // A segmented index owns a copy of its rows, so keep the replica's
      // Dataset an empty husk (dim only) rather than storing them twice;
      // replication and checkpointing ship the index image, which is
      // self-contained.
      primary.data = std::make_unique<data::Dataset>(0, base_->dim());
    }

    // §IV-C2: replicate partition w onto its workgroup
    // W_w = {w, w+1, ..., w+r-1 mod P}.
    WallTimer repl_timer;
    const std::size_t r = config_.replication;
    if (r > 1) {
      BinaryWriter pack;
      pack.write(PartitionId(w));
      pack.write_vector(pack_dataset(*primary.data));
      pack.write_vector(primary.index->to_bytes());
      for (std::size_t j = 1; j < r; ++j) {
        const int dest = int((w + j) % P);
        grp.send(dest, kTagReplica, pack.bytes());
      }
      for (std::size_t j = 1; j < r; ++j) {
        mpi::Message m = grp.recv(mpi::kAnySource, kTagReplica);
        BinaryReader rd(m.payload);
        const auto pid = rd.read<PartitionId>();
        const auto data_bytes = rd.read_vector<std::byte>();
        const auto index_bytes = rd.read_vector<std::byte>();
        Replica rep;
        rep.data = std::make_unique<data::Dataset>(
            unpack_dataset(data_bytes, base_->dim()));
        LocalIndexParams rep_lp;
        rep_lp.kind = config_.local_index;
        rep_lp.hnsw = config_.hnsw;
        rep_lp.ivfpq = config_.ivfpq;
        rep_lp.metric = config_.hnsw.metric;
        rep_lp.segment_delta_capacity = config_.segment_delta_capacity;
        rep_lp.quantize_frozen = config_.quantize_frozen;
        rep_lp.float_cache_fraction = config_.float_cache_fraction;
        rep.index = local_index_from_bytes(index_bytes, rep.data.get(), rep_lp);
        workers_[w].emplace(pid, std::move(rep));
      }
    }
    repl_seconds[w] = repl_timer.seconds();
    workers_[w].emplace(PartitionId(w), std::move(primary));
  });

  BinaryReader rd(tree_bytes);
  router_.emplace(vptree::PartitionVpTree::deserialize(rd));

  build_stats_.total_seconds = total_timer.seconds();
  build_stats_.vp_tree_seconds = *std::max_element(vp_seconds.begin(), vp_seconds.end());
  build_stats_.hnsw_seconds = *std::max_element(hnsw_seconds.begin(), hnsw_seconds.end());
  build_stats_.replication_seconds =
      *std::max_element(repl_seconds.begin(), repl_seconds.end());
  build_stats_.partition_sizes = std::move(part_sizes);

  health_.reset(P);
  // Streamed inserts draw ids from one monotone counter that starts past
  // every build-corpus id, so a live insert can never shadow a built row.
  GlobalId max_id = 0;
  for (const GlobalId id : base_->ids()) max_id = std::max(max_id, id);
  next_stream_id_ = base_->size() == 0 ? 0 : max_id + 1;
  open_wals();         // no-op unless wal_dir is configured
  save_checkpoints();  // no-op unless checkpoint_dir is configured
}

// ------------------------------------------------------------------ plan ---

std::vector<std::vector<PartitionId>> DistributedAnnEngine::plan_queries(
    const data::Dataset& queries) const {
  const auto& tree = router();
  std::vector<std::vector<PartitionId>> plans(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    plans[q] = tree.route_topk(queries.row(q),
                               std::min(config_.n_probe, tree.n_partitions()))
                   .partitions;
  }
  return plans;
}

// ---------------------------------------------------------------- search ---

data::KnnResults DistributedAnnEngine::search(
    const data::Dataset& queries, std::size_t k, std::size_t ef,
    SearchStats* stats, const QueryDoneFn& on_query_done,
    std::span<const EffortOverride> efforts) {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  ANNSIM_CHECK(queries.dim() == router_->dim());
  ANNSIM_CHECK(k >= 1);
  ANNSIM_CHECK_MSG(efforts.empty() || efforts.size() == queries.size(),
                   "efforts must be empty or hold one override per query (got "
                       << efforts.size() << " for " << queries.size()
                       << " queries)");
  ANNSIM_CHECK_MSG(
      efforts.empty() || config_.strategy == DispatchStrategy::kMasterWorker,
      "per-query effort overrides require the master-worker dispatch strategy");

  data::KnnResults results(queries.size());
  SearchStats st;
  st.jobs_per_worker.assign(config_.n_workers, 0);

  WallTimer timer;
  // One injector is shared across every search runtime so fault state (op
  // budgets, death flags, the step clock) persists between batches: a rank
  // killed in batch n is still silent in batch n+1 unless heal() revived it.
  mpi::Runtime rt(int(config_.n_workers) + 1, shared_injector());
  if (config_.fault.enabled()) {
    // Log the seed so any chaos run is replayable bit-for-bit.
    ANNSIM_INFO("fault injection armed: seed=" << config_.fault.seed
                << " drop_p=" << config_.fault.drop_probability
                << " delay_p=" << config_.fault.delay_probability
                << " kills=" << config_.fault.kills.size()
                << " result_timeout_ms=" << config_.result_timeout_ms);
  }

  // Liveness carries over from previous batches: already-dead workers are
  // skipped at dispatch (and not re-counted in workers_failed).
  const std::size_t P = config_.n_workers;
  if (health_.workers.size() != P) health_.reset(P);
  std::vector<char> alive(P, 1);
  for (std::size_t w = 0; w < P; ++w) alive[w] = health_.alive(w) ? 1 : 0;
  std::vector<std::uint64_t> heartbeats(P, 0);

  configure_runtime_check(rt);
  auto run_checked = [&](const std::function<void(mpi::Comm&)>& body) {
    try {
      rt.run(body);
    } catch (...) {
      absorb_check_report(rt);
      throw;
    }
    absorb_check_report(rt);
  };
  {
    // Reads of the worker stores (every rank thread touches workers_) run
    // under the shared topology lock so a concurrent write/compact round can
    // interleave but heal()'s store mutations cannot.
    std::shared_lock topology(sync_->topology);
    run_checked([&](mpi::Comm& world) {
      if (config_.strategy == DispatchStrategy::kMultipleOwner) {
        if (world.rank() == 0) {
          master_search_owner(world, queries, k, ef, results, st, on_query_done);
        } else {
          worker_search_owner(world, queries, k, ef);
        }
      } else {
        if (world.rank() == 0) {
          master_search(world, queries, k, ef, results, st, on_query_done,
                        rt.fault_injector(), alive, heartbeats, efforts);
        } else {
          worker_search(world, k);
        }
      }
    });
  }

  // Fold the batch's outcome into the persistent health record — after
  // rt.run() so every rank thread has been joined and touching worker
  // stores cannot race. A newly dead worker's in-memory replicas die with
  // it; heal() restores them from checkpoint or from a surviving peer.
  if (config_.result_timeout_ms > 0.0 &&
      config_.strategy == DispatchStrategy::kMasterWorker) {
    std::unique_lock topology(sync_->topology);  // workers_[w].clear() below
    for (std::size_t w = 0; w < P; ++w) {
      health_.workers[w].heartbeats += heartbeats[w];
      if (!alive[w] &&
          health_.workers[w].state == recovery::WorkerState::kAlive) {
        health_.workers[w].state = recovery::WorkerState::kDead;
        ++health_.workers[w].deaths;
        workers_[w].clear();
      }
    }
  }

  st.total_seconds = timer.seconds();
  st.traffic = rt.total_traffic();
  if (stats != nullptr) *stats = st;
  return results;
}

check::CheckReport DistributedAnnEngine::check_report() const {
  std::lock_guard lock(sync_->check);
  return check_report_;
}

void DistributedAnnEngine::configure_runtime_check(mpi::Runtime& rt) const {
  // Every engine runtime flows through here right after construction, so the
  // schedule controller rides along with the checker install.
  if (schedule_ != nullptr) rt.set_schedule(schedule_);
  if (!config_.mpi_check && !check::env_check_enabled()) return;
  check::CheckOptions o;
  o.enabled = true;
  o.fatal = config_.check_fatal;
  // The engine's control plane: termination, completion notices, liveness
  // beacons. Data-plane code must never send these plainly (or swallow them
  // through a wildcard) — the reserved-tag and wildcard rules enforce it.
  o.reserved_tags = {kTagEoq,    kTagDone,   kTagHeartbeat,
                     kTagInsert, kTagDelete, kTagWriteAck, kTagCompact};
  if (config_.result_timeout_ms > 0.0 || config_.fault.enabled()) {
    // With failure detection armed, these are by-design abandonable: a
    // worker declared dead (perhaps too eagerly) keeps sending results,
    // done notices, and beacons that nobody will ever drain. Residue is
    // still counted in the report, just not a violation. The write plane's
    // tags join the list because a rank killed mid-round leaves its batch
    // (or its ack) undrained by design. The injector alone (no detection)
    // is already enough to abandon: every write-plane recv becomes a
    // recv_for, and an expired deadline — wall-clock or schedule-forced —
    // walks away from the peer's in-flight batch or ack. Found by
    // annsim::explore: gating this list on detection only made every
    // schedule that fires a round timeout a false unmatched-send violation.
    o.best_effort_tags = {kTagResult, kTagDone,     kTagHeartbeat, kTagInsert,
                          kTagDelete, kTagWriteAck, kTagCompact};
  }
  rt.configure_check(o);
}

void DistributedAnnEngine::absorb_check_report(const mpi::Runtime& rt) {
  if (!rt.check_enabled()) return;
  std::lock_guard lock(sync_->check);
  check_report_.merge(rt.check_report());
}

std::shared_ptr<mpi::FaultInjector> DistributedAnnEngine::shared_injector() {
  // Searches (scheduler thread) and writes/compactions (writer or background
  // threads) may race on first use; the lock makes creation once-only.
  std::lock_guard lock(sync_->injector);
  if (injector_ == nullptr && config_.fault.enabled()) {
    mpi::FaultPlan plan = config_.fault;
    // The control plane rides the reliable fabric: End-of-Queries (a worker
    // that never hears it spins forever), heartbeats (a dropped beat would
    // read as a death), and replica streams (healing must complete under
    // drop_probability). The write plane's four tags are control plane too:
    // a dropped insert would silently fork replicas of the same partition.
    // Death still silences all of them — see fault.hpp.
    plan.reliable_tags.push_back(kTagEoq);
    plan.reliable_tags.push_back(kTagHeartbeat);
    plan.reliable_tags.push_back(kTagReplica);
    plan.reliable_tags.push_back(kTagInsert);
    plan.reliable_tags.push_back(kTagDelete);
    plan.reliable_tags.push_back(kTagWriteAck);
    plan.reliable_tags.push_back(kTagCompact);
    injector_ = std::make_shared<mpi::FaultInjector>(
        plan, int(config_.n_workers) + 1);
  }
  return injector_;
}

// ---------------------------------------------------------------- writes ---
//
// Streaming mutability (segmented local indexes only). A write round is a
// small SPMD phase on the same simulated runtime as searches: the master
// routes each row through the VP-tree to its nearest partition, ships one
// WriteBatch + one DeleteBatch to every live worker on the reserved write
// tags, and collects one WriteAck each. Rounds serialize behind
// sync_->write_api and hold the topology lock shared, so search batches
// (also shared) overlap freely while heal() (exclusive) can never observe a
// half-applied round.

std::vector<char> DistributedAnnEngine::write_plane_alive(
    const mpi::FaultInjector* injector) const {
  // ClusterHealth belongs to the search plane's thread; the injector's death
  // flags are atomics and give the same answer sooner (a kill is visible
  // here before any batch observes the silence).
  std::vector<char> alive(config_.n_workers, 1);
  if (injector != nullptr) {
    for (std::size_t w = 0; w < config_.n_workers; ++w) {
      alive[w] = injector->is_dead(int(w) + 1) ? 0 : 1;
    }
  }
  return alive;
}

WriteStats DistributedAnnEngine::insert(const data::Dataset& rows) {
  return apply_writes(&rows, {});
}

WriteStats DistributedAnnEngine::remove(std::span<const GlobalId> ids) {
  return apply_writes(nullptr, ids);
}

WriteStats DistributedAnnEngine::apply_writes(
    const data::Dataset* rows, std::span<const GlobalId> deletes) {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  ANNSIM_CHECK_MSG(config_.local_index == LocalIndexKind::kSegmented,
                   "streaming writes need local_index=segmented; '"
                       << local_index_kind_name(config_.local_index)
                       << "' replicas are frozen");
  ANNSIM_CHECK_MSG(config_.strategy == DispatchStrategy::kMasterWorker,
                   "streaming writes support master-worker dispatch only");
  if (rows != nullptr) {
    ANNSIM_CHECK_MSG(rows->dim() == router_->dim(),
                     "insert dim " << rows->dim() << " != index dim "
                                   << router_->dim());
  }

  std::lock_guard api(sync_->write_api);
  const std::size_t P = config_.n_workers;
  const std::size_t r = config_.replication;
  WriteStats ws;

  auto injector = shared_injector();
  const std::vector<char> alive = write_plane_alive(injector.get());

  // Route every row to its nearest partition and fan it out to the live
  // members of that partition's workgroup {p, ..., p+r-1 mod P} — the same
  // round-robin assignment dispatch uses, so reads find the row wherever
  // they fail over.
  std::vector<WriteBatch> batches(P);
  // Which workers each row was shipped to — after the round, a row counts as
  // acked (durable, with a WAL) iff at least one of them acked.
  std::vector<std::vector<std::size_t>> row_targets;
  if (rows != nullptr) {
    ws.assigned_ids.reserve(rows->size());
    row_targets.resize(rows->size());
    for (std::size_t i = 0; i < rows->size(); ++i) {
      const GlobalId id = next_stream_id_++;
      // One LSN per logical row: every replica logs the same sequence
      // number, so checkpoint watermarks compare across workers.
      const std::uint64_t lsn = next_lsn_++;
      ws.assigned_ids.push_back(id);
      const PartitionId p = router_->route_topk(rows->row(i), 1).partitions[0];
      const float* v = rows->row(i);
      bool delivered = false;
      for (std::size_t j = 0; j < r; ++j) {
        const std::size_t w = (std::size_t(p) + j) % P;
        if (!alive[w]) continue;
        batches[w].rows.push_back(
            {p, id, lsn, std::vector<float>(v, v + rows->dim())});
        row_targets[i].push_back(w);
        delivered = true;
      }
      if (delivered) {
        partition_last_lsn_[std::size_t(p)] =
            std::max(partition_last_lsn_[std::size_t(p)], lsn);
      } else {
        ++ws.dropped_rows;
      }
    }
  }
  DeleteBatch dels;
  dels.ids.assign(deletes.begin(), deletes.end());
  dels.lsns.reserve(dels.ids.size());
  for (std::size_t i = 0; i < dels.ids.size(); ++i) {
    dels.lsns.push_back(next_lsn_++);
  }
  if (!dels.lsns.empty()) {
    // Deletes broadcast to every workgroup — any partition may hold a hit,
    // so the whole ring advances to the round's last delete LSN.
    for (auto& last : partition_last_lsn_) {
      last = std::max(last, dels.lsns.back());
    }
  }
  const std::vector<std::byte> del_bytes = encode_delete_batch(dels);

  // A concurrent chaos search can advance the kill clock mid-round, and a
  // dead rank is silent on every tag (reliable ones included) — so with an
  // injector armed every blocking recv becomes recv_for.
  const auto round_timeout = std::chrono::microseconds(std::llround(
      std::max(config_.result_timeout_ms, 1000.0) * 1000.0));

  std::vector<WriteAck> acks(P);
  std::vector<char> acked(P, 0);
  mpi::Runtime rt(int(P) + 1, injector);
  configure_runtime_check(rt);
  {
    std::shared_lock topology(sync_->topology);
    try {
      rt.run([&](mpi::Comm& world) {
        const int rank = world.rank();
        if (rank == 0) {
          // Both tags always go out (possibly empty) so the worker's recv
          // pairing is fixed regardless of round content.
          for (std::size_t w = 0; w < P; ++w) {
            if (!alive[w]) continue;
            (void)world.isend_reserved(int(w) + 1, kTagInsert,
                                       encode_write_batch(batches[w]));
            (void)world.isend_reserved(int(w) + 1, kTagDelete, del_bytes);
          }
          for (std::size_t w = 0; w < P; ++w) {
            if (!alive[w]) continue;
            std::optional<mpi::Message> m;
            if (injector != nullptr) {
              m = world.recv_for(int(w) + 1, kTagWriteAck, round_timeout);
            } else {
              m = world.recv(int(w) + 1, kTagWriteAck);
            }
            // A missing ack means the worker died mid-round; the search
            // plane will observe the silence and fold the death.
            if (!m.has_value()) continue;
            acks[w] = decode_write_ack(m->payload);
            acked[w] = 1;
          }
          return;
        }
        const std::size_t w = std::size_t(rank) - 1;
        if (!alive[w]) return;
        std::optional<mpi::Message> mi, md;
        if (injector != nullptr) {
          mi = world.recv_for(0, kTagInsert, round_timeout);
          if (mi.has_value()) {
            md = world.recv_for(0, kTagDelete, round_timeout);
          }
        } else {
          mi = world.recv(0, kTagInsert);
          md = world.recv(0, kTagDelete);
        }
        if (!mi.has_value() || !md.has_value()) return;  // killed mid-round
        const WriteBatch batch = decode_write_batch(mi->payload);
        const DeleteBatch dele = decode_delete_batch(md->payload);
        WriteAck ack;
        WorkerStore& store = workers_[w];
        recovery::WriteLog* wal = w < wals_.size() ? wals_[w].get() : nullptr;
        for (const auto& row : batch.rows) {
          auto it = store.find(row.partition);
          // A missing partition means an observed death cleared this store
          // and heal() has not run yet; the row lands on the other replicas.
          if (it == store.end()) continue;
          it->second.index->insert(row.vec, row.id);
          if (wal != nullptr) {
            wal->append_insert(row.lsn, row.partition, row.id, row.vec);
          }
          ++ack.inserted;
        }
        for (std::size_t d = 0; d < dele.ids.size(); ++d) {
          const GlobalId id = dele.ids[d];
          for (auto& [pid, rep] : store) {
            if (rep.index->erase(id)) {
              if (wal != nullptr) wal->append_delete(dele.lsns[d], pid, id);
              ++ack.erased;
            }
          }
        }
        for (const auto& [pid, rep] : store) {
          ack.max_delta_fill = std::max(ack.max_delta_fill,
                                        std::uint64_t(rep.index->delta_fill()));
        }
        // Round watermark: a mark frame at the highest LSN this worker was
        // sent, even when none of its frames reached it (rows for cleared
        // partitions, deletes with no local hit). The synced mark is the
        // worker's proof of currency — heal() compares last_synced_lsn()
        // against each partition's last issued LSN to decide whether this
        // log can replay the tail or the replica must stream from a peer.
        if (wal != nullptr) {
          std::uint64_t round_mark = 0;
          for (const auto& row : batch.rows) {
            round_mark = std::max(round_mark, row.lsn);
          }
          if (!dele.lsns.empty()) {
            round_mark = std::max(round_mark, dele.lsns.back());
          }
          if (round_mark > 0) {
            wal->append_compact_mark(round_mark, PartitionId(0));
          }
        }
        // Durability point: group-commit the round's log frames (one fsync)
        // before acking. A failed commit — disk fault fired — means the
        // worker dies silently; the master's recv_for observes the missing
        // ack exactly like an MPI death.
        if (wal != nullptr) {
          mpi::FaultInjector* inj = injector.get();
          const int wal_rank = rank;
          const bool committed = wal->commit(
              [inj, wal_rank](
                  std::uint64_t lsn) -> std::optional<mpi::DiskFaultKind> {
                if (inj == nullptr) return std::nullopt;
                return inj->disk_fault_at(wal_rank, lsn);
              });
          if (!committed) return;  // acked ⇒ durable, so no ack here
        }
        world.send_reserved(0, kTagWriteAck, encode_write_ack(ack));
      });
    } catch (...) {
      absorb_check_report(rt);
      throw;
    }
    absorb_check_report(rt);
  }

  for (std::size_t w = 0; w < P; ++w) {
    if (acked[w]) {
      ws.inserted_replicas += acks[w].inserted;
      ws.erased_replicas += acks[w].erased;
      ws.max_delta_fill = std::max(ws.max_delta_fill, acks[w].max_delta_fill);
    } else if (alive[w]) {
      ws.all_acked = false;  // targeted but silent: died (or crashed) mid-round
    }
  }
  ws.row_acked.assign(ws.assigned_ids.size(), 0);
  for (std::size_t i = 0; i < row_targets.size(); ++i) {
    for (const std::size_t w : row_targets[i]) {
      if (acked[w]) {
        ws.row_acked[i] = 1;
        break;
      }
    }
  }
  // Keep durable snapshots current so a heal mid-stream replays the writes
  // (incremental: frozen segment files are skipped, only deltas rewrite).
  // With a WAL the un-checkpointed tail is replayable, so the cadence can
  // stretch to every Nth round.
  if (!config_.checkpoint_dir.empty() &&
      ++rounds_since_checkpoint_ >= config_.checkpoint_every_rounds) {
    save_checkpoints();
    rounds_since_checkpoint_ = 0;
  }
  return ws;
}

std::uint64_t DistributedAnnEngine::compact() {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  ANNSIM_CHECK_MSG(config_.local_index == LocalIndexKind::kSegmented,
                   "compact() needs local_index=segmented; '"
                       << local_index_kind_name(config_.local_index)
                       << "' has no delta tier");
  std::lock_guard api(sync_->write_api);
  const std::size_t P = config_.n_workers;

  auto injector = shared_injector();
  const std::vector<char> alive = write_plane_alive(injector.get());
  const auto round_timeout = std::chrono::microseconds(std::llround(
      std::max(config_.result_timeout_ms, 1000.0) * 1000.0));

  std::uint64_t total = 0;
  // One LSN for the whole compaction order: the compact-mark frames let
  // replay distinguish "records absorbed into a re-frozen segment" from a
  // genuinely missing tail.
  const std::uint64_t compact_lsn = next_lsn_++;
  BinaryWriter compact_payload;
  compact_payload.write(compact_lsn);
  mpi::Runtime rt(int(P) + 1, injector);
  configure_runtime_check(rt);
  {
    std::shared_lock topology(sync_->topology);
    try {
      rt.run([&](mpi::Comm& world) {
        const int rank = world.rank();
        if (rank == 0) {
          for (std::size_t w = 0; w < P; ++w) {
            if (!alive[w]) continue;
            (void)world.isend_reserved(int(w) + 1, kTagCompact,
                                       compact_payload.bytes());
          }
          for (std::size_t w = 0; w < P; ++w) {
            if (!alive[w]) continue;
            std::optional<mpi::Message> m;
            if (injector != nullptr) {
              m = world.recv_for(int(w) + 1, kTagWriteAck, round_timeout);
            } else {
              m = world.recv(int(w) + 1, kTagWriteAck);
            }
            if (!m.has_value()) continue;
            total += decode_write_ack(m->payload).compactions;
          }
          return;
        }
        const std::size_t w = std::size_t(rank) - 1;
        if (!alive[w]) return;
        std::optional<mpi::Message> m;
        if (injector != nullptr) {
          m = world.recv_for(0, kTagCompact, round_timeout);
        } else {
          m = world.recv(0, kTagCompact);
        }
        if (!m.has_value()) return;  // killed mid-round
        BinaryReader rd(m->payload);
        const auto order_lsn = rd.read<std::uint64_t>();
        WriteAck ack;
        recovery::WriteLog* wal = w < wals_.size() ? wals_[w].get() : nullptr;
        for (auto& [pid, rep] : workers_[w]) {
          // Single-threaded rebuild keeps compaction deterministic; searches
          // keep serving the old view until the hot-swap publish.
          if (rep.index->compact(nullptr)) {
            if (wal != nullptr) wal->append_compact_mark(order_lsn, pid);
            ++ack.compactions;
          }
        }
        if (wal != nullptr) {
          mpi::FaultInjector* inj = injector.get();
          const int wal_rank = rank;
          const bool committed = wal->commit(
              [inj, wal_rank](
                  std::uint64_t lsn) -> std::optional<mpi::DiskFaultKind> {
                if (inj == nullptr) return std::nullopt;
                return inj->disk_fault_at(wal_rank, lsn);
              });
          if (!committed) return;
        }
        world.send_reserved(0, kTagWriteAck, encode_write_ack(ack));
      });
    } catch (...) {
      absorb_check_report(rt);
      throw;
    }
    absorb_check_report(rt);
  }

  if (total > 0 && !config_.checkpoint_dir.empty()) save_checkpoints();
  return total;
}

std::size_t DistributedAnnEngine::max_delta_fill() const {
  std::shared_lock topology(sync_->topology);
  std::size_t fill = 0;
  for (const WorkerStore& store : workers_) {
    for (const auto& [pid, rep] : store) {
      fill = std::max(fill, rep.index->delta_fill());
    }
  }
  return fill;
}

CompressionStats DistributedAnnEngine::compression_stats() const {
  std::shared_lock topology(sync_->topology);
  CompressionStats cs;
  for (const WorkerStore& store : workers_) {
    for (const auto& [pid, rep] : store) {
      const segment::SegmentedIndex* seg = rep.index->segmented();
      if (seg == nullptr) continue;
      const segment::SegmentedStats s = seg->stats();
      cs.quant_rows += s.quant_rows;
      cs.quant_resident_bytes += s.quant_resident_bytes;
      cs.quant_float_bytes += s.quant_float_bytes;
      cs.quant_cached_rows += s.quant_cached_rows;
      cs.rerank_exact += s.rerank_exact;
      cs.rerank_coded += s.rerank_coded;
    }
  }
  return cs;
}

// Algorithm 3 (baseline) / Algorithm 5 (replication): the master routine.
// With `result_timeout_ms > 0` the collection loops additionally detect
// workers that stop making progress, fail their outstanding jobs over to
// live replicas of the same partition, and finalize queries that lose every
// replica as degraded partial results. With the default timeout of 0 the
// function runs the exact legacy code path.
void DistributedAnnEngine::master_search(
    mpi::Comm& world, const data::Dataset& queries, std::size_t k,
    std::size_t ef, data::KnnResults& results, SearchStats& stats,
    const QueryDoneFn& on_query_done, mpi::FaultInjector* fault,
    std::vector<char>& alive, std::vector<std::uint64_t>& heartbeats,
    std::span<const EffortOverride> efforts) {
  const std::size_t P = config_.n_workers;
  const std::size_t nq = queries.size();
  const auto& tree = *router_;
  const bool one_sided = config_.one_sided && !config_.exact_routing;
  const bool detect = config_.result_timeout_ms > 0.0;
  // Detection needs the slot partition mask (idempotent failover merges and
  // coverage attribution); without it the layout is the legacy one.
  const SlotLayout layout{k, one_sided && detect ? P : 0};
  const auto timeout = std::chrono::microseconds(
      std::int64_t(config_.result_timeout_ms * 1000.0));
  using Clock = std::chrono::steady_clock;

  mpi::Window win;
  if (one_sided) {
    win = world.create_window(layout.window_bytes(nq));
  }

  PhaseTimer route_t, dispatch_t, merge_t;

  // --- Algorithm 5 scaffolding: one round-robin pointer per workgroup
  // W_i = {p_i, p_{i+1 mod P}, ..., p_{i+r-1 mod P}}. Members declared dead
  // (this batch or any earlier one — `alive` is seeded from the engine's
  // ClusterHealth) are skipped; the first probe matches the legacy choice
  // exactly, so a fault-free run dispatches identically whether or not
  // detection is armed.
  std::vector<std::uint32_t> next(P, 0);
  // Brownout effort caps: a per-query override can shrink the beam width and
  // the routing fan-out, never widen them (both are min'd against the batch
  // defaults). Empty span = every query at full effort, the legacy path.
  auto query_ef = [&](std::uint32_t qid) -> std::uint32_t {
    if (!efforts.empty() && efforts[qid].ef != 0) {
      const auto cap = efforts[qid].ef;
      return ef == 0 ? cap : std::min(cap, std::uint32_t(ef));
    }
    return std::uint32_t(ef);
  };
  auto query_probes = [&](std::size_t qid) -> std::size_t {
    std::size_t n = std::min(config_.n_probe, P);
    if (!efforts.empty() && efforts[qid].max_probes != 0) {
      n = std::min(n, std::size_t(efforts[qid].max_probes));
    }
    return n;
  };
  auto dispatch_job = [&](std::uint32_t qid, PartitionId d) -> int {
    const auto r = std::uint32_t(config_.replication);
    for (std::uint32_t probe = 0; probe < r; ++probe) {
      const std::size_t member = (d + next[d]) % P;
      next[d] = (next[d] + 1) % r;
      // A member must be alive *and* actually hold the replica: a heal that
      // found a partition unrecoverable revives the worker without it.
      if (!alive[member] || workers_[member].count(d) == 0) continue;
      QueryJob job;
      job.query_id = qid;
      job.partition = d;
      job.k = std::uint32_t(k);
      job.ef = query_ef(qid);
      job.reply_to = 0;
      const float* qv = queries.row(qid);
      job.query.assign(qv, qv + queries.dim());
      ScopedPhase p(dispatch_t);
      (void)world.isend(int(member) + 1, kTagQuery, encode_query_job(job));
      return int(member);
    }
    return -1;  // no live replica hosts partition d
  };

  std::vector<std::uint32_t> expected(nq, 0);
  std::vector<TopK> acc;  // two-sided merge accumulators
  if (!one_sided) acc.assign(nq, TopK(k));

  // --- failover bookkeeping (used only when detection is armed).
  enum class JobState : char { kPending, kMerged, kAbandoned };
  struct JobInfo {
    JobState state = JobState::kPending;
    int worker = -1;       ///< current assignee (worker id, not rank)
    bool retried = false;  ///< re-dispatched after its first assignee died
  };
  auto jkey = [](std::uint32_t q, PartitionId d) {
    return (std::uint64_t(q) << 32) | std::uint64_t(d);
  };
  std::map<std::uint64_t, JobInfo> jobs;         // keyed by (query, partition)
  std::vector<std::uint32_t> pending_per_worker(P, 0);
  std::vector<std::uint32_t> remaining(nq, 0);   // pending jobs per query
  std::vector<std::uint32_t> searched(nq, 0);    // merged partitions per query
  std::vector<Clock::time_point> last_activity(P, Clock::now());
  // Liveness beacons: while detection is armed every worker heartbeats on a
  // reliable tag, so the master notices a death even when the worker has no
  // outstanding jobs to time out on.
  std::vector<Clock::time_point> last_heartbeat(P, Clock::now());
  auto drain_heartbeats = [&](Clock::time_point now) {
    while (world.iprobe(mpi::kAnySource, kTagHeartbeat)) {
      const mpi::Message m = world.recv(mpi::kAnySource, kTagHeartbeat);
      const std::size_t w = std::size_t(m.source) - 1;
      ++heartbeats[w];
      last_heartbeat[w] = now;
    }
  };
  if (detect) stats.coverage.assign(nq, {});

  std::uint64_t total_jobs = 0;

  if (!config_.exact_routing) {
    // Single-pass F(q): best-first top-n_probe partitions.
    for (std::size_t q = 0; q < nq; ++q) {
      // The engine's logical step = queries dispatched: KillRule::at_step
      // rules fire as the clock sweeps past their trigger.
      if (fault != nullptr) fault->advance_step();
      route_t.start();
      auto plan = tree.route_topk(queries.row(q), query_probes(q));
      route_t.stop();
      expected[q] = std::uint32_t(plan.partitions.size());
      total_jobs += plan.partitions.size();
      for (PartitionId d : plan.partitions) {
        const int m = dispatch_job(std::uint32_t(q), d);
        if (!detect) continue;
        if (m >= 0) {
          jobs[jkey(std::uint32_t(q), d)] = JobInfo{JobState::kPending, m, false};
          ++pending_per_worker[std::size_t(m)];
          ++remaining[q];
        }
        // m < 0: every replica of d was dead before the batch started — the
        // partition cannot be searched and the query will finalize short.
      }
    }
    // With detection armed, EOQ is deferred until every query finalizes so
    // live workers stay available for failover jobs.
    if (!detect) {
      for (std::size_t w = 0; w < P; ++w) {
        ScopedPhase p(dispatch_t);
        (void)world.isend_reserved(int(w) + 1, kTagEoq, {});
      }
    }
  } else {
    // Two-phase exact F(q): nearest partition first, then every partition
    // intersecting the ball at the observed k-th distance.
    std::vector<PartitionId> first(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      route_t.start();
      first[q] = tree.route_nearest(queries.row(q));
      route_t.stop();
      expected[q] = 1;
      ++total_jobs;
      dispatch_job(std::uint32_t(q), first[q]);
    }
    // Collect phase-1 results (two-sided).
    std::vector<float> radius(nq, std::numeric_limits<float>::infinity());
    for (std::size_t i = 0; i < nq; ++i) {
      mpi::Message m = world.recv(mpi::kAnySource, kTagResult);
      ScopedPhase p(merge_t);
      LocalResult r = decode_local_result(m.payload);
      acc[r.query_id].merge(r.neighbors);
      if (r.neighbors.size() >= k) radius[r.query_id] = r.neighbors[k - 1].dist;
    }
    // Phase 2: exact ball routing, skipping the partition already searched.
    for (std::size_t q = 0; q < nq; ++q) {
      route_t.start();
      auto parts = tree.route_ball(queries.row(q), radius[q]);
      route_t.stop();
      for (PartitionId d : parts) {
        if (d == first[q]) continue;
        ++expected[q];
        ++total_jobs;
        dispatch_job(std::uint32_t(q), d);
      }
    }
    for (std::size_t w = 0; w < P; ++w) {
      ScopedPhase p(dispatch_t);
      (void)world.isend_reserved(int(w) + 1, kTagEoq, {});
    }
  }

  // --- result collection (two-sided): finalize each query as its last
  // partial arrives, so `on_query_done` streams completions in finish order
  // rather than batch order — the serving plane's latency signal.
  std::vector<char> finalized(nq, 0);
  auto coverage_of = [&](std::size_t q) {
    return detect ? QueryCoverage{searched[q], expected[q]}
                  : QueryCoverage{expected[q], expected[q]};
  };
  auto finalize_query = [&](std::size_t q) {
    results[q] = acc[q].take_sorted();
    finalized[q] = 1;
    const QueryCoverage cov = coverage_of(q);
    if (detect) {
      stats.coverage[q] = cov;
      if (cov.degraded()) ++stats.degraded_queries;
    }
    if (on_query_done) on_query_done(q, results[q], cov);
  };

  // Declare worker `w` dead for the rest of the batch: fail each of its
  // pending jobs over to the next live replica of the partition; a job with
  // no live replica left is abandoned and its query completes degraded.
  std::uint64_t outstanding = 0;  // pending jobs across the batch (detect)
  auto declare_dead = [&](std::size_t w) {
    alive[w] = 0;
    ++stats.workers_failed;
    for (auto& [key, info] : jobs) {
      if (info.state != JobState::kPending || info.worker != int(w)) continue;
      const auto q = std::uint32_t(key >> 32);
      const auto d = PartitionId(key & 0xffffffffULL);
      const int m = dispatch_job(q, d);
      if (m >= 0) {
        info.worker = m;
        info.retried = true;
        ++stats.retries;
        ++pending_per_worker[std::size_t(m)];
        last_activity[std::size_t(m)] = Clock::now();  // fresh deadline
      } else {
        info.state = JobState::kAbandoned;
        --outstanding;
        if (--remaining[q] == 0 && !one_sided) finalize_query(q);
      }
    }
    pending_per_worker[w] = 0;
  };
  auto check_deadlines = [&](Clock::time_point now) {
    for (std::size_t w = 0; w < P; ++w) {
      if (!alive[w]) continue;
      // Job-activity deadline: pending work with no visible progress. Kept
      // alongside the heartbeat deadline because an alive-but-drop-starved
      // worker heartbeats happily while its results never arrive.
      const bool jobs_stalled =
          pending_per_worker[w] > 0 && now - last_activity[w] >= timeout;
      // Heartbeat deadline: the liveness beacon went silent.
      const bool beacon_silent = now - last_heartbeat[w] >= timeout;
      if (jobs_stalled || beacon_silent) declare_dead(w);
    }
  };

  if (!one_sided && !detect) {
    std::vector<std::uint32_t> todo(nq);
    std::uint64_t legacy_outstanding = 0;
    for (std::size_t q = 0; q < nq; ++q) {
      // Phase-1 results of exact routing were already merged above.
      todo[q] = expected[q] - (config_.exact_routing ? 1 : 0);
      legacy_outstanding += todo[q];
    }
    if (config_.exact_routing) {
      for (std::size_t q = 0; q < nq; ++q) {
        if (todo[q] == 0) finalize_query(q);
      }
    }
    for (std::uint64_t i = 0; i < legacy_outstanding; ++i) {
      mpi::Message m = world.recv(mpi::kAnySource, kTagResult);
      ScopedPhase p(merge_t);
      LocalResult r = decode_local_result(m.payload);
      acc[r.query_id].merge(r.neighbors);
      if (--todo[r.query_id] == 0) finalize_query(r.query_id);
    }
  } else if (!one_sided && detect) {
    for (std::size_t q = 0; q < nq; ++q) outstanding += remaining[q];
    // A query can lose every live replica already at dispatch (workers dead
    // since an earlier batch); nothing of it is in flight, so finalize it
    // now — degraded — or the collection loop would never visit it.
    for (std::size_t q = 0; q < nq; ++q) {
      if (remaining[q] == 0) finalize_query(q);
    }
    const auto arm_time = Clock::now();
    for (std::size_t w = 0; w < P; ++w) {
      last_activity[w] = arm_time;
      last_heartbeat[w] = arm_time;
    }
    while (outstanding > 0) {
      auto msg = world.recv_for(mpi::kAnySource, kTagResult, timeout);
      const auto now = Clock::now();
      drain_heartbeats(now);
      if (msg.has_value()) {
        ScopedPhase p(merge_t);
        LocalResult r = decode_local_result(msg->payload);
        last_activity[std::size_t(msg->source) - 1] = now;
        const auto it = jobs.find(jkey(r.query_id, r.partition));
        if (it != jobs.end() && it->second.state == JobState::kPending) {
          it->second.state = JobState::kMerged;
          if (it->second.retried) ++stats.failovers;
          --pending_per_worker[std::size_t(it->second.worker)];
          acc[r.query_id].merge(r.neighbors);
          ++searched[r.query_id];
          --outstanding;
          if (--remaining[r.query_id] == 0) finalize_query(r.query_id);
        }
        // else: late duplicate from a worker declared dead too eagerly; the
        // job already completed elsewhere (or was abandoned) — drop it.
      }
      check_deadlines(now);
    }
  } else if (one_sided && detect) {
    // One-sided collection: poll slot headers for progress. A job is done
    // once its partition bit appears in the query's mask; a worker whose
    // pending jobs show no new bits for `timeout` is declared dead.
    for (std::size_t q = 0; q < nq; ++q) outstanding += remaining[q];
    const auto arm_time = Clock::now();
    for (std::size_t w = 0; w < P; ++w) {
      last_activity[w] = arm_time;
      last_heartbeat[w] = arm_time;
    }
    const auto poll = std::max(timeout / 8, std::chrono::microseconds(100));
    win.lock_shared(0);
    while (outstanding > 0) {
      bool progress = false;
      const auto now = Clock::now();
      drain_heartbeats(now);
      for (std::size_t q = 0; q < nq; ++q) {
        if (remaining[q] == 0) continue;
        auto hdr_bytes =
            win.get(0, layout.slot_offset(q), layout.header_bytes());
        const SlotHeader hdr = decode_slot_header(hdr_bytes, layout);
        for (auto it = jobs.lower_bound(jkey(std::uint32_t(q), 0));
             it != jobs.end() && (it->first >> 32) == q; ++it) {
          auto& info = it->second;
          if (info.state != JobState::kPending) continue;
          const auto d = PartitionId(it->first & 0xffffffffULL);
          if (!hdr.contains_partition(d)) continue;
          info.state = JobState::kMerged;
          if (info.retried) ++stats.failovers;
          --pending_per_worker[std::size_t(info.worker)];
          last_activity[std::size_t(info.worker)] = now;
          ++searched[q];
          --remaining[q];
          --outstanding;
          progress = true;
        }
      }
      if (outstanding == 0) break;
      check_deadlines(now);
      if (!progress) sleep_approx(poll);
    }
    win.unlock(0);
  }

  // With detection armed, EOQ goes out only now — after every query has
  // either completed or been abandoned — so live workers could serve
  // failover jobs until the very end of the batch.
  if (detect) {
    for (std::size_t w = 0; w < P; ++w) {
      ScopedPhase p(dispatch_t);
      (void)world.isend_reserved(int(w) + 1, kTagEoq, {});
    }
  }

  // --- completion notices (also carry the Fig 4(b) per-process job counts).
  if (!detect) {
    for (std::size_t w = 0; w < P; ++w) {
      mpi::Message m = world.recv(mpi::kAnySource, kTagDone);
      BinaryReader rd(m.payload);
      const auto notice = rd.read<DoneNotice>();
      stats.jobs_per_worker[std::size_t(m.source) - 1] = notice.jobs_processed;
      stats.worker_compute_seconds += notice.compute_seconds;
      stats.worker_comm_seconds += notice.comm_seconds;
    }
  } else {
    // A dead worker's notice was eaten by the injector; collect per source
    // with a deadline instead of blocking on a wildcard that may never match.
    for (std::size_t w = 0; w < P; ++w) {
      if (!alive[w]) continue;
      auto m = world.recv_for(int(w) + 1, kTagDone, timeout);
      if (!m.has_value()) {
        // Died after its last result but before the done notice.
        declare_dead(w);
        continue;
      }
      BinaryReader rd(m->payload);
      const auto notice = rd.read<DoneNotice>();
      stats.jobs_per_worker[w] = notice.jobs_processed;
      stats.worker_compute_seconds += notice.compute_seconds;
      stats.worker_comm_seconds += notice.comm_seconds;
    }
  }

  // --- finalize results.
  if (one_sided) {
    // Legacy mode: all workers are done, so every accumulate has landed.
    // Detect mode: every job is merged or abandoned; coverage comes from the
    // final mask, which also absorbs merges that landed after their worker
    // was (too eagerly) declared dead.
    // (A real MPI master reads its exposed buffer directly; we go through
    // get() so the C++ memory model sees the same synchronisation the
    // window's target lock provides.)
    ScopedPhase p(merge_t);
    win.lock_shared(0);
    for (std::size_t q = 0; q < nq; ++q) {
      auto bytes = win.get(0, layout.slot_offset(q), layout.slot_bytes());
      DecodedSlot slot = decode_slot(bytes, layout);
      if (!detect) {
        ANNSIM_CHECK_MSG(slot.merged_count == expected[q],
                         "slot " << q << ": merged " << slot.merged_count
                                 << " of " << expected[q] << " results");
      } else {
        std::uint32_t landed = 0;
        for (auto it = jobs.lower_bound(jkey(std::uint32_t(q), 0));
             it != jobs.end() && (it->first >> 32) == q; ++it) {
          if (slot.contains_partition(PartitionId(it->first & 0xffffffffULL))) {
            ++landed;
          }
        }
        ANNSIM_CHECK_MSG(slot.merged_count == landed,
                         "slot " << q << ": merged " << slot.merged_count
                                 << " but mask shows " << landed);
        searched[q] = landed;
      }
      results[q] = std::move(slot.neighbors);
      const QueryCoverage cov = coverage_of(q);
      if (detect) {
        stats.coverage[q] = cov;
        if (cov.degraded()) ++stats.degraded_queries;
      }
      if (on_query_done) on_query_done(q, results[q], cov);
    }
    win.unlock(0);
  } else {
    // Two-sided results were finalized (and reported) in the streaming loop.
    for (std::size_t q = 0; q < nq; ++q) ANNSIM_CHECK(finalized[q]);
  }

  stats.master_route_seconds = route_t.total_seconds();
  stats.master_dispatch_seconds = dispatch_t.total_seconds();
  stats.master_merge_seconds = merge_t.total_seconds();
  stats.total_jobs = total_jobs;
  stats.mean_partitions_per_query = nq ? double(total_jobs) / double(nq) : 0.0;
}

// Algorithm 4: the worker routine (a team of threads, each polling with
// MPI_Test and terminating through the shared Done flag).
void DistributedAnnEngine::worker_search(mpi::Comm& world, std::size_t k) {
  const std::size_t me = std::size_t(world.rank()) - 1;
  const bool one_sided = config_.one_sided && !config_.exact_routing;
  const bool detect = config_.result_timeout_ms > 0.0;
  // Must mirror the master's layout choice exactly (same window geometry).
  const SlotLayout layout{k, one_sided && detect ? config_.n_workers : 0};

  mpi::Window win;
  if (one_sided) {
    win = world.create_window(0);
    // Passive-target access epoch at the master, shared mode (§IV-C1): one
    // epoch for the whole batch, shared by this worker's thread team.
    win.lock_shared(0);
  }
  const auto merge_op = knn_slot_merge(layout);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> jobs{0};
  std::mutex agg_mu;
  double compute_s = 0.0, comm_s = 0.0;

  auto thread_main = [&] {
    double my_compute = 0.0, my_comm = 0.0;
    for (;;) {
      // A tag set, not a wildcard: the worker names exactly what it is
      // willing to consume, so a stray control message can never be
      // swallowed as a query (annsim::check's wildcard-recv rule).
      mpi::Request req = world.irecv_tags(0, {kTagQuery, kTagEoq});
      Backoff backoff;
      bool cancelled = false;
      while (!req.test()) {
        if (done.load(std::memory_order_acquire)) {
          if (req.cancel()) {
            cancelled = true;
            break;
          }
          // Completed concurrently with the flag: fall through and take it.
        }
        backoff.pause();
      }
      if (cancelled) break;
      mpi::Message m = req.take();
      if (m.tag == kTagEoq) {
        done.store(true, std::memory_order_release);
        break;
      }

      const QueryJob job = decode_query_job(m.payload);
      const auto it = workers_[me].find(job.partition);
      ANNSIM_CHECK_MSG(it != workers_[me].end(),
                       "worker " << me << " has no replica of partition "
                                 << job.partition);
      WallTimer tc;
      auto local = it->second.index->search(job.query.data(), job.k, job.ef);
      my_compute += tc.seconds();

      WallTimer tm;
      if (one_sided) {
        win.get_accumulate(0, layout.slot_offset(job.query_id),
                           encode_slot_update(local, layout, job.partition),
                           merge_op);
      } else {
        LocalResult r;
        r.query_id = job.query_id;
        r.partition = job.partition;
        r.neighbors = std::move(local);
        (void)world.isend(int(job.reply_to), kTagResult, encode_local_result(r));
      }
      my_comm += tm.seconds();
      jobs.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard lk(agg_mu);
    compute_s += my_compute;
    comm_s += my_comm;
  };

  // Liveness beacon (armed with detection): beat on a reliable tag until the
  // batch terminates. The fabric never drops a beat, so the only way the
  // master stops hearing this worker is the worker actually dying — which is
  // exactly what the injector does to a killed rank's sends, reliable or not.
  std::thread beacon;
  if (detect) {
    const double interval_ms = config_.heartbeat_interval_ms > 0.0
                                   ? config_.heartbeat_interval_ms
                                   : config_.result_timeout_ms / 4.0;
    const auto interval = std::chrono::microseconds(
        std::max<std::int64_t>(std::int64_t(interval_ms * 1000.0), 100));
    beacon = std::thread([&] {
      const auto slice = std::min<std::chrono::microseconds>(
          interval, std::chrono::microseconds(1000));
      while (!done.load(std::memory_order_acquire)) {
        (void)world.isend_reserved(0, kTagHeartbeat, {});
        // Sleep the interval in slices so termination stays prompt.
        const auto wake = std::chrono::steady_clock::now() + interval;
        while (!done.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < wake) {
          sleep_approx(slice);
        }
      }
    });
  }

  if (config_.threads_per_worker == 1) {
    // A one-thread team runs inline on the rank thread itself. This is what
    // keeps the worker schedulable under annsim::explore: a spawned team
    // member would be an untracked helper racing around the controller,
    // whereas the rank thread parks at every choice point.
    thread_main();
  } else {
    std::vector<std::thread> team;
    team.reserve(config_.threads_per_worker);
    for (std::size_t t = 0; t < config_.threads_per_worker; ++t) {
      team.emplace_back(thread_main);
    }
    for (auto& t : team) t.join();
  }
  if (beacon.joinable()) beacon.join();

  if (one_sided) win.unlock(0);

  DoneNotice notice;
  notice.jobs_processed = jobs.load();
  notice.compute_seconds = compute_s;
  notice.comm_seconds = comm_s;
  BinaryWriter w;
  w.write(notice);
  world.send_reserved(0, kTagDone, w.bytes());
}

// ------------------------------------------------------------ recovery ----

std::size_t DistributedAnnEngine::live_replicas(PartitionId p) const {
  std::size_t n = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (health_.workers.size() == workers_.size() && !health_.alive(w)) continue;
    if (workers_[w].count(p) != 0) ++n;
  }
  return n;
}

std::vector<PartitionId> DistributedAnnEngine::under_replicated_partitions()
    const {
  std::vector<PartitionId> out;
  for (std::size_t p = 0; p < config_.n_workers; ++p) {
    if (live_replicas(PartitionId(p)) < config_.replication) {
      out.push_back(PartitionId(p));
    }
  }
  return out;
}

void DistributedAnnEngine::save_checkpoints() const {
  if (config_.checkpoint_dir.empty()) return;
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  // One checkpointer at a time (a background compaction and a heal may both
  // want to snapshot), reading a stable topology.
  std::lock_guard ckpt(sync_->checkpoint);
  std::shared_lock topology(sync_->topology);
  const recovery::CheckpointStore store(config_.checkpoint_dir);
  const std::size_t P = config_.n_workers;
  // A dead worker's in-memory replica froze at the moment of death and may
  // be missing writes (and, worse, tombstones) the surviving copy kept
  // absorbing — snapshotting it would let a later heal-from-checkpoint
  // resurrect deleted ids. Prefer copies on live workers; fall back to a
  // dead host only when no live copy exists.
  std::shared_ptr<mpi::FaultInjector> inj;
  {
    std::lock_guard lock(sync_->injector);
    inj = injector_;
  }
  const std::vector<char> alive = write_plane_alive(inj.get());
  // Committed per-partition watermarks from this pass, for post-commit WAL GC.
  std::vector<std::uint64_t> part_watermark(P, 0);
  std::vector<char> part_committed(P, 0);
  for (std::size_t p = 0; p < P; ++p) {
    const Replica* rep = nullptr;
    std::size_t rep_w = P;
    const Replica* stale = nullptr;
    std::size_t stale_w = P;
    for (std::size_t j = 0; j < config_.replication && rep == nullptr; ++j) {
      const std::size_t w = (p + j) % P;
      const auto it = workers_[w].find(PartitionId(p));
      if (it == workers_[w].end()) continue;
      if (alive[w]) {
        rep = &it->second;
        rep_w = w;
      } else if (stale == nullptr) {
        stale = &it->second;
        stale_w = w;
      }
    }
    if (rep == nullptr) {
      rep = stale;
      rep_w = stale_w;
    }
    if (rep == nullptr) continue;  // every copy lost; nothing to snapshot
    recovery::CheckpointMeta meta;
    meta.partition = std::uint32_t(p);
    meta.dim = router_->dim();
    meta.index_kind = std::uint8_t(config_.local_index);
    if (const segment::SegmentedIndex* seg = rep->index->segmented()) {
      // Segmented replicas checkpoint incrementally: immutable segment
      // files are written once and skipped thereafter; only the small
      // delta (plus tombstones) rewrites per round.
      //
      // The watermark is the snapshot source's last *synced* LSN: the
      // worker applies a record before logging it and logs before syncing,
      // so synced ⇒ applied ⇒ in this snapshot. Under-claiming is safe
      // (replay is idempotent); over-claiming would lose records, and the
      // apply-log-sync order rules it out.
      std::uint64_t watermark = 0;
      if (rep_w < wals_.size() && wals_[rep_w] != nullptr) {
        watermark = wals_[rep_w]->last_synced_lsn();
      }
      meta.count = rep->index->size();
      const auto parts = seg->snapshot_parts();
      store.save_segmented(meta, parts.header, parts.segments, parts.delta,
                           watermark);
      part_watermark[p] = watermark;
      part_committed[p] = 1;
    } else {
      meta.count = rep->data->size();
      store.save(meta, pack_dataset(*rep->data), rep->index->to_bytes());
    }
  }
  // Post-commit WAL GC: a worker's log file is droppable once every
  // partition the worker hosts has a committed checkpoint at or past the
  // file's last record. An unsnapshotted hosted partition (watermark 0)
  // blocks GC for that worker entirely — conservative, and only reachable
  // when every copy of a partition is already lost.
  for (std::size_t w = 0; w < P && w < wals_.size(); ++w) {
    if (wals_[w] == nullptr) continue;
    std::uint64_t gc_mark = ~std::uint64_t{0};
    bool hosts_any = false;
    for (const auto& [pid, hosted] : workers_[w]) {
      hosts_any = true;
      gc_mark = std::min(
          gc_mark, part_committed[pid] ? part_watermark[pid] : std::uint64_t{0});
    }
    if (hosts_any && gc_mark > 0) (void)wals_[w]->gc(gc_mark);
  }
}

recovery::HealReport DistributedAnnEngine::heal() {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  // Exclusive: healing rebuilds worker stores in place, which must not
  // overlap a search/write/compact round reading them.
  std::unique_lock topology(sync_->topology);
  WallTimer timer;
  recovery::HealReport report;
  const std::size_t P = config_.n_workers;
  if (health_.workers.size() != P) health_.reset(P);
  const std::vector<std::size_t> dead = health_.dead_workers();
  if (dead.empty()) {
    report.seconds = timer.seconds();
    return report;
  }

  // 1. Resurrect the ranks: clear death flags and disarm fired kill rules so
  //    the revived worker isn't re-killed by its own schedule next batch.
  for (const std::size_t w : dead) {
    if (injector_ != nullptr) injector_->revive(int(w) + 1);
    // A disk fault may have left the worker's WAL with a torn or corrupt
    // tail; recover() truncates back to the last valid frame and clears the
    // crashed flag so the log accepts appends again.
    if (w < wals_.size() && wals_[w] != nullptr) {
      report.wal_truncated_tail_bytes += wals_[w]->recover();
    }
  }

  // 2. Replicas each revived worker must get back: worker w belongs to the
  //    workgroups of partitions {w, w-1, ..., w-r+1 mod P} (Algorithm 5).
  struct RestoreJob {
    std::size_t worker;
    PartitionId partition;
  };
  std::vector<RestoreJob> plan;
  for (const std::size_t w : dead) {
    for (std::size_t j = 0; j < config_.replication; ++j) {
      const auto p = PartitionId((w + P - j) % P);
      if (workers_[w].count(p) == 0) plan.push_back({w, p});
    }
  }

  LocalIndexParams lp;
  lp.kind = config_.local_index;
  lp.hnsw = config_.hnsw;
  lp.ivfpq = config_.ivfpq;
  lp.metric = config_.hnsw.metric;
  lp.segment_delta_capacity = config_.segment_delta_capacity;
  lp.quantize_frozen = config_.quantize_frozen;
  lp.float_cache_fraction = config_.float_cache_fraction;

  // 3. Prefer the checkpoint store: a durable snapshot restores locally with
  //    no cluster traffic at all (the LANNS model — reload, don't rebuild).
  std::vector<RestoreJob> stream_plan;
  // True when a surviving, reliably-reachable peer still hosts the
  // partition — the same scan the streaming phase uses to pick a source.
  const auto usable_peer = [&](const RestoreJob& job) {
    for (std::size_t v = 0; v < P; ++v) {
      if (v == job.worker || workers_[v].count(job.partition) == 0) continue;
      if (!health_.alive(v)) continue;
      if (injector_ != nullptr && !injector_->allow_reliable_op(int(v) + 1)) {
        continue;
      }
      return true;
    }
    return false;
  };
  if (!config_.checkpoint_dir.empty()) {
    const recovery::CheckpointStore store(config_.checkpoint_dir);
    for (const RestoreJob& job : plan) {
      if (!store.has(job.partition)) {
        stream_plan.push_back(job);
        continue;
      }
      // Checkpoint + own-WAL replay only reconstructs what this worker was
      // alive to log. Writes the cluster acked after it died — late inserts,
      // and deletes whose tombstones would otherwise vanish, resurrecting
      // the rows — exist only on the surviving peers' replicas. Replay the
      // local log when it covers the partition's last issued LSN (it is
      // "longer" than anything a peer could add); otherwise stream the
      // current state from a peer, keeping the stale checkpoint only as a
      // last resort when every peer is gone.
      if (job.worker < wals_.size() && wals_[job.worker] != nullptr &&
          job.partition < partition_last_lsn_.size() &&
          wals_[job.worker]->last_synced_lsn() <
              partition_last_lsn_[job.partition] &&
          usable_peer(job)) {
        stream_plan.push_back(job);
        continue;
      }
      recovery::CheckpointStore::LoadedPartition loaded;
      try {
        loaded = store.load(job.partition);
      } catch (const Error& e) {
        // A flipped byte or truncated file in the on-disk checkpoint
        // (checksum mismatch, short read) must not sink the replica:
        // name the failing partition and fall back to streaming it from
        // a surviving peer instead.
        ANNSIM_WARN("checkpoint for partition "
                    << job.partition << " is corrupt (" << e.what()
                    << "); falling back to peer-stream heal");
        stream_plan.push_back(job);
        continue;
      }
      ANNSIM_CHECK_MSG(loaded.meta.dim == router_->dim(),
                       "checkpoint dim " << loaded.meta.dim
                                         << " does not match the router's "
                                         << router_->dim());
      ANNSIM_CHECK_MSG(
          loaded.meta.index_kind == std::uint8_t(config_.local_index),
          "checkpoint index kind does not match the engine config");
      Replica rep;
      rep.data = std::make_unique<data::Dataset>(
          unpack_dataset(loaded.data_bytes, router_->dim()));
      rep.index = local_index_from_bytes(loaded.index_bytes, rep.data.get(), lp);
      workers_[job.worker].emplace(job.partition, std::move(rep));
      ++report.replicas_restored_from_checkpoint;
      // The checkpoint only covers records up to its committed watermark;
      // replay the worker's own WAL tail past it (filtered to this
      // partition) so acked writes that landed between the last checkpoint
      // and the crash survive. Peer-streamed replicas skip this — the
      // surviving peer is already current.
      report.wal_replayed_records += replay_wal_into_worker(
          job.worker, loaded.wal_watermark, job.partition);
    }
  } else {
    stream_plan = std::move(plan);
  }

  // 4. No checkpoint: stream each missing replica from a surviving copy over
  //    the p2p data plane (kTagReplica, reliable — re-replication completes
  //    even while drop_probability is eating data-plane traffic).
  struct Transfer {
    std::size_t src;
    std::size_t dst;
    PartitionId partition;
  };
  std::vector<Transfer> transfers;
  for (const RestoreJob& job : stream_plan) {
    std::size_t src = P;  // sentinel: no usable source
    for (std::size_t v = 0; v < P && src == P; ++v) {
      if (v == job.worker || workers_[v].count(job.partition) == 0) continue;
      if (!health_.alive(v)) continue;
      // A source whose pending kill trigger already tripped would silently
      // eat the stream; probe the reliable gate before trusting it.
      if (injector_ != nullptr && !injector_->allow_reliable_op(int(v) + 1)) {
        continue;
      }
      src = v;
    }
    if (src == P) {
      ++report.replicas_unrecoverable;  // partition lost for good
      continue;
    }
    transfers.push_back({src, job.worker, job.partition});
  }
  if (!transfers.empty()) {
    const auto stream_timeout = std::chrono::microseconds(std::max<std::int64_t>(
        std::int64_t(config_.result_timeout_ms * 1000.0), 1'000'000));
    mpi::Runtime rt(int(P) + 1, shared_injector());
    configure_runtime_check(rt);
    auto run_checked = [&](const std::function<void(mpi::Comm&)>& body) {
      try {
        rt.run(body);
      } catch (...) {
        absorb_check_report(rt);
        throw;
      }
      absorb_check_report(rt);
    };
    run_checked([&](mpi::Comm& world) {
      if (world.rank() == 0) return;
      const std::size_t me = std::size_t(world.rank()) - 1;
      // Sends first (they never block in-process), then receives in plan
      // order — per-source FIFO makes the pairing deterministic.
      for (const Transfer& tr : transfers) {
        if (tr.src != me) continue;
        const Replica& rep = workers_[me].at(tr.partition);
        BinaryWriter pack;
        pack.write(tr.partition);
        pack.write_vector(pack_dataset(*rep.data));
        pack.write_vector(rep.index->to_bytes());
        world.send(int(tr.dst) + 1, kTagReplica, pack.bytes());
      }
      for (const Transfer& tr : transfers) {
        if (tr.dst != me) continue;
        auto m = world.recv_for(int(tr.src) + 1, kTagReplica, stream_timeout);
        ANNSIM_CHECK_MSG(m.has_value(), "replica stream of partition "
                                            << tr.partition << " from worker "
                                            << tr.src << " timed out");
        BinaryReader rd(m->payload);
        const auto pid = rd.read<PartitionId>();
        ANNSIM_CHECK(pid == tr.partition);
        const auto data_bytes = rd.read_vector<std::byte>();
        const auto index_bytes = rd.read_vector<std::byte>();
        Replica rep;
        rep.data = std::make_unique<data::Dataset>(
            unpack_dataset(data_bytes, router_->dim()));
        rep.index = local_index_from_bytes(index_bytes, rep.data.get(), lp);
        workers_[me].emplace(pid, std::move(rep));
      }
    });
    report.replicas_restored_from_peer = transfers.size();
  }

  // 5. Mark the workers alive again; the next batch's dispatch re-runs the
  //    round-robin workgroup assignment over the restored copies naturally.
  for (const std::size_t w : dead) {
    health_.workers[w].state = recovery::WorkerState::kAlive;
    ++health_.workers[w].revivals;
    ++report.workers_revived;
  }

  report.seconds = timer.seconds();
  ANNSIM_INFO(recovery::to_string(report));
  return report;
}

// ------------------------------------------------------------ durability ---

void DistributedAnnEngine::open_wals() {
  if (config_.wal_dir.empty()) return;
  const std::size_t P = config_.n_workers;
  if (wals_.size() == P) return;  // already attached
  recovery::WalOptions opt;
  opt.group_commit = config_.wal_group_commit;
  wals_.clear();
  wals_.reserve(P);
  for (std::size_t w = 0; w < P; ++w) {
    const auto dir = std::filesystem::path(config_.wal_dir) /
                     ("worker_" + std::to_string(w));
    wals_.push_back(std::make_unique<recovery::WriteLog>(dir.string(), opt));
  }
}

void DistributedAnnEngine::enable_wal(const std::string& dir,
                                      bool group_commit) {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  ANNSIM_CHECK_MSG(!dir.empty(), "enable_wal: directory must be non-empty");
  ANNSIM_CHECK_MSG(config_.local_index == LocalIndexKind::kSegmented,
                   "the write-ahead log requires the segmented local index");
  std::lock_guard write_api(sync_->write_api);
  std::unique_lock topology(sync_->topology);
  config_.wal_dir = dir;
  config_.wal_group_commit = group_commit;
  wals_.clear();
  open_wals();
  // Replay anything a previous process left behind (no-op on fresh dirs):
  // records past the current LSN edge re-enter the replicas idempotently.
  const std::uint64_t edge = next_lsn_ > 0 ? next_lsn_ - 1 : 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    (void)replay_wal_into_worker(w, edge);
  }
}

bool DistributedAnnEngine::contains(GlobalId id) const {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  std::shared_lock topology(sync_->topology);
  for (const WorkerStore& store : workers_) {
    for (const auto& [pid, rep] : store) {
      const segment::SegmentedIndex* seg = rep.index->segmented();
      if (seg != nullptr && seg->contains(id)) return true;
    }
  }
  return false;
}

std::size_t DistributedAnnEngine::replay_wal_into_worker(
    std::size_t w, std::uint64_t after_lsn,
    std::optional<PartitionId> only_partition) {
  if (w >= wals_.size() || wals_[w] == nullptr) return 0;
  const std::vector<recovery::WalRecord> tail = wals_[w]->read_tail(after_lsn);
  if (tail.empty()) return 0;
  WorkerStore& store = workers_[w];
  std::size_t replayed = 0;
  for (const recovery::WalRecord& rec : tail) {
    // Advance the global streams past everything the log proves was acked,
    // even for records we skip below — a fresh write must never reuse an
    // LSN or a global id that a replayed record already owns.
    next_lsn_ = std::max(next_lsn_, rec.lsn + 1);
    if (rec.type != recovery::WalRecordType::kCompactMark &&
        rec.partition < partition_last_lsn_.size()) {
      partition_last_lsn_[rec.partition] =
          std::max(partition_last_lsn_[rec.partition], rec.lsn);
    }
    if (only_partition.has_value() && PartitionId(rec.partition) != *only_partition) {
      continue;
    }
    switch (rec.type) {
      case recovery::WalRecordType::kInsert: {
        next_stream_id_ = std::max(next_stream_id_, rec.id + 1);
        ++replayed;
        auto it = store.find(PartitionId(rec.partition));
        if (it == store.end()) break;  // replica lost; peers carry the row
        const segment::SegmentedIndex* seg = it->second.index->segmented();
        // Idempotent by global id: a record at or below the snapshot's
        // watermark (or replayed twice) is already live in the replica.
        if (seg != nullptr && seg->contains(rec.id)) break;
        it->second.index->insert(rec.vec, rec.id);
        break;
      }
      case recovery::WalRecordType::kDelete: {
        ++replayed;
        auto it = store.find(PartitionId(rec.partition));
        // erase() is naturally idempotent: a second pass is a miss.
        if (it != store.end()) (void)it->second.index->erase(rec.id);
        break;
      }
      case recovery::WalRecordType::kCompactMark:
        break;  // ordering mark only; compaction state rebuilds lazily
    }
  }
  return replayed;
}

// ----------------------------------------------------------- persistence ---

void DistributedAnnEngine::save(const std::string& path) const {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  std::shared_lock topology(sync_->topology);
  BinaryWriter w;
  w.write(std::uint32_t{0x414E4945});  // "ANIE"
  w.write(std::uint64_t(config_.n_workers));
  w.write(std::uint64_t(config_.replication));
  w.write(std::uint64_t(config_.n_probe));
  w.write(std::uint8_t(config_.one_sided ? 1 : 0));
  w.write(std::uint8_t(config_.exact_routing ? 1 : 0));
  w.write(std::uint8_t(config_.strategy == DispatchStrategy::kMultipleOwner));
  w.write(std::uint64_t(config_.threads_per_worker));
  w.write(std::uint8_t(config_.local_index));
  w.write(std::uint64_t(config_.hnsw.M));
  w.write(std::uint64_t(config_.hnsw.ef_construction));
  w.write(std::uint64_t(config_.hnsw.ef_search));
  w.write(config_.hnsw.level_mult);
  w.write(config_.hnsw.seed);
  w.write(std::int32_t(config_.hnsw.metric));
  w.write(config_.seed);
  w.write(std::uint64_t(config_.ivfpq.nlist));
  w.write(std::uint64_t(config_.ivfpq.nprobe));
  w.write(std::uint64_t(config_.ivfpq.pq.m));
  w.write(std::uint64_t(config_.ivfpq.pq.ks));
  w.write(std::uint64_t(config_.ivfpq.pq.train_iters));
  w.write(config_.ivfpq.pq.seed);
  w.write(std::uint64_t(config_.ivfpq.coarse_iters));
  w.write(config_.ivfpq.seed);
  w.write(std::uint64_t(config_.segment_delta_capacity));
  w.write(std::uint8_t(config_.quantize_frozen ? 1 : 0));
  w.write(config_.float_cache_fraction);
  w.write(next_stream_id_);  // id stream survives save/load, never reused
  w.write(next_lsn_);        // LSN stream too: WAL replay resumes past it

  BinaryWriter tree;
  router_->serialize(tree);
  w.write_vector(tree.take());

  w.write(std::uint64_t(workers_.size()));
  for (const auto& store : workers_) {
    w.write(std::uint64_t(store.size()));
    for (const auto& [pid, rep] : store) {
      w.write(pid);
      w.write_vector(pack_dataset(*rep.data));
      w.write_vector(rep.index->to_bytes());
    }
  }

  // Build stats travel along so a loaded engine reports sane metadata.
  w.write(build_stats_.total_seconds);
  w.write(build_stats_.vp_tree_seconds);
  w.write(build_stats_.hnsw_seconds);
  w.write(build_stats_.replication_seconds);
  w.write_vector(build_stats_.partition_sizes);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANNSIM_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            std::streamsize(w.size()));
  ANNSIM_CHECK(out.good());
}

DistributedAnnEngine DistributedAnnEngine::load(
    const std::string& path, const std::string& checkpoint_dir,
    const std::string& wal_dir) {
  std::ifstream in(path, std::ios::binary);
  ANNSIM_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  in.seekg(0, std::ios::end);
  std::vector<std::byte> bytes(std::size_t(in.tellg()));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()), std::streamsize(bytes.size()));
  ANNSIM_CHECK(in.good());

  BinaryReader r(bytes);
  ANNSIM_CHECK_MSG(r.read<std::uint32_t>() == 0x414E4945,
                   "bad engine file magic");
  DistributedAnnEngine eng;
  eng.config_.n_workers = r.read<std::uint64_t>();
  eng.config_.replication = r.read<std::uint64_t>();
  eng.config_.n_probe = r.read<std::uint64_t>();
  eng.config_.one_sided = r.read<std::uint8_t>() != 0;
  eng.config_.exact_routing = r.read<std::uint8_t>() != 0;
  eng.config_.strategy = r.read<std::uint8_t>() != 0
                             ? DispatchStrategy::kMultipleOwner
                             : DispatchStrategy::kMasterWorker;
  eng.config_.threads_per_worker = r.read<std::uint64_t>();
  eng.config_.local_index = LocalIndexKind(r.read<std::uint8_t>());
  eng.config_.hnsw.M = r.read<std::uint64_t>();
  eng.config_.hnsw.ef_construction = r.read<std::uint64_t>();
  eng.config_.hnsw.ef_search = r.read<std::uint64_t>();
  eng.config_.hnsw.level_mult = r.read<double>();
  eng.config_.hnsw.seed = r.read<std::uint64_t>();
  eng.config_.hnsw.metric = simd::Metric(r.read<std::int32_t>());
  eng.config_.seed = r.read<std::uint64_t>();
  eng.config_.ivfpq.nlist = r.read<std::uint64_t>();
  eng.config_.ivfpq.nprobe = r.read<std::uint64_t>();
  eng.config_.ivfpq.pq.m = r.read<std::uint64_t>();
  eng.config_.ivfpq.pq.ks = r.read<std::uint64_t>();
  eng.config_.ivfpq.pq.train_iters = r.read<std::uint64_t>();
  eng.config_.ivfpq.pq.seed = r.read<std::uint64_t>();
  eng.config_.ivfpq.coarse_iters = r.read<std::uint64_t>();
  eng.config_.ivfpq.seed = r.read<std::uint64_t>();
  eng.config_.segment_delta_capacity = r.read<std::uint64_t>();
  eng.config_.quantize_frozen = r.read<std::uint8_t>() != 0;
  eng.config_.float_cache_fraction = r.read<double>();
  eng.next_stream_id_ = r.read<GlobalId>();
  eng.next_lsn_ = r.read<std::uint64_t>();

  auto tree_bytes = r.read_vector<std::byte>();
  BinaryReader tr(tree_bytes);
  eng.router_.emplace(vptree::PartitionVpTree::deserialize(tr));

  const auto n_workers = r.read<std::uint64_t>();
  ANNSIM_CHECK(n_workers == eng.config_.n_workers);
  eng.workers_.resize(n_workers);
  eng.partition_last_lsn_.assign(n_workers, 0);
  LocalIndexParams lp;
  lp.kind = eng.config_.local_index;
  lp.hnsw = eng.config_.hnsw;
  lp.ivfpq = eng.config_.ivfpq;
  lp.metric = eng.config_.hnsw.metric;
  lp.segment_delta_capacity = eng.config_.segment_delta_capacity;
  lp.quantize_frozen = eng.config_.quantize_frozen;
  lp.float_cache_fraction = eng.config_.float_cache_fraction;
  for (auto& store : eng.workers_) {
    const auto n_replicas = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_replicas; ++i) {
      const auto pid = r.read<PartitionId>();
      const auto data_bytes = r.read_vector<std::byte>();
      const auto index_bytes = r.read_vector<std::byte>();
      Replica rep;
      rep.data = std::make_unique<data::Dataset>(
          unpack_dataset(data_bytes, eng.router_->dim()));
      rep.index = local_index_from_bytes(index_bytes, rep.data.get(), lp);
      store.emplace(pid, std::move(rep));
    }
  }

  eng.build_stats_.total_seconds = r.read<double>();
  eng.build_stats_.vp_tree_seconds = r.read<double>();
  eng.build_stats_.hnsw_seconds = r.read<double>();
  eng.build_stats_.replication_seconds = r.read<double>();
  eng.build_stats_.partition_sizes = r.read_vector<std::size_t>();
  ANNSIM_CHECK_MSG(r.exhausted(), "trailing bytes in engine file");

  eng.health_.reset(eng.config_.n_workers);
  eng.config_.checkpoint_dir = checkpoint_dir;
  if (!wal_dir.empty()) {
    // Re-attach the WALs and replay any records past the engine file's LSN
    // edge: writes acked after the save() but before the crash live only in
    // the logs, and the ack contract says they must come back.
    ANNSIM_CHECK_MSG(eng.config_.local_index == LocalIndexKind::kSegmented,
                     "wal_dir requires the segmented local index");
    eng.config_.wal_dir = wal_dir;
    eng.open_wals();
    const std::uint64_t edge = eng.next_lsn_ > 0 ? eng.next_lsn_ - 1 : 0;
    for (std::size_t w = 0; w < eng.workers_.size(); ++w) {
      (void)eng.replay_wal_into_worker(w, edge);
    }
  }
  eng.save_checkpoints();  // no-op without a checkpoint dir
  return eng;
}

}  // namespace annsim::core
