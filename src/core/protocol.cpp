#include "annsim/core/protocol.hpp"

#include <cstring>

#include "annsim/common/error.hpp"

namespace annsim::core {

std::vector<std::byte> encode_query_job(const QueryJob& job) {
  BinaryWriter w;
  w.write(job.query_id);
  w.write(job.partition);
  w.write(job.k);
  w.write(job.ef);
  w.write(job.reply_to);
  w.write_vector(job.query);
  return w.take();
}

QueryJob decode_query_job(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  QueryJob job;
  job.query_id = r.read<std::uint32_t>();
  job.partition = r.read<PartitionId>();
  job.k = r.read<std::uint32_t>();
  job.ef = r.read<std::uint32_t>();
  job.reply_to = r.read<std::uint32_t>();
  job.query = r.read_vector<float>();
  ANNSIM_CHECK(r.exhausted());
  return job;
}

std::vector<std::byte> encode_local_result(const LocalResult& r) {
  BinaryWriter w;
  w.write(r.query_id);
  w.write(r.partition);
  w.write_span(std::span<const Neighbor>(r.neighbors));
  return w.take();
}

LocalResult decode_local_result(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  LocalResult out;
  out.query_id = r.read<std::uint32_t>();
  out.partition = r.read<PartitionId>();
  out.neighbors = r.read_vector<Neighbor>();
  ANNSIM_CHECK(r.exhausted());
  return out;
}

std::vector<std::byte> encode_slot_update(std::span<const Neighbor> neighbors,
                                          const SlotLayout& layout) {
  std::vector<std::byte> out(layout.slot_bytes());
  const std::uint32_t count = 1;
  std::memcpy(out.data(), &count, sizeof(count));
  std::vector<Neighbor> padded(layout.k);  // default = +inf sentinels
  const std::size_t n = std::min(neighbors.size(), layout.k);
  std::copy(neighbors.begin(), neighbors.begin() + std::ptrdiff_t(n),
            padded.begin());
  std::memcpy(out.data() + sizeof(std::uint64_t), padded.data(),
              layout.k * sizeof(Neighbor));
  return out;
}

mpi::Window::MergeOp knn_slot_merge(const SlotLayout& layout) {
  return [layout](std::span<std::byte> target,
                  std::span<const std::byte> origin) {
    ANNSIM_CHECK(target.size() == layout.slot_bytes());
    ANNSIM_CHECK(origin.size() == layout.slot_bytes());

    std::uint32_t t_count = 0, o_count = 0;
    std::memcpy(&t_count, target.data(), sizeof(t_count));
    std::memcpy(&o_count, origin.data(), sizeof(o_count));

    std::vector<Neighbor> t_nb(layout.k), o_nb(layout.k);
    std::memcpy(t_nb.data(), target.data() + sizeof(std::uint64_t),
                layout.k * sizeof(Neighbor));
    std::memcpy(o_nb.data(), origin.data() + sizeof(std::uint64_t),
                layout.k * sizeof(Neighbor));

    // A fresh slot holds zero-initialized neighbors (dist 0, id 0) when
    // count == 0; treat it as empty rather than as k bogus zero-distance hits.
    const std::vector<Neighbor> merged =
        t_count == 0 ? std::vector<Neighbor>(o_nb.begin(), o_nb.end())
                     : merge_sorted_knn(t_nb, o_nb, layout.k);

    const std::uint32_t new_count = t_count + o_count;
    std::memcpy(target.data(), &new_count, sizeof(new_count));
    std::vector<Neighbor> padded(layout.k);
    std::copy(merged.begin(),
              merged.begin() + std::ptrdiff_t(std::min(merged.size(), layout.k)),
              padded.begin());
    std::memcpy(target.data() + sizeof(std::uint64_t), padded.data(),
                layout.k * sizeof(Neighbor));
  };
}

DecodedSlot decode_slot(std::span<const std::byte> slot,
                        const SlotLayout& layout) {
  ANNSIM_CHECK(slot.size() >= layout.slot_bytes());
  DecodedSlot out;
  std::memcpy(&out.merged_count, slot.data(), sizeof(out.merged_count));
  out.neighbors.resize(layout.k);
  std::memcpy(out.neighbors.data(), slot.data() + sizeof(std::uint64_t),
              layout.k * sizeof(Neighbor));
  // Drop +inf padding sentinels.
  while (!out.neighbors.empty() &&
         out.neighbors.back().id == kInvalidGlobalId) {
    out.neighbors.pop_back();
  }
  return out;
}

}  // namespace annsim::core
