#include "annsim/core/protocol.hpp"

#include <cstring>

#include "annsim/common/error.hpp"

namespace annsim::core {

std::vector<std::byte> encode_query_job(const QueryJob& job) {
  BinaryWriter w;
  w.write(job.query_id);
  w.write(job.partition);
  w.write(job.k);
  w.write(job.ef);
  w.write(job.reply_to);
  w.write_vector(job.query);
  return w.take();
}

QueryJob decode_query_job(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  QueryJob job;
  job.query_id = r.read<std::uint32_t>();
  job.partition = r.read<PartitionId>();
  job.k = r.read<std::uint32_t>();
  job.ef = r.read<std::uint32_t>();
  job.reply_to = r.read<std::uint32_t>();
  job.query = r.read_vector<float>();
  ANNSIM_CHECK(r.exhausted());
  return job;
}

std::vector<std::byte> encode_local_result(const LocalResult& r) {
  BinaryWriter w;
  w.write(r.query_id);
  w.write(r.partition);
  w.write_span(std::span<const Neighbor>(r.neighbors));
  return w.take();
}

LocalResult decode_local_result(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  LocalResult out;
  out.query_id = r.read<std::uint32_t>();
  out.partition = r.read<PartitionId>();
  out.neighbors = r.read_vector<Neighbor>();
  ANNSIM_CHECK(r.exhausted());
  return out;
}

std::vector<std::byte> encode_write_batch(const WriteBatch& b) {
  BinaryWriter w;
  w.write(std::uint64_t(b.rows.size()));
  for (const auto& row : b.rows) {
    w.write(row.partition);
    w.write(row.id);
    w.write(row.lsn);
    w.write_vector(row.vec);
  }
  return w.take();
}

WriteBatch decode_write_batch(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  WriteBatch out;
  const auto n = r.read<std::uint64_t>();
  out.rows.resize(n);
  for (auto& row : out.rows) {
    row.partition = r.read<PartitionId>();
    row.id = r.read<GlobalId>();
    row.lsn = r.read<std::uint64_t>();
    row.vec = r.read_vector<float>();
  }
  ANNSIM_CHECK(r.exhausted());
  return out;
}

std::vector<std::byte> encode_delete_batch(const DeleteBatch& b) {
  ANNSIM_CHECK_MSG(b.lsns.empty() || b.lsns.size() == b.ids.size(),
                   "DeleteBatch.lsns must be empty or parallel to ids");
  BinaryWriter w;
  w.write_vector(b.ids);
  w.write_vector(b.lsns);
  return w.take();
}

DeleteBatch decode_delete_batch(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  DeleteBatch out;
  out.ids = r.read_vector<GlobalId>();
  out.lsns = r.read_vector<std::uint64_t>();
  ANNSIM_CHECK(r.exhausted());
  ANNSIM_CHECK_MSG(out.lsns.empty() || out.lsns.size() == out.ids.size(),
                   "DeleteBatch.lsns must be empty or parallel to ids");
  if (out.lsns.empty()) out.lsns.assign(out.ids.size(), 0);
  return out;
}

std::vector<std::byte> encode_write_ack(const WriteAck& a) {
  BinaryWriter w;
  w.write(a.inserted);
  w.write(a.erased);
  w.write(a.max_delta_fill);
  w.write(a.compactions);
  return w.take();
}

WriteAck decode_write_ack(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  WriteAck out;
  out.inserted = r.read<std::uint64_t>();
  out.erased = r.read<std::uint64_t>();
  out.max_delta_fill = r.read<std::uint64_t>();
  out.compactions = r.read<std::uint64_t>();
  ANNSIM_CHECK(r.exhausted());
  return out;
}

bool mask_contains(std::span<const std::uint64_t> mask,
                   PartitionId p) noexcept {
  const std::size_t word = std::size_t(p) / 64;
  if (word >= mask.size()) return false;
  return (mask[word] >> (std::size_t(p) % 64)) & 1U;
}

namespace {

std::vector<std::uint64_t> read_mask(std::span<const std::byte> slot,
                                     const SlotLayout& layout) {
  std::vector<std::uint64_t> mask(layout.mask_words());
  if (!mask.empty()) {
    std::memcpy(mask.data(), slot.data() + sizeof(std::uint64_t),
                mask.size() * sizeof(std::uint64_t));
  }
  return mask;
}

}  // namespace

std::vector<std::byte> encode_slot_update(std::span<const Neighbor> neighbors,
                                          const SlotLayout& layout,
                                          PartitionId partition) {
  std::vector<std::byte> out(layout.slot_bytes());
  const std::uint32_t count = 1;
  std::memcpy(out.data(), &count, sizeof(count));
  if (layout.mask_words() > 0) {
    ANNSIM_CHECK_MSG(partition != kInvalidPartition &&
                         std::size_t(partition) < layout.n_partitions,
                     "encode_slot_update: masked layout needs the searched "
                     "partition id");
    std::vector<std::uint64_t> mask(layout.mask_words(), 0);
    mask[std::size_t(partition) / 64] |= std::uint64_t{1}
                                         << (std::size_t(partition) % 64);
    std::memcpy(out.data() + sizeof(std::uint64_t), mask.data(),
                mask.size() * sizeof(std::uint64_t));
  }
  std::vector<Neighbor> padded(layout.k);  // default = +inf sentinels
  const std::size_t n = std::min(neighbors.size(), layout.k);
  std::copy(neighbors.begin(), neighbors.begin() + std::ptrdiff_t(n),
            padded.begin());
  std::memcpy(out.data() + layout.header_bytes(), padded.data(),
              layout.k * sizeof(Neighbor));
  return out;
}

mpi::Window::MergeOp knn_slot_merge(const SlotLayout& layout) {
  return [layout](std::span<std::byte> target,
                  std::span<const std::byte> origin) {
    ANNSIM_CHECK(target.size() == layout.slot_bytes());
    ANNSIM_CHECK(origin.size() == layout.slot_bytes());

    std::uint32_t t_count = 0, o_count = 0;
    std::memcpy(&t_count, target.data(), sizeof(t_count));
    std::memcpy(&o_count, origin.data(), sizeof(o_count));

    const std::size_t words = layout.mask_words();
    std::vector<std::uint64_t> t_mask, o_mask;
    if (words > 0) {
      t_mask = read_mask(target, layout);
      o_mask = read_mask(origin, layout);
      // Failover retry that already landed: every origin partition is merged
      // into this slot already, so the whole update is a duplicate. Drop it.
      bool duplicate = true;
      for (std::size_t w = 0; w < words; ++w) {
        if ((o_mask[w] & ~t_mask[w]) != 0) duplicate = false;
      }
      if (duplicate) return;
    }

    std::vector<Neighbor> t_nb(layout.k), o_nb(layout.k);
    std::memcpy(t_nb.data(), target.data() + layout.header_bytes(),
                layout.k * sizeof(Neighbor));
    std::memcpy(o_nb.data(), origin.data() + layout.header_bytes(),
                layout.k * sizeof(Neighbor));

    // A fresh slot holds zero-initialized neighbors (dist 0, id 0) when
    // count == 0; treat it as empty rather than as k bogus zero-distance hits.
    const std::vector<Neighbor> merged =
        t_count == 0 ? std::vector<Neighbor>(o_nb.begin(), o_nb.end())
                     : merge_sorted_knn(t_nb, o_nb, layout.k);

    const std::uint32_t new_count = t_count + o_count;
    std::memcpy(target.data(), &new_count, sizeof(new_count));
    if (words > 0) {
      for (std::size_t w = 0; w < words; ++w) t_mask[w] |= o_mask[w];
      std::memcpy(target.data() + sizeof(std::uint64_t), t_mask.data(),
                  words * sizeof(std::uint64_t));
    }
    std::vector<Neighbor> padded(layout.k);
    std::copy(merged.begin(),
              merged.begin() + std::ptrdiff_t(std::min(merged.size(), layout.k)),
              padded.begin());
    std::memcpy(target.data() + layout.header_bytes(), padded.data(),
                layout.k * sizeof(Neighbor));
  };
}

SlotHeader decode_slot_header(std::span<const std::byte> slot,
                              const SlotLayout& layout) {
  ANNSIM_CHECK(slot.size() >= layout.header_bytes());
  SlotHeader out;
  std::memcpy(&out.merged_count, slot.data(), sizeof(out.merged_count));
  out.mask = read_mask(slot, layout);
  return out;
}

DecodedSlot decode_slot(std::span<const std::byte> slot,
                        const SlotLayout& layout) {
  ANNSIM_CHECK(slot.size() >= layout.slot_bytes());
  DecodedSlot out;
  std::memcpy(&out.merged_count, slot.data(), sizeof(out.merged_count));
  out.mask = read_mask(slot, layout);
  out.neighbors.resize(layout.k);
  std::memcpy(out.neighbors.data(), slot.data() + layout.header_bytes(),
              layout.k * sizeof(Neighbor));
  // Drop +inf padding sentinels.
  while (!out.neighbors.empty() &&
         out.neighbors.back().id == kInvalidGlobalId) {
    out.neighbors.pop_back();
  }
  return out;
}

}  // namespace annsim::core
