#include "annsim/core/kd_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <mutex>
#include <thread>

#include "annsim/common/backoff.hpp"
#include "annsim/common/error.hpp"
#include "annsim/common/timer.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/core/protocol.hpp"

namespace annsim::core {

DistributedKdEngine::DistributedKdEngine(const data::Dataset* base,
                                         KdEngineConfig config)
    : base_(base), config_(config) {
  ANNSIM_CHECK(base_ != nullptr);
  ANNSIM_CHECK_MSG(std::has_single_bit(config_.n_workers),
                   "n_workers must be a power of two");
  ANNSIM_CHECK(config_.threads_per_worker >= 1);
  ANNSIM_CHECK(base_->size() >= config_.n_workers * 2);
}

DistributedKdEngine::~DistributedKdEngine() = default;

const kdtree::PartitionKdTree& DistributedKdEngine::router() const {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  return *router_;
}

std::vector<std::size_t> DistributedKdEngine::partition_sizes() const {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  std::vector<std::size_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& s : shards_) sizes.push_back(s.data->size());
  return sizes;
}

void DistributedKdEngine::build() {
  ANNSIM_CHECK_MSG(!router_.has_value(), "engine already built");
  WallTimer timer;

  kdtree::PartitionKdTreeParams params;
  params.target_partitions = config_.n_workers;
  params.metric = config_.metric;
  std::vector<PartitionId> assignment;
  router_.emplace(kdtree::PartitionKdTree::build(*base_, params, &assignment));

  // Group rows per partition and build the local exact indexes in parallel
  // rank threads (mirrors PANDA's per-processor local KD sub-trees).
  std::vector<std::vector<std::size_t>> rows(config_.n_workers);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    rows[assignment[i]].push_back(i);
  }
  shards_.clear();
  shards_.resize(config_.n_workers);

  mpi::Runtime rt(int(config_.n_workers));
  rt.run([&](mpi::Comm& comm) {
    const auto w = std::size_t(comm.rank());
    Shard shard;
    shard.data = std::make_unique<data::Dataset>(base_->subset(rows[w]));
    kdtree::KdTreeParams kp;
    kp.leaf_size = config_.leaf_size;
    kp.metric = config_.metric;
    shard.index = std::make_unique<kdtree::KdTree>(shard.data.get(), kp);
    shards_[w] = std::move(shard);
  });

  build_seconds_ = timer.seconds();
}

data::KnnResults DistributedKdEngine::search(const data::Dataset& queries,
                                             std::size_t k,
                                             KdSearchStats* stats) {
  ANNSIM_CHECK_MSG(router_.has_value(), "engine not built yet");
  ANNSIM_CHECK(queries.dim() == base_->dim());
  ANNSIM_CHECK(k >= 1);

  data::KnnResults results(queries.size());
  KdSearchStats st;
  st.jobs_per_worker.assign(config_.n_workers, 0);

  WallTimer timer;
  mpi::Runtime rt(int(config_.n_workers) + 1);
  rt.run([&](mpi::Comm& world) {
    if (world.rank() == 0) {
      master_search(world, queries, k, results, st);
    } else {
      worker_search(world);
    }
  });
  st.total_seconds = timer.seconds();
  if (stats != nullptr) *stats = st;
  return results;
}

void DistributedKdEngine::master_search(mpi::Comm& world,
                                        const data::Dataset& queries,
                                        std::size_t k,
                                        data::KnnResults& results,
                                        KdSearchStats& stats) {
  const std::size_t P = config_.n_workers;
  const std::size_t nq = queries.size();
  const auto& tree = *router_;
  PhaseTimer route_t, dispatch_t, merge_t;

  auto dispatch_job = [&](std::uint32_t qid, PartitionId d) {
    QueryJob job;
    job.query_id = qid;
    job.partition = d;
    job.k = std::uint32_t(k);
    job.reply_to = 0;
    const float* qv = queries.row(qid);
    job.query.assign(qv, qv + queries.dim());
    ScopedPhase p(dispatch_t);
    (void)world.isend(int(d) + 1, kTagQuery, encode_query_job(job));
  };

  std::vector<TopK> acc(nq, TopK(k));
  std::uint64_t total_jobs = 0;

  // Phase 1: the partition whose cell contains the query.
  std::vector<PartitionId> first(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    route_t.start();
    first[q] = tree.route_nearest(queries.row(q));
    route_t.stop();
    dispatch_job(std::uint32_t(q), first[q]);
    ++total_jobs;
  }
  std::vector<float> radius(nq, std::numeric_limits<float>::infinity());
  for (std::size_t i = 0; i < nq; ++i) {
    mpi::Message m = world.recv(mpi::kAnySource, kTagResult);
    ScopedPhase p(merge_t);
    LocalResult r = decode_local_result(m.payload);
    if (r.neighbors.size() >= k) radius[r.query_id] = r.neighbors[k - 1].dist;
    acc[r.query_id].merge(r.neighbors);
  }

  // Phase 2: every other partition intersecting the exact ball — the visit
  // set that explodes with dimension.
  std::uint64_t phase2_jobs = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    route_t.start();
    auto parts = tree.route_ball(queries.row(q), radius[q]);
    route_t.stop();
    for (PartitionId d : parts) {
      if (d == first[q]) continue;
      dispatch_job(std::uint32_t(q), d);
      ++phase2_jobs;
    }
  }
  total_jobs += phase2_jobs;
  for (std::size_t w = 0; w < P; ++w) {
    ScopedPhase p(dispatch_t);
    (void)world.isend_reserved(int(w) + 1, kTagEoq, {});
  }
  for (std::uint64_t i = 0; i < phase2_jobs; ++i) {
    mpi::Message m = world.recv(mpi::kAnySource, kTagResult);
    ScopedPhase p(merge_t);
    LocalResult r = decode_local_result(m.payload);
    acc[r.query_id].merge(r.neighbors);
  }

  for (std::size_t w = 0; w < P; ++w) {
    mpi::Message m = world.recv(mpi::kAnySource, kTagDone);
    BinaryReader rd(m.payload);
    const auto notice = rd.read<DoneNotice>();
    stats.jobs_per_worker[std::size_t(m.source) - 1] = notice.jobs_processed;
    stats.worker_compute_seconds += notice.compute_seconds;
  }

  {
    ScopedPhase p(merge_t);
    for (std::size_t q = 0; q < nq; ++q) results[q] = acc[q].take_sorted();
  }

  stats.master_route_seconds = route_t.total_seconds();
  stats.master_dispatch_seconds = dispatch_t.total_seconds();
  stats.master_merge_seconds = merge_t.total_seconds();
  stats.total_jobs = total_jobs;
  stats.mean_partitions_per_query = nq ? double(total_jobs) / double(nq) : 0.0;
}

void DistributedKdEngine::worker_search(mpi::Comm& world) {
  const std::size_t me = std::size_t(world.rank()) - 1;
  const Shard& shard = shards_[me];

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> jobs{0};
  std::mutex agg_mu;
  double compute_s = 0.0;

  auto thread_main = [&] {
    double my_compute = 0.0;
    for (;;) {
      // Tag set instead of a wildcard: name exactly what this loop is
      // willing to consume (annsim::check's wildcard-recv rule).
      mpi::Request req = world.irecv_tags(0, {kTagQuery, kTagEoq});
      Backoff backoff;
      bool cancelled = false;
      while (!req.test()) {
        if (done.load(std::memory_order_acquire)) {
          if (req.cancel()) {
            cancelled = true;
            break;
          }
        }
        backoff.pause();
      }
      if (cancelled) break;
      mpi::Message m = req.take();
      if (m.tag == kTagEoq) {
        done.store(true, std::memory_order_release);
        break;
      }
      const QueryJob job = decode_query_job(m.payload);
      ANNSIM_CHECK(job.partition == PartitionId(me));
      WallTimer tc;
      auto local = shard.index->search(job.query.data(), job.k);
      my_compute += tc.seconds();

      LocalResult r;
      r.query_id = job.query_id;
      r.partition = job.partition;
      r.neighbors = std::move(local);
      (void)world.isend(int(job.reply_to), kTagResult, encode_local_result(r));
      jobs.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard lk(agg_mu);
    compute_s += my_compute;
  };

  std::vector<std::thread> team;
  team.reserve(config_.threads_per_worker);
  for (std::size_t t = 0; t < config_.threads_per_worker; ++t) {
    team.emplace_back(thread_main);
  }
  for (auto& t : team) t.join();

  DoneNotice notice;
  notice.jobs_processed = jobs.load();
  notice.compute_seconds = compute_s;
  BinaryWriter w;
  w.write(notice);
  world.send_reserved(0, kTagDone, w.bytes());
}

}  // namespace annsim::core
