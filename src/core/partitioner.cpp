#include "annsim/core/partitioner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "annsim/common/error.hpp"
#include "annsim/common/timer.hpp"
#include "annsim/core/dataset_transfer.hpp"
#include "annsim/vptree/vantage.hpp"

namespace annsim::core {

namespace {

/// One step of a rank's root-to-leaf construction path.
struct PathStep {
  std::vector<float> vp;
  float mu = 0.f;
  bool went_left = false;
};

/// Algorithm 1: distributed vantage-point selection. Every rank proposes its
/// best local candidate; the group root re-scores the proposals against its
/// own local sample and broadcasts the winner.
std::vector<float> select_vantage_distributed(mpi::Comm& comm,
                                              const data::Dataset& local,
                                              const PartitionerConfig& config,
                                              Rng& rng) {
  const simd::DistanceComputer dist(config.metric, local.dim());

  std::vector<float> my_candidate(local.dim(), 0.f);
  if (!local.empty()) {
    std::vector<std::size_t> rows(local.size());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    const std::size_t best = vptree::select_vantage_point_sampled(
        local, rows, config.vantage_candidates, config.vantage_sample, dist, rng);
    const float* row = local.row(best);
    my_candidate.assign(row, row + local.dim());
  }

  // Each rank sends (has_candidate, vector) to the group root.
  BinaryWriter w;
  w.write(std::uint8_t(local.empty() ? 0 : 1));
  w.write_vector(my_candidate);
  auto gathered = comm.gather(w.bytes(), 0);

  std::vector<float> winner(local.dim(), 0.f);
  if (comm.rank() == 0) {
    std::vector<std::vector<float>> candidates;
    for (const auto& buf : gathered) {
      BinaryReader r(buf);
      const auto has = r.read<std::uint8_t>();
      auto vec = r.read_vector<float>();
      if (has != 0) candidates.push_back(std::move(vec));
    }
    ANNSIM_CHECK_MSG(!candidates.empty(), "no vantage candidates proposed");

    // Evaluation rows: a sample of the root's local data (the paper's
    // assumption: each local subset is representative of the global
    // distribution).
    std::size_t best_idx = 0;
    if (!local.empty() && candidates.size() > 1) {
      std::vector<std::size_t> eval;
      const std::size_t n_eval = std::min(config.vantage_sample, local.size());
      eval.reserve(n_eval);
      for (std::size_t i = 0; i < n_eval; ++i) {
        eval.push_back(rng.uniform_below(local.size()));
      }
      double best_spread = -1.0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const double spread =
            vptree::vantage_spread(candidates[c].data(), local, eval, dist);
        if (spread > best_spread) {
          best_spread = spread;
          best_idx = c;
        }
      }
    }
    winner = candidates[best_idx];
  }

  auto winner_bytes = comm.bcast(
      std::as_bytes(std::span<const float>(winner)), 0);
  std::vector<float> out(local.dim());
  std::memcpy(out.data(), winner_bytes.data(), out.size() * sizeof(float));
  return out;
}

}  // namespace

std::uint64_t exscan_u64(mpi::Comm& comm, std::uint64_t value,
                         std::uint64_t* total_out) {
  auto all = comm.gather_values(value, 0);
  std::vector<std::vector<std::byte>> payloads;
  std::uint64_t total = 0;
  if (comm.rank() == 0) {
    payloads.resize(std::size_t(comm.size()));
    std::uint64_t prefix = 0;
    for (int i = 0; i < comm.size(); ++i) {
      BinaryWriter w;
      w.write(prefix);
      payloads[std::size_t(i)] = w.take();
      prefix += all[std::size_t(i)];
    }
    total = prefix;
  }
  auto mine = comm.scatter(payloads, 0);
  BinaryReader r(mine);
  const auto my_prefix = r.read<std::uint64_t>();
  if (total_out != nullptr) {
    *total_out = comm.bcast_value(total, 0);
  }
  return my_prefix;
}

float distributed_median(mpi::Comm& comm, std::vector<float> local_values) {
  std::uint64_t total = 0;
  (void)exscan_u64(comm, local_values.size(), &total);
  ANNSIM_CHECK_MSG(total > 0, "distributed_median over an empty set");
  std::uint64_t k = (total - 1) / 2;  // lower median, 0-indexed

  std::vector<float> remaining = std::move(local_values);
  for (;;) {
    // Pivot: median of the per-rank medians (ranks with no data abstain).
    float local_med = 0.f;
    std::uint8_t has = 0;
    if (!remaining.empty()) {
      auto mid = remaining.begin() + std::ptrdiff_t(remaining.size() / 2);
      std::nth_element(remaining.begin(), mid, remaining.end());
      local_med = *mid;
      has = 1;
    }
    struct MedMsg {
      float med;
      std::uint8_t has;
    };
    auto msgs = comm.gather_values(MedMsg{local_med, has}, 0);
    float pivot = 0.f;
    if (comm.rank() == 0) {
      std::vector<float> meds;
      for (const auto& m : msgs) {
        if (m.has != 0) meds.push_back(m.med);
      }
      ANNSIM_CHECK(!meds.empty());
      auto mid = meds.begin() + std::ptrdiff_t(meds.size() / 2);
      std::nth_element(meds.begin(), mid, meds.end());
      pivot = *mid;
    }
    pivot = comm.bcast_value(pivot, 0);

    std::uint64_t less = 0, equal = 0;
    for (float v : remaining) {
      if (v < pivot) ++less;
      else if (v == pivot) ++equal;
    }
    const auto global_less =
        comm.allreduce(less, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const auto global_equal =
        comm.allreduce(equal, [](std::uint64_t a, std::uint64_t b) { return a + b; });

    if (k < global_less) {
      std::erase_if(remaining, [&](float v) { return v >= pivot; });
    } else if (k < global_less + global_equal) {
      return pivot;
    } else {
      std::erase_if(remaining, [&](float v) { return v <= pivot; });
      k -= global_less + global_equal;
    }
  }
}

namespace {

/// Serialize a rank's construction path for the gather at rank 0.
std::vector<std::byte> pack_path(const std::vector<PathStep>& path,
                                 PartitionId leaf) {
  BinaryWriter w;
  w.write(std::uint32_t(path.size()));
  for (const auto& s : path) {
    w.write(std::uint8_t(s.went_left ? 1 : 0));
    w.write(s.mu);
    w.write_vector(s.vp);
  }
  w.write(leaf);
  return w.take();
}

struct DecodedPath {
  std::vector<PathStep> steps;
  PartitionId leaf = kInvalidPartition;
};

DecodedPath unpack_path(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  DecodedPath out;
  const auto n = r.read<std::uint32_t>();
  out.steps.resize(n);
  for (auto& s : out.steps) {
    s.went_left = r.read<std::uint8_t>() != 0;
    s.mu = r.read<float>();
    s.vp = r.read_vector<float>();
  }
  out.leaf = r.read<PartitionId>();
  return out;
}

/// Assemble the router tree from all ranks' paths (rank 0 only).
std::int32_t assemble(std::vector<vptree::PartitionVpTree::Node>& nodes,
                      std::vector<const DecodedPath*> paths, std::size_t depth) {
  ANNSIM_CHECK(!paths.empty());
  const std::int32_t id = std::int32_t(nodes.size());
  nodes.emplace_back();

  if (paths.size() == 1 && paths[0]->steps.size() == depth) {
    nodes[id].leaf = paths[0]->leaf;
    return id;
  }

  std::vector<const DecodedPath*> left, right;
  for (const auto* p : paths) {
    ANNSIM_CHECK_MSG(p->steps.size() > depth, "inconsistent construction paths");
    (p->steps[depth].went_left ? left : right).push_back(p);
  }
  ANNSIM_CHECK_MSG(!left.empty() && !right.empty(),
                   "construction paths missing a subtree");

  nodes[id].vp = left[0]->steps[depth].vp;
  nodes[id].mu = left[0]->steps[depth].mu;
  const std::int32_t l = assemble(nodes, std::move(left), depth + 1);
  const std::int32_t r = assemble(nodes, std::move(right), depth + 1);
  nodes[id].left = l;
  nodes[id].right = r;
  return id;
}

}  // namespace

PartitionerResult build_distributed_vp_tree(mpi::Comm& comm,
                                            data::Dataset initial,
                                            const PartitionerConfig& config) {
  ANNSIM_CHECK_MSG(std::has_single_bit(std::size_t(comm.size())),
                   "worker count must be a power of two");
  ANNSIM_CHECK_MSG(simd::is_true_metric(config.metric),
                   "VP partitioning requires a true metric");
  WallTimer timer;

  const std::size_t dim = initial.dim();
  const int orig_rank = comm.rank();
  Rng rng = Rng(config.seed).split(std::uint64_t(orig_rank));

  data::Dataset local = std::move(initial);
  std::vector<PathStep> path;

  // Algorithm 2: recurse, halving the rank group each level.
  mpi::Comm group = comm;  // copies are views onto the same communicator
  while (group.size() > 1) {
    const simd::DistanceComputer dist(config.metric, dim);

    // --- Algorithm 1: distributed vantage-point selection.
    std::vector<float> vp = select_vantage_distributed(group, local, config, rng);

    // --- distances to the vantage point; distributed median -> mu.
    std::vector<float> dists(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      dists[i] = dist(vp.data(), local.row(i));
    }
    const float mu = distributed_median(group, dists);

    // --- split rows: D_L = inside the sphere; ties on the boundary are
    // dealt globally so the two sides stay equally sized.
    std::vector<std::size_t> left_rows, right_rows, tie_rows;
    for (std::size_t i = 0; i < local.size(); ++i) {
      if (dists[i] < mu) left_rows.push_back(i);
      else if (dists[i] == mu) tie_rows.push_back(i);
      else right_rows.push_back(i);
    }
    std::uint64_t total_less = 0;
    (void)exscan_u64(group, left_rows.size(), &total_less);
    std::uint64_t total_all = 0;
    const std::uint64_t tie_prefix =
        exscan_u64(group, tie_rows.size(), &total_all);
    std::uint64_t grand_total = 0;
    (void)exscan_u64(group, local.size(), &grand_total);
    const std::uint64_t want_left = grand_total / 2;
    const std::uint64_t ties_to_left =
        want_left > total_less ? want_left - total_less : 0;
    for (std::size_t t = 0; t < tie_rows.size(); ++t) {
      if (tie_prefix + t < ties_to_left) left_rows.push_back(tie_rows[t]);
      else right_rows.push_back(tie_rows[t]);
    }

    // --- shuffle: deal left rows evenly over the first half of the group,
    // right rows over the second half (MPI_Alltoallv).
    const std::size_t h = std::size_t(group.size()) / 2;
    const std::size_t rh = std::size_t(group.size()) - h;

    std::uint64_t total_left = 0, total_right = 0;
    const std::uint64_t off_left = exscan_u64(group, left_rows.size(), &total_left);
    const std::uint64_t off_right =
        exscan_u64(group, right_rows.size(), &total_right);

    const std::uint64_t chunk_left =
        std::max<std::uint64_t>(1, (total_left + h - 1) / h);
    const std::uint64_t chunk_right =
        std::max<std::uint64_t>(1, (total_right + rh - 1) / rh);

    std::vector<std::vector<std::size_t>> rows_for_dest(std::size_t(group.size()));
    for (std::size_t i = 0; i < left_rows.size(); ++i) {
      const std::uint64_t g = off_left + i;
      const std::size_t dest = std::min(std::size_t(g / chunk_left), h - 1);
      rows_for_dest[dest].push_back(left_rows[i]);
    }
    for (std::size_t i = 0; i < right_rows.size(); ++i) {
      const std::uint64_t g = off_right + i;
      const std::size_t dest = h + std::min(std::size_t(g / chunk_right), rh - 1);
      rows_for_dest[dest].push_back(right_rows[i]);
    }

    std::vector<std::vector<std::byte>> send_bufs(std::size_t(group.size()));
    for (std::size_t d = 0; d < send_bufs.size(); ++d) {
      send_bufs[d] = pack_dataset_rows(local, rows_for_dest[d]);
    }
    auto recv_bufs = group.alltoallv(send_bufs);
    local = unpack_datasets(recv_bufs, dim);

    // --- record the path step and descend into my half.
    const bool went_left = std::size_t(group.rank()) < h;
    path.push_back(PathStep{std::move(vp), mu, went_left});
    group = group.split(went_left ? 0 : 1);
  }

  // --- assemble the router at rank 0 from everyone's paths.
  PartitionerResult result;
  result.partition_id = PartitionId(orig_rank);
  auto gathered = comm.gather(pack_path(path, result.partition_id), 0);
  if (orig_rank == 0) {
    std::vector<DecodedPath> decoded;
    decoded.reserve(gathered.size());
    for (const auto& buf : gathered) decoded.push_back(unpack_path(buf));
    std::vector<const DecodedPath*> ptrs;
    ptrs.reserve(decoded.size());
    for (const auto& d : decoded) ptrs.push_back(&d);

    std::vector<vptree::PartitionVpTree::Node> nodes;
    const std::int32_t root = assemble(nodes, std::move(ptrs), 0);

    vptree::PartitionVpTreeParams tree_params;
    tree_params.target_partitions = std::size_t(comm.size());
    tree_params.vantage_candidates = config.vantage_candidates;
    tree_params.vantage_sample = config.vantage_sample;
    tree_params.seed = config.seed;
    tree_params.metric = config.metric;
    vptree::PartitionVpTree tree(std::move(nodes), root,
                                 std::size_t(comm.size()), dim, tree_params);
    BinaryWriter w;
    tree.serialize(w);
    result.serialized_tree = w.take();
  }

  result.partition = std::move(local);
  result.build_seconds = timer.seconds();
  return result;
}

}  // namespace annsim::core
