#include "annsim/core/dataset_transfer.hpp"

namespace annsim::core {

std::vector<std::byte> pack_dataset_rows(const data::Dataset& d,
                                         std::span<const std::size_t> rows) {
  BinaryWriter w;
  w.write(std::uint64_t(rows.size()));
  for (std::size_t r : rows) {
    w.write(d.id(r));
    const float* row = d.row(r);
    for (std::size_t i = 0; i < d.dim(); ++i) w.write(row[i]);
  }
  return w.take();
}

std::vector<std::byte> pack_dataset(const data::Dataset& d) {
  std::vector<std::size_t> rows(d.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return pack_dataset_rows(d, rows);
}

data::Dataset unpack_datasets(const std::vector<std::vector<std::byte>>& buffers,
                              std::size_t dim) {
  std::size_t total = 0;
  for (const auto& b : buffers) {
    if (b.empty()) continue;
    BinaryReader r(b);
    total += r.read<std::uint64_t>();
  }
  data::Dataset out(total, dim);
  std::size_t row = 0;
  std::vector<float> tmp(dim);
  for (const auto& b : buffers) {
    if (b.empty()) continue;
    BinaryReader r(b);
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      out.set_id(row, r.read<GlobalId>());
      for (std::size_t d2 = 0; d2 < dim; ++d2) tmp[d2] = r.read<float>();
      out.set_row(row, tmp);
      ++row;
    }
  }
  return out;
}

data::Dataset unpack_dataset(std::span<const std::byte> buffer, std::size_t dim) {
  std::vector<std::vector<std::byte>> one;
  one.emplace_back(buffer.begin(), buffer.end());
  return unpack_datasets(one, dim);
}

}  // namespace annsim::core
