#include "annsim/explore/scenario.hpp"

#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "annsim/check/check.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/recovery/write_log.hpp"

namespace annsim::explore {

namespace fs = std::filesystem;

const char* mix_name(Mix mix) {
  switch (mix) {
    case Mix::kWrite: return "write";
    case Mix::kQuery: return "query";
    case Mix::kCompact: return "compact";
    case Mix::kHeal: return "heal";
    case Mix::kMixed: return "mixed";
  }
  return "?";
}

std::optional<Mix> parse_mix(const std::string& name) {
  if (name == "write") return Mix::kWrite;
  if (name == "query") return Mix::kQuery;
  if (name == "compact") return Mix::kCompact;
  if (name == "heal") return Mix::kHeal;
  if (name == "mixed") return Mix::kMixed;
  return std::nullopt;
}

namespace {

/// Collects oracle failures into one growing message.
class Oracle {
 public:
  template <typename... Parts>
  void expect(bool ok, const Parts&... parts) {
    if (ok) return;
    ++failures_;
    std::ostringstream os;
    (os << ... << parts);
    if (!message_.empty()) message_ += "; ";
    message_ += os.str();
  }
  [[nodiscard]] std::size_t failures() const { return failures_; }
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  std::size_t failures_ = 0;
  std::string message_;
};

/// A row we later try to delete can no longer be expected present: even a
/// partially-acked delete may have tombstoned some replicas.
void forget(std::vector<GlobalId>& ids, GlobalId id) {
  std::erase(ids, id);
}

/// Ids in `ws.assigned_ids` the engine acked (durable on >= 1 replica).
std::vector<GlobalId> acked_ids(const core::WriteStats& ws) {
  std::vector<GlobalId> out;
  for (std::size_t i = 0; i < ws.assigned_ids.size(); ++i) {
    if (i < ws.row_acked.size() && ws.row_acked[i]) {
      out.push_back(ws.assigned_ids[i]);
    }
  }
  return out;
}

bool identical_results(const data::KnnResults& a, const data::KnnResults& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist != b[q][i].dist) {
        return false;
      }
    }
  }
  return true;
}

/// Cross-replica WAL invariants, checked after the engine (and its open log
/// handles) are gone: every replica of one logical row logged the same LSN,
/// deletes land above the insert they tombstone, and each log's synced
/// watermark covers every record it holds.
void check_wals(Oracle& oracle, const std::string& wal_dir,
                std::size_t workers) {
  std::map<GlobalId, std::uint64_t> insert_lsn;   // id -> agreed LSN
  std::map<GlobalId, std::uint64_t> delete_lsn;   // id -> agreed LSN
  for (std::size_t w = 0; w < workers; ++w) {
    const std::string dir = wal_dir + "/worker_" + std::to_string(w);
    if (!fs::exists(dir)) continue;
    recovery::WriteLog log(dir);
    const auto records = log.read_tail(0);
    // (partition, id, lsn) triples must be unique within one log: the same
    // logical write landing twice would double-apply on replay.
    std::set<std::tuple<PartitionId, GlobalId, std::uint64_t>> seen;
    for (const auto& rec : records) {
      oracle.expect(rec.lsn <= log.last_synced_lsn(), "worker ", w,
                    " WAL holds lsn ", rec.lsn, " above its synced watermark ",
                    log.last_synced_lsn());
      if (rec.type == recovery::WalRecordType::kInsert) {
        oracle.expect(seen.emplace(rec.partition, rec.id, rec.lsn).second,
                      "worker ", w, " logged row ", rec.id, " (partition ",
                      rec.partition, ", lsn ", rec.lsn, ") twice");
        const auto [it, fresh] = insert_lsn.emplace(rec.id, rec.lsn);
        (void)fresh;
        oracle.expect(it->second == rec.lsn, "row ", rec.id,
                      " logged under lsn ", rec.lsn, " on worker ", w,
                      " but lsn ", it->second, " elsewhere");
      } else if (rec.type == recovery::WalRecordType::kDelete) {
        const auto [it, fresh] = delete_lsn.emplace(rec.id, rec.lsn);
        (void)fresh;
        oracle.expect(it->second == rec.lsn, "delete of ", rec.id,
                      " logged under lsn ", rec.lsn, " on worker ", w,
                      " but lsn ", it->second, " elsewhere");
      }
    }
  }
  // Monotone tombstones: a delete's LSN must sit above the insert it kills,
  // or replay order could resurrect the row.
  for (const auto& [id, dlsn] : delete_lsn) {
    const auto it = insert_lsn.find(id);
    if (it == insert_lsn.end()) continue;  // delete of a build-corpus row
    oracle.expect(dlsn > it->second, "row ", id, " deleted at lsn ", dlsn,
                  " <= its insert lsn ", it->second);
  }
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& cfg,
                            const std::shared_ptr<ScheduleController>& ctrl,
                            std::shared_ptr<ScheduleStrategy> strategy,
                            ScheduleOptions opts) {
  ScenarioResult result;
  Oracle oracle;

  // Identical disk state on every (re-)execution — DFS replays depend on it.
  const std::string scratch = cfg.scratch_dir.empty()
                                  ? (fs::temp_directory_path() /
                                     "annsim_explore_scratch").string()
                                  : cfg.scratch_dir;
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  const std::string wal_dir = scratch + "/wal";
  const std::string ckpt_dir = scratch + "/ckpt";

  const auto workload =
      data::make_sift_like(cfg.base_rows, cfg.queries, cfg.seed);

  core::EngineConfig ec;
  ec.n_workers = cfg.workers;
  ec.replication = cfg.replication;
  ec.n_probe = std::min<std::size_t>(cfg.workers, 2);
  // Controlled runs need every engine thread to be a tracked rank: one
  // search thread per worker, two-sided results (no master poll loop), and
  // no failure-detection beacon helpers.
  ec.threads_per_worker = 1;
  ec.one_sided = false;
  ec.result_timeout_ms = 0.0;
  ec.local_index = core::LocalIndexKind::kSegmented;
  ec.segment_delta_capacity = 64;
  ec.partitioner.vantage_candidates = 4;
  ec.partitioner.vantage_sample = 16;
  ec.seed = cfg.seed;
  ec.checkpoint_dir = ckpt_dir;
  ec.wal_dir = wal_dir;
  if (cfg.arm_faults || cfg.mix == Mix::kHeal) {
    // A kill rule that never fires still arms the injector, which is the
    // lever that routes the write plane through its recv_for paths — every
    // round-timeout becomes a schedulable choice point.
    mpi::KillRule never;
    never.rank = 1;
    ec.fault.kills.push_back(never);
  }
  if (cfg.mix == Mix::kHeal) {
    // Real mid-stream death: the last worker's third post-build send op (its
    // third write-round ack) is swallowed and the rank goes fail-silent.
    mpi::KillRule kill;
    kill.rank = int(cfg.workers);  // worker W-1 = global rank W
    kill.after_ops = 2;
    ec.fault.kills.push_back(kill);
    // A kill that actually fires requires the failure detector. That is safe
    // here because this mix never searches under control — detection's beacon
    // helpers only spawn on the query plane — while the write plane's
    // recv_for deadline stays a schedulable choice point either way.
    ec.result_timeout_ms = 1000.0;
  }

  core::DistributedAnnEngine engine(&workload.base, ec);
  if (cfg.mpi_check) engine.set_mpi_check(true, /*fatal=*/false);
  engine.build();

  // Fault-free baseline for the read-stability oracle, before any control.
  data::KnnResults baseline;
  if (cfg.mix == Mix::kQuery) {
    baseline = engine.search(workload.queries, cfg.k);
  }

  std::vector<GlobalId> acked_inserts;
  std::vector<GlobalId> acked_deletes;
  data::KnnResults controlled_results;

  engine.set_schedule(ctrl);
  result.outcome = run_controlled(
      *ctrl, std::move(strategy),
      [&] {
        switch (cfg.mix) {
          case Mix::kWrite: {
            const auto rows1 =
                data::make_sift_like(cfg.write_rows, 1, cfg.seed + 11).base;
            const auto rows2 =
                data::make_sift_like(cfg.write_rows, 1, cfg.seed + 12).base;
            const auto ws1 = engine.insert(rows1);
            const auto ws2 = engine.insert(rows2);
            for (const auto id : acked_ids(ws1)) acked_inserts.push_back(id);
            for (const auto id : acked_ids(ws2)) acked_inserts.push_back(id);
            if (!ws1.assigned_ids.empty()) {
              const GlobalId victim = ws1.assigned_ids.front();
              const auto wd = engine.remove({&victim, 1});
              forget(acked_inserts, victim);
              if (wd.all_acked && wd.erased_replicas > 0) {
                acked_deletes.push_back(victim);
              }
            }
            break;
          }
          case Mix::kQuery:
            controlled_results = engine.search(workload.queries, cfg.k);
            break;
          case Mix::kCompact: {
            const auto rows =
                data::make_sift_like(cfg.write_rows, 1, cfg.seed + 21).base;
            const auto ws = engine.insert(rows);
            for (const auto id : acked_ids(ws)) acked_inserts.push_back(id);
            (void)engine.compact();
            break;
          }
          case Mix::kHeal: {
            for (int round = 0; round < 3; ++round) {
              const auto rows = data::make_sift_like(cfg.write_rows, 1,
                                                     cfg.seed + 31 + round)
                                    .base;
              const auto ws = engine.insert(rows);
              for (const auto id : acked_ids(ws)) acked_inserts.push_back(id);
            }
            break;
          }
          case Mix::kMixed: {
            const auto rows =
                data::make_sift_like(cfg.write_rows, 1, cfg.seed + 41).base;
            const auto ws = engine.insert(rows);
            for (const auto id : acked_ids(ws)) acked_inserts.push_back(id);
            (void)engine.search(workload.queries, cfg.k);
            if (!ws.assigned_ids.empty()) {
              const GlobalId victim = ws.assigned_ids.back();
              const auto wd = engine.remove({&victim, 1});
              forget(acked_inserts, victim);
              if (wd.all_acked && wd.erased_replicas > 0) {
                acked_deletes.push_back(victim);
              }
            }
            (void)engine.compact();
            break;
          }
        }
      },
      opts);
  engine.set_schedule(nullptr);

  // ---- oracles (free-running). A schedule failure above still runs them:
  // a deadlocked schedule must not have broken durability either.
  const auto heal_report = engine.heal();
  (void)heal_report;

  for (const auto id : acked_inserts) {
    oracle.expect(engine.contains(id), "acked insert ", id,
                  " missing after crash+heal");
  }
  for (const auto id : acked_deletes) {
    oracle.expect(!engine.contains(id), "acked delete ", id,
                  " resurrected after crash+heal");
  }
  oracle.expect(engine.under_replicated_partitions().empty(),
                "partitions under-replicated after heal");
  for (std::size_t p = 0; p < cfg.workers; ++p) {
    oracle.expect(engine.live_replicas(PartitionId(p)) == cfg.replication,
                  "partition ", p, " has ",
                  engine.live_replicas(PartitionId(p)), " live replicas, want ",
                  cfg.replication);
  }
  if (cfg.mix == Mix::kQuery) {
    oracle.expect(identical_results(baseline, controlled_results),
                  "controlled top-k diverged from the fault-free baseline");
  }
  if (cfg.mpi_check) {
    const auto report = engine.check_report();
    oracle.expect(report.clean(),
                  "mpi-check violations: ", check::to_string(report));
  }

  // The WAL invariants read the log files directly, so the engine (and its
  // open handles) must be gone first.
  const bool wal_oracle = cfg.mix != Mix::kQuery;
  {
    core::DistributedAnnEngine drop = std::move(engine);
    (void)drop;
  }
  if (wal_oracle) check_wals(oracle, wal_dir, cfg.workers);

  result.oracle_failures = oracle.failures();
  if (oracle.failures() > 0) {
    if (!result.outcome.error.empty()) result.outcome.error += "; ";
    result.outcome.error += "oracle: " + oracle.message();
  }
  fs::remove_all(scratch);
  return result;
}

}  // namespace annsim::explore
