#include "annsim/explore/explore.hpp"

#include <algorithm>
#include <charconv>
#include <climits>
#include <sstream>
#include <string_view>

#include "annsim/common/error.hpp"

namespace annsim::explore {

// ------------------------------------------------------- RandomStrategy ---

RandomStrategy::RandomStrategy(std::uint64_t seed) : rng_(seed) {}

std::size_t RandomStrategy::pick(const std::vector<ChoiceEvent>& eligible) {
  return std::size_t(rng_.uniform_below(eligible.size()));
}

// ---------------------------------------------------------- PctStrategy ---

namespace {

/// Priority key: events from the same channel keep the same priority for
/// their whole lifetime, so a demotion sticks to the channel, not to one
/// message. Timeouts and RMA ops key on the waiting/origin rank.
std::uint64_t pct_key(const ChoiceEvent& ev) {
  return (std::uint64_t(std::uint8_t(ev.kind)) << 56) ^
         (std::uint64_t(std::uint32_t(ev.source)) << 28) ^
         std::uint64_t(std::uint32_t(ev.dest));
}

}  // namespace

PctStrategy::PctStrategy(std::uint64_t seed, int depth,
                         std::uint64_t expected_steps)
    : rng_(seed) {
  const int changes = std::max(0, depth - 1);
  for (int i = 0; i < changes; ++i) {
    change_points_.push_back(rng_.uniform_below(std::max<std::uint64_t>(
                                 expected_steps, std::uint64_t(changes) + 1)) +
                             1);
  }
  std::sort(change_points_.begin(), change_points_.end());
}

std::size_t PctStrategy::pick(const std::vector<ChoiceEvent>& eligible) {
  ++decisions_;
  std::size_t best = 0;
  std::int64_t best_prio = INT64_MIN;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    const std::uint64_t key = pct_key(eligible[i]);
    auto it = std::find_if(priorities_.begin(), priorities_.end(),
                           [&](const auto& p) { return p.first == key; });
    if (it == priorities_.end()) {
      // Fresh channel: a random priority in the high band (>= 0), so demoted
      // channels (negative band) always lose to never-demoted ones.
      priorities_.emplace_back(key, std::int64_t(rng_.uniform_below(1u << 30)));
      it = std::prev(priorities_.end());
    }
    if (it->second > best_prio) {
      best_prio = it->second;
      best = i;
    }
  }
  if (next_change_ < change_points_.size() &&
      decisions_ >= change_points_[next_change_]) {
    ++next_change_;
    const std::uint64_t key = pct_key(eligible[best]);
    for (auto& p : priorities_) {
      if (p.first == key) p.second = demote_counter_--;
    }
  }
  return best;
}

// ------------------------------------------------------- ForcedStrategy ---

ForcedStrategy::ForcedStrategy(std::vector<std::uint8_t> choices, bool strict)
    : choices_(std::move(choices)), strict_(strict) {}

std::size_t ForcedStrategy::pick(const std::vector<ChoiceEvent>& eligible) {
  if (pos_ >= choices_.size()) {
    if (strict_) {
      throw Error(
          "replay divergence: execution hit branch point #" +
          std::to_string(pos_ + 1) + " but the trace recorded only " +
          std::to_string(choices_.size()));
    }
    return 0;
  }
  const std::size_t c = choices_[pos_++];
  if (c >= eligible.size()) {
    if (strict_) {
      throw Error("replay divergence: recorded choice " + std::to_string(c) +
                  " at branch point #" + std::to_string(pos_) +
                  " but only " + std::to_string(eligible.size()) +
                  " events are eligible");
    }
    return 0;
  }
  return c;
}

// --------------------------------------------------------- replay tokens ---

namespace {

constexpr char kHex[] = "0123456789abcdef";

std::string hex_u64(std::uint64_t v) {
  std::string out;
  do {
    out.push_back(kHex[v & 0xf]);
    v >>= 4;
  } while (v != 0);
  std::reverse(out.begin(), out.end());
  return out;
}

bool parse_hex_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out, 16);
  return ec == std::errc{} && p == s.data() + s.size();
}

}  // namespace

std::string encode_replay_token(char strategy, std::uint64_t seed, int depth,
                                const ScheduleTrace& trace) {
  std::string out = "X1.";
  out.push_back(strategy);
  out.push_back('.');
  out += hex_u64(seed);
  out.push_back('.');
  out += std::to_string(depth);
  out.push_back('.');
  for (const std::uint8_t c : trace.choices) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  out.push_back('.');
  out += hex_u64(trace.digest);
  return out;
}

std::optional<ReplayToken> decode_replay_token(const std::string& token) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const auto dot = token.find('.', start);
    parts.push_back(token.substr(start, dot - start));
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  if (parts.size() != 6 || parts[0] != "X1" || parts[1].size() != 1) {
    return std::nullopt;
  }
  ReplayToken t;
  t.strategy = parts[1][0];
  if (t.strategy != 'r' && t.strategy != 'p' && t.strategy != 'd' &&
      t.strategy != 'f') {
    return std::nullopt;
  }
  if (!parse_hex_u64(parts[2], t.seed)) return std::nullopt;
  try {
    t.depth = std::stoi(parts[3]);
  } catch (...) {
    return std::nullopt;
  }
  const std::string& ch = parts[4];
  if (ch.size() % 2 != 0) return std::nullopt;
  for (std::size_t i = 0; i < ch.size(); i += 2) {
    std::uint64_t b = 0;
    if (!parse_hex_u64(std::string_view(ch).substr(i, 2), b)) return std::nullopt;
    t.choices.push_back(std::uint8_t(b));
  }
  if (!parse_hex_u64(parts[5], t.digest)) return std::nullopt;
  return t;
}

// ------------------------------------------------------ controlled runs ---

RunOutcome run_controlled(ScheduleController& ctrl,
                          std::shared_ptr<ScheduleStrategy> strategy,
                          const std::function<void()>& body,
                          ScheduleOptions opts) {
  RunOutcome out;
  ctrl.arm(std::move(strategy), opts);
  try {
    body();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.trace = ctrl.disarm();
  if (out.error.empty() && !out.trace.error.empty()) {
    out.error = out.trace.error;
  }
  return out;
}

// ------------------------------------------------- exhaustive enumeration ---

bool independent(const ChoiceEvent& a, const ChoiceEvent& b) {
  const bool a_rma = a.kind == ChoiceKind::kRma;
  const bool b_rma = b.kind == ChoiceKind::kRma;
  if (a_rma != b_rma) return true;
  // Two RMA grants conflict at a shared target; two message-plane events
  // (deliver/timeout) conflict at a shared destination rank. ChoiceEvent
  // sets dest == source for timeouts, so one rule covers both kinds.
  return a.dest != b.dest;
}

/// The strategy face of DfsDriver: forwards every branch decision.
/// Namespace scope (not anonymous) so DfsDriver's friend declaration names
/// this exact type.
class DfsStrategy final : public ScheduleStrategy {
 public:
  explicit DfsStrategy(DfsDriver* driver) : driver_(driver) {}
  std::size_t pick(const std::vector<ChoiceEvent>& eligible) override {
    return driver_->decide(eligible);
  }

 private:
  DfsDriver* driver_;
};

namespace {

bool in_sleep(const std::vector<ChoiceEvent>& sleep, const ChoiceEvent& ev) {
  return std::find(sleep.begin(), sleep.end(), ev) != sleep.end();
}

}  // namespace

DfsDriver::DfsDriver(std::size_t max_schedules)
    : max_schedules_(max_schedules) {}

std::shared_ptr<ScheduleStrategy> DfsDriver::strategy() {
  depth_ = 0;
  return std::make_shared<DfsStrategy>(this);
}

std::size_t DfsDriver::decide(const std::vector<ChoiceEvent>& eligible) {
  if (depth_ < path_.size()) {
    // Replaying the committed prefix: the program must present the exact
    // eligible set it presented last time, or it is not deterministic and
    // nothing the explorer reports can be trusted.
    Node& node = path_[depth_];
    if (node.eligible != eligible) {
      std::ostringstream os;
      os << "exploration divergence at branch point #" << depth_
         << ": eligible set changed across re-execution (was "
         << node.eligible.size() << " events, now " << eligible.size()
         << ") — the program under test is not schedule-deterministic";
      throw Error(os.str());
    }
    ++depth_;
    return node.chosen;
  }

  Node node;
  node.eligible = eligible;
  if (!path_.empty()) {
    // Sleep-set inheritance: events that commute with the parent's chosen
    // transition stay asleep in the child (their orders were or will be
    // covered on the sibling branch).
    const Node& parent = path_.back();
    const ChoiceEvent& taken = parent.eligible[parent.chosen];
    for (const ChoiceEvent& ev : parent.sleep) {
      if (independent(ev, taken)) node.sleep.push_back(ev);
    }
  }
  node.chosen = 0;
  node.exhausted = true;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (!in_sleep(node.sleep, eligible[i])) {
      node.chosen = i;
      node.exhausted = false;
      break;
    }
  }
  const std::size_t pick = node.chosen;
  path_.push_back(std::move(node));
  ++depth_;
  return pick;
}

bool DfsDriver::advance() {
  ++schedules_;
  if (schedules_ >= max_schedules_) {
    truncated_ = !path_.empty();
    return false;
  }
  while (!path_.empty()) {
    Node& node = path_.back();
    if (!node.exhausted) {
      node.sleep.push_back(node.eligible[node.chosen]);
      bool found = false;
      for (std::size_t i = node.chosen + 1; i < node.eligible.size(); ++i) {
        if (!in_sleep(node.sleep, node.eligible[i])) {
          node.chosen = i;
          found = true;
          break;
        }
      }
      if (found) return true;
    }
    path_.pop_back();
  }
  return false;
}

}  // namespace annsim::explore
