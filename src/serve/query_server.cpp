#include "annsim/serve/query_server.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "annsim/common/error.hpp"
#include "annsim/common/log.hpp"
#include "annsim/data/dataset.hpp"

namespace annsim::serve {

namespace {

double to_ms(std::chrono::steady_clock::duration d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

const char* to_string(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kDeadlineExpired: return "deadline-expired";
    case QueryStatus::kShutdown: return "shutdown";
    case QueryStatus::kError: return "error";
    case QueryStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

QueryServer::QueryServer(core::DistributedAnnEngine* engine,
                         ServerConfig config)
    : engine_(engine), config_(config) {
  ANNSIM_CHECK(engine_ != nullptr);
  ANNSIM_CHECK_MSG(engine_->built(),
                   "QueryServer requires a built engine (call build() first)");
  ANNSIM_CHECK_MSG(config_.max_batch >= 1, "max_batch must be nonzero");
  ANNSIM_CHECK_MSG(config_.queue_capacity >= 1,
                   "queue_capacity must be nonzero");
  ANNSIM_CHECK_MSG(config_.max_delay_ms >= 0.0,
                   "max_delay_ms cannot be negative");
  ANNSIM_CHECK_MSG(config_.retry_backoff_ms >= 0.0,
                   "retry_backoff_ms cannot be negative");
  ANNSIM_CHECK_MSG(
      config_.compact_at_fill == 0 ||
          engine_->config().local_index == core::LocalIndexKind::kSegmented,
      "compact_at_fill requires a segmented engine (local_index=segmented)");
  dim_ = engine_->router().dim();
  max_delay_ = std::chrono::duration<double, std::milli>(config_.max_delay_ms);
  scheduler_ = std::thread([this] { scheduler_main(); });
}

QueryServer::~QueryServer() { stop(); }

std::future<QueryResponse> QueryServer::submit(std::vector<float> query,
                                               std::size_t k,
                                               double deadline_ms) {
  ANNSIM_CHECK_MSG(query.size() == dim_, "query dimension "
                                             << query.size()
                                             << " != index dimension " << dim_);
  ANNSIM_CHECK_MSG(k >= 1, "k must be nonzero");

  Pending p;
  p.query = std::move(query);
  p.k = k;
  p.admitted = Clock::now();
  if (deadline_ms > 0.0) {
    p.deadline = p.admitted +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(deadline_ms));
  }
  auto fut = p.promise.get_future();

  std::unique_lock lk(mu_);
  if (!stopping_ && queue_.size() >= config_.queue_capacity) {
    if (config_.overflow == OverflowPolicy::kReject) {
      lk.unlock();
      metrics_.on_reject();
      QueryResponse resp;
      resp.status = QueryStatus::kRejected;
      p.promise.set_value(std::move(resp));
      return fut;
    }
    // kBlock: backpressure the submitter until the scheduler drains a slot.
    cv_space_.wait(lk, [&] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    });
  }
  if (stopping_) {
    lk.unlock();
    metrics_.on_fail();
    QueryResponse resp;
    resp.status = QueryStatus::kShutdown;
    resp.total_ms = to_ms(Clock::now() - p.admitted);
    p.promise.set_value(std::move(resp));
    return fut;
  }
  queue_.push_back(std::move(p));
  const std::size_t depth = queue_.size();
  lk.unlock();
  metrics_.on_submit(depth);
  cv_work_.notify_one();
  return fut;
}

void QueryServer::expire_overdue_locked(Clock::time_point now) {
  bool freed = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline <= now) {
      QueryResponse resp;
      resp.status = QueryStatus::kDeadlineExpired;
      resp.total_ms = to_ms(now - it->admitted);
      // Record before fulfilling: a client woken by this future may snapshot
      // metrics immediately, and the expiry must already be counted.
      metrics_.on_expire();
      it->promise.set_value(std::move(resp));
      it = queue_.erase(it);
      freed = true;
    } else {
      ++it;
    }
  }
  if (freed) cv_space_.notify_all();
}

void QueryServer::scheduler_main() {
  std::unique_lock lk(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (stopping_) break;
      cv_work_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      continue;
    }

    const auto now = Clock::now();
    // Deadlines are honored even for requests still waiting in the queue:
    // an expired request completes at its deadline, never later.
    expire_overdue_locked(now);
    if (queue_.empty()) continue;

    // Requests in retry backoff (not_before in the future) are invisible to
    // the flush decision until their gate opens — except when draining, when
    // everything still queued goes out immediately.
    std::size_t eligible = 0;
    auto flush_at = Clock::time_point::max();
    auto wake = Clock::time_point::max();
    for (const auto& p : queue_) {
      wake = std::min(wake, p.deadline);
      if (stopping_ || p.not_before <= now) {
        ++eligible;
        flush_at = std::min(
            flush_at,
            p.admitted + std::chrono::duration_cast<Clock::duration>(max_delay_));
      } else {
        wake = std::min(wake, p.not_before);
      }
    }
    if (!stopping_ && (eligible == 0 ||
                       (eligible < config_.max_batch && now < flush_at))) {
      // Sleep until the max_delay flush point, the earliest queued deadline,
      // the earliest backoff gate, a batch-filling arrival, or stop() —
      // whichever comes first.
      if (eligible > 0) wake = std::min(wake, flush_at);
      const std::size_t seen = queue_.size();
      cv_work_.wait_until(lk, wake, [&] {
        return stopping_ || queue_.size() >= config_.max_batch ||
               queue_.size() != seen;
      });
      continue;  // re-evaluate flush conditions from scratch
    }

    // Flush: reached max_batch, the oldest waited max_delay, or draining.
    std::vector<Pending> batch;
    batch.reserve(std::min(config_.max_batch, eligible));
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < config_.max_batch;) {
      if (stopping_ || it->not_before <= now) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    cv_space_.notify_all();
    lk.unlock();
    run_batch(std::move(batch));
    lk.lock();
  }
}

void QueryServer::run_batch(std::vector<Pending> batch) {
  const auto dispatched = Clock::now();
  metrics_.on_batch(batch.size());

  data::Dataset queries(batch.size(), dim_);
  std::size_t k_max = 1;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    queries.set_row(i, batch[i].query);
    k_max = std::max(k_max, batch[i].k);
  }

  std::vector<char> completed(batch.size(), 0);
  std::vector<char> requeue(batch.size(), 0);
  // Degraded partial answers held back for a retry. If re-admission finds the
  // queue full the retry is forfeit and this response goes out instead — a
  // retry must never push the bounded admission queue past its capacity.
  std::vector<QueryResponse> fallback(batch.size());
  const auto backoff = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(config_.retry_backoff_ms));
  // Fires on the engine's master thread as each query's merge finishes, so a
  // fast query's future completes before its batch-mates are done.
  auto complete_one = [&](std::size_t i, const std::vector<Neighbor>& nn,
                          const core::QueryCoverage& cov) {
    Pending& p = batch[i];
    const auto now = Clock::now();
    QueryResponse resp;
    resp.batch_size = batch.size();
    resp.queue_ms = to_ms(dispatched - p.admitted);
    resp.total_ms = to_ms(now - p.admitted);
    resp.partitions_searched = cov.partitions_searched;
    resp.partitions_planned = cov.partitions_planned;
    resp.neighbors.assign(nn.begin(),
                          nn.begin() + std::ptrdiff_t(std::min(p.k, nn.size())));
    if (cov.degraded() && p.retries_used < config_.max_retries &&
        now + backoff < p.deadline) {
      // Workers died under this query and budget remains: hold the future and
      // requeue once the search returns, behind the backoff gate.
      resp.status = QueryStatus::kDegraded;
      fallback[i] = std::move(resp);
      requeue[i] = 1;
      return;
    }
    if (now > p.deadline) {
      // The search outlived the deadline: hand back what we computed, but
      // flagged — late answers must not masquerade as on-time ones.
      resp.status = QueryStatus::kDeadlineExpired;
      metrics_.on_expire();
    } else if (cov.degraded()) {
      resp.status = QueryStatus::kDegraded;
      metrics_.on_complete_degraded(resp.total_ms, resp.queue_ms);
    } else {
      resp.status = QueryStatus::kOk;
      metrics_.on_complete_ok(resp.total_ms, resp.queue_ms);
    }
    completed[i] = 1;
    p.promise.set_value(std::move(resp));
  };

  try {
    (void)engine_->search(queries, k_max, config_.ef, nullptr,
                          [&](std::size_t qid, const std::vector<Neighbor>& nn,
                              const core::QueryCoverage& cov) {
                            complete_one(qid, nn, cov);
                          });
  } catch (const std::exception& e) {
    ANNSIM_ERROR("serve: batch of " << batch.size()
                                    << " failed in engine search: "
                                    << e.what());
  }
  // Safety net: any request the hook did not reach completes as an error
  // instead of leaving its client blocked on the future.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (completed[i] || requeue[i]) continue;
    metrics_.on_fail();
    QueryResponse resp;
    resp.status = QueryStatus::kError;
    resp.batch_size = batch.size();
    resp.total_ms = to_ms(Clock::now() - batch[i].admitted);
    batch[i].promise.set_value(std::move(resp));
  }
  // Self-healing on the batch boundary: search() has already folded this
  // batch's health transitions into the engine, and the scheduler thread is
  // the only one that touches the engine, so healing here cannot race a
  // search. The next batch — including any retries re-admitted below —
  // dispatches against the restored replicas.
  if (config_.auto_heal) {
    if (!engine_->health().dead_workers().empty()) {
      const auto heal = engine_->heal();
      metrics_.on_heal(heal.workers_revived, heal.fully_healed());
    }
    metrics_.on_health(engine_->under_replicated_partitions().size());
  }
  // Live mutability: when the write stream has filled any delta past the
  // threshold, re-freeze in the background — the engine's view hot-swap
  // keeps this batch boundary (and every following batch) non-blocking.
  maybe_compact();
  // Re-admit degraded requests whose retry budget allows another attempt.
  // Retries count against queue_capacity like any submit: when the queue is
  // full (or the server is draining) the degraded answer stands instead of
  // overflowing the bound and starving kBlock waiters / kReject admissions.
  bool readmitted = false;
  {
    std::lock_guard lk(mu_);
    const auto now = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!requeue[i]) continue;
      Pending& p = batch[i];
      if (stopping_ || queue_.size() >= config_.queue_capacity) {
        fallback[i].total_ms = to_ms(now - p.admitted);
        metrics_.on_complete_degraded(fallback[i].total_ms,
                                      fallback[i].queue_ms);
        p.promise.set_value(std::move(fallback[i]));
        continue;
      }
      ++p.retries_used;
      p.not_before = now + backoff;
      metrics_.on_retry();
      queue_.push_back(std::move(p));
      readmitted = true;
    }
  }
  if (readmitted) cv_work_.notify_one();
}

void QueryServer::maybe_compact() {
  if (config_.compact_at_fill == 0) return;
  if (compacting_.load(std::memory_order_acquire)) return;
  // Reap the previous run so at most one joinable thread is outstanding.
  if (compactor_.joinable()) compactor_.join();
  if (engine_->max_delta_fill() < config_.compact_at_fill) return;
  compacting_.store(true, std::memory_order_release);
  compactor_ = std::thread([this] {
    try {
      (void)engine_->compact();
    } catch (const std::exception& e) {
      ANNSIM_ERROR("serve: background compaction failed: " << e.what());
    }
    compacting_.store(false, std::memory_order_release);
  });
}

void QueryServer::stop() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  if (compactor_.joinable()) compactor_.join();
  // The scheduler drains everything admitted before it exits; this sweep only
  // catches a submit that raced with stop().
  std::deque<Pending> leftover;
  {
    std::lock_guard lk(mu_);
    leftover.swap(queue_);
  }
  for (auto& p : leftover) {
    metrics_.on_fail();
    QueryResponse resp;
    resp.status = QueryStatus::kShutdown;
    p.promise.set_value(std::move(resp));
  }
}

}  // namespace annsim::serve
