#include "annsim/serve/query_server.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "annsim/common/error.hpp"
#include "annsim/common/log.hpp"
#include "annsim/data/dataset.hpp"

namespace annsim::serve {

namespace {

double to_ms(std::chrono::steady_clock::duration d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

const char* to_string(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kDeadlineExpired: return "deadline-expired";
    case QueryStatus::kShutdown: return "shutdown";
    case QueryStatus::kError: return "error";
    case QueryStatus::kDegraded: return "degraded";
    case QueryStatus::kShed: return "shed";
  }
  return "unknown";
}

const char* to_string(PriorityClass c) noexcept {
  switch (c) {
    case PriorityClass::kInteractive: return "interactive";
    case PriorityClass::kBatch: return "batch";
    case PriorityClass::kBestEffort: return "best-effort";
  }
  return "unknown";
}

QueryServer::QueryServer(core::DistributedAnnEngine* engine,
                         ServerConfig config)
    : engine_(engine), config_(config) {
  ANNSIM_CHECK(engine_ != nullptr);
  ANNSIM_CHECK_MSG(engine_->built(),
                   "QueryServer requires a built engine (call build() first)");
  ANNSIM_CHECK_MSG(config_.max_batch >= 1, "max_batch must be nonzero");
  ANNSIM_CHECK_MSG(config_.queue_capacity >= 1,
                   "queue_capacity must be nonzero");
  ANNSIM_CHECK_MSG(config_.max_delay_ms >= 0.0,
                   "max_delay_ms cannot be negative");
  ANNSIM_CHECK_MSG(config_.retry_backoff_ms >= 0.0,
                   "retry_backoff_ms cannot be negative");
  ANNSIM_CHECK_MSG(
      config_.compact_at_fill == 0 ||
          engine_->config().local_index == core::LocalIndexKind::kSegmented,
      "compact_at_fill requires a segmented engine (local_index=segmented)");
  ANNSIM_CHECK_MSG(
      config_.wal_dir.empty() ||
          engine_->config().local_index == core::LocalIndexKind::kSegmented,
      "wal_dir requires a segmented engine (local_index=segmented)");
  if (!config_.wal_dir.empty() && engine_->config().wal_dir.empty()) {
    // Attach before the scheduler thread starts: enable_wal replays any
    // leftover tail into the replicas, and serving must not observe a
    // half-replayed topology. An engine whose WAL is already open (built
    // with EngineConfig::wal_dir) keeps its logs.
    engine_->enable_wal(config_.wal_dir, config_.wal_group_commit);
  }
  ANNSIM_CHECK_MSG(config_.brownout_target_ms >= 0.0,
                   "brownout_target_ms cannot be negative (got "
                       << config_.brownout_target_ms << "; 0 disables brownout)");
  ANNSIM_CHECK_MSG(config_.brownout_floor > 0.0 && config_.brownout_floor <= 1.0,
                   "brownout_floor must be within (0, 1] (got "
                       << config_.brownout_floor << ")");
  ANNSIM_CHECK_MSG(
      config_.brownout_target_ms == 0.0 ||
          engine_->config().strategy == core::DispatchStrategy::kMasterWorker,
      "brownout_target_ms requires the master-worker dispatch strategy "
      "(per-query effort overrides ride its dispatch path)");
  ANNSIM_CHECK_MSG(
      config_.breaker_threshold >= 0.0 && config_.breaker_threshold <= 1.0,
      "breaker_threshold must be within [0, 1] (got "
          << config_.breaker_threshold << "; 0 disables the breaker)");
  ANNSIM_CHECK_MSG(config_.breaker_open_ms >= 0.0,
                   "breaker_open_ms cannot be negative (got "
                       << config_.breaker_open_ms << ")");
  if (config_.breaker_threshold > 0.0) {
    ANNSIM_CHECK_MSG(config_.breaker_window >= 1,
                     "breaker_window must be nonzero: the breaker needs at "
                     "least one outcome per evaluation");
    ANNSIM_CHECK_MSG(config_.breaker_probes >= 1,
                     "breaker_probes must be nonzero: half-open needs at "
                     "least one probe to test recovery");
  }
  dim_ = engine_->router().dim();
  max_delay_ = std::chrono::duration<double, std::milli>(config_.max_delay_ms);
  scheduler_ = std::thread([this] { scheduler_main(); });
}

QueryServer::~QueryServer() { stop(); }

std::future<QueryResponse> QueryServer::submit(std::vector<float> query,
                                               std::size_t k,
                                               double deadline_ms,
                                               PriorityClass cls) {
  ANNSIM_CHECK_MSG(query.size() == dim_, "query dimension "
                                             << query.size()
                                             << " != index dimension " << dim_);
  ANNSIM_CHECK_MSG(k >= 1, "k must be nonzero");
  ANNSIM_CHECK_MSG(std::size_t(cls) < kPriorityClasses,
                   "priority class " << int(cls)
                                     << " unknown (expected 0=interactive, "
                                        "1=batch, 2=best-effort)");

  Pending p;
  p.query = std::move(query);
  p.k = k;
  p.cls = cls;
  p.admitted = Clock::now();
  if (deadline_ms > 0.0) {
    p.deadline = p.admitted +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(deadline_ms));
  }
  auto fut = p.promise.get_future();

  std::unique_lock lk(mu_);
  // Deadline-aware culling: never enqueue a request that is already doomed —
  // expired on arrival, or unreachable per the service-time EWMA (the queue
  // ahead of it at its priority plus one batch of service). Shedding here
  // costs nothing downstream; shedding later costs a worker batch slot.
  if (config_.deadline_scheduling && !stopping_ &&
      p.deadline != Clock::time_point::max()) {
    const auto now = Clock::now();
    bool doomed = p.deadline <= now;
    if (!doomed && ewma_query_ms_ > 0.0) {
      std::size_t ahead = 0;
      for (const auto& q : queue_) {
        if (q.cls <= p.cls) ++ahead;
      }
      const auto est = std::chrono::duration<double, std::milli>(
          double(ahead) * ewma_query_ms_ + ewma_batch_ms_);
      doomed = now + std::chrono::duration_cast<Clock::duration>(est) >
               p.deadline;
    }
    if (doomed) {
      lk.unlock();
      shed_request(std::move(p), Clock::now());
      return fut;
    }
  }
  // Circuit breaker: while the engine cannot meet deadlines, fail fast
  // instead of queueing work that will only widen the outage.
  if (config_.breaker_threshold > 0.0 && !stopping_) {
    bool probe = false;
    if (!breaker_admit(Clock::now(), &probe)) {
      lk.unlock();
      metrics_.on_breaker_reject();
      QueryResponse resp;
      resp.status = QueryStatus::kShed;
      resp.total_ms = to_ms(Clock::now() - p.admitted);
      p.promise.set_value(std::move(resp));
      return fut;
    }
    p.breaker_probe = probe;
  }
  if (!stopping_ && queue_.size() >= config_.queue_capacity) {
    // Priority eviction: a full queue sheds its worst strictly-lower-class
    // entry (lowest class, then latest deadline) to admit a higher-class
    // arrival — interactive is the last to be turned away.
    if (config_.deadline_scheduling) {
      auto victim = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->cls <= p.cls) continue;  // only strictly lower classes evict
        if (victim == queue_.end() || it->cls > victim->cls ||
            (it->cls == victim->cls && it->deadline > victim->deadline)) {
          victim = it;
        }
      }
      if (victim != queue_.end()) {
        Pending evicted = std::move(*victim);
        queue_.erase(victim);
        shed_request(std::move(evicted), Clock::now());
      }
    }
    if (queue_.size() >= config_.queue_capacity) {
      if (config_.overflow == OverflowPolicy::kReject) {
        lk.unlock();
        metrics_.on_reject();
        QueryResponse resp;
        resp.status = QueryStatus::kRejected;
        p.promise.set_value(std::move(resp));
        return fut;
      }
      // kBlock: backpressure the submitter until the scheduler drains a slot.
      cv_space_.wait(lk, [&] {
        return stopping_ || queue_.size() < config_.queue_capacity;
      });
    }
  }
  if (stopping_) {
    lk.unlock();
    metrics_.on_fail();
    QueryResponse resp;
    resp.status = QueryStatus::kShutdown;
    resp.total_ms = to_ms(Clock::now() - p.admitted);
    p.promise.set_value(std::move(resp));
    return fut;
  }
  p.seq = next_seq_++;
  queue_.push_back(std::move(p));
  const std::size_t depth = queue_.size();
  lk.unlock();
  metrics_.on_submit(depth);
  cv_work_.notify_one();
  return fut;
}

void QueryServer::shed_request(Pending&& p, Clock::time_point now) {
  metrics_.on_shed();
  // A shed half-open probe never tested the engine; count it as a failed
  // probe so the breaker re-opens rather than dangling in half-open.
  if (p.breaker_probe) breaker_record(false, /*probe=*/true);
  QueryResponse resp;
  resp.status = QueryStatus::kShed;
  resp.total_ms = to_ms(now - p.admitted);
  p.promise.set_value(std::move(resp));
}

bool QueryServer::breaker_admit(Clock::time_point now, bool* probe) {
  std::lock_guard lk(breaker_.mu);
  switch (breaker_.state) {
    case Breaker::State::kClosed:
      return true;
    case Breaker::State::kOpen:
      if (now < breaker_.open_until) return false;
      // Open period served: admit a limited run of half-open probes.
      breaker_.state = Breaker::State::kHalfOpen;
      breaker_.probes_issued = 0;
      breaker_.probes_done = 0;
      [[fallthrough]];
    case Breaker::State::kHalfOpen:
      if (breaker_.probes_issued >= config_.breaker_probes) return false;
      ++breaker_.probes_issued;
      *probe = true;
      return true;
  }
  return true;
}

void QueryServer::breaker_record(bool success, bool probe) {
  if (config_.breaker_threshold <= 0.0) return;
  const auto open_for = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(config_.breaker_open_ms));
  bool tripped = false;
  {
    std::lock_guard lk(breaker_.mu);
    if (probe) {
      if (breaker_.state == Breaker::State::kHalfOpen) {
        ++breaker_.probes_done;
        if (!success) {
          // Recovery unproven: back to open for another full period.
          breaker_.state = Breaker::State::kOpen;
          breaker_.open_until = Clock::now() + open_for;
          tripped = true;
        } else if (breaker_.probes_done >= config_.breaker_probes) {
          // Every probe came back in-deadline: close with a fresh window.
          breaker_.state = Breaker::State::kClosed;
          breaker_.window_total = 0;
          breaker_.window_failures = 0;
        }
      }
      // A probe outcome landing after the state already moved on (another
      // probe re-opened, or a concurrent close) carries no information.
    } else if (breaker_.state == Breaker::State::kClosed) {
      ++breaker_.window_total;
      if (!success) ++breaker_.window_failures;
      if (breaker_.window_total >= config_.breaker_window) {
        const double rate =
            double(breaker_.window_failures) / double(breaker_.window_total);
        if (rate >= config_.breaker_threshold) {
          breaker_.state = Breaker::State::kOpen;
          breaker_.open_until = Clock::now() + open_for;
          tripped = true;
        }
        // Tumbling window: every evaluation starts from a clean slate.
        breaker_.window_total = 0;
        breaker_.window_failures = 0;
      }
    }
  }
  if (tripped) metrics_.on_breaker_trip();
}

double QueryServer::effort_factor(PriorityClass cls) const {
  if (config_.brownout_target_ms <= 0.0) return 1.0;
  const double p = pressure_.load(std::memory_order_relaxed);
  // Bottom-up degradation: each class starts shrinking only past its onset
  // pressure, so best-effort absorbs mild overload alone, batch joins under
  // sustained overload, and interactive gives ground only near saturation.
  static constexpr double kOnset[kPriorityClasses] = {0.75, 0.5, 0.0};
  const double onset = kOnset[std::size_t(cls)];
  if (p <= onset) return 1.0;
  const double frac = (p - onset) / (1.0 - onset);
  return 1.0 - frac * (1.0 - config_.brownout_floor);
}

void QueryServer::expire_overdue_locked(Clock::time_point now) {
  bool freed = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline <= now) {
      QueryResponse resp;
      resp.status = QueryStatus::kDeadlineExpired;
      resp.total_ms = to_ms(now - it->admitted);
      // Record before fulfilling: a client woken by this future may snapshot
      // metrics immediately, and the expiry must already be counted. This is
      // the in-queue bucket: no worker ever touched the request.
      metrics_.on_expire_in_queue();
      if (it->breaker_probe) breaker_record(false, /*probe=*/true);
      it->promise.set_value(std::move(resp));
      it = queue_.erase(it);
      freed = true;
    } else {
      ++it;
    }
  }
  if (freed) cv_space_.notify_all();
}

void QueryServer::scheduler_main() {
  std::unique_lock lk(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (stopping_) break;
      cv_work_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      continue;
    }

    const auto now = Clock::now();
    // Deadlines are honored even for requests still waiting in the queue:
    // an expired request completes at its deadline, never later.
    expire_overdue_locked(now);
    if (queue_.empty()) continue;

    // Requests in retry backoff (not_before in the future) are invisible to
    // the flush decision until their gate opens — except when draining, when
    // everything still queued goes out immediately.
    const auto est_batch = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ewma_batch_ms_));
    std::size_t eligible = 0;
    auto flush_at = Clock::time_point::max();
    // Urgency flush (deadline scheduling): the tightest queued deadline,
    // minus one estimated batch of service — waiting for max_delay past this
    // point would make the request expire in flight.
    auto urgent_at = Clock::time_point::max();
    auto wake = Clock::time_point::max();
    for (const auto& p : queue_) {
      wake = std::min(wake, p.deadline);
      if (stopping_ || p.not_before <= now) {
        ++eligible;
        flush_at = std::min(
            flush_at,
            p.admitted + std::chrono::duration_cast<Clock::duration>(max_delay_));
        if (config_.deadline_scheduling && ewma_batch_ms_ > 0.0 &&
            p.deadline != Clock::time_point::max()) {
          // Two estimated batches of margin — one for the service time itself
          // and one so the won't-make-it check at batch formation still sees
          // the deadline as reachable — floored at a few milliseconds: when
          // batches are sub-millisecond the estimate alone is thinner than
          // scheduler wake jitter and the flushed request lands past its
          // deadline anyway.
          const auto margin = std::max(
              est_batch + est_batch,
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::milliseconds(5)));
          urgent_at = std::min(urgent_at, p.deadline - margin);
        }
      } else {
        wake = std::min(wake, p.not_before);
      }
    }
    if (!stopping_ && (eligible == 0 ||
                       (eligible < config_.max_batch && now < flush_at &&
                        now < urgent_at))) {
      // Sleep until the max_delay flush point, the urgency flush point, the
      // earliest queued deadline, the earliest backoff gate, a batch-filling
      // arrival, or stop() — whichever comes first.
      if (eligible > 0) wake = std::min({wake, flush_at, urgent_at});
      const std::size_t seen = queue_.size();
      cv_work_.wait_until(lk, wake, [&] {
        return stopping_ || queue_.size() >= config_.max_batch ||
               queue_.size() != seen;
      });
      continue;  // re-evaluate flush conditions from scratch
    }

    // Flush: reached max_batch, the oldest waited max_delay, a deadline
    // demands urgency, or draining.
    std::vector<Pending> batch;
    batch.reserve(std::min(config_.max_batch, eligible));
    if (!config_.deadline_scheduling) {
      // Legacy FIFO batch formation.
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < config_.max_batch;) {
        if (stopping_ || it->not_before <= now) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      // EDF batch formation: eligible requests ordered by (class, deadline,
      // admission) so the batch serves the highest class' tightest deadlines
      // first, with FIFO as the tie-break. Won't-make-it requests found at
      // the head are shed here rather than occupying a batch slot.
      std::vector<std::size_t> order;
      order.reserve(queue_.size());
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (stopping_ || queue_[i].not_before <= now) order.push_back(i);
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const Pending& pa = queue_[a];
        const Pending& pb = queue_[b];
        if (pa.cls != pb.cls) return pa.cls < pb.cls;
        if (pa.deadline != pb.deadline) return pa.deadline < pb.deadline;
        return pa.seq < pb.seq;
      });
      std::vector<char> taken(queue_.size(), 0);
      std::vector<Pending> doomed;
      for (const std::size_t i : order) {
        if (batch.size() >= config_.max_batch) break;
        Pending& p = queue_[i];
        if (!stopping_ && ewma_batch_ms_ > 0.0 &&
            p.deadline != Clock::time_point::max() &&
            now + est_batch > p.deadline) {
          taken[i] = 1;
          doomed.push_back(std::move(p));
          continue;
        }
        taken[i] = 1;
        batch.push_back(std::move(p));
      }
      if (!doomed.empty() || !batch.empty()) {
        std::deque<Pending> rest;
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          if (!taken[i]) rest.push_back(std::move(queue_[i]));
        }
        queue_.swap(rest);
      }
      for (auto& p : doomed) shed_request(std::move(p), now);
      if (batch.empty()) {
        // Everything eligible was doomed; nothing to dispatch this round.
        cv_space_.notify_all();
        continue;
      }
    }
    cv_space_.notify_all();
    lk.unlock();
    run_batch(std::move(batch));
    lk.lock();
  }
}

void QueryServer::run_batch(std::vector<Pending> batch) {
  const auto dispatched = Clock::now();
  metrics_.on_batch(batch.size());

  data::Dataset queries(batch.size(), dim_);
  std::size_t k_max = 1;
  double queue_delay_ms = 0.0;  // oldest wait in this batch: the load signal
  for (std::size_t i = 0; i < batch.size(); ++i) {
    queries.set_row(i, batch[i].query);
    k_max = std::max(k_max, batch[i].k);
    queue_delay_ms = std::max(queue_delay_ms,
                              to_ms(dispatched - batch[i].admitted));
  }

  // Brownout controller (CoDel-style): queue delay above target raises
  // pressure a notch per batch; delay below half the target decays it. The
  // factor then scales each query's effort bottom-up by class.
  std::vector<core::EffortOverride> efforts;
  if (config_.brownout_target_ms > 0.0) {
    double pr = pressure_.load(std::memory_order_relaxed);
    if (queue_delay_ms > config_.brownout_target_ms) {
      pr = std::min(1.0, pr + 0.25);
    } else if (queue_delay_ms < config_.brownout_target_ms / 2.0) {
      pr = std::max(0.0, pr - 0.25);
    }
    pressure_.store(pr, std::memory_order_relaxed);
    metrics_.on_pressure(pr);

    const auto& ecfg = engine_->config();
    const auto base_ef = std::uint32_t(
        config_.ef != 0 ? config_.ef : ecfg.hnsw.ef_search);
    const auto base_probes =
        std::uint32_t(std::min(ecfg.n_probe, ecfg.n_workers));
    std::size_t reduced = 0;
    double min_factor = 1.0;
    efforts.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double f = effort_factor(batch[i].cls);
      batch[i].effort = f;
      if (f >= 1.0) continue;
      ++reduced;
      min_factor = std::min(min_factor, f);
      efforts[i].ef = std::max<std::uint32_t>(
          std::uint32_t(batch[i].k),
          std::uint32_t(std::lround(double(base_ef) * f)));
      efforts[i].max_probes = std::max<std::uint32_t>(
          1, std::uint32_t(std::lround(double(base_probes) * f)));
    }
    if (reduced > 0) {
      metrics_.on_brownout(reduced, min_factor);
    } else {
      efforts.clear();  // full effort across the batch: legacy engine path
    }
  }

  std::vector<char> completed(batch.size(), 0);
  std::vector<char> requeue(batch.size(), 0);
  // Degraded partial answers held back for a retry. If re-admission finds the
  // queue full the retry is forfeit and this response goes out instead — a
  // retry must never push the bounded admission queue past its capacity.
  std::vector<QueryResponse> fallback(batch.size());
  const auto backoff = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(config_.retry_backoff_ms));
  // Fires on the engine's master thread as each query's merge finishes, so a
  // fast query's future completes before its batch-mates are done.
  auto complete_one = [&](std::size_t i, const std::vector<Neighbor>& nn,
                          const core::QueryCoverage& cov) {
    Pending& p = batch[i];
    const auto now = Clock::now();
    QueryResponse resp;
    resp.batch_size = batch.size();
    resp.queue_ms = to_ms(dispatched - p.admitted);
    resp.total_ms = to_ms(now - p.admitted);
    resp.partitions_searched = cov.partitions_searched;
    resp.partitions_planned = cov.partitions_planned;
    resp.effort_factor = p.effort;
    resp.neighbors.assign(nn.begin(),
                          nn.begin() + std::ptrdiff_t(std::min(p.k, nn.size())));
    if (cov.degraded() && p.retries_used < config_.max_retries &&
        now + backoff < p.deadline) {
      // Workers died under this query and budget remains: hold the future and
      // requeue once the search returns, behind the backoff gate.
      resp.status = QueryStatus::kDegraded;
      fallback[i] = std::move(resp);
      requeue[i] = 1;
      return;
    }
    if (now > p.deadline) {
      // The search outlived the deadline: hand back what we computed, but
      // flagged — late answers must not masquerade as on-time ones. This is
      // the completed-late bucket: worker time was spent past its value.
      resp.status = QueryStatus::kDeadlineExpired;
      metrics_.on_complete_late();
      breaker_record(false, p.breaker_probe);
    } else if (cov.degraded()) {
      resp.status = QueryStatus::kDegraded;
      metrics_.on_complete_degraded(resp.total_ms, resp.queue_ms);
      breaker_record(true, p.breaker_probe);
    } else {
      resp.status = QueryStatus::kOk;
      metrics_.on_complete_ok(resp.total_ms, resp.queue_ms);
      breaker_record(true, p.breaker_probe);
    }
    completed[i] = 1;
    p.promise.set_value(std::move(resp));
  };

  try {
    (void)engine_->search(queries, k_max, config_.ef, nullptr,
                          [&](std::size_t qid, const std::vector<Neighbor>& nn,
                              const core::QueryCoverage& cov) {
                            complete_one(qid, nn, cov);
                          },
                          efforts);
  } catch (const std::exception& e) {
    ANNSIM_ERROR("serve: batch of " << batch.size()
                                    << " failed in engine search: "
                                    << e.what());
  }
  // Feed the admission estimator: per-query drain cost and whole-batch
  // service time, EWMA-smoothed so one slow batch does not start a shed storm
  // but sustained slowdown tightens won't-make-it culls within a few batches.
  {
    const double batch_ms = to_ms(Clock::now() - dispatched);
    const double per_query_ms = batch_ms / double(batch.size());
    std::lock_guard lk(mu_);
    constexpr double kAlpha = 0.2;
    ewma_query_ms_ = ewma_query_ms_ == 0.0
                         ? per_query_ms
                         : (1.0 - kAlpha) * ewma_query_ms_ + kAlpha * per_query_ms;
    ewma_batch_ms_ = ewma_batch_ms_ == 0.0
                         ? batch_ms
                         : (1.0 - kAlpha) * ewma_batch_ms_ + kAlpha * batch_ms;
  }
  // Safety net: any request the hook did not reach completes as an error
  // instead of leaving its client blocked on the future.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (completed[i] || requeue[i]) continue;
    metrics_.on_fail();
    breaker_record(false, batch[i].breaker_probe);
    QueryResponse resp;
    resp.status = QueryStatus::kError;
    resp.batch_size = batch.size();
    resp.total_ms = to_ms(Clock::now() - batch[i].admitted);
    batch[i].promise.set_value(std::move(resp));
  }
  // Self-healing on the batch boundary: search() has already folded this
  // batch's health transitions into the engine, and the scheduler thread is
  // the only one that touches the engine, so healing here cannot race a
  // search. The next batch — including any retries re-admitted below —
  // dispatches against the restored replicas.
  if (config_.auto_heal) {
    if (!engine_->health().dead_workers().empty()) {
      const auto heal = engine_->heal();
      metrics_.on_heal(heal.workers_revived, heal.fully_healed(),
                       heal.wal_replayed_records,
                       heal.wal_truncated_tail_bytes);
    }
    metrics_.on_health(engine_->under_replicated_partitions().size());
  }
  // Live mutability: when the write stream has filled any delta past the
  // threshold, re-freeze in the background — the engine's view hot-swap
  // keeps this batch boundary (and every following batch) non-blocking.
  maybe_compact();
  // Re-admit degraded requests whose retry budget allows another attempt.
  // Retries count against queue_capacity like any submit: when the queue is
  // full (or the server is draining) the degraded answer stands instead of
  // overflowing the bound and starving kBlock waiters / kReject admissions.
  bool readmitted = false;
  {
    std::lock_guard lk(mu_);
    const auto now = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!requeue[i]) continue;
      Pending& p = batch[i];
      if (stopping_ || queue_.size() >= config_.queue_capacity) {
        fallback[i].total_ms = to_ms(now - p.admitted);
        metrics_.on_complete_degraded(fallback[i].total_ms,
                                      fallback[i].queue_ms);
        breaker_record(true, p.breaker_probe);
        p.promise.set_value(std::move(fallback[i]));
        continue;
      }
      ++p.retries_used;
      p.not_before = now + backoff;
      metrics_.on_retry();
      queue_.push_back(std::move(p));
      readmitted = true;
    }
  }
  if (readmitted) cv_work_.notify_one();
}

void QueryServer::maybe_compact() {
  if (config_.compact_at_fill == 0) return;
  if (compacting_.load(std::memory_order_acquire)) return;
  // Reap the previous run so at most one joinable thread is outstanding.
  if (compactor_.joinable()) compactor_.join();
  if (engine_->max_delta_fill() < config_.compact_at_fill) return;
  compacting_.store(true, std::memory_order_release);
  compactor_ = std::thread([this] {
    try {
      (void)engine_->compact();
    } catch (const std::exception& e) {
      ANNSIM_ERROR("serve: background compaction failed: " << e.what());
    }
    compacting_.store(false, std::memory_order_release);
  });
}

void QueryServer::stop() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  if (compactor_.joinable()) compactor_.join();
  // The scheduler drains everything admitted before it exits; this sweep only
  // catches a submit that raced with stop().
  std::deque<Pending> leftover;
  {
    std::lock_guard lk(mu_);
    leftover.swap(queue_);
  }
  for (auto& p : leftover) {
    metrics_.on_fail();
    QueryResponse resp;
    resp.status = QueryStatus::kShutdown;
    p.promise.set_value(std::move(resp));
  }
}

}  // namespace annsim::serve
