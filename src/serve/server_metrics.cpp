#include "annsim/serve/server_metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace annsim::serve {

void ServerMetrics::on_submit(std::size_t queue_depth_after_admission) {
  std::lock_guard lk(mu_);
  ++submitted_;
  queue_depths_.push_back(double(queue_depth_after_admission));
  if (!saw_submit_) {
    saw_submit_ = true;
    first_submit_ = Clock::now();
    last_complete_ = first_submit_;
  }
}

void ServerMetrics::on_reject() {
  std::lock_guard lk(mu_);
  ++rejected_;
}

void ServerMetrics::on_expire_in_queue() {
  std::lock_guard lk(mu_);
  ++expired_in_queue_;
  last_complete_ = Clock::now();
}

void ServerMetrics::on_complete_late() {
  std::lock_guard lk(mu_);
  ++completed_late_;
  last_complete_ = Clock::now();
}

void ServerMetrics::on_shed() {
  std::lock_guard lk(mu_);
  ++shed_;
  last_complete_ = Clock::now();
}

void ServerMetrics::on_breaker_reject() {
  std::lock_guard lk(mu_);
  ++breaker_rejections_;
  last_complete_ = Clock::now();
}

void ServerMetrics::on_breaker_trip() {
  std::lock_guard lk(mu_);
  ++breaker_trips_;
}

void ServerMetrics::on_brownout(std::size_t n, double factor) {
  std::lock_guard lk(mu_);
  browned_out_ += n;
  min_factor_ = std::min(min_factor_, factor);
}

void ServerMetrics::on_pressure(double pressure) {
  std::lock_guard lk(mu_);
  pressure_ = pressure;
}

void ServerMetrics::on_fail() {
  std::lock_guard lk(mu_);
  ++failed_;
  last_complete_ = Clock::now();
}

void ServerMetrics::on_batch(std::size_t batch_size) {
  std::lock_guard lk(mu_);
  ++batches_;
  batch_sizes_.push_back(double(batch_size));
}

void ServerMetrics::on_complete_ok(double latency_ms, double queue_wait_ms) {
  std::lock_guard lk(mu_);
  ++completed_ok_;
  latency_ms_.add(latency_ms);
  queue_wait_ms_.add(queue_wait_ms);
  last_complete_ = Clock::now();
}

void ServerMetrics::on_complete_degraded(double latency_ms,
                                         double queue_wait_ms) {
  std::lock_guard lk(mu_);
  ++degraded_;
  latency_ms_.add(latency_ms);
  queue_wait_ms_.add(queue_wait_ms);
  last_complete_ = Clock::now();
}

void ServerMetrics::on_retry() {
  std::lock_guard lk(mu_);
  ++retries_;
}

void ServerMetrics::on_heal(std::size_t workers_revived,
                            bool coverage_restored,
                            std::size_t wal_replayed_records,
                            std::size_t wal_truncated_tail_bytes) {
  std::lock_guard lk(mu_);
  ++heals_;
  workers_revived_ += workers_revived;
  if (coverage_restored) ++coverage_restored_;
  wal_replayed_records_ += wal_replayed_records;
  wal_truncated_tail_bytes_ += wal_truncated_tail_bytes;
}

void ServerMetrics::on_health(std::size_t under_replicated) {
  std::lock_guard lk(mu_);
  under_replicated_ = under_replicated;
}

MetricsReport ServerMetrics::report() const {
  std::lock_guard lk(mu_);
  MetricsReport r;
  r.submitted = submitted_;
  r.completed_ok = completed_ok_;
  r.rejected = rejected_;
  r.expired_in_queue = expired_in_queue_;
  r.completed_late = completed_late_;
  r.expired = expired_in_queue_ + completed_late_;
  r.shed = shed_;
  r.breaker_rejections = breaker_rejections_;
  r.breaker_trips = breaker_trips_;
  r.browned_out = browned_out_;
  r.brownout_pressure = pressure_;
  r.brownout_min_factor = min_factor_;
  r.failed = failed_;
  r.degraded = degraded_;
  r.retries = retries_;
  r.batches = batches_;
  r.heals = heals_;
  r.workers_revived = workers_revived_;
  r.coverage_restored = coverage_restored_;
  r.wal_replayed_records = wal_replayed_records_;
  r.wal_truncated_tail_bytes = wal_truncated_tail_bytes_;
  r.under_replicated_partitions = under_replicated_;
  if (saw_submit_) {
    r.wall_seconds =
        std::chrono::duration<double>(last_complete_ - first_submit_).count();
  }
  if (r.wall_seconds > 0) {
    r.throughput_qps = double(completed_ok_) / r.wall_seconds;
  }
  r.latency_mean_ms = latency_ms_.mean();
  r.latency_p50_ms = latency_ms_.p50();
  r.latency_p95_ms = latency_ms_.p95();
  r.latency_p99_ms = latency_ms_.p99();
  r.latency_p999_ms = latency_ms_.p999();
  r.latency_max_ms = latency_ms_.max();
  r.queue_wait_mean_ms = queue_wait_ms_.mean();
  r.queue_depth = summarize(queue_depths_);
  r.batch_size = summarize(batch_sizes_);
  return r;
}

std::string to_string(const MetricsReport& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "requests: %zu submitted, %zu ok, %zu rejected, %zu expired "
      "(%zu in queue, %zu late), %zu failed, %zu degraded (%zu retries)\n"
      "throughput: %.0f q/s over %.3fs (%zu batches)\n"
      "latency ms: mean %.3f p50 %.3f p95 %.3f p99 %.3f p999 %.3f max %.3f "
      "(queue wait mean %.3f)\n"
      "batch size: %s\n"
      "queue depth: %s",
      r.submitted, r.completed_ok, r.rejected, r.expired, r.expired_in_queue,
      r.completed_late, r.failed, r.degraded, r.retries,
      r.throughput_qps, r.wall_seconds, r.batches, r.latency_mean_ms,
      r.latency_p50_ms, r.latency_p95_ms, r.latency_p99_ms, r.latency_p999_ms,
      r.latency_max_ms, r.queue_wait_mean_ms,
      annsim::to_string(r.batch_size).c_str(),
      annsim::to_string(r.queue_depth).c_str());
  std::string out = buf;
  if (r.shed > 0 || r.breaker_trips > 0 || r.breaker_rejections > 0 ||
      r.browned_out > 0 || r.brownout_pressure > 0.0) {
    char ov_buf[224];
    std::snprintf(ov_buf, sizeof(ov_buf),
                  "\noverload: %zu shed, %zu breaker rejections (%zu trips), "
                  "%zu browned out (min effort %.2f, pressure %.2f)",
                  r.shed, r.breaker_rejections, r.breaker_trips, r.browned_out,
                  r.brownout_min_factor, r.brownout_pressure);
    out += ov_buf;
  }
  if (r.heals > 0 || r.under_replicated_partitions > 0) {
    char heal_buf[256];
    std::snprintf(heal_buf, sizeof(heal_buf),
                  "\nhealing: %zu heals, %zu workers revived, %zu restored "
                  "full coverage, %zu partitions under-replicated, %zu wal "
                  "records replayed, %zu wal tail bytes truncated",
                  r.heals, r.workers_revived, r.coverage_restored,
                  r.under_replicated_partitions, r.wal_replayed_records,
                  r.wal_truncated_tail_bytes);
    out += heal_buf;
  }
  return out;
}

}  // namespace annsim::serve
