#include "annsim/serve/load_gen.hpp"

#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/common/stats.hpp"
#include "annsim/common/timer.hpp"

namespace annsim::serve {

namespace {

void tally(LoadGenReport& rep, PriorityClass cls, const QueryResponse& resp) {
  ClassTally& ct = rep.by_class[std::size_t(cls)];
  ++ct.sent;
  rep.min_effort_factor = std::min(rep.min_effort_factor, resp.effort_factor);
  switch (resp.status) {
    // A degraded answer is still an answer; the server's own metrics track
    // the coverage shortfall separately.
    case QueryStatus::kOk:
    case QueryStatus::kDegraded:
      ++rep.ok;
      ++ct.ok;
      ct.latencies_ms.push_back(resp.total_ms);
      break;
    case QueryStatus::kRejected:
      ++rep.rejected;
      ++ct.rejected;
      break;
    case QueryStatus::kDeadlineExpired:
      ++rep.expired;
      ++ct.expired;
      break;
    case QueryStatus::kShed:
      ++rep.shed;
      ++ct.shed;
      break;
    case QueryStatus::kShutdown:
    case QueryStatus::kError:
      ++rep.failed;
      ++ct.failed;
      break;
  }
}

void finalize(LoadGenReport& rep) {
  for (auto& ct : rep.by_class) {
    if (!ct.latencies_ms.empty()) {
      ct.p999_ms = percentile(ct.latencies_ms, 99.9);
    }
    if (ct.sent > 0) ct.hit_rate = double(ct.ok) / double(ct.sent);
  }
}

/// Deterministic class draw from the cumulative mix. `u` in [0, 1).
PriorityClass pick_class(const std::array<double, kPriorityClasses>& mix,
                         double total, double u) {
  double acc = 0.0;
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    acc += mix[c] / total;
    if (u < acc) return PriorityClass(c);
  }
  return PriorityClass::kInteractive;
}

}  // namespace

LoadGenReport run_load(QueryServer& server, const data::Dataset& queries,
                       const LoadGenConfig& cfg) {
  ANNSIM_CHECK_MSG(!queries.empty(), "load generator needs a query pool");
  ANNSIM_CHECK(cfg.n_requests >= 1);
  double mix_total = 0.0;
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    ANNSIM_CHECK_MSG(cfg.class_mix[c] >= 0.0,
                     "load_gen.class_mix[" << c << "] must be >= 0, got "
                                           << cfg.class_mix[c]);
    mix_total += cfg.class_mix[c];
  }
  ANNSIM_CHECK_MSG(mix_total > 0.0, "load_gen.class_mix must sum to > 0");

  auto query_vec = [&](std::size_t i) {
    const float* qv = queries.row(i % queries.size());
    return std::vector<float>(qv, qv + queries.dim());
  };

  LoadGenReport rep;
  WallTimer wall;

  if (cfg.open_loop) {
    // Open loop: arrivals follow a Poisson process at cfg.qps regardless of
    // how the server is doing — the methodology that exposes tail latency
    // and queueing collapse instead of hiding them (coordinated omission).
    ANNSIM_CHECK_MSG(cfg.qps > 0, "open-loop load needs qps > 0");
    Rng rng(cfg.seed);
    // Separate stream for class draws so changing the mix leaves the
    // arrival-time sequence untouched (comparable runs).
    Rng class_rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<std::future<QueryResponse>> futures;
    std::vector<PriorityClass> classes;
    futures.reserve(cfg.n_requests);
    classes.reserve(cfg.n_requests);
    auto next = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < cfg.n_requests; ++i) {
      std::this_thread::sleep_until(next);
      const auto cls = pick_class(cfg.class_mix, mix_total, class_rng.uniform());
      classes.push_back(cls);
      futures.push_back(server.submit(query_vec(i), cfg.k, cfg.deadline_ms, cls));
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(rng.exponential(cfg.qps)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto resp = futures[i].get();
      tally(rep, classes[i], resp);
      if (cfg.on_response) cfg.on_response(i, resp);
    }
  } else {
    // Closed loop: n_clients threads, each submit-then-wait. Measures
    // saturation throughput at concurrency = n_clients.
    ANNSIM_CHECK(cfg.n_clients >= 1);
    std::mutex agg_mu;
    std::vector<std::thread> clients;
    clients.reserve(cfg.n_clients);
    for (std::size_t c = 0; c < cfg.n_clients; ++c) {
      clients.emplace_back([&, c] {
        LoadGenReport local;
        Rng class_rng(cfg.seed ^ (0x9e3779b97f4a7c15ULL + c));
        for (std::size_t i = c; i < cfg.n_requests; i += cfg.n_clients) {
          const auto cls = pick_class(cfg.class_mix, mix_total, class_rng.uniform());
          auto fut = server.submit(query_vec(i), cfg.k, cfg.deadline_ms, cls);
          const auto resp = fut.get();
          tally(local, cls, resp);
          if (cfg.on_response) {
            std::lock_guard lk(agg_mu);
            cfg.on_response(i, resp);
          }
        }
        std::lock_guard lk(agg_mu);
        rep.ok += local.ok;
        rep.rejected += local.rejected;
        rep.expired += local.expired;
        rep.shed += local.shed;
        rep.failed += local.failed;
        rep.min_effort_factor =
            std::min(rep.min_effort_factor, local.min_effort_factor);
        for (std::size_t k = 0; k < kPriorityClasses; ++k) {
          ClassTally& dst = rep.by_class[k];
          ClassTally& src = local.by_class[k];
          dst.sent += src.sent;
          dst.ok += src.ok;
          dst.rejected += src.rejected;
          dst.expired += src.expired;
          dst.shed += src.shed;
          dst.failed += src.failed;
          dst.latencies_ms.insert(dst.latencies_ms.end(),
                                  src.latencies_ms.begin(),
                                  src.latencies_ms.end());
        }
      });
    }
    for (auto& t : clients) t.join();
  }

  rep.wall_seconds = wall.seconds();
  rep.offered_qps =
      rep.wall_seconds > 0 ? double(cfg.n_requests) / rep.wall_seconds : 0.0;
  finalize(rep);
  rep.metrics = server.metrics();
  return rep;
}

std::vector<RampStage> run_ramp(QueryServer& server,
                                const data::Dataset& queries,
                                const LoadGenConfig& base,
                                std::span<const double> multipliers) {
  ANNSIM_CHECK_MSG(base.open_loop, "overload ramp requires open-loop load");
  ANNSIM_CHECK_MSG(!multipliers.empty(), "overload ramp needs >= 1 stage");
  std::vector<RampStage> stages;
  stages.reserve(multipliers.size());
  for (std::size_t s = 0; s < multipliers.size(); ++s) {
    ANNSIM_CHECK_MSG(multipliers[s] > 0.0,
                     "ramp multiplier " << s << " must be > 0, got "
                                        << multipliers[s]);
    LoadGenConfig cfg = base;
    cfg.qps = base.qps * multipliers[s];
    cfg.seed = base.seed + 1000 * (s + 1);
    RampStage stage;
    stage.multiplier = multipliers[s];
    stage.report = run_load(server, queries, cfg);
    stages.push_back(std::move(stage));
  }
  return stages;
}

}  // namespace annsim::serve
