#include "annsim/serve/load_gen.hpp"

#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/common/timer.hpp"

namespace annsim::serve {

namespace {

void tally(LoadGenReport& rep, const QueryResponse& resp) {
  switch (resp.status) {
    // A degraded answer is still an answer; the server's own metrics track
    // the coverage shortfall separately.
    case QueryStatus::kOk:
    case QueryStatus::kDegraded: ++rep.ok; break;
    case QueryStatus::kRejected: ++rep.rejected; break;
    case QueryStatus::kDeadlineExpired: ++rep.expired; break;
    case QueryStatus::kShutdown:
    case QueryStatus::kError: ++rep.failed; break;
  }
}

}  // namespace

LoadGenReport run_load(QueryServer& server, const data::Dataset& queries,
                       const LoadGenConfig& cfg) {
  ANNSIM_CHECK_MSG(!queries.empty(), "load generator needs a query pool");
  ANNSIM_CHECK(cfg.n_requests >= 1);

  auto query_vec = [&](std::size_t i) {
    const float* qv = queries.row(i % queries.size());
    return std::vector<float>(qv, qv + queries.dim());
  };

  LoadGenReport rep;
  WallTimer wall;

  if (cfg.open_loop) {
    // Open loop: arrivals follow a Poisson process at cfg.qps regardless of
    // how the server is doing — the methodology that exposes tail latency
    // and queueing collapse instead of hiding them (coordinated omission).
    ANNSIM_CHECK_MSG(cfg.qps > 0, "open-loop load needs qps > 0");
    Rng rng(cfg.seed);
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(cfg.n_requests);
    auto next = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < cfg.n_requests; ++i) {
      std::this_thread::sleep_until(next);
      futures.push_back(server.submit(query_vec(i), cfg.k, cfg.deadline_ms));
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(rng.exponential(cfg.qps)));
    }
    for (auto& f : futures) tally(rep, f.get());
  } else {
    // Closed loop: n_clients threads, each submit-then-wait. Measures
    // saturation throughput at concurrency = n_clients.
    ANNSIM_CHECK(cfg.n_clients >= 1);
    std::mutex agg_mu;
    std::vector<std::thread> clients;
    clients.reserve(cfg.n_clients);
    for (std::size_t c = 0; c < cfg.n_clients; ++c) {
      clients.emplace_back([&, c] {
        LoadGenReport local;
        for (std::size_t i = c; i < cfg.n_requests; i += cfg.n_clients) {
          auto fut = server.submit(query_vec(i), cfg.k, cfg.deadline_ms);
          tally(local, fut.get());
        }
        std::lock_guard lk(agg_mu);
        rep.ok += local.ok;
        rep.rejected += local.rejected;
        rep.expired += local.expired;
        rep.failed += local.failed;
      });
    }
    for (auto& t : clients) t.join();
  }

  rep.wall_seconds = wall.seconds();
  rep.offered_qps =
      rep.wall_seconds > 0 ? double(cfg.n_requests) / rep.wall_seconds : 0.0;
  rep.metrics = server.metrics();
  return rep;
}

}  // namespace annsim::serve
