#include "annsim/data/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "annsim/common/error.hpp"

namespace annsim::data {

double intrinsic_dimension(const KnnResults& gt, std::size_t ambient_dim) {
  ANNSIM_CHECK(ambient_dim >= 1);
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : gt) {
    if (row.size() < 2) continue;
    const double r1 = row.front().dist;
    const double rk = row.back().dist;
    if (r1 <= 0.0 || rk <= r1 * 1.0001) continue;
    sum += std::log(double(row.size())) / std::log(rk / r1);
    ++n;
  }
  if (n == 0) return double(ambient_dim);
  return std::clamp(sum / double(n), 4.0, double(ambient_dim));
}

double density_radius_scale(std::size_t n_from, std::size_t n_to,
                            double intrinsic_dim) {
  ANNSIM_CHECK(n_from >= 1 && n_to >= 1);
  ANNSIM_CHECK(intrinsic_dim > 0.0);
  return std::pow(double(n_from) / double(n_to), 1.0 / intrinsic_dim);
}

NeighborProfile neighbor_profile(const KnnResults& gt) {
  NeighborProfile p;
  std::size_t n = 0;
  for (const auto& row : gt) {
    if (row.empty()) continue;
    p.k = std::max(p.k, row.size());
    p.mean_r1 += row.front().dist;
    p.mean_rk += row.back().dist;
    if (row.back().dist > 0.0) {
      p.contrast += (row.back().dist - row.front().dist) / row.back().dist;
    }
    ++n;
  }
  if (n > 0) {
    p.mean_r1 /= double(n);
    p.mean_rk /= double(n);
    p.contrast /= double(n);
  }
  return p;
}

double load_imbalance_cv(const std::vector<std::uint64_t>& jobs_per_worker) {
  if (jobs_per_worker.empty()) return 0.0;
  double mean = 0.0;
  for (auto j : jobs_per_worker) mean += double(j);
  mean /= double(jobs_per_worker.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (auto j : jobs_per_worker) {
    const double d = double(j) - mean;
    var += d * d;
  }
  var /= double(jobs_per_worker.size());
  return std::sqrt(var) / mean;
}

}  // namespace annsim::data
