#include "annsim/data/vecs_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "annsim/common/error.hpp"

namespace annsim::data {

namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ANNSIM_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  return in;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANNSIM_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  return out;
}

std::size_t count_rows(std::ifstream& in, std::size_t value_size) {
  std::int32_t dim = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  ANNSIM_CHECK_MSG(in.good() && dim > 0, "corrupt vecs header");
  in.seekg(0, std::ios::end);
  const auto bytes = static_cast<std::size_t>(in.tellg());
  const std::size_t row_bytes = sizeof(std::int32_t) + std::size_t(dim) * value_size;
  ANNSIM_CHECK_MSG(bytes % row_bytes == 0, "vecs file size not a multiple of row size");
  in.seekg(0, std::ios::beg);
  return bytes / row_bytes;
}

}  // namespace

Dataset load_fvecs(const std::string& path, std::size_t max_rows) {
  auto in = open_in(path);
  const std::size_t rows_in_file = count_rows(in, sizeof(float));
  const std::size_t rows =
      max_rows == 0 ? rows_in_file : std::min(max_rows, rows_in_file);

  Dataset ds;
  std::vector<float> buf;
  for (std::size_t r = 0; r < rows; ++r) {
    std::int32_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    ANNSIM_CHECK_MSG(in.good() && dim > 0, "corrupt fvecs row header at row " << r);
    if (r == 0) {
      ds.reset(rows, std::size_t(dim));
      buf.resize(std::size_t(dim));
    }
    ANNSIM_CHECK_MSG(std::size_t(dim) == ds.dim(), "ragged fvecs file at row " << r);
    in.read(reinterpret_cast<char*>(buf.data()),
            std::streamsize(buf.size() * sizeof(float)));
    ANNSIM_CHECK(in.good());
    ds.set_row(r, buf);
  }
  return ds;
}

Dataset load_bvecs(const std::string& path, std::size_t max_rows) {
  auto in = open_in(path);
  const std::size_t rows_in_file = count_rows(in, sizeof(std::uint8_t));
  const std::size_t rows =
      max_rows == 0 ? rows_in_file : std::min(max_rows, rows_in_file);

  Dataset ds;
  std::vector<std::uint8_t> raw;
  std::vector<float> buf;
  for (std::size_t r = 0; r < rows; ++r) {
    std::int32_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    ANNSIM_CHECK_MSG(in.good() && dim > 0, "corrupt bvecs row header at row " << r);
    if (r == 0) {
      ds.reset(rows, std::size_t(dim));
      raw.resize(std::size_t(dim));
      buf.resize(std::size_t(dim));
    }
    ANNSIM_CHECK_MSG(std::size_t(dim) == ds.dim(), "ragged bvecs file at row " << r);
    in.read(reinterpret_cast<char*>(raw.data()), std::streamsize(raw.size()));
    ANNSIM_CHECK(in.good());
    for (std::size_t i = 0; i < raw.size(); ++i) buf[i] = float(raw[i]);
    ds.set_row(r, buf);
  }
  return ds;
}

std::vector<std::vector<std::int32_t>> load_ivecs(const std::string& path,
                                                  std::size_t max_rows) {
  auto in = open_in(path);
  std::vector<std::vector<std::int32_t>> rows;
  while (in.peek() != EOF) {
    std::int32_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    if (!in.good()) break;
    ANNSIM_CHECK_MSG(dim >= 0, "corrupt ivecs row header");
    std::vector<std::int32_t> row(static_cast<std::size_t>(dim), 0);
    in.read(reinterpret_cast<char*>(row.data()),
            std::streamsize(row.size() * sizeof(std::int32_t)));
    ANNSIM_CHECK(in.good());
    rows.push_back(std::move(row));
    if (max_rows != 0 && rows.size() == max_rows) break;
  }
  return rows;
}

void save_fvecs(const std::string& path, const Dataset& ds) {
  auto out = open_out(path);
  const auto dim = static_cast<std::int32_t>(ds.dim());
  for (std::size_t r = 0; r < ds.size(); ++r) {
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(ds.row(r)),
              std::streamsize(ds.dim() * sizeof(float)));
  }
  ANNSIM_CHECK(out.good());
}

void save_bvecs(const std::string& path, const Dataset& ds) {
  auto out = open_out(path);
  const auto dim = static_cast<std::int32_t>(ds.dim());
  std::vector<std::uint8_t> raw(ds.dim());
  for (std::size_t r = 0; r < ds.size(); ++r) {
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    const float* row = ds.row(r);
    for (std::size_t i = 0; i < ds.dim(); ++i) {
      const float clamped = std::min(255.0f, std::max(0.0f, std::round(row[i])));
      raw[i] = static_cast<std::uint8_t>(clamped);
    }
    out.write(reinterpret_cast<const char*>(raw.data()), std::streamsize(raw.size()));
  }
  ANNSIM_CHECK(out.good());
}

void save_ivecs(const std::string& path,
                const std::vector<std::vector<std::int32_t>>& rows) {
  auto out = open_out(path);
  for (const auto& row : rows) {
    const auto dim = static_cast<std::int32_t>(row.size());
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(row.data()),
              std::streamsize(row.size() * sizeof(std::int32_t)));
  }
  ANNSIM_CHECK(out.good());
}

}  // namespace annsim::data
