#include "annsim/data/ground_truth.hpp"

#include <algorithm>
#include <unordered_set>

#include "annsim/common/error.hpp"
#include "annsim/common/topk.hpp"

namespace annsim::data {

KnnResults brute_force_knn(const Dataset& base, const Dataset& queries,
                           std::size_t k, simd::Metric metric,
                           ThreadPool* pool) {
  ANNSIM_CHECK(base.dim() == queries.dim());
  ANNSIM_CHECK(k > 0);
  const simd::DistanceComputer dist(metric, base.dim());
  KnnResults results(queries.size());

  auto run_query = [&](std::size_t q) {
    TopK topk(k);
    const float* qv = queries.row(q);
    for (std::size_t i = 0; i < base.size(); ++i) {
      topk.push(dist(qv, base.row(i)), base.id(i));
    }
    results[q] = topk.take_sorted();
  };

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, queries.size(), run_query);
  } else {
    for (std::size_t q = 0; q < queries.size(); ++q) run_query(q);
  }
  return results;
}

double recall_at_k(const std::vector<Neighbor>& result,
                   const std::vector<Neighbor>& truth, std::size_t k) {
  ANNSIM_CHECK(k > 0);
  const std::size_t kk = std::min(k, truth.size());
  if (kk == 0) return 1.0;

  std::unordered_set<GlobalId> truth_ids;
  truth_ids.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) truth_ids.insert(truth[i].id);
  // Distance ties straddling the k boundary: any result at distance equal to
  // the k-th true distance counts as correct.
  const float kth_dist = truth[kk - 1].dist;

  std::size_t hits = 0;
  const std::size_t limit = std::min(k, result.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (truth_ids.contains(result[i].id) || result[i].dist <= kth_dist) ++hits;
  }
  return double(hits) / double(kk);
}

double mean_recall(const KnnResults& results, const KnnResults& truth,
                   std::size_t k) {
  ANNSIM_CHECK(results.size() == truth.size());
  if (results.empty()) return 1.0;
  double sum = 0.0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    sum += recall_at_k(results[q], truth[q], k);
  }
  return sum / double(results.size());
}

}  // namespace annsim::data
