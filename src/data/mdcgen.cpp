#include "annsim/data/mdcgen.hpp"

#include <algorithm>
#include <cmath>

#include "annsim/common/error.hpp"

namespace annsim::data {

MDCGenerator::MDCGenerator(MDCGenParams params) : params_(std::move(params)) {
  ANNSIM_CHECK(params_.dim > 0);
  ANNSIM_CHECK(params_.n_clusters > 0);
  ANNSIM_CHECK(params_.n_outliers <= params_.n_points);
  ANNSIM_CHECK(params_.domain_max > params_.domain_min);
  ANNSIM_CHECK(params_.compactness > 0.0 && params_.compactness < 1.0);
  ANNSIM_CHECK(params_.mass_imbalance >= 0.0 && params_.mass_imbalance <= 1.0);
}

MDCGenOutput MDCGenerator::generate() const {
  const auto& p = params_;
  Rng rng(p.seed);
  const double span = p.domain_max - p.domain_min;

  MDCGenOutput out;
  out.points.reset(p.n_points, p.dim);
  out.labels.assign(p.n_points, 0);
  out.centroids.reset(p.n_clusters, p.dim);
  out.radii.resize(p.n_clusters);

  // --- cluster geometry: centroids spread inside the domain, kept away
  // from the boundary so cluster balls stay inside.
  const double margin = p.compactness * span;
  Rng geom_rng = rng.split(1);
  for (std::size_t c = 0; c < p.n_clusters; ++c) {
    for (std::size_t d = 0; d < p.dim; ++d) {
      out.centroids.row(c)[d] = float(
          geom_rng.uniform(p.domain_min + margin, p.domain_max - margin));
    }
    // Radii vary ±50% around the compactness-derived base radius.
    out.radii[c] = p.compactness * span * geom_rng.uniform(0.5, 1.5);
  }

  // --- cluster masses: a Dirichlet-like skew controlled by mass_imbalance.
  const std::size_t cluster_points = p.n_points - p.n_outliers;
  std::vector<double> weights(p.n_clusters);
  Rng mass_rng = rng.split(2);
  double wsum = 0.0;
  for (auto& w : weights) {
    const double u = mass_rng.uniform();
    w = 1.0 + p.mass_imbalance * (std::pow(u, 3.0) * double(p.n_clusters) - 1.0);
    w = std::max(w, 0.05);
    wsum += w;
  }
  out.cluster_sizes.assign(p.n_clusters, 0);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < p.n_clusters; ++c) {
    const auto sz = (c + 1 == p.n_clusters)
                        ? cluster_points - assigned
                        : std::size_t(double(cluster_points) * weights[c] / wsum);
    out.cluster_sizes[c] = sz;
    assigned += sz;
  }

  // --- point synthesis.
  Rng point_rng = rng.split(3);
  std::size_t row = 0;
  for (std::size_t c = 0; c < p.n_clusters; ++c) {
    const auto dist =
        p.distributions.empty()
            ? (c % 2 == 0 ? ClusterDistribution::kGaussian
                          : ClusterDistribution::kUniform)
            : p.distributions[c % p.distributions.size()];
    const float* centroid = out.centroids.row(c);
    const double radius = out.radii[c];
    for (std::size_t i = 0; i < out.cluster_sizes[c]; ++i, ++row) {
      float* dst = out.points.row(row);
      if (dist == ClusterDistribution::kGaussian) {
        // In d dimensions the radial distance concentrates at sigma*sqrt(d);
        // scale sigma so the cluster's radial extent matches `radius`.
        const double sigma = radius / std::sqrt(double(p.dim));
        for (std::size_t d = 0; d < p.dim; ++d) {
          dst[d] = float(centroid[d] + point_rng.normal(0.0, sigma));
        }
      } else {
        for (std::size_t d = 0; d < p.dim; ++d) {
          dst[d] = float(centroid[d] + point_rng.uniform(-radius, radius));
        }
      }
      out.labels[row] = std::uint32_t(c);
    }
  }

  // --- outliers: uniform over the entire domain.
  Rng outlier_rng = rng.split(4);
  for (std::size_t i = 0; i < p.n_outliers; ++i, ++row) {
    float* dst = out.points.row(row);
    for (std::size_t d = 0; d < p.dim; ++d) {
      dst[d] = float(outlier_rng.uniform(p.domain_min, p.domain_max));
    }
    out.labels[row] = std::uint32_t(p.n_clusters);
  }
  ANNSIM_CHECK(row == p.n_points);

  // --- shuffle so partitioning code cannot rely on generation order.
  Rng shuffle_rng = rng.split(5);
  for (std::size_t i = p.n_points; i > 1; --i) {
    const std::size_t j = shuffle_rng.uniform_below(i);
    if (j == i - 1) continue;
    std::swap_ranges(out.points.row(i - 1), out.points.row(i - 1) + p.dim,
                     out.points.row(j));
    std::swap(out.labels[i - 1], out.labels[j]);
  }
  return out;
}

Dataset MDCGenerator::generate_queries(const MDCGenOutput& out,
                                       std::size_t n_queries,
                                       std::size_t cluster_id,
                                       double compactness,
                                       std::uint64_t seed) const {
  ANNSIM_CHECK(cluster_id < params_.n_clusters);
  ANNSIM_CHECK(compactness > 0.0 && compactness < 1.0);
  const double span = params_.domain_max - params_.domain_min;
  const double radius = compactness * span;
  const float* centroid = out.centroids.row(cluster_id);

  Dataset queries(n_queries, params_.dim);
  Rng rng(seed);
  for (std::size_t q = 0; q < n_queries; ++q) {
    float* dst = queries.row(q);
    for (std::size_t d = 0; d < params_.dim; ++d) {
      dst[d] = float(centroid[d] + rng.uniform(-radius, radius));
    }
  }
  return queries;
}

}  // namespace annsim::data
