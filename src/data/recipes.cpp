#include "annsim/data/recipes.hpp"

#include <algorithm>
#include <cmath>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::data {

namespace {

/// Descriptor-style corpus: points drawn from a Gaussian mixture whose
/// component count grows with n (image descriptors form many small modes),
/// then post-processed per recipe. Queries are drawn from the same mixture
/// (held-out draws), matching how SIFT/DEEP/GIST query sets are produced
/// from held-out images.
struct MixtureSpec {
  std::size_t dim;
  std::size_t n_components;
  double center_scale;   ///< Spread of component means.
  double within_sigma;   ///< Intra-component standard deviation.
};

void fill_mixture(Dataset& ds, const MixtureSpec& spec, Rng& rng,
                  const Dataset& centers) {
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const std::size_t c = rng.uniform_below(centers.size());
    const float* mu = centers.row(c);
    float* dst = ds.row(i);
    for (std::size_t d = 0; d < spec.dim; ++d) {
      dst[d] = float(mu[d] + rng.normal(0.0, spec.within_sigma));
    }
  }
}

Dataset make_centers(const MixtureSpec& spec, Rng& rng) {
  Dataset centers(spec.n_components, spec.dim);
  for (std::size_t c = 0; c < spec.n_components; ++c) {
    float* dst = centers.row(c);
    for (std::size_t d = 0; d < spec.dim; ++d) {
      dst[d] = float(rng.normal(0.0, spec.center_scale));
    }
  }
  return centers;
}

void clamp_to_byte_range(Dataset& ds) {
  // SIFT descriptors are non-negative uint8 histograms: shift+clamp.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    float* row = ds.row(i);
    for (std::size_t d = 0; d < ds.dim(); ++d) {
      row[d] = std::round(std::clamp(row[d] * 40.0f + 60.0f, 0.0f, 255.0f));
    }
  }
}

void l2_normalize(Dataset& ds) {
  for (std::size_t i = 0; i < ds.size(); ++i) {
    float* row = ds.row(i);
    const float norm = simd::l2_norm(row, ds.dim());
    if (norm > 0.f) {
      for (std::size_t d = 0; d < ds.dim(); ++d) row[d] /= norm;
    }
  }
}

void heavy_tail(Dataset& ds, Rng& rng) {
  // GIST-style: sparse heavy-tailed coordinates (many near zero, a few big).
  for (std::size_t i = 0; i < ds.size(); ++i) {
    float* row = ds.row(i);
    for (std::size_t d = 0; d < ds.dim(); ++d) {
      const double boost = rng.uniform() < 0.05 ? 4.0 : 1.0;
      row[d] = float(row[d] * boost);
    }
  }
}

}  // namespace

Workload make_sift_like(std::size_t n_base, std::size_t n_queries,
                        std::uint64_t seed) {
  ANNSIM_CHECK(n_base > 0 && n_queries > 0);
  const MixtureSpec spec{128, std::max<std::size_t>(32, n_base / 2000), 1.0, 0.35};
  Rng rng(seed);
  Dataset centers = make_centers(spec, rng);

  Workload w;
  w.name = "SIFT-like";
  w.base.reset(n_base, spec.dim);
  w.queries.reset(n_queries, spec.dim);
  Rng base_rng = rng.split(1);
  Rng query_rng = rng.split(2);
  fill_mixture(w.base, spec, base_rng, centers);
  fill_mixture(w.queries, spec, query_rng, centers);
  clamp_to_byte_range(w.base);
  clamp_to_byte_range(w.queries);
  return w;
}

Workload make_deep_like(std::size_t n_base, std::size_t n_queries,
                        std::uint64_t seed) {
  ANNSIM_CHECK(n_base > 0 && n_queries > 0);
  const MixtureSpec spec{96, std::max<std::size_t>(32, n_base / 2000), 1.0, 0.45};
  Rng rng(seed);
  Dataset centers = make_centers(spec, rng);

  Workload w;
  w.name = "DEEP-like";
  w.base.reset(n_base, spec.dim);
  w.queries.reset(n_queries, spec.dim);
  Rng base_rng = rng.split(1);
  Rng query_rng = rng.split(2);
  fill_mixture(w.base, spec, base_rng, centers);
  fill_mixture(w.queries, spec, query_rng, centers);
  l2_normalize(w.base);
  l2_normalize(w.queries);
  return w;
}

Workload make_gist_like(std::size_t n_base, std::size_t n_queries,
                        std::uint64_t seed) {
  ANNSIM_CHECK(n_base > 0 && n_queries > 0);
  const MixtureSpec spec{960, std::max<std::size_t>(16, n_base / 4000), 0.6, 0.3};
  Rng rng(seed);
  Dataset centers = make_centers(spec, rng);

  Workload w;
  w.name = "GIST-like";
  w.base.reset(n_base, spec.dim);
  w.queries.reset(n_queries, spec.dim);
  Rng base_rng = rng.split(1);
  Rng query_rng = rng.split(2);
  fill_mixture(w.base, spec, base_rng, centers);
  fill_mixture(w.queries, spec, query_rng, centers);
  Rng tail_rng = rng.split(3);
  heavy_tail(w.base, tail_rng);
  heavy_tail(w.queries, tail_rng);
  return w;
}

Workload make_syn(std::size_t n_base, std::size_t dim, std::size_t n_outliers,
                  std::size_t n_queries, std::uint64_t seed) {
  MDCGenParams p;
  p.n_points = n_base;
  p.dim = dim;
  p.n_clusters = 10;  // paper: "10 clusters"
  p.n_outliers = std::min(n_outliers, n_base / 2);
  p.distributions = {ClusterDistribution::kGaussian, ClusterDistribution::kUniform};
  p.seed = seed;
  MDCGenerator gen(p);
  MDCGenOutput out = gen.generate();

  Workload w;
  w.name = "SYN-" + std::to_string(n_base) + "x" + std::to_string(dim);
  // Paper: queries "using uniform distribution in a single cluster with a
  // compactness factor of 0.01". We read this as MDCGen semantics — the
  // query set is a uniform cluster co-located with a data cluster — so the
  // queries span the host cluster's extent. (Reading 0.01 as a radius
  // fraction of the whole domain would collapse every query onto a single
  // point and route the entire batch to a handful of partitions.)
  const double query_spread = out.radii[0] / (p.domain_max - p.domain_min);
  w.queries = gen.generate_queries(out, n_queries, /*cluster_id=*/0,
                                   query_spread, seed ^ 0xfeedULL);
  w.base = std::move(out.points);
  return w;
}

Workload make_by_name(const std::string& name, std::size_t n_base,
                      std::size_t n_queries, std::uint64_t seed) {
  if (name == "SIFT" || name == "ANN_SIFT1B") return make_sift_like(n_base, n_queries, seed);
  if (name == "DEEP" || name == "DEEP1B") return make_deep_like(n_base, n_queries, seed);
  if (name == "GIST" || name == "ANN_GIST1M") return make_gist_like(n_base, n_queries, seed);
  if (name == "SYN_1M") return make_syn(n_base, 512, n_base / 200, n_queries, seed);
  if (name == "SYN_10M") return make_syn(n_base, 256, n_base / 200, n_queries, seed);
  ANNSIM_CHECK_MSG(false, "unknown dataset recipe: " << name);
  return {};
}

}  // namespace annsim::data
