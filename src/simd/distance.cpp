#include "annsim/simd/distance.hpp"

#include <cmath>
#include <cstdlib>
#include <immintrin.h>

namespace annsim::simd {

// ---------------------------------------------------------------- scalar ---

float l2_sq_scalar(const float* a, const float* b, std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float inner_product_scalar(const float* a, const float* b, std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float l1_scalar(const float* a, const float* b, std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) acc += std::fabs(a[i] - b[i]);
  return acc;
}

float l2_sq_u8_scalar(const float* query, const std::uint8_t* code,
                      const float* mins, const float* scales,
                      std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float dec = mins[i] + scales[i] * float(code[i]);
    const float d = query[i] - dec;
    acc += d * d;
  }
  return acc;
}

float ip_u8_scalar(const float* query, const std::uint8_t* code,
                   const float* mins, const float* scales,
                   std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += query[i] * (mins[i] + scales[i] * float(code[i]));
  }
  return acc;
}

// ------------------------------------------------------------- AVX2+FMA ---

namespace {

__attribute__((target("avx2,fma"))) float hsum256(__m256 v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

__attribute__((target("avx2,fma"))) float l2_sq_avx2(const float* a, const float* b,
                                                     std::size_t dim) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

__attribute__((target("avx2,fma"))) float ip_avx2(const float* a, const float* b,
                                                  std::size_t dim) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float acc = hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((target("avx2,fma"))) float l1_avx2(const float* a, const float* b,
                                                  std::size_t dim) noexcept {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, d));
  }
  float s = hsum256(acc);
  for (; i < dim; ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

// SQ8 asymmetric kernels: widen 8 code bytes to epi32, convert to ps, fuse
// the affine decode (code * scale + min) into an fmadd, then proceed exactly
// like the float kernels. The row side streams 1 byte/dim instead of 4.

__attribute__((target("avx2,fma"))) float l2_sq_u8_avx2(
    const float* query, const std::uint8_t* code, const float* mins,
    const float* scales, std::size_t dim) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m128i c8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + i));
    const __m256 cf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c8));
    const __m256 dec = _mm256_fmadd_ps(cf, _mm256_loadu_ps(scales + i),
                                       _mm256_loadu_ps(mins + i));
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(query + i), dec);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float s = hsum256(acc);
  for (; i < dim; ++i) {
    const float dec = mins[i] + scales[i] * float(code[i]);
    const float d = query[i] - dec;
    s += d * d;
  }
  return s;
}

__attribute__((target("avx2,fma"))) float ip_u8_avx2(
    const float* query, const std::uint8_t* code, const float* mins,
    const float* scales, std::size_t dim) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m128i c8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + i));
    const __m256 cf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c8));
    const __m256 dec = _mm256_fmadd_ps(cf, _mm256_loadu_ps(scales + i),
                                       _mm256_loadu_ps(mins + i));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(query + i), dec, acc);
  }
  float s = hsum256(acc);
  for (; i < dim; ++i) {
    s += query[i] * (mins[i] + scales[i] * float(code[i]));
  }
  return s;
}

bool cpu_has_avx2_fma() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

bool force_scalar_env() noexcept {
  const char* v = std::getenv("ANNSIM_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

using KernelU8Fn = float (*)(const float*, const std::uint8_t*, const float*,
                             const float*, std::size_t) noexcept;

struct Dispatch {
  KernelFn l2_sq;
  KernelFn ip;
  KernelFn l1;
  KernelU8Fn l2_sq_u8;
  KernelU8Fn ip_u8;
  bool avx2;
  bool forced_scalar;
};

const Dispatch& dispatch() noexcept {
  static const Dispatch d = [] {
    if (force_scalar_env()) {
      return Dispatch{l2_sq_scalar,    inner_product_scalar, l1_scalar,
                      l2_sq_u8_scalar, ip_u8_scalar,         false,
                      true};
    }
    if (cpu_has_avx2_fma()) {
      return Dispatch{l2_sq_avx2,    ip_avx2,    l1_avx2,
                      l2_sq_u8_avx2, ip_u8_avx2, true,
                      false};
    }
    return Dispatch{l2_sq_scalar,    inner_product_scalar, l1_scalar,
                    l2_sq_u8_scalar, ip_u8_scalar,         false,
                    false};
  }();
  return d;
}

/// Shared one-to-many loop: resolves the row pointer (id list or contiguous),
/// prefetches `kAhead` rows ahead of the computation, and calls the supplied
/// kernel per row — so batched results are bit-identical to pairwise calls.
template <typename RowOf>
inline void batch_loop(KernelFn kernel, const float* query, const float* base,
                       std::size_t stride, std::size_t dim, std::size_t n,
                       float* out, RowOf row_of) noexcept {
  constexpr std::size_t kAhead = 4;
  const std::size_t warm = n < kAhead ? n : kAhead;
  for (std::size_t i = 0; i < warm; ++i) {
    prefetch_vector(base + row_of(i) * stride, dim);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      prefetch_vector(base + row_of(i + kAhead) * stride, dim);
    }
    out[i] = kernel(query, base + row_of(i) * stride, dim);
  }
}

inline void batch_dispatch(KernelFn kernel, const float* query, const float* base,
                           std::size_t stride, std::size_t dim,
                           const std::uint32_t* ids, std::size_t n,
                           float* out) noexcept {
  if (ids != nullptr) {
    batch_loop(kernel, query, base, stride, dim, n, out,
               [ids](std::size_t i) { return std::size_t(ids[i]); });
  } else {
    batch_loop(kernel, query, base, stride, dim, n, out,
               [](std::size_t i) { return i; });
  }
}

/// u8 variant of batch_loop: `stride` is in bytes, prefetch follows the 4x
/// denser code rows. Same per-row kernel call, so batched == pairwise bitwise.
template <typename RowOf>
inline void batch_loop_u8(KernelU8Fn kernel, const float* query,
                          const std::uint8_t* base, std::size_t stride,
                          std::size_t dim, const float* mins,
                          const float* scales, std::size_t n, float* out,
                          RowOf row_of) noexcept {
  constexpr std::size_t kAhead = 4;
  const std::size_t warm = n < kAhead ? n : kAhead;
  for (std::size_t i = 0; i < warm; ++i) {
    prefetch_code(base + row_of(i) * stride, dim);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      prefetch_code(base + row_of(i + kAhead) * stride, dim);
    }
    out[i] = kernel(query, base + row_of(i) * stride, mins, scales, dim);
  }
}

inline void batch_dispatch_u8(KernelU8Fn kernel, const float* query,
                              const std::uint8_t* base, std::size_t stride,
                              std::size_t dim, const float* mins,
                              const float* scales, const std::uint32_t* ids,
                              std::size_t n, float* out) noexcept {
  if (ids != nullptr) {
    batch_loop_u8(kernel, query, base, stride, dim, mins, scales, n, out,
                  [ids](std::size_t i) { return std::size_t(ids[i]); });
  } else {
    batch_loop_u8(kernel, query, base, stride, dim, mins, scales, n, out,
                  [](std::size_t i) { return i; });
  }
}

}  // namespace

// --------------------------------------------------------------- public ---

float l2_sq(const float* a, const float* b, std::size_t dim) noexcept {
  return dispatch().l2_sq(a, b, dim);
}

float inner_product(const float* a, const float* b, std::size_t dim) noexcept {
  return dispatch().ip(a, b, dim);
}

float l1(const float* a, const float* b, std::size_t dim) noexcept {
  return dispatch().l1(a, b, dim);
}

float l2_norm(const float* a, std::size_t dim) noexcept {
  return std::sqrt(dispatch().ip(a, a, dim));
}

KernelFn l2_sq_kernel() noexcept { return dispatch().l2_sq; }
KernelFn inner_product_kernel() noexcept { return dispatch().ip; }
KernelFn l1_kernel() noexcept { return dispatch().l1; }

void l2_sq_batch(const float* query, const float* base, std::size_t stride,
                 std::size_t dim, const std::uint32_t* ids, std::size_t n,
                 float* out) noexcept {
  batch_dispatch(dispatch().l2_sq, query, base, stride, dim, ids, n, out);
}

void ip_batch(const float* query, const float* base, std::size_t stride,
              std::size_t dim, const std::uint32_t* ids, std::size_t n,
              float* out) noexcept {
  batch_dispatch(dispatch().ip, query, base, stride, dim, ids, n, out);
}

void l1_batch(const float* query, const float* base, std::size_t stride,
              std::size_t dim, const std::uint32_t* ids, std::size_t n,
              float* out) noexcept {
  batch_dispatch(dispatch().l1, query, base, stride, dim, ids, n, out);
}

void l2_sq_batch_scalar(const float* query, const float* base, std::size_t stride,
                        std::size_t dim, const std::uint32_t* ids, std::size_t n,
                        float* out) noexcept {
  batch_dispatch(l2_sq_scalar, query, base, stride, dim, ids, n, out);
}

void ip_batch_scalar(const float* query, const float* base, std::size_t stride,
                     std::size_t dim, const std::uint32_t* ids, std::size_t n,
                     float* out) noexcept {
  batch_dispatch(inner_product_scalar, query, base, stride, dim, ids, n, out);
}

void l1_batch_scalar(const float* query, const float* base, std::size_t stride,
                     std::size_t dim, const std::uint32_t* ids, std::size_t n,
                     float* out) noexcept {
  batch_dispatch(l1_scalar, query, base, stride, dim, ids, n, out);
}

float l2_sq_u8(const float* query, const std::uint8_t* code, const float* mins,
               const float* scales, std::size_t dim) noexcept {
  return dispatch().l2_sq_u8(query, code, mins, scales, dim);
}

float ip_u8(const float* query, const std::uint8_t* code, const float* mins,
            const float* scales, std::size_t dim) noexcept {
  return dispatch().ip_u8(query, code, mins, scales, dim);
}

void l2_sq_batch_u8(const float* query, const std::uint8_t* base,
                    std::size_t stride, std::size_t dim, const float* mins,
                    const float* scales, const std::uint32_t* ids,
                    std::size_t n, float* out) noexcept {
  batch_dispatch_u8(dispatch().l2_sq_u8, query, base, stride, dim, mins,
                    scales, ids, n, out);
}

void ip_batch_u8(const float* query, const std::uint8_t* base,
                 std::size_t stride, std::size_t dim, const float* mins,
                 const float* scales, const std::uint32_t* ids, std::size_t n,
                 float* out) noexcept {
  batch_dispatch_u8(dispatch().ip_u8, query, base, stride, dim, mins, scales,
                    ids, n, out);
}

void l2_sq_batch_u8_scalar(const float* query, const std::uint8_t* base,
                           std::size_t stride, std::size_t dim,
                           const float* mins, const float* scales,
                           const std::uint32_t* ids, std::size_t n,
                           float* out) noexcept {
  batch_dispatch_u8(l2_sq_u8_scalar, query, base, stride, dim, mins, scales,
                    ids, n, out);
}

void ip_batch_u8_scalar(const float* query, const std::uint8_t* base,
                        std::size_t stride, std::size_t dim, const float* mins,
                        const float* scales, const std::uint32_t* ids,
                        std::size_t n, float* out) noexcept {
  batch_dispatch_u8(ip_u8_scalar, query, base, stride, dim, mins, scales, ids,
                    n, out);
}

std::string kernel_isa() {
  const Dispatch& d = dispatch();
  if (d.forced_scalar) return "scalar(forced)";
  return d.avx2 ? "avx2+fma" : "scalar";
}

bool scalar_forced() noexcept { return dispatch().forced_scalar; }

const char* metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kL2: return "L2";
    case Metric::kL1: return "L1";
    case Metric::kInnerProduct: return "InnerProduct";
    case Metric::kCosine: return "Cosine";
  }
  return "?";
}

// ---------------------------------------------------- DistanceComputer ---

namespace {

float search_passthrough(const float* a, const float* b, std::size_t dim,
                         KernelFn raw) noexcept {
  return raw(a, b, dim);
}

float search_one_minus_ip(const float* a, const float* b, std::size_t dim,
                          KernelFn raw) noexcept {
  return 1.0f - raw(a, b, dim);
}

float search_cosine(const float* a, const float* b, std::size_t dim,
                    KernelFn raw) noexcept {
  // `raw` is the inner-product kernel; norms reuse it on (v, v).
  const float na = std::sqrt(raw(a, a, dim));
  const float nb = std::sqrt(raw(b, b, dim));
  if (na == 0.f || nb == 0.f) return 1.0f;
  return 1.0f - raw(a, b, dim) / (na * nb);
}

}  // namespace

DistanceComputer::DistanceComputer(Metric metric, std::size_t dim) noexcept
    : metric_(metric), dim_(dim) {
  switch (metric_) {
    case Metric::kL2:
      raw_ = l2_sq_kernel();
      search_fn_ = search_passthrough;
      break;
    case Metric::kL1:
      raw_ = l1_kernel();
      search_fn_ = search_passthrough;
      break;
    case Metric::kInnerProduct:
      raw_ = inner_product_kernel();
      search_fn_ = search_one_minus_ip;
      break;
    case Metric::kCosine:
      raw_ = inner_product_kernel();
      search_fn_ = search_cosine;
      break;
  }
}

void DistanceComputer::search_dist_batch(const float* query, const float* base,
                                         std::size_t stride,
                                         const std::uint32_t* ids, std::size_t n,
                                         float* out) const noexcept {
  switch (metric_) {
    case Metric::kL2:
      batch_dispatch(raw_, query, base, stride, dim_, ids, n, out);
      return;
    case Metric::kL1:
      batch_dispatch(raw_, query, base, stride, dim_, ids, n, out);
      return;
    case Metric::kInnerProduct:
      batch_dispatch(raw_, query, base, stride, dim_, ids, n, out);
      for (std::size_t i = 0; i < n; ++i) out[i] = 1.0f - out[i];
      return;
    case Metric::kCosine:
      // Per-row norms block a single-kernel batch; fall back to the pairwise
      // path (still prefetched two rows ahead).
      for (std::size_t i = 0; i < n; ++i) {
        if (i + 2 < n) {
          const std::size_t nxt = ids != nullptr ? ids[i + 2] : i + 2;
          prefetch_vector(base + nxt * stride, dim_);
        }
        const std::size_t row = ids != nullptr ? ids[i] : i;
        out[i] = search_dist(query, base + row * stride);
      }
      return;
  }
}

}  // namespace annsim::simd
