#include "annsim/simd/distance.hpp"

#include <cmath>
#include <immintrin.h>

namespace annsim::simd {

// ---------------------------------------------------------------- scalar ---

float l2_sq_scalar(const float* a, const float* b, std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float inner_product_scalar(const float* a, const float* b, std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float l1_scalar(const float* a, const float* b, std::size_t dim) noexcept {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) acc += std::fabs(a[i] - b[i]);
  return acc;
}

// ------------------------------------------------------------- AVX2+FMA ---

namespace {

__attribute__((target("avx2,fma"))) float hsum256(__m256 v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

__attribute__((target("avx2,fma"))) float l2_sq_avx2(const float* a, const float* b,
                                                     std::size_t dim) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

__attribute__((target("avx2,fma"))) float ip_avx2(const float* a, const float* b,
                                                  std::size_t dim) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float acc = hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((target("avx2,fma"))) float l1_avx2(const float* a, const float* b,
                                                  std::size_t dim) noexcept {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, d));
  }
  float s = hsum256(acc);
  for (; i < dim; ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

bool cpu_has_avx2_fma() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

using Kernel = float (*)(const float*, const float*, std::size_t) noexcept;

struct Dispatch {
  Kernel l2_sq;
  Kernel ip;
  Kernel l1;
  bool avx2;
};

const Dispatch& dispatch() noexcept {
  static const Dispatch d = [] {
    if (cpu_has_avx2_fma()) return Dispatch{l2_sq_avx2, ip_avx2, l1_avx2, true};
    return Dispatch{l2_sq_scalar, inner_product_scalar, l1_scalar, false};
  }();
  return d;
}

}  // namespace

// --------------------------------------------------------------- public ---

float l2_sq(const float* a, const float* b, std::size_t dim) noexcept {
  return dispatch().l2_sq(a, b, dim);
}

float inner_product(const float* a, const float* b, std::size_t dim) noexcept {
  return dispatch().ip(a, b, dim);
}

float l1(const float* a, const float* b, std::size_t dim) noexcept {
  return dispatch().l1(a, b, dim);
}

float l2_norm(const float* a, std::size_t dim) noexcept {
  return std::sqrt(dispatch().ip(a, a, dim));
}

std::string kernel_isa() { return dispatch().avx2 ? "avx2+fma" : "scalar"; }

const char* metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kL2: return "L2";
    case Metric::kL1: return "L1";
    case Metric::kInnerProduct: return "InnerProduct";
    case Metric::kCosine: return "Cosine";
  }
  return "?";
}

float DistanceComputer::operator()(const float* a, const float* b) const noexcept {
  switch (metric_) {
    case Metric::kL2: return std::sqrt(l2_sq(a, b, dim_));
    case Metric::kL1: return l1(a, b, dim_);
    case Metric::kInnerProduct: return 1.0f - inner_product(a, b, dim_);
    case Metric::kCosine: {
      const float na = l2_norm(a, dim_);
      const float nb = l2_norm(b, dim_);
      if (na == 0.f || nb == 0.f) return 1.0f;
      return 1.0f - inner_product(a, b, dim_) / (na * nb);
    }
  }
  return 0.f;
}

}  // namespace annsim::simd
