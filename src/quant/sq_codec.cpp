#include "annsim/quant/sq_codec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "annsim/common/error.hpp"

namespace annsim::quant {

SqCodec SqCodec::train(const data::Dataset& rows) {
  ANNSIM_CHECK_MSG(!rows.empty(), "SqCodec::train: empty corpus");
  SqCodec c;
  c.dim_ = rows.dim();
  const std::size_t padded = c.code_stride();
  c.mins_.reset(padded);
  c.scales_.reset(padded);

  std::vector<float> lo(c.dim_, std::numeric_limits<float>::infinity());
  std::vector<float> hi(c.dim_, -std::numeric_limits<float>::infinity());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* r = rows.row(i);
    for (std::size_t d = 0; d < c.dim_; ++d) {
      lo[d] = std::min(lo[d], r[d]);
      hi[d] = std::max(hi[d], r[d]);
    }
  }
  for (std::size_t d = 0; d < c.dim_; ++d) {
    c.mins_[d] = lo[d];
    c.scales_[d] = (hi[d] - lo[d]) / 255.0f;
  }
  // Padding dims stay (min 0, scale 0): codes there are 0 and decode to 0,
  // contributing nothing to padded-width kernel sweeps.
  return c;
}

void SqCodec::encode(std::span<const float> row, std::uint8_t* code) const noexcept {
  for (std::size_t d = 0; d < dim_; ++d) {
    const float s = scales_[d];
    float q = s > 0.0f ? std::nearbyint((row[d] - mins_[d]) / s) : 0.0f;
    q = std::clamp(q, 0.0f, 255.0f);
    code[d] = std::uint8_t(q);
  }
  std::fill(code + dim_, code + code_stride(), std::uint8_t{0});
}

void SqCodec::decode(const std::uint8_t* code, float* out) const noexcept {
  for (std::size_t d = 0; d < dim_; ++d) {
    out[d] = mins_[d] + scales_[d] * float(code[d]);
  }
}

float SqCodec::max_abs_error() const noexcept {
  float worst = 0.0f;
  for (std::size_t d = 0; d < dim_; ++d) worst = std::max(worst, scales_[d]);
  return worst * 0.5f;
}

void SqCodec::serialize(BinaryWriter& w) const {
  w.write(std::uint64_t(dim_));
  w.write_span(std::span<const float>(mins_.data(), dim_));
  w.write_span(std::span<const float>(scales_.data(), dim_));
}

SqCodec SqCodec::deserialize(BinaryReader& r) {
  SqCodec c;
  c.dim_ = std::size_t(r.read<std::uint64_t>());
  ANNSIM_CHECK_MSG(c.dim_ > 0, "SqCodec: zero dimension in image");
  const std::size_t padded = c.code_stride();
  c.mins_.reset(padded);
  c.scales_.reset(padded);
  const auto n_mins = r.read<std::uint64_t>();
  ANNSIM_CHECK_MSG(n_mins == c.dim_, "SqCodec: mins length mismatch");
  r.read_into(std::span<float>(c.mins_.data(), c.dim_));
  const auto n_scales = r.read<std::uint64_t>();
  ANNSIM_CHECK_MSG(n_scales == c.dim_, "SqCodec: scales length mismatch");
  r.read_into(std::span<float>(c.scales_.data(), c.dim_));
  return c;
}

}  // namespace annsim::quant
