#include "annsim/quant/sq_segment.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"

namespace annsim::quant {

namespace {

constexpr std::uint32_t kMagic = 0x414E5131;  // "ANQ1"
constexpr std::uint32_t kNotCached = 0xFFFFFFFFu;
/// Dataset row padding (floats); the cache slab mirrors it so cached rows
/// take aligned SIMD loads exactly like float-tier rows.
constexpr std::size_t kFloatPad = 8;

std::size_t float_stride(std::size_t dim) noexcept {
  return (dim + kFloatPad - 1) / kFloatPad * kFloatPad;
}

/// Beam-search candidate, ordered by (dist, node) like the float hot path.
struct Cand {
  float dist;
  std::uint32_t node;
  friend bool operator<(const Cand& a, const Cand& b) noexcept {
    return a.dist < b.dist || (a.dist == b.dist && a.node < b.node);
  }
  friend bool operator>(const Cand& a, const Cand& b) noexcept { return b < a; }
};

inline void min_push(std::vector<Cand>& h, Cand c) {
  h.push_back(c);
  std::push_heap(h.begin(), h.end(), std::greater<>{});
}

inline Cand min_pop(std::vector<Cand>& h) {
  std::pop_heap(h.begin(), h.end(), std::greater<>{});
  const Cand c = h.back();
  h.pop_back();
  return c;
}

inline void max_push(std::vector<Cand>& h, Cand c) {
  h.push_back(c);
  std::push_heap(h.begin(), h.end());
}

inline void max_pop(std::vector<Cand>& h) {
  std::pop_heap(h.begin(), h.end());
  h.pop_back();
}

}  // namespace

/// Per-search working memory; pooled so steady-state searches allocate
/// nothing (matching the float tier's zero-alloc frozen path).
struct SqSegment::Scratch {
  std::vector<std::uint32_t> stamp;  ///< epoch-stamped visited set
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> ids;  ///< unvisited-neighbor gather
  std::vector<float> dists;        ///< batched kernel output
  std::vector<Cand> frontier;      ///< min-heap storage
  std::vector<Cand> best;          ///< max-heap storage

  void begin(std::size_t n, std::size_t lanes) {
    if (stamp.size() < n) stamp.resize(n, 0);
    if (ids.size() < lanes) {
      ids.resize(lanes);
      dists.resize(lanes);
    }
    if (++epoch == 0) {  // wrapped: reset all stamps
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
  bool test_and_set(std::uint32_t v) noexcept {
    if (stamp[v] == epoch) return true;
    stamp[v] = epoch;
    return false;
  }
};

SqSegment::~SqSegment() = default;

std::unique_ptr<SqSegment::Scratch> SqSegment::ScratchPool::acquire(
    std::size_t n, std::size_t lanes) {
  std::unique_ptr<Scratch> s;
  {
    std::lock_guard lk(mu_);
    if (!free_.empty()) {
      s = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (!s) s = std::make_unique<Scratch>();
  s->begin(n, lanes);
  return s;
}

void SqSegment::ScratchPool::release(std::unique_ptr<Scratch> s) {
  std::lock_guard lk(mu_);
  free_.push_back(std::move(s));
}

std::unique_ptr<SqSegment> SqSegment::build(const data::Dataset& rows,
                                            const SqSegmentParams& params,
                                            ThreadPool* pool,
                                            std::span<const std::uint64_t> heat) {
  ANNSIM_CHECK_MSG(!rows.empty(), "SqSegment::build: empty row set");
  ANNSIM_CHECK_MSG(params.hnsw.metric == simd::Metric::kL2 ||
                       params.hnsw.metric == simd::Metric::kInnerProduct,
                   "SqSegment supports L2 and InnerProduct only (no uint8 "
                   "kernels for "
                       << simd::metric_name(params.hnsw.metric) << ")");
  ANNSIM_CHECK_MSG(params.float_cache_fraction >= 0.0 &&
                       params.float_cache_fraction <= 1.0,
                   "float_cache_fraction must be within [0, 1]");
  ANNSIM_CHECK_MSG(heat.empty() || heat.size() == rows.size(),
                   "SqSegment::build: heat size " << heat.size()
                                                  << " != rows " << rows.size());

  std::unique_ptr<SqSegment> seg(new SqSegment());
  seg->params_ = params;
  seg->n_ = rows.size();
  seg->ids_.assign(rows.ids().begin(), rows.ids().end());

  // 1. Codebook + code slab.
  seg->codec_ = SqCodec::train(rows);
  const std::size_t cstride = seg->codec_.code_stride();
  seg->codes_.reset(seg->n_ * cstride);
  for (std::size_t i = 0; i < seg->n_; ++i) {
    seg->codec_.encode(rows.row_span(i), seg->codes_.data() + i * cstride);
  }

  // 2. Graph on the floats (identical topology to the float tier), then keep
  // only the frozen CSR form.
  hnsw::HnswIndex index(&rows, params.hnsw);
  index.build(pool);
  seg->graph_ = index.flat_graph();

  // 3. Exact re-rank cache while the floats are still in hand.
  seg->select_cache(rows, heat);

  seg->access_ = std::vector<std::atomic<std::uint32_t>>(seg->n_);
  return seg;
}

void SqSegment::select_cache(const data::Dataset& rows,
                             std::span<const std::uint64_t> heat) {
  cache_stride_ = float_stride(dim());
  cache_slot_.assign(n_, kNotCached);
  const double f =
      std::clamp(params_.float_cache_fraction, 0.0, 1.0);
  n_cached_ = std::min(n_, std::size_t(std::ceil(f * double(n_))));
  if (n_cached_ == 0) {
    cache_rows_.reset(0);
    return;
  }

  // Hotness score: measured traffic dominates when available; graph hubness
  // (upper-layer membership, then layer-0 degree) breaks ties and covers the
  // cold-build case — hubs are what every beam expansion touches first.
  std::vector<std::uint64_t> score(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto v = LocalId(i);
    const std::uint64_t hub =
        (std::uint64_t(std::max(graph_.level(v), 0)) << 20) |
        std::uint64_t(graph_.neighbors0(v).size());
    score[i] = ((heat.empty() ? 0 : heat[i]) << 32) + hub;
  }
  std::vector<std::uint32_t> order(n_);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + std::ptrdiff_t(n_cached_),
                    order.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return score[a] > score[b] ||
                             (score[a] == score[b] && a < b);
                    });

  cache_rows_.reset(n_cached_ * cache_stride_);
  for (std::size_t slot = 0; slot < n_cached_; ++slot) {
    const std::uint32_t row = order[slot];
    cache_slot_[row] = std::uint32_t(slot);
    auto src = rows.row_span(row);
    std::copy(src.begin(), src.end(),
              cache_rows_.data() + slot * cache_stride_);
  }
}

float SqSegment::code_dist(const float* query, std::size_t row) const noexcept {
  const std::uint8_t* code = codes_.data() + row * codec_.code_stride();
  if (params_.hnsw.metric == simd::Metric::kL2) {
    return simd::l2_sq_u8(query, code, codec_.mins(), codec_.scales(), dim());
  }
  return 1.0f - simd::ip_u8(query, code, codec_.mins(), codec_.scales(), dim());
}

void SqSegment::code_dist_batch(const float* query, const std::uint32_t* rows,
                                std::size_t m, float* out) const noexcept {
  const std::size_t cstride = codec_.code_stride();
  if (params_.hnsw.metric == simd::Metric::kL2) {
    simd::l2_sq_batch_u8(query, codes_.data(), cstride, dim(), codec_.mins(),
                         codec_.scales(), rows, m, out);
    return;
  }
  simd::ip_batch_u8(query, codes_.data(), cstride, dim(), codec_.mins(),
                    codec_.scales(), rows, m, out);
  for (std::size_t i = 0; i < m; ++i) out[i] = 1.0f - out[i];
}

std::vector<Neighbor> SqSegment::rerank_emit(
    const float* query, std::span<const std::uint32_t> cand_rows,
    std::span<const float> cand_dists, std::size_t k) const {
  const bool l2 = params_.hnsw.metric == simd::Metric::kL2;
  std::uint64_t exact = 0;
  std::vector<Cand> ranked;
  ranked.reserve(cand_rows.size());
  for (std::size_t i = 0; i < cand_rows.size(); ++i) {
    const std::uint32_t row = cand_rows[i];
    access_[row].fetch_add(1, std::memory_order_relaxed);
    float d = cand_dists[i];
    const std::uint32_t slot = cache_slot_[row];
    if (slot != kNotCached) {
      const float* fr = cache_rows_.data() + slot * cache_stride_;
      d = l2 ? simd::l2_sq(query, fr, dim())
             : 1.0f - simd::inner_product(query, fr, dim());
      ++exact;
    }
    ranked.push_back({d, row});
  }
  rerank_exact_.fetch_add(exact, std::memory_order_relaxed);
  rerank_coded_.fetch_add(ranked.size() - exact, std::memory_order_relaxed);

  const std::size_t take = std::min(k, ranked.size());
  // Tie-break on global id so emission order is deterministic across the
  // row-permutation a compaction may apply.
  auto cmp = [&](const Cand& a, const Cand& b) {
    return a.dist < b.dist ||
           (a.dist == b.dist && ids_[a.node] < ids_[b.node]);
  };
  std::partial_sort(ranked.begin(), ranked.begin() + std::ptrdiff_t(take),
                    ranked.end(), cmp);
  std::vector<Neighbor> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const float d = l2 ? std::sqrt(ranked[i].dist) : ranked[i].dist;
    out.push_back({d, ids_[ranked[i].node]});
  }
  return out;
}

std::vector<Neighbor> SqSegment::search(const float* query, std::size_t k,
                                        std::size_t ef) const {
  ANNSIM_CHECK(k > 0);
  if (n_ == 0) return {};
  if (ef == 0) ef = params_.hnsw.ef_search;
  ef = std::max(ef, k);
  LocalId ep = graph_.entry_point();
  if (ep == kInvalidLocalId) return {};

  auto s = scratch_.acquire(n_, graph_.max_degree());
  const std::uint8_t* base = codes_.data();
  const std::size_t cstride = codec_.code_stride();

  // Beam search over one layer, code distances throughout. Mirrors the float
  // tier's search_layer_flat: span adjacency, batched kernel, prefetch.
  auto run_layer = [&](LocalId entry, int layer, std::size_t beam) {
    ++s->epoch;
    if (s->epoch == 0) {
      std::fill(s->stamp.begin(), s->stamp.end(), 0);
      s->epoch = 1;
    }
    s->frontier.clear();
    s->best.clear();
    s->test_and_set(entry);
    const float d0 = code_dist(query, entry);
    min_push(s->frontier, {d0, entry});
    max_push(s->best, {d0, entry});

    while (!s->frontier.empty()) {
      if (s->best.size() >= beam &&
          s->frontier.front().dist > s->best.front().dist) {
        break;
      }
      const Cand c = min_pop(s->frontier);
      const std::span<const LocalId> neigh = graph_.neighbors(c.node, layer);
      for (LocalId nb : neigh) simd::prefetch_line(&s->stamp[nb]);
      std::size_t m = 0;
      for (LocalId nb : neigh) {
        if (!s->test_and_set(nb)) s->ids[m++] = nb;
      }
      if (m == 0) continue;
      code_dist_batch(query, s->ids.data(), m, s->dists.data());
      for (std::size_t i = 0; i < m; ++i) {
        const float d = s->dists[i];
        if (s->best.size() < beam || d < s->best.front().dist) {
          min_push(s->frontier, {d, s->ids[i]});
          max_push(s->best, {d, s->ids[i]});
          if (s->best.size() > beam) max_pop(s->best);
        }
      }
      if (!s->frontier.empty()) {
        graph_.prefetch0(s->frontier.front().node);
        simd::prefetch_code(base + s->frontier.front().node * cstride, dim());
      }
    }
  };

  for (int layer = graph_.max_level(); layer > 0; --layer) {
    run_layer(ep, layer, 1);
    if (!s->best.empty()) ep = s->best.front().node;
  }
  run_layer(ep, 0, ef);

  // Hand the whole beam to the re-ranker (ef candidates; overfetch relative
  // to k is what lets exact re-scoring reorder past the SQ8 error).
  std::vector<std::uint32_t> cand_rows;
  std::vector<float> cand_dists;
  cand_rows.reserve(s->best.size());
  cand_dists.reserve(s->best.size());
  for (const Cand& c : s->best) {
    cand_rows.push_back(c.node);
    cand_dists.push_back(c.dist);
  }
  auto out = rerank_emit(query, cand_rows, cand_dists, k);
  scratch_.release(std::move(s));
  return out;
}

std::vector<Neighbor> SqSegment::scan(const float* query, std::size_t k) const {
  ANNSIM_CHECK(k > 0);
  if (n_ == 0) return {};
  // Overfetch so the exact re-rank can reorder past the SQ8 error band.
  const std::size_t fetch = std::min(n_, std::max(k * 4, k + 16));
  constexpr std::size_t kBlock = 256;

  auto s = scratch_.acquire(n_, std::max<std::size_t>(kBlock, graph_.max_degree()));
  const std::size_t cstride = codec_.code_stride();
  s->best.clear();
  for (std::size_t start = 0; start < n_; start += kBlock) {
    const std::size_t m = std::min(kBlock, n_ - start);
    if (params_.hnsw.metric == simd::Metric::kL2) {
      simd::l2_sq_batch_u8(query, codes_.data() + start * cstride, cstride,
                           dim(), codec_.mins(), codec_.scales(), nullptr, m,
                           s->dists.data());
    } else {
      simd::ip_batch_u8(query, codes_.data() + start * cstride, cstride, dim(),
                        codec_.mins(), codec_.scales(), nullptr, m,
                        s->dists.data());
      for (std::size_t i = 0; i < m; ++i) s->dists[i] = 1.0f - s->dists[i];
    }
    for (std::size_t i = 0; i < m; ++i) {
      const Cand c{s->dists[i], std::uint32_t(start + i)};
      if (s->best.size() < fetch) {
        max_push(s->best, c);
      } else if (c < s->best.front()) {
        max_pop(s->best);
        max_push(s->best, c);
      }
    }
  }

  std::vector<std::uint32_t> cand_rows;
  std::vector<float> cand_dists;
  cand_rows.reserve(s->best.size());
  cand_dists.reserve(s->best.size());
  for (const Cand& c : s->best) {
    cand_rows.push_back(c.node);
    cand_dists.push_back(c.dist);
  }
  auto out = rerank_emit(query, cand_rows, cand_dists, k);
  scratch_.release(std::move(s));
  return out;
}

void SqSegment::reconstruct(std::size_t row, float* out) const {
  ANNSIM_CHECK(row < n_);
  const std::uint32_t slot = cache_slot_[row];
  if (slot != kNotCached) {
    std::memcpy(out, cache_rows_.data() + slot * cache_stride_,
                dim() * sizeof(float));
    return;
  }
  codec_.decode(codes_.data() + row * codec_.code_stride(), out);
}

std::size_t SqSegment::memory_bytes() const noexcept {
  return codes_.size() + cache_rows_.size() * sizeof(float) +
         cache_slot_.size() * sizeof(std::uint32_t) +
         2 * codec_.code_stride() * sizeof(float);
}

std::size_t SqSegment::float_bytes() const noexcept {
  return n_ * float_stride(dim()) * sizeof(float);
}

std::vector<std::uint64_t> SqSegment::access_counts() const {
  std::vector<std::uint64_t> out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = access_[i].load(std::memory_order_relaxed);
  }
  return out;
}

SqSegmentCounters SqSegment::counters() const noexcept {
  return {rerank_exact_.load(std::memory_order_relaxed),
          rerank_coded_.load(std::memory_order_relaxed)};
}

std::vector<std::byte> SqSegment::to_bytes() const {
  BinaryWriter w;
  w.write(kMagic);
  w.write(std::uint64_t(n_));
  codec_.serialize(w);
  w.write_span(std::span<const GlobalId>(ids_));

  // Codes travel dim-tight: the stride padding is a storage concern.
  std::vector<std::uint8_t> packed(n_ * dim());
  const std::size_t cstride = codec_.code_stride();
  for (std::size_t i = 0; i < n_; ++i) {
    std::memcpy(packed.data() + i * dim(), codes_.data() + i * cstride, dim());
  }
  w.write_vector(packed);

  w.write(std::int32_t(graph_.max_level()));
  w.write(graph_.entry_point());
  graph_.write_nodes(w);

  // Cached rows in ascending row order so identical logical state yields
  // identical bytes regardless of build-time selection order.
  std::vector<std::uint32_t> cached;
  cached.reserve(n_cached_);
  for (std::uint32_t row = 0; row < n_; ++row) {
    if (cache_slot_[row] != kNotCached) cached.push_back(row);
  }
  w.write_vector(cached);
  std::vector<float> cache_packed(cached.size() * dim());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    std::memcpy(cache_packed.data() + i * dim(),
                cache_rows_.data() + cache_slot_[cached[i]] * cache_stride_,
                dim() * sizeof(float));
  }
  w.write_vector(cache_packed);
  return w.take();
}

std::unique_ptr<SqSegment> SqSegment::from_bytes(
    std::span<const std::byte> bytes, const SqSegmentParams& params) {
  BinaryReader r(bytes);
  ANNSIM_CHECK_MSG(r.read<std::uint32_t>() == kMagic,
                   "SqSegment: bad image magic");
  std::unique_ptr<SqSegment> seg(new SqSegment());
  seg->params_ = params;
  seg->n_ = std::size_t(r.read<std::uint64_t>());
  seg->codec_ = SqCodec::deserialize(r);
  seg->ids_ = r.read_vector<GlobalId>();
  ANNSIM_CHECK_MSG(seg->ids_.size() == seg->n_,
                   "SqSegment: id count mismatch");

  const auto packed = r.read_vector<std::uint8_t>();
  const std::size_t dim = seg->codec_.dim();
  ANNSIM_CHECK_MSG(packed.size() == seg->n_ * dim,
                   "SqSegment: code slab size mismatch");
  const std::size_t cstride = seg->codec_.code_stride();
  seg->codes_.reset(seg->n_ * cstride);
  for (std::size_t i = 0; i < seg->n_; ++i) {
    std::memcpy(seg->codes_.data() + i * cstride, packed.data() + i * dim, dim);
  }

  const auto max_level = r.read<std::int32_t>();
  const auto entry = r.read<LocalId>();
  seg->graph_.init(seg->n_, 0);
  for (std::size_t i = 0; i < seg->n_; ++i) seg->graph_.add_node(r);
  seg->graph_.set_entry(entry, max_level);

  const auto cached = r.read_vector<std::uint32_t>();
  const auto cache_packed = r.read_vector<float>();
  ANNSIM_CHECK_MSG(cache_packed.size() == cached.size() * dim,
                   "SqSegment: re-rank cache size mismatch");
  seg->cache_stride_ = float_stride(dim);
  seg->cache_slot_.assign(seg->n_, kNotCached);
  seg->n_cached_ = cached.size();
  seg->cache_rows_.reset(seg->n_cached_ * seg->cache_stride_);
  for (std::size_t slot = 0; slot < cached.size(); ++slot) {
    const std::uint32_t row = cached[slot];
    ANNSIM_CHECK_MSG(row < seg->n_, "SqSegment: cached row out of range");
    seg->cache_slot_[row] = std::uint32_t(slot);
    std::memcpy(seg->cache_rows_.data() + slot * seg->cache_stride_,
                cache_packed.data() + slot * dim, dim * sizeof(float));
  }
  ANNSIM_CHECK_MSG(r.exhausted(), "SqSegment: trailing bytes after image");

  seg->access_ = std::vector<std::atomic<std::uint32_t>>(seg->n_);
  return seg;
}

}  // namespace annsim::quant
