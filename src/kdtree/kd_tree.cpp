#include "annsim/kdtree/kd_tree.hpp"

#include <algorithm>
#include <bit>

#include "annsim/common/error.hpp"
#include "annsim/common/topk.hpp"

namespace annsim::kdtree {

namespace {

/// Axis with the largest value spread over rows[begin,end) — the classic
/// widest-dimension split rule PANDA uses.
std::uint32_t widest_axis(const data::Dataset& data,
                          std::span<const std::size_t> rows) {
  const std::size_t dim = data.dim();
  std::uint32_t best_axis = 0;
  float best_spread = -1.f;
  for (std::size_t a = 0; a < dim; ++a) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    // Sample up to 256 rows; exact spread is not needed for a good split.
    const std::size_t step = std::max<std::size_t>(1, rows.size() / 256);
    for (std::size_t i = 0; i < rows.size(); i += step) {
      const float v = data.row(rows[i])[a];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = std::uint32_t(a);
    }
  }
  return best_axis;
}

}  // namespace

/// TopK plus eval counter passed down the recursion.
class KdTopK {
 public:
  KdTopK(std::size_t k, std::size_t* evals) : topk_(k), evals_(evals) {}
  TopK topk_;
  std::size_t* evals_;
};

KdTree::KdTree(const data::Dataset* data, KdTreeParams params)
    : data_(data),
      params_(params),
      dist_(params.metric, data->dim()) {
  ANNSIM_CHECK(data_ != nullptr);
  ANNSIM_CHECK_MSG(params_.metric == simd::Metric::kL2 ||
                       params_.metric == simd::Metric::kL1,
                   "KD-tree supports coordinate metrics only");
  ANNSIM_CHECK(params_.leaf_size >= 1);
  if (data_->empty()) return;
  rows_.resize(data_->size());
  for (std::size_t i = 0; i < rows_.size(); ++i) rows_[i] = i;
  nodes_.reserve(2 * data_->size() / params_.leaf_size + 2);
  root_ = build(0, rows_.size());
}

std::int32_t KdTree::build(std::size_t begin, std::size_t end) {
  const std::int32_t id = std::int32_t(nodes_.size());
  nodes_.emplace_back();
  Node& n = nodes_.back();

  if (end - begin <= params_.leaf_size) {
    n.begin = std::uint32_t(begin);
    n.end = std::uint32_t(end);
    return id;
  }

  const std::span<const std::size_t> range(rows_.data() + begin, end - begin);
  const std::uint32_t axis = widest_axis(*data_, range);
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(rows_.begin() + std::ptrdiff_t(begin),
                   rows_.begin() + std::ptrdiff_t(mid),
                   rows_.begin() + std::ptrdiff_t(end),
                   [&](std::size_t a, std::size_t b) {
                     return data_->row(a)[axis] < data_->row(b)[axis];
                   });
  // Write through the reference *before* recursing: build() reallocates nodes_.
  nodes_[id].axis = axis;
  nodes_[id].split = data_->row(rows_[mid])[axis];
  const std::int32_t left = build(begin, mid);
  const std::int32_t right = build(mid, end);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree::search_node(std::int32_t node, const float* query,
                         KdTopK& ref) const {
  const Node& n = nodes_[std::size_t(node)];
  if (n.left < 0) {  // leaf
    for (std::uint32_t i = n.begin; i < n.end; ++i) {
      const std::size_t row = rows_[i];
      ref.topk_.push(dist_(query, data_->row(row)), data_->id(row));
      if (ref.evals_ != nullptr) ++*ref.evals_;
    }
    return;
  }
  const float delta = query[n.axis] - n.split;
  const std::int32_t near = delta < 0.f ? n.left : n.right;
  const std::int32_t far = delta < 0.f ? n.right : n.left;
  search_node(near, query, ref);
  // The axis gap is a lower bound on both L2 and L1 distance to the far cell.
  if (std::abs(delta) <= ref.topk_.worst_dist()) {
    search_node(far, query, ref);
  }
}

std::vector<Neighbor> KdTree::search(const float* query, std::size_t k,
                                     std::size_t* evals_out) const {
  ANNSIM_CHECK(k > 0);
  if (root_ < 0) return {};
  if (evals_out != nullptr) *evals_out = 0;
  KdTopK ref(k, evals_out);
  search_node(root_, query, ref);
  return ref.topk_.take_sorted();
}

// ------------------------------------------------------- PartitionKdTree ---

namespace {

struct KdPartitionBuilder {
  const data::Dataset& data;
  std::vector<PartitionKdTree::Node> nodes;
  std::vector<PartitionId> assignment;
  PartitionId next_partition = 0;

  explicit KdPartitionBuilder(const data::Dataset& d)
      : data(d), assignment(d.size(), kInvalidPartition) {}

  std::int32_t build(std::vector<std::size_t>& rows, std::size_t begin,
                     std::size_t end, std::size_t parts) {
    const std::int32_t id = std::int32_t(nodes.size());
    nodes.emplace_back();
    if (parts == 1) {
      nodes[id].leaf = next_partition++;
      for (std::size_t i = begin; i < end; ++i) {
        assignment[rows[i]] = nodes[id].leaf;
      }
      return id;
    }
    ANNSIM_CHECK(end - begin >= parts);
    const std::span<const std::size_t> range(rows.data() + begin, end - begin);
    const std::uint32_t axis = widest_axis(data, range);
    const std::size_t mid = begin + (end - begin) / 2;
    std::nth_element(rows.begin() + std::ptrdiff_t(begin),
                     rows.begin() + std::ptrdiff_t(mid),
                     rows.begin() + std::ptrdiff_t(end),
                     [&](std::size_t a, std::size_t b) {
                       return data.row(a)[axis] < data.row(b)[axis];
                     });
    nodes[id].axis = axis;
    nodes[id].split = data.row(rows[mid])[axis];
    const std::int32_t left = build(rows, begin, mid, parts / 2);
    const std::int32_t right = build(rows, mid, end, parts - parts / 2);
    nodes[id].left = left;
    nodes[id].right = right;
    return id;
  }
};

}  // namespace

PartitionKdTree PartitionKdTree::build(const data::Dataset& data,
                                       const PartitionKdTreeParams& params,
                                       std::vector<PartitionId>* assignment_out) {
  ANNSIM_CHECK(params.target_partitions >= 1);
  ANNSIM_CHECK_MSG(std::has_single_bit(params.target_partitions),
                   "target_partitions must be a power of two");
  ANNSIM_CHECK(data.size() >= params.target_partitions);

  KdPartitionBuilder b(data);
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const std::int32_t root = b.build(rows, 0, rows.size(), params.target_partitions);

  PartitionKdTree t;
  t.nodes_ = std::move(b.nodes);
  t.root_ = root;
  t.n_partitions_ = params.target_partitions;
  t.dim_ = data.dim();
  t.metric_ = params.metric;
  if (assignment_out != nullptr) *assignment_out = std::move(b.assignment);
  return t;
}

std::vector<PartitionId> PartitionKdTree::route_ball(const float* query,
                                                     float radius) const {
  ANNSIM_CHECK(root_ >= 0);
  std::vector<PartitionId> out;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[std::size_t(stack.back())];
    stack.pop_back();
    if (n.leaf != kInvalidPartition) {
      out.push_back(n.leaf);
      continue;
    }
    if (query[n.axis] - radius <= n.split) stack.push_back(n.left);
    if (query[n.axis] + radius >= n.split) stack.push_back(n.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

PartitionId PartitionKdTree::route_nearest(const float* query) const {
  ANNSIM_CHECK(root_ >= 0);
  std::int32_t cur = root_;
  for (;;) {
    const Node& n = nodes_[std::size_t(cur)];
    if (n.leaf != kInvalidPartition) return n.leaf;
    cur = query[n.axis] < n.split ? n.left : n.right;
  }
}

}  // namespace annsim::kdtree
