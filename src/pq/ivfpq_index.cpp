#include "annsim/pq/ivfpq_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "annsim/common/error.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::pq {

IvfPqIndex IvfPqIndex::build(const data::Dataset& data,
                             const IvfPqParams& params) {
  ANNSIM_CHECK(params.nlist >= 1);
  ANNSIM_CHECK(data.size() >= params.nlist);

  IvfPqIndex index;
  index.params_ = params;
  index.n_ = data.size();

  // --- coarse quantizer.
  KMeansParams coarse;
  coarse.k = params.nlist;
  coarse.max_iters = params.coarse_iters;
  coarse.seed = params.seed;
  KMeansResult km = kmeans(data, coarse);
  index.coarse_centroids_ = std::move(km.centroids);

  // --- residual training set: x - centroid(list(x)).
  data::Dataset residuals(data.size(), data.dim());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float* x = data.row(i);
    const float* c = index.coarse_centroids_.row(km.assignment[i]);
    float* r = residuals.row(i);
    for (std::size_t d = 0; d < data.dim(); ++d) r[d] = x[d] - c[d];
  }
  index.pq_ = ProductQuantizer::train(residuals, params.pq);

  // --- encode into inverted lists.
  index.list_codes_.resize(params.nlist);
  index.list_ids_.resize(params.nlist);
  const std::size_t m = index.pq_.code_bytes();
  std::vector<std::uint8_t> code(m);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto list = km.assignment[i];
    index.pq_.encode(residuals.row(i), code.data());
    auto& codes = index.list_codes_[list];
    codes.insert(codes.end(), code.begin(), code.end());
    index.list_ids_[list].push_back(data.id(i));
  }
  return index;
}

std::vector<Neighbor> IvfPqIndex::search(const float* query, std::size_t k,
                                         std::size_t nprobe) const {
  ANNSIM_CHECK(k >= 1);
  if (nprobe == 0) nprobe = params_.nprobe;
  nprobe = std::min(nprobe, params_.nlist);

  // Rank coarse lists by centroid distance.
  std::vector<std::pair<float, std::uint32_t>> lists;
  lists.reserve(params_.nlist);
  for (std::size_t c = 0; c < params_.nlist; ++c) {
    lists.emplace_back(
        simd::l2_sq(query, coarse_centroids_.row(c), coarse_centroids_.dim()),
        std::uint32_t(c));
  }
  std::partial_sort(lists.begin(), lists.begin() + std::ptrdiff_t(nprobe),
                    lists.end());

  // ADC scan of the probed lists with per-list residual tables.
  TopK topk(k);
  std::vector<float> residual(dim());
  const std::size_t m = pq_.code_bytes();
  for (std::size_t p = 0; p < nprobe; ++p) {
    const auto list = lists[p].second;
    const auto& ids = list_ids_[list];
    if (ids.empty()) continue;
    const float* c = coarse_centroids_.row(list);
    for (std::size_t d = 0; d < dim(); ++d) residual[d] = query[d] - c[d];
    const auto table = pq_.adc_table(residual.data());
    const std::uint8_t* codes = list_codes_[list].data();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const float d2 = pq_.adc_distance(table, codes + i * m);
      topk.push(std::sqrt(std::max(0.f, d2)), ids[i]);
    }
  }
  return topk.take_sorted();
}

std::size_t IvfPqIndex::memory_bytes() const noexcept {
  std::size_t bytes =
      coarse_centroids_.size() * coarse_centroids_.dim() * sizeof(float) +
      params_.pq.m * params_.pq.ks * (dim() / params_.pq.m) * sizeof(float);
  for (std::size_t l = 0; l < list_codes_.size(); ++l) {
    bytes += list_codes_[l].size() + list_ids_[l].size() * sizeof(GlobalId);
  }
  return bytes;
}

}  // namespace annsim::pq
