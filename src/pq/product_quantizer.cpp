#include "annsim/pq/product_quantizer.hpp"

#include <cstring>
#include <limits>

#include "annsim/common/error.hpp"
#include "annsim/pq/kmeans.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::pq {

ProductQuantizer ProductQuantizer::train(const data::Dataset& train,
                                         const PqParams& params) {
  ANNSIM_CHECK(params.m >= 1 && params.ks >= 2 && params.ks <= 256);
  ANNSIM_CHECK_MSG(train.dim() % params.m == 0,
                   "dim " << train.dim() << " not divisible by m " << params.m);
  ANNSIM_CHECK_MSG(train.size() >= params.ks,
                   "need at least ks training vectors");

  ProductQuantizer pq;
  pq.params_ = params;
  pq.dim_ = train.dim();
  pq.sub_dim_ = train.dim() / params.m;
  pq.codebooks_.resize(params.m * params.ks * pq.sub_dim_);

  // Train one k-means per sub-space on the projected training set.
  for (std::size_t sub = 0; sub < params.m; ++sub) {
    data::Dataset slice(train.size(), pq.sub_dim_);
    for (std::size_t i = 0; i < train.size(); ++i) {
      const float* src = train.row(i) + sub * pq.sub_dim_;
      std::copy(src, src + pq.sub_dim_, slice.row(i));
    }
    KMeansParams km;
    km.k = params.ks;
    km.max_iters = params.train_iters;
    km.seed = params.seed + sub * 7919;
    const KMeansResult res = kmeans(slice, km);
    for (std::size_t c = 0; c < params.ks; ++c) {
      float* dst = pq.codebooks_.data() +
                   (sub * params.ks + c) * pq.sub_dim_;
      std::copy(res.centroids.row(c), res.centroids.row(c) + pq.sub_dim_, dst);
    }
  }
  return pq;
}

void ProductQuantizer::encode(const float* v, std::uint8_t* code) const {
  for (std::size_t sub = 0; sub < params_.m; ++sub) {
    const float* part = v + sub * sub_dim_;
    std::size_t best = 0;
    float best_d = std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < params_.ks; ++c) {
      const float d = simd::l2_sq(part, centroid(sub, c), sub_dim_);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    code[sub] = std::uint8_t(best);
  }
}

std::vector<std::uint8_t> ProductQuantizer::encode(const float* v) const {
  std::vector<std::uint8_t> code(params_.m);
  encode(v, code.data());
  return code;
}

std::vector<std::uint8_t> ProductQuantizer::encode_dataset(
    const data::Dataset& data) const {
  ANNSIM_CHECK(data.dim() == dim_);
  std::vector<std::uint8_t> codes(data.size() * params_.m);
  for (std::size_t i = 0; i < data.size(); ++i) {
    encode(data.row(i), codes.data() + i * params_.m);
  }
  return codes;
}

std::vector<float> ProductQuantizer::decode(const std::uint8_t* code) const {
  std::vector<float> out(dim_);
  for (std::size_t sub = 0; sub < params_.m; ++sub) {
    const float* c = centroid(sub, code[sub]);
    std::copy(c, c + sub_dim_, out.data() + sub * sub_dim_);
  }
  return out;
}

std::vector<float> ProductQuantizer::adc_table(const float* query) const {
  std::vector<float> table(params_.m * params_.ks);
  for (std::size_t sub = 0; sub < params_.m; ++sub) {
    const float* part = query + sub * sub_dim_;
    float* row = table.data() + sub * params_.ks;
    for (std::size_t c = 0; c < params_.ks; ++c) {
      row[c] = simd::l2_sq(part, centroid(sub, c), sub_dim_);
    }
  }
  return table;
}

float ProductQuantizer::adc_distance(const std::vector<float>& table,
                                     const std::uint8_t* code) const {
  float acc = 0.f;
  for (std::size_t sub = 0; sub < params_.m; ++sub) {
    acc += table[sub * params_.ks + code[sub]];
  }
  return acc;
}

void ProductQuantizer::serialize(BinaryWriter& w) const {
  w.write(std::uint32_t{0x50513144});  // "PQ1D"
  w.write(std::uint64_t(params_.m));
  w.write(std::uint64_t(params_.ks));
  w.write(std::uint64_t(params_.train_iters));
  w.write(params_.seed);
  w.write(std::uint64_t(dim_));
  w.write_vector(codebooks_);
}

ProductQuantizer ProductQuantizer::deserialize(BinaryReader& r) {
  ANNSIM_CHECK_MSG(r.read<std::uint32_t>() == 0x50513144, "bad PQ magic");
  ProductQuantizer pq;
  pq.params_.m = r.read<std::uint64_t>();
  pq.params_.ks = r.read<std::uint64_t>();
  pq.params_.train_iters = r.read<std::uint64_t>();
  pq.params_.seed = r.read<std::uint64_t>();
  pq.dim_ = r.read<std::uint64_t>();
  ANNSIM_CHECK(pq.params_.m > 0 && pq.dim_ % pq.params_.m == 0);
  pq.sub_dim_ = pq.dim_ / pq.params_.m;
  pq.codebooks_ = r.read_vector<float>();
  ANNSIM_CHECK(pq.codebooks_.size() ==
               pq.params_.m * pq.params_.ks * pq.sub_dim_);
  return pq;
}

}  // namespace annsim::pq
