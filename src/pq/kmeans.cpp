#include "annsim/pq/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::pq {

namespace {

/// Index of the centroid nearest to `v` (squared L2).
std::pair<std::uint32_t, float> nearest_centroid(const float* v,
                                                 const data::Dataset& centroids,
                                                 std::size_t dim) {
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const float d = simd::l2_sq(v, centroids.row(c), dim);
    if (d < best_d) {
      best_d = d;
      best = std::uint32_t(c);
    }
  }
  return {best, best_d};
}

}  // namespace

KMeansResult kmeans(const data::Dataset& data, const KMeansParams& params,
                    ThreadPool* pool) {
  ANNSIM_CHECK(params.k >= 1);
  ANNSIM_CHECK_MSG(data.size() >= params.k,
                   "k-means needs at least k points (" << data.size() << " < "
                                                       << params.k << ")");
  const std::size_t n = data.size();
  const std::size_t dim = data.dim();
  const std::size_t k = params.k;
  Rng rng(params.seed);

  KMeansResult res;
  res.centroids.reset(k, dim);
  res.assignment.assign(n, 0);

  // --- k-means++-style seeding.
  std::vector<float> min_d(n, std::numeric_limits<float>::infinity());
  std::size_t first = rng.uniform_below(n);
  res.centroids.set_row(0, data.row_span(first));
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float d = simd::l2_sq(data.row(i), res.centroids.row(c - 1), dim);
      min_d[i] = std::min(min_d[i], d);
      total += double(min_d[i]);
    }
    // Distance-weighted draw (fall back to uniform on degenerate data).
    std::size_t pick = rng.uniform_below(n);
    if (total > 0.0) {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= double(min_d[i]);
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    res.centroids.set_row(c, data.row_span(pick));
  }

  // --- Lloyd iterations.
  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < params.max_iters; ++iter) {
    // Assignment step (parallel over rows).
    std::vector<float> dists(n);
    auto assign = [&](std::size_t i) {
      auto [c, d] = nearest_centroid(data.row(i), res.centroids, dim);
      res.assignment[i] = c;
      dists[i] = d;
    };
    if (pool != nullptr && pool->size() > 1) {
      pool->parallel_for(0, n, assign);
    } else {
      for (std::size_t i = 0; i < n; ++i) assign(i);
    }
    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) res.inertia += double(dists[i]);
    res.iters_run = iter + 1;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = res.assignment[i];
      const float* row = data.row(i);
      double* s = sums.data() + std::size_t(c) * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += double(row[d]);
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its center.
        std::size_t far = 0;
        float far_d = -1.f;
        for (std::size_t i = 0; i < n; ++i) {
          if (dists[i] > far_d) {
            far_d = dists[i];
            far = i;
          }
        }
        res.centroids.set_row(c, data.row_span(far));
        dists[far] = 0.f;
        continue;
      }
      float* dst = res.centroids.row(c);
      const double* s = sums.data() + c * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        dst[d] = float(s[d] / double(counts[c]));
      }
    }

    if (prev_inertia < std::numeric_limits<double>::infinity() &&
        prev_inertia - res.inertia <= params.tolerance * prev_inertia) {
      break;
    }
    prev_inertia = res.inertia;
  }
  return res;
}

}  // namespace annsim::pq
