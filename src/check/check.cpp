#include "annsim/check/check.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

namespace annsim::check {

const char* rule_name(Rule rule) noexcept {
  switch (rule) {
    case Rule::kRequestLeak: return "request-leak";
    case Rule::kRmaOutsideEpoch: return "rma-outside-epoch";
    case Rule::kRmaLockMisuse: return "rma-lock-misuse";
    case Rule::kRmaEpochLeak: return "rma-epoch-leak";
    case Rule::kReservedTagSend: return "reserved-tag-send";
    case Rule::kWildcardRecv: return "wildcard-recv";
    case Rule::kDeadlock: return "deadlock";
    case Rule::kUnmatchedSend: return "unmatched-send";
  }
  return "unknown";
}

const char* rule_what(Rule rule) noexcept {
  switch (rule) {
    case Rule::kRequestLeak:
      return "nonblocking receive never completed, taken, or cancelled";
    case Rule::kRmaOutsideEpoch:
      return "one-sided op outside a lock_shared/unlock access epoch";
    case Rule::kRmaLockMisuse:
      return "unlock without lock, or nested lock_shared at one target";
    case Rule::kRmaEpochLeak:
      return "access epoch still open at finalize";
    case Rule::kReservedTagSend:
      return "plain p2p send on a declared control-plane tag";
    case Rule::kWildcardRecv:
      return "kAnyTag receive posted while control-plane tags are declared";
    case Rule::kDeadlock:
      return "cycle in the cross-rank blocked-receive wait-for graph";
    case Rule::kUnmatchedSend:
      return "message sent but never received (finalize scan)";
  }
  return "unknown";
}

const Occurrence* CheckReport::first(Rule rule) const noexcept {
  for (const auto& o : occurrences) {
    if (o.rule == rule) return &o;
  }
  return nullptr;
}

void CheckReport::merge(const CheckReport& other, std::size_t max_occurrences) {
  for (std::size_t i = 0; i < kRuleCount; ++i) counts[i] += other.counts[i];
  for (const auto& o : other.occurrences) {
    std::size_t have = 0;
    for (const auto& mine : occurrences) {
      if (mine.rule == o.rule) ++have;
    }
    if (have < max_occurrences) occurrences.push_back(o);
  }
  for (const auto& [key, n] : other.unmatched_histogram) {
    unmatched_histogram[key] += n;
  }
  best_effort_residue += other.best_effort_residue;
  runs += other.runs;
}

std::string to_string(const CheckReport& report) {
  std::ostringstream os;
  if (report.clean()) {
    os << "annsim::check: clean (" << report.runs << " run"
       << (report.runs == 1 ? "" : "s");
    if (report.best_effort_residue > 0) {
      os << ", " << report.best_effort_residue
         << " best-effort messages left unreceived";
    }
    os << ")";
    return os.str();
  }
  os << "annsim::check: " << report.total_violations() << " violation"
     << (report.total_violations() == 1 ? "" : "s") << " across " << report.runs
     << " run" << (report.runs == 1 ? "" : "s") << "\n";
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    if (report.counts[i] == 0) continue;
    const auto rule = Rule(int(i));
    os << "  [" << rule_name(rule) << "] x" << report.counts[i] << " — "
       << rule_what(rule) << "\n";
    for (const auto& o : report.occurrences) {
      if (o.rule != rule) continue;
      os << "    rank " << o.rank;
      if (o.peer >= 0) os << " <-> " << o.peer;
      if (o.tag != -1) os << " tag " << o.tag;
      if (!o.detail.empty()) os << ": " << o.detail;
      os << "\n";
    }
  }
  if (!report.unmatched_histogram.empty()) {
    os << "  unmatched-send histogram (tag -> dest: count):\n";
    for (const auto& [key, n] : report.unmatched_histogram) {
      os << "    tag " << key.first << " -> rank " << key.second << ": " << n
         << "\n";
    }
  }
  if (report.best_effort_residue > 0) {
    os << "  (+" << report.best_effort_residue
       << " unreceived messages on best-effort tags, not counted)\n";
  }
  std::string s = os.str();
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

namespace {

int env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return -1;
  if (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
      std::strcmp(v, "on") == 0) {
    return 1;
  }
  return 0;
}

}  // namespace

bool env_check_enabled() noexcept {
  static const int v = env_flag("ANNSIM_MPI_CHECK");
  return v == 1;
}

int env_check_fatal() noexcept {
  static const int v = env_flag("ANNSIM_MPI_CHECK_FATAL");
  return v;
}

}  // namespace annsim::check
