#include "annsim/mpi/mpi.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "annsim/common/error.hpp"
#include "annsim/mpi/schedule.hpp"

namespace annsim::mpi {

namespace detail {

// Internal collective tags (user tags must be >= 0; kAnyTag is -1).
inline constexpr Tag kTagBarrier = -10;
inline constexpr Tag kTagBarrierRelease = -11;
inline constexpr Tag kTagBcast = -12;
inline constexpr Tag kTagGather = -13;
inline constexpr Tag kTagScatter = -14;
inline constexpr Tag kTagAlltoallv = -15;

/// In-flight message inside a mailbox.
struct Envelope {
  std::uint64_t comm_id = 0;
  int source_local = kAnySource;  ///< sender's rank within the communicator
  int source_global = kAnySource; ///< sender's global rank (diagnostics)
  Tag tag = kAnyTag;
  std::vector<std::byte> payload;
};

struct Mailbox;
struct Checker;

/// Shared state of one posted (i)recv.
struct RecvState {
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  bool cancelled = false;
  Message msg;

  // matching criteria
  std::uint64_t comm_id = 0;
  int source = kAnySource;  ///< comm-local source filter
  Tag tag = kAnyTag;
  std::vector<Tag> tag_set; ///< non-empty => match any of these (irecv_tags)

  Mailbox* owner = nullptr;  ///< mailbox holding this pending recv

  // --- annsim::check instrumentation (inert when checker == nullptr) ---
  std::shared_ptr<Checker> checker;
  int posted_rank = -1;                ///< poster's global rank
  int posted_source_global = kAnySource;  ///< source filter as a global rank
  bool observed = false;  ///< wait/test saw completion, take(), or cancel()

  // --- controlled scheduling (inert when sched == nullptr or disarmed) ---
  std::shared_ptr<ScheduleController> sched;

  ~RecvState();
};

struct Mailbox {
  std::mutex mu;
  std::list<Envelope> queue;                          ///< unmatched messages, FIFO
  std::list<std::shared_ptr<RecvState>> pending;      ///< posted recvs, in order
};

struct WindowState {
  std::vector<std::vector<std::byte>> buffers;        ///< per comm rank
  std::vector<std::unique_ptr<std::mutex>> target_mu; ///< per-target atomicity
  std::vector<std::vector<char>> locked;              ///< [origin][target] epoch flags
  RuntimeState* rt = nullptr;
  std::vector<int> members;                           ///< global rank per comm rank
  std::uint64_t id = 0;                               ///< window id (choice points)
};

/// Per-rank traffic counters. Atomic because a rank's whole thread team (the
/// engine runs a search team per worker rank) funnels sends and RMA ops
/// through the same entry concurrently.
struct AtomicTraffic {
  std::atomic<std::uint64_t> p2p_messages{0};
  std::atomic<std::uint64_t> p2p_bytes{0};
  std::atomic<std::uint64_t> rma_ops{0};
  std::atomic<std::uint64_t> rma_bytes{0};
  std::atomic<std::uint64_t> collective_ops{0};
  std::atomic<std::uint64_t> collective_bytes{0};

  [[nodiscard]] TrafficStats snapshot() const {
    TrafficStats s;
    s.p2p_messages = p2p_messages.load(std::memory_order_relaxed);
    s.p2p_bytes = p2p_bytes.load(std::memory_order_relaxed);
    s.rma_ops = rma_ops.load(std::memory_order_relaxed);
    s.rma_bytes = rma_bytes.load(std::memory_order_relaxed);
    s.collective_ops = collective_ops.load(std::memory_order_relaxed);
    s.collective_bytes = collective_bytes.load(std::memory_order_relaxed);
    return s;
  }
};

/// The MPI usage verifier (annsim::check). One per Runtime, shared into every
/// RecvState it instruments. All mutable state behind `mu` except `aborted`,
/// which blocked waiters poll without a lock.
///
/// Lock order: Checker::mu may be taken alone, and RecvState::mu may be taken
/// *under* Checker::mu (cycle re-verification). The reverse never happens —
/// Request::wait drops the state mutex before calling into the checker.
struct Checker {
  explicit Checker(check::CheckOptions o) : opts(std::move(o)) {
    reserved.insert(opts.reserved_tags.begin(), opts.reserved_tags.end());
    best_effort.insert(opts.best_effort_tags.begin(), opts.best_effort_tags.end());
  }

  check::CheckOptions opts;
  std::set<Tag> reserved;
  std::set<Tag> best_effort;

  mutable std::mutex mu;
  check::CheckReport report;  ///< cumulative across run() calls

  /// One entry per unbounded wait blocked past `opts.deadlock_after`,
  /// keyed by the RecvState being waited on. Edge: posted_rank -> waiting_on.
  struct BlockedWait {
    int rank = -1;        ///< waiter's global rank
    int waiting_on = -1;  ///< awaited source's global rank (never kAnySource)
    Tag tag = kAnyTag;
    std::chrono::steady_clock::time_point since;
    std::weak_ptr<RecvState> state;
  };
  std::map<const RecvState*, BlockedWait> blocked;
  std::chrono::steady_clock::time_point last_scan{};

  std::atomic<bool> aborted{false};
  std::string deadlock_dump;  ///< written under mu before aborted flips

  void violate(check::Rule rule, int rank, int peer, Tag tag,
               std::string detail) {
    std::lock_guard lk(mu);
    violate_locked(rule, rank, peer, tag, std::move(detail));
  }

  void violate_locked(check::Rule rule, int rank, int peer, Tag tag,
                      std::string detail) {
    ++report.counts[std::size_t(rule)];
    std::size_t have = 0;
    for (const auto& o : report.occurrences) {
      if (o.rule == rule) ++have;
    }
    if (have < opts.max_occurrences) {
      report.occurrences.push_back(
          check::Occurrence{rule, rank, peer, tag, std::move(detail)});
    }
  }

  [[nodiscard]] bool is_reserved(Tag tag) const { return reserved.count(tag) > 0; }
  [[nodiscard]] bool is_best_effort(Tag tag) const {
    return best_effort.count(tag) > 0;
  }

  /// Enter a blocked unbounded wait into the wait-for graph. Any-source
  /// waits carry no definite edge and are skipped (returns false).
  bool register_blocked(const std::shared_ptr<RecvState>& state) {
    if (state->posted_source_global == kAnySource) return false;
    BlockedWait b;
    b.rank = state->posted_rank;
    b.waiting_on = state->posted_source_global;
    b.tag = state->tag;
    b.since = std::chrono::steady_clock::now();
    b.state = state;
    std::lock_guard lk(mu);
    blocked[state.get()] = std::move(b);
    return true;
  }

  void unregister_blocked(const RecvState* state) {
    std::lock_guard lk(mu);
    blocked.erase(state);
  }

  [[noreturn]] void throw_deadlock() const {
    std::string dump;
    {
      std::lock_guard lk(mu);
      dump = deadlock_dump;
    }
    throw Error("annsim::check: deadlock detected\n" + dump);
  }

  /// Throttled cycle scan over the wait-for graph. Called by blocked waiters
  /// on their wakeup slices. On a confirmed cycle: record the violation,
  /// write the dump, flip `aborted` — every checked wait then throws.
  void maybe_scan() {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard lk(mu);
    if (aborted.load(std::memory_order_relaxed)) return;
    if (now - last_scan < std::chrono::milliseconds(50)) return;
    last_scan = now;

    // Prune entries whose wait already completed or whose state died: a
    // delivered-but-not-yet-woken waiter must not look blocked (the message
    // may have arrived microseconds ago), or a linear barrier could read as
    // a phantom root<->member cycle.
    for (auto it = blocked.begin(); it != blocked.end();) {
      auto sp = it->second.state.lock();
      bool live = false;
      if (sp != nullptr) {
        std::lock_guard slk(sp->mu);
        live = !sp->completed && !sp->cancelled;
      }
      it = live ? std::next(it) : blocked.erase(it);
    }
    if (blocked.empty()) return;

    // A rank may have several outgoing edges (engine ranks run thread
    // teams); walk the digraph with a plain colored DFS.
    std::map<int, std::vector<int>> adj;
    for (const auto& [_, b] : blocked) adj[b.rank].push_back(b.waiting_on);

    std::map<int, int> color;  // 0 white, 1 on stack, 2 done
    std::vector<int> stack;
    std::vector<int> cycle;
    std::function<bool(int)> dfs = [&](int u) -> bool {
      color[u] = 1;
      stack.push_back(u);
      for (int v : adj[u]) {
        if (adj.find(v) == adj.end()) continue;  // v not blocked: no edge out
        if (color[v] == 1) {
          auto it = std::find(stack.begin(), stack.end(), v);
          cycle.assign(it, stack.end());
          return true;
        }
        if (color[v] == 0 && dfs(v)) return true;
      }
      color[u] = 2;
      stack.pop_back();
      return false;
    };
    for (const auto& [u, _] : adj) {
      if (color[u] == 0 && dfs(u)) break;
    }
    if (cycle.empty()) return;

    std::ostringstream os;
    os << "  cycle:";
    for (int r : cycle) os << " rank " << r << " ->";
    os << " rank " << cycle.front() << "\n";
    os << "  blocked unbounded receives at detection:\n";
    for (const auto& [_, b] : blocked) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now - b.since)
                          .count() +
                      opts.deadlock_after.count();
      os << "    rank " << b.rank << ": recv(source=" << b.waiting_on
         << ", tag=" << b.tag << ") blocked ~" << ms << " ms\n";
    }
    deadlock_dump = os.str();
    violate_locked(check::Rule::kDeadlock, cycle.front(),
                   cycle.size() > 1 ? cycle[1] : cycle.front(), kAnyTag,
                   deadlock_dump);
    aborted.store(true, std::memory_order_release);
  }

  /// Hard stop every checked operation once a deadlock was diagnosed —
  /// "continuing" a deadlocked program only manufactures secondary hangs.
  void throw_if_aborted() const {
    if (aborted.load(std::memory_order_acquire)) throw_deadlock();
  }
};

RecvState::~RecvState() {
  // A posted receive dying unobserved IS the request leak — whether the
  // handle was dropped mid-run or sat pending until the finalize sweep
  // cleared the mailboxes. Skip after a deadlock abort: the unwind drops
  // handles everywhere and the leaks are fallout, not independent bugs.
  if (checker != nullptr && !observed &&
      !checker->aborted.load(std::memory_order_relaxed)) {
    std::ostringstream os;
    os << "posted irecv(source="
       << (posted_source_global == kAnySource ? std::string("any")
                                              : std::to_string(posted_source_global));
    if (!tag_set.empty()) {
      os << ", tags={";
      for (std::size_t i = 0; i < tag_set.size(); ++i) {
        os << (i != 0 ? "," : "") << tag_set[i];
      }
      os << "}";
    } else {
      os << ", tag=" << (tag == kAnyTag ? std::string("any") : std::to_string(tag));
    }
    os << ") never completed, taken, or cancelled";
    checker->violate(check::Rule::kRequestLeak, posted_rank,
                     posted_source_global, tag, os.str());
  }
}

struct RuntimeState {
  int n_ranks = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;   ///< per global rank
  std::atomic<std::uint64_t> next_comm_id{1};
  std::atomic<std::uint64_t> next_window_id{1};
  std::unique_ptr<AtomicTraffic[]> traffic;          ///< per global rank
  std::shared_ptr<FaultInjector> fault;              ///< null = no injection;
                                                     ///< shared so fault state
                                                     ///< can outlive a Runtime
  std::shared_ptr<Checker> checker;                  ///< null = checking off
  std::shared_ptr<ScheduleController> sched;         ///< null = free-running

  std::mutex win_mu;
  std::map<std::uint64_t, std::shared_ptr<WindowState>> windows;
};

namespace {

bool tag_matches(const Envelope& e, Tag tag, const std::vector<Tag>& tag_set) {
  if (!tag_set.empty()) {
    return std::find(tag_set.begin(), tag_set.end(), e.tag) != tag_set.end();
  }
  // The tag wildcard spans user tags only: internal collective traffic
  // (negative tags) lives in its own context, as in real MPI, so a user's
  // iprobe/recv(kAnyTag) never observes an in-flight barrier token. Internal
  // receives always name their exact tag.
  if (tag == kAnyTag) return e.tag >= 0;
  return e.tag == tag;
}

bool matches(const Envelope& e, std::uint64_t comm_id, int source, Tag tag,
             const std::vector<Tag>& tag_set) {
  if (e.comm_id != comm_id) return false;
  if (source != kAnySource && e.source_local != source) return false;
  return tag_matches(e, tag, tag_set);
}

const std::vector<Tag> kNoTagSet;

/// Deliver an envelope to a mailbox: complete the first matching pending
/// recv, or queue the message.
///
/// The match is completed while box.mu is still held. Request::cancel takes
/// box.mu before inspecting its state, so a recv it finds incomplete is
/// guaranteed not to be mid-delivery — without this ordering, a wildcard
/// irecv could be unlinked from `pending` here, then "successfully"
/// cancelled, and the envelope would vanish with it (a latent hang for
/// whichever rank is owed that message).
void deliver(Mailbox& box, Envelope env, bool overtake = false) {
  std::shared_ptr<RecvState> match;
  {
    std::lock_guard lk(box.mu);
    for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
      if (matches(env, (*it)->comm_id, (*it)->source, (*it)->tag,
                  (*it)->tag_set)) {
        match = *it;
        box.pending.erase(it);
        break;
      }
    }
    if (!match) {
      // `overtake` models fault-injected reordering: the message jumps the
      // queue ahead of everything not yet matched, so the receiver sees it
      // out of send order. With a matching recv already pending there is
      // nothing to overtake — the message completes immediately either way.
      if (overtake) {
        box.queue.push_front(std::move(env));
      } else {
        box.queue.push_back(std::move(env));
      }
      return;
    }
    std::lock_guard mlk(match->mu);
    match->msg = Message{env.source_local, env.tag, std::move(env.payload)};
    match->completed = true;
  }
  match->cv.notify_all();
}

/// Post a recv: immediately complete against a queued message, or park it.
std::shared_ptr<RecvState> post_recv(Mailbox& box, std::uint64_t comm_id,
                                     int source, Tag tag,
                                     std::vector<Tag> tag_set) {
  auto state = std::make_shared<RecvState>();
  state->comm_id = comm_id;
  state->source = source;
  state->tag = tag;
  state->tag_set = std::move(tag_set);
  state->owner = &box;

  std::lock_guard lk(box.mu);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, comm_id, source, tag, state->tag_set)) {
      state->msg = Message{it->source_local, it->tag, std::move(it->payload)};
      state->completed = true;
      box.queue.erase(it);
      return state;
    }
  }
  box.pending.push_back(state);
  return state;
}

}  // namespace
}  // namespace detail

// ------------------------------------------------------------- Request ---

Request::Request(std::shared_ptr<detail::RecvState> state)
    : state_(std::move(state)) {}

bool Request::valid() const noexcept { return state_ != nullptr; }

namespace {

/// Completion predicate shared by the controlled wait paths. Takes the state
/// mutex — legal from inside the scheduler (lock order: controller mutex,
/// then mailbox, then recv-state).
std::function<bool()> resolved_pred(detail::RecvState* s) {
  return [s] {
    std::lock_guard lk(s->mu);
    return s->completed || s->cancelled;
  };
}

}  // namespace

bool Request::test() {
  if (!state_) return true;  // sends complete immediately
  if (state_->checker) state_->checker->throw_if_aborted();
  if (auto& sc = state_->sched; sc != nullptr && sc->controls_this_thread()) {
    // A controlled thread polling in a `while (!test())` loop would spin
    // forever: nothing progresses until it parks. Treat the poll as the
    // blocking choice point it really is — park until the request resolves.
    (void)sc->wait_point(state_->posted_rank, resolved_pred(state_.get()));
  }
  std::lock_guard lk(state_->mu);
  if (state_->completed) {
    state_->observed = true;
    return true;
  }
  return false;
}

void Request::wait() {
  if (!state_) return;
  if (auto& sc = state_->sched; sc != nullptr) {
    if (sc->wait_point(state_->posted_rank, resolved_pred(state_.get()))) {
      std::lock_guard lk(state_->mu);
      if (state_->completed) state_->observed = true;
      return;
    }
  }
  const auto chk = state_->checker;
  if (!chk) {
    std::unique_lock lk(state_->mu);
    state_->cv.wait(lk,
                    [this] { return state_->completed || state_->cancelled; });
    return;
  }

  // Checked wait: sleep in slices so a rank blocked past the deadlock
  // threshold can enter the wait-for graph, trigger cycle scans, and unwind
  // when some scan diagnoses a deadlock. The state mutex is never held while
  // calling into the checker (see Checker's lock-order note).
  chk->throw_if_aborted();
  const auto started = std::chrono::steady_clock::now();
  const auto slice = std::chrono::milliseconds(20);
  bool threshold_hit = false;
  bool registered = false;
  for (;;) {
    bool done;
    {
      std::unique_lock lk(state_->mu);
      done = state_->cv.wait_for(lk, slice, [this] {
        return state_->completed || state_->cancelled;
      });
      if (done && state_->completed) state_->observed = true;
    }
    if (done) break;
    if (chk->aborted.load(std::memory_order_acquire)) {
      if (registered) chk->unregister_blocked(state_.get());
      chk->throw_deadlock();
    }
    if (!threshold_hit &&
        std::chrono::steady_clock::now() - started >= chk->opts.deadlock_after) {
      threshold_hit = true;
      registered = chk->register_blocked(state_);
    }
    if (threshold_hit) chk->maybe_scan();
  }
  if (registered) chk->unregister_blocked(state_.get());
}

bool Request::wait_for(std::chrono::microseconds timeout) {
  if (!state_) return true;  // sends complete immediately
  if (state_->checker) state_->checker->throw_if_aborted();
  if (auto& sc = state_->sched; sc != nullptr) {
    // Under control, the real duration is virtualized away: the schedule
    // decides whether this wait completes or its timeout event fires — both
    // orders get explored regardless of wall-clock timing.
    const auto out =
        sc->timed_wait_point(state_->posted_rank, resolved_pred(state_.get()));
    if (out == ScheduleController::TimedOutcome::kTimedOut) return false;
    if (out == ScheduleController::TimedOutcome::kReady) {
      std::lock_guard lk(state_->mu);
      if (state_->completed) state_->observed = true;
      return state_->completed;
    }
  }
  std::unique_lock lk(state_->mu);
  (void)state_->cv.wait_for(lk, timeout, [this] {
    return state_->completed || state_->cancelled;
  });
  if (state_->completed && state_->checker) state_->observed = true;
  return state_->completed;
}

bool Request::cancel() {
  if (!state_) return false;
  // Remove from the owning mailbox's pending list if still parked there.
  {
    std::lock_guard box_lk(state_->owner->mu);
    std::lock_guard lk(state_->mu);
    if (state_->completed) return false;
    auto& pending = state_->owner->pending;
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->get() == state_.get()) {
        pending.erase(it);
        break;
      }
    }
    state_->cancelled = true;
    state_->observed = true;  // cancelling is proper cleanup, not a leak
  }
  state_->cv.notify_all();
  return true;
}

Message Request::take() {
  if (!state_) return {};
  std::lock_guard lk(state_->mu);
  ANNSIM_CHECK_MSG(state_->completed, "Request::take on incomplete request");
  state_->observed = true;
  return std::move(state_->msg);
}

// ---------------------------------------------------------------- Comm ---

Comm::Comm(std::shared_ptr<detail::RuntimeState> rt, std::uint64_t comm_id,
           std::vector<int> members, int my_index)
    : rt_(std::move(rt)),
      comm_id_(comm_id),
      members_(std::move(members)),
      my_index_(my_index) {}

namespace {

void check_user_tag(Tag tag) {
  ANNSIM_CHECK_MSG(tag >= 0, "user message tags must be >= 0");
}

}  // namespace

void Comm::send(int dest, Tag tag, std::span<const std::byte> payload) {
  (void)isend(dest, tag, payload);
}

Request Comm::isend(int dest, Tag tag, std::span<const std::byte> payload) {
  check_user_tag(tag);
  return isend_impl(dest, tag, payload, /*internal=*/false,
                    /*reserved_ok=*/false);
}

void Comm::send_reserved(int dest, Tag tag, std::span<const std::byte> payload) {
  (void)isend_reserved(dest, tag, payload);
}

Request Comm::isend_reserved(int dest, Tag tag,
                             std::span<const std::byte> payload) {
  check_user_tag(tag);
  return isend_impl(dest, tag, payload, /*internal=*/false,
                    /*reserved_ok=*/true);
}

Request Comm::isend_impl(int dest, Tag tag, std::span<const std::byte> payload,
                         bool internal, bool reserved_ok) {
  ANNSIM_CHECK_MSG(dest >= 0 && dest < size(), "isend: bad destination " << dest);
  const int sender = members_[std::size_t(my_index_)];
  if (auto* chk = rt_->checker.get(); chk != nullptr && !internal) {
    chk->throw_if_aborted();
    if (!reserved_ok && chk->is_reserved(tag)) {
      std::ostringstream os;
      os << "plain send on reserved control-plane tag " << tag << " to rank "
         << members_[std::size_t(dest)] << " (use send_reserved/isend_reserved)";
      chk->violate(check::Rule::kReservedTagSend, sender,
                   members_[std::size_t(dest)], tag, os.str());
    }
  }

  detail::Envelope env;
  env.comm_id = comm_id_;
  env.source_local = my_index_;
  env.source_global = sender;
  env.tag = tag;
  env.payload.assign(payload.begin(), payload.end());

  auto& stats = rt_->traffic[std::size_t(sender)];
  if (tag >= 0) {
    stats.p2p_messages.fetch_add(1, std::memory_order_relaxed);
    stats.p2p_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  } else {
    stats.collective_ops.fetch_add(1, std::memory_order_relaxed);
    stats.collective_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  }

  // Fault injection gates user messages only: internal collective traffic
  // (tag < 0) is never touched. Control-plane tags
  // (FaultPlan::reliable_tags) skip the drop/delay rolls and the op budget
  // but are still silenced once the sender is dead — fail-silent means
  // silent on every user tag, or heartbeat-based health monitoring could
  // never observe a death. See fault.hpp for the failure model.
  auto verdict = Delivery::kDeliver;
  if (tag >= 0 && rt_->fault != nullptr) {
    if (rt_->fault->is_reliable(tag)) {
      verdict = rt_->fault->allow_reliable_op(sender) ? Delivery::kDeliver
                                                      : Delivery::kDrop;
    } else {
      verdict = rt_->fault->classify_op(sender);
    }
    if (verdict == Delivery::kDrop) {
      return Request{};  // dropped: the envelope never reaches the mailbox
    }
  }

  auto& box = *rt_->mailboxes[std::size_t(members_[std::size_t(dest)])];
  if (auto& sc = rt_->sched; sc != nullptr && sc->controls_this_thread()) {
    // Controlled run: the envelope enters its (sender, dest, comm) channel
    // and a scheduler decision moves it into the mailbox later. The fault
    // verdict above was already taken — deterministically, since a rank's op
    // counter advances in its own program order — so drops never reach here
    // and duplicates queue twice.
    ChoiceEvent ev;
    ev.kind = ChoiceKind::kDeliver;
    ev.source = sender;
    ev.dest = members_[std::size_t(dest)];
    ev.tag = tag;
    ev.comm_id = comm_id_;
    if (verdict == Delivery::kDuplicate) {
      (void)sc->submit(ev, [bx = &box, env] {
        auto copy = env;
        detail::deliver(*bx, std::move(copy));
      });
    }
    const bool overtake = verdict == Delivery::kReorder;
    (void)sc->submit(ev, [bx = &box, env = std::move(env), overtake]() mutable {
      detail::deliver(*bx, std::move(env), overtake);
    });
    return Request{};
  }
  if (verdict == Delivery::kDuplicate) {
    detail::deliver(box, env);  // retransmission: same bytes arrive twice
  }
  detail::deliver(box, std::move(env),
                  /*overtake=*/verdict == Delivery::kReorder);
  if (auto& sc = rt_->sched; sc != nullptr) {
    // An untracked thread (engine helper, beacon) delivered directly while a
    // controlled run may be quiescent: let the scheduler re-scan its parked
    // predicates so a wait this delivery resolved actually wakes.
    sc->poke();
  }
  return Request{};  // in-process: the send buffer is copied, so complete
}

Message Comm::recv(int source, Tag tag) {
  Request r = irecv(source, tag);
  r.wait();
  return r.take();
}

std::optional<Message> Comm::recv_for(int source, Tag tag,
                                      std::chrono::microseconds timeout) {
  Request r = irecv(source, tag);
  if (r.wait_for(timeout)) return r.take();
  if (r.cancel()) return std::nullopt;
  return r.take();  // completed in the cancel race window: take it, never lose it
}

Request Comm::irecv(int source, Tag tag) {
  ANNSIM_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                   "irecv: bad source " << source);
  auto state = detail::post_recv(
      *rt_->mailboxes[std::size_t(members_[std::size_t(my_index_)])], comm_id_,
      source, tag, {});
  state->sched = rt_->sched;
  state->posted_rank = members_[std::size_t(my_index_)];
  state->posted_source_global =
      source == kAnySource ? kAnySource : members_[std::size_t(source)];
  if (auto& chk = rt_->checker; chk != nullptr) {
    state->checker = chk;
    if (tag == kAnyTag && !chk->reserved.empty()) {
      std::ostringstream os;
      os << "kAnyTag wildcard receive posted while control-plane tags are "
            "reserved (could swallow a reserved-tag message; use irecv_tags)";
      chk->violate(check::Rule::kWildcardRecv, state->posted_rank,
                   state->posted_source_global, kAnyTag, os.str());
    }
  }
  return Request(std::move(state));
}

Request Comm::irecv_tags(int source, std::vector<Tag> tags) {
  ANNSIM_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                   "irecv_tags: bad source " << source);
  ANNSIM_CHECK_MSG(!tags.empty(), "irecv_tags: empty tag set");
  for (const Tag t : tags) {
    ANNSIM_CHECK_MSG(t >= 0, "irecv_tags: tags must be >= 0, got " << t);
  }
  auto state = detail::post_recv(
      *rt_->mailboxes[std::size_t(members_[std::size_t(my_index_)])], comm_id_,
      source, kAnyTag, std::move(tags));
  state->sched = rt_->sched;
  state->posted_rank = members_[std::size_t(my_index_)];
  state->posted_source_global =
      source == kAnySource ? kAnySource : members_[std::size_t(source)];
  if (auto& chk = rt_->checker; chk != nullptr) {
    state->checker = chk;
  }
  return Request(std::move(state));
}

bool Comm::iprobe(int source, Tag tag) {
  auto& box = *rt_->mailboxes[std::size_t(members_[std::size_t(my_index_)])];
  std::lock_guard lk(box.mu);
  for (const auto& env : box.queue) {
    if (detail::matches(env, comm_id_, source, tag, detail::kNoTagSet)) {
      return true;
    }
  }
  return false;
}

/// Internal blocking receive for collectives: exact internal tag, no checker
/// bookkeeping needed beyond what recv() already does — but it must NOT be
/// routed through the user-facing recv() tag rules, so it posts directly.
Message Comm::recv_internal_(int source, Tag tag) {
  auto state = detail::post_recv(
      *rt_->mailboxes[std::size_t(members_[std::size_t(my_index_)])], comm_id_,
      source, tag, {});
  state->sched = rt_->sched;
  state->posted_rank = members_[std::size_t(my_index_)];
  state->posted_source_global = members_[std::size_t(source)];
  if (auto& chk = rt_->checker; chk != nullptr) {
    state->checker = chk;
  }
  Request r{std::move(state)};
  r.wait();
  return r.take();
}

void Comm::barrier() {
  // Linear barrier: everyone reports to local root, root releases everyone.
  const std::byte dummy{0};
  const std::span<const std::byte> empty(&dummy, 0);
  if (my_index_ == 0) {
    for (int i = 1; i < size(); ++i) {
      (void)recv_internal_(i, detail::kTagBarrier);
    }
    for (int i = 1; i < size(); ++i) {
      (void)isend_impl(i, detail::kTagBarrierRelease, empty, /*internal=*/true,
                       /*reserved_ok=*/true);
    }
  } else {
    (void)isend_impl(0, detail::kTagBarrier, empty, /*internal=*/true,
                     /*reserved_ok=*/true);
    (void)recv_internal_(0, detail::kTagBarrierRelease);
  }
}

std::vector<std::byte> Comm::bcast(std::span<const std::byte> buf, int root) {
  ANNSIM_CHECK(root >= 0 && root < size());
  if (my_index_ == root) {
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      (void)isend_impl(i, detail::kTagBcast, buf, /*internal=*/true,
                       /*reserved_ok=*/true);
    }
    return {buf.begin(), buf.end()};
  }
  return recv_internal_(root, detail::kTagBcast).payload;
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> buf,
                                                 int root) {
  ANNSIM_CHECK(root >= 0 && root < size());
  if (my_index_ == root) {
    std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
    out[std::size_t(root)].assign(buf.begin(), buf.end());
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      out[std::size_t(i)] = recv_internal_(i, detail::kTagGather).payload;
    }
    return out;
  }
  (void)isend_impl(root, detail::kTagGather, buf, /*internal=*/true,
                   /*reserved_ok=*/true);
  return {};
}

std::vector<std::byte> Comm::scatter(
    const std::vector<std::vector<std::byte>>& bufs, int root) {
  ANNSIM_CHECK(root >= 0 && root < size());
  if (my_index_ == root) {
    ANNSIM_CHECK_MSG(bufs.size() == std::size_t(size()),
                     "scatter: need one buffer per rank");
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      (void)isend_impl(i, detail::kTagScatter, bufs[std::size_t(i)],
                       /*internal=*/true, /*reserved_ok=*/true);
    }
    return bufs[std::size_t(root)];
  }
  return recv_internal_(root, detail::kTagScatter).payload;
}

std::vector<std::vector<std::byte>> Comm::alltoallv(
    const std::vector<std::vector<std::byte>>& send_bufs) {
  ANNSIM_CHECK_MSG(send_bufs.size() == std::size_t(size()),
                   "alltoallv: need one buffer per rank");
  // All sends complete immediately (copied), so no deadlock risk.
  for (int i = 0; i < size(); ++i) {
    (void)isend_impl(i, detail::kTagAlltoallv, send_bufs[std::size_t(i)],
                     /*internal=*/true, /*reserved_ok=*/true);
  }
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) {
    out[std::size_t(i)] = recv_internal_(i, detail::kTagAlltoallv).payload;
  }
  return out;
}

Comm Comm::split(int color) const {
  // Gather all colors at root 0, which assigns new communicator ids and
  // sends every member its new (comm_id, member list, index).
  Comm& self = const_cast<Comm&>(*this);
  auto colors = self.gather_values(color, 0);

  BinaryWriter my_info;
  if (my_index_ == 0) {
    std::map<int, std::vector<int>> groups;  // color -> comm indices (sorted)
    for (int i = 0; i < size(); ++i) groups[colors[std::size_t(i)]].push_back(i);

    std::map<int, std::uint64_t> comm_ids;
    for (const auto& [c, g] : groups) {
      comm_ids[c] = rt_->next_comm_id.fetch_add(1, std::memory_order_relaxed);
    }

    std::vector<std::vector<std::byte>> payloads(static_cast<std::size_t>(size()));
    for (const auto& [c, g] : groups) {
      for (std::size_t idx = 0; idx < g.size(); ++idx) {
        BinaryWriter w;
        w.write(comm_ids[c]);
        w.write(std::uint32_t(idx));
        std::vector<int> globals;
        globals.reserve(g.size());
        for (int member : g) globals.push_back(members_[std::size_t(member)]);
        w.write_vector(globals);
        payloads[std::size_t(g[idx])] = w.take();
      }
    }
    auto mine = self.scatter(payloads, 0);
    BinaryReader r(mine);
    const auto comm_id = r.read<std::uint64_t>();
    const auto idx = r.read<std::uint32_t>();
    auto globals = r.read_vector<int>();
    return Comm(rt_, comm_id, std::move(globals), int(idx));
  }

  auto mine = self.scatter({}, 0);
  BinaryReader r(mine);
  const auto comm_id = r.read<std::uint64_t>();
  const auto idx = r.read<std::uint32_t>();
  auto globals = r.read_vector<int>();
  return Comm(rt_, comm_id, std::move(globals), int(idx));
}

Window Comm::create_window(std::size_t local_bytes) {
  auto sizes = gather_values(std::uint64_t(local_bytes), 0);
  std::uint64_t win_id = 0;
  if (my_index_ == 0) {
    auto ws = std::make_shared<detail::WindowState>();
    ws->buffers.resize(std::size_t(size()));
    ws->target_mu.resize(std::size_t(size()));
    ws->locked.assign(std::size_t(size()),
                      std::vector<char>(std::size_t(size()), 0));
    ws->rt = rt_.get();
    ws->members = members_;
    for (int i = 0; i < size(); ++i) {
      ws->buffers[std::size_t(i)].resize(sizes[std::size_t(i)]);
      ws->target_mu[std::size_t(i)] = std::make_unique<std::mutex>();
    }
    win_id = rt_->next_window_id.fetch_add(1, std::memory_order_relaxed);
    ws->id = win_id;
    std::lock_guard lk(rt_->win_mu);
    rt_->windows[win_id] = std::move(ws);
  }
  win_id = bcast_value(win_id, 0);

  std::shared_ptr<detail::WindowState> ws;
  {
    std::lock_guard lk(rt_->win_mu);
    ws = rt_->windows.at(win_id);
  }
  return Window(std::move(ws), my_index_);
}

TrafficStats Comm::traffic() const {
  return rt_->traffic[std::size_t(members_[std::size_t(my_index_)])].snapshot();
}

// -------------------------------------------------------------- Window ---

Window::Window(std::shared_ptr<detail::WindowState> state, int my_rank)
    : state_(std::move(state)), my_rank_(my_rank) {}

namespace {

detail::Checker* window_checker(const detail::WindowState& ws) {
  return ws.rt->checker.get();
}

int window_global(const detail::WindowState& ws, int comm_rank) {
  return ws.members[std::size_t(comm_rank)];
}

}  // namespace

void Window::lock_shared(int target) {
  ANNSIM_CHECK(state_ != nullptr);
  auto& flag = state_->locked[std::size_t(my_rank_)][std::size_t(target)];
  if (flag != 0) {
    if (auto* chk = window_checker(*state_)) {
      chk->violate(check::Rule::kRmaLockMisuse, window_global(*state_, my_rank_),
                   window_global(*state_, target), kAnyTag,
                   "nested lock_shared at an already-locked target");
      return;
    }
    ANNSIM_CHECK_MSG(false, "Window: nested lock at target " << target);
  }
  flag = 1;
}

void Window::unlock(int target) {
  ANNSIM_CHECK(state_ != nullptr);
  auto& flag = state_->locked[std::size_t(my_rank_)][std::size_t(target)];
  if (flag != 1) {
    if (auto* chk = window_checker(*state_)) {
      chk->violate(check::Rule::kRmaLockMisuse, window_global(*state_, my_rank_),
                   window_global(*state_, target), kAnyTag,
                   "unlock without a matching lock_shared");
      return;
    }
    ANNSIM_CHECK_MSG(false, "Window: unlock without lock at target " << target);
  }
  flag = 0;
}

namespace {

/// Epoch discipline: hard failure without the checker (as before); with the
/// checker the violation is recorded and the op proceeds — single-process
/// memory makes that safe, and report-and-continue lets one run surface
/// every offending call site instead of dying at the first.
void check_epoch(const detail::WindowState& ws, int origin, int target,
                 const char* op) {
  if (ws.locked[std::size_t(origin)][std::size_t(target)] == 1) return;
  if (auto* chk = window_checker(ws)) {
    std::ostringstream os;
    os << op << " outside a lock_shared/unlock access epoch";
    chk->violate(check::Rule::kRmaOutsideEpoch, window_global(ws, origin),
                 window_global(ws, target), kAnyTag, os.str());
    return;
  }
  ANNSIM_CHECK_MSG(false,
                   "Window: RMA op outside an access epoch (call lock_shared)");
}

void account_rma(detail::WindowState& ws, int origin, std::size_t bytes) {
  auto& stats = ws.rt->traffic[std::size_t(ws.members[std::size_t(origin)])];
  stats.rma_ops.fetch_add(1, std::memory_order_relaxed);
  stats.rma_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// RMA mutations from a dead/faulted origin vanish silently, like its sends.
bool rma_op_allowed(detail::WindowState& ws, int origin) {
  return ws.rt->fault == nullptr ||
         ws.rt->fault->allow_op(ws.members[std::size_t(origin)]);
}

/// Controlled-scheduling choice point: a tracked thread parks here until the
/// scheduler grants its turn at `target`, which serializes concurrent RMA
/// traffic into an explorable order. Free-running threads pass through.
void rma_choice_point(detail::WindowState& ws, int origin, int target) {
  if (auto& sc = ws.rt->sched; sc != nullptr) {
    (void)sc->rma_point(ws.members[std::size_t(origin)],
                        ws.members[std::size_t(target)], ws.id);
  }
}

}  // namespace

void Window::put(int target, std::size_t offset, std::span<const std::byte> data) {
  auto& ws = *state_;
  check_epoch(ws, my_rank_, target, "put");
  auto& buf = ws.buffers[std::size_t(target)];
  ANNSIM_CHECK_MSG(offset + data.size() <= buf.size(), "Window::put out of range");
  account_rma(ws, my_rank_, data.size());
  if (!rma_op_allowed(ws, my_rank_)) return;
  rma_choice_point(ws, my_rank_, target);
  std::lock_guard lk(*ws.target_mu[std::size_t(target)]);
  std::copy(data.begin(), data.end(), buf.begin() + std::ptrdiff_t(offset));
}

std::vector<std::byte> Window::get(int target, std::size_t offset,
                                   std::size_t len) {
  auto& ws = *state_;
  check_epoch(ws, my_rank_, target, "get");
  auto& buf = ws.buffers[std::size_t(target)];
  ANNSIM_CHECK_MSG(offset + len <= buf.size(), "Window::get out of range");
  rma_choice_point(ws, my_rank_, target);
  std::lock_guard lk(*ws.target_mu[std::size_t(target)]);
  account_rma(ws, my_rank_, len);
  return {buf.begin() + std::ptrdiff_t(offset),
          buf.begin() + std::ptrdiff_t(offset + len)};
}

void Window::get_accumulate(int target, std::size_t offset,
                            std::span<const std::byte> origin_data,
                            const MergeOp& op, std::vector<std::byte>* prev_out) {
  auto& ws = *state_;
  check_epoch(ws, my_rank_, target, "get_accumulate");
  auto& buf = ws.buffers[std::size_t(target)];
  ANNSIM_CHECK_MSG(offset + origin_data.size() <= buf.size(),
                   "Window::get_accumulate out of range");
  account_rma(ws, my_rank_, origin_data.size());
  if (!rma_op_allowed(ws, my_rank_)) return;
  rma_choice_point(ws, my_rank_, target);
  std::lock_guard lk(*ws.target_mu[std::size_t(target)]);
  const std::span<std::byte> region(buf.data() + offset, origin_data.size());
  if (prev_out != nullptr) prev_out->assign(region.begin(), region.end());
  op(region, origin_data);
}

std::span<std::byte> Window::local_data() {
  ANNSIM_CHECK(state_ != nullptr);
  return state_->buffers[std::size_t(my_rank_)];
}

std::size_t Window::local_size() const {
  ANNSIM_CHECK(state_ != nullptr);
  return state_->buffers[std::size_t(my_rank_)].size();
}

// ------------------------------------------------------------- Runtime ---

Runtime::Runtime(int n_ranks) : state_(std::make_shared<detail::RuntimeState>()) {
  ANNSIM_CHECK_MSG(n_ranks >= 1, "Runtime needs at least one rank");
  state_->n_ranks = n_ranks;
  state_->mailboxes.reserve(std::size_t(n_ranks));
  for (int i = 0; i < n_ranks; ++i) {
    state_->mailboxes.push_back(std::make_unique<detail::Mailbox>());
  }
  state_->traffic = std::make_unique<detail::AtomicTraffic[]>(std::size_t(n_ranks));
  if (check::env_check_enabled()) {
    configure_check({});  // env folds the enable in; default options otherwise
  }
}

Runtime::Runtime(int n_ranks, const FaultPlan& plan) : Runtime(n_ranks) {
  if (plan.enabled()) {
    state_->fault = std::make_shared<FaultInjector>(plan, n_ranks);
  }
}

Runtime::Runtime(int n_ranks, std::shared_ptr<FaultInjector> injector)
    : Runtime(n_ranks) {
  if (injector != nullptr) {
    ANNSIM_CHECK_MSG(injector->n_ranks() == n_ranks,
                     "shared FaultInjector covers " << injector->n_ranks()
                                                    << " ranks but the runtime has "
                                                    << n_ranks);
    state_->fault = std::move(injector);
  }
}

Runtime::~Runtime() = default;

int Runtime::size() const noexcept { return state_->n_ranks; }

void Runtime::configure_check(const check::CheckOptions& opts) {
  check::CheckOptions o = opts;
  if (check::env_check_enabled()) o.enabled = true;
  if (const int ef = check::env_check_fatal(); ef >= 0) o.fatal = (ef == 1);
  if (!o.enabled) {
    state_->checker.reset();
    return;
  }
  state_->checker = std::make_shared<detail::Checker>(std::move(o));
}

bool Runtime::check_enabled() const noexcept {
  return state_->checker != nullptr;
}

check::CheckReport Runtime::check_report() const {
  if (state_->checker == nullptr) return {};
  std::lock_guard lk(state_->checker->mu);
  return state_->checker->report;
}

namespace detail {
namespace {

/// Post-join finalize sweep: request leaks (via RecvState dtors when the
/// pending lists drop), unmatched sends, open RMA epochs. Only runs with the
/// checker installed; without it, run() leaves mailboxes and windows exactly
/// as before (messages may legally outlive a run for a caller that never
/// finalizes). Returns the number of violations found across the whole
/// Runtime lifetime so run() can decide whether *this* run added any.
void finalize_checked_run(RuntimeState& st, Checker& chk) {
  const bool aborted = chk.aborted.load(std::memory_order_acquire);

  // Dropping the pending recvs here fires the request-leak detection in
  // ~RecvState (which takes chk.mu) — destroy outside the mailbox locks.
  std::vector<std::shared_ptr<RecvState>> doomed;
  for (auto& box : st.mailboxes) {
    std::lock_guard lk(box->mu);
    for (auto& sp : box->pending) doomed.push_back(std::move(sp));
    box->pending.clear();
  }
  doomed.clear();

  std::lock_guard lk(chk.mu);
  chk.report.runs += 1;

  if (!aborted) {
    // Unmatched sends: anything still queued was sent but never received.
    for (int dest = 0; dest < st.n_ranks; ++dest) {
      auto& box = *st.mailboxes[std::size_t(dest)];
      std::lock_guard blk(box.mu);
      for (const auto& env : box.queue) {
        if (env.tag >= 0 && chk.is_best_effort(env.tag)) {
          ++chk.report.best_effort_residue;
          continue;
        }
        ++chk.report.unmatched_histogram[{env.tag, dest}];
        std::ostringstream os;
        os << "message from rank " << env.source_global << " to rank " << dest
           << " on tag " << env.tag << " (" << env.payload.size()
           << " bytes) never received";
        chk.violate_locked(check::Rule::kUnmatchedSend, env.source_global, dest,
                           env.tag, os.str());
      }
      box.queue.clear();
    }

    // Open access epochs: the windows die with this finalize, so an epoch
    // still open now is "window destroyed while locked".
    std::lock_guard wlk(st.win_mu);
    for (const auto& [id, ws] : st.windows) {
      for (std::size_t o = 0; o < ws->locked.size(); ++o) {
        for (std::size_t t = 0; t < ws->locked[o].size(); ++t) {
          if (ws->locked[o][t] == 0) continue;
          std::ostringstream os;
          os << "window " << id << ": access epoch at target "
             << ws->members[t] << " still open at finalize";
          chk.violate_locked(check::Rule::kRmaEpochLeak, ws->members[o],
                             ws->members[t], kAnyTag, os.str());
        }
      }
    }
    st.windows.clear();
  }
}

}  // namespace
}  // namespace detail

void Runtime::run(const std::function<void(Comm&)>& rank_main) {
  const int n = state_->n_ranks;
  std::vector<int> world(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) world[std::size_t(i)] = i;

  const std::uint64_t violations_before =
      state_->checker ? check_report().total_violations() : 0;

  std::exception_ptr first_error;
  std::mutex error_mu;

  // Claim the whole rank cohort with the schedule controller *before* any
  // thread spawns: the scheduler must never fire on a partial view of the
  // ranks (a lone early thread parking would look like full quiescence).
  const auto sched = state_->sched;
  const bool controlled = sched != nullptr && sched->begin_run(n);

  std::vector<std::thread> threads;
  threads.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      if (controlled) sched->attach_thread();
      Comm comm(state_, /*comm_id=*/0, world, i);
      try {
        rank_main(comm);
      } catch (...) {
        std::lock_guard lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (controlled) sched->finish_thread();
    });
  }
  for (auto& t : threads) t.join();

  if (auto& chk = state_->checker; chk != nullptr) {
    detail::finalize_checked_run(*state_, *chk);
    if (first_error) std::rethrow_exception(first_error);
    const auto report = check_report();
    if (chk->opts.fatal && report.total_violations() > violations_before) {
      throw Error(check::to_string(report));
    }
    return;
  }
  if (first_error) std::rethrow_exception(first_error);
}

TrafficStats Runtime::total_traffic() const {
  TrafficStats total;
  for (int i = 0; i < state_->n_ranks; ++i) {
    total += state_->traffic[std::size_t(i)].snapshot();
  }
  return total;
}

std::vector<TrafficStats> Runtime::per_rank_traffic() const {
  std::vector<TrafficStats> out;
  out.reserve(std::size_t(state_->n_ranks));
  for (int i = 0; i < state_->n_ranks; ++i) {
    out.push_back(state_->traffic[std::size_t(i)].snapshot());
  }
  return out;
}

void Runtime::set_schedule(std::shared_ptr<ScheduleController> schedule) {
  state_->sched = std::move(schedule);
}

std::shared_ptr<ScheduleController> Runtime::schedule() const noexcept {
  return state_->sched;
}

FaultInjector* Runtime::fault_injector() noexcept { return state_->fault.get(); }

std::vector<int> Runtime::failed_ranks() const {
  return state_->fault ? state_->fault->dead_ranks() : std::vector<int>{};
}

}  // namespace annsim::mpi
