#include "annsim/mpi/mpi.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <list>
#include <map>
#include <mutex>
#include <thread>

#include "annsim/common/error.hpp"

namespace annsim::mpi {

namespace detail {

// Internal collective tags (user tags must be >= 0; kAnyTag is -1).
inline constexpr Tag kTagBarrier = -10;
inline constexpr Tag kTagBarrierRelease = -11;
inline constexpr Tag kTagBcast = -12;
inline constexpr Tag kTagGather = -13;
inline constexpr Tag kTagScatter = -14;
inline constexpr Tag kTagAlltoallv = -15;

/// In-flight message inside a mailbox.
struct Envelope {
  std::uint64_t comm_id = 0;
  int source_local = kAnySource;  ///< sender's rank within the communicator
  Tag tag = kAnyTag;
  std::vector<std::byte> payload;
};

struct Mailbox;

/// Shared state of one posted (i)recv.
struct RecvState {
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  bool cancelled = false;
  Message msg;

  // matching criteria
  std::uint64_t comm_id = 0;
  int source = kAnySource;  ///< comm-local source filter
  Tag tag = kAnyTag;

  Mailbox* owner = nullptr;  ///< mailbox holding this pending recv
};

struct Mailbox {
  std::mutex mu;
  std::list<Envelope> queue;                          ///< unmatched messages, FIFO
  std::list<std::shared_ptr<RecvState>> pending;      ///< posted recvs, in order
};

struct WindowState {
  std::vector<std::vector<std::byte>> buffers;        ///< per comm rank
  std::vector<std::unique_ptr<std::mutex>> target_mu; ///< per-target atomicity
  std::vector<std::vector<char>> locked;              ///< [origin][target] epoch flags
  RuntimeState* rt = nullptr;
  std::vector<int> members;                           ///< global rank per comm rank
};

/// Per-rank traffic counters. Atomic because a rank's whole thread team (the
/// engine runs a search team per worker rank) funnels sends and RMA ops
/// through the same entry concurrently.
struct AtomicTraffic {
  std::atomic<std::uint64_t> p2p_messages{0};
  std::atomic<std::uint64_t> p2p_bytes{0};
  std::atomic<std::uint64_t> rma_ops{0};
  std::atomic<std::uint64_t> rma_bytes{0};
  std::atomic<std::uint64_t> collective_ops{0};
  std::atomic<std::uint64_t> collective_bytes{0};

  [[nodiscard]] TrafficStats snapshot() const {
    TrafficStats s;
    s.p2p_messages = p2p_messages.load(std::memory_order_relaxed);
    s.p2p_bytes = p2p_bytes.load(std::memory_order_relaxed);
    s.rma_ops = rma_ops.load(std::memory_order_relaxed);
    s.rma_bytes = rma_bytes.load(std::memory_order_relaxed);
    s.collective_ops = collective_ops.load(std::memory_order_relaxed);
    s.collective_bytes = collective_bytes.load(std::memory_order_relaxed);
    return s;
  }
};

struct RuntimeState {
  int n_ranks = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;   ///< per global rank
  std::atomic<std::uint64_t> next_comm_id{1};
  std::atomic<std::uint64_t> next_window_id{1};
  std::unique_ptr<AtomicTraffic[]> traffic;          ///< per global rank
  std::shared_ptr<FaultInjector> fault;              ///< null = no injection;
                                                     ///< shared so fault state
                                                     ///< can outlive a Runtime

  std::mutex win_mu;
  std::map<std::uint64_t, std::shared_ptr<WindowState>> windows;
};

namespace {

bool matches(const Envelope& e, std::uint64_t comm_id, int source, Tag tag) {
  if (e.comm_id != comm_id) return false;
  if (source != kAnySource && e.source_local != source) return false;
  // The tag wildcard spans user tags only: internal collective traffic
  // (negative tags) lives in its own context, as in real MPI, so a user's
  // iprobe/recv(kAnyTag) never observes an in-flight barrier token. Internal
  // receives always name their exact tag.
  if (tag == kAnyTag) return e.tag >= 0;
  return e.tag == tag;
}

/// Deliver an envelope to a mailbox: complete the first matching pending
/// recv, or queue the message.
///
/// The match is completed while box.mu is still held. Request::cancel takes
/// box.mu before inspecting its state, so a recv it finds incomplete is
/// guaranteed not to be mid-delivery — without this ordering, a wildcard
/// irecv could be unlinked from `pending` here, then "successfully"
/// cancelled, and the envelope would vanish with it (a latent hang for
/// whichever rank is owed that message).
void deliver(Mailbox& box, Envelope env) {
  std::shared_ptr<RecvState> match;
  {
    std::lock_guard lk(box.mu);
    for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
      if (matches(env, (*it)->comm_id, (*it)->source, (*it)->tag)) {
        match = *it;
        box.pending.erase(it);
        break;
      }
    }
    if (!match) {
      box.queue.push_back(std::move(env));
      return;
    }
    std::lock_guard mlk(match->mu);
    match->msg = Message{env.source_local, env.tag, std::move(env.payload)};
    match->completed = true;
  }
  match->cv.notify_all();
}

/// Post a recv: immediately complete against a queued message, or park it.
std::shared_ptr<RecvState> post_recv(Mailbox& box, std::uint64_t comm_id,
                                     int source, Tag tag) {
  auto state = std::make_shared<RecvState>();
  state->comm_id = comm_id;
  state->source = source;
  state->tag = tag;
  state->owner = &box;

  std::lock_guard lk(box.mu);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, comm_id, source, tag)) {
      state->msg = Message{it->source_local, it->tag, std::move(it->payload)};
      state->completed = true;
      box.queue.erase(it);
      return state;
    }
  }
  box.pending.push_back(state);
  return state;
}

}  // namespace
}  // namespace detail

// ------------------------------------------------------------- Request ---

Request::Request(std::shared_ptr<detail::RecvState> state)
    : state_(std::move(state)) {}

bool Request::valid() const noexcept { return state_ != nullptr; }

bool Request::test() {
  if (!state_) return true;  // sends complete immediately
  std::lock_guard lk(state_->mu);
  return state_->completed;
}

void Request::wait() {
  if (!state_) return;
  std::unique_lock lk(state_->mu);
  state_->cv.wait(lk, [this] { return state_->completed || state_->cancelled; });
}

bool Request::wait_for(std::chrono::microseconds timeout) {
  if (!state_) return true;  // sends complete immediately
  std::unique_lock lk(state_->mu);
  (void)state_->cv.wait_for(lk, timeout, [this] {
    return state_->completed || state_->cancelled;
  });
  return state_->completed;
}

bool Request::cancel() {
  if (!state_) return false;
  // Remove from the owning mailbox's pending list if still parked there.
  {
    std::lock_guard box_lk(state_->owner->mu);
    std::lock_guard lk(state_->mu);
    if (state_->completed) return false;
    auto& pending = state_->owner->pending;
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->get() == state_.get()) {
        pending.erase(it);
        break;
      }
    }
    state_->cancelled = true;
  }
  state_->cv.notify_all();
  return true;
}

Message Request::take() {
  if (!state_) return {};
  std::lock_guard lk(state_->mu);
  ANNSIM_CHECK_MSG(state_->completed, "Request::take on incomplete request");
  return std::move(state_->msg);
}

// ---------------------------------------------------------------- Comm ---

Comm::Comm(std::shared_ptr<detail::RuntimeState> rt, std::uint64_t comm_id,
           std::vector<int> members, int my_index)
    : rt_(std::move(rt)),
      comm_id_(comm_id),
      members_(std::move(members)),
      my_index_(my_index) {}

namespace {

void check_user_tag(Tag tag) {
  ANNSIM_CHECK_MSG(tag >= 0, "user message tags must be >= 0");
}

}  // namespace

void Comm::send(int dest, Tag tag, std::span<const std::byte> payload) {
  check_user_tag(tag);
  (void)isend(dest, tag, payload);
}

Request Comm::isend(int dest, Tag tag, std::span<const std::byte> payload) {
  ANNSIM_CHECK_MSG(dest >= 0 && dest < size(), "isend: bad destination " << dest);
  detail::Envelope env;
  env.comm_id = comm_id_;
  env.source_local = my_index_;
  env.tag = tag;
  env.payload.assign(payload.begin(), payload.end());

  auto& stats = rt_->traffic[std::size_t(members_[std::size_t(my_index_)])];
  if (tag >= 0) {
    stats.p2p_messages.fetch_add(1, std::memory_order_relaxed);
    stats.p2p_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  } else {
    stats.collective_ops.fetch_add(1, std::memory_order_relaxed);
    stats.collective_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  }

  // Fault injection gates user messages only: internal collective traffic
  // (tag < 0) is never touched. Control-plane tags
  // (FaultPlan::reliable_tags) skip the drop/delay rolls and the op budget
  // but are still silenced once the sender is dead — fail-silent means
  // silent on every user tag, or heartbeat-based health monitoring could
  // never observe a death. See fault.hpp for the failure model.
  if (tag >= 0 && rt_->fault != nullptr) {
    const int sender = members_[std::size_t(my_index_)];
    const bool delivered = rt_->fault->is_reliable(tag)
                               ? rt_->fault->allow_reliable_op(sender)
                               : rt_->fault->allow_op(sender);
    if (!delivered) {
      return Request{};  // dropped: the envelope never reaches the mailbox
    }
  }

  detail::deliver(*rt_->mailboxes[std::size_t(members_[std::size_t(dest)])],
                  std::move(env));
  return Request{};  // in-process: the send buffer is copied, so complete
}

Message Comm::recv(int source, Tag tag) {
  Request r = irecv(source, tag);
  r.wait();
  return r.take();
}

std::optional<Message> Comm::recv_for(int source, Tag tag,
                                      std::chrono::microseconds timeout) {
  Request r = irecv(source, tag);
  if (r.wait_for(timeout)) return r.take();
  if (r.cancel()) return std::nullopt;
  return r.take();  // completed in the cancel race window: take it, never lose it
}

Request Comm::irecv(int source, Tag tag) {
  ANNSIM_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                   "irecv: bad source " << source);
  auto state = detail::post_recv(
      *rt_->mailboxes[std::size_t(members_[std::size_t(my_index_)])], comm_id_,
      source, tag);
  return Request(std::move(state));
}

bool Comm::iprobe(int source, Tag tag) {
  auto& box = *rt_->mailboxes[std::size_t(members_[std::size_t(my_index_)])];
  std::lock_guard lk(box.mu);
  for (const auto& env : box.queue) {
    if (detail::matches(env, comm_id_, source, tag)) return true;
  }
  return false;
}

void Comm::barrier() {
  // Linear barrier: everyone reports to local root, root releases everyone.
  const std::byte dummy{0};
  const std::span<const std::byte> empty(&dummy, 0);
  if (my_index_ == 0) {
    for (int i = 1; i < size(); ++i) {
      (void)recv(i, detail::kTagBarrier);
    }
    for (int i = 1; i < size(); ++i) {
      (void)isend(i, detail::kTagBarrierRelease, empty);
    }
  } else {
    (void)isend(0, detail::kTagBarrier, empty);
    (void)recv(0, detail::kTagBarrierRelease);
  }
}

std::vector<std::byte> Comm::bcast(std::span<const std::byte> buf, int root) {
  ANNSIM_CHECK(root >= 0 && root < size());
  if (my_index_ == root) {
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      (void)isend(i, detail::kTagBcast, buf);
    }
    return {buf.begin(), buf.end()};
  }
  return recv(root, detail::kTagBcast).payload;
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> buf,
                                                 int root) {
  ANNSIM_CHECK(root >= 0 && root < size());
  if (my_index_ == root) {
    std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
    out[std::size_t(root)].assign(buf.begin(), buf.end());
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      out[std::size_t(i)] = recv(i, detail::kTagGather).payload;
    }
    return out;
  }
  (void)isend(root, detail::kTagGather, buf);
  return {};
}

std::vector<std::byte> Comm::scatter(
    const std::vector<std::vector<std::byte>>& bufs, int root) {
  ANNSIM_CHECK(root >= 0 && root < size());
  if (my_index_ == root) {
    ANNSIM_CHECK_MSG(bufs.size() == std::size_t(size()),
                     "scatter: need one buffer per rank");
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      (void)isend(i, detail::kTagScatter, bufs[std::size_t(i)]);
    }
    return bufs[std::size_t(root)];
  }
  return recv(root, detail::kTagScatter).payload;
}

std::vector<std::vector<std::byte>> Comm::alltoallv(
    const std::vector<std::vector<std::byte>>& send_bufs) {
  ANNSIM_CHECK_MSG(send_bufs.size() == std::size_t(size()),
                   "alltoallv: need one buffer per rank");
  // All sends complete immediately (copied), so no deadlock risk.
  for (int i = 0; i < size(); ++i) {
    (void)isend(i, detail::kTagAlltoallv, send_bufs[std::size_t(i)]);
  }
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) {
    out[std::size_t(i)] = recv(i, detail::kTagAlltoallv).payload;
  }
  return out;
}

Comm Comm::split(int color) const {
  // Gather all colors at root 0, which assigns new communicator ids and
  // sends every member its new (comm_id, member list, index).
  Comm& self = const_cast<Comm&>(*this);
  auto colors = self.gather_values(color, 0);

  BinaryWriter my_info;
  if (my_index_ == 0) {
    std::map<int, std::vector<int>> groups;  // color -> comm indices (sorted)
    for (int i = 0; i < size(); ++i) groups[colors[std::size_t(i)]].push_back(i);

    std::map<int, std::uint64_t> comm_ids;
    for (const auto& [c, g] : groups) {
      comm_ids[c] = rt_->next_comm_id.fetch_add(1, std::memory_order_relaxed);
    }

    std::vector<std::vector<std::byte>> payloads(static_cast<std::size_t>(size()));
    for (const auto& [c, g] : groups) {
      for (std::size_t idx = 0; idx < g.size(); ++idx) {
        BinaryWriter w;
        w.write(comm_ids[c]);
        w.write(std::uint32_t(idx));
        std::vector<int> globals;
        globals.reserve(g.size());
        for (int member : g) globals.push_back(members_[std::size_t(member)]);
        w.write_vector(globals);
        payloads[std::size_t(g[idx])] = w.take();
      }
    }
    auto mine = self.scatter(payloads, 0);
    BinaryReader r(mine);
    const auto comm_id = r.read<std::uint64_t>();
    const auto idx = r.read<std::uint32_t>();
    auto globals = r.read_vector<int>();
    return Comm(rt_, comm_id, std::move(globals), int(idx));
  }

  auto mine = self.scatter({}, 0);
  BinaryReader r(mine);
  const auto comm_id = r.read<std::uint64_t>();
  const auto idx = r.read<std::uint32_t>();
  auto globals = r.read_vector<int>();
  return Comm(rt_, comm_id, std::move(globals), int(idx));
}

Window Comm::create_window(std::size_t local_bytes) {
  auto sizes = gather_values(std::uint64_t(local_bytes), 0);
  std::uint64_t win_id = 0;
  if (my_index_ == 0) {
    auto ws = std::make_shared<detail::WindowState>();
    ws->buffers.resize(std::size_t(size()));
    ws->target_mu.resize(std::size_t(size()));
    ws->locked.assign(std::size_t(size()),
                      std::vector<char>(std::size_t(size()), 0));
    ws->rt = rt_.get();
    ws->members = members_;
    for (int i = 0; i < size(); ++i) {
      ws->buffers[std::size_t(i)].resize(sizes[std::size_t(i)]);
      ws->target_mu[std::size_t(i)] = std::make_unique<std::mutex>();
    }
    win_id = rt_->next_window_id.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lk(rt_->win_mu);
    rt_->windows[win_id] = std::move(ws);
  }
  win_id = bcast_value(win_id, 0);

  std::shared_ptr<detail::WindowState> ws;
  {
    std::lock_guard lk(rt_->win_mu);
    ws = rt_->windows.at(win_id);
  }
  return Window(std::move(ws), my_index_);
}

TrafficStats Comm::traffic() const {
  return rt_->traffic[std::size_t(members_[std::size_t(my_index_)])].snapshot();
}

// -------------------------------------------------------------- Window ---

Window::Window(std::shared_ptr<detail::WindowState> state, int my_rank)
    : state_(std::move(state)), my_rank_(my_rank) {}

void Window::lock_shared(int target) {
  ANNSIM_CHECK(state_ != nullptr);
  auto& flag = state_->locked[std::size_t(my_rank_)][std::size_t(target)];
  ANNSIM_CHECK_MSG(flag == 0, "Window: nested lock at target " << target);
  flag = 1;
}

void Window::unlock(int target) {
  ANNSIM_CHECK(state_ != nullptr);
  auto& flag = state_->locked[std::size_t(my_rank_)][std::size_t(target)];
  ANNSIM_CHECK_MSG(flag == 1, "Window: unlock without lock at target " << target);
  flag = 0;
}

namespace {

void check_epoch(const detail::WindowState& ws, int origin, int target) {
  ANNSIM_CHECK_MSG(ws.locked[std::size_t(origin)][std::size_t(target)] == 1,
                   "Window: RMA op outside an access epoch (call lock_shared)");
}

void account_rma(detail::WindowState& ws, int origin, std::size_t bytes) {
  auto& stats = ws.rt->traffic[std::size_t(ws.members[std::size_t(origin)])];
  stats.rma_ops.fetch_add(1, std::memory_order_relaxed);
  stats.rma_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// RMA mutations from a dead/faulted origin vanish silently, like its sends.
bool rma_op_allowed(detail::WindowState& ws, int origin) {
  return ws.rt->fault == nullptr ||
         ws.rt->fault->allow_op(ws.members[std::size_t(origin)]);
}

}  // namespace

void Window::put(int target, std::size_t offset, std::span<const std::byte> data) {
  auto& ws = *state_;
  check_epoch(ws, my_rank_, target);
  auto& buf = ws.buffers[std::size_t(target)];
  ANNSIM_CHECK_MSG(offset + data.size() <= buf.size(), "Window::put out of range");
  account_rma(ws, my_rank_, data.size());
  if (!rma_op_allowed(ws, my_rank_)) return;
  std::lock_guard lk(*ws.target_mu[std::size_t(target)]);
  std::copy(data.begin(), data.end(), buf.begin() + std::ptrdiff_t(offset));
}

std::vector<std::byte> Window::get(int target, std::size_t offset,
                                   std::size_t len) {
  auto& ws = *state_;
  check_epoch(ws, my_rank_, target);
  auto& buf = ws.buffers[std::size_t(target)];
  ANNSIM_CHECK_MSG(offset + len <= buf.size(), "Window::get out of range");
  std::lock_guard lk(*ws.target_mu[std::size_t(target)]);
  account_rma(ws, my_rank_, len);
  return {buf.begin() + std::ptrdiff_t(offset),
          buf.begin() + std::ptrdiff_t(offset + len)};
}

void Window::get_accumulate(int target, std::size_t offset,
                            std::span<const std::byte> origin_data,
                            const MergeOp& op, std::vector<std::byte>* prev_out) {
  auto& ws = *state_;
  check_epoch(ws, my_rank_, target);
  auto& buf = ws.buffers[std::size_t(target)];
  ANNSIM_CHECK_MSG(offset + origin_data.size() <= buf.size(),
                   "Window::get_accumulate out of range");
  account_rma(ws, my_rank_, origin_data.size());
  if (!rma_op_allowed(ws, my_rank_)) return;
  std::lock_guard lk(*ws.target_mu[std::size_t(target)]);
  const std::span<std::byte> region(buf.data() + offset, origin_data.size());
  if (prev_out != nullptr) prev_out->assign(region.begin(), region.end());
  op(region, origin_data);
}

std::span<std::byte> Window::local_data() {
  ANNSIM_CHECK(state_ != nullptr);
  return state_->buffers[std::size_t(my_rank_)];
}

std::size_t Window::local_size() const {
  ANNSIM_CHECK(state_ != nullptr);
  return state_->buffers[std::size_t(my_rank_)].size();
}

// ------------------------------------------------------------- Runtime ---

Runtime::Runtime(int n_ranks) : state_(std::make_shared<detail::RuntimeState>()) {
  ANNSIM_CHECK_MSG(n_ranks >= 1, "Runtime needs at least one rank");
  state_->n_ranks = n_ranks;
  state_->mailboxes.reserve(std::size_t(n_ranks));
  for (int i = 0; i < n_ranks; ++i) {
    state_->mailboxes.push_back(std::make_unique<detail::Mailbox>());
  }
  state_->traffic = std::make_unique<detail::AtomicTraffic[]>(std::size_t(n_ranks));
}

Runtime::Runtime(int n_ranks, const FaultPlan& plan) : Runtime(n_ranks) {
  if (plan.enabled()) {
    state_->fault = std::make_shared<FaultInjector>(plan, n_ranks);
  }
}

Runtime::Runtime(int n_ranks, std::shared_ptr<FaultInjector> injector)
    : Runtime(n_ranks) {
  if (injector != nullptr) {
    ANNSIM_CHECK_MSG(injector->n_ranks() == n_ranks,
                     "shared FaultInjector covers " << injector->n_ranks()
                                                    << " ranks but the runtime has "
                                                    << n_ranks);
    state_->fault = std::move(injector);
  }
}

Runtime::~Runtime() = default;

int Runtime::size() const noexcept { return state_->n_ranks; }

void Runtime::run(const std::function<void(Comm&)>& rank_main) {
  const int n = state_->n_ranks;
  std::vector<int> world(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) world[std::size_t(i)] = i;

  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> threads;
  threads.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      Comm comm(state_, /*comm_id=*/0, world, i);
      try {
        rank_main(comm);
      } catch (...) {
        std::lock_guard lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

TrafficStats Runtime::total_traffic() const {
  TrafficStats total;
  for (int i = 0; i < state_->n_ranks; ++i) {
    total += state_->traffic[std::size_t(i)].snapshot();
  }
  return total;
}

std::vector<TrafficStats> Runtime::per_rank_traffic() const {
  std::vector<TrafficStats> out;
  out.reserve(std::size_t(state_->n_ranks));
  for (int i = 0; i < state_->n_ranks; ++i) {
    out.push_back(state_->traffic[std::size_t(i)].snapshot());
  }
  return out;
}

FaultInjector* Runtime::fault_injector() noexcept { return state_->fault.get(); }

std::vector<int> Runtime::failed_ranks() const {
  return state_->fault ? state_->fault->dead_ranks() : std::vector<int>{};
}

}  // namespace annsim::mpi
