#include "annsim/mpi/schedule.hpp"

#include <algorithm>
#include <condition_variable>
#include <sstream>

#include "annsim/common/error.hpp"

namespace annsim::mpi {

namespace {

/// Which controller (if any) tracks the current thread. A thread-local
/// pointer rather than a flag so helper threads a rank spawns — which inherit
/// nothing — are naturally untracked, and a stale registration can never leak
/// across controllers.
thread_local ScheduleController* t_controller = nullptr;

const char* kind_name(ChoiceKind k) {
  switch (k) {
    case ChoiceKind::kDeliver: return "deliver";
    case ChoiceKind::kTimeout: return "timeout";
    case ChoiceKind::kRma: return "rma";
  }
  return "?";
}

}  // namespace

std::string to_string(const ChoiceEvent& ev) {
  std::ostringstream os;
  os << kind_name(ev.kind) << " " << ev.source << "->" << ev.dest;
  if (ev.kind == ChoiceKind::kDeliver) os << " tag=" << ev.tag;
  os << " comm=" << ev.comm_id << " seq=" << ev.seq;
  return os.str();
}

/// A thread blocked at a choice point. Stack-allocated in the parking call;
/// linked into parked_ only while waiting, so no ownership questions arise.
struct ScheduleController::Parked {
  int rank = -1;
  std::uint64_t seq = 0;  ///< per-rank park counter (wake-order tiebreak)
  std::function<bool()> ready;  ///< null => only an explicit grant unparks
  bool timed = false;
  bool rma = false;
  ChoiceEvent ev{};  ///< the timeout/RMA event this park contributes
  bool woken = false;
  bool timed_out = false;
  bool granted = false;
  std::condition_variable cv;
};

struct ScheduleController::ChannelEntry {
  ChoiceEvent ev;
  std::function<void()> commit;
};

ScheduleController::ScheduleController() = default;

ScheduleController::~ScheduleController() {
  std::lock_guard lk(mu_);
  ANNSIM_CHECK_MSG(tracked_ == 0,
                   "ScheduleController destroyed with tracked threads");
  // Undelivered channels are dropped with the controller: their commit
  // closures reference mailboxes that may already be gone.
}

void ScheduleController::arm(std::shared_ptr<ScheduleStrategy> strategy,
                             ScheduleOptions opts) {
  ANNSIM_CHECK_MSG(strategy != nullptr, "arm: null strategy");
  std::lock_guard lk(mu_);
  ANNSIM_CHECK_MSG(tracked_ == 0, "arm: controller has live tracked threads");
  strategy_ = std::move(strategy);
  opts_ = opts;
  trace_ = ScheduleTrace{};
  stop_ = false;
  channels_.clear();
  channel_seq_.clear();
  rank_seq_.clear();
  armed_.store(true, std::memory_order_release);
}

ScheduleTrace ScheduleController::disarm() {
  std::lock_guard lk(mu_);
  ANNSIM_CHECK_MSG(tracked_ == 0, "disarm: controller has live tracked threads");
  armed_.store(false, std::memory_order_release);
  strategy_.reset();
  channels_.clear();
  return std::move(trace_);
}

bool ScheduleController::armed() const noexcept {
  return armed_.load(std::memory_order_acquire);
}

bool ScheduleController::begin_run(int n_threads) {
  std::lock_guard lk(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  ANNSIM_CHECK_MSG(tracked_ == 0, "begin_run: previous cohort still live");
  tracked_ = n_threads;
  runnable_ = n_threads;
  return true;
}

void ScheduleController::attach_thread() { t_controller = this; }

void ScheduleController::finish_thread() {
  t_controller = nullptr;
  std::lock_guard lk(mu_);
  --tracked_;
  --runnable_;
  if (tracked_ == 0) {
    flush_channels_locked();
  } else if (runnable_ == 0 && !stop_) {
    schedule_locked();
  }
}

bool ScheduleController::controls_this_thread() const noexcept {
  return t_controller == this && armed_.load(std::memory_order_acquire);
}

bool ScheduleController::submit(ChoiceEvent ev, std::function<void()> commit) {
  if (!controls_this_thread()) return false;
  std::lock_guard lk(mu_);
  const ChannelKey key{ev.source, ev.dest, ev.comm_id};
  ev.seq = channel_seq_[key]++;
  channels_[key].push_back(ChannelEntry{ev, std::move(commit)});
  return true;
}

void ScheduleController::park_and_wait(std::unique_lock<std::mutex>& lk,
                                       Parked& entry) {
  entry.seq = rank_seq_[entry.rank]++;
  parked_.push_back(&entry);
  --runnable_;
  if (runnable_ == 0 && !stop_) schedule_locked();
  entry.cv.wait(lk, [&entry] { return entry.woken; });
  parked_.erase(std::find(parked_.begin(), parked_.end(), &entry));
  if (stop_) {
    std::string why = trace_.error;
    lk.unlock();
    throw Error("annsim::explore: " + why);
  }
}

bool ScheduleController::wait_point(int rank, std::function<bool()> ready) {
  if (!controls_this_thread()) return false;
  std::unique_lock lk(mu_);
  if (stop_) throw Error("annsim::explore: " + trace_.error);
  if (ready()) return true;
  Parked entry;
  entry.rank = rank;
  entry.ready = std::move(ready);
  park_and_wait(lk, entry);
  return true;
}

ScheduleController::TimedOutcome ScheduleController::timed_wait_point(
    int rank, std::function<bool()> ready) {
  if (!controls_this_thread()) return TimedOutcome::kPassThrough;
  std::unique_lock lk(mu_);
  if (stop_) throw Error("annsim::explore: " + trace_.error);
  if (ready()) return TimedOutcome::kReady;
  Parked entry;
  entry.rank = rank;
  entry.ready = std::move(ready);
  entry.timed = true;
  entry.ev.kind = ChoiceKind::kTimeout;
  entry.ev.source = rank;
  entry.ev.dest = rank;
  entry.ev.seq = rank_seq_[rank];  // park_and_wait assigns the same value
  park_and_wait(lk, entry);
  return entry.timed_out ? TimedOutcome::kTimedOut : TimedOutcome::kReady;
}

bool ScheduleController::rma_point(int origin, int target,
                                   std::uint64_t window_id) {
  if (!controls_this_thread()) return false;
  std::unique_lock lk(mu_);
  if (stop_) throw Error("annsim::explore: " + trace_.error);
  Parked entry;
  entry.rank = origin;
  entry.rma = true;
  entry.ev.kind = ChoiceKind::kRma;
  entry.ev.source = origin;
  entry.ev.dest = target;
  entry.ev.comm_id = window_id;
  entry.ev.seq = rank_seq_[origin];
  park_and_wait(lk, entry);
  return true;
}

void ScheduleController::poke() {
  if (!armed_.load(std::memory_order_acquire)) return;
  std::lock_guard lk(mu_);
  if (tracked_ > 0 && runnable_ == 0 && !stop_) schedule_locked();
}

void ScheduleController::fold_digest_locked(const ChoiceEvent& ev) {
  auto fold = [&](std::uint64_t v) {
    // FNV-1a over the event fields, 8 bytes at a time.
    for (int i = 0; i < 8; ++i) {
      trace_.digest ^= (v >> (i * 8)) & 0xff;
      trace_.digest *= 1099511628211ULL;
    }
  };
  fold(std::uint64_t(ev.kind));
  fold((std::uint64_t(std::uint32_t(ev.source)) << 32) |
       std::uint64_t(std::uint32_t(ev.dest)));
  fold(std::uint64_t(std::uint32_t(ev.tag)));
  fold(ev.comm_id);
  fold(ev.seq);
}

std::string ScheduleController::dump_locked() const {
  std::ostringstream os;
  os << "  parked threads:\n";
  for (const auto* e : parked_) {
    os << "    rank " << e->rank
       << (e->rma ? " (rma op)" : e->timed ? " (bounded wait)" : " (wait)")
       << "\n";
  }
  os << "  undelivered channels:\n";
  for (const auto& [key, ch] : channels_) {
    if (ch.empty()) continue;
    os << "    " << std::get<0>(key) << "->" << std::get<1>(key) << " comm="
       << std::get<2>(key) << ": " << ch.size() << " message(s), head tag="
       << ch.front().ev.tag << "\n";
  }
  return os.str();
}

void ScheduleController::fail_locked(bool deadlock, std::string why) {
  stop_ = true;
  trace_.deadlocked = deadlock;
  trace_.error = std::move(why);
  for (auto* e : parked_) {
    if (!e->woken) {
      e->woken = true;
      ++runnable_;
      e->cv.notify_one();
    }
  }
}

/// Flush every queued delivery into its mailbox, in canonical channel order.
/// Runs when the last tracked thread finishes: the post-run state must show
/// each sent-but-unreceived message in its destination queue (the checker's
/// unmatched-send sweep reads the mailboxes, and uncontrolled callers are
/// allowed to receive a message in a *later* run).
void ScheduleController::flush_channels_locked() {
  for (auto& [key, ch] : channels_) {
    for (auto& entry : ch) {
      fold_digest_locked(entry.ev);
      ++trace_.commits;
      entry.commit();
    }
  }
  channels_.clear();
}

/// The scheduler. Runs with mu_ held whenever every tracked thread is parked.
/// Each pass either (a) wakes exactly one parked thread whose wait already
/// resolved — so execution stays serialized — or (b) commits one eligible
/// event, then loops to see whether that unblocked anyone. No eligible event
/// and nobody ready means the program genuinely cannot progress: deadlock.
void ScheduleController::schedule_locked() {
  for (;;) {
    // Wake phase: among parked threads whose wait has resolved (message
    // arrived, timeout fired, RMA granted), wake the canonically first.
    Parked* wake = nullptr;
    for (auto* e : parked_) {
      if (e->woken) continue;
      const bool resolved = e->timed_out || e->granted ||
                            (e->ready != nullptr && e->ready());
      if (!resolved) continue;
      if (wake == nullptr || std::tie(e->rank, e->seq) <
                                 std::tie(wake->rank, wake->seq)) {
        wake = e;
      }
    }
    if (wake != nullptr) {
      wake->woken = true;
      ++runnable_;
      wake->cv.notify_one();
      return;
    }

    // Commit phase: build the canonically sorted eligible set.
    std::vector<ChoiceEvent> eligible;
    for (const auto& [key, ch] : channels_) {
      if (!ch.empty()) eligible.push_back(ch.front().ev);
    }
    for (const auto* e : parked_) {
      if (e->timed || e->rma) eligible.push_back(e->ev);
    }
    std::sort(eligible.begin(), eligible.end());

    if (eligible.empty()) {
      fail_locked(/*deadlock=*/true,
                  "schedule deadlock: every rank is blocked and no event is "
                  "eligible\n" + dump_locked());
      return;
    }
    if (trace_.commits >= opts_.max_commits) {
      fail_locked(/*deadlock=*/false,
                  "schedule exceeded max_commits=" +
                      std::to_string(opts_.max_commits) +
                      " (livelock or runaway program)\n" + dump_locked());
      return;
    }

    std::size_t idx = 0;
    if (eligible.size() > 1) {
      ++trace_.branch_points;
      // A strategy may throw (strict replay divergence, DFS divergence) or
      // misbehave; either way the failure must go through fail_locked so
      // every parked thread is woken and unwinds — an escaping exception
      // here would leave stack-allocated Parked entries dangling in parked_
      // (and terminate the process when thrown out of finish_thread).
      std::string err;
      try {
        idx = strategy_->pick(eligible);
        if (idx >= eligible.size()) {
          err = "strategy picked index " + std::to_string(idx) + " of " +
                std::to_string(eligible.size());
        }
      } catch (const std::exception& e) {
        err = e.what();
      }
      // One byte per decision keeps replay tokens compact; eligible sets are
      // bounded by channels + parked ranks, far below 256 for any sane config.
      if (err.empty() && eligible.size() > 256) {
        err = "eligible set too large for one-byte replay choices";
      }
      if (!err.empty()) {
        fail_locked(/*deadlock=*/false, std::move(err));
        return;
      }
      trace_.choices.push_back(std::uint8_t(idx));
    }
    const ChoiceEvent chosen = eligible[idx];
    fold_digest_locked(chosen);
    ++trace_.commits;

    switch (chosen.kind) {
      case ChoiceKind::kDeliver: {
        const ChannelKey key{chosen.source, chosen.dest, chosen.comm_id};
        auto& ch = channels_[key];
        auto entry = std::move(ch.front());
        ch.pop_front();
        entry.commit();
        break;
      }
      case ChoiceKind::kTimeout:
      case ChoiceKind::kRma: {
        for (auto* e : parked_) {
          if ((e->timed || e->rma) && e->ev == chosen) {
            if (chosen.kind == ChoiceKind::kTimeout) e->timed_out = true;
            else e->granted = true;
            break;
          }
        }
        break;
      }
    }
  }
}

}  // namespace annsim::mpi
