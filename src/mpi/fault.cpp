#include "annsim/mpi/fault.hpp"

#include <algorithm>

#include "annsim/common/backoff.hpp"
#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"

namespace annsim::mpi {

namespace {

// Stateless uniform draw: a pure function of (seed, rank, op, salt) so the
// decision for "rank r's op number n" is identical across runs even though
// the rank's threads race to claim op indices.
double u01(std::uint64_t seed, int rank, std::uint64_t op, std::uint64_t salt) {
  SplitMix64 sm(seed ^ (std::uint64_t(rank) + 1) * 0x9e3779b97f4a7c15ULL ^
                (op + 1) * 0xc2b2ae3d27d4eb4fULL ^ salt * 0x165667b19e3779f9ULL);
  (void)sm.next();  // decorrelate nearby inputs
  return double(sm.next() >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, int n_ranks)
    : plan_(std::move(plan)), n_ranks_(n_ranks) {
  ANNSIM_CHECK_MSG(n_ranks_ >= 1, "FaultInjector needs at least one rank");
  ANNSIM_CHECK_MSG(
      plan_.drop_probability >= 0.0 && plan_.drop_probability <= 1.0,
      "fault.drop_probability must be within [0, 1]");
  ANNSIM_CHECK_MSG(
      plan_.delay_probability >= 0.0 && plan_.delay_probability <= 1.0,
      "fault.delay_probability must be within [0, 1]");
  ANNSIM_CHECK_MSG(plan_.delay.count() >= 0, "fault.delay cannot be negative");
  ANNSIM_CHECK_MSG(
      plan_.duplicate_probability >= 0.0 && plan_.duplicate_probability <= 1.0,
      "fault.duplicate_probability must be within [0, 1]");
  ANNSIM_CHECK_MSG(
      plan_.reorder_probability >= 0.0 && plan_.reorder_probability <= 1.0,
      "fault.reorder_probability must be within [0, 1]");
  for (const std::int32_t tag : plan_.reliable_tags) {
    ANNSIM_CHECK_MSG(tag >= 0, "fault.reliable_tags entry "
                                   << tag << " must be a user tag (>= 0)");
  }
  ranks_ = std::make_unique<RankState[]>(std::size_t(n_ranks_));
  for (const KillRule& kill : plan_.kills) {
    ANNSIM_CHECK_MSG(kill.rank >= 0 && kill.rank < n_ranks_,
                     "fault.kills rank " << kill.rank
                                         << " outside runtime ranks [0, "
                                         << n_ranks_ << ")");
    auto& rs = ranks_[std::size_t(kill.rank)];
    rs.kill_after_ops = std::min(rs.kill_after_ops, kill.after_ops);
    rs.kill_at_step = std::min(rs.kill_at_step, kill.at_step);
  }
  for (const DiskFaultRule& df : plan_.disk_faults) {
    ANNSIM_CHECK_MSG(df.rank >= 0 && df.rank < n_ranks_,
                     "fault.disk_faults rank " << df.rank
                                               << " outside runtime ranks [0, "
                                               << n_ranks_ << ")");
    auto& rs = ranks_[std::size_t(df.rank)];
    // Earliest rule wins when several target the same rank — the rank dies
    // at the first fault, so later rules could never fire anyway.
    if (df.at_lsn < rs.disk_fault_lsn.load(std::memory_order_relaxed)) {
      rs.disk_fault_lsn.store(df.at_lsn, std::memory_order_relaxed);
      rs.disk_fault_kind = df.kind;
    }
  }
}

bool FaultInjector::allow_op(int global_rank) {
  return classify_op(global_rank) != Delivery::kDrop;
}

Delivery FaultInjector::classify_op(int global_rank) {
  ANNSIM_CHECK(global_rank >= 0 && global_rank < n_ranks_);
  auto& rs = ranks_[std::size_t(global_rank)];
  const std::uint64_t op = rs.ops.fetch_add(1, std::memory_order_acq_rel);
  if (rs.dead.load(std::memory_order_acquire)) return Delivery::kDrop;
  if (op >= rs.kill_after_ops ||
      step_.load(std::memory_order_acquire) >= rs.kill_at_step) {
    rs.dead.store(true, std::memory_order_release);
    return Delivery::kDrop;
  }
  if (plan_.drop_probability > 0.0 &&
      u01(plan_.seed, global_rank, op, 1) < plan_.drop_probability) {
    return Delivery::kDrop;
  }
  if (plan_.delay_probability > 0.0 && plan_.delay.count() > 0 &&
      u01(plan_.seed, global_rank, op, 2) < plan_.delay_probability) {
    sleep_approx(
        std::chrono::duration_cast<std::chrono::microseconds>(plan_.delay));
  }
  // Mis-delivery rolls are independent of the drop/delay stream (distinct
  // salts), so enabling duplicates does not perturb which ops get dropped —
  // a chaos run stays comparable as rules are layered on.
  if (plan_.duplicate_probability > 0.0 &&
      u01(plan_.seed, global_rank, op, 3) < plan_.duplicate_probability) {
    return Delivery::kDuplicate;
  }
  if (plan_.reorder_probability > 0.0 &&
      u01(plan_.seed, global_rank, op, 4) < plan_.reorder_probability) {
    return Delivery::kReorder;
  }
  return Delivery::kDeliver;
}

bool FaultInjector::allow_reliable_op(int global_rank) {
  ANNSIM_CHECK(global_rank >= 0 && global_rank < n_ranks_);
  auto& rs = ranks_[std::size_t(global_rank)];
  if (rs.dead.load(std::memory_order_acquire)) return false;
  // Evaluate kill triggers without claiming an op index: a rank whose budget
  // already ran out (or whose step came) is dead even if its next send
  // happens to be a control-plane message.
  if (rs.ops.load(std::memory_order_acquire) >= rs.kill_after_ops ||
      step_.load(std::memory_order_acquire) >= rs.kill_at_step) {
    rs.dead.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

std::optional<DiskFaultKind> FaultInjector::disk_fault_at(int global_rank,
                                                          std::uint64_t lsn) {
  ANNSIM_CHECK(global_rank >= 0 && global_rank < n_ranks_);
  auto& rs = ranks_[std::size_t(global_rank)];
  std::uint64_t armed = rs.disk_fault_lsn.load(std::memory_order_acquire);
  if (lsn < armed) return std::nullopt;
  // Fire exactly once: the CAS loser observes kNeverFires and stands down.
  if (!rs.disk_fault_lsn.compare_exchange_strong(armed, kNeverFires,
                                                 std::memory_order_acq_rel)) {
    return std::nullopt;
  }
  rs.dead.store(true, std::memory_order_release);
  return rs.disk_fault_kind;
}

void FaultInjector::revive(int global_rank) {
  ANNSIM_CHECK(global_rank >= 0 && global_rank < n_ranks_);
  auto& rs = ranks_[std::size_t(global_rank)];
  // Plain writes are fine: revive() is specified to run between runtime
  // phases, after every rank thread has been joined.
  rs.kill_after_ops = kNeverFires;
  rs.kill_at_step = kNeverFires;
  rs.disk_fault_lsn.store(kNeverFires, std::memory_order_release);
  rs.dead.store(false, std::memory_order_release);
}

bool FaultInjector::is_reliable(std::int32_t tag) const noexcept {
  return std::find(plan_.reliable_tags.begin(), plan_.reliable_tags.end(),
                   tag) != plan_.reliable_tags.end();
}

bool FaultInjector::is_dead(int global_rank) const {
  ANNSIM_CHECK(global_rank >= 0 && global_rank < n_ranks_);
  return ranks_[std::size_t(global_rank)].dead.load(std::memory_order_acquire);
}

std::vector<int> FaultInjector::dead_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < n_ranks_; ++r) {
    if (ranks_[std::size_t(r)].dead.load(std::memory_order_acquire)) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace annsim::mpi
