#include "annsim/common/stats.hpp"

#include <cstdio>

#include "annsim/common/error.hpp"

namespace annsim {

double percentile(std::span<const double> sample, double p) {
  ANNSIM_CHECK(!sample.empty());
  ANNSIM_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = p / 100.0 * double(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - double(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

Histogram::Histogram(double lo, double hi, double growth) : lo_(lo), growth_(growth) {
  ANNSIM_CHECK_MSG(lo > 0 && hi > lo, "Histogram range must satisfy 0 < lo < hi");
  ANNSIM_CHECK_MSG(growth > 1.0, "Histogram bucket growth must exceed 1");
  inv_log_growth_ = 1.0 / std::log(growth);
  const auto n_buckets = static_cast<std::size_t>(
      std::ceil(std::log(hi / lo) * inv_log_growth_));
  counts_.assign(n_buckets + 2, 0);  // + underflow and overflow
}

std::size_t Histogram::bucket_of(double x) const noexcept {
  if (!(x >= lo_)) return 0;  // underflow (also catches NaN deterministically)
  const auto i = static_cast<std::size_t>(std::log(x / lo_) * inv_log_growth_);
  return std::min(i + 1, counts_.size() - 1);
}

std::pair<double, double> Histogram::bucket_bounds(std::size_t b) const noexcept {
  double lower, upper;
  if (b == 0) {
    lower = raw_.min();
    upper = lo_;
  } else if (b == counts_.size() - 1) {
    lower = lo_ * std::pow(growth_, double(b - 1));
    upper = raw_.max();
  } else {
    lower = lo_ * std::pow(growth_, double(b - 1));
    upper = lower * growth_;
  }
  lower = std::clamp(lower, raw_.min(), raw_.max());
  upper = std::clamp(upper, raw_.min(), raw_.max());
  return {lower, std::max(upper, lower)};
}

void Histogram::add(double x) noexcept {
  ++counts_[bucket_of(x)];
  raw_.add(x);
}

void Histogram::merge(const Histogram& o) {
  ANNSIM_CHECK_MSG(counts_.size() == o.counts_.size() && lo_ == o.lo_ &&
                       growth_ == o.growth_,
                   "cannot merge histograms with different layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  raw_.merge(o.raw_);
}

double Histogram::percentile(double p) const {
  ANNSIM_CHECK(p >= 0.0 && p <= 100.0);
  const std::size_t n = raw_.count();
  if (n == 0) return 0.0;
  if (p == 0.0) return raw_.min();
  if (p == 100.0 || n == 1) return raw_.max();
  // Same rank convention as percentile(span, p): rank in [0, n-1].
  const double rank = p / 100.0 * double(n - 1);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t c = counts_[b];
    if (c == 0) continue;
    if (rank < double(before + c)) {
      const auto [lower, upper] = bucket_bounds(b);
      // Spread the bucket's c samples evenly across its value range.
      const double frac = (rank - double(before) + 0.5) / double(c);
      return std::clamp(lower + frac * (upper - lower), raw_.min(), raw_.max());
    }
    before += c;
  }
  return raw_.max();  // rank == n-1 fell past the last counted bucket
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  auto at = [&](double p) {
    const double pos = p / 100.0 * double(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - double(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  };
  s.min = v.front();
  s.p25 = at(25);
  s.median = at(50);
  s.p75 = at(75);
  s.max = v.back();
  s.count = v.size();
  double sum = 0;
  for (double x : v) sum += x;
  s.mean = sum / double(v.size());
  return s;
}

double median(std::span<const double> sample) { return percentile(sample, 50.0); }

std::string to_string(const Summary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.3g/%.3g/%.3g/%.3g/%.3g (mean %.3g)",
                s.min, s.p25, s.median, s.p75, s.max, s.mean);
  return buf;
}

}  // namespace annsim
