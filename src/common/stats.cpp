#include "annsim/common/stats.hpp"

#include <cstdio>

#include "annsim/common/error.hpp"

namespace annsim {

double percentile(std::span<const double> sample, double p) {
  ANNSIM_CHECK(!sample.empty());
  ANNSIM_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = p / 100.0 * double(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - double(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  auto at = [&](double p) {
    const double pos = p / 100.0 * double(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - double(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  };
  s.min = v.front();
  s.p25 = at(25);
  s.median = at(50);
  s.p75 = at(75);
  s.max = v.back();
  s.count = v.size();
  double sum = 0;
  for (double x : v) sum += x;
  s.mean = sum / double(v.size());
  return s;
}

double median(std::span<const double> sample) { return percentile(sample, 50.0); }

std::string to_string(const Summary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.3g/%.3g/%.3g/%.3g/%.3g (mean %.3g)",
                s.min, s.p25, s.median, s.p75, s.max, s.mean);
  return buf;
}

}  // namespace annsim
