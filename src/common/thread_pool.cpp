#include "annsim/common/thread_pool.hpp"

#include <algorithm>

namespace annsim {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    submit([&body, lo, hi] { body(lo, hi); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_job_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard lk(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace annsim
