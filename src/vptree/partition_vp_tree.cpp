#include "annsim/vptree/partition_vp_tree.hpp"

#include <algorithm>
#include <bit>
#include <queue>

#include "annsim/common/error.hpp"
#include "annsim/vptree/vantage.hpp"

namespace annsim::vptree {

namespace {

struct Builder {
  const data::Dataset& data;
  const PartitionVpTreeParams& params;
  simd::DistanceComputer dist;
  std::vector<PartitionVpTree::Node> nodes;
  std::vector<PartitionId> assignment;
  PartitionId next_partition = 0;
  Rng rng;

  Builder(const data::Dataset& d, const PartitionVpTreeParams& p)
      : data(d),
        params(p),
        dist(p.metric, d.dim()),
        assignment(d.size(), kInvalidPartition),
        rng(p.seed) {}

  /// Recursively split rows[begin, end) into `parts` partitions.
  std::int32_t build(std::vector<std::size_t>& rows, std::size_t begin,
                     std::size_t end, std::size_t parts) {
    const std::int32_t id = std::int32_t(nodes.size());
    nodes.emplace_back();

    if (parts == 1) {
      nodes[id].leaf = next_partition++;
      for (std::size_t i = begin; i < end; ++i) {
        assignment[rows[i]] = nodes[id].leaf;
      }
      return id;
    }

    ANNSIM_CHECK_MSG(end - begin >= parts,
                     "cannot split " << (end - begin) << " rows into " << parts
                                     << " partitions");
    const std::span<const std::size_t> range(rows.data() + begin, end - begin);
    const std::size_t vp_row = select_vantage_point_sampled(
        data, range, params.vantage_candidates, params.vantage_sample, dist, rng);
    const float* vp = data.row(vp_row);
    nodes[id].vp.assign(vp, vp + data.dim());

    // Median split: left = inside the vantage sphere (the paper equates the
    // median radius with the equipartitioning sphere).
    const std::size_t mid = begin + (end - begin) / 2;
    std::nth_element(rows.begin() + std::ptrdiff_t(begin),
                     rows.begin() + std::ptrdiff_t(mid),
                     rows.begin() + std::ptrdiff_t(end),
                     [&](std::size_t a, std::size_t b) {
                       return dist(vp, data.row(a)) < dist(vp, data.row(b));
                     });
    nodes[id].mu = dist(vp, data.row(rows[mid]));

    const std::int32_t left = build(rows, begin, mid, parts / 2);
    const std::int32_t right = build(rows, mid, end, parts - parts / 2);
    nodes[id].left = left;
    nodes[id].right = right;
    return id;
  }
};

}  // namespace

PartitionVpTree::PartitionVpTree(std::vector<Node> nodes, std::int32_t root,
                                 std::size_t n_partitions, std::size_t dim,
                                 PartitionVpTreeParams params)
    : nodes_(std::move(nodes)),
      root_(root),
      n_partitions_(n_partitions),
      dim_(dim),
      params_(params) {}

PartitionBuildResult PartitionVpTree::build(const data::Dataset& data,
                                            const PartitionVpTreeParams& params) {
  ANNSIM_CHECK(params.target_partitions >= 1);
  ANNSIM_CHECK_MSG(std::has_single_bit(params.target_partitions),
                   "target_partitions must be a power of two");
  ANNSIM_CHECK(data.size() >= params.target_partitions);
  ANNSIM_CHECK_MSG(simd::is_true_metric(params.metric),
                   "VP routing requires a true metric");

  Builder b(data, params);
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const std::int32_t root = b.build(rows, 0, rows.size(), params.target_partitions);

  PartitionBuildResult result{
      PartitionVpTree(std::move(b.nodes), root, params.target_partitions,
                      data.dim(), params),
      std::move(b.assignment),
      {}};
  result.partition_sizes.assign(params.target_partitions, 0);
  for (PartitionId p : result.assignment) {
    ANNSIM_CHECK(p != kInvalidPartition);
    ++result.partition_sizes[p];
  }
  return result;
}

std::vector<PartitionId> PartitionVpTree::route_ball(const float* query,
                                                     float radius) const {
  ANNSIM_CHECK(root_ >= 0);
  const simd::DistanceComputer dist(params_.metric, dim_);
  std::vector<PartitionId> out;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[std::size_t(stack.back())];
    stack.pop_back();
    if (n.leaf != kInvalidPartition) {
      out.push_back(n.leaf);
      continue;
    }
    const float d = dist(query, n.vp.data());
    if (d - radius <= n.mu) stack.push_back(n.left);    // ball reaches inside
    if (d + radius >= n.mu) stack.push_back(n.right);   // ball reaches outside
  }
  std::sort(out.begin(), out.end());
  return out;
}

PartitionId PartitionVpTree::route_nearest(const float* query) const {
  ANNSIM_CHECK(root_ >= 0);
  const simd::DistanceComputer dist(params_.metric, dim_);
  std::int32_t cur = root_;
  for (;;) {
    const Node& n = nodes_[std::size_t(cur)];
    if (n.leaf != kInvalidPartition) return n.leaf;
    cur = dist(query, n.vp.data()) < n.mu ? n.left : n.right;
  }
}

RoutingDecision PartitionVpTree::route_topk(const float* query,
                                            std::size_t max_partitions) const {
  ANNSIM_CHECK(root_ >= 0);
  ANNSIM_CHECK(max_partitions >= 1);
  const simd::DistanceComputer dist(params_.metric, dim_);

  // Best-first traversal on the lower-bound distance from the query to each
  // subtree's region (|d(q,vp) - mu| across the separating sphere).
  struct Entry {
    float lb;
    std::int32_t node;
  };
  const auto worse = [](const Entry& a, const Entry& b) noexcept {
    return a.lb > b.lb;  // min-heap on lower bound
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);
  heap.push({0.f, root_});

  RoutingDecision out;
  while (!heap.empty() && out.partitions.size() < max_partitions) {
    const Entry e = heap.top();
    heap.pop();
    const Node& n = nodes_[std::size_t(e.node)];
    if (n.leaf != kInvalidPartition) {
      out.partitions.push_back(n.leaf);
      out.lower_bounds.push_back(e.lb);
      continue;
    }
    const float d = dist(query, n.vp.data());
    const float left_lb = d < n.mu ? e.lb : std::max(e.lb, d - n.mu);
    const float right_lb = d >= n.mu ? e.lb : std::max(e.lb, n.mu - d);
    heap.push({left_lb, n.left});
    heap.push({right_lb, n.right});
  }
  return out;
}

std::size_t PartitionVpTree::depth() const {
  if (root_ < 0) return 0;
  std::size_t max_depth = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[std::size_t(node)];
    if (n.leaf != kInvalidPartition) {
      max_depth = std::max(max_depth, d);
      continue;
    }
    stack.push_back({n.left, d + 1});
    stack.push_back({n.right, d + 1});
  }
  return max_depth;
}

void PartitionVpTree::serialize(BinaryWriter& w) const {
  w.write(std::uint32_t{0x56505431});  // "VPT1"
  w.write(std::uint64_t(n_partitions_));
  w.write(std::uint64_t(dim_));
  w.write(std::int32_t(root_));
  w.write(std::int32_t(params_.metric));
  w.write(std::uint64_t(params_.target_partitions));
  w.write(std::uint64_t(params_.vantage_candidates));
  w.write(std::uint64_t(params_.vantage_sample));
  w.write(params_.seed);
  w.write(std::uint64_t(nodes_.size()));
  for (const Node& n : nodes_) {
    w.write_span(std::span<const float>(n.vp));
    w.write(n.mu);
    w.write(n.left);
    w.write(n.right);
    w.write(n.leaf);
  }
}

PartitionVpTree PartitionVpTree::deserialize(BinaryReader& r) {
  ANNSIM_CHECK_MSG(r.read<std::uint32_t>() == 0x56505431, "bad VPT file magic");
  PartitionVpTree t;
  t.n_partitions_ = r.read<std::uint64_t>();
  t.dim_ = r.read<std::uint64_t>();
  t.root_ = r.read<std::int32_t>();
  t.params_.metric = simd::Metric(r.read<std::int32_t>());
  t.params_.target_partitions = r.read<std::uint64_t>();
  t.params_.vantage_candidates = r.read<std::uint64_t>();
  t.params_.vantage_sample = r.read<std::uint64_t>();
  t.params_.seed = r.read<std::uint64_t>();
  const auto n_nodes = r.read<std::uint64_t>();
  t.nodes_.resize(n_nodes);
  for (auto& n : t.nodes_) {
    n.vp = r.read_vector<float>();
    n.mu = r.read<float>();
    n.left = r.read<std::int32_t>();
    n.right = r.read<std::int32_t>();
    n.leaf = r.read<PartitionId>();
  }
  return t;
}

}  // namespace annsim::vptree
