#include "annsim/vptree/vantage.hpp"

#include <algorithm>

#include "annsim/common/error.hpp"
#include "annsim/common/stats.hpp"

namespace annsim::vptree {

double vantage_spread(const float* candidate, const data::Dataset& data,
                      std::span<const std::size_t> eval_rows,
                      const simd::DistanceComputer& dist) {
  ANNSIM_CHECK(!eval_rows.empty());
  std::vector<double> dists;
  dists.reserve(eval_rows.size());
  for (std::size_t r : eval_rows) {
    dists.push_back(dist(candidate, data.row(r)));
  }
  const double med = median(dists);
  double second_moment = 0.0;
  for (double d : dists) {
    const double dev = d - med;
    second_moment += dev * dev;
  }
  return second_moment / double(dists.size());
}

std::size_t select_vantage_point(const data::Dataset& data,
                                 std::span<const std::size_t> candidate_rows,
                                 std::span<const std::size_t> eval_rows,
                                 const simd::DistanceComputer& dist) {
  ANNSIM_CHECK(!candidate_rows.empty() && !eval_rows.empty());
  std::size_t best = candidate_rows[0];
  double best_spread = -1.0;
  for (std::size_t c : candidate_rows) {
    const double spread = vantage_spread(data.row(c), data, eval_rows, dist);
    if (spread > best_spread) {
      best_spread = spread;
      best = c;
    }
  }
  return best;
}

std::size_t select_vantage_point_sampled(const data::Dataset& data,
                                         std::span<const std::size_t> rows,
                                         std::size_t n_candidates,
                                         std::size_t n_eval,
                                         const simd::DistanceComputer& dist,
                                         Rng& rng) {
  ANNSIM_CHECK(!rows.empty());
  auto sample = [&](std::size_t n) {
    std::vector<std::size_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(rows[rng.uniform_below(rows.size())]);
    }
    return out;
  };
  const auto candidates = sample(std::min(n_candidates, rows.size()));
  const auto eval = sample(std::min(n_eval, rows.size()));
  return select_vantage_point(data, candidates, eval, dist);
}

}  // namespace annsim::vptree
