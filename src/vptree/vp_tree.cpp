#include "annsim/vptree/vp_tree.hpp"

#include <algorithm>

#include "annsim/common/error.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/vptree/vantage.hpp"

namespace annsim::vptree {

/// Thin adapter bundling the TopK with an eval counter during recursion.
class TopKRef {
 public:
  TopKRef(std::size_t k, std::size_t* evals) : topk_(k), evals_(evals) {}
  TopK topk_;
  std::size_t* evals_;
};

VpTree::VpTree(const data::Dataset* data, VpTreeParams params)
    : data_(data),
      params_(params),
      dist_(params.metric, data->dim()) {
  ANNSIM_CHECK(data_ != nullptr);
  ANNSIM_CHECK_MSG(simd::is_true_metric(params_.metric),
                   "VP-tree requires a true metric");
  if (data_->empty()) return;
  std::vector<std::size_t> rows(data_->size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  nodes_.reserve(data_->size());
  Rng rng(params_.seed);
  root_ = build(rows, 0, rows.size(), rng);
}

std::int32_t VpTree::build(std::vector<std::size_t>& rows, std::size_t begin,
                           std::size_t end, Rng& rng) {
  if (begin >= end) return -1;
  const std::int32_t id = std::int32_t(nodes_.size());
  nodes_.emplace_back();

  const std::span<const std::size_t> range(rows.data() + begin, end - begin);
  const std::size_t vp_row =
      range.size() == 1
          ? range[0]
          : select_vantage_point_sampled(*data_, range,
                                         params_.vantage_candidates,
                                         params_.vantage_sample, dist_, rng);
  nodes_[id].row = vp_row;

  // Move the vantage point out of the working range.
  const auto it = std::find(rows.begin() + std::ptrdiff_t(begin),
                            rows.begin() + std::ptrdiff_t(end), vp_row);
  std::iter_swap(it, rows.begin() + std::ptrdiff_t(begin));
  const std::size_t lo = begin + 1;
  if (lo >= end) return id;  // leaf: vantage point only

  // Median split on distance to the vantage point.
  const float* vp = data_->row(vp_row);
  const std::size_t mid = lo + (end - lo) / 2;
  std::nth_element(rows.begin() + std::ptrdiff_t(lo),
                   rows.begin() + std::ptrdiff_t(mid),
                   rows.begin() + std::ptrdiff_t(end),
                   [&](std::size_t a, std::size_t b) {
                     return dist_(vp, data_->row(a)) < dist_(vp, data_->row(b));
                   });
  nodes_[id].mu = dist_(vp, data_->row(rows[mid]));

  const std::int32_t left = build(rows, lo, mid, rng);
  const std::int32_t right = build(rows, mid, end, rng);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void VpTree::search_node(std::int32_t node, const float* query,
                         TopKRef& ref) const {
  if (node < 0) return;
  const Node& n = nodes_[std::size_t(node)];
  const float d = dist_(query, data_->row(n.row));
  if (ref.evals_ != nullptr) ++*ref.evals_;
  ref.topk_.push(d, data_->id(n.row));

  if (n.left < 0 && n.right < 0) return;
  const float tau = ref.topk_.worst_dist();

  if (d < n.mu) {
    // Query ball centred inside the vantage sphere: search left first.
    if (d - tau <= n.mu) search_node(n.left, query, ref);
    if (d + ref.topk_.worst_dist() >= n.mu) search_node(n.right, query, ref);
  } else {
    if (d + tau >= n.mu) search_node(n.right, query, ref);
    if (d - ref.topk_.worst_dist() <= n.mu) search_node(n.left, query, ref);
  }
}

std::vector<Neighbor> VpTree::search(const float* query, std::size_t k,
                                     std::size_t* evals_out) const {
  ANNSIM_CHECK(k > 0);
  if (root_ < 0) return {};
  if (evals_out != nullptr) *evals_out = 0;
  TopKRef ref(k, evals_out);
  search_node(root_, query, ref);
  return ref.topk_.take_sorted();
}

}  // namespace annsim::vptree
