#include "annsim/cluster/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "annsim/common/error.hpp"
#include "annsim/common/timer.hpp"
#include "annsim/common/topk.hpp"

namespace annsim::cluster {

double CalibratedCosts::hnsw_query_seconds(std::size_t partition_n) const {
  const double n = std::max<double>(2.0, double(partition_n));
  return hnsw_query_c * std::log(n) * core_speed_ratio;
}

double CalibratedCosts::hnsw_build_seconds(std::size_t partition_n) const {
  const double n = std::max<double>(2.0, double(partition_n));
  return hnsw_insert_c * n * std::log(n) * core_speed_ratio;
}

double CalibratedCosts::exact_search_seconds(std::size_t partition_n) const {
  return exact_scan_per_point * double(partition_n) * core_speed_ratio;
}

double CalibratedCosts::route_seconds(std::size_t n_partitions) const {
  const double p = std::max<double>(2.0, double(n_partitions));
  return route_c * std::log(p) * core_speed_ratio;
}

namespace {

/// Smooth ramp from 1 to `full` as n grows past `knee` (over ~1.5 decades);
/// a step function would put an artificial cliff into the scaling curves
/// right where partitions cross the cache size.
double memory_ramp(std::size_t n, std::size_t knee, double full) {
  if (n <= knee) return 1.0;
  const double s =
      std::min(1.0, std::log(double(n) / double(knee)) / std::log(32.0));
  return 1.0 + (full - 1.0) * s;
}

}  // namespace

double CalibratedCosts::memory_factor(std::size_t partition_n) const {
  return memory_ramp(partition_n, cache_resident_n, dram_penalty);
}

double CalibratedCosts::hnsw_query_seconds_at_scale(
    std::size_t partition_n, double beam_override) const {
  const double beam = beam_override > 0.0 ? beam_override : beam_ratio;
  return hnsw_query_seconds(partition_n) * beam *
         memory_ramp(partition_n, cache_resident_n, dram_penalty);
}

double CalibratedCosts::exact_search_seconds_at_scale(
    std::size_t partition_n, double scan_fraction) const {
  // The scan itself is bandwidth-bound rather than latency-bound (a quarter
  // of the pointer-chasing penalty); tree traversal adds its own factor.
  return exact_search_seconds(partition_n) * scan_fraction *
         kd_traversal_overhead *
         memory_ramp(partition_n, cache_resident_n, dram_penalty / 4.0);
}

CalibratedCosts calibrate(const data::Dataset& base, const data::Dataset& queries,
                          const CalibrationConfig& config) {
  ANNSIM_CHECK(base.size() >= config.large_n);
  ANNSIM_CHECK(config.small_n >= 64 && config.small_n < config.large_n);
  ANNSIM_CHECK(!queries.empty());

  CalibratedCosts out;
  const std::size_t dim = base.dim();
  const std::size_t nq = std::min(config.n_queries, queries.size());

  // The two micro-measurements below are noise-hardened for loaded hosts
  // (parallel test runs, CI): a timing window that straddles a scheduler
  // preemption reads 10x slow, and on an oversubscribed machine *every* long
  // window straddles one. So each cost is taken as the min over many short
  // windows — each well under a timeslice, so only one of them has to land
  // cleanly — and preemptions only ever add time, making the fastest window
  // the closest to the true cost.

  // --- distance evaluation cost ---
  {
    const simd::DistanceComputer dist(config.hnsw.metric, dim);
    volatile float sink = 0.f;
    const std::size_t reps = 2000;  // ~70us per window at 128-d
    constexpr int kTrials = 16;
    for (int trial = 0; trial < kTrials; ++trial) {
      WallTimer t;
      for (std::size_t i = 0; i < reps; ++i) {
        const std::size_t j = std::size_t(trial) * reps + i;
        sink = sink + dist(base.row(j % config.small_n),
                           base.row((j * 7 + 1) % config.small_n));
      }
      const double per_eval = t.seconds() / double(reps);
      if (trial == 0 || per_eval < out.dist_eval) out.dist_eval = per_eval;
    }
  }

  // --- exact scan cost per point (distance + heap maintenance) ---
  {
    const simd::DistanceComputer dist(config.hnsw.metric, dim);
    for (std::size_t q = 0; q < nq; ++q) {
      WallTimer t;
      TopK topk(config.k);
      for (std::size_t i = 0; i < config.small_n; ++i) {
        topk.push(dist(queries.row(q), base.row(i)), GlobalId(i));
      }
      const double per_point = t.seconds() / double(config.small_n);
      if (q == 0 || per_point < out.exact_scan_per_point) {
        out.exact_scan_per_point = per_point;
      }
    }
  }

  // --- HNSW build + query at two sizes; fit c from the ln-n law ---
  auto measure = [&](std::size_t n, double* insert_c, double* query_c) {
    data::Dataset sub = base.slice(0, n);
    hnsw::HnswIndex index(&sub, config.hnsw);
    WallTimer tb;
    index.build();
    const double build_s = tb.seconds();
    *insert_c = build_s / double(n) / std::log(double(n));

    WallTimer ts;
    for (std::size_t q = 0; q < nq; ++q) {
      (void)index.search(queries.row(q), config.k);
    }
    *query_c = ts.seconds() / double(nq) / std::log(double(n));
  };

  double ic_small = 0, qc_small = 0, ic_large = 0, qc_large = 0;
  measure(config.small_n, &ic_small, &qc_small);
  measure(config.large_n, &ic_large, &qc_large);
  // Geometric mean of the two fits damps measurement noise.
  out.hnsw_insert_c = std::sqrt(ic_small * ic_large);
  out.hnsw_query_c = std::sqrt(qc_small * qc_large);

  // --- routing cost: a VP-tree descent is ~1 distance per level plus a
  // handful of heap operations; model as 4 distance evals per level.
  out.route_c = 4.0 * out.dist_eval;

  return out;
}

CalibratedCosts default_costs() {
  // Measured on a SIFT-like 128-d corpus, x86-64 AVX2 host, M=16, ef=64.
  CalibratedCosts c;
  c.hnsw_query_c = 9.0e-6;        // ~85 us per query at n=16k
  c.hnsw_insert_c = 2.2e-5;       // ~210 us per insert at n=16k
  c.dist_eval = 3.5e-8;           // 35 ns per 128-d L2
  c.exact_scan_per_point = 4.5e-8;
  c.route_c = 1.4e-7;
  return c;
}

}  // namespace annsim::cluster
