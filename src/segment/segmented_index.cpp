#include "annsim/segment/segmented_index.hpp"

#include <algorithm>
#include <utility>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/common/topk.hpp"

namespace annsim::segment {

namespace {

constexpr std::uint32_t kMagic = 0x414E5347;  // "ANSG"
/// v1: full-float segments, header ends at next_segment_id. Written whenever
/// quantize_frozen is off so non-quantized images stay byte-identical to
/// every build that came before (the checkpoint store's immutable seg_<id>
/// blobs depend on that).
constexpr std::uint32_t kVersionFloat = 1;
/// v2: header appends float_cache_fraction (its presence implies
/// quantize_frozen); each segment blob is prefixed with a kind byte.
constexpr std::uint32_t kVersionQuant = 2;
constexpr std::uint8_t kSegKindFloat = 0;
constexpr std::uint8_t kSegKindSq8 = 1;

/// Rows of a Dataset packed dim-tight (the SIMD padding is a storage
/// concern, not a wire concern).
std::vector<float> pack_rows(const data::Dataset& ds, std::size_t count) {
  std::vector<float> packed(count * ds.dim());
  for (std::size_t i = 0; i < count; ++i) {
    auto row = ds.row_span(i);
    std::copy(row.begin(), row.end(), packed.begin() + i * ds.dim());
  }
  return packed;
}

}  // namespace

SegmentedIndex::SegmentedIndex(SegmentedParams params, std::size_t dim)
    : params_(params), dim_(dim) {
  ANNSIM_CHECK_MSG(dim_ > 0, "SegmentedIndex requires a nonzero dimension "
                             "(pass Dataset(0, dim) for a delta-only index)");
  ANNSIM_CHECK_MSG(params_.delta_capacity >= 1,
                   "delta_capacity must be nonzero");
  if (params_.quantize_frozen) {
    ANNSIM_CHECK_MSG(params_.hnsw.metric == simd::Metric::kL2 ||
                         params_.hnsw.metric == simd::Metric::kInnerProduct,
                     "quantize_frozen requires an L2 or InnerProduct metric "
                     "(no uint8 kernels for "
                         << simd::metric_name(params_.hnsw.metric) << ")");
    ANNSIM_CHECK_MSG(params_.float_cache_fraction >= 0.0 &&
                         params_.float_cache_fraction <= 1.0,
                     "float_cache_fraction must be within [0, 1]");
  }
}

SegmentedIndex::SegmentedIndex(data::Dataset base, SegmentedParams params,
                               ThreadPool* pool)
    : SegmentedIndex(params, base.dim()) {
  auto v = std::make_shared<View>();
  v->tombs = std::make_shared<const std::unordered_set<GlobalId>>();
  if (!base.empty()) {
    for (GlobalId id : base.ids()) {
      const bool fresh = live_.insert(id).second;
      ANNSIM_CHECK_MSG(fresh, "SegmentedIndex: duplicate global id "
                                  << id << " in the base dataset");
    }
    v->segments.push_back(freeze_rows(std::move(base), pool));
  }
  v->delta = make_delta();
  view_ = std::move(v);
}

std::shared_ptr<const SegmentedIndex::View> SegmentedIndex::snapshot() const {
  std::lock_guard lk(view_mu_);
  return view_;
}

void SegmentedIndex::publish(std::shared_ptr<const View> v) {
  std::lock_guard lk(view_mu_);
  view_ = std::move(v);
}

std::shared_ptr<SegmentedIndex::Delta> SegmentedIndex::make_delta() const {
  auto d = std::make_shared<Delta>();
  d->data = std::make_unique<data::Dataset>(params_.delta_capacity, dim_);
  d->index = std::make_unique<hnsw::HnswIndex>(d->data.get(), params_.hnsw);
  return d;
}

std::shared_ptr<const SegmentedIndex::Segment> SegmentedIndex::freeze_rows(
    data::Dataset rows, ThreadPool* pool,
    std::span<const std::uint64_t> heat) {
  auto seg = std::make_shared<Segment>();
  seg->id = next_segment_id_++;
  if (params_.quantize_frozen) {
    // Quantize on freeze: the codec trains on exactly the rows it encodes,
    // the graph is built on the floats, and the full-float rows are dropped
    // when `rows` goes out of scope — only codes + re-rank cache stay.
    quant::SqSegmentParams qp;
    qp.hnsw = params_.hnsw;
    qp.float_cache_fraction = params_.float_cache_fraction;
    seg->quant = quant::SqSegment::build(rows, qp, pool, heat);
    return seg;
  }
  seg->data = std::make_unique<data::Dataset>(std::move(rows));
  seg->index = std::make_unique<hnsw::HnswIndex>(seg->data.get(), params_.hnsw);
  seg->index->build(pool);
  return seg;
}

std::vector<Neighbor> SegmentedIndex::search(const float* query, std::size_t k,
                                             std::size_t ef) const {
  ANNSIM_CHECK(k > 0);
  const auto v = snapshot();
  const auto& tombs = *v->tombs;
  // Overfetch by the tombstone count so deletions cannot starve the result
  // set: even if every tombstoned row outranks the query's true neighbors,
  // k live candidates survive the filter.
  const std::size_t k_eff = k + tombs.size();

  TopK top(k);
  auto offer = [&](const std::vector<Neighbor>& res) {
    for (const auto& n : res) {
      if (!tombs.contains(n.id)) top.push(n);
    }
  };
  for (const auto& seg : v->segments) {
    offer(seg->quant ? seg->quant->search(query, k_eff, ef)
                     : seg->index->search(query, k_eff, ef));
  }
  if (v->delta->used.load(std::memory_order_acquire) > 0) {
    offer(v->delta->index->search(query, k_eff, ef));
  }

  auto out = top.take_sorted();
  // Ids are unique by construction (insert rejects live ids and purges
  // tombstoned ones); this guards the invariant at the boundary anyway.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Neighbor& a, const Neighbor& b) {
                          return a.id == b.id;
                        }),
            out.end());
  return out;
}

void SegmentedIndex::insert(std::span<const float> vec, GlobalId id) {
  ANNSIM_CHECK_MSG(vec.size() == dim_,
                   "SegmentedIndex::insert: vector dimension "
                       << vec.size() << " != index dimension " << dim_);
  std::lock_guard wl(write_mu_);
  {
    std::lock_guard ll(live_mu_);
    ANNSIM_CHECK_MSG(!live_.contains(id),
                     "SegmentedIndex::insert: id " << id << " is already live");
  }
  auto v = snapshot();
  if (v->tombs->contains(id)) {
    // Re-insert of a previously erased id: its old physical copies still sit
    // in frozen rows and the tombstone that hides them would hide the new
    // row too. Only a major compaction purges both.
    compact_locked(nullptr, /*force_major=*/true);
    v = snapshot();
  }
  if (v->delta->used.load(std::memory_order_relaxed) >=
      params_.delta_capacity) {
    compact_locked(nullptr);
    v = snapshot();
  }

  Delta& d = *v->delta;
  std::size_t row = d.used.load(std::memory_order_relaxed);
  try {
    d.data->set_row(row, vec);
    d.data->set_id(row, id);
    d.index->insert(LocalId(row));
  } catch (const hnsw::FrozenIndexError&) {
    // The delta is never frozen while absorbing writes; if that contract is
    // ever violated, rebuild through a compaction instead of wedging the
    // write path — the typed error is what makes this recoverable.
    compact_locked(nullptr);
    v = snapshot();
    row = 0;
    v->delta->data->set_row(row, vec);
    v->delta->data->set_id(row, id);
    v->delta->index->insert(LocalId(row));
  }
  // Row contents are published before the count: a reader that observes
  // used > row also observes the row's data and id.
  v->delta->used.store(row + 1, std::memory_order_release);
  {
    std::lock_guard ll(live_mu_);
    live_.insert(id);
  }
}

bool SegmentedIndex::erase(GlobalId id) {
  std::lock_guard wl(write_mu_);
  {
    std::lock_guard ll(live_mu_);
    if (live_.erase(id) == 0) return false;
  }
  // Copy-on-write: the tombstone set rides inside the View so an in-flight
  // reader keeps filtering against exactly the physical rows it can see.
  const auto v = snapshot();
  auto tombs = std::make_shared<std::unordered_set<GlobalId>>(*v->tombs);
  tombs->insert(id);
  auto nv = std::make_shared<View>(*v);
  nv->tombs = std::move(tombs);
  publish(std::move(nv));
  return true;
}

bool SegmentedIndex::compact(ThreadPool* pool) {
  std::lock_guard wl(write_mu_);
  return compact_locked(pool);
}

bool SegmentedIndex::compact_locked(ThreadPool* pool, bool force_major) {
  const auto v = snapshot();
  const std::size_t used = v->delta->used.load(std::memory_order_acquire);
  const auto& tombs = *v->tombs;

  // Tier decision. Minor compaction is O(delta) and is what serving traffic
  // experiences; the O(index) major merge only runs when the segment count
  // or the tombstone debt would otherwise grow without bound.
  std::size_t frozen_rows = 0;
  for (const auto& seg : v->segments) frozen_rows += seg->rows();
  const bool too_many_segments =
      v->segments.size() + (used > 0 ? 1 : 0) > kMajorFanout;
  const bool tomb_heavy = !tombs.empty() && tombs.size() * 4 >= frozen_rows;
  if (!force_major && !too_many_segments && !tomb_heavy) {
    if (used == 0) return false;  // nothing to fold, no pressure
    // Minor: freeze the delta's live rows into one new segment; existing
    // segments (and the tombstones filtering them) stay as they are.
    std::size_t n_live_delta = 0;
    for (std::size_t i = 0; i < used; ++i) {
      if (!tombs.contains(v->delta->data->id(i))) ++n_live_delta;
    }
    auto nv = std::make_shared<View>(*v);
    nv->delta = make_delta();
    if (n_live_delta > 0) {
      data::Dataset rows(n_live_delta, dim_);
      std::size_t w = 0;
      for (std::size_t i = 0; i < used; ++i) {
        if (tombs.contains(v->delta->data->id(i))) continue;
        rows.set_row(w, v->delta->data->row_span(i));
        rows.set_id(w, v->delta->data->id(i));
        ++w;
      }
      nv->segments.push_back(freeze_rows(std::move(rows), pool));
    }
    publish(std::move(nv));
    compactions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t n_live = 0;
  for (const auto& seg : v->segments) {
    for (GlobalId id : seg->row_ids()) {
      if (!tombs.contains(id)) ++n_live;
    }
  }
  for (std::size_t i = 0; i < used; ++i) {
    if (!tombs.contains(v->delta->data->id(i))) ++n_live;
  }

  data::Dataset merged(n_live, dim_);
  // Row-aligned access counts harvested from the quantized segments being
  // merged: the fresh segment's re-rank cache is re-selected from measured
  // traffic, not hubness guesses. Float segments and delta rows carry 0.
  std::vector<std::uint64_t> heat;
  if (params_.quantize_frozen) heat.reserve(n_live);
  std::size_t w = 0;
  auto take = [&](const data::Dataset& ds, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      if (tombs.contains(ds.id(i))) continue;
      merged.set_row(w, ds.row_span(i));
      merged.set_id(w, ds.id(i));
      if (params_.quantize_frozen) heat.push_back(0);
      ++w;
    }
  };
  std::vector<float> tmp(dim_);
  for (const auto& seg : v->segments) {
    if (seg->quant) {
      const auto counts = seg->quant->access_counts();
      for (std::size_t i = 0; i < seg->quant->size(); ++i) {
        if (tombs.contains(seg->quant->id(i))) continue;
        seg->quant->reconstruct(i, tmp.data());
        merged.set_row(w, std::span<const float>(tmp.data(), dim_));
        merged.set_id(w, seg->quant->id(i));
        heat.push_back(counts[i]);
        ++w;
      }
    } else {
      take(*seg->data, seg->data->size());
    }
  }
  take(*v->delta->data, used);

  auto nv = std::make_shared<View>();
  nv->tombs = std::make_shared<const std::unordered_set<GlobalId>>();
  if (n_live > 0) nv->segments.push_back(freeze_rows(std::move(merged), pool, heat));
  nv->delta = make_delta();
  publish(std::move(nv));
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t SegmentedIndex::size() const {
  std::lock_guard ll(live_mu_);
  return live_.size();
}

std::size_t SegmentedIndex::delta_fill() const {
  return snapshot()->delta->used.load(std::memory_order_acquire);
}

bool SegmentedIndex::contains(GlobalId id) const {
  std::lock_guard ll(live_mu_);
  return live_.contains(id);
}

SegmentedStats SegmentedIndex::stats() const {
  const auto v = snapshot();
  SegmentedStats s;
  s.n_segments = v->segments.size();
  for (const auto& seg : v->segments) {
    s.segment_rows += seg->rows();
    if (seg->quant) {
      s.quant_rows += seg->quant->size();
      s.quant_resident_bytes += seg->quant->memory_bytes();
      s.quant_float_bytes += seg->quant->float_bytes();
      s.quant_cached_rows += seg->quant->cached_rows();
      const auto c = seg->quant->counters();
      s.rerank_exact += c.rerank_exact;
      s.rerank_coded += c.rerank_coded;
    }
  }
  s.delta_used = v->delta->used.load(std::memory_order_acquire);
  s.delta_capacity = params_.delta_capacity;
  s.tombstones = v->tombs->size();
  s.compactions = compactions_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Serialization. Full image = header | segments | delta, with every part
// individually length-delimited so a checkpoint store can persist them as
// separate files and skip unchanged (id-stable) segment blobs.
// ---------------------------------------------------------------------------

SegmentedIndex::SnapshotParts SegmentedIndex::snapshot_parts() const {
  // Serializing against writers makes the parts a consistent cut: no row can
  // land in the delta, and no tombstone or compaction can slip in, between
  // the header and the last byte.
  std::lock_guard wl(write_mu_);
  const auto v = snapshot();
  SnapshotParts parts;

  {
    BinaryWriter w;
    w.write<std::uint32_t>(kMagic);
    w.write<std::uint32_t>(params_.quantize_frozen ? kVersionQuant
                                                   : kVersionFloat);
    w.write<std::uint64_t>(dim_);
    w.write<std::uint32_t>(static_cast<std::uint32_t>(params_.hnsw.metric));
    w.write<std::uint64_t>(params_.hnsw.M);
    w.write<std::uint64_t>(params_.hnsw.ef_construction);
    w.write<std::uint64_t>(params_.hnsw.ef_search);
    w.write<double>(params_.hnsw.level_mult);
    w.write<std::uint64_t>(params_.hnsw.seed);
    w.write<std::uint64_t>(params_.delta_capacity);
    w.write<std::uint64_t>(next_segment_id_);
    if (params_.quantize_frozen) {
      w.write<double>(params_.float_cache_fraction);
    }
    parts.header = w.take();
  }

  for (const auto& seg : v->segments) {
    // Segments are immutable: serialize once, reuse the cached bytes on
    // every later snapshot (write rounds checkpoint after each batch, so
    // this runs hot).
    std::call_once(seg->wire_once, [&] {
      BinaryWriter w;
      if (params_.quantize_frozen) {
        // v2 blobs carry a kind byte. Quantized images ship codes + codebook
        // + graph + cached floats — about 4x smaller than the float form.
        if (seg->quant) {
          w.write<std::uint8_t>(kSegKindSq8);
          w.write_vector(seg->quant->to_bytes());
          seg->wire = w.take();
          return;
        }
        w.write<std::uint8_t>(kSegKindFloat);
      }
      const std::size_t count = seg->data->size();
      w.write<std::uint64_t>(count);
      w.write_span(seg->data->ids());
      w.write_vector(pack_rows(*seg->data, count));
      w.write_vector(seg->index->to_bytes());
      seg->wire = w.take();
    });
    parts.segments.emplace_back(seg->id, seg->wire);
  }

  {
    BinaryWriter w;
    const std::size_t used = v->delta->used.load(std::memory_order_acquire);
    w.write<std::uint64_t>(used);
    w.write_span(v->delta->data->ids().subspan(0, used));
    w.write_vector(pack_rows(*v->delta->data, used));
    // Sorted so the delta blob is byte-stable for identical logical state.
    std::vector<GlobalId> tombs(v->tombs->begin(), v->tombs->end());
    std::sort(tombs.begin(), tombs.end());
    w.write_vector(tombs);
    parts.delta = w.take();
  }
  return parts;
}

std::vector<std::byte> SegmentedIndex::to_bytes() const {
  const auto parts = snapshot_parts();
  BinaryWriter w;
  w.write_vector(parts.header);
  w.write<std::uint64_t>(parts.segments.size());
  for (const auto& [seg_id, blob] : parts.segments) {
    w.write<std::uint64_t>(seg_id);
    w.write_vector(blob);
  }
  w.write_vector(parts.delta);
  return w.take();
}

std::unique_ptr<SegmentedIndex> SegmentedIndex::from_bytes(
    std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  const auto header = r.read_vector<std::byte>();
  const auto n_segments = r.read<std::uint64_t>();
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> segments;
  segments.reserve(n_segments);
  for (std::uint64_t i = 0; i < n_segments; ++i) {
    const auto seg_id = r.read<std::uint64_t>();
    segments.emplace_back(seg_id, r.read_vector<std::byte>());
  }
  const auto delta = r.read_vector<std::byte>();
  ANNSIM_CHECK_MSG(r.exhausted(),
                   "SegmentedIndex::from_bytes: trailing bytes after image");
  return from_parts(header, segments, delta);
}

std::unique_ptr<SegmentedIndex> SegmentedIndex::from_parts(
    std::span<const std::byte> header,
    std::span<const std::pair<std::uint64_t, std::vector<std::byte>>> segments,
    std::span<const std::byte> delta) {
  BinaryReader h(header);
  const auto magic = h.read<std::uint32_t>();
  ANNSIM_CHECK_MSG(magic == kMagic,
                   "SegmentedIndex: bad header magic " << magic);
  const auto version = h.read<std::uint32_t>();
  ANNSIM_CHECK_MSG(version == kVersionFloat || version == kVersionQuant,
                   "SegmentedIndex: unsupported version " << version);
  const auto dim = h.read<std::uint64_t>();
  SegmentedParams params;
  params.hnsw.metric = static_cast<simd::Metric>(h.read<std::uint32_t>());
  params.hnsw.M = h.read<std::uint64_t>();
  params.hnsw.ef_construction = h.read<std::uint64_t>();
  params.hnsw.ef_search = h.read<std::uint64_t>();
  params.hnsw.level_mult = h.read<double>();
  params.hnsw.seed = h.read<std::uint64_t>();
  params.delta_capacity = h.read<std::uint64_t>();
  const auto next_segment_id = h.read<std::uint64_t>();
  if (version == kVersionQuant) {
    params.quantize_frozen = true;
    params.float_cache_fraction = h.read<double>();
  }
  ANNSIM_CHECK_MSG(h.exhausted(),
                   "SegmentedIndex: trailing bytes in header blob");

  std::unique_ptr<SegmentedIndex> idx(
      new SegmentedIndex(params, std::size_t(dim)));
  idx->next_segment_id_ = next_segment_id;

  auto v = std::make_shared<View>();
  for (const auto& [seg_id, blob] : segments) {
    ANNSIM_CHECK_MSG(seg_id < next_segment_id,
                     "SegmentedIndex: segment id " << seg_id
                                                   << " from the future");
    BinaryReader r(blob);
    auto seg = std::make_shared<Segment>();
    seg->id = seg_id;
    if (version == kVersionQuant &&
        r.read<std::uint8_t>() == kSegKindSq8) {
      quant::SqSegmentParams qp;
      qp.hnsw = params.hnsw;
      qp.float_cache_fraction = params.float_cache_fraction;
      const auto quant_bytes = r.read_vector<std::byte>();
      ANNSIM_CHECK_MSG(r.exhausted(), "SegmentedIndex: trailing segment bytes");
      seg->quant = quant::SqSegment::from_bytes(quant_bytes, qp);
      ANNSIM_CHECK_MSG(seg->quant->dim() == dim,
                       "SegmentedIndex: segment " << seg_id
                                                  << " dimension mismatch");
      v->segments.push_back(std::move(seg));
      continue;
    }
    const auto count = r.read<std::uint64_t>();
    const auto ids = r.read_vector<GlobalId>();
    const auto packed = r.read_vector<float>();
    const auto index_bytes = r.read_vector<std::byte>();
    ANNSIM_CHECK_MSG(r.exhausted(), "SegmentedIndex: trailing segment bytes");
    ANNSIM_CHECK_MSG(ids.size() == count && packed.size() == count * dim,
                     "SegmentedIndex: segment " << seg_id
                                                << " row/id count mismatch");
    seg->data = std::make_unique<data::Dataset>(count, std::size_t(dim));
    for (std::size_t i = 0; i < count; ++i) {
      seg->data->set_row(i, std::span<const float>(&packed[i * dim], dim));
      seg->data->set_id(i, ids[i]);
    }
    seg->index = std::make_unique<hnsw::HnswIndex>(
        hnsw::HnswIndex::from_bytes(index_bytes, seg->data.get()));
    v->segments.push_back(std::move(seg));
  }

  BinaryReader r(delta);
  const auto used = r.read<std::uint64_t>();
  const auto ids = r.read_vector<GlobalId>();
  const auto packed = r.read_vector<float>();
  const auto tombs = r.read_vector<GlobalId>();
  ANNSIM_CHECK_MSG(r.exhausted(), "SegmentedIndex: trailing delta bytes");
  ANNSIM_CHECK_MSG(used <= params.delta_capacity && ids.size() == used &&
                       packed.size() == used * dim,
                   "SegmentedIndex: delta row/id count mismatch");
  // The frozen serialized form of an HnswIndex cannot round-trip back into
  // the mutable linked form, so the delta is restored by replaying its rows
  // into a fresh mutable index (deterministic: levels derive from the seed).
  v->delta = idx->make_delta();
  for (std::size_t i = 0; i < used; ++i) {
    v->delta->data->set_row(i, std::span<const float>(&packed[i * dim], dim));
    v->delta->data->set_id(i, ids[i]);
    v->delta->index->insert(LocalId(i));
  }
  v->delta->used.store(used, std::memory_order_release);
  v->tombs = std::make_shared<const std::unordered_set<GlobalId>>(
      tombs.begin(), tombs.end());

  for (const auto& seg : v->segments) {
    for (GlobalId id : seg->row_ids()) {
      if (!v->tombs->contains(id)) idx->live_.insert(id);
    }
  }
  for (std::size_t i = 0; i < used; ++i) {
    if (!v->tombs->contains(ids[i])) idx->live_.insert(ids[i]);
  }
  idx->view_ = std::move(v);
  return idx;
}

}  // namespace annsim::segment
