#include "annsim/recovery/health.hpp"

#include <cstdio>

namespace annsim::recovery {

std::size_t ClusterHealth::alive_count() const noexcept {
  std::size_t n = 0;
  for (const WorkerHealth& w : workers) {
    if (w.state == WorkerState::kAlive) ++n;
  }
  return n;
}

bool ClusterHealth::all_alive() const noexcept {
  return alive_count() == workers.size();
}

std::vector<std::size_t> ClusterHealth::dead_workers() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (workers[w].state == WorkerState::kDead) out.push_back(w);
  }
  return out;
}

std::string to_string(const HealReport& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "heal: %zu workers revived, %zu replicas restored "
                "(%zu checkpoint, %zu peer-stream), %zu unrecoverable, "
                "%zu wal records replayed, %zu wal tail bytes truncated, "
                "%.3fs",
                r.workers_revived, r.replicas_restored(),
                r.replicas_restored_from_checkpoint,
                r.replicas_restored_from_peer, r.replicas_unrecoverable,
                r.wal_replayed_records, r.wal_truncated_tail_bytes, r.seconds);
  return buf;
}

}  // namespace annsim::recovery
