#include "annsim/recovery/write_log.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"

namespace fs = std::filesystem;

namespace annsim::recovery {

namespace {

constexpr std::size_t kHeaderBytes = 2 * sizeof(std::uint32_t);
constexpr std::size_t kFrameHeaderBytes = 2 * sizeof(std::uint32_t);
// A frame payload is lsn + type + partition + id + n_floats + floats; cap
// the declared length so a corrupted length field cannot drive a huge
// allocation during the scan.
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

std::vector<std::byte> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ANNSIM_CHECK_MSG(in.good(), "cannot open WAL file " << path);
  const std::streamsize n = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(n));
  if (n > 0) in.read(reinterpret_cast<char*>(bytes.data()), n);
  ANNSIM_CHECK_MSG(in.good(), "cannot read WAL file " << path);
  return bytes;
}

/// Result of validating one log file: the records that check out, the byte
/// offset of the first invalid frame (== file size when the whole file is
/// valid), and whether even the header was usable.
struct ScanResult {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;
  bool header_ok = false;
};

ScanResult scan_file(const std::string& path) {
  const std::vector<std::byte> bytes = slurp(path);
  ScanResult out;
  if (bytes.size() < kHeaderBytes) return out;
  {
    BinaryReader r(bytes);
    if (r.read<std::uint32_t>() != kWalMagic ||
        r.read<std::uint32_t>() != kWalVersion) {
      return out;
    }
  }
  out.header_ok = true;
  out.valid_bytes = kHeaderBytes;
  std::size_t pos = kHeaderBytes;
  while (pos + kFrameHeaderBytes <= bytes.size()) {
    std::uint32_t crc = 0;
    std::uint32_t len = 0;
    std::memcpy(&crc, bytes.data() + pos, sizeof(crc));
    std::memcpy(&len, bytes.data() + pos + sizeof(crc), sizeof(len));
    if (len > kMaxPayloadBytes ||
        pos + kFrameHeaderBytes + len > bytes.size()) {
      break;  // short/torn tail
    }
    const std::span<const std::byte> payload(
        bytes.data() + pos + kFrameHeaderBytes, len);
    if (crc32c(payload) != crc) break;  // bit-flipped or zero-filled tail
    WalRecord rec;
    bool parsed = true;
    try {
      BinaryReader r(payload);
      rec.lsn = r.read<std::uint64_t>();
      rec.type = WalRecordType{r.read<std::uint8_t>()};
      rec.partition = r.read<PartitionId>();
      rec.id = r.read<GlobalId>();
      const auto n_floats = r.read<std::uint32_t>();
      rec.vec.resize(n_floats);
      r.read_into(std::span<float>(rec.vec));
      parsed = r.exhausted() &&
               (rec.type == WalRecordType::kInsert ||
                rec.type == WalRecordType::kDelete ||
                rec.type == WalRecordType::kCompactMark);
    } catch (const Error&) {
      parsed = false;
    }
    if (!parsed) break;  // CRC collided with garbage — still a dead tail
    out.records.push_back(std::move(rec));
    pos += kFrameHeaderBytes + len;
    out.valid_bytes = pos;
  }
  return out;
}

/// First LSN encoded in a `wal_<first_lsn>.log` filename, or nullopt for
/// anything else living in the directory.
std::optional<std::uint64_t> file_first_lsn(const fs::path& p) {
  const std::string name = p.filename().string();
  unsigned long long lsn = 0;
  if (std::sscanf(name.c_str(), "wal_%llu.log", &lsn) != 1) return std::nullopt;
  return std::uint64_t(lsn);
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ std::uint32_t(b)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

WriteLog::WriteLog(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {
  ANNSIM_CHECK_MSG(!dir_.empty(), "WriteLog needs a directory");
  ANNSIM_CHECK_MSG(options_.segment_bytes >= 4096,
                   "wal segment_bytes must be at least 4 KiB");
  fs::create_directories(dir_);
  std::lock_guard<std::mutex> lock(mu_);
  recover_locked();
}

std::vector<std::string> WriteLog::sorted_log_files() const {
  std::vector<std::pair<std::uint64_t, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    if (const auto lsn = file_first_lsn(entry.path())) {
      files.emplace_back(*lsn, entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<std::string> out;
  out.reserve(files.size());
  for (auto& [lsn, path] : files) out.push_back(std::move(path));
  return out;
}

void WriteLog::open_active_for(std::uint64_t first_lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "wal_%020llu.log",
                static_cast<unsigned long long>(first_lsn));
  const std::string path = (fs::path(dir_) / name).string();
  active_ = DurableFile::open_append(path);
  if (active_.size() == 0) {
    BinaryWriter w;
    w.write(kWalMagic);
    w.write(kWalVersion);
    active_.append(w.bytes());
    // Make the directory entry durable now; the header bytes ride the first
    // commit's fsync.
    DurableFile::sync_dir(dir_);
  }
}

void WriteLog::buffer_frame(const WalRecord& rec) {
  BinaryWriter payload;
  payload.write(rec.lsn);
  payload.write(std::uint8_t(rec.type));
  payload.write(rec.partition);
  payload.write(rec.id);
  payload.write(std::uint32_t(rec.vec.size()));
  for (const float v : rec.vec) payload.write(v);
  BinaryWriter frame;
  frame.write(crc32c(payload.bytes()));
  frame.write(std::uint32_t(payload.size()));
  PendingFrame pf;
  pf.lsn = rec.lsn;
  pf.bytes = frame.take();
  const auto& body = payload.bytes();
  pf.bytes.insert(pf.bytes.end(), body.begin(), body.end());
  pending_.push_back(std::move(pf));
}

void WriteLog::append_insert(std::uint64_t lsn, PartitionId partition,
                             GlobalId id, std::span<const float> vec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return;
  WalRecord rec;
  rec.lsn = lsn;
  rec.type = WalRecordType::kInsert;
  rec.partition = partition;
  rec.id = id;
  rec.vec.assign(vec.begin(), vec.end());
  buffer_frame(rec);
}

void WriteLog::append_delete(std::uint64_t lsn, PartitionId partition,
                             GlobalId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return;
  WalRecord rec;
  rec.lsn = lsn;
  rec.type = WalRecordType::kDelete;
  rec.partition = partition;
  rec.id = id;
  buffer_frame(rec);
}

void WriteLog::append_compact_mark(std::uint64_t lsn, PartitionId partition) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return;
  WalRecord rec;
  rec.lsn = lsn;
  rec.type = WalRecordType::kCompactMark;
  rec.partition = partition;
  rec.id = kInvalidGlobalId;
  buffer_frame(rec);
}

bool WriteLog::commit(const FaultFn& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    pending_.clear();
    return false;
  }
  if (pending_.empty()) return true;
  if (!active_.is_open()) open_active_for(pending_.front().lsn);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const PendingFrame& pf = pending_[i];
    const std::optional<mpi::DiskFaultKind> kind =
        fault ? fault(pf.lsn) : std::nullopt;
    if (!kind) {
      active_.append(pf.bytes);
      if (!options_.group_commit) active_.sync();
      last_synced_lsn_ = pf.lsn;
      continue;
    }
    // A disk fault fired on this frame. Put the faulted bytes on disk (so
    // recovery sees exactly the corruption the rule describes), sync them
    // deterministically, and die — nothing from this frame on is acked.
    switch (*kind) {
      case mpi::DiskFaultKind::kCrashAtLsn:
        break;  // the process died before the frame reached write()
      case mpi::DiskFaultKind::kShortWrite: {
        const std::size_t cut = pf.bytes.size() / 2;
        active_.append(std::span<const std::byte>(pf.bytes.data(), cut));
        break;
      }
      case mpi::DiskFaultKind::kTornWrite: {
        // Frame-sized region allocated but the tail half never made it:
        // full length on disk, second half of the payload zero-filled.
        std::vector<std::byte> torn = pf.bytes;
        std::fill(torn.begin() + std::ptrdiff_t(torn.size() / 2), torn.end(),
                  std::byte{0});
        active_.append(torn);
        break;
      }
      case mpi::DiskFaultKind::kFlipByte: {
        std::vector<std::byte> flipped = pf.bytes;
        flipped[flipped.size() / 2] ^= std::byte{0x01};
        active_.append(flipped);
        break;
      }
    }
    active_.sync();
    crashed_ = true;
    pending_.clear();
    return false;
  }
  if (options_.group_commit) active_.sync();
  pending_.clear();
  if (active_.size() >= options_.segment_bytes) {
    active_.close();  // rotate: the next commit opens wal_<next_lsn>.log
  }
  return true;
}

std::uint64_t WriteLog::recover() {
  std::lock_guard<std::mutex> lock(mu_);
  return recover_locked();
}

std::uint64_t WriteLog::recover_locked() {
  active_.close();
  pending_.clear();
  std::uint64_t truncated = 0;
  last_synced_lsn_ = 0;
  std::string last_file;
  std::uint64_t last_valid = 0;
  for (const std::string& path : sorted_log_files()) {
    const ScanResult scan = scan_file(path);
    const std::uint64_t total = fs::file_size(path);
    if (!scan.header_ok) {
      // Unusable header: the file never became a log. Drop it whole.
      truncated += total;
      fs::remove(path);
      DurableFile::sync_dir(dir_);
      continue;
    }
    if (scan.valid_bytes < total) {
      truncated += total - scan.valid_bytes;
      fs::resize_file(path, scan.valid_bytes);
      // resize_file only shrinks the inode; make the new length durable.
      DurableFile::open_append(path).sync();
    }
    for (const WalRecord& rec : scan.records) {
      last_synced_lsn_ = std::max(last_synced_lsn_, rec.lsn);
    }
    last_file = path;
    last_valid = scan.valid_bytes;
  }
  truncated_tail_bytes_ += truncated;
  crashed_ = false;
  // Keep appending to the last file when it still has room.
  if (!last_file.empty() && last_valid < options_.segment_bytes) {
    active_ = DurableFile::open_append(last_file);
  }
  return truncated;
}

std::vector<WalRecord> WriteLog::read_tail(std::uint64_t after_lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalRecord> out;
  for (const std::string& path : sorted_log_files()) {
    ScanResult scan = scan_file(path);
    for (WalRecord& rec : scan.records) {
      if (rec.lsn > after_lsn) out.push_back(std::move(rec));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.lsn < b.lsn; });
  return out;
}

std::size_t WriteLog::gc(std::uint64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<std::string> files = sorted_log_files();
  std::size_t removed = 0;
  // The last file is the active tail — never GC'd, even when fully covered,
  // so the append cursor stays valid.
  for (std::size_t i = 0; i + 1 < files.size(); ++i) {
    const ScanResult scan = scan_file(files[i]);
    std::uint64_t last_lsn = 0;
    for (const WalRecord& rec : scan.records) {
      last_lsn = std::max(last_lsn, rec.lsn);
    }
    if (last_lsn <= watermark) {
      fs::remove(files[i]);
      ++removed;
    }
  }
  if (removed > 0) DurableFile::sync_dir(dir_);
  return removed;
}

std::uint64_t WriteLog::last_synced_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_synced_lsn_;
}

std::uint64_t WriteLog::truncated_tail_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncated_tail_bytes_;
}

bool WriteLog::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

}  // namespace annsim::recovery
