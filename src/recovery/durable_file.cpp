#include "annsim/recovery/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "annsim/common/error.hpp"

namespace fs = std::filesystem;

namespace annsim::recovery {

DurableFile::~DurableFile() { close(); }

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

DurableFile DurableFile::open_append(const std::string& path) {
  DurableFile f;
  f.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  ANNSIM_CHECK_MSG(f.fd_ >= 0, "cannot open " << path << " for appending: "
                                              << std::strerror(errno));
  f.path_ = path;
  return f;
}

void DurableFile::append(std::span<const std::byte> bytes) {
  ANNSIM_CHECK_MSG(is_open(), "append on a closed DurableFile");
  const char* p = reinterpret_cast<const char*>(bytes.data());
  std::size_t left = bytes.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd_, p, left);
    if (n < 0 && errno == EINTR) continue;
    ANNSIM_CHECK_MSG(n > 0, "short write to " << path_ << ": "
                                              << std::strerror(errno));
    p += n;
    left -= std::size_t(n);
  }
}

void DurableFile::sync() {
  ANNSIM_CHECK_MSG(is_open(), "sync on a closed DurableFile");
  ANNSIM_CHECK_MSG(::fsync(fd_) == 0,
                   "fsync failed on " << path_ << ": " << std::strerror(errno));
}

std::uint64_t DurableFile::size() const {
  ANNSIM_CHECK_MSG(is_open(), "size on a closed DurableFile");
  struct ::stat st{};
  ANNSIM_CHECK_MSG(::fstat(fd_, &st) == 0,
                   "fstat failed on " << path_ << ": " << std::strerror(errno));
  return std::uint64_t(st.st_size);
}

void DurableFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void DurableFile::write_atomic(const std::string& path,
                               std::span<const std::byte> bytes) {
  const fs::path target(path);
  std::string tmp_name = ".";
  tmp_name += target.filename().string();
  tmp_name += ".tmp";
  const fs::path tmp = target.parent_path() / tmp_name;
  {
    // O_TRUNC, not append: the tmp sibling always starts from scratch.
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    ANNSIM_CHECK_MSG(fd >= 0, "cannot open " << tmp.string()
                                             << " for writing: "
                                             << std::strerror(errno));
    DurableFile f;
    f.fd_ = fd;
    f.path_ = tmp.string();
    f.append(bytes);
    f.sync();
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  ANNSIM_CHECK_MSG(!ec, "rename " << tmp.string() << " -> " << path << ": "
                                  << ec.message());
  // The rename is only durable once the directory entry is synced.
  sync_dir(target.parent_path().string());
}

void DurableFile::sync_dir(const std::string& dir) {
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  ANNSIM_CHECK_MSG(fd >= 0, "cannot open directory " << dir << " for fsync: "
                                                     << std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  ANNSIM_CHECK_MSG(rc == 0,
                   "fsync failed on directory " << dir << ": "
                                                << std::strerror(errno));
}

}  // namespace annsim::recovery
