#include "annsim/recovery/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/recovery/durable_file.hpp"

namespace fs = std::filesystem;

namespace annsim::recovery {

namespace {

constexpr std::uint32_t kManifestMagic = 0x414E4350;  // "ANCP"
constexpr std::uint32_t kManifestVersion = 1;            ///< monolithic layout
constexpr std::uint32_t kManifestVersionSegmented = 2;   ///< incremental layout
constexpr std::uint32_t kManifestVersionWal = 3;  ///< incremental + watermark
constexpr const char* kManifestFile = "manifest.bin";
constexpr const char* kDataFile = "data.bin";
constexpr const char* kIndexFile = "index.bin";

std::string partition_dirname(std::uint32_t partition) {
  return "partition_" + std::to_string(partition);
}

std::string segment_filename(std::uint64_t seg_id) {
  return "seg_" + std::to_string(seg_id) + ".bin";
}

std::string delta_filename(std::uint64_t generation) {
  return "delta_" + std::to_string(generation) + ".bin";
}

/// Create-and-fill a fresh file (callers stage into paths that do not exist
/// yet). Routed through DurableFile so the bytes are fsynced before the
/// enclosing staging-rename / manifest-rename commit point.
void write_file(const fs::path& path, std::span<const std::byte> bytes) {
  ANNSIM_CHECK_MSG(!fs::exists(path),
                   "refusing to overwrite " << path.string()
                                            << " (stage into fresh files)");
  DurableFile f = DurableFile::open_append(path.string());
  f.append(bytes);
  f.sync();
}

std::vector<std::byte> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ANNSIM_CHECK_MSG(in.good(), "cannot open " << path.string() << " for reading");
  const auto size = std::streamsize(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size != 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
  }
  ANNSIM_CHECK_MSG(in.good(), "short read from " << path.string());
  return bytes;
}

/// One payload file's entry in the manifest.
struct FileRecord {
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

}  // namespace

std::uint64_t checksum64(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const std::byte b : bytes) {
    h ^= std::uint64_t(std::to_integer<std::uint8_t>(b));
    h *= 0x00000100000001b3ULL;  // FNV prime
  }
  return h;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  ANNSIM_CHECK_MSG(!dir_.empty(), "checkpoint dir cannot be empty");
  fs::create_directories(dir_);
  // Sweep debris from a crash mid-commit: hidden staging directories (v1
  // saves) and hidden `.tmp` siblings (segmented saves). Nothing hidden is
  // ever part of a committed snapshot — the rename out of hiding *is* the
  // commit — so removal is always safe, and leaving them would accumulate
  // forever and shadow post-commit GC.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() && name.starts_with(".") &&
        name.ends_with(".staging")) {
      fs::remove_all(entry.path());
      continue;
    }
    if (!entry.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(entry.path())) {
      const std::string fname = file.path().filename().string();
      if (file.is_regular_file() && fname.starts_with(".") &&
          fname.ends_with(".tmp")) {
        fs::remove(file.path());
      }
    }
  }
}

void CheckpointStore::save(const CheckpointMeta& meta,
                           std::span<const std::byte> data_bytes,
                           std::span<const std::byte> index_bytes) const {
  BinaryWriter manifest;
  manifest.write(kManifestMagic);
  manifest.write(kManifestVersion);
  manifest.write(meta.partition);
  manifest.write(meta.dim);
  manifest.write(meta.count);
  manifest.write(meta.index_kind);
  manifest.write(FileRecord{data_bytes.size(), checksum64(data_bytes)});
  manifest.write(FileRecord{index_bytes.size(), checksum64(index_bytes)});

  // Stage everything in a hidden sibling directory, then rename into place:
  // readers either see the old committed snapshot or the complete new one.
  const fs::path root(dir_);
  std::string staging_name = ".";
  staging_name += partition_dirname(meta.partition);
  staging_name += ".staging";
  const fs::path staging = root / staging_name;
  const fs::path target = root / partition_dirname(meta.partition);
  fs::remove_all(staging);
  fs::create_directories(staging);
  write_file(staging / kDataFile, data_bytes);
  write_file(staging / kIndexFile, index_bytes);
  write_file(staging / kManifestFile, manifest.bytes());
  fs::remove_all(target);
  fs::rename(staging, target);
  // The directory-entry rename is the commit; fsync the root so it sticks.
  DurableFile::sync_dir(dir_);
}

namespace {

/// Atomic single-file replace: write a hidden sibling, rename over `path`.
void write_file_atomic(const fs::path& path, std::span<const std::byte> bytes) {
  DurableFile::write_atomic(path.string(), bytes);
}

}  // namespace

CheckpointStore::SaveReport CheckpointStore::save_segmented(
    const CheckpointMeta& meta, std::span<const std::byte> header,
    std::span<const std::pair<std::uint64_t, std::vector<std::byte>>> segments,
    std::span<const std::byte> delta, std::uint64_t wal_watermark) const {
  const fs::path pdir = fs::path(dir_) / partition_dirname(meta.partition);
  fs::create_directories(pdir);

  // The delta rewrites every save; bump its generation past whatever the
  // committed manifest references so the old generation's bytes stay intact
  // until the new manifest rename commits. Both segmented layouts (v2 and
  // the v3 watermark extension) are accepted here.
  std::uint64_t generation = 0;
  if (fs::exists(pdir / kManifestFile)) {
    const auto old_bytes = read_file(pdir / kManifestFile);
    BinaryReader old(old_bytes);
    if (old.remaining() >= 2 * sizeof(std::uint32_t) &&
        old.read<std::uint32_t>() == kManifestMagic) {
      const auto old_version = old.read<std::uint32_t>();
      if (old_version == kManifestVersionSegmented ||
          old_version == kManifestVersionWal) {
        old.read<std::uint32_t>();  // partition
        old.read<std::uint64_t>();  // dim
        old.read<std::uint64_t>();  // count
        old.read<std::uint8_t>();   // index_kind
        if (old_version == kManifestVersionWal) {
          old.read<std::uint64_t>();  // wal watermark
        }
        (void)old.read_vector<std::byte>();  // header blob
        generation = old.read<std::uint64_t>() + 1;
      }
    }
  }

  SaveReport report;
  for (const auto& [seg_id, blob] : segments) {
    const fs::path seg_path = pdir / segment_filename(seg_id);
    // Segment ids are never reused, so an existing file already holds these
    // exact bytes — the incremental win. (Integrity is still verified at
    // load time against the manifest checksum.)
    if (fs::exists(seg_path)) {
      ++report.segments_skipped;
      continue;
    }
    write_file_atomic(seg_path, blob);
    ++report.segments_written;
  }
  write_file_atomic(pdir / delta_filename(generation), delta);

  BinaryWriter manifest;
  manifest.write(kManifestMagic);
  manifest.write(kManifestVersionWal);
  manifest.write(meta.partition);
  manifest.write(meta.dim);
  manifest.write(meta.count);
  manifest.write(meta.index_kind);
  manifest.write(wal_watermark);
  manifest.write_vector(std::vector<std::byte>(header.begin(), header.end()));
  manifest.write(generation);
  manifest.write(FileRecord{delta.size(), checksum64(delta)});
  manifest.write(std::uint64_t(segments.size()));
  for (const auto& [seg_id, blob] : segments) {
    manifest.write(seg_id);
    manifest.write(FileRecord{blob.size(), checksum64(blob)});
  }
  // Commit point: readers see the old manifest (old generation, old segment
  // set) until this rename lands.
  write_file_atomic(pdir / kManifestFile, manifest.bytes());

  // Post-commit GC: drop delta generations other than the committed one and
  // segment files the manifest no longer references (merged away by
  // compaction). A crash here only leaves harmless extra files. Also clear
  // any v1 payload left behind by a monolithic save of this partition.
  for (const auto& entry : fs::directory_iterator(pdir)) {
    const std::string name = entry.path().filename().string();
    if (name == kManifestFile) continue;
    bool keep = false;
    if (name == delta_filename(generation)) keep = true;
    for (const auto& [seg_id, blob] : segments) {
      if (name == segment_filename(seg_id)) keep = true;
    }
    if (!keep) fs::remove(entry.path());
  }
  return report;
}

bool CheckpointStore::has(std::uint32_t partition) const {
  return fs::exists(fs::path(dir_) / partition_dirname(partition) / kManifestFile);
}

CheckpointStore::LoadedPartition CheckpointStore::load(
    std::uint32_t partition) const {
  const fs::path pdir = fs::path(dir_) / partition_dirname(partition);
  ANNSIM_CHECK_MSG(fs::exists(pdir / kManifestFile),
                   "checkpoint manifest missing for partition "
                       << partition << " under " << dir_);

  const auto manifest_bytes = read_file(pdir / kManifestFile);
  BinaryReader manifest(manifest_bytes);
  ANNSIM_CHECK_MSG(manifest.remaining() >= sizeof(kManifestMagic) &&
                       manifest.read<std::uint32_t>() == kManifestMagic,
                   "bad checkpoint manifest magic for partition " << partition);
  const auto version = manifest.read<std::uint32_t>();
  ANNSIM_CHECK_MSG(version == kManifestVersion ||
                       version == kManifestVersionSegmented ||
                       version == kManifestVersionWal,
                   "unsupported checkpoint manifest version " << version);

  LoadedPartition out;
  out.meta.partition = manifest.read<std::uint32_t>();
  out.meta.dim = manifest.read<std::uint64_t>();
  out.meta.count = manifest.read<std::uint64_t>();
  out.meta.index_kind = manifest.read<std::uint8_t>();
  if (version == kManifestVersionWal) {
    out.wal_watermark = manifest.read<std::uint64_t>();
  }
  ANNSIM_CHECK_MSG(out.meta.partition == partition,
                   "checkpoint manifest names partition "
                       << out.meta.partition << " but was loaded as "
                       << partition);

  const auto verify = [&](const std::string& name, const FileRecord& rec) {
    const fs::path p = pdir / name;
    ANNSIM_CHECK_MSG(fs::exists(p), "checkpoint file " << name
                                                       << " missing (truncated "
                                                          "checkpoint) for "
                                                          "partition "
                                                       << partition);
    auto bytes = read_file(p);
    ANNSIM_CHECK_MSG(bytes.size() == rec.size,
                     "checkpoint file " << name << " truncated for partition "
                                        << partition << ": expected "
                                        << rec.size << " bytes, found "
                                        << bytes.size());
    ANNSIM_CHECK_MSG(checksum64(bytes) == rec.checksum,
                     "checkpoint checksum mismatch in "
                         << name << " for partition " << partition);
    return bytes;
  };

  if (version == kManifestVersion) {
    const auto data_rec = manifest.read<FileRecord>();
    const auto index_rec = manifest.read<FileRecord>();
    out.data_bytes = verify(kDataFile, data_rec);
    out.index_bytes = verify(kIndexFile, index_rec);
    return out;
  }

  // Segmented manifest: verify each part, then reassemble the byte-identical
  // SegmentedIndex::to_bytes() image (header | n_segments | id+blob... |
  // delta). data_bytes stays empty — the image owns its vectors.
  const auto header = manifest.read_vector<std::byte>();
  const auto generation = manifest.read<std::uint64_t>();
  const auto delta_rec = manifest.read<FileRecord>();
  const auto n_segments = manifest.read<std::uint64_t>();

  BinaryWriter image;
  image.write_vector(header);
  image.write(n_segments);
  for (std::uint64_t i = 0; i < n_segments; ++i) {
    const auto seg_id = manifest.read<std::uint64_t>();
    const auto seg_rec = manifest.read<FileRecord>();
    image.write(seg_id);
    image.write_vector(verify(segment_filename(seg_id), seg_rec));
  }
  image.write_vector(verify(delta_filename(generation), delta_rec));
  out.index_bytes = image.take();
  return out;
}

std::vector<std::uint32_t> CheckpointStore::partitions() const {
  std::vector<std::uint32_t> out;
  if (!fs::exists(dir_)) return out;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "partition_";
    if (name.rfind(kPrefix, 0) != 0) continue;
    std::uint32_t pid = 0;
    if (std::sscanf(name.c_str() + 10, "%u", &pid) != 1) continue;
    if (has(pid)) out.push_back(pid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace annsim::recovery
