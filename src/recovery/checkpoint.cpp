#include "annsim/recovery/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"

namespace fs = std::filesystem;

namespace annsim::recovery {

namespace {

constexpr std::uint32_t kManifestMagic = 0x414E4350;  // "ANCP"
constexpr std::uint32_t kManifestVersion = 1;
constexpr const char* kManifestFile = "manifest.bin";
constexpr const char* kDataFile = "data.bin";
constexpr const char* kIndexFile = "index.bin";

std::string partition_dirname(std::uint32_t partition) {
  return "partition_" + std::to_string(partition);
}

void write_file(const fs::path& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANNSIM_CHECK_MSG(out.good(), "cannot open " << path.string() << " for writing");
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
  }
  out.flush();
  ANNSIM_CHECK_MSG(out.good(), "short write to " << path.string());
}

std::vector<std::byte> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ANNSIM_CHECK_MSG(in.good(), "cannot open " << path.string() << " for reading");
  const auto size = std::streamsize(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size != 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
  }
  ANNSIM_CHECK_MSG(in.good(), "short read from " << path.string());
  return bytes;
}

/// One payload file's entry in the manifest.
struct FileRecord {
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

}  // namespace

std::uint64_t checksum64(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const std::byte b : bytes) {
    h ^= std::uint64_t(std::to_integer<std::uint8_t>(b));
    h *= 0x00000100000001b3ULL;  // FNV prime
  }
  return h;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  ANNSIM_CHECK_MSG(!dir_.empty(), "checkpoint dir cannot be empty");
  fs::create_directories(dir_);
}

void CheckpointStore::save(const CheckpointMeta& meta,
                           std::span<const std::byte> data_bytes,
                           std::span<const std::byte> index_bytes) const {
  BinaryWriter manifest;
  manifest.write(kManifestMagic);
  manifest.write(kManifestVersion);
  manifest.write(meta.partition);
  manifest.write(meta.dim);
  manifest.write(meta.count);
  manifest.write(meta.index_kind);
  manifest.write(FileRecord{data_bytes.size(), checksum64(data_bytes)});
  manifest.write(FileRecord{index_bytes.size(), checksum64(index_bytes)});

  // Stage everything in a hidden sibling directory, then rename into place:
  // readers either see the old committed snapshot or the complete new one.
  const fs::path root(dir_);
  const fs::path staging = root / ("." + partition_dirname(meta.partition) + ".staging");
  const fs::path target = root / partition_dirname(meta.partition);
  fs::remove_all(staging);
  fs::create_directories(staging);
  write_file(staging / kDataFile, data_bytes);
  write_file(staging / kIndexFile, index_bytes);
  write_file(staging / kManifestFile, manifest.bytes());
  fs::remove_all(target);
  fs::rename(staging, target);
}

bool CheckpointStore::has(std::uint32_t partition) const {
  return fs::exists(fs::path(dir_) / partition_dirname(partition) / kManifestFile);
}

CheckpointStore::LoadedPartition CheckpointStore::load(
    std::uint32_t partition) const {
  const fs::path pdir = fs::path(dir_) / partition_dirname(partition);
  ANNSIM_CHECK_MSG(fs::exists(pdir / kManifestFile),
                   "checkpoint manifest missing for partition "
                       << partition << " under " << dir_);

  const auto manifest_bytes = read_file(pdir / kManifestFile);
  BinaryReader manifest(manifest_bytes);
  ANNSIM_CHECK_MSG(manifest.remaining() >= sizeof(kManifestMagic) &&
                       manifest.read<std::uint32_t>() == kManifestMagic,
                   "bad checkpoint manifest magic for partition " << partition);
  const auto version = manifest.read<std::uint32_t>();
  ANNSIM_CHECK_MSG(version == kManifestVersion,
                   "unsupported checkpoint manifest version " << version);

  LoadedPartition out;
  out.meta.partition = manifest.read<std::uint32_t>();
  out.meta.dim = manifest.read<std::uint64_t>();
  out.meta.count = manifest.read<std::uint64_t>();
  out.meta.index_kind = manifest.read<std::uint8_t>();
  ANNSIM_CHECK_MSG(out.meta.partition == partition,
                   "checkpoint manifest names partition "
                       << out.meta.partition << " but was loaded as "
                       << partition);
  const auto data_rec = manifest.read<FileRecord>();
  const auto index_rec = manifest.read<FileRecord>();

  const auto verify = [&](const char* name, const FileRecord& rec) {
    const fs::path p = pdir / name;
    ANNSIM_CHECK_MSG(fs::exists(p), "checkpoint file " << name
                                                       << " missing (truncated "
                                                          "checkpoint) for "
                                                          "partition "
                                                       << partition);
    auto bytes = read_file(p);
    ANNSIM_CHECK_MSG(bytes.size() == rec.size,
                     "checkpoint file " << name << " truncated for partition "
                                        << partition << ": expected "
                                        << rec.size << " bytes, found "
                                        << bytes.size());
    ANNSIM_CHECK_MSG(checksum64(bytes) == rec.checksum,
                     "checkpoint checksum mismatch in "
                         << name << " for partition " << partition);
    return bytes;
  };
  out.data_bytes = verify(kDataFile, data_rec);
  out.index_bytes = verify(kIndexFile, index_rec);
  return out;
}

std::vector<std::uint32_t> CheckpointStore::partitions() const {
  std::vector<std::uint32_t> out;
  if (!fs::exists(dir_)) return out;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "partition_";
    if (name.rfind(kPrefix, 0) != 0) continue;
    std::uint32_t pid = 0;
    if (std::sscanf(name.c_str() + 10, "%u", &pid) != 1) continue;
    if (has(pid)) out.push_back(pid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace annsim::recovery
