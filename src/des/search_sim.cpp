#include "annsim/des/search_sim.hpp"

#include <algorithm>
#include <deque>

#include "annsim/common/error.hpp"
#include "annsim/des/event_queue.hpp"

namespace annsim::des {

namespace {

struct Job {
  double duration = 0.0;
  std::size_t query = 0;
};

struct NodeState {
  std::vector<std::size_t> idle_cores;  ///< core ids (global) currently free
  std::deque<Job> backlog;
};

}  // namespace

SearchSimResult simulate_search(const SearchSimConfig& config,
                                const std::vector<std::vector<PartitionId>>& plans,
                                const std::vector<double>& partition_cost) {
  const std::size_t P = config.n_cores;
  ANNSIM_CHECK(P >= 1);
  ANNSIM_CHECK(config.replication >= 1 && config.replication <= P);
  ANNSIM_CHECK(partition_cost.size() >= P);

  const auto& machine = config.machine;
  const auto& mp = machine.params();
  const std::size_t n_nodes = machine.nodes_for_cores(P);
  const auto node_of = [&](std::size_t core) {
    return config.cyclic_rank_mapping ? core % n_nodes
                                      : machine.node_of_core(core);
  };

  // The master occupies its own node (node index n_nodes in "node space"),
  // so master<->worker traffic is inter-node, as on the real system.
  const double query_bytes = double(config.dim) * 4.0 + 32.0;
  const double result_bytes = double(config.k) * 16.0 + 16.0;
  const double q_msg_wire =
      mp.inter_node_latency + query_bytes / mp.inter_node_bandwidth;
  const double r_msg_wire =
      mp.inter_node_latency + result_bytes / mp.inter_node_bandwidth;
  const double rma_wire = machine.rma_seconds(std::size_t(result_bytes));

  SearchSimResult res;
  res.jobs_per_core.assign(P, 0);
  res.busy_per_core.assign(P, 0.0);

  // ---- master dispatch timeline (Algorithm 3/5: route + isend per job).
  struct Dispatch {
    double arrival;
    std::size_t node;
    double duration;
    std::size_t query;
  };
  std::vector<Dispatch> dispatches;
  std::vector<std::uint32_t> next(P, 0);  // workgroup round-robin pointers
  double t_master = 0.0;
  double wire_total = 0.0;

  res.query_latency.assign(plans.size(), 0.0);
  for (std::size_t q = 0; q < plans.size(); ++q) {
    t_master += config.route_seconds;
    for (PartitionId d : plans[q]) {
      ANNSIM_CHECK(d < P);
      const std::size_t member = (d + next[d]) % P;
      next[d] = (next[d] + 1) % std::uint32_t(config.replication);
      t_master += mp.message_cpu_overhead;
      dispatches.push_back(Dispatch{t_master + q_msg_wire, node_of(member),
                                    partition_cost[d], q});
      wire_total += q_msg_wire;
      ++res.total_jobs;
    }
  }
  const double dispatch_end = t_master;

  // ---- event-driven node service.
  EventQueue eq;
  std::vector<NodeState> nodes(n_nodes);
  for (std::size_t c = 0; c < P; ++c) {
    nodes[node_of(c)].idle_cores.push_back(c);
  }

  double master_free = dispatch_end;  // two-sided merging starts after dispatch
  double master_merge_busy = 0.0;
  double last_result = dispatch_end;
  double worker_comm_cpu = 0.0;

  // start_job/complete are mutually recursive through the event queue.
  std::function<void(std::size_t, std::size_t, Job)> start_job =
      [&](std::size_t node, std::size_t core, Job job) {
        ++res.jobs_per_core[core];
        const double busy = job.duration + mp.message_cpu_overhead;
        res.busy_per_core[core] += busy;
        res.compute_seconds += job.duration;
        worker_comm_cpu += mp.message_cpu_overhead;
        eq.schedule_in(busy, [&, node, core, job] {
          // Result return.
          double done = 0.0;
          if (config.one_sided) {
            done = eq.now() + rma_wire;
            wire_total += rma_wire;
          } else {
            const double arrival = eq.now() + r_msg_wire;
            wire_total += r_msg_wire;
            master_free = std::max(master_free, arrival) + config.merge_seconds;
            master_merge_busy += config.merge_seconds;
            done = master_free;
          }
          last_result = std::max(last_result, done);
          res.query_latency[job.query] =
              std::max(res.query_latency[job.query], done);
          // Serve the node backlog.
          NodeState& ns = nodes[node];
          if (!ns.backlog.empty()) {
            Job nextjob = ns.backlog.front();
            ns.backlog.pop_front();
            start_job(node, core, nextjob);
          } else {
            ns.idle_cores.push_back(core);
          }
        });
      };

  for (const auto& d : dispatches) {
    eq.schedule(d.arrival, [&, d] {
      NodeState& ns = nodes[d.node];
      if (!ns.idle_cores.empty()) {
        const std::size_t core = ns.idle_cores.back();
        ns.idle_cores.pop_back();
        start_job(d.node, core, Job{d.duration, d.query});
      } else {
        ns.backlog.push_back(Job{d.duration, d.query});
      }
    });
  }
  eq.run();

  // ---- one-sided mode: the master reads its window once everyone is done
  // (constant small cost per query slot).
  double master_read = 0.0;
  if (config.one_sided) {
    master_read = double(plans.size()) * config.merge_seconds * 0.5;
    last_result += master_read;
  }

  res.makespan_seconds = std::max(last_result, dispatch_end);
  const double route_total = double(plans.size()) * config.route_seconds;
  const double dispatch_cpu = double(res.total_jobs) * mp.message_cpu_overhead;
  res.master_busy_seconds =
      route_total + dispatch_cpu + master_merge_busy + master_read;
  res.comm_cpu_seconds =
      dispatch_cpu + worker_comm_cpu + master_merge_busy + master_read;
  res.wire_seconds = wire_total;

  // ---- Fig 5 breakdown over (P+1) cores x makespan.
  const double total_core_seconds = double(P + 1) * res.makespan_seconds;
  const double computation = res.compute_seconds + route_total;
  res.computation_fraction = computation / total_core_seconds;
  res.communication_fraction = res.comm_cpu_seconds / total_core_seconds;
  res.idle_fraction =
      std::max(0.0, 1.0 - res.computation_fraction - res.communication_fraction);
  return res;
}

}  // namespace annsim::des
