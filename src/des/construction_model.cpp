#include "annsim/des/construction_model.hpp"

#include <bit>
#include <cmath>

#include "annsim/common/error.hpp"

namespace annsim::des {

ConstructionEstimate estimate_construction(const ConstructionModelConfig& config) {
  ANNSIM_CHECK(std::has_single_bit(config.n_cores));
  ANNSIM_CHECK(config.n_points >= config.n_cores);

  const auto& mp = config.machine.params();
  const auto& costs = config.costs;
  const double P = double(config.n_cores);
  const double n = double(config.n_points);
  const double m = n / P;  // points per rank (constant across levels)
  const double row_bytes = double(config.dim) * 4.0 + 8.0;
  const int levels = std::bit_width(config.n_cores) - 1;

  ConstructionEstimate est;

  // ---- per-level VP-tree costs.
  double vp = 0.0;
  for (int l = 0; l < levels; ++l) {
    const double g = P / double(1 << l);  // ranks in this level's group

    // Algorithm 1: local candidate scoring + root re-scoring of g proposals.
    const double local_score =
        double(config.vantage_candidates * config.vantage_sample) * costs.dist_eval;
    const double root_score = g * double(config.vantage_sample) * costs.dist_eval;
    const double gather_bcast =
        2.0 * (std::log2(std::max(2.0, g)) *
               (mp.inter_node_latency + row_bytes / mp.inter_node_bandwidth));

    // Distance pass to the vantage point.
    const double dist_pass = m * costs.dist_eval;

    // Distributed median: ~log2(n_level) rounds; local work sums to ~2m
    // comparisons; each round costs a small collective.
    const double rounds = std::log2(std::max(2.0, m * g));
    const double median_local = 2.0 * m * 2.0e-9;
    const double median_collectives =
        rounds * 2.0 * std::log2(std::max(2.0, g)) * mp.inter_node_latency;

    // MPI_Alltoallv shuffle: every rank moves ~m rows; latency grows with
    // the fan-out g.
    const double shuffle = g * mp.inter_node_latency +
                           m * row_bytes / mp.inter_node_bandwidth;

    vp += local_score + root_score + gather_bcast + dist_pass + median_local +
          median_collectives + shuffle;
  }
  est.vp_tree_seconds = vp;

  // ---- local HNSW builds (perfectly parallel across cores; the per-point
  // cost shrinks with partition size through the ln factor).
  est.hnsw_seconds = costs.hnsw_build_seconds(std::size_t(m));

  // ---- data load: each node pulls its cores' share from the parallel FS.
  const double bytes_per_node =
      m * row_bytes * double(mp.cores_per_node);
  est.load_seconds = bytes_per_node / config.io_bandwidth_per_node;

  // ---- startup: serialized per-rank wire-up at scale.
  est.startup_seconds = config.fixed_overhead + config.startup_per_rank * P;

  est.total_seconds = est.vp_tree_seconds + est.hnsw_seconds +
                      est.load_seconds + est.startup_seconds;
  return est;
}

}  // namespace annsim::des
