#include "annsim/hnsw/hnsw_index.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <queue>
#include <sstream>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/hnsw/flat_graph.hpp"

namespace annsim::hnsw {

namespace {

/// Candidate ordered by distance to the query; min-heap via std::greater.
/// Distances are in *search space* (squared L2 for Metric::kL2) — strictly
/// order-preserving w.r.t. the ranking distance; conversion happens once at
/// result emission.
struct Cand {
  float dist;
  LocalId node;
  friend bool operator<(const Cand& a, const Cand& b) noexcept {
    return a.dist < b.dist || (a.dist == b.dist && a.node < b.node);
  }
  friend bool operator>(const Cand& a, const Cand& b) noexcept { return b < a; }
};

/// Epoch-stamped visited set, reusable across searches without clearing.
class VisitedSet {
 public:
  void resize(std::size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
  }

  void new_epoch() noexcept {
    if (++epoch_ == 0) {  // wrapped: reset all stamps
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  bool test_and_set(LocalId v) noexcept {
    if (stamp_[v] == epoch_) return true;
    stamp_[v] = epoch_;
    return false;
  }

  void prefetch(LocalId v) const noexcept { simd::prefetch_line(&stamp_[v]); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// Per-search working memory: the visited set plus every buffer the beam
/// search touches, so a warmed-up search performs no allocations per
/// expansion (and, once pooled buffers reach steady-state capacity, none per
/// search beyond the returned result vector).
struct SearchScratch {
  VisitedSet visited;
  std::vector<LocalId> ids;     ///< unvisited-neighbor gather (flat path)
  std::vector<float> dists;     ///< batched distances (flat path)
  std::vector<Cand> frontier;   ///< min-heap storage (flat path)
  std::vector<Cand> best;       ///< max-heap storage (flat path)
  std::vector<LocalId> neigh_copy;  ///< locked-link snapshot (mutable path)
};

/// Pool of SearchScratch so concurrent searches don't allocate per query.
class ScratchPool {
 public:
  explicit ScratchPool(std::size_t n) : n_(n) {}

  std::unique_ptr<SearchScratch> acquire(std::size_t max_degree) {
    std::unique_ptr<SearchScratch> s;
    {
      std::lock_guard lk(mu_);
      if (!free_.empty()) {
        s = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (!s) s = std::make_unique<SearchScratch>();
    s->visited.resize(n_);
    if (s->ids.size() < max_degree) {
      s->ids.resize(max_degree);
      s->dists.resize(max_degree);
    }
    return s;
  }

  void release(std::unique_ptr<SearchScratch> s) {
    std::lock_guard lk(mu_);
    free_.push_back(std::move(s));
  }

 private:
  std::size_t n_;
  std::mutex mu_;
  std::vector<std::unique_ptr<SearchScratch>> free_;
};

}  // namespace

struct HnswIndex::Impl {
  /// links[node][layer] = neighbor list; layer 0 capacity 2M, others M.
  /// Populated only while the index is mutable; freeze() releases it.
  struct Node {
    std::vector<std::vector<LocalId>> layers;  // size = level + 1
    bool inserted = false;
  };

  Impl(std::size_t n, bool mutable_graph)
      : nodes(mutable_graph ? n : 0),
        locks(mutable_graph ? std::make_unique<std::mutex[]>(n) : nullptr),
        scratch(n) {}

  std::vector<Node> nodes;
  std::unique_ptr<std::mutex[]> locks;
  mutable ScratchPool scratch;

  std::mutex entry_mu;
  LocalId entry_point = kInvalidLocalId;
  int max_level = -1;
  std::atomic<std::size_t> n_inserted{0};

  /// Read-optimized representation; valid once `frozen` is true.
  FlatGraph flat;
  std::atomic<bool> frozen{false};
};

HnswIndex::HnswIndex(const data::Dataset* data, HnswParams params)
    : data_(data),
      params_(params),
      impl_(std::make_unique<Impl>(data->size(), /*mutable_graph=*/true)) {
  ANNSIM_CHECK(data_ != nullptr);
  ANNSIM_CHECK(params_.M >= 2);
  ANNSIM_CHECK(params_.ef_construction >= params_.M);
  if (params_.level_mult <= 0.0) {
    params_.level_mult = 1.0 / std::log(double(params_.M));
  }
}

HnswIndex::HnswIndex(const data::Dataset* data, HnswParams params,
                     std::unique_ptr<Impl> impl)
    : data_(data), params_(params), impl_(std::move(impl)) {}

HnswIndex::~HnswIndex() = default;
HnswIndex::HnswIndex(HnswIndex&&) noexcept = default;
HnswIndex& HnswIndex::operator=(HnswIndex&&) noexcept = default;

std::size_t HnswIndex::size() const noexcept {
  return impl_->n_inserted.load(std::memory_order_relaxed);
}

bool HnswIndex::is_frozen() const noexcept {
  return impl_->frozen.load(std::memory_order_acquire);
}

const FlatGraph& HnswIndex::flat_graph() const {
  ANNSIM_CHECK_MSG(is_frozen(),
                   "HnswIndex::flat_graph: index is not frozen yet");
  return impl_->flat;
}

namespace {

/// How the mutable-path beam search reads neighbor lists.
enum class LinkAccess {
  kLocked,    ///< concurrent inserts possible: snapshot links under the lock
  kUnlocked,  ///< graph complete: iterate the lists in place, zero-copy
};

/// Beam search within one layer of the *mutable* linked graph (Algorithm 2
/// of the HNSW paper). Returns up to `ef` nearest candidates as a
/// max-heap-ordered vector (unsorted), with search-space distances.
std::vector<Cand> search_layer(const data::Dataset& data,
                               const simd::DistanceComputer& dist,
                               const HnswIndex::Impl* impl, const float* query,
                               std::span<const LocalId> entries, int layer,
                               std::size_t ef, SearchScratch& scratch,
                               LinkAccess access) {
  VisitedSet& visited = scratch.visited;
  visited.new_epoch();
  std::priority_queue<Cand, std::vector<Cand>, std::greater<>> frontier;  // min
  std::priority_queue<Cand> best;                                         // max

  for (LocalId e : entries) {
    if (visited.test_and_set(e)) continue;
    const float d = dist.search_dist(query, data.row(e));
    frontier.push({d, e});
    best.push({d, e});
    if (best.size() > ef) best.pop();
  }

  while (!frontier.empty()) {
    const Cand c = frontier.top();
    if (best.size() >= ef && c.dist > best.top().dist) break;
    frontier.pop();

    std::span<const LocalId> neigh;
    if (access == LinkAccess::kLocked) {
      // Copy the links into a reused buffer under the node's lock (the list
      // may be mutated by concurrent inserts). The buffer's capacity is
      // retained across expansions, so steady-state cost is a memcpy.
      std::lock_guard lk(impl->locks[c.node]);
      const auto& node = impl->nodes[c.node];
      if (std::size_t(layer) >= node.layers.size()) continue;
      scratch.neigh_copy.assign(node.layers[layer].begin(),
                                node.layers[layer].end());
      neigh = scratch.neigh_copy;
    } else {
      // Graph is complete: read the list in place, no copy, no lock.
      const auto& node = impl->nodes[c.node];
      if (std::size_t(layer) >= node.layers.size()) continue;
      neigh = node.layers[layer];
    }
    for (LocalId nb : neigh) {
      if (visited.test_and_set(nb)) continue;
      const float d = dist.search_dist(query, data.row(nb));
      if (best.size() < ef || d < best.top().dist) {
        frontier.push({d, nb});
        best.push({d, nb});
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<Cand> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  return out;  // descending by distance
}

// ---- frozen-path heap helpers (vectors + std heap algorithms, so the
// underlying storage lives in the pooled scratch and is reused) ----

inline void min_push(std::vector<Cand>& h, Cand c) {
  h.push_back(c);
  std::push_heap(h.begin(), h.end(), std::greater<>{});
}

inline Cand min_pop(std::vector<Cand>& h) {
  std::pop_heap(h.begin(), h.end(), std::greater<>{});
  const Cand c = h.back();
  h.pop_back();
  return c;
}

inline void max_push(std::vector<Cand>& h, Cand c) {
  h.push_back(c);
  std::push_heap(h.begin(), h.end());
}

inline void max_pop(std::vector<Cand>& h) {
  std::pop_heap(h.begin(), h.end());
  h.pop_back();
}

/// Beam search within one layer of the *frozen* flat graph. Identical
/// candidate selection to the linked search_layer, but: adjacency is an
/// in-place span out of the CSR slab (no copy, no lock), neighbor distances
/// are computed by the batched SIMD kernel, and visited stamps / vector rows
/// / the next candidate's adjacency block are software-prefetched.
/// Leaves up to `ef` nearest candidates in scratch.best (max-heap order).
void search_layer_flat(const data::Dataset& data,
                       const simd::DistanceComputer& dist, const FlatGraph& g,
                       const float* query, std::span<const LocalId> entries,
                       int layer, std::size_t ef, SearchScratch& scratch) {
  VisitedSet& visited = scratch.visited;
  visited.new_epoch();
  auto& frontier = scratch.frontier;
  auto& best = scratch.best;
  frontier.clear();
  best.clear();

  const float* base = data.row(0);
  const std::size_t stride = data.stride();

  for (LocalId e : entries) {
    if (visited.test_and_set(e)) continue;
    const float d = dist.search_dist(query, data.row(e));
    min_push(frontier, {d, e});
    max_push(best, {d, e});
    if (best.size() > ef) max_pop(best);
  }

  while (!frontier.empty()) {
    if (best.size() >= ef && frontier.front().dist > best.front().dist) break;
    const Cand c = min_pop(frontier);

    const std::span<const LocalId> neigh = g.neighbors(c.node, layer);
    // Pass 1: prefetch the visited stamps for the whole adjacency list.
    for (LocalId nb : neigh) visited.prefetch(nb);
    // Pass 2: gather unvisited neighbors for the batched kernel.
    std::size_t m = 0;
    for (LocalId nb : neigh) {
      if (!visited.test_and_set(nb)) scratch.ids[m++] = nb;
    }
    if (m == 0) continue;
    // One batched call computes all m distances, prefetching rows ahead.
    dist.search_dist_batch(query, base, stride, scratch.ids.data(), m,
                           scratch.dists.data());
    for (std::size_t i = 0; i < m; ++i) {
      const float d = scratch.dists[i];
      if (best.size() < ef || d < best.front().dist) {
        min_push(frontier, {d, scratch.ids[i]});
        max_push(best, {d, scratch.ids[i]});
        if (best.size() > ef) max_pop(best);
      }
    }
    // Warm the next expansion's adjacency block while the heaps settle.
    if (!frontier.empty()) g.prefetch0(frontier.front().node);
  }
}

/// Heuristic neighbor selection (Algorithm 4 of the HNSW paper): scan
/// candidates nearest-first, keep one only if it is closer to the query than
/// to every already-kept neighbor; backfill with pruned candidates.
/// Comparisons happen in search space (order-identical to ranking space).
std::vector<LocalId> select_neighbors(const data::Dataset& data,
                                      const simd::DistanceComputer& dist,
                                      std::vector<Cand> candidates,
                                      std::size_t m) {
  std::sort(candidates.begin(), candidates.end());  // ascending distance
  std::vector<LocalId> kept;
  std::vector<LocalId> pruned;
  kept.reserve(m);
  for (const Cand& c : candidates) {
    if (kept.size() >= m) break;
    bool closer_to_kept = false;
    for (LocalId s : kept) {
      if (dist.search_dist(data.row(c.node), data.row(s)) < c.dist) {
        closer_to_kept = true;
        break;
      }
    }
    if (closer_to_kept) {
      pruned.push_back(c.node);
    } else {
      kept.push_back(c.node);
    }
  }
  for (LocalId p : pruned) {
    if (kept.size() >= m) break;
    kept.push_back(p);  // keepPrunedConnections
  }
  return kept;
}

}  // namespace

void HnswIndex::insert(LocalId node) {
  ANNSIM_CHECK(node < data_->size());
  Impl& im = *impl_;
  if (im.frozen.load(std::memory_order_acquire)) [[unlikely]] {
    std::ostringstream os;
    os << "HnswIndex::insert(" << node << "): index is frozen (read-only "
       << "FlatGraph form, " << im.n_inserted.load(std::memory_order_acquire)
       << " nodes); inserts are only legal in the mutable linked form";
    throw FrozenIndexError(os.str());
  }
  ANNSIM_CHECK_MSG(!im.nodes[node].inserted, "node inserted twice: " << node);

  const simd::DistanceComputer dist(params_.metric, data_->dim());
  const float* qv = data_->row(node);

  // Level assignment: floor(-ln(U) * mL), derived deterministically from the
  // seed and the node id so parallel builds are reproducible.
  Rng rng = Rng(params_.seed).split(node);
  double u = 0.0;
  while (u == 0.0) u = rng.uniform();
  const int level = int(-std::log(u) * params_.level_mult);

  {
    std::lock_guard lk(im.locks[node]);
    im.nodes[node].layers.assign(std::size_t(level) + 1, {});
  }

  // Snapshot the entry point / top level.
  LocalId entry;
  int top_level;
  {
    std::lock_guard lk(im.entry_mu);
    entry = im.entry_point;
    top_level = im.max_level;
    if (entry == kInvalidLocalId) {
      // First node becomes the entry point.
      im.entry_point = node;
      im.max_level = level;
      im.nodes[node].inserted = true;
      im.n_inserted.fetch_add(1, std::memory_order_release);
      return;
    }
  }

  auto scratch = im.scratch.acquire(0);

  // Greedy descent through layers above the node's level.
  std::vector<LocalId> eps{entry};
  for (int layer = top_level; layer > level; --layer) {
    auto res = search_layer(*data_, dist, impl_.get(), qv, eps, layer, 1,
                            *scratch, LinkAccess::kLocked);
    if (!res.empty()) eps = {res.back().node};  // nearest is last (descending)
  }

  // Connect at each layer from min(level, top_level) down to 0.
  for (int layer = std::min(level, top_level); layer >= 0; --layer) {
    auto candidates = search_layer(*data_, dist, impl_.get(), qv, eps, layer,
                                   params_.ef_construction, *scratch,
                                   LinkAccess::kLocked);
    const std::size_t m_layer = layer == 0 ? params_.M * 2 : params_.M;
    auto neighbors =
        select_neighbors(*data_, dist, candidates, params_.M);

    {
      std::lock_guard lk(im.locks[node]);
      im.nodes[node].layers[layer] = neighbors;
    }

    // Back-links, shrinking the neighbor's list when it overflows.
    for (LocalId nb : neighbors) {
      std::lock_guard lk(im.locks[nb]);
      auto& links = im.nodes[nb].layers[layer];
      if (links.size() < m_layer) {
        links.push_back(node);
      } else {
        std::vector<Cand> cands;
        cands.reserve(links.size() + 1);
        const float* nbv = data_->row(nb);
        cands.push_back({dist.search_dist(nbv, qv), node});
        for (LocalId x : links) {
          cands.push_back({dist.search_dist(nbv, data_->row(x)), x});
        }
        links = select_neighbors(*data_, dist, std::move(cands), m_layer);
      }
    }

    // Next layer starts from this layer's candidates.
    eps.clear();
    for (const Cand& c : candidates) eps.push_back(c.node);
  }

  {
    std::lock_guard lk(im.entry_mu);
    if (level > im.max_level) {
      im.max_level = level;
      im.entry_point = node;
    }
  }
  {
    std::lock_guard lk(im.locks[node]);
    im.nodes[node].inserted = true;
  }
  // Release so a searcher that observes the final count (acquire) sees every
  // link this insert wrote and may then read the graph without locks.
  im.n_inserted.fetch_add(1, std::memory_order_release);
  im.scratch.release(std::move(scratch));
}

void HnswIndex::build(ThreadPool* pool) {
  const std::size_t n = data_->size();
  if (n == 0) {
    freeze();
    return;
  }
  if (pool != nullptr && pool->size() > 1) {
    // Seed the graph with one node to fix the entry point, then parallelize.
    insert(0);
    pool->parallel_for(1, n, [this](std::size_t i) { insert(LocalId(i)); });
  } else {
    for (std::size_t i = 0; i < n; ++i) insert(LocalId(i));
  }
  freeze();
}

void HnswIndex::freeze() {
  Impl& im = *impl_;
  if (im.frozen.load(std::memory_order_acquire)) return;

  std::size_t slab_hint = 0;
  for (const auto& node : im.nodes) {
    for (const auto& layer : node.layers) slab_hint += 1 + layer.size();
  }
  FlatGraph g;
  g.init(im.nodes.size(), slab_hint);
  for (const auto& node : im.nodes) {
    g.add_node(std::span<const std::vector<LocalId>>(node.layers));
  }
  g.set_entry(im.entry_point, im.max_level);
  im.flat = std::move(g);

  // Drop the mutable linked form; the flat graph is now the only
  // representation (inserts are rejected from here on).
  im.nodes.clear();
  im.nodes.shrink_to_fit();
  im.frozen.store(true, std::memory_order_release);
}

std::vector<Neighbor> HnswIndex::search(const float* query, std::size_t k,
                                        std::size_t ef) const {
  ANNSIM_CHECK(k > 0);
  const Impl& im = *impl_;
  if (ef == 0) ef = params_.ef_search;
  ef = std::max(ef, k);
  const simd::DistanceComputer dist(params_.metric, data_->dim());

  // ---- frozen hot path: flat graph, batched kernels, deferred sqrt ----
  if (im.frozen.load(std::memory_order_acquire)) {
    const FlatGraph& g = im.flat;
    LocalId ep = g.entry_point();
    if (ep == kInvalidLocalId) return {};
    auto scratch = im.scratch.acquire(g.max_degree());

    std::span<const LocalId> eps{&ep, 1};
    for (int layer = g.max_level(); layer > 0; --layer) {
      search_layer_flat(*data_, dist, g, query, eps, layer, 1, *scratch);
      if (!scratch->best.empty()) ep = scratch->best.front().node;
    }
    search_layer_flat(*data_, dist, g, query, eps, 0, ef, *scratch);

    auto& best = scratch->best;
    std::sort_heap(best.begin(), best.end());  // ascending (dist, node)
    std::vector<Neighbor> out;
    out.reserve(std::min(k, best.size()));
    for (std::size_t i = 0; i < best.size() && out.size() < k; ++i) {
      out.push_back({dist.to_ranking(best[i].dist), data_->id(best[i].node)});
    }
    im.scratch.release(std::move(scratch));
    return out;
  }

  // ---- mutable fallback path (index still under construction) ----
  LocalId entry;
  int top_level;
  {
    // Snapshot under the lock: concurrent inserts mutate both fields.
    std::lock_guard lk(const_cast<Impl&>(im).entry_mu);
    entry = im.entry_point;
    top_level = im.max_level;
  }
  if (entry == kInvalidLocalId) return {};

  // Once every row is inserted no link can change again (rows insert exactly
  // once); the acquire load pairs with the inserters' release increments, so
  // the lists may be read in place without locks or copies.
  const bool complete =
      im.n_inserted.load(std::memory_order_acquire) == data_->size();
  const LinkAccess access =
      complete ? LinkAccess::kUnlocked : LinkAccess::kLocked;

  auto scratch = im.scratch.acquire(0);
  std::vector<LocalId> eps{entry};
  for (int layer = top_level; layer > 0; --layer) {
    auto res = search_layer(*data_, dist, impl_.get(), query, eps, layer, 1,
                            *scratch, access);
    if (!res.empty()) eps = {res.back().node};
  }
  auto candidates = search_layer(*data_, dist, impl_.get(), query, eps, 0, ef,
                                 *scratch, access);
  im.scratch.release(std::move(scratch));

  // candidates are descending by distance; take the k nearest.
  std::vector<Neighbor> out;
  out.reserve(std::min(k, candidates.size()));
  for (auto it = candidates.rbegin();
       it != candidates.rend() && out.size() < k; ++it) {
    out.push_back({dist.to_ranking(it->dist), data_->id(it->node)});
  }
  return out;
}

data::KnnResults HnswIndex::search_batch(const data::Dataset& queries,
                                         std::size_t k, std::size_t ef,
                                         ThreadPool* pool) const {
  ANNSIM_CHECK(queries.dim() == data_->dim());
  data::KnnResults results(queries.size());
  auto run = [&](std::size_t q) { results[q] = search(queries.row(q), k, ef); };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, queries.size(), run);
  } else {
    for (std::size_t q = 0; q < queries.size(); ++q) run(q);
  }
  return results;
}

HnswStats HnswIndex::stats() const {
  const Impl& im = *impl_;
  HnswStats s;
  s.n_nodes = size();
  s.max_level = im.max_level;
  s.nodes_per_level.assign(std::size_t(im.max_level + 1), 0);
  std::size_t deg0 = 0, n0 = 0;
  if (im.frozen.load(std::memory_order_acquire)) {
    const FlatGraph& g = im.flat;
    for (LocalId v = 0; v < LocalId(g.size()); ++v) {
      const int level = g.level(v);
      if (level < 0) continue;
      for (int l = 0; l <= level; ++l) {
        if (std::size_t(l) < s.nodes_per_level.size()) ++s.nodes_per_level[l];
      }
      deg0 += g.neighbors0(v).size();
      ++n0;
    }
  } else {
    for (const auto& node : im.nodes) {
      if (node.layers.empty()) continue;
      for (std::size_t l = 0; l < node.layers.size(); ++l) {
        if (l < s.nodes_per_level.size()) ++s.nodes_per_level[l];
      }
      deg0 += node.layers[0].size();
      ++n0;
    }
  }
  s.avg_degree_level0 = n0 ? double(deg0) / double(n0) : 0.0;
  return s;
}

std::vector<std::byte> HnswIndex::to_bytes() const {
  const Impl& im = *impl_;
  BinaryWriter w;
  w.reserve(128);
  w.write(std::uint32_t{0x414E4E31});  // "ANN1"
  w.write(std::uint64_t(params_.M));
  w.write(std::uint64_t(params_.ef_construction));
  w.write(std::uint64_t(params_.ef_search));
  w.write(params_.level_mult);
  w.write(params_.seed);
  w.write(std::int32_t(params_.metric));
  w.write(std::uint64_t(data_->size()));
  w.write(std::int32_t(im.max_level));
  w.write(std::uint32_t(im.entry_point));
  if (im.frozen.load(std::memory_order_acquire)) {
    im.flat.write_nodes(w);  // same wire format, emitted from the slab
  } else {
    for (const auto& node : im.nodes) {
      w.write(std::uint32_t(node.layers.size()));
      for (const auto& layer : node.layers) {
        w.write_span(std::span<const LocalId>(layer));
      }
    }
  }
  return w.take();
}

void HnswIndex::save(const std::string& path) const {
  const auto bytes = to_bytes();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANNSIM_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  ANNSIM_CHECK(out.good());
}

HnswIndex HnswIndex::load(const std::string& path, const data::Dataset* data) {
  std::ifstream in(path, std::ios::binary);
  ANNSIM_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  std::vector<std::byte> bytes;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  bytes.resize(size);
  in.read(reinterpret_cast<char*>(bytes.data()), std::streamsize(size));
  ANNSIM_CHECK(in.good());
  return from_bytes(bytes, data);
}

HnswIndex HnswIndex::from_bytes(std::span<const std::byte> bytes,
                                const data::Dataset* data) {
  ANNSIM_CHECK(data != nullptr);
  BinaryReader r(bytes);
  ANNSIM_CHECK_MSG(r.read<std::uint32_t>() == 0x414E4E31, "bad HNSW file magic");
  HnswParams p;
  p.M = r.read<std::uint64_t>();
  p.ef_construction = r.read<std::uint64_t>();
  p.ef_search = r.read<std::uint64_t>();
  p.level_mult = r.read<double>();
  p.seed = r.read<std::uint64_t>();
  p.metric = simd::Metric(r.read<std::int32_t>());
  const auto n = r.read<std::uint64_t>();
  ANNSIM_CHECK_MSG(n == data->size(), "HNSW file does not match dataset size");

  // Deserialize straight into the frozen flat form: the linked graph (and
  // its per-node locks) are never materialized for replicas.
  auto impl = std::make_unique<Impl>(n, /*mutable_graph=*/false);
  impl->max_level = r.read<std::int32_t>();
  impl->entry_point = r.read<std::uint32_t>();
  FlatGraph g;
  g.init(n, r.remaining() / sizeof(LocalId));
  for (std::uint64_t i = 0; i < n; ++i) g.add_node(r);
  g.set_entry(impl->entry_point, impl->max_level);
  impl->n_inserted.store(g.n_inserted());
  impl->flat = std::move(g);
  impl->frozen.store(true, std::memory_order_release);
  return HnswIndex(data, p, std::move(impl));
}

std::vector<Neighbor> BruteForceIndex::search(const float* query,
                                              std::size_t k) const {
  TopK topk(k);
  const std::size_t n = data_->size();
  if (n == 0) return {};
  const float* base = data_->row(0);
  const std::size_t stride = data_->stride();

  // Blocked one-to-many kernel over contiguous rows; ranking in search space
  // (order-identical), converted once on the k results at the end.
  constexpr std::size_t kBlock = 256;
  float dists[kBlock];
  for (std::size_t i0 = 0; i0 < n; i0 += kBlock) {
    const std::size_t m = std::min(kBlock, n - i0);
    dist_.search_dist_batch(query, base + i0 * stride, stride,
                            /*ids=*/nullptr, m, dists);
    for (std::size_t j = 0; j < m; ++j) {
      topk.push(dists[j], data_->id(i0 + j));
    }
  }
  auto out = topk.take_sorted();
  for (auto& nb : out) nb.dist = dist_.to_ranking(nb.dist);
  return out;
}

}  // namespace annsim::hnsw
