#include "annsim/hnsw/hnsw_index.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <queue>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/common/topk.hpp"

namespace annsim::hnsw {

namespace {

/// Candidate ordered by distance to the query; min-heap via std::greater.
struct Cand {
  float dist;
  LocalId node;
  friend bool operator<(const Cand& a, const Cand& b) noexcept {
    return a.dist < b.dist || (a.dist == b.dist && a.node < b.node);
  }
  friend bool operator>(const Cand& a, const Cand& b) noexcept { return b < a; }
};

/// Epoch-stamped visited set, reusable across searches without clearing.
class VisitedSet {
 public:
  void resize(std::size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
  }

  void new_epoch() noexcept {
    if (++epoch_ == 0) {  // wrapped: reset all stamps
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  bool test_and_set(LocalId v) noexcept {
    if (stamp_[v] == epoch_) return true;
    stamp_[v] = epoch_;
    return false;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// Pool of VisitedSet so concurrent searches don't allocate per query.
class VisitedPool {
 public:
  explicit VisitedPool(std::size_t n) : n_(n) {}

  std::unique_ptr<VisitedSet> acquire() {
    {
      std::lock_guard lk(mu_);
      if (!free_.empty()) {
        auto v = std::move(free_.back());
        free_.pop_back();
        v->resize(n_);
        return v;
      }
    }
    auto v = std::make_unique<VisitedSet>();
    v->resize(n_);
    return v;
  }

  void release(std::unique_ptr<VisitedSet> v) {
    std::lock_guard lk(mu_);
    free_.push_back(std::move(v));
  }

 private:
  std::size_t n_;
  std::mutex mu_;
  std::vector<std::unique_ptr<VisitedSet>> free_;
};

}  // namespace

struct HnswIndex::Impl {
  /// links[node][layer] = neighbor list; layer 0 capacity 2M, others M.
  struct Node {
    std::vector<std::vector<LocalId>> layers;  // size = level + 1
    bool inserted = false;
  };

  explicit Impl(std::size_t n)
      : nodes(n), locks(std::make_unique<std::mutex[]>(n)), visited(n) {}

  std::vector<Node> nodes;
  std::unique_ptr<std::mutex[]> locks;
  mutable VisitedPool visited;

  std::mutex entry_mu;
  LocalId entry_point = kInvalidLocalId;
  int max_level = -1;
  std::atomic<std::size_t> n_inserted{0};
};

HnswIndex::HnswIndex(const data::Dataset* data, HnswParams params)
    : data_(data),
      params_(params),
      impl_(std::make_unique<Impl>(data->size())) {
  ANNSIM_CHECK(data_ != nullptr);
  ANNSIM_CHECK(params_.M >= 2);
  ANNSIM_CHECK(params_.ef_construction >= params_.M);
  if (params_.level_mult <= 0.0) {
    params_.level_mult = 1.0 / std::log(double(params_.M));
  }
}

HnswIndex::HnswIndex(const data::Dataset* data, HnswParams params,
                     std::unique_ptr<Impl> impl)
    : data_(data), params_(params), impl_(std::move(impl)) {}

HnswIndex::~HnswIndex() = default;
HnswIndex::HnswIndex(HnswIndex&&) noexcept = default;
HnswIndex& HnswIndex::operator=(HnswIndex&&) noexcept = default;

std::size_t HnswIndex::size() const noexcept {
  return impl_->n_inserted.load(std::memory_order_relaxed);
}

namespace {

/// Beam search within one layer (Algorithm 2 of the HNSW paper). Returns up
/// to `ef` nearest candidates as a max-heap-ordered vector (unsorted).
std::vector<Cand> search_layer(const data::Dataset& data,
                               const simd::DistanceComputer& dist,
                               const HnswIndex::Impl* impl, const float* query,
                               std::span<const LocalId> entries, int layer,
                               std::size_t ef, VisitedSet& visited,
                               bool lock_links) {
  visited.new_epoch();
  std::priority_queue<Cand, std::vector<Cand>, std::greater<>> frontier;  // min
  std::priority_queue<Cand> best;                                         // max

  for (LocalId e : entries) {
    if (visited.test_and_set(e)) continue;
    const float d = dist(query, data.row(e));
    frontier.push({d, e});
    best.push({d, e});
    if (best.size() > ef) best.pop();
  }

  std::vector<LocalId> neigh_copy;
  while (!frontier.empty()) {
    const Cand c = frontier.top();
    if (best.size() >= ef && c.dist > best.top().dist) break;
    frontier.pop();

    const auto& node = impl->nodes[c.node];
    if (std::size_t(layer) >= node.layers.size()) continue;
    if (lock_links) {
      std::lock_guard lk(impl->locks[c.node]);
      neigh_copy = node.layers[layer];
    } else {
      neigh_copy = node.layers[layer];
    }
    for (LocalId nb : neigh_copy) {
      if (visited.test_and_set(nb)) continue;
      const float d = dist(query, data.row(nb));
      if (best.size() < ef || d < best.top().dist) {
        frontier.push({d, nb});
        best.push({d, nb});
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<Cand> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  return out;  // descending by distance
}

/// Heuristic neighbor selection (Algorithm 4 of the HNSW paper): scan
/// candidates nearest-first, keep one only if it is closer to the query than
/// to every already-kept neighbor; backfill with pruned candidates.
std::vector<LocalId> select_neighbors(const data::Dataset& data,
                                      const simd::DistanceComputer& dist,
                                      std::vector<Cand> candidates,
                                      std::size_t m) {
  std::sort(candidates.begin(), candidates.end());  // ascending distance
  std::vector<LocalId> kept;
  std::vector<LocalId> pruned;
  kept.reserve(m);
  for (const Cand& c : candidates) {
    if (kept.size() >= m) break;
    bool closer_to_kept = false;
    for (LocalId s : kept) {
      if (dist(data.row(c.node), data.row(s)) < c.dist) {
        closer_to_kept = true;
        break;
      }
    }
    if (closer_to_kept) {
      pruned.push_back(c.node);
    } else {
      kept.push_back(c.node);
    }
  }
  for (LocalId p : pruned) {
    if (kept.size() >= m) break;
    kept.push_back(p);  // keepPrunedConnections
  }
  return kept;
}

}  // namespace

void HnswIndex::insert(LocalId node) {
  ANNSIM_CHECK(node < data_->size());
  Impl& im = *impl_;
  ANNSIM_CHECK_MSG(!im.nodes[node].inserted, "node inserted twice: " << node);

  const simd::DistanceComputer dist(params_.metric, data_->dim());
  const float* qv = data_->row(node);

  // Level assignment: floor(-ln(U) * mL), derived deterministically from the
  // seed and the node id so parallel builds are reproducible.
  Rng rng = Rng(params_.seed).split(node);
  double u = 0.0;
  while (u == 0.0) u = rng.uniform();
  const int level = int(-std::log(u) * params_.level_mult);

  {
    std::lock_guard lk(im.locks[node]);
    im.nodes[node].layers.assign(std::size_t(level) + 1, {});
  }

  // Snapshot the entry point / top level.
  LocalId entry;
  int top_level;
  {
    std::lock_guard lk(im.entry_mu);
    entry = im.entry_point;
    top_level = im.max_level;
    if (entry == kInvalidLocalId) {
      // First node becomes the entry point.
      im.entry_point = node;
      im.max_level = level;
      im.nodes[node].inserted = true;
      im.n_inserted.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  auto visited = im.visited.acquire();

  // Greedy descent through layers above the node's level.
  std::vector<LocalId> eps{entry};
  for (int layer = top_level; layer > level; --layer) {
    auto res = search_layer(*data_, dist, impl_.get(), qv, eps, layer, 1,
                            *visited, /*lock_links=*/true);
    if (!res.empty()) eps = {res.back().node};  // nearest is last (descending)
  }

  // Connect at each layer from min(level, top_level) down to 0.
  for (int layer = std::min(level, top_level); layer >= 0; --layer) {
    auto candidates = search_layer(*data_, dist, impl_.get(), qv, eps, layer,
                                   params_.ef_construction, *visited,
                                   /*lock_links=*/true);
    const std::size_t m_layer = layer == 0 ? params_.M * 2 : params_.M;
    auto neighbors =
        select_neighbors(*data_, dist, candidates, params_.M);

    {
      std::lock_guard lk(im.locks[node]);
      im.nodes[node].layers[layer] = neighbors;
    }

    // Back-links, shrinking the neighbor's list when it overflows.
    for (LocalId nb : neighbors) {
      std::lock_guard lk(im.locks[nb]);
      auto& links = im.nodes[nb].layers[layer];
      if (links.size() < m_layer) {
        links.push_back(node);
      } else {
        std::vector<Cand> cands;
        cands.reserve(links.size() + 1);
        const float* nbv = data_->row(nb);
        cands.push_back({dist(nbv, qv), node});
        for (LocalId x : links) cands.push_back({dist(nbv, data_->row(x)), x});
        links = select_neighbors(*data_, dist, std::move(cands), m_layer);
      }
    }

    // Next layer starts from this layer's candidates.
    eps.clear();
    for (const Cand& c : candidates) eps.push_back(c.node);
  }

  {
    std::lock_guard lk(im.entry_mu);
    if (level > im.max_level) {
      im.max_level = level;
      im.entry_point = node;
    }
  }
  {
    std::lock_guard lk(im.locks[node]);
    im.nodes[node].inserted = true;
  }
  im.n_inserted.fetch_add(1, std::memory_order_relaxed);
  im.visited.release(std::move(visited));
}

void HnswIndex::build(ThreadPool* pool) {
  const std::size_t n = data_->size();
  if (n == 0) return;
  if (pool != nullptr && pool->size() > 1) {
    // Seed the graph with one node to fix the entry point, then parallelize.
    insert(0);
    pool->parallel_for(1, n, [this](std::size_t i) { insert(LocalId(i)); });
  } else {
    for (std::size_t i = 0; i < n; ++i) insert(LocalId(i));
  }
}

std::vector<Neighbor> HnswIndex::search(const float* query, std::size_t k,
                                        std::size_t ef) const {
  ANNSIM_CHECK(k > 0);
  const Impl& im = *impl_;
  if (im.entry_point == kInvalidLocalId) return {};
  if (ef == 0) ef = params_.ef_search;
  ef = std::max(ef, k);

  const simd::DistanceComputer dist(params_.metric, data_->dim());
  auto visited = im.visited.acquire();

  std::vector<LocalId> eps{im.entry_point};
  for (int layer = im.max_level; layer > 0; --layer) {
    auto res = search_layer(*data_, dist, impl_.get(), query, eps, layer, 1,
                            *visited, /*lock_links=*/false);
    if (!res.empty()) eps = {res.back().node};
  }
  auto candidates = search_layer(*data_, dist, impl_.get(), query, eps, 0, ef,
                                 *visited, /*lock_links=*/false);
  im.visited.release(std::move(visited));

  // candidates are descending by distance; take the k nearest.
  std::vector<Neighbor> out;
  out.reserve(std::min(k, candidates.size()));
  for (auto it = candidates.rbegin();
       it != candidates.rend() && out.size() < k; ++it) {
    out.push_back({it->dist, data_->id(it->node)});
  }
  return out;
}

data::KnnResults HnswIndex::search_batch(const data::Dataset& queries,
                                         std::size_t k, std::size_t ef,
                                         ThreadPool* pool) const {
  ANNSIM_CHECK(queries.dim() == data_->dim());
  data::KnnResults results(queries.size());
  auto run = [&](std::size_t q) { results[q] = search(queries.row(q), k, ef); };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, queries.size(), run);
  } else {
    for (std::size_t q = 0; q < queries.size(); ++q) run(q);
  }
  return results;
}

HnswStats HnswIndex::stats() const {
  const Impl& im = *impl_;
  HnswStats s;
  s.n_nodes = size();
  s.max_level = im.max_level;
  s.nodes_per_level.assign(std::size_t(im.max_level + 1), 0);
  std::size_t deg0 = 0, n0 = 0;
  for (const auto& node : im.nodes) {
    if (node.layers.empty()) continue;
    for (std::size_t l = 0; l < node.layers.size(); ++l) {
      if (l < s.nodes_per_level.size()) ++s.nodes_per_level[l];
    }
    deg0 += node.layers[0].size();
    ++n0;
  }
  s.avg_degree_level0 = n0 ? double(deg0) / double(n0) : 0.0;
  return s;
}

std::vector<std::byte> HnswIndex::to_bytes() const {
  const Impl& im = *impl_;
  BinaryWriter w;
  w.write(std::uint32_t{0x414E4E31});  // "ANN1"
  w.write(std::uint64_t(params_.M));
  w.write(std::uint64_t(params_.ef_construction));
  w.write(std::uint64_t(params_.ef_search));
  w.write(params_.level_mult);
  w.write(params_.seed);
  w.write(std::int32_t(params_.metric));
  w.write(std::uint64_t(data_->size()));
  w.write(std::int32_t(im.max_level));
  w.write(std::uint32_t(im.entry_point));
  for (const auto& node : im.nodes) {
    w.write(std::uint32_t(node.layers.size()));
    for (const auto& layer : node.layers) {
      w.write_span(std::span<const LocalId>(layer));
    }
  }
  return w.take();
}

void HnswIndex::save(const std::string& path) const {
  const auto bytes = to_bytes();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ANNSIM_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  ANNSIM_CHECK(out.good());
}

HnswIndex HnswIndex::load(const std::string& path, const data::Dataset* data) {
  std::ifstream in(path, std::ios::binary);
  ANNSIM_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  std::vector<std::byte> bytes;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  bytes.resize(size);
  in.read(reinterpret_cast<char*>(bytes.data()), std::streamsize(size));
  ANNSIM_CHECK(in.good());
  return from_bytes(bytes, data);
}

HnswIndex HnswIndex::from_bytes(std::span<const std::byte> bytes,
                                const data::Dataset* data) {
  ANNSIM_CHECK(data != nullptr);
  BinaryReader r(bytes);
  ANNSIM_CHECK_MSG(r.read<std::uint32_t>() == 0x414E4E31, "bad HNSW file magic");
  HnswParams p;
  p.M = r.read<std::uint64_t>();
  p.ef_construction = r.read<std::uint64_t>();
  p.ef_search = r.read<std::uint64_t>();
  p.level_mult = r.read<double>();
  p.seed = r.read<std::uint64_t>();
  p.metric = simd::Metric(r.read<std::int32_t>());
  const auto n = r.read<std::uint64_t>();
  ANNSIM_CHECK_MSG(n == data->size(), "HNSW file does not match dataset size");

  auto impl = std::make_unique<Impl>(n);
  impl->max_level = r.read<std::int32_t>();
  impl->entry_point = r.read<std::uint32_t>();
  std::size_t inserted = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto n_layers = r.read<std::uint32_t>();
    auto& node = impl->nodes[i];
    node.layers.resize(n_layers);
    for (auto& layer : node.layers) layer = r.read_vector<LocalId>();
    if (n_layers > 0) {
      node.inserted = true;
      ++inserted;
    }
  }
  impl->n_inserted.store(inserted);
  return HnswIndex(data, p, std::move(impl));
}

std::vector<Neighbor> BruteForceIndex::search(const float* query,
                                              std::size_t k) const {
  TopK topk(k);
  for (std::size_t i = 0; i < data_->size(); ++i) {
    topk.push(dist_(query, data_->row(i)), data_->id(i));
  }
  return topk.take_sorted();
}

}  // namespace annsim::hnsw
