#include "annsim/hnsw/flat_graph.hpp"

#include "annsim/common/error.hpp"

namespace annsim::hnsw {

void FlatGraph::init(std::size_t n, std::size_t slab_hint) {
  slab_.clear();
  slab_.reserve(slab_hint + 1);
  slab_.push_back(0);  // shared sentinel block: never-inserted nodes point here
  l0_off_.clear();
  l0_off_.reserve(n);
  level_.clear();
  level_.reserve(n);
  upper_start_.clear();
  upper_start_.reserve(n);
  upper_off_.clear();
  n_inserted_ = 0;
  max_degree_ = 0;
  entry_point_ = kInvalidLocalId;
  max_level_ = -1;
}

std::size_t FlatGraph::begin_node(std::size_t n_layers) {
  const std::size_t v = level_.size();
  level_.push_back(std::int32_t(n_layers) - 1);
  l0_off_.push_back(0);  // sentinel unless a layer-0 block is appended below
  upper_start_.push_back(upper_off_.size());
  if (n_layers > 0) ++n_inserted_;
  return v;
}

void FlatGraph::add_node(std::span<const std::vector<LocalId>> layers) {
  const std::size_t v = begin_node(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const std::uint64_t off = slab_.size();
    if (l == 0) {
      l0_off_[v] = off;
    } else {
      upper_off_.push_back(off);
    }
    slab_.push_back(LocalId(layers[l].size()));
    slab_.insert(slab_.end(), layers[l].begin(), layers[l].end());
    if (layers[l].size() > max_degree_) max_degree_ = layers[l].size();
  }
}

void FlatGraph::add_node(BinaryReader& r) {
  const auto n_layers = r.read<std::uint32_t>();
  const std::size_t v = begin_node(n_layers);
  for (std::uint32_t l = 0; l < n_layers; ++l) {
    const auto count = r.read<std::uint64_t>();
    const std::uint64_t off = slab_.size();
    if (l == 0) {
      l0_off_[v] = off;
    } else {
      upper_off_.push_back(off);
    }
    slab_.push_back(LocalId(count));
    const std::size_t data_at = slab_.size();
    slab_.resize(data_at + count);
    r.read_into(std::span<LocalId>(slab_.data() + data_at, count));
    if (count > max_degree_) max_degree_ = count;
  }
}

void FlatGraph::write_nodes(BinaryWriter& w) const {
  for (std::size_t v = 0; v < size(); ++v) {
    const std::uint32_t n_layers = std::uint32_t(level_[v] + 1);
    w.write(n_layers);
    for (std::uint32_t l = 0; l < n_layers; ++l) {
      w.write_span(neighbors(LocalId(v), int(l)));
    }
  }
}

std::size_t FlatGraph::memory_bytes() const noexcept {
  return slab_.capacity() * sizeof(LocalId) +
         l0_off_.capacity() * sizeof(std::uint64_t) +
         level_.capacity() * sizeof(std::int32_t) +
         upper_start_.capacity() * sizeof(std::uint64_t) +
         upper_off_.capacity() * sizeof(std::uint64_t);
}

}  // namespace annsim::hnsw
