#include "annsim/vptree/partition_vp_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::vptree {
namespace {

PartitionVpTreeParams params(std::size_t parts) {
  PartitionVpTreeParams p;
  p.target_partitions = parts;
  p.vantage_candidates = 20;
  p.vantage_sample = 64;
  return p;
}

TEST(PartitionVpTree, BuildsBalancedPartitions) {
  auto w = data::make_sift_like(2048, 10, 41);
  auto built = PartitionVpTree::build(w.base, params(8));
  EXPECT_EQ(built.tree.n_partitions(), 8u);
  EXPECT_EQ(built.assignment.size(), 2048u);
  ASSERT_EQ(built.partition_sizes.size(), 8u);
  for (auto s : built.partition_sizes) {
    EXPECT_GE(s, 2048u / 8 - 2);
    EXPECT_LE(s, 2048u / 8 + 2);
  }
}

TEST(PartitionVpTree, DepthIsLogOfPartitions) {
  auto w = data::make_sift_like(1024, 5, 42);
  EXPECT_EQ(PartitionVpTree::build(w.base, params(8)).tree.depth(), 3u);
  EXPECT_EQ(PartitionVpTree::build(w.base, params(1)).tree.depth(), 0u);
}

TEST(PartitionVpTree, RejectsNonPowerOfTwo) {
  auto w = data::make_sift_like(100, 1, 43);
  EXPECT_THROW((void)PartitionVpTree::build(w.base, params(6)), Error);
}

TEST(PartitionVpTree, RejectsNonMetric) {
  auto w = data::make_sift_like(100, 1, 44);
  auto p = params(4);
  p.metric = simd::Metric::kCosine;
  EXPECT_THROW((void)PartitionVpTree::build(w.base, p), Error);
}

TEST(PartitionVpTree, RouteNearestMatchesAssignmentForBasePoints) {
  // A base point routed through the tree must land in its own partition
  // (ties at the boundary excepted; require near-total agreement).
  auto w = data::make_sift_like(1000, 1, 45);
  auto built = PartitionVpTree::build(w.base, params(8));
  std::size_t agree = 0;
  for (std::size_t i = 0; i < w.base.size(); ++i) {
    if (built.tree.route_nearest(w.base.row(i)) == built.assignment[i]) ++agree;
  }
  EXPECT_GE(agree, w.base.size() * 99 / 100);
}

TEST(PartitionVpTree, RouteBallCoversTrueNeighbors) {
  // F(q) sufficiency: with radius = true k-th distance, the routed set must
  // contain the partitions of all true k nearest neighbors.
  auto w = data::make_sift_like(1200, 25, 46);
  auto built = PartitionVpTree::build(w.base, params(8));
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const float radius = gt[q].back().dist * (1.f + 1e-5f);
    auto parts = built.tree.route_ball(w.queries.row(q), radius);
    std::set<PartitionId> visited(parts.begin(), parts.end());
    for (const auto& nb : gt[q]) {
      EXPECT_TRUE(visited.contains(built.assignment[nb.id]))
          << "query " << q << " misses partition of neighbor " << nb.id;
    }
  }
}

TEST(PartitionVpTree, RouteBallWithInfinityVisitsAll) {
  auto w = data::make_sift_like(600, 1, 47);
  auto built = PartitionVpTree::build(w.base, params(8));
  auto parts = built.tree.route_ball(w.queries.row(0),
                                     std::numeric_limits<float>::infinity());
  EXPECT_EQ(parts.size(), 8u);
}

TEST(PartitionVpTree, RouteTopkOrderedByLowerBound) {
  auto w = data::make_sift_like(800, 20, 48);
  auto built = PartitionVpTree::build(w.base, params(16));
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto dec = built.tree.route_topk(w.queries.row(q), 6);
    ASSERT_EQ(dec.partitions.size(), 6u);
    ASSERT_EQ(dec.lower_bounds.size(), 6u);
    for (std::size_t i = 1; i < dec.lower_bounds.size(); ++i) {
      EXPECT_LE(dec.lower_bounds[i - 1], dec.lower_bounds[i]);
    }
    // Partitions must be distinct.
    std::set<PartitionId> uniq(dec.partitions.begin(), dec.partitions.end());
    EXPECT_EQ(uniq.size(), dec.partitions.size());
  }
}

TEST(PartitionVpTree, RouteTopkFirstIsNearest) {
  auto w = data::make_sift_like(800, 20, 49);
  auto built = PartitionVpTree::build(w.base, params(8));
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto dec = built.tree.route_topk(w.queries.row(q), 1);
    ASSERT_EQ(dec.partitions.size(), 1u);
    EXPECT_EQ(dec.partitions[0], built.tree.route_nearest(w.queries.row(q)));
    EXPECT_FLOAT_EQ(dec.lower_bounds[0], 0.f);
  }
}

TEST(PartitionVpTree, RouteTopkCappedAtPartitionCount) {
  auto w = data::make_sift_like(400, 2, 50);
  auto built = PartitionVpTree::build(w.base, params(4));
  auto dec = built.tree.route_topk(w.queries.row(0), 100);
  EXPECT_EQ(dec.partitions.size(), 4u);
}

TEST(PartitionVpTree, MoreProbesImproveRecallCoverage) {
  // Fraction of true neighbors inside the probed partitions grows with
  // n_probe — the recall/time dial of the single-pass mode.
  auto w = data::make_sift_like(2000, 30, 51);
  auto built = PartitionVpTree::build(w.base, params(16));
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  auto coverage = [&](std::size_t probes) {
    std::size_t hit = 0, total = 0;
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      auto dec = built.tree.route_topk(w.queries.row(q), probes);
      std::set<PartitionId> visited(dec.partitions.begin(), dec.partitions.end());
      for (const auto& nb : gt[q]) {
        ++total;
        if (visited.contains(built.assignment[nb.id])) ++hit;
      }
    }
    return double(hit) / double(total);
  };
  const double c1 = coverage(1);
  const double c4 = coverage(4);
  const double c16 = coverage(16);
  EXPECT_LE(c1, c4 + 1e-12);
  EXPECT_LE(c4, c16 + 1e-12);
  EXPECT_DOUBLE_EQ(c16, 1.0);  // probing everything covers everything
}

TEST(PartitionVpTree, SerializeRoundTrip) {
  auto w = data::make_sift_like(512, 10, 52);
  auto built = PartitionVpTree::build(w.base, params(8));
  BinaryWriter wtr;
  built.tree.serialize(wtr);
  auto bytes = wtr.take();
  BinaryReader rd(bytes);
  auto copy = PartitionVpTree::deserialize(rd);
  EXPECT_EQ(copy.n_partitions(), built.tree.n_partitions());
  EXPECT_EQ(copy.dim(), built.tree.dim());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(copy.route_nearest(w.queries.row(q)),
              built.tree.route_nearest(w.queries.row(q)));
    EXPECT_EQ(copy.route_topk(w.queries.row(q), 3).partitions,
              built.tree.route_topk(w.queries.row(q), 3).partitions);
  }
}

TEST(PartitionVpTree, SinglePartitionRoutesEverythingToZero) {
  auto w = data::make_sift_like(64, 5, 53);
  auto built = PartitionVpTree::build(w.base, params(1));
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(built.tree.route_nearest(w.queries.row(q)), 0u);
  }
  for (auto a : built.assignment) EXPECT_EQ(a, 0u);
}

/// Parameterized: partition balance holds across partition counts.
class PartitionCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionCounts, BalancedAtEveryScale) {
  const std::size_t parts = GetParam();
  auto w = data::make_deep_like(parts * 64, 4, 54);
  auto built = PartitionVpTree::build(w.base, params(parts));
  const auto [lo, hi] = std::minmax_element(built.partition_sizes.begin(),
                                            built.partition_sizes.end());
  EXPECT_LE(*hi - *lo, parts);  // ties can shift a handful of points
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionCounts,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace annsim::vptree
