#include "annsim/vptree/vantage.hpp"

#include <gtest/gtest.h>

#include "annsim/data/recipes.hpp"

namespace annsim::vptree {
namespace {

TEST(VantageSpread, ZeroForEquidistantPoints) {
  // All eval points at distance 1 from the candidate: spread must be 0.
  data::Dataset d(4, 2);
  d.row(0)[0] = 1.f;
  d.row(1)[0] = -1.f;
  d.row(2)[1] = 1.f;
  d.row(3)[1] = -1.f;
  const float center[2] = {0.f, 0.f};
  std::vector<std::size_t> eval{0, 1, 2, 3};
  const simd::DistanceComputer dist(simd::Metric::kL2, 2);
  EXPECT_NEAR(vantage_spread(center, d, eval, dist), 0.0, 1e-9);
}

TEST(VantageSpread, LargerForSpreadDistances) {
  data::Dataset d(4, 1);
  d.row(0)[0] = 1.f;
  d.row(1)[0] = 2.f;
  d.row(2)[0] = 3.f;
  d.row(3)[0] = 10.f;
  const float origin[1] = {0.f};
  const float near_mid[1] = {2.f};  // distances {1,0,1,8}: tighter around median
  std::vector<std::size_t> eval{0, 1, 2, 3};
  const simd::DistanceComputer dist(simd::Metric::kL2, 1);
  EXPECT_GT(vantage_spread(origin, d, eval, dist), 0.0);
  EXPECT_NE(vantage_spread(origin, d, eval, dist),
            vantage_spread(near_mid, d, eval, dist));
}

TEST(SelectVantagePoint, PicksHighestSpreadCandidate) {
  // Points clustered at x=0 plus one far outlier at x=100. The outlier sees
  // all cluster points at ~equal distance... actually the outlier gives tiny
  // spread; a cluster-edge point separates the cluster best. Verify the
  // function maximizes the published score rather than asserting geometry.
  data::Dataset d(5, 1);
  d.row(0)[0] = 0.f;
  d.row(1)[0] = 0.1f;
  d.row(2)[0] = -0.1f;
  d.row(3)[0] = 0.05f;
  d.row(4)[0] = 100.f;
  std::vector<std::size_t> cands{0, 4};
  std::vector<std::size_t> eval{0, 1, 2, 3, 4};
  const simd::DistanceComputer dist(simd::Metric::kL2, 1);
  const std::size_t best = select_vantage_point(d, cands, eval, dist);
  const double s0 = vantage_spread(d.row(0), d, eval, dist);
  const double s4 = vantage_spread(d.row(4), d, eval, dist);
  EXPECT_EQ(best, s0 >= s4 ? 0u : 4u);
}

TEST(SelectVantagePoint, RejectsEmptyInputs) {
  data::Dataset d(2, 1);
  const simd::DistanceComputer dist(simd::Metric::kL2, 1);
  std::vector<std::size_t> some{0};
  std::vector<std::size_t> none;
  EXPECT_THROW((void)select_vantage_point(d, none, some, dist), Error);
  EXPECT_THROW((void)select_vantage_point(d, some, none, dist), Error);
}

TEST(SelectVantagePointSampled, ReturnsRowFromInput) {
  auto w = data::make_sift_like(300, 5, 21);
  std::vector<std::size_t> rows;
  for (std::size_t i = 100; i < 200; ++i) rows.push_back(i);
  const simd::DistanceComputer dist(simd::Metric::kL2, w.base.dim());
  Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t vp =
        select_vantage_point_sampled(w.base, rows, 10, 32, dist, rng);
    EXPECT_GE(vp, 100u);
    EXPECT_LT(vp, 200u);
  }
}

TEST(SelectVantagePointSampled, DeterministicGivenRngState) {
  auto w = data::make_sift_like(300, 5, 22);
  std::vector<std::size_t> rows(300);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const simd::DistanceComputer dist(simd::Metric::kL2, w.base.dim());
  Rng a(9), b(9);
  EXPECT_EQ(select_vantage_point_sampled(w.base, rows, 16, 64, dist, a),
            select_vantage_point_sampled(w.base, rows, 16, 64, dist, b));
}

TEST(SelectVantagePointSampled, SingleRow) {
  data::Dataset d(3, 2);
  std::vector<std::size_t> rows{2};
  const simd::DistanceComputer dist(simd::Metric::kL2, 2);
  Rng rng(1);
  EXPECT_EQ(select_vantage_point_sampled(d, rows, 100, 100, dist, rng), 2u);
}

}  // namespace
}  // namespace annsim::vptree
