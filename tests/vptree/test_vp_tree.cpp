#include "annsim/vptree/vp_tree.hpp"

#include <gtest/gtest.h>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::vptree {
namespace {

TEST(VpTree, ExactOnSiftLike) {
  auto w = data::make_sift_like(1500, 30, 31);
  VpTree tree(&w.base, {});
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto res = tree.search(w.queries.row(q), 10);
    ASSERT_EQ(res.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(res[i].id, gt[q][i].id) << "query " << q << " pos " << i;
      EXPECT_NEAR(res[i].dist, gt[q][i].dist, 1e-4f);
    }
  }
}

TEST(VpTree, ExactUnderL1) {
  auto w = data::make_deep_like(800, 20, 32);
  VpTreeParams p;
  p.metric = simd::Metric::kL1;
  VpTree tree(&w.base, p);
  auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL1);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto res = tree.search(w.queries.row(q), 5);
    for (std::size_t i = 0; i < res.size(); ++i) {
      EXPECT_EQ(res[i].id, gt[q][i].id);
    }
  }
}

TEST(VpTree, RejectsNonMetric) {
  data::Dataset d(10, 4);
  VpTreeParams p;
  p.metric = simd::Metric::kInnerProduct;
  EXPECT_THROW(VpTree(&d, p), Error);
}

TEST(VpTree, EmptyDataset) {
  data::Dataset d(0, 4);
  VpTree tree(&d, {});
  float q[4] = {};
  EXPECT_TRUE(tree.search(q, 3).empty());
}

TEST(VpTree, SinglePoint) {
  data::Dataset d(1, 2);
  d.row(0)[0] = 5.f;
  VpTree tree(&d, {});
  float q[2] = {5.f, 0.f};
  auto res = tree.search(q, 4);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 0u);
}

TEST(VpTree, OneNodePerPoint) {
  auto w = data::make_sift_like(200, 1, 33);
  VpTree tree(&w.base, {});
  EXPECT_EQ(tree.node_count(), 200u);
}

TEST(VpTree, PruningBeatsLinearScanOnClusteredData) {
  // On well-clustered data the triangle-inequality pruning must skip a
  // meaningful share of the dataset.
  auto w = data::make_syn(2000, 16, 0, 20, 34);
  VpTree tree(&w.base, {});
  std::size_t total_evals = 0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    std::size_t evals = 0;
    (void)tree.search(w.queries.row(q), 1, &evals);
    total_evals += evals;
  }
  const double mean_evals = double(total_evals) / double(w.queries.size());
  EXPECT_LT(mean_evals, 0.8 * double(w.base.size()));
}

TEST(VpTree, KLargerThanDatasetReturnsAll) {
  auto w = data::make_sift_like(20, 3, 35);
  VpTree tree(&w.base, {});
  auto res = tree.search(w.queries.row(0), 50);
  EXPECT_EQ(res.size(), 20u);
}

TEST(VpTree, DeterministicAcrossSeeds) {
  // Different vantage seeds must not change *results* (only pruning).
  auto w = data::make_deep_like(500, 10, 36);
  VpTreeParams p1, p2;
  p1.seed = 1;
  p2.seed = 999;
  VpTree t1(&w.base, p1), t2(&w.base, p2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto r1 = t1.search(w.queries.row(q), 8);
    auto r2 = t2.search(w.queries.row(q), 8);
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i].id, r2[i].id);
  }
}

}  // namespace
}  // namespace annsim::vptree
