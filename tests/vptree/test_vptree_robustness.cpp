/// Robustness of the VP-tree structures: serialization error handling,
/// degenerate geometries, and routing consistency under duplicates.

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/vptree/partition_vp_tree.hpp"
#include "annsim/vptree/vp_tree.hpp"

namespace annsim::vptree {
namespace {

PartitionVpTreeParams params(std::size_t parts) {
  PartitionVpTreeParams p;
  p.target_partitions = parts;
  p.vantage_candidates = 8;
  p.vantage_sample = 32;
  return p;
}

TEST(VpTreeRobustness, DeserializeRejectsBadMagic) {
  BinaryWriter w;
  w.write(std::uint32_t{0xDEADBEEF});
  auto bytes = w.take();
  BinaryReader r(bytes);
  EXPECT_THROW((void)PartitionVpTree::deserialize(r), Error);
}

TEST(VpTreeRobustness, DeserializeRejectsTruncated) {
  auto w = data::make_sift_like(256, 1, 701);
  auto built = PartitionVpTree::build(w.base, params(4));
  BinaryWriter wtr;
  built.tree.serialize(wtr);
  auto bytes = wtr.take();
  bytes.resize(bytes.size() / 3);
  BinaryReader r(bytes);
  EXPECT_THROW((void)PartitionVpTree::deserialize(r), Error);
}

TEST(VpTreeRobustness, AllDuplicatePointsStillPartition) {
  // Every point identical: distances all zero, median zero — the split must
  // still terminate and produce the requested partition count.
  data::Dataset d(64, 4);
  for (std::size_t i = 0; i < d.size(); ++i) d.row(i)[0] = 3.f;
  auto built = PartitionVpTree::build(d, params(4));
  EXPECT_EQ(built.tree.n_partitions(), 4u);
  std::size_t total = 0;
  for (auto s : built.partition_sizes) total += s;
  EXPECT_EQ(total, 64u);
}

TEST(VpTreeRobustness, DuplicateHeavyDataExactSearch) {
  data::Dataset d(100, 2);
  for (std::size_t i = 0; i < 50; ++i) d.row(i)[0] = 1.f;   // 50 dups
  for (std::size_t i = 50; i < 100; ++i) d.row(i)[0] = float(i);
  VpTree tree(&d, {});
  float q[2] = {1.f, 0.f};
  auto res = tree.search(q, 50);
  ASSERT_EQ(res.size(), 50u);
  for (const auto& nb : res) EXPECT_NEAR(nb.dist, 0.f, 1e-6f);
}

TEST(VpTreeRobustness, RouteBallZeroRadiusHitsContainingPartition) {
  auto w = data::make_sift_like(512, 1, 702);
  auto built = PartitionVpTree::build(w.base, params(8));
  for (std::size_t i = 0; i < 64; ++i) {
    auto parts = built.tree.route_ball(w.base.row(i), 0.f);
    ASSERT_GE(parts.size(), 1u);
    // The zero-radius ball must include the partition route_nearest picks.
    const auto nearest = built.tree.route_nearest(w.base.row(i));
    EXPECT_NE(std::find(parts.begin(), parts.end(), nearest), parts.end());
  }
}

TEST(VpTreeRobustness, ExtremeAspectData) {
  // One dominant coordinate: vantage spheres become shells along a line.
  data::Dataset d(256, 8);
  Rng rng(703);
  for (std::size_t i = 0; i < d.size(); ++i) {
    d.row(i)[0] = float(i) * 100.f;
    for (std::size_t j = 1; j < 8; ++j) d.row(i)[j] = rng.uniformf();
  }
  auto built = PartitionVpTree::build(d, params(8));
  // Routing a base point with a small ball must stay selective.
  std::size_t total = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    total += built.tree.route_ball(d.row(i * 4), 50.f).size();
  }
  EXPECT_LT(double(total) / 64.0, 3.0);
}

TEST(VpTreeRobustness, MinimumViableDataset) {
  // Exactly 2 points per partition, the constructor's lower bound.
  data::Dataset d(8, 3);
  Rng rng(704);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) d.row(i)[j] = float(rng.normal());
  }
  auto built = PartitionVpTree::build(d, params(4));
  EXPECT_EQ(built.tree.n_partitions(), 4u);
  for (auto s : built.partition_sizes) EXPECT_EQ(s, 2u);
}

TEST(VpTreeRobustness, BuildRejectsTooFewPoints) {
  data::Dataset d(3, 2);
  EXPECT_THROW((void)PartitionVpTree::build(d, params(4)), Error);
}

TEST(VpTreeRobustness, NodesExposedForDistributedAssembly) {
  auto w = data::make_sift_like(256, 1, 705);
  auto built = PartitionVpTree::build(w.base, params(4));
  const auto& nodes = built.tree.nodes();
  EXPECT_EQ(nodes.size(), 7u);  // 3 internal + 4 leaves
  std::size_t leaves = 0, internals = 0;
  for (const auto& n : nodes) {
    if (n.leaf != kInvalidPartition) {
      ++leaves;
      EXPECT_EQ(n.left, -1);
      EXPECT_EQ(n.right, -1);
    } else {
      ++internals;
      EXPECT_EQ(n.vp.size(), w.base.dim());
      EXPECT_GE(n.mu, 0.f);
    }
  }
  EXPECT_EQ(leaves, 4u);
  EXPECT_EQ(internals, 3u);
}

}  // namespace
}  // namespace annsim::vptree
