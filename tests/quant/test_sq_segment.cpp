/// SqSegment unit tests: the compressed-tier contract.
///  * graph search over codes + exact re-rank stays within recall reach of
///    the float tier on the same corpus;
///  * a full re-rank cache (fraction = 1.0) emits *exact* distances;
///  * the wire image round-trips byte-identically and search-identically;
///  * the resident footprint beats the float tier by > 3x at small cache
///    fractions;
///  * measured heat drives cache selection; access counters accumulate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/quant/sq_segment.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::quant {
namespace {

SqSegmentParams small_params(double fraction = 0.02) {
  SqSegmentParams p;
  p.hnsw.M = 8;
  p.hnsw.ef_construction = 64;
  p.hnsw.ef_search = 64;
  p.float_cache_fraction = fraction;
  return p;
}

TEST(SqSegment, SearchRecallNearBruteForce) {
  auto w = data::make_sift_like(1200, 50, 81);
  const auto seg = SqSegment::build(w.base, small_params());
  const auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  double recall = 0.0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto res = seg->search(w.queries.row(q), 10);
    ASSERT_EQ(res.size(), 10u);
    std::size_t hits = 0;
    for (const auto& nb : res)
      for (const auto& t : gt[q])
        if (nb.id == t.id) { ++hits; break; }
    recall += double(hits) / 10.0;
  }
  recall /= double(w.queries.size());
  EXPECT_GE(recall, 0.9);
}

TEST(SqSegment, ScanIsExactOnIds) {
  // The brute-force scan overfetches far beyond k, so for small corpora the
  // emitted id set must equal ground truth even before re-ranking helps.
  auto w = data::make_sift_like(400, 20, 82);
  const auto seg = SqSegment::build(w.base, small_params());
  const auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto res = seg->scan(w.queries.row(q), 5);
    ASSERT_EQ(res.size(), 5u);
    std::size_t hits = 0;
    for (const auto& nb : res)
      for (const auto& t : gt[q])
        if (nb.id == t.id) { ++hits; break; }
    EXPECT_GE(hits, 4u) << "query " << q;  // codes may flip near-ties
  }
}

TEST(SqSegment, FullCacheEmitsExactDistances) {
  auto w = data::make_sift_like(500, 20, 83);
  const auto seg = SqSegment::build(w.base, small_params(1.0));
  EXPECT_EQ(seg->cached_rows(), w.base.size());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    for (const auto& nb : seg->search(w.queries.row(q), 5)) {
      const float exact = std::sqrt(simd::l2_sq(
          w.queries.row(q), w.base.row(std::size_t(nb.id)), w.base.dim()));
      EXPECT_FLOAT_EQ(nb.dist, exact) << "query " << q;
    }
  }
  const auto c = seg->counters();
  EXPECT_GT(c.rerank_exact, 0u);
  EXPECT_EQ(c.rerank_coded, 0u);  // everything was cached
}

TEST(SqSegment, MemoryBeatsFloatTierBy3x) {
  auto w = data::make_sift_like(2000, 1, 84);
  const auto seg = SqSegment::build(w.base, small_params(0.02));
  EXPECT_LT(seg->memory_bytes() * 3, seg->float_bytes());
  // And the cache fraction costs what it says: fraction 1.0 stores all rows.
  const auto full = SqSegment::build(w.base, small_params(1.0));
  EXPECT_GT(full->memory_bytes(), seg->memory_bytes());
}

TEST(SqSegment, HeatDrivesCacheSelection) {
  auto w = data::make_sift_like(300, 1, 85);
  std::vector<std::uint64_t> heat(w.base.size(), 0);
  // Rows 17, 42, 111 are the measured-hot set.
  heat[17] = 1000;
  heat[42] = 900;
  heat[111] = 800;
  SqSegmentParams p = small_params(3.0 / 300.0);  // room for exactly 3 rows
  const auto seg = SqSegment::build(w.base, p, nullptr, heat);
  ASSERT_EQ(seg->cached_rows(), 3u);
  std::vector<float> out(w.base.dim());
  for (std::size_t hot : {17u, 42u, 111u}) {
    seg->reconstruct(hot, out.data());
    for (std::size_t j = 0; j < w.base.dim(); ++j)
      EXPECT_EQ(out[j], w.base.row(hot)[j]) << "hot row " << hot;  // exact copy
  }
}

TEST(SqSegment, ReconstructColdRowsWithinCodecBound) {
  auto w = data::make_sift_like(200, 1, 86);
  const auto seg = SqSegment::build(w.base, small_params(0.0));
  const float bound = seg->codec().max_abs_error() + 1e-5f;
  std::vector<float> out(w.base.dim());
  for (std::size_t i = 0; i < w.base.size(); i += 13) {
    seg->reconstruct(i, out.data());
    for (std::size_t j = 0; j < w.base.dim(); ++j)
      EXPECT_LE(std::fabs(out[j] - w.base.row(i)[j]), bound);
  }
}

TEST(SqSegment, AccessCountersAccumulate) {
  auto w = data::make_sift_like(300, 10, 87);
  const auto seg = SqSegment::build(w.base, small_params());
  auto before = seg->access_counts();
  EXPECT_EQ(std::accumulate(before.begin(), before.end(), std::uint64_t(0)), 0u);
  for (std::size_t q = 0; q < w.queries.size(); ++q)
    (void)seg->search(w.queries.row(q), 10);
  auto after = seg->access_counts();
  EXPECT_GT(std::accumulate(after.begin(), after.end(), std::uint64_t(0)), 0u);
}

TEST(SqSegment, WireRoundTripIsByteIdentical) {
  auto w = data::make_sift_like(400, 10, 88);
  const auto seg = SqSegment::build(w.base, small_params());
  // Touch the access counters first: they must be *excluded* from the wire
  // image (deterministic bytes regardless of traffic).
  for (std::size_t q = 0; q < w.queries.size(); ++q)
    (void)seg->search(w.queries.row(q), 10);
  const auto bytes = seg->to_bytes();
  const auto back = SqSegment::from_bytes(bytes, seg->params());
  ASSERT_EQ(back->size(), seg->size());
  EXPECT_EQ(back->cached_rows(), seg->cached_rows());
  EXPECT_EQ(back->to_bytes(), bytes);
  // Restored segment answers identically (same codes, same graph, same
  // cache, deterministic tie-breaks).
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto a = seg->search(w.queries.row(q), 10);
    const auto b = back->search(w.queries.row(q), 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(a[i].dist, b[i].dist) << "query " << q << " rank " << i;
    }
  }
}

TEST(SqSegment, InnerProductMetricWorks) {
  auto w = data::make_sift_like(500, 20, 89);
  SqSegmentParams p = small_params();
  p.hnsw.metric = simd::Metric::kInnerProduct;
  const auto seg = SqSegment::build(w.base, p);
  const auto gt =
      data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kInnerProduct);
  double recall = 0.0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto res = seg->search(w.queries.row(q), 10);
    std::size_t hits = 0;
    for (const auto& nb : res)
      for (const auto& t : gt[q])
        if (nb.id == t.id) { ++hits; break; }
    recall += double(hits) / 10.0;
  }
  EXPECT_GE(recall / double(w.queries.size()), 0.85);
}

}  // namespace
}  // namespace annsim::quant
