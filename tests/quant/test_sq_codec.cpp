/// SqCodec unit tests: the round-trip error contract (per-dimension error is
/// bounded by scale/2 for in-range values), degenerate corpora, and wire
/// round-trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "annsim/common/rng.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/quant/sq_codec.hpp"

namespace annsim::quant {
namespace {

TEST(SqCodec, RoundTripErrorWithinBound) {
  auto w = data::make_sift_like(300, 1, 41);
  const SqCodec codec = SqCodec::train(w.base);
  ASSERT_EQ(codec.dim(), w.base.dim());
  const float bound = codec.max_abs_error() + 1e-5f;
  std::vector<std::uint8_t> code(codec.code_stride());
  std::vector<float> out(codec.dim());
  for (std::size_t i = 0; i < w.base.size(); ++i) {
    codec.encode(w.base.row_span(i), code.data());
    codec.decode(code.data(), out.data());
    for (std::size_t j = 0; j < codec.dim(); ++j) {
      EXPECT_LE(std::fabs(out[j] - w.base.row(i)[j]), bound)
          << "row " << i << " dim " << j;
    }
  }
}

TEST(SqCodec, PerDimensionBoundIsHalfScale) {
  // Tighter than max_abs_error(): each dimension's own error is scale_d / 2.
  auto w = data::make_sift_like(200, 1, 42);
  const SqCodec codec = SqCodec::train(w.base);
  std::vector<std::uint8_t> code(codec.code_stride());
  std::vector<float> out(codec.dim());
  for (std::size_t i = 0; i < w.base.size(); i += 7) {
    codec.encode(w.base.row_span(i), code.data());
    codec.decode(code.data(), out.data());
    for (std::size_t j = 0; j < codec.dim(); ++j) {
      // Half-scale holds in exact arithmetic; the slack covers float
      // rounding in both encode ((v-min)/scale) and decode (min+scale*code),
      // the latter at the magnitude of the value itself.
      EXPECT_LE(std::fabs(out[j] - w.base.row(i)[j]),
                codec.scales()[j] * 0.5f +
                    1e-4f * (1.f + std::fabs(w.base.row(i)[j])))
          << "row " << i << " dim " << j;
    }
  }
}

TEST(SqCodec, ConstantDimensionDecodesExactly) {
  data::Dataset rows(16, 4);
  Rng rng(43);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    float* r = rows.row(i);
    r[0] = 3.25f;  // constant: max == min, scale must be 0
    r[1] = float(rng.normal());
    r[2] = -1.5f;  // constant negative
    r[3] = float(rng.normal());
  }
  const SqCodec codec = SqCodec::train(rows);
  EXPECT_EQ(codec.scales()[0], 0.f);
  EXPECT_EQ(codec.scales()[2], 0.f);
  std::vector<std::uint8_t> code(codec.code_stride());
  std::vector<float> out(4);
  codec.encode(rows.row_span(5), code.data());
  codec.decode(code.data(), out.data());
  EXPECT_EQ(out[0], 3.25f);
  EXPECT_EQ(out[2], -1.5f);
}

TEST(SqCodec, OutOfRangeValuesClampToTrainedRange) {
  data::Dataset rows(8, 2);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows.row(i)[0] = float(i);  // trained range [0, 7]
    rows.row(i)[1] = float(i);
  }
  const SqCodec codec = SqCodec::train(rows);
  const std::vector<float> wild{100.f, -100.f};
  std::vector<std::uint8_t> code(codec.code_stride());
  std::vector<float> out(2);
  codec.encode(wild, code.data());
  codec.decode(code.data(), out.data());
  EXPECT_NEAR(out[0], 7.f, 1e-4f);  // clamped to trained max
  EXPECT_NEAR(out[1], 0.f, 1e-4f);  // clamped to trained min
}

TEST(SqCodec, CodeStrideIsAlignedAndPaddingZeroed) {
  auto w = data::make_sift_like(50, 1, 44);
  const SqCodec codec = SqCodec::train(w.base);
  EXPECT_EQ(codec.code_stride() % SqCodec::kCodeAlign, 0u);
  EXPECT_GE(codec.code_stride(), codec.dim());
  std::vector<std::uint8_t> code(codec.code_stride(), 0xFF);
  codec.encode(w.base.row_span(0), code.data());
  for (std::size_t j = codec.dim(); j < codec.code_stride(); ++j)
    EXPECT_EQ(code[j], 0u) << "padding byte " << j;
  // Padded mins/scales are zero so padded-width kernel sweeps add nothing.
  for (std::size_t j = codec.dim(); j < codec.code_stride(); ++j) {
    EXPECT_EQ(codec.mins()[j], 0.f);
    EXPECT_EQ(codec.scales()[j], 0.f);
  }
}

TEST(SqCodec, SerializeRoundTripsExactly) {
  auto w = data::make_sift_like(120, 1, 45);
  const SqCodec codec = SqCodec::train(w.base);
  BinaryWriter wtr;
  codec.serialize(wtr);
  const auto bytes = wtr.take();
  BinaryReader rdr(bytes);
  const SqCodec back = SqCodec::deserialize(rdr);
  ASSERT_EQ(back.dim(), codec.dim());
  for (std::size_t j = 0; j < codec.code_stride(); ++j) {
    EXPECT_EQ(back.mins()[j], codec.mins()[j]);
    EXPECT_EQ(back.scales()[j], codec.scales()[j]);
  }
  // Same codec bytes => same codes.
  std::vector<std::uint8_t> c1(codec.code_stride()), c2(codec.code_stride());
  codec.encode(w.base.row_span(7), c1.data());
  back.encode(w.base.row_span(7), c2.data());
  EXPECT_EQ(c1, c2);
}

}  // namespace
}  // namespace annsim::quant
