/// Engine-level regression tests for annsim::check: every usage bug the
/// checker caught in the engine during its introduction is pinned here with
/// `check_fatal=true`, so a reintroduction fails the test instead of only
/// appearing under ANNSIM_MPI_CHECK=1 in CI.
///
/// The specific fixes under guard:
///  * worker job loops received with a kAnyTag wildcard that could swallow
///    reserved control messages — now irecv_tags({kTagQuery, kTagEoq});
///  * EOQ / heartbeat / done notices were plain sends on what are now
///    declared control-plane tags — now send_reserved/isend_reserved
///    (the multiple-owner strategy's done notice was the one the checker
///    actually flagged);
///  * with failure detection armed, results/done/heartbeats addressed to a
///    master that stopped listening are declared best-effort, so by-design
///    abandonment is counted as residue instead of an unmatched-send
///    violation.

#include <gtest/gtest.h>

#include "annsim/core/engine.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::core {
namespace {

EngineConfig checked_config(std::size_t workers = 4) {
  EngineConfig cfg;
  cfg.n_workers = workers;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 2;  // exercise the thread-team recv loop
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  cfg.mpi_check = true;
  cfg.check_fatal = true;  // any violation throws out of build()/search()
  return cfg;
}

TEST(EngineChecked, MasterWorkerOneSidedIsCheckClean) {
  auto w = data::make_sift_like(600, 12, 701);
  DistributedAnnEngine eng(&w.base, checked_config());
  eng.build();
  auto res = eng.search(w.queries, 10);
  EXPECT_EQ(res.size(), w.queries.size());
  const auto rep = eng.check_report();
  EXPECT_TRUE(rep.clean()) << annsim::check::to_string(rep);
  EXPECT_GT(rep.runs, 0u);
}

TEST(EngineChecked, MasterWorkerTwoSidedIsCheckClean) {
  auto w = data::make_sift_like(600, 12, 702);
  auto cfg = checked_config();
  cfg.one_sided = false;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  (void)eng.search(w.queries, 10);
  const auto rep = eng.check_report();
  EXPECT_TRUE(rep.clean()) << annsim::check::to_string(rep);
}

// Regression: the owner strategy's done notice was a plain send on the
// reserved kTagDone — the first real violation annsim::check found.
TEST(EngineChecked, MultipleOwnerStrategyIsCheckClean) {
  auto w = data::make_sift_like(600, 12, 703);
  auto cfg = checked_config();
  cfg.strategy = DispatchStrategy::kMultipleOwner;
  cfg.one_sided = false;  // owner mode is two-sided single-pass only
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  (void)eng.search(w.queries, 10);
  const auto rep = eng.check_report();
  EXPECT_TRUE(rep.clean()) << annsim::check::to_string(rep);
}

// With detection armed and a worker killed mid-batch, failover abandons
// messages by design; the best-effort declaration keeps the run clean
// (residue, not violations) and fatal mode does not fire.
TEST(EngineChecked, FailoverUnderWorkerKillStaysClean) {
  auto w = data::make_sift_like(700, 20, 704);
  auto cfg = checked_config();
  cfg.replication = 2;
  cfg.result_timeout_ms = 150.0;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  const auto rep = eng.check_report();
  EXPECT_TRUE(rep.clean()) << annsim::check::to_string(rep);
}

// heal() runs its own replica-streaming runtime; it must be check-clean and
// fold into the same cumulative report.
TEST(EngineChecked, HealAndPostHealSearchAreCheckClean) {
  auto w = data::make_sift_like(700, 20, 705);
  auto cfg = checked_config();
  cfg.replication = 2;
  cfg.result_timeout_ms = 150.0;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  (void)eng.search(w.queries, 10);
  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.degraded_queries, 0u);
  const auto rep = eng.check_report();
  EXPECT_TRUE(rep.clean()) << annsim::check::to_string(rep);
  EXPECT_EQ(rep.total_violations(), 0u);
}

// The report accumulates across batches: runs only ever grows.
TEST(EngineChecked, ReportAccumulatesAcrossBatches) {
  auto w = data::make_sift_like(600, 8, 706);
  DistributedAnnEngine eng(&w.base, checked_config());
  eng.build();
  const auto after_build = eng.check_report().runs;
  EXPECT_GT(after_build, 0u);
  (void)eng.search(w.queries, 10);
  const auto after_one = eng.check_report().runs;
  EXPECT_GT(after_one, after_build);
  (void)eng.search(w.queries, 10);
  EXPECT_GT(eng.check_report().runs, after_one);
}

}  // namespace
}  // namespace annsim::core
