// Negative tests for annsim::check — every rule is deliberately violated and
// the test asserts the exact rule fires with rank/op-attributed diagnostics.
// All runs use fatal=false so the report can be inspected; the fatal path has
// its own test at the end.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/core/protocol.hpp"
#include "annsim/mpi/mpi.hpp"

namespace {

using annsim::Error;
using annsim::check::CheckOptions;
using annsim::check::CheckReport;
using annsim::check::Rule;
namespace mpi = annsim::mpi;

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(std::byte(v));
  return out;
}

CheckOptions lenient() {
  CheckOptions o;
  o.enabled = true;
  o.fatal = false;
  return o;
}

TEST(CheckRules, CleanRunReportsClean) {
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.fatal = true;  // a clean run must not throw even in fatal mode
  rt.configure_check(o);
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 5, std::span<const std::byte>{});
      auto msg = world.recv(1, 6);
      EXPECT_EQ(msg.tag, 6);
    } else {
      (void)world.recv(0, 5);
      world.send(0, 6, std::span<const std::byte>{});
    }
    world.barrier();
  });
  const CheckReport report = rt.check_report();
  EXPECT_TRUE(report.clean()) << annsim::check::to_string(report);
  EXPECT_EQ(report.runs, 1u);
}

// Regression for a latent API gap the checker work surfaced: Comm::isend
// skipped the negative-tag validation Comm::send performed, so a bad tag
// slipped into the fabric unvalidated. Both forms must reject it now
// (hard error, independent of whether the checker is armed).
TEST(CheckRules, IsendValidatesUserTagsLikeSend) {
  mpi::Runtime rt(2);
  rt.run([](mpi::Comm& world) {
    if (world.rank() != 0) return;
    EXPECT_THROW((void)world.isend(1, -5, std::span<const std::byte>{}),
                 Error);
    EXPECT_THROW(world.send(1, -5, std::span<const std::byte>{}), Error);
  });
}

TEST(CheckRules, RequestLeakDroppedHandle) {
  mpi::Runtime rt(2);
  rt.configure_check(lenient());
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) {
      // Posted, never completed, handle dropped: the canonical leak.
      (void)world.irecv(1, 3);
    }
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kRequestLeak), 1u)
      << annsim::check::to_string(report);
  const auto* occ = report.first(Rule::kRequestLeak);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->rank, 0);
  EXPECT_EQ(occ->peer, 1);
  EXPECT_EQ(occ->tag, 3);
}

TEST(CheckRules, RequestLeakCompletedButNeverTaken) {
  mpi::Runtime rt(2);
  rt.configure_check(lenient());
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 1) {
      world.send(0, 4, std::span<const std::byte>{});
    } else {
      world.barrier();  // placed after the send on rank 1's side
      (void)world.irecv(1, 4);  // completes instantly off the queue; dropped
    }
    if (world.rank() == 1) world.barrier();
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kRequestLeak), 1u)
      << annsim::check::to_string(report);
}

TEST(CheckRules, NoLeakWhenCancelled) {
  mpi::Runtime rt(2);
  rt.configure_check(lenient());
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) {
      auto req = world.irecv(1, 3);
      EXPECT_TRUE(req.cancel());
    }
  });
  EXPECT_TRUE(rt.check_report().clean());
}

TEST(CheckRules, RmaOutsideEpoch) {
  mpi::Runtime rt(2);
  rt.configure_check(lenient());
  rt.run([](mpi::Comm& world) {
    auto win = world.create_window(16);
    world.barrier();
    if (world.rank() == 0) {
      (void)win.get(1, 0, 4);  // no lock_shared: flagged, op still proceeds
    }
    world.barrier();
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kRmaOutsideEpoch), 1u)
      << annsim::check::to_string(report);
  const auto* occ = report.first(Rule::kRmaOutsideEpoch);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->rank, 0);
  EXPECT_EQ(occ->peer, 1);
}

TEST(CheckRules, RmaLockMisuse) {
  mpi::Runtime rt(2);
  rt.configure_check(lenient());
  rt.run([](mpi::Comm& world) {
    auto win = world.create_window(16);
    world.barrier();
    if (world.rank() == 0) {
      win.lock_shared(1);
      win.lock_shared(1);  // nested: flagged
      win.unlock(1);
      win.unlock(1);  // without lock: flagged
    }
    world.barrier();
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kRmaLockMisuse), 2u)
      << annsim::check::to_string(report);
}

TEST(CheckRules, RmaEpochLeak) {
  mpi::Runtime rt(2);
  rt.configure_check(lenient());
  rt.run([](mpi::Comm& world) {
    auto win = world.create_window(16);
    world.barrier();
    if (world.rank() == 0) win.lock_shared(1);  // never unlocked
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kRmaEpochLeak), 1u)
      << annsim::check::to_string(report);
  const auto* occ = report.first(Rule::kRmaEpochLeak);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->rank, 0);
  EXPECT_EQ(occ->peer, 1);
}

TEST(CheckRules, ReservedTagSend) {
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.reserved_tags = {7};
  rt.configure_check(o);
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 7, std::span<const std::byte>{});           // flagged
      world.send_reserved(1, 7, std::span<const std::byte>{});  // sanctioned
    } else {
      (void)world.recv(0, 7);
      (void)world.recv(0, 7);
    }
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kReservedTagSend), 1u)
      << annsim::check::to_string(report);
  const auto* occ = report.first(Rule::kReservedTagSend);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->rank, 0);
  EXPECT_EQ(occ->peer, 1);
  EXPECT_EQ(occ->tag, 7);
}

/// Each write-plane control tag is reserved engine-wide: a naked send on it
/// must be flagged, the sanctioned send_reserved must stay clean. One test
/// per tag so a regression names the exact tag it dropped from the set.
class ReservedWriteTag : public ::testing::TestWithParam<mpi::Tag> {};

TEST_P(ReservedWriteTag, NakedSendIsFlaggedSanctionedSendIsNot) {
  const mpi::Tag tag = GetParam();
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.reserved_tags = {tag};
  rt.configure_check(o);
  rt.run([tag](mpi::Comm& world) {
    if (world.rank() == 0) {
      world.send(1, tag, std::span<const std::byte>{});           // flagged
      world.send_reserved(1, tag, std::span<const std::byte>{});  // sanctioned
    } else {
      (void)world.recv(0, tag);
      (void)world.recv(0, tag);
    }
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kReservedTagSend), 1u)
      << annsim::check::to_string(report);
  const auto* occ = report.first(Rule::kReservedTagSend);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->rank, 0);
  EXPECT_EQ(occ->peer, 1);
  EXPECT_EQ(occ->tag, tag);
}

INSTANTIATE_TEST_SUITE_P(WritePlane, ReservedWriteTag,
                         ::testing::Values(annsim::core::kTagInsert,
                                           annsim::core::kTagDelete,
                                           annsim::core::kTagWriteAck,
                                           annsim::core::kTagCompact),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case annsim::core::kTagInsert: return "Insert";
                             case annsim::core::kTagDelete: return "Delete";
                             case annsim::core::kTagWriteAck: return "WriteAck";
                             default: return "Compact";
                           }
                         });

TEST(CheckRules, WildcardRecvWhileTagsReserved) {
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.reserved_tags = {7};
  rt.configure_check(o);
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 1) {
      world.send(0, 2, std::span<const std::byte>{});
    } else {
      auto msg = world.recv(1, mpi::kAnyTag);  // flagged
      EXPECT_EQ(msg.tag, 2);
    }
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kWildcardRecv), 1u)
      << annsim::check::to_string(report);
  EXPECT_EQ(report.first(Rule::kWildcardRecv)->rank, 0);
}

TEST(CheckRules, IrecvTagsIsNotAWildcard) {
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.reserved_tags = {7};
  rt.configure_check(o);
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 1) {
      world.send(0, 4, bytes({1}));
      world.send(0, 2, bytes({2}));
    } else {
      // Tag-set receive: skips the queued tag-4 message, matches tag 2.
      auto req = world.irecv_tags(1, {2, 3});
      req.wait();
      auto msg = req.take();
      EXPECT_EQ(msg.tag, 2);
      EXPECT_EQ(msg.payload, bytes({2}));
      auto other = world.recv(1, 4);
      EXPECT_EQ(other.payload, bytes({1}));
    }
  });
  EXPECT_TRUE(rt.check_report().clean())
      << annsim::check::to_string(rt.check_report());
}

TEST(CheckRules, DeadlockTwoRankRecvCycle) {
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.deadlock_after = std::chrono::milliseconds(100);
  rt.configure_check(o);
  try {
    rt.run([](mpi::Comm& world) {
      // Classic head-to-head: each rank waits for a message the other can
      // only send after its own recv returns.
      if (world.rank() == 0) {
        (void)world.recv(1, 5);
        world.send(1, 6, std::span<const std::byte>{});
      } else {
        (void)world.recv(0, 6);
        world.send(0, 5, std::span<const std::byte>{});
      }
    });
    FAIL() << "deadlocked run() returned";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
  const CheckReport report = rt.check_report();
  EXPECT_GE(report.count(Rule::kDeadlock), 1u)
      << annsim::check::to_string(report);
  const auto* occ = report.first(Rule::kDeadlock);
  ASSERT_NE(occ, nullptr);
  EXPECT_NE(occ->detail.find("cycle"), std::string::npos);
  EXPECT_NE(occ->detail.find("blocked"), std::string::npos);
}

TEST(CheckRules, LongBlockedRecvWithoutCycleIsNotADeadlock) {
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.deadlock_after = std::chrono::milliseconds(50);
  rt.configure_check(o);
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) {
      // Blocked well past the threshold, but rank 1 eventually delivers:
      // an edge with no cycle must never abort the run.
      (void)world.recv(1, 5);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      world.send(0, 5, std::span<const std::byte>{});
    }
  });
  EXPECT_TRUE(rt.check_report().clean())
      << annsim::check::to_string(rt.check_report());
}

TEST(CheckRules, UnmatchedSendAtFinalize) {
  mpi::Runtime rt(2);
  rt.configure_check(lenient());
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) world.send(1, 9, bytes({1, 2, 3}));
  });
  const CheckReport report = rt.check_report();
  EXPECT_EQ(report.count(Rule::kUnmatchedSend), 1u)
      << annsim::check::to_string(report);
  const auto* occ = report.first(Rule::kUnmatchedSend);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->rank, 0);  // sender
  EXPECT_EQ(occ->peer, 1);  // destination
  EXPECT_EQ(occ->tag, 9);
  const auto it = report.unmatched_histogram.find({9, 1});
  ASSERT_NE(it, report.unmatched_histogram.end());
  EXPECT_EQ(it->second, 1u);
}

TEST(CheckRules, BestEffortTagsAreResidueNotViolations) {
  mpi::Runtime rt(2);
  CheckOptions o = lenient();
  o.best_effort_tags = {9};
  rt.configure_check(o);
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) world.send(1, 9, bytes({1}));
  });
  const CheckReport report = rt.check_report();
  EXPECT_TRUE(report.clean()) << annsim::check::to_string(report);
  EXPECT_EQ(report.best_effort_residue, 1u);
}

TEST(CheckRules, FatalModeThrowsWithReportText) {
  mpi::Runtime rt(2);
  CheckOptions o;
  o.enabled = true;
  o.fatal = true;
  rt.configure_check(o);
  try {
    rt.run([](mpi::Comm& world) {
      if (world.rank() == 0) world.send(1, 9, bytes({1}));
    });
    FAIL() << "fatal checked run() with a violation returned";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unmatched-send"), std::string::npos)
        << e.what();
  }
}

TEST(CheckRules, ReportMergeAndToString) {
  CheckReport a;
  a.counts[std::size_t(Rule::kUnmatchedSend)] = 2;
  a.occurrences.push_back({Rule::kUnmatchedSend, 0, 1, 9, "first"});
  a.unmatched_histogram[{9, 1}] = 2;
  a.runs = 1;

  CheckReport b;
  b.counts[std::size_t(Rule::kRequestLeak)] = 1;
  b.occurrences.push_back({Rule::kRequestLeak, 2, 0, 3, "second"});
  b.unmatched_histogram[{9, 1}] = 1;
  b.best_effort_residue = 4;
  b.runs = 2;

  a.merge(b);
  EXPECT_EQ(a.count(Rule::kUnmatchedSend), 2u);
  EXPECT_EQ(a.count(Rule::kRequestLeak), 1u);
  EXPECT_EQ(a.total_violations(), 3u);
  EXPECT_EQ((a.unmatched_histogram[{9, 1}]), 3u);
  EXPECT_EQ(a.best_effort_residue, 4u);
  EXPECT_EQ(a.runs, 3u);

  const std::string text = annsim::check::to_string(a);
  EXPECT_NE(text.find("unmatched-send"), std::string::npos);
  EXPECT_NE(text.find("request-leak"), std::string::npos);
  EXPECT_NE(text.find("tag 9 -> rank 1: 3"), std::string::npos);

  CheckReport clean;
  clean.runs = 1;
  EXPECT_NE(annsim::check::to_string(clean).find("clean"), std::string::npos);
}

TEST(CheckRules, CheckerOffCostsNothingAndChangesNothing) {
  if (annsim::check::env_check_enabled()) {
    GTEST_SKIP() << "ANNSIM_MPI_CHECK force-enables the checker; the "
                    "checker-off contract cannot be observed in this run";
  }
  mpi::Runtime rt(2);
  EXPECT_FALSE(rt.check_enabled());
  rt.run([](mpi::Comm& world) {
    if (world.rank() == 0) {
      (void)world.irecv(1, 3);                  // dropped handle: no checker
      world.send(1, 9, std::span<const std::byte>{});  // unmatched: no checker
    }
  });
  EXPECT_TRUE(rt.check_report().clean());
  EXPECT_EQ(rt.check_report().runs, 0u);
}

}  // namespace
