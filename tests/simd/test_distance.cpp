#include "annsim/simd/distance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "annsim/common/rng.hpp"

namespace annsim::simd {
namespace {

std::vector<float> random_vec(std::size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

/// Dispatched kernels must agree with the scalar reference across dims that
/// exercise every SIMD tail path (0, <8, 8, 8..16, 16k, odd).
class KernelParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelParity, L2MatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim + 1);
  for (int rep = 0; rep < 10; ++rep) {
    auto a = random_vec(dim, rng);
    auto b = random_vec(dim, rng);
    const float simd_v = l2_sq(a.data(), b.data(), dim);
    const float ref = l2_sq_scalar(a.data(), b.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref)));
  }
}

TEST_P(KernelParity, InnerProductMatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim + 2);
  for (int rep = 0; rep < 10; ++rep) {
    auto a = random_vec(dim, rng);
    auto b = random_vec(dim, rng);
    const float simd_v = inner_product(a.data(), b.data(), dim);
    const float ref = inner_product_scalar(a.data(), b.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref)));
  }
}

TEST_P(KernelParity, L1MatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim + 3);
  for (int rep = 0; rep < 10; ++rep) {
    auto a = random_vec(dim, rng);
    auto b = random_vec(dim, rng);
    const float simd_v = l1(a.data(), b.data(), dim);
    const float ref = l1_scalar(a.data(), b.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref)));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelParity,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 31,
                                           63, 96, 128, 257, 960));

TEST(Distance, L2SqOfSelfIsZero) {
  Rng rng(5);
  auto a = random_vec(128, rng);
  EXPECT_FLOAT_EQ(l2_sq(a.data(), a.data(), a.size()), 0.f);
}

TEST(Distance, L2Symmetry) {
  Rng rng(6);
  auto a = random_vec(50, rng);
  auto b = random_vec(50, rng);
  EXPECT_FLOAT_EQ(l2_sq(a.data(), b.data(), 50), l2_sq(b.data(), a.data(), 50));
}

TEST(Distance, KnownValues) {
  const float a[4] = {0, 0, 0, 0};
  const float b[4] = {3, 4, 0, 0};
  EXPECT_FLOAT_EQ(l2_sq(a, b, 4), 25.f);
  EXPECT_FLOAT_EQ(l1(a, b, 4), 7.f);
  EXPECT_FLOAT_EQ(inner_product(b, b, 4), 25.f);
  EXPECT_FLOAT_EQ(l2_norm(b, 4), 5.f);
}

TEST(Distance, TriangleInequalityL2) {
  Rng rng(7);
  const DistanceComputer d(Metric::kL2, 32);
  for (int rep = 0; rep < 50; ++rep) {
    auto a = random_vec(32, rng);
    auto b = random_vec(32, rng);
    auto c = random_vec(32, rng);
    EXPECT_LE(d(a.data(), c.data()),
              d(a.data(), b.data()) + d(b.data(), c.data()) + 1e-4f);
  }
}

TEST(Distance, TriangleInequalityL1) {
  Rng rng(8);
  const DistanceComputer d(Metric::kL1, 32);
  for (int rep = 0; rep < 50; ++rep) {
    auto a = random_vec(32, rng);
    auto b = random_vec(32, rng);
    auto c = random_vec(32, rng);
    EXPECT_LE(d(a.data(), c.data()),
              d(a.data(), b.data()) + d(b.data(), c.data()) + 1e-4f);
  }
}

TEST(DistanceComputer, L2IsSqrtOfL2Sq) {
  Rng rng(9);
  auto a = random_vec(64, rng);
  auto b = random_vec(64, rng);
  const DistanceComputer d(Metric::kL2, 64);
  EXPECT_NEAR(d(a.data(), b.data()),
              std::sqrt(l2_sq(a.data(), b.data(), 64)), 1e-4f);
}

TEST(DistanceComputer, CosineOfParallelVectorsIsZero) {
  std::vector<float> a{1, 2, 3, 4};
  std::vector<float> b{2, 4, 6, 8};
  const DistanceComputer d(Metric::kCosine, 4);
  EXPECT_NEAR(d(a.data(), b.data()), 0.f, 1e-5f);
}

TEST(DistanceComputer, CosineOfOrthogonalIsOne) {
  std::vector<float> a{1, 0, 0, 0};
  std::vector<float> b{0, 1, 0, 0};
  const DistanceComputer d(Metric::kCosine, 4);
  EXPECT_NEAR(d(a.data(), b.data()), 1.f, 1e-5f);
}

TEST(DistanceComputer, CosineHandlesZeroVector) {
  std::vector<float> a{0, 0, 0, 0};
  std::vector<float> b{1, 1, 1, 1};
  const DistanceComputer d(Metric::kCosine, 4);
  EXPECT_FLOAT_EQ(d(a.data(), b.data()), 1.f);
}

TEST(DistanceComputer, InnerProductRanking) {
  // Larger dot product => smaller "distance".
  std::vector<float> q{1, 1};
  std::vector<float> close{1, 1};
  std::vector<float> far{0.1f, 0.1f};
  const DistanceComputer d(Metric::kInnerProduct, 2);
  EXPECT_LT(d(q.data(), close.data()), d(q.data(), far.data()));
}

TEST(Metric, TrueMetricFlags) {
  EXPECT_TRUE(is_true_metric(Metric::kL2));
  EXPECT_TRUE(is_true_metric(Metric::kL1));
  EXPECT_FALSE(is_true_metric(Metric::kInnerProduct));
  EXPECT_FALSE(is_true_metric(Metric::kCosine));
}

TEST(Metric, NamesAreStable) {
  EXPECT_STREQ(metric_name(Metric::kL2), "L2");
  EXPECT_STREQ(metric_name(Metric::kL1), "L1");
  EXPECT_STREQ(metric_name(Metric::kInnerProduct), "InnerProduct");
  EXPECT_STREQ(metric_name(Metric::kCosine), "Cosine");
}

TEST(KernelIsa, ReportsKnownString) {
  const auto isa = kernel_isa();
  EXPECT_TRUE(isa == "avx2+fma" || isa == "scalar") << isa;
}

}  // namespace
}  // namespace annsim::simd
