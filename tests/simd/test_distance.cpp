#include "annsim/simd/distance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "annsim/common/rng.hpp"

namespace annsim::simd {
namespace {

std::vector<float> random_vec(std::size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

/// Dispatched kernels must agree with the scalar reference across dims that
/// exercise every SIMD tail path (0, <8, 8, 8..16, 16k, odd).
class KernelParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelParity, L2MatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim + 1);
  for (int rep = 0; rep < 10; ++rep) {
    auto a = random_vec(dim, rng);
    auto b = random_vec(dim, rng);
    const float simd_v = l2_sq(a.data(), b.data(), dim);
    const float ref = l2_sq_scalar(a.data(), b.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref)));
  }
}

TEST_P(KernelParity, InnerProductMatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim + 2);
  for (int rep = 0; rep < 10; ++rep) {
    auto a = random_vec(dim, rng);
    auto b = random_vec(dim, rng);
    const float simd_v = inner_product(a.data(), b.data(), dim);
    const float ref = inner_product_scalar(a.data(), b.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref)));
  }
}

TEST_P(KernelParity, L1MatchesScalar) {
  const std::size_t dim = GetParam();
  Rng rng(dim + 3);
  for (int rep = 0; rep < 10; ++rep) {
    auto a = random_vec(dim, rng);
    auto b = random_vec(dim, rng);
    const float simd_v = l1(a.data(), b.data(), dim);
    const float ref = l1_scalar(a.data(), b.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref)));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelParity,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 31,
                                           63, 96, 128, 257, 960));

TEST(Distance, L2SqOfSelfIsZero) {
  Rng rng(5);
  auto a = random_vec(128, rng);
  EXPECT_FLOAT_EQ(l2_sq(a.data(), a.data(), a.size()), 0.f);
}

TEST(Distance, L2Symmetry) {
  Rng rng(6);
  auto a = random_vec(50, rng);
  auto b = random_vec(50, rng);
  EXPECT_FLOAT_EQ(l2_sq(a.data(), b.data(), 50), l2_sq(b.data(), a.data(), 50));
}

TEST(Distance, KnownValues) {
  const float a[4] = {0, 0, 0, 0};
  const float b[4] = {3, 4, 0, 0};
  EXPECT_FLOAT_EQ(l2_sq(a, b, 4), 25.f);
  EXPECT_FLOAT_EQ(l1(a, b, 4), 7.f);
  EXPECT_FLOAT_EQ(inner_product(b, b, 4), 25.f);
  EXPECT_FLOAT_EQ(l2_norm(b, 4), 5.f);
}

TEST(Distance, TriangleInequalityL2) {
  Rng rng(7);
  const DistanceComputer d(Metric::kL2, 32);
  for (int rep = 0; rep < 50; ++rep) {
    auto a = random_vec(32, rng);
    auto b = random_vec(32, rng);
    auto c = random_vec(32, rng);
    EXPECT_LE(d(a.data(), c.data()),
              d(a.data(), b.data()) + d(b.data(), c.data()) + 1e-4f);
  }
}

TEST(Distance, TriangleInequalityL1) {
  Rng rng(8);
  const DistanceComputer d(Metric::kL1, 32);
  for (int rep = 0; rep < 50; ++rep) {
    auto a = random_vec(32, rng);
    auto b = random_vec(32, rng);
    auto c = random_vec(32, rng);
    EXPECT_LE(d(a.data(), c.data()),
              d(a.data(), b.data()) + d(b.data(), c.data()) + 1e-4f);
  }
}

TEST(DistanceComputer, L2IsSqrtOfL2Sq) {
  Rng rng(9);
  auto a = random_vec(64, rng);
  auto b = random_vec(64, rng);
  const DistanceComputer d(Metric::kL2, 64);
  EXPECT_NEAR(d(a.data(), b.data()),
              std::sqrt(l2_sq(a.data(), b.data(), 64)), 1e-4f);
}

TEST(DistanceComputer, CosineOfParallelVectorsIsZero) {
  std::vector<float> a{1, 2, 3, 4};
  std::vector<float> b{2, 4, 6, 8};
  const DistanceComputer d(Metric::kCosine, 4);
  EXPECT_NEAR(d(a.data(), b.data()), 0.f, 1e-5f);
}

TEST(DistanceComputer, CosineOfOrthogonalIsOne) {
  std::vector<float> a{1, 0, 0, 0};
  std::vector<float> b{0, 1, 0, 0};
  const DistanceComputer d(Metric::kCosine, 4);
  EXPECT_NEAR(d(a.data(), b.data()), 1.f, 1e-5f);
}

TEST(DistanceComputer, CosineHandlesZeroVector) {
  std::vector<float> a{0, 0, 0, 0};
  std::vector<float> b{1, 1, 1, 1};
  const DistanceComputer d(Metric::kCosine, 4);
  EXPECT_FLOAT_EQ(d(a.data(), b.data()), 1.f);
}

TEST(DistanceComputer, InnerProductRanking) {
  // Larger dot product => smaller "distance".
  std::vector<float> q{1, 1};
  std::vector<float> close{1, 1};
  std::vector<float> far{0.1f, 0.1f};
  const DistanceComputer d(Metric::kInnerProduct, 2);
  EXPECT_LT(d(q.data(), close.data()), d(q.data(), far.data()));
}

TEST(Metric, TrueMetricFlags) {
  EXPECT_TRUE(is_true_metric(Metric::kL2));
  EXPECT_TRUE(is_true_metric(Metric::kL1));
  EXPECT_FALSE(is_true_metric(Metric::kInnerProduct));
  EXPECT_FALSE(is_true_metric(Metric::kCosine));
}

TEST(Metric, NamesAreStable) {
  EXPECT_STREQ(metric_name(Metric::kL2), "L2");
  EXPECT_STREQ(metric_name(Metric::kL1), "L1");
  EXPECT_STREQ(metric_name(Metric::kInnerProduct), "InnerProduct");
  EXPECT_STREQ(metric_name(Metric::kCosine), "Cosine");
}

TEST(KernelIsa, ReportsKnownString) {
  const auto isa = kernel_isa();
  EXPECT_TRUE(isa == "avx2+fma" || isa == "scalar" || isa == "scalar(forced)")
      << isa;
}

TEST(KernelIsa, ForcedScalarIsConsistent) {
  // The CI release job runs this binary under ANNSIM_FORCE_SCALAR=1; in that
  // mode the ISA string and the flag must agree, and the dispatched kernels
  // must match the scalar references exactly (same code path).
  if (scalar_forced()) {
    EXPECT_EQ(kernel_isa(), "scalar(forced)");
    Rng rng(99);
    auto a = random_vec(257, rng);
    auto b = random_vec(257, rng);
    EXPECT_EQ(l2_sq(a.data(), b.data(), 257),
              l2_sq_scalar(a.data(), b.data(), 257));
    EXPECT_EQ(inner_product(a.data(), b.data(), 257),
              inner_product_scalar(a.data(), b.data(), 257));
    EXPECT_EQ(l1(a.data(), b.data(), 257), l1_scalar(a.data(), b.data(), 257));
  } else {
    EXPECT_NE(kernel_isa(), "scalar(forced)");
  }
}

TEST(KernelIsa, HoistedKernelPointersMatchDispatch) {
  Rng rng(11);
  auto a = random_vec(100, rng);
  auto b = random_vec(100, rng);
  EXPECT_EQ(l2_sq_kernel()(a.data(), b.data(), 100), l2_sq(a.data(), b.data(), 100));
  EXPECT_EQ(inner_product_kernel()(a.data(), b.data(), 100),
            inner_product(a.data(), b.data(), 100));
  EXPECT_EQ(l1_kernel()(a.data(), b.data(), 100), l1(a.data(), b.data(), 100));
}

/// A padded row-major matrix mimicking data::Dataset storage: stride > dim so
/// the batch kernels must honor the stride, plus an id list for the scattered
/// (beam-expansion) access pattern.
struct BatchFixture {
  std::size_t dim;
  std::size_t stride;
  std::size_t n_rows;
  std::vector<float> base;
  std::vector<float> query;
  std::vector<std::uint32_t> ids;  // deliberately shuffled with repeats

  BatchFixture(std::size_t d, std::size_t rows, std::uint64_t seed)
      : dim(d), stride((d + 7) / 8 * 8 + 8), n_rows(rows) {
    Rng rng(seed);
    base.resize(n_rows * stride);
    for (auto& x : base) x = float(rng.normal());
    query = random_vec(dim, rng);
    for (std::size_t i = 0; i < n_rows; ++i)
      ids.push_back(std::uint32_t(rng.uniform_below(n_rows)));
  }
};

/// Batched kernels must be bit-identical to the pairwise kernel per row —
/// the flat-vs-linked HNSW differential guarantee depends on it.
class BatchParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchParity, L2SqBatchMatchesPairwise) {
  const std::size_t dim = GetParam();
  BatchFixture fx(dim, 37, dim + 101);
  std::vector<float> out(fx.n_rows);
  // Scattered (id list) form.
  l2_sq_batch(fx.query.data(), fx.base.data(), fx.stride, dim, fx.ids.data(),
              fx.n_rows, out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const float* row = fx.base.data() + fx.ids[i] * fx.stride;
    EXPECT_EQ(out[i], l2_sq(fx.query.data(), row, dim)) << "row " << i;
  }
  // Contiguous (ids == nullptr) form.
  l2_sq_batch(fx.query.data(), fx.base.data(), fx.stride, dim, nullptr,
              fx.n_rows, out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const float* row = fx.base.data() + i * fx.stride;
    EXPECT_EQ(out[i], l2_sq(fx.query.data(), row, dim)) << "row " << i;
  }
}

TEST_P(BatchParity, IpBatchMatchesPairwise) {
  const std::size_t dim = GetParam();
  BatchFixture fx(dim, 37, dim + 211);
  std::vector<float> out(fx.n_rows);
  ip_batch(fx.query.data(), fx.base.data(), fx.stride, dim, fx.ids.data(),
           fx.n_rows, out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const float* row = fx.base.data() + fx.ids[i] * fx.stride;
    EXPECT_EQ(out[i], inner_product(fx.query.data(), row, dim)) << "row " << i;
  }
}

TEST_P(BatchParity, L1BatchMatchesPairwise) {
  const std::size_t dim = GetParam();
  BatchFixture fx(dim, 37, dim + 307);
  std::vector<float> out(fx.n_rows);
  l1_batch(fx.query.data(), fx.base.data(), fx.stride, dim, fx.ids.data(),
           fx.n_rows, out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const float* row = fx.base.data() + fx.ids[i] * fx.stride;
    EXPECT_EQ(out[i], l1(fx.query.data(), row, dim)) << "row " << i;
  }
}

TEST_P(BatchParity, BatchScalarMatchesScalarReference) {
  const std::size_t dim = GetParam();
  BatchFixture fx(dim, 23, dim + 409);
  std::vector<float> out(fx.n_rows);
  l2_sq_batch_scalar(fx.query.data(), fx.base.data(), fx.stride, dim,
                     fx.ids.data(), fx.n_rows, out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const float* row = fx.base.data() + fx.ids[i] * fx.stride;
    EXPECT_EQ(out[i], l2_sq_scalar(fx.query.data(), row, dim)) << "row " << i;
  }
}

TEST_P(BatchParity, DispatchedBatchNearScalarBatch) {
  const std::size_t dim = GetParam();
  BatchFixture fx(dim, 23, dim + 503);
  std::vector<float> simd_out(fx.n_rows), ref_out(fx.n_rows);
  l2_sq_batch(fx.query.data(), fx.base.data(), fx.stride, dim, fx.ids.data(),
              fx.n_rows, simd_out.data());
  l2_sq_batch_scalar(fx.query.data(), fx.base.data(), fx.stride, dim,
                     fx.ids.data(), fx.n_rows, ref_out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i)
    EXPECT_NEAR(simd_out[i], ref_out[i], 1e-3f * (1.f + std::fabs(ref_out[i])));
}

// Odd dims exercise every tail path of the AVX2 kernels; 0 rows and 0 dim are
// the degenerate edges.
INSTANTIATE_TEST_SUITE_P(Dims, BatchParity,
                         ::testing::Values(1, 3, 7, 9, 17, 31, 33, 63, 65, 96,
                                           127, 128, 257));

TEST(BatchKernels, ZeroRowsIsANoop) {
  const float q[4] = {1, 2, 3, 4};
  l2_sq_batch(q, q, 4, 4, nullptr, 0, nullptr);  // must not touch out/base
  ip_batch(q, q, 4, 4, nullptr, 0, nullptr);
  l1_batch(q, q, 4, 4, nullptr, 0, nullptr);
}

TEST(DistanceComputer, SearchDistIsSquaredL2) {
  Rng rng(12);
  auto a = random_vec(48, rng);
  auto b = random_vec(48, rng);
  const DistanceComputer d(Metric::kL2, 48);
  EXPECT_EQ(d.search_dist(a.data(), b.data()), l2_sq(a.data(), b.data(), 48));
  EXPECT_FLOAT_EQ(d.to_ranking(d.search_dist(a.data(), b.data())),
                  d(a.data(), b.data()));
}

TEST(DistanceComputer, SearchDistEqualsRankingForNonL2) {
  Rng rng(13);
  auto a = random_vec(48, rng);
  auto b = random_vec(48, rng);
  for (Metric m : {Metric::kL1, Metric::kInnerProduct, Metric::kCosine}) {
    const DistanceComputer d(m, 48);
    EXPECT_EQ(d.search_dist(a.data(), b.data()), d(a.data(), b.data()))
        << metric_name(m);
    EXPECT_EQ(d.to_ranking(2.5f), 2.5f) << metric_name(m);
  }
}

TEST(DistanceComputer, SearchDistBatchMatchesPairwiseAllMetrics) {
  BatchFixture fx(33, 29, 777);
  std::vector<float> out(fx.n_rows);
  for (Metric m : {Metric::kL2, Metric::kL1, Metric::kInnerProduct,
                   Metric::kCosine}) {
    const DistanceComputer d(m, fx.dim);
    d.search_dist_batch(fx.query.data(), fx.base.data(), fx.stride,
                        fx.ids.data(), fx.n_rows, out.data());
    for (std::size_t i = 0; i < fx.n_rows; ++i) {
      const float* row = fx.base.data() + fx.ids[i] * fx.stride;
      EXPECT_EQ(out[i], d.search_dist(fx.query.data(), row))
          << metric_name(m) << " row " << i;
    }
  }
}

}  // namespace
}  // namespace annsim::simd
