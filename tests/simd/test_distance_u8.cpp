#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "annsim/common/rng.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::simd {
namespace {

std::vector<float> random_vec(std::size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

/// A padded SQ8 code slab mimicking the SqSegment code plane: `stride` is in
/// BYTES and exceeds dim (the codec pads rows to kCodeAlign), mins/scales are
/// padded with zeros so the tail contributes nothing, and the id list is
/// shuffled with repeats for the scattered (beam-expansion) access pattern.
struct U8Fixture {
  std::size_t dim;
  std::size_t stride;
  std::size_t n_rows;
  std::vector<std::uint8_t> codes;
  std::vector<float> mins;
  std::vector<float> scales;
  std::vector<float> query;
  std::vector<std::uint32_t> ids;

  U8Fixture(std::size_t d, std::size_t rows, std::uint64_t seed)
      : dim(d), stride((d + 31) / 32 * 32 + 32), n_rows(rows) {
    Rng rng(seed);
    codes.resize(n_rows * stride);
    for (auto& c : codes) c = std::uint8_t(rng.uniform_below(256));
    mins.assign(stride, 0.f);
    scales.assign(stride, 0.f);
    for (std::size_t j = 0; j < dim; ++j) {
      mins[j] = float(rng.normal());
      scales[j] = float(rng.uniform()) * 0.05f;  // scales are non-negative
    }
    query = random_vec(dim, rng);
    for (std::size_t i = 0; i < n_rows; ++i)
      ids.push_back(std::uint32_t(rng.uniform_below(n_rows)));
  }

  [[nodiscard]] const std::uint8_t* row(std::size_t i) const {
    return codes.data() + i * stride;
  }
  /// Decode a code row exactly as the kernels are specified to.
  [[nodiscard]] std::vector<float> decoded(std::size_t i) const {
    std::vector<float> out(dim);
    for (std::size_t j = 0; j < dim; ++j)
      out[j] = mins[j] + scales[j] * float(row(i)[j]);
    return out;
  }
};

/// Dispatched uint8 kernels must agree with the scalar reference across dims
/// that exercise every SIMD tail path.
class U8KernelParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(U8KernelParity, L2MatchesScalarReference) {
  const std::size_t dim = GetParam();
  U8Fixture fx(dim, 8, dim + 11);
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const float simd_v = l2_sq_u8(fx.query.data(), fx.row(i), fx.mins.data(),
                                  fx.scales.data(), dim);
    const float ref = l2_sq_u8_scalar(fx.query.data(), fx.row(i),
                                      fx.mins.data(), fx.scales.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref))) << "row " << i;
  }
}

TEST_P(U8KernelParity, IpMatchesScalarReference) {
  const std::size_t dim = GetParam();
  U8Fixture fx(dim, 8, dim + 13);
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const float simd_v = ip_u8(fx.query.data(), fx.row(i), fx.mins.data(),
                               fx.scales.data(), dim);
    const float ref = ip_u8_scalar(fx.query.data(), fx.row(i), fx.mins.data(),
                                   fx.scales.data(), dim);
    EXPECT_NEAR(simd_v, ref, 1e-3f * (1.f + std::fabs(ref))) << "row " << i;
  }
}

/// The u8 kernels compute the distance to the *decoded* row. The scalar
/// reference must match a plain float kernel run on the materialized decode —
/// that equivalence is what makes the asymmetric distance meaningful.
TEST_P(U8KernelParity, ScalarReferenceMatchesDecodedFloatKernel) {
  const std::size_t dim = GetParam();
  U8Fixture fx(dim, 6, dim + 17);
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    const auto dec = fx.decoded(i);
    EXPECT_NEAR(l2_sq_u8_scalar(fx.query.data(), fx.row(i), fx.mins.data(),
                                fx.scales.data(), dim),
                l2_sq_scalar(fx.query.data(), dec.data(), dim),
                1e-3f * (1.f + l2_sq_scalar(fx.query.data(), dec.data(), dim)))
        << "row " << i;
    EXPECT_NEAR(
        ip_u8_scalar(fx.query.data(), fx.row(i), fx.mins.data(),
                     fx.scales.data(), dim),
        inner_product_scalar(fx.query.data(), dec.data(), dim),
        1e-3f * (1.f + std::fabs(inner_product_scalar(fx.query.data(),
                                                      dec.data(), dim))))
        << "row " << i;
  }
}

// Odd dims exercise every tail path; 96/128 are the SIFT-shaped fast paths.
INSTANTIATE_TEST_SUITE_P(Dims, U8KernelParity,
                         ::testing::Values(1, 3, 7, 9, 17, 31, 33, 63, 65, 96,
                                           127, 128, 257));

/// Batched uint8 kernels must be bit-identical to the pairwise kernel per
/// row — rerank_emit's determinism depends on it.
class U8BatchParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(U8BatchParity, L2BatchMatchesPairwise) {
  const std::size_t dim = GetParam();
  U8Fixture fx(dim, 37, dim + 101);
  std::vector<float> out(fx.n_rows);
  // Scattered (id list) form.
  l2_sq_batch_u8(fx.query.data(), fx.codes.data(), fx.stride, dim,
                 fx.mins.data(), fx.scales.data(), fx.ids.data(), fx.n_rows,
                 out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    EXPECT_EQ(out[i], l2_sq_u8(fx.query.data(), fx.row(fx.ids[i]),
                               fx.mins.data(), fx.scales.data(), dim))
        << "row " << i;
  }
  // Contiguous (ids == nullptr) form.
  l2_sq_batch_u8(fx.query.data(), fx.codes.data(), fx.stride, dim,
                 fx.mins.data(), fx.scales.data(), nullptr, fx.n_rows,
                 out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    EXPECT_EQ(out[i], l2_sq_u8(fx.query.data(), fx.row(i), fx.mins.data(),
                               fx.scales.data(), dim))
        << "row " << i;
  }
}

TEST_P(U8BatchParity, IpBatchMatchesPairwise) {
  const std::size_t dim = GetParam();
  U8Fixture fx(dim, 37, dim + 211);
  std::vector<float> out(fx.n_rows);
  ip_batch_u8(fx.query.data(), fx.codes.data(), fx.stride, dim, fx.mins.data(),
              fx.scales.data(), fx.ids.data(), fx.n_rows, out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    EXPECT_EQ(out[i], ip_u8(fx.query.data(), fx.row(fx.ids[i]), fx.mins.data(),
                            fx.scales.data(), dim))
        << "row " << i;
  }
}

TEST_P(U8BatchParity, BatchScalarMatchesScalarReference) {
  const std::size_t dim = GetParam();
  U8Fixture fx(dim, 23, dim + 409);
  std::vector<float> out(fx.n_rows);
  l2_sq_batch_u8_scalar(fx.query.data(), fx.codes.data(), fx.stride, dim,
                        fx.mins.data(), fx.scales.data(), fx.ids.data(),
                        fx.n_rows, out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    EXPECT_EQ(out[i], l2_sq_u8_scalar(fx.query.data(), fx.row(fx.ids[i]),
                                      fx.mins.data(), fx.scales.data(), dim))
        << "row " << i;
  }
  ip_batch_u8_scalar(fx.query.data(), fx.codes.data(), fx.stride, dim,
                     fx.mins.data(), fx.scales.data(), fx.ids.data(), fx.n_rows,
                     out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    EXPECT_EQ(out[i], ip_u8_scalar(fx.query.data(), fx.row(fx.ids[i]),
                                   fx.mins.data(), fx.scales.data(), dim))
        << "row " << i;
  }
}

TEST_P(U8BatchParity, DispatchedBatchNearScalarBatch) {
  const std::size_t dim = GetParam();
  U8Fixture fx(dim, 23, dim + 503);
  std::vector<float> simd_out(fx.n_rows), ref_out(fx.n_rows);
  l2_sq_batch_u8(fx.query.data(), fx.codes.data(), fx.stride, dim,
                 fx.mins.data(), fx.scales.data(), fx.ids.data(), fx.n_rows,
                 simd_out.data());
  l2_sq_batch_u8_scalar(fx.query.data(), fx.codes.data(), fx.stride, dim,
                        fx.mins.data(), fx.scales.data(), fx.ids.data(),
                        fx.n_rows, ref_out.data());
  for (std::size_t i = 0; i < fx.n_rows; ++i)
    EXPECT_NEAR(simd_out[i], ref_out[i], 1e-3f * (1.f + std::fabs(ref_out[i])));
}

INSTANTIATE_TEST_SUITE_P(Dims, U8BatchParity,
                         ::testing::Values(1, 3, 7, 9, 17, 31, 33, 63, 65, 96,
                                           127, 128, 257));

TEST(U8Kernels, ZeroRowsIsANoop) {
  const float q[4] = {1, 2, 3, 4};
  const std::uint8_t c[4] = {0, 1, 2, 3};
  l2_sq_batch_u8(q, c, 4, 4, q, q, nullptr, 0, nullptr);
  ip_batch_u8(q, c, 4, 4, q, q, nullptr, 0, nullptr);
}

TEST(U8Kernels, ZeroScaleDimsDecodeToMins) {
  // All-zero scales decode every row to `mins` regardless of code bytes —
  // the constant-dimension case the codec produces.
  const std::size_t dim = 33;
  Rng rng(7);
  std::vector<float> mins(64, 0.f), scales(64, 0.f), query(dim);
  for (std::size_t j = 0; j < dim; ++j) mins[j] = float(rng.normal());
  for (auto& x : query) x = float(rng.normal());
  std::vector<std::uint8_t> code(64);
  for (auto& c : code) c = std::uint8_t(rng.uniform_below(256));
  EXPECT_NEAR(l2_sq_u8(query.data(), code.data(), mins.data(), scales.data(), dim),
              l2_sq(query.data(), mins.data(), dim),
              1e-3f * (1.f + l2_sq(query.data(), mins.data(), dim)));
}

TEST(U8Kernels, ForcedScalarIsExact) {
  // Under ANNSIM_FORCE_SCALAR=1 the dispatched u8 kernels must BE the scalar
  // references (same code path, bit-identical), mirroring the float kernels.
  if (!scalar_forced()) GTEST_SKIP() << "SIMD path active";
  U8Fixture fx(127, 9, 999);
  for (std::size_t i = 0; i < fx.n_rows; ++i) {
    EXPECT_EQ(l2_sq_u8(fx.query.data(), fx.row(i), fx.mins.data(),
                       fx.scales.data(), fx.dim),
              l2_sq_u8_scalar(fx.query.data(), fx.row(i), fx.mins.data(),
                              fx.scales.data(), fx.dim));
    EXPECT_EQ(ip_u8(fx.query.data(), fx.row(i), fx.mins.data(),
                    fx.scales.data(), fx.dim),
              ip_u8_scalar(fx.query.data(), fx.row(i), fx.mins.data(),
                           fx.scales.data(), fx.dim));
  }
}

}  // namespace
}  // namespace annsim::simd
