/// Chaos tests: the engine's failover path under injected worker failure.
/// The contract being pinned down:
///  * failure detection disarmed (result_timeout_ms == 0) is the exact legacy
///    code path, and detection armed with no faults returns identical results;
///  * with replication >= 2, a worker killed mid-batch costs nothing but
///    retries — every query still gets its full plan via live replicas;
///  * with replication == 1, queries that lose a partition come back degraded
///    (partial top-k, coverage says how partial) instead of hanging;
///  * a batch with a dead worker always returns.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "annsim/core/engine.hpp"
#include "annsim/data/analysis.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

EngineConfig chaos_config(std::size_t workers = 4) {
  EngineConfig cfg;
  cfg.n_workers = workers;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;  // deterministic per-worker op order
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

data::KnnResults fault_free_baseline(const data::Workload& w,
                                     const EngineConfig& cfg, std::size_t k) {
  EngineConfig clean = cfg;
  clean.fault = {};
  clean.result_timeout_ms = 0.0;
  DistributedAnnEngine eng(&w.base, clean);
  eng.build();
  return eng.search(w.queries, k);
}

TEST(EngineFault, DetectionArmedNoFaultMatchesLegacyOneSided) {
  auto w = data::make_sift_like(800, 25, 601);
  auto cfg = chaos_config();
  auto legacy = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 250.0;  // armed, but nothing will die
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);
  for (std::size_t q = 0; q < legacy.size(); ++q) {
    EXPECT_EQ(res[q], legacy[q]) << "query " << q;
  }
  EXPECT_EQ(st.workers_failed, 0u);
  EXPECT_EQ(st.retries, 0u);
  EXPECT_EQ(st.degraded_queries, 0u);
  ASSERT_EQ(st.coverage.size(), w.queries.size());
  for (const auto& cov : st.coverage) {
    EXPECT_FALSE(cov.degraded());
    EXPECT_EQ(cov.partitions_searched, cov.partitions_planned);
  }
}

TEST(EngineFault, DetectionArmedNoFaultMatchesLegacyTwoSided) {
  auto w = data::make_sift_like(800, 25, 602);
  auto cfg = chaos_config();
  cfg.one_sided = false;
  auto legacy = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 250.0;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);
  for (std::size_t q = 0; q < legacy.size(); ++q) {
    EXPECT_EQ(res[q], legacy[q]) << "query " << q;
  }
  EXPECT_EQ(st.workers_failed, 0u);
  EXPECT_EQ(st.degraded_queries, 0u);
}

class EngineFaultSided : public ::testing::TestWithParam<bool> {};

TEST_P(EngineFaultSided, ReplicatedKillFailsOverWithoutDegradation) {
  const bool one_sided = GetParam();
  auto w = data::make_sift_like(800, 25, 603);
  auto cfg = chaos_config(4);
  cfg.one_sided = one_sided;
  cfg.replication = 2;  // every partition has a second live home
  auto clean = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 77;
  // Worker 1 (runtime rank 2) delivers three results, then goes silent.
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);  // must return, not hang

  EXPECT_EQ(st.workers_failed, 1u);
  EXPECT_GT(st.retries, 0u);
  EXPECT_GT(st.failovers, 0u);
  // Replicas covered everything: zero degradation, and every query's result
  // is identical to the fault-free run (failover merges are idempotent).
  EXPECT_EQ(st.degraded_queries, 0u);
  ASSERT_EQ(res.size(), clean.size());
  for (std::size_t q = 0; q < clean.size(); ++q) {
    EXPECT_EQ(res[q], clean[q]) << "query " << q;
  }
}

TEST_P(EngineFaultSided, UnreplicatedKillDegradesOnlyAffectedQueries) {
  const bool one_sided = GetParam();
  auto w = data::make_sift_like(800, 25, 604);
  auto cfg = chaos_config(4);
  cfg.one_sided = one_sided;
  cfg.replication = 1;  // no failover possible: losses become degradation
  auto clean = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 78;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/2, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);  // must return, not hang

  EXPECT_EQ(st.workers_failed, 1u);
  ASSERT_EQ(st.coverage.size(), w.queries.size());
  std::size_t degraded = 0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto& cov = st.coverage[q];
    EXPECT_LE(cov.partitions_searched, cov.partitions_planned);
    if (cov.degraded()) {
      ++degraded;
      // Partial, not empty: the live partitions still answered.
      EXPECT_GT(cov.partitions_searched, 0u);
      EXPECT_FALSE(res[q].empty());
    } else {
      // Full coverage => bit-identical to the fault-free run.
      EXPECT_EQ(res[q], clean[q]) << "query " << q;
    }
  }
  EXPECT_EQ(st.degraded_queries, degraded);
  // Worker 1's partition sat in some plans beyond its two delivered jobs.
  EXPECT_GT(degraded, 0u);
  EXPECT_LT(degraded, w.queries.size());
}

TEST_P(EngineFaultSided, DegradedHookReportsCoverage) {
  const bool one_sided = GetParam();
  auto w = data::make_sift_like(800, 20, 605);
  auto cfg = chaos_config(4);
  cfg.one_sided = one_sided;
  cfg.result_timeout_ms = 250.0;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/2, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  std::vector<int> fired(w.queries.size(), 0);
  std::vector<QueryCoverage> seen(w.queries.size());
  SearchStats st;
  (void)eng.search(w.queries, 5, 0, &st,
                   [&](std::size_t qid, const std::vector<Neighbor>&,
                       const QueryCoverage& cov) {
                     ++fired[qid];
                     seen[qid] = cov;
                   });
  std::size_t hook_degraded = 0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(fired[q], 1) << "query " << q;
    EXPECT_EQ(seen[q].partitions_searched, st.coverage[q].partitions_searched);
    EXPECT_EQ(seen[q].partitions_planned, st.coverage[q].partitions_planned);
    if (seen[q].degraded()) ++hook_degraded;
  }
  EXPECT_EQ(hook_degraded, st.degraded_queries);
}

TEST_P(EngineFaultSided, MessageDropNeverHangsTermination) {
  // The chaos-bench --drop-p scenario: probabilistic message drop can eat
  // data-plane traffic (jobs, results, RMA merges) but must never eat the
  // End-of-Queries control plane — a live worker that misses EOQ would spin
  // forever and hang the batch past any result timeout.
  const bool one_sided = GetParam();
  auto w = data::make_sift_like(800, 15, 609);
  auto cfg = chaos_config(4);
  cfg.one_sided = one_sided;
  cfg.replication = 2;
  auto clean = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 100.0;
  cfg.fault.seed = 80;
  cfg.fault.drop_probability = 0.25;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);  // must return, not hang

  ASSERT_EQ(st.coverage.size(), w.queries.size());
  std::size_t degraded = 0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    if (st.coverage[q].degraded()) {
      ++degraded;
    } else {
      // Recall loss is confined to queries reported degraded: full coverage
      // means the result is bit-identical to the fault-free run.
      EXPECT_EQ(res[q], clean[q]) << "query " << q;
    }
  }
  EXPECT_EQ(st.degraded_queries, degraded);
}

TEST_P(EngineFaultSided, DuplicateDeliveryIsIdempotentOnTheDataPlane) {
  // Retransmitted jobs and results look exactly like failover re-dispatch:
  // the merge path must absorb the second copy without double-counting, so
  // a heavy duplicate rate leaves every result bit-identical to the
  // fault-free run and nothing degraded.
  const bool one_sided = GetParam();
  auto w = data::make_sift_like(800, 25, 611);
  auto cfg = chaos_config(4);
  cfg.one_sided = one_sided;
  cfg.replication = 2;
  auto clean = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 82;
  cfg.fault.duplicate_probability = 0.5;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);  // must return, not hang

  EXPECT_EQ(st.workers_failed, 0u);
  EXPECT_EQ(st.degraded_queries, 0u);
  ASSERT_EQ(res.size(), clean.size());
  for (std::size_t q = 0; q < clean.size(); ++q) {
    EXPECT_EQ(res[q], clean[q]) << "query " << q;
  }
}

TEST_P(EngineFaultSided, ReorderedDeliveryLeavesResultsBitEqual) {
  // Out-of-order delivery shuffles which job a worker sees next and which
  // result the master merges first; top-k merges are order-independent and
  // the End-of-Queries control plane rides reliable tags (exempt from the
  // reorder roll), so results match the fault-free run exactly.
  const bool one_sided = GetParam();
  auto w = data::make_sift_like(800, 25, 612);
  auto cfg = chaos_config(4);
  cfg.one_sided = one_sided;
  cfg.replication = 2;
  auto clean = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 83;
  cfg.fault.reorder_probability = 0.5;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);  // must return, not hang

  EXPECT_EQ(st.workers_failed, 0u);
  EXPECT_EQ(st.degraded_queries, 0u);
  ASSERT_EQ(res.size(), clean.size());
  for (std::size_t q = 0; q < clean.size(); ++q) {
    EXPECT_EQ(res[q], clean[q]) << "query " << q;
  }
}

TEST_P(EngineFaultSided, AtStepKillFiresOnQueryDispatchClock) {
  // KillRule::at_step triggers on the engine's query-dispatch clock; at_step=1
  // means the worker's sends die from the first dispatched query onward.
  const bool one_sided = GetParam();
  auto w = data::make_sift_like(800, 25, 610);
  auto cfg = chaos_config(4);
  cfg.one_sided = one_sided;
  cfg.replication = 2;
  auto clean = fault_free_baseline(w, cfg, 10);

  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 81;
  cfg.fault.kills.push_back({/*rank=*/2, mpi::kNeverFires, /*at_step=*/1});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);  // must return, not hang

  EXPECT_EQ(st.workers_failed, 1u);
  EXPECT_GT(st.retries, 0u);
  EXPECT_EQ(st.degraded_queries, 0u);  // a live replica covered every plan
  ASSERT_EQ(res.size(), clean.size());
  for (std::size_t q = 0; q < clean.size(); ++q) {
    EXPECT_EQ(res[q], clean[q]) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(BothTransports, EngineFaultSided,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? "OneSided" : "TwoSided";
                         });

TEST(EngineFault, ChaosRunIsSeedDeterministic) {
  auto w = data::make_sift_like(800, 20, 606);
  auto cfg = chaos_config(4);
  cfg.replication = 2;
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 99;
  cfg.fault.kills.push_back({/*rank=*/3, /*after_ops=*/4, mpi::kNeverFires});

  auto run_once = [&] {
    DistributedAnnEngine eng(&w.base, cfg);
    eng.build();
    return eng.search(w.queries, 8);
  };
  auto a = run_once();
  auto b = run_once();
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q], b[q]) << "query " << q;
  }
}

TEST(EngineFault, ConfigValidationNamesTheField) {
  auto w = data::make_sift_like(600, 5, 607);
  auto expect_msg = [&](EngineConfig cfg, const char* needle) {
    try {
      DistributedAnnEngine eng(&w.base, cfg);
      FAIL() << "expected Error mentioning: " << needle;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  { auto c = chaos_config(); c.result_timeout_ms = -1.0;
    expect_msg(c, "result_timeout_ms cannot be negative"); }
  { auto c = chaos_config(); c.fault.drop_probability = 2.0;
    c.result_timeout_ms = 10.0;
    expect_msg(c, "fault.drop_probability must be within [0, 1]"); }
  { auto c = chaos_config(); c.fault.duplicate_probability = 2.0;
    c.result_timeout_ms = 10.0;
    expect_msg(c, "fault.duplicate_probability must be within [0, 1]"); }
  { auto c = chaos_config(); c.fault.reorder_probability = -1.0;
    c.result_timeout_ms = 10.0;
    expect_msg(c, "fault.reorder_probability must be within [0, 1]"); }
  { auto c = chaos_config();  // enabled plan but detection left off
    c.fault.kills.push_back({/*rank=*/1, /*after_ops=*/0, mpi::kNeverFires});
    expect_msg(c, "set result_timeout_ms > 0"); }
  { auto c = chaos_config(4);  // rank 0 is the master, not killable
    c.result_timeout_ms = 10.0;
    c.fault.kills.push_back({/*rank=*/0, /*after_ops=*/0, mpi::kNeverFires});
    expect_msg(c, "rank 0 is the master"); }
  { auto c = chaos_config(4);  // rank 5 would be worker 4 of 4
    c.result_timeout_ms = 10.0;
    c.fault.kills.push_back({/*rank=*/5, /*after_ops=*/0, mpi::kNeverFires});
    expect_msg(c, "must name a worker rank"); }
  { auto c = chaos_config(); c.one_sided = false;
    c.strategy = DispatchStrategy::kMultipleOwner;
    c.result_timeout_ms = 10.0;
    expect_msg(c, "master-worker dispatch strategy"); }
  { auto c = chaos_config(); c.exact_routing = true;
    c.result_timeout_ms = 10.0;
    expect_msg(c, "exact_routing"); }
}

}  // namespace
}  // namespace annsim::core
