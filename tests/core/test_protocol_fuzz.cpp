/// Failure injection: malformed wire payloads must raise annsim::Error —
/// never crash, hang, or silently mis-decode. The decoders guard the
/// master/worker protocol against truncated or corrupted messages.

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/core/protocol.hpp"

namespace annsim::core {
namespace {

std::vector<std::byte> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.uniform_below(256));
  return out;
}

template <typename Decoder>
void expect_error_or_valid(const std::vector<std::byte>& bytes,
                           Decoder decode) {
  try {
    (void)decode(bytes);  // random bytes may decode by luck; that's fine
  } catch (const Error&) {
    // expected for almost all inputs
  }
}

TEST(ProtocolFuzz, QueryJobRandomBytesNeverCrash) {
  Rng rng(1);
  for (int rep = 0; rep < 500; ++rep) {
    const auto bytes = random_bytes(rng.uniform_below(64), rng);
    expect_error_or_valid(bytes, [](const auto& b) { return decode_query_job(b); });
  }
}

TEST(ProtocolFuzz, LocalResultRandomBytesNeverCrash) {
  Rng rng(2);
  for (int rep = 0; rep < 500; ++rep) {
    const auto bytes = random_bytes(rng.uniform_below(64), rng);
    expect_error_or_valid(bytes,
                          [](const auto& b) { return decode_local_result(b); });
  }
}

TEST(ProtocolFuzz, TruncatedQueryJobThrows) {
  QueryJob job;
  job.query = {1.f, 2.f, 3.f, 4.f};
  const auto full = encode_query_job(job);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::byte> truncated(full.begin(),
                                     full.begin() + std::ptrdiff_t(cut));
    EXPECT_THROW((void)decode_query_job(truncated), Error) << "cut=" << cut;
  }
}

TEST(ProtocolFuzz, TruncatedLocalResultThrows) {
  LocalResult r;
  r.neighbors = {{1.f, 1}, {2.f, 2}};
  const auto full = encode_local_result(r);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::byte> truncated(full.begin(),
                                     full.begin() + std::ptrdiff_t(cut));
    EXPECT_THROW((void)decode_local_result(truncated), Error) << "cut=" << cut;
  }
}

TEST(ProtocolFuzz, OversizedLengthFieldThrows) {
  // A hostile length prefix claiming 2^60 floats must be rejected by bounds
  // checking, not attempted.
  BinaryWriter w;
  w.write(std::uint32_t{1});            // query_id
  w.write(PartitionId{0});              // partition
  w.write(std::uint32_t{10});           // k
  w.write(std::uint32_t{0});            // ef
  w.write(std::uint32_t{0});            // reply_to
  w.write(std::uint64_t{1} << 60);      // vector length
  EXPECT_THROW((void)decode_query_job(w.bytes()), Error);
}

TEST(ProtocolFuzz, SlotDecodeRejectsShortBuffers) {
  const SlotLayout layout{10};
  std::vector<std::byte> tiny(layout.slot_bytes() - 1);
  EXPECT_THROW((void)decode_slot(tiny, layout), Error);
}

TEST(ProtocolFuzz, MergeOpRejectsMismatchedRegions) {
  const SlotLayout layout{4};
  const auto merge = knn_slot_merge(layout);
  std::vector<std::byte> slot(layout.slot_bytes());
  std::vector<std::byte> short_origin(layout.slot_bytes() - 8);
  EXPECT_THROW(merge(slot, short_origin), Error);
  std::vector<std::byte> short_target(layout.slot_bytes() - 8);
  std::vector<std::byte> origin(layout.slot_bytes());
  EXPECT_THROW(merge(short_target, origin), Error);
}

}  // namespace
}  // namespace annsim::core
