/// Edge cases and less-traveled configurations of the distributed engine:
/// alternative metrics, extreme replication, dimension mismatches, tiny
/// partitions, and stats invariants.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "annsim/core/engine.hpp"
#include "annsim/data/analysis.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

EngineConfig small_config(std::size_t workers = 4) {
  EngineConfig cfg;
  cfg.n_workers = workers;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

TEST(EngineEdge, L1MetricEndToEnd) {
  auto w = data::make_syn(1200, 24, 10, 30, 501);
  auto cfg = small_config();
  cfg.hnsw.metric = simd::Metric::kL1;
  cfg.n_probe = 3;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto res = eng.search(w.queries, 5);
  auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL1);
  EXPECT_GT(data::mean_recall(res, gt, 5), 0.7);
}

TEST(EngineEdge, ConfigValidationMessagesNameTheField) {
  auto w = data::make_sift_like(600, 5, 506);
  auto expect_msg = [&](EngineConfig cfg, const char* needle) {
    try {
      DistributedAnnEngine eng(&w.base, cfg);
      FAIL() << "expected Error mentioning: " << needle;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  { auto c = small_config(); c.n_workers = 0;
    expect_msg(c, "n_workers must be nonzero"); }
  { auto c = small_config(); c.n_workers = 6;
    expect_msg(c, "power of two"); }
  { auto c = small_config(); c.replication = 0;
    expect_msg(c, "replication must be nonzero"); }
  { auto c = small_config(4); c.replication = 5;
    expect_msg(c, "cannot exceed n_workers"); }
  { auto c = small_config(); c.n_probe = 0;
    expect_msg(c, "n_probe must be nonzero"); }
  { auto c = small_config(); c.threads_per_worker = 0;
    expect_msg(c, "threads_per_worker must be nonzero"); }
  // The same validation is callable standalone (used again inside build()).
  EXPECT_NO_THROW(validate_engine_config(small_config()));
}

TEST(EngineEdge, PerQueryCompletionHookFiresExactlyOncePerQuery) {
  auto w = data::make_sift_like(800, 12, 507);
  DistributedAnnEngine eng(&w.base, small_config());
  eng.build();
  std::vector<int> fired(w.queries.size(), 0);
  auto res = eng.search(w.queries, 5, 0, nullptr,
                        [&](std::size_t qid, const std::vector<Neighbor>& nn,
                            const QueryCoverage& cov) {
                          ++fired[qid];
                          EXPECT_LE(nn.size(), 5u);
                          EXPECT_FALSE(nn.empty());
                          EXPECT_FALSE(cov.degraded());
                        });
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(fired[q], 1) << "query " << q;
    EXPECT_EQ(res[q].size(), 5u);
  }
}

TEST(EngineEdge, CompletionHookMatchesReturnedResultsTwoSided) {
  auto w = data::make_sift_like(800, 10, 508);
  auto cfg = small_config();
  cfg.one_sided = false;  // streaming finalize path
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  data::KnnResults streamed(w.queries.size());
  auto res = eng.search(w.queries, 4, 0, nullptr,
                        [&](std::size_t qid, const std::vector<Neighbor>& nn,
                            const QueryCoverage&) {
                          streamed[qid] = nn;
                        });
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(streamed[q], res[q]) << "query " << q;
  }
}

TEST(EngineEdge, NonMetricDistanceRejectedAtConstruction) {
  auto w = data::make_deep_like(500, 5, 502);
  auto cfg = small_config();
  cfg.hnsw.metric = simd::Metric::kInnerProduct;  // VP routing needs a metric
  EXPECT_THROW(DistributedAnnEngine(&w.base, cfg), Error);
}

TEST(EngineEdge, QueryDimensionMismatchThrows) {
  auto w = data::make_sift_like(600, 5, 503);
  DistributedAnnEngine eng(&w.base, small_config());
  eng.build();
  data::Dataset wrong(3, 64);
  EXPECT_THROW((void)eng.search(wrong, 5), Error);
}

TEST(EngineEdge, FullReplicationEveryWorkerHoldsEverything) {
  auto w = data::make_sift_like(800, 20, 504);
  auto cfg = small_config(4);
  cfg.replication = 4;  // r == P: every worker replicates every partition
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  EXPECT_GT(data::mean_recall(res, gt, 10), 0.75);
  // With r == P the round-robin spreads perfectly: load CV near zero.
  EXPECT_LT(data::load_imbalance_cv(st.jobs_per_worker), 0.35);
}

TEST(EngineEdge, NProbeLargerThanPartitionsIsClamped) {
  auto w = data::make_sift_like(600, 15, 505);
  auto cfg = small_config(4);
  cfg.n_probe = 99;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 10, 0, &st);
  EXPECT_DOUBLE_EQ(st.mean_partitions_per_query, 4.0);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  EXPECT_GT(data::mean_recall(res, gt, 10), 0.9);  // probing everything
}

TEST(EngineEdge, SingleQueryBatch) {
  auto w = data::make_sift_like(600, 1, 506);
  DistributedAnnEngine eng(&w.base, small_config());
  eng.build();
  auto res = eng.search(w.queries, 3);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].size(), 3u);
}

TEST(EngineEdge, KLargerThanPartitionSizes) {
  // k exceeding each partition's population: merged results must still
  // deliver k global neighbors when probes cover enough partitions.
  auto w = data::make_sift_like(256, 10, 507);
  auto cfg = small_config(8);  // 32 points per partition
  cfg.n_probe = 8;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto res = eng.search(w.queries, 50);
  for (const auto& r : res) {
    EXPECT_GE(r.size(), 50u * 3 / 4);
    for (std::size_t i = 1; i < r.size(); ++i) {
      EXPECT_LE(r[i - 1].dist, r[i].dist);
      EXPECT_NE(r[i - 1].id, r[i].id);
    }
  }
}

TEST(EngineEdge, ManyThreadsPerWorker) {
  auto w = data::make_sift_like(800, 30, 508);
  auto cfg = small_config();
  cfg.threads_per_worker = 4;  // Algorithm 4 with a bigger team
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto r1 = eng.search(w.queries, 10);
  cfg.threads_per_worker = 1;
  DistributedAnnEngine eng1(&w.base, cfg);
  eng1.build();
  auto r2 = eng1.search(w.queries, 10);
  for (std::size_t q = 0; q < r1.size(); ++q) {
    EXPECT_EQ(r1[q], r2[q]);  // thread count never changes results
  }
}

TEST(EngineEdge, TwoSidedTrafficShowsNoRma) {
  auto w = data::make_sift_like(600, 10, 509);
  auto cfg = small_config();
  cfg.one_sided = false;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  (void)eng.search(w.queries, 5, 0, &st);
  EXPECT_EQ(st.traffic.rma_ops, 0u);
  EXPECT_GT(st.traffic.p2p_messages, 0u);
}

TEST(EngineEdge, OneSidedTrafficShowsRmaPerJob) {
  auto w = data::make_sift_like(600, 10, 510);
  DistributedAnnEngine eng(&w.base, small_config());
  eng.build();
  SearchStats st;
  (void)eng.search(w.queries, 5, 0, &st);
  // One get_accumulate per job, plus the master's final per-query reads.
  EXPECT_EQ(st.traffic.rma_ops, st.total_jobs + w.queries.size());
}

TEST(EngineEdge, BuildDeterminismAcrossEngines) {
  auto w = data::make_sift_like(900, 20, 511);
  DistributedAnnEngine a(&w.base, small_config());
  DistributedAnnEngine b(&w.base, small_config());
  a.build();
  b.build();
  EXPECT_EQ(a.partition_sizes(), b.partition_sizes());
  auto ra = a.search(w.queries, 10);
  auto rb = b.search(w.queries, 10);
  for (std::size_t q = 0; q < ra.size(); ++q) EXPECT_EQ(ra[q], rb[q]);
}

TEST(EngineEdge, ParallelLocalBuildStillReachesRecall) {
  auto w = data::make_sift_like(1200, 25, 512);
  auto cfg = small_config();
  cfg.parallel_local_build = true;
  cfg.threads_per_worker = 3;
  cfg.n_probe = 3;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto res = eng.search(w.queries, 10);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  EXPECT_GT(data::mean_recall(res, gt, 10), 0.8);
}

TEST(EngineEdge, ExactRoutingWithTinyPartitionsFallsBackToFullSweep) {
  // k larger than any single partition: phase 1 returns < k neighbors, the
  // radius stays infinite, and phase 2 must sweep every partition — recall
  // becomes routing-exact even in this degenerate setup.
  auto w = data::make_sift_like(64, 10, 513);
  auto cfg = small_config(8);  // 8 points per partition
  cfg.exact_routing = true;
  cfg.one_sided = false;
  cfg.local_index = LocalIndexKind::kBruteForce;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  SearchStats st;
  auto res = eng.search(w.queries, 16, 0, &st);  // k=16 > 8 points/partition
  auto gt = data::brute_force_knn(w.base, w.queries, 16, simd::Metric::kL2);
  EXPECT_DOUBLE_EQ(data::mean_recall(res, gt, 16), 1.0);
  EXPECT_DOUBLE_EQ(st.mean_partitions_per_query, 8.0);
}

TEST(EngineEdge, DatasetTooSmallRejected) {
  data::Dataset tiny(7, 8);
  EXPECT_THROW(DistributedAnnEngine(&tiny, small_config(4)), Error);
}

}  // namespace
}  // namespace annsim::core
