#include "annsim/core/kd_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

TEST(KdEngine, ValidatesConfig) {
  data::Dataset d(100, 8);
  KdEngineConfig cfg;
  cfg.n_workers = 5;
  EXPECT_THROW(DistributedKdEngine(&d, cfg), Error);
}

TEST(KdEngine, ExactResultsOnHighDim) {
  auto w = data::make_sift_like(2000, 40, 95);
  KdEngineConfig cfg;
  cfg.n_workers = 8;
  DistributedKdEngine eng(&w.base, cfg);
  eng.build();
  EXPECT_GT(eng.build_seconds(), 0.0);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  KdSearchStats st;
  auto res = eng.search(w.queries, 10, &st);
  // The distributed KD baseline is exact: recall must be 1.0.
  EXPECT_DOUBLE_EQ(data::mean_recall(res, gt, 10), 1.0);
  // ... and at 128 dimensions it must visit almost every partition —
  // Table III's explanation.
  EXPECT_GT(st.mean_partitions_per_query, 6.0);
}

TEST(KdEngine, ExactResultsOnLowDimWithPruning) {
  auto w = data::make_syn(2048, 6, 0, 40, 96);
  KdEngineConfig cfg;
  cfg.n_workers = 8;
  DistributedKdEngine eng(&w.base, cfg);
  eng.build();
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  KdSearchStats st;
  auto res = eng.search(w.queries, 10, &st);
  EXPECT_DOUBLE_EQ(data::mean_recall(res, gt, 10), 1.0);
  // In low dimension the ball intersects few cells.
  EXPECT_LT(st.mean_partitions_per_query, 6.0);
}

TEST(KdEngine, JobAccounting) {
  auto w = data::make_sift_like(1000, 20, 97);
  KdEngineConfig cfg;
  cfg.n_workers = 4;
  DistributedKdEngine eng(&w.base, cfg);
  eng.build();
  KdSearchStats st;
  (void)eng.search(w.queries, 10, &st);
  const auto sum = std::accumulate(st.jobs_per_worker.begin(),
                                   st.jobs_per_worker.end(), std::uint64_t{0});
  EXPECT_EQ(sum, st.total_jobs);
  EXPECT_GE(st.total_jobs, w.queries.size());  // at least phase 1
  EXPECT_GT(st.worker_compute_seconds, 0.0);
}

TEST(KdEngine, PartitionSizesBalanced) {
  auto w = data::make_sift_like(1024, 5, 98);
  KdEngineConfig cfg;
  cfg.n_workers = 8;
  DistributedKdEngine eng(&w.base, cfg);
  eng.build();
  for (auto s : eng.partition_sizes()) EXPECT_EQ(s, 128u);
}

TEST(KdEngine, SearchBeforeBuildThrows) {
  auto w = data::make_sift_like(200, 5, 99);
  DistributedKdEngine eng(&w.base, {});
  EXPECT_THROW((void)eng.search(w.queries, 5), Error);
}

TEST(KdEngine, MatchesVpHnswEngineGroundTruthOnSameData) {
  // Integration sanity: exact KD engine reproduces brute force on the exact
  // same workload the approximate engine runs.
  auto w = data::make_deep_like(1500, 25, 100);
  KdEngineConfig cfg;
  cfg.n_workers = 4;
  DistributedKdEngine eng(&w.base, cfg);
  eng.build();
  auto res = eng.search(w.queries, 5);
  auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL2);
  for (std::size_t q = 0; q < res.size(); ++q) {
    ASSERT_EQ(res[q].size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(res[q][i].id, gt[q][i].id) << "q=" << q << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace annsim::core
