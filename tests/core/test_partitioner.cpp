#include "annsim/core/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

TEST(Exscan, PrefixAndTotal) {
  mpi::Runtime rt(4);
  rt.run([&](mpi::Comm& c) {
    std::uint64_t total = 0;
    const auto prefix =
        exscan_u64(c, std::uint64_t(c.rank() + 1), &total);
    // values 1,2,3,4 -> prefixes 0,1,3,6; total 10
    const std::uint64_t want[] = {0, 1, 3, 6};
    EXPECT_EQ(prefix, want[c.rank()]);
    EXPECT_EQ(total, 10u);
  });
}

TEST(Exscan, WithoutTotal) {
  mpi::Runtime rt(3);
  rt.run([&](mpi::Comm& c) {
    const auto prefix = exscan_u64(c, 5);
    EXPECT_EQ(prefix, std::uint64_t(c.rank()) * 5);
  });
}

TEST(DistributedMedian, MatchesSequentialMedian) {
  Rng rng(17);
  std::vector<float> all;
  for (int i = 0; i < 4001; ++i) all.push_back(float(rng.normal()));

  std::vector<float> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  const float expected = sorted[(sorted.size() - 1) / 2];

  mpi::Runtime rt(8);
  rt.run([&](mpi::Comm& c) {
    // Deal values round-robin (uneven: rank 0 gets one extra).
    std::vector<float> mine;
    for (std::size_t i = std::size_t(c.rank()); i < all.size(); i += 8) {
      mine.push_back(all[i]);
    }
    const float med = distributed_median(c, std::move(mine));
    EXPECT_FLOAT_EQ(med, expected);
  });
}

TEST(DistributedMedian, HandlesDuplicateHeavyData) {
  mpi::Runtime rt(4);
  rt.run([&](mpi::Comm& c) {
    // 400 copies of 1.0 and 2.0 each, plus one 3.0: median is between...
    // lower median of 801 values = index 400 -> value 2.0? sorted:
    // 400x1.0 then 400x2.0 then 3.0 -> index 400 is the first 2.0.
    std::vector<float> mine;
    for (int i = 0; i < 100; ++i) {
      mine.push_back(1.0f);
      mine.push_back(2.0f);
    }
    if (c.rank() == 0) mine.push_back(3.0f);
    const float med = distributed_median(c, std::move(mine));
    EXPECT_FLOAT_EQ(med, 2.0f);
  });
}

TEST(DistributedMedian, SomeRanksEmpty) {
  mpi::Runtime rt(4);
  rt.run([&](mpi::Comm& c) {
    std::vector<float> mine;
    if (c.rank() == 2) mine = {5.f, 1.f, 9.f};
    const float med = distributed_median(c, std::move(mine));
    EXPECT_FLOAT_EQ(med, 5.f);
  });
}

TEST(DistributedMedian, SingleRank) {
  mpi::Runtime rt(1);
  rt.run([&](mpi::Comm& c) {
    EXPECT_FLOAT_EQ(distributed_median(c, {3.f, 1.f, 2.f}), 2.f);
    EXPECT_FLOAT_EQ(distributed_median(c, {4.f, 1.f, 3.f, 2.f}), 2.f);
  });
}

class DistributedBuild : public ::testing::TestWithParam<int> {};

TEST_P(DistributedBuild, PartitionsAreDisjointCompleteAndBalanced) {
  const int P = GetParam();
  auto w = data::make_sift_like(std::size_t(P) * 100, 5, 81);
  PartitionerConfig cfg;
  cfg.vantage_candidates = 16;
  cfg.vantage_sample = 64;

  std::vector<data::Dataset> partitions(static_cast<std::size_t>(P));
  std::vector<std::byte> tree_bytes;
  mpi::Runtime rt(P);
  rt.run([&](mpi::Comm& c) {
    const auto w_rank = std::size_t(c.rank());
    data::Dataset slice = w.base.slice(w_rank * w.base.size() / std::size_t(P),
                                       (w_rank + 1) * w.base.size() / std::size_t(P));
    auto res = build_distributed_vp_tree(c, std::move(slice), cfg);
    EXPECT_EQ(res.partition_id, PartitionId(c.rank()));
    EXPECT_GT(res.build_seconds, 0.0);
    partitions[w_rank] = std::move(res.partition);
    if (c.rank() == 0) tree_bytes = std::move(res.serialized_tree);
  });

  // Disjoint + complete: every global id appears exactly once.
  std::set<GlobalId> seen;
  std::size_t total = 0;
  for (const auto& p : partitions) {
    total += p.size();
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_TRUE(seen.insert(p.id(i)).second) << "duplicate id " << p.id(i);
    }
  }
  EXPECT_EQ(total, w.base.size());

  // Balanced: median splits keep sizes within a small band.
  const auto [lo, hi] = std::minmax_element(
      partitions.begin(), partitions.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  EXPECT_LE(hi->size() - lo->size(), std::size_t(P));

  // The serialized tree exists on rank 0 and routes consistently.
  ASSERT_FALSE(tree_bytes.empty());
  BinaryReader rd(tree_bytes);
  auto tree = vptree::PartitionVpTree::deserialize(rd);
  EXPECT_EQ(tree.n_partitions(), std::size_t(P));
}

INSTANTIATE_TEST_SUITE_P(Ps, DistributedBuild, ::testing::Values(1, 2, 4, 8, 16));

TEST(DistributedBuildTree, RoutesPointsToTheirPartition) {
  const int P = 8;
  auto w = data::make_sift_like(1600, 5, 82);
  PartitionerConfig cfg;
  cfg.vantage_candidates = 16;
  cfg.vantage_sample = 64;

  std::vector<data::Dataset> partitions(P);
  std::vector<std::byte> tree_bytes;
  mpi::Runtime rt(P);
  rt.run([&](mpi::Comm& c) {
    const auto w_rank = std::size_t(c.rank());
    data::Dataset slice = w.base.slice(w_rank * w.base.size() / P,
                                       (w_rank + 1) * w.base.size() / P);
    auto res = build_distributed_vp_tree(c, std::move(slice), cfg);
    partitions[w_rank] = std::move(res.partition);
    if (c.rank() == 0) tree_bytes = std::move(res.serialized_tree);
  });

  BinaryReader rd(tree_bytes);
  auto tree = vptree::PartitionVpTree::deserialize(rd);

  // Map global id -> owning partition.
  std::vector<PartitionId> owner(w.base.size(), kInvalidPartition);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t i = 0; i < partitions[p].size(); ++i) {
      owner[partitions[p].id(i)] = PartitionId(p);
    }
  }
  // The assembled router must send (almost) every base point to the
  // partition that physically holds it (ties at sphere boundaries excepted).
  std::size_t agree = 0;
  for (std::size_t i = 0; i < w.base.size(); ++i) {
    if (tree.route_nearest(w.base.row(i)) == owner[i]) ++agree;
  }
  EXPECT_GE(agree, w.base.size() * 97 / 100);
}

TEST(DistributedBuildTree, SufficientRoutingForTrueNeighbors) {
  const int P = 8;
  auto w = data::make_sift_like(1200, 20, 83);
  PartitionerConfig cfg;
  cfg.vantage_candidates = 16;
  cfg.vantage_sample = 64;

  std::vector<data::Dataset> partitions(P);
  std::vector<std::byte> tree_bytes;
  mpi::Runtime rt(P);
  rt.run([&](mpi::Comm& c) {
    const auto w_rank = std::size_t(c.rank());
    data::Dataset slice = w.base.slice(w_rank * w.base.size() / P,
                                       (w_rank + 1) * w.base.size() / P);
    auto res = build_distributed_vp_tree(c, std::move(slice), cfg);
    partitions[w_rank] = std::move(res.partition);
    if (c.rank() == 0) tree_bytes = std::move(res.serialized_tree);
  });
  BinaryReader rd(tree_bytes);
  auto tree = vptree::PartitionVpTree::deserialize(rd);

  std::vector<PartitionId> owner(w.base.size(), kInvalidPartition);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t i = 0; i < partitions[p].size(); ++i) {
      owner[partitions[p].id(i)] = PartitionId(p);
    }
  }

  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  std::size_t covered = 0, total = 0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto parts = tree.route_ball(w.queries.row(q),
                                 gt[q].back().dist * (1.f + 1e-5f));
    std::set<PartitionId> visited(parts.begin(), parts.end());
    for (const auto& nb : gt[q]) {
      ++total;
      if (visited.contains(owner[nb.id])) ++covered;
    }
  }
  // Boundary ties may strand the odd point on the other side of a sphere;
  // coverage must still be essentially complete.
  EXPECT_GE(double(covered) / double(total), 0.99);
}

TEST(DistributedBuild, RejectsNonPowerOfTwoWorkers) {
  auto w = data::make_sift_like(300, 1, 84);
  mpi::Runtime rt(3);
  EXPECT_THROW(rt.run([&](mpi::Comm& c) {
    data::Dataset slice = w.base.slice(std::size_t(c.rank()) * 100,
                                       std::size_t(c.rank() + 1) * 100);
    (void)build_distributed_vp_tree(c, std::move(slice), {});
  }),
               Error);
}

TEST(DistributedBuild, DeterministicAcrossRuns) {
  const int P = 4;
  auto w = data::make_sift_like(800, 1, 85);
  PartitionerConfig cfg;
  cfg.vantage_candidates = 8;
  cfg.vantage_sample = 32;

  auto run_once = [&] {
    std::vector<std::vector<GlobalId>> ids(P);
    mpi::Runtime rt(P);
    rt.run([&](mpi::Comm& c) {
      const auto w_rank = std::size_t(c.rank());
      data::Dataset slice = w.base.slice(w_rank * w.base.size() / P,
                                         (w_rank + 1) * w.base.size() / P);
      auto res = build_distributed_vp_tree(c, std::move(slice), cfg);
      std::vector<GlobalId> mine(res.partition.ids().begin(),
                                 res.partition.ids().end());
      std::sort(mine.begin(), mine.end());
      ids[w_rank] = std::move(mine);
    });
    return ids;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace annsim::core
