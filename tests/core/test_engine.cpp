#include "annsim/core/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

EngineConfig fast_config(std::size_t workers = 8) {
  EngineConfig cfg;
  cfg.n_workers = workers;
  cfg.n_probe = 3;
  cfg.threads_per_worker = 2;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 60;
  cfg.hnsw.ef_search = 48;
  cfg.partitioner.vantage_candidates = 16;
  cfg.partitioner.vantage_sample = 64;
  return cfg;
}

struct Fixture {
  data::Workload w = data::make_sift_like(4000, 60, 91);
  data::KnnResults gt =
      data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Engine, ValidatesConfig) {
  data::Dataset d(100, 8);
  auto cfg = fast_config();
  cfg.n_workers = 6;  // not a power of two
  EXPECT_THROW(DistributedAnnEngine(&d, cfg), Error);
  cfg = fast_config();
  cfg.replication = 9;  // > workers
  EXPECT_THROW(DistributedAnnEngine(&d, cfg), Error);
  cfg = fast_config();
  cfg.strategy = DispatchStrategy::kMultipleOwner;
  cfg.one_sided = true;  // unsupported combination
  EXPECT_THROW(DistributedAnnEngine(&d, cfg), Error);
}

TEST(Engine, SearchBeforeBuildThrows) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  EXPECT_THROW((void)eng.search(f.w.queries, 10), Error);
  EXPECT_THROW((void)eng.router(), Error);
}

TEST(Engine, BuildProducesBalancedPartitionsAndStats) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  eng.build();
  EXPECT_TRUE(eng.built());
  const auto& bs = eng.build_stats();
  EXPECT_GT(bs.total_seconds, 0.0);
  EXPECT_GT(bs.vp_tree_seconds, 0.0);
  EXPECT_GT(bs.hnsw_seconds, 0.0);
  ASSERT_EQ(bs.partition_sizes.size(), 8u);
  std::size_t total = 0;
  for (auto s : bs.partition_sizes) {
    EXPECT_GE(s, 4000u / 8 - 8);
    EXPECT_LE(s, 4000u / 8 + 8);
    total += s;
  }
  EXPECT_EQ(total, 4000u);
  EXPECT_EQ(eng.router().n_partitions(), 8u);
}

TEST(Engine, DoubleBuildThrows) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  eng.build();
  EXPECT_THROW(eng.build(), Error);
}

TEST(Engine, OneSidedSearchReachesGoodRecall) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  eng.build();
  SearchStats st;
  auto res = eng.search(f.w.queries, 10, 0, &st);
  EXPECT_GT(data::mean_recall(res, f.gt, 10), 0.8);
  EXPECT_EQ(st.total_jobs, f.w.queries.size() * 3);  // n_probe jobs per query
  EXPECT_DOUBLE_EQ(st.mean_partitions_per_query, 3.0);
  EXPECT_GT(st.traffic.rma_ops, 0u);  // the one-sided path was exercised
}

TEST(Engine, TwoSidedMatchesOneSidedResults) {
  const auto& f = fixture();
  auto cfg = fast_config();
  DistributedAnnEngine one(&f.w.base, cfg);
  cfg.one_sided = false;
  DistributedAnnEngine two(&f.w.base, cfg);
  one.build();
  two.build();
  auto r1 = one.search(f.w.queries, 10);
  auto r2 = two.search(f.w.queries, 10);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t q = 0; q < r1.size(); ++q) {
    EXPECT_EQ(r1[q], r2[q]) << "query " << q;
  }
}

TEST(Engine, ReplicationPreservesResults) {
  const auto& f = fixture();
  auto cfg = fast_config();
  DistributedAnnEngine base(&f.w.base, cfg);
  cfg.replication = 3;
  DistributedAnnEngine repl(&f.w.base, cfg);
  base.build();
  repl.build();
  auto r1 = base.search(f.w.queries, 10);
  auto r2 = repl.search(f.w.queries, 10);
  for (std::size_t q = 0; q < r1.size(); ++q) {
    EXPECT_EQ(r1[q], r2[q]) << "query " << q;
  }
}

TEST(Engine, ReplicationSpreadsJobs) {
  // With replication, the workgroup round-robin must spread each
  // partition's jobs over r workers: the max per-worker load drops.
  auto w = data::make_syn(4096, 32, 20, 400, 92);  // clustered => skewed routing
  auto cfg = fast_config(8);
  cfg.n_probe = 2;
  DistributedAnnEngine base(&w.base, cfg);
  cfg.replication = 4;
  DistributedAnnEngine repl(&w.base, cfg);
  base.build();
  repl.build();
  SearchStats st_base, st_repl;
  (void)base.search(w.queries, 10, 0, &st_base);
  (void)repl.search(w.queries, 10, 0, &st_repl);
  const auto max_base = *std::max_element(st_base.jobs_per_worker.begin(),
                                          st_base.jobs_per_worker.end());
  const auto max_repl = *std::max_element(st_repl.jobs_per_worker.begin(),
                                          st_repl.jobs_per_worker.end());
  EXPECT_LT(max_repl, max_base);
}

TEST(Engine, JobsPerWorkerSumToTotal) {
  const auto& f = fixture();
  auto cfg = fast_config();
  cfg.replication = 2;
  DistributedAnnEngine eng(&f.w.base, cfg);
  eng.build();
  SearchStats st;
  (void)eng.search(f.w.queries, 10, 0, &st);
  const auto sum = std::accumulate(st.jobs_per_worker.begin(),
                                   st.jobs_per_worker.end(), std::uint64_t{0});
  EXPECT_EQ(sum, st.total_jobs);
}

TEST(Engine, ExactRoutingBeatsOrMatchesSinglePassRecall) {
  const auto& f = fixture();
  auto cfg = fast_config();
  cfg.n_probe = 1;
  DistributedAnnEngine single(&f.w.base, cfg);
  cfg.exact_routing = true;
  cfg.one_sided = false;
  DistributedAnnEngine exact(&f.w.base, cfg);
  single.build();
  exact.build();
  SearchStats st;
  const double r_single =
      data::mean_recall(single.search(f.w.queries, 10), f.gt, 10);
  const double r_exact =
      data::mean_recall(exact.search(f.w.queries, 10, 0, &st), f.gt, 10);
  EXPECT_GE(r_exact, r_single);
  EXPECT_GT(r_exact, 0.95);
  EXPECT_GT(st.mean_partitions_per_query, 1.0);
}

TEST(Engine, MultipleOwnerMatchesMasterWorker) {
  const auto& f = fixture();
  auto cfg = fast_config();
  cfg.one_sided = false;
  DistributedAnnEngine mw(&f.w.base, cfg);
  cfg.strategy = DispatchStrategy::kMultipleOwner;
  DistributedAnnEngine owner(&f.w.base, cfg);
  mw.build();
  owner.build();
  SearchStats st;
  auto r1 = mw.search(f.w.queries, 10);
  auto r2 = owner.search(f.w.queries, 10, 0, &st);
  for (std::size_t q = 0; q < r1.size(); ++q) {
    EXPECT_EQ(r1[q], r2[q]) << "query " << q;
  }
  EXPECT_EQ(st.total_jobs, f.w.queries.size() * cfg.n_probe);
}

TEST(Engine, HigherEfImprovesRecall) {
  const auto& f = fixture();
  auto cfg = fast_config();
  cfg.n_probe = 4;
  DistributedAnnEngine eng(&f.w.base, cfg);
  eng.build();
  const double lo = data::mean_recall(eng.search(f.w.queries, 10, 12), f.gt, 10);
  const double hi = data::mean_recall(eng.search(f.w.queries, 10, 256), f.gt, 10);
  EXPECT_GE(hi, lo);
}

TEST(Engine, MoreProbesImproveRecall) {
  const auto& f = fixture();
  auto cfg = fast_config();
  cfg.n_probe = 1;
  DistributedAnnEngine p1(&f.w.base, cfg);
  cfg.n_probe = 6;
  DistributedAnnEngine p6(&f.w.base, cfg);
  p1.build();
  p6.build();
  const double r1 = data::mean_recall(p1.search(f.w.queries, 10), f.gt, 10);
  const double r6 = data::mean_recall(p6.search(f.w.queries, 10), f.gt, 10);
  EXPECT_GE(r6, r1);
  EXPECT_GT(r6, 0.9);
}

TEST(Engine, PlanQueriesMatchesRouterDecisions) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  eng.build();
  auto plans = eng.plan_queries(f.w.queries);
  ASSERT_EQ(plans.size(), f.w.queries.size());
  for (std::size_t q = 0; q < plans.size(); ++q) {
    EXPECT_EQ(plans[q].size(), 3u);
    EXPECT_EQ(plans[q],
              eng.router().route_topk(f.w.queries.row(q), 3).partitions);
  }
}

TEST(Engine, StatsPhasesArePopulated) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  eng.build();
  SearchStats st;
  (void)eng.search(f.w.queries, 10, 0, &st);
  EXPECT_GT(st.total_seconds, 0.0);
  EXPECT_GT(st.master_route_seconds, 0.0);
  EXPECT_GT(st.master_dispatch_seconds, 0.0);
  EXPECT_GT(st.worker_compute_seconds, 0.0);
  EXPECT_GT(st.traffic.p2p_messages, 0u);
}

TEST(Engine, SingleWorkerDegeneratesGracefully) {
  auto w = data::make_sift_like(500, 20, 93);
  auto cfg = fast_config(1);
  cfg.n_probe = 1;
  cfg.replication = 1;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  auto res = eng.search(w.queries, 10);
  EXPECT_GT(data::mean_recall(res, gt, 10), 0.9);
}

TEST(Engine, KEqualsOne) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  eng.build();
  auto res = eng.search(f.w.queries, 1);
  double recall = 0;
  for (std::size_t q = 0; q < res.size(); ++q) {
    ASSERT_EQ(res[q].size(), 1u);
    recall += data::recall_at_k(res[q], f.gt[q], 1);
  }
  EXPECT_GT(recall / double(res.size()), 0.8);
}

TEST(Engine, RepeatedSearchesAreDeterministic) {
  const auto& f = fixture();
  DistributedAnnEngine eng(&f.w.base, fast_config());
  eng.build();
  auto r1 = eng.search(f.w.queries, 10);
  auto r2 = eng.search(f.w.queries, 10);
  for (std::size_t q = 0; q < r1.size(); ++q) EXPECT_EQ(r1[q], r2[q]);
}

/// The replication sweep of Fig 4 must run at every r the paper tests.
class ReplicationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReplicationSweep, BuildsAndSearchesAtEveryR) {
  const auto& f = fixture();
  auto cfg = fast_config();
  cfg.replication = GetParam();
  DistributedAnnEngine eng(&f.w.base, cfg);
  eng.build();
  auto res = eng.search(f.w.queries, 10);
  EXPECT_GT(data::mean_recall(res, f.gt, 10), 0.8) << "r=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rs, ReplicationSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace annsim::core
