/// Self-healing lifecycle tests: detect -> degrade -> heal -> full coverage.
/// The contract being pinned down:
///  * a worker declared dead stays dead across batches (single source of
///    truth in ClusterHealth; workers_failed never double-counts);
///  * heal() revives dead workers and restores every replica they hosted —
///    from the checkpoint store when configured, else by streaming from a
///    surviving replica over the reliable p2p control plane;
///  * after a heal the very next batch runs at full coverage: zero degraded
///    queries and every partition back at the replication factor.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "annsim/core/engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/recovery/checkpoint.hpp"

namespace annsim::core {
namespace {

namespace fs = std::filesystem;

EngineConfig recovery_config(std::size_t workers = 4) {
  EngineConfig cfg;
  cfg.n_workers = workers;
  cfg.replication = 2;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;  // deterministic per-worker op order
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

data::KnnResults fault_free_baseline(const data::Workload& w,
                                     const EngineConfig& cfg, std::size_t k) {
  EngineConfig clean = cfg;
  clean.fault = {};
  clean.result_timeout_ms = 0.0;
  clean.checkpoint_dir.clear();
  DistributedAnnEngine eng(&w.base, clean);
  eng.build();
  return eng.search(w.queries, k);
}

/// Unique per-test scratch directory, removed on teardown.
class EngineRecoveryDir {
 public:
  EngineRecoveryDir() {
    dir_ = (fs::temp_directory_path() /
            ("annsim_recovery_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  ~EngineRecoveryDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// Expect the engine to report a fully replicated, all-alive cluster and to
/// answer the whole workload without degradation, bit-identical to `clean`.
void expect_fully_recovered(DistributedAnnEngine& eng, const data::Workload& w,
                            const data::KnnResults& clean, std::size_t k) {
  EXPECT_TRUE(eng.health().all_alive());
  EXPECT_TRUE(eng.under_replicated_partitions().empty());
  for (std::size_t p = 0; p < eng.config().n_workers; ++p) {
    EXPECT_EQ(eng.live_replicas(PartitionId(p)), eng.config().replication)
        << "partition " << p;
  }
  SearchStats st;
  auto res = eng.search(w.queries, k, 0, &st);
  EXPECT_EQ(st.workers_failed, 0u);
  EXPECT_EQ(st.degraded_queries, 0u);
  ASSERT_EQ(res.size(), clean.size());
  for (std::size_t q = 0; q < clean.size(); ++q) {
    EXPECT_EQ(res[q], clean[q]) << "query " << q;
  }
}

class EngineRecoverySided : public ::testing::TestWithParam<bool> {};

TEST_P(EngineRecoverySided, HealRestoresReplicationFromCheckpoints) {
  EngineRecoveryDir scratch;
  auto w = data::make_sift_like(800, 25, 801);
  auto cfg = recovery_config(4);
  cfg.one_sided = GetParam();
  auto clean = fault_free_baseline(w, cfg, 10);

  cfg.checkpoint_dir = scratch.path();
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 90;
  // Worker 1 (runtime rank 2) delivers three results, then crashes.
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  // build() checkpoints every partition before any fault can fire.
  recovery::CheckpointStore store(scratch.path());
  EXPECT_EQ(store.partitions().size(), cfg.n_workers);

  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  EXPECT_EQ(st.degraded_queries, 0u);  // a live replica covered every plan
  EXPECT_FALSE(eng.health().alive(1));
  EXPECT_EQ(eng.health().dead_workers(), std::vector<std::size_t>{1});
  // Worker 1 hosted partitions 1 and 0 (its round-robin workgroup): both
  // are down to a single live copy.
  EXPECT_EQ(eng.under_replicated_partitions(),
            (std::vector<PartitionId>{0, 1}));
  EXPECT_EQ(eng.live_replicas(PartitionId(0)), 1u);
  EXPECT_EQ(eng.live_replicas(PartitionId(1)), 1u);

  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  EXPECT_EQ(heal.replicas_restored_from_checkpoint, 2u);
  EXPECT_EQ(heal.replicas_restored_from_peer, 0u);
  EXPECT_EQ(heal.replicas_unrecoverable, 0u);
  EXPECT_TRUE(heal.fully_healed());
  EXPECT_EQ(eng.health().workers[1].deaths, 1u);
  EXPECT_EQ(eng.health().workers[1].revivals, 1u);

  expect_fully_recovered(eng, w, clean, 10);
}

TEST_P(EngineRecoverySided, HealStreamsFromSurvivorsWithoutCheckpoints) {
  auto w = data::make_sift_like(800, 25, 802);
  auto cfg = recovery_config(4);
  cfg.one_sided = GetParam();
  auto clean = fault_free_baseline(w, cfg, 10);

  // No checkpoint_dir: the only recovery path is streaming each lost
  // partition from a surviving replica over the reliable data plane.
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 91;
  cfg.fault.kills.push_back({/*rank=*/3, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  EXPECT_EQ(eng.health().dead_workers(), std::vector<std::size_t>{2});

  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  EXPECT_EQ(heal.replicas_restored_from_checkpoint, 0u);
  EXPECT_EQ(heal.replicas_restored_from_peer, 2u);
  EXPECT_TRUE(heal.fully_healed());

  expect_fully_recovered(eng, w, clean, 10);
}

INSTANTIATE_TEST_SUITE_P(BothTransports, EngineRecoverySided,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? "OneSided" : "TwoSided";
                         });

TEST(EngineRecovery, DeadWorkerStaysDeadWithoutDoubleCounting) {
  auto w = data::make_sift_like(800, 20, 803);
  auto cfg = recovery_config(4);
  cfg.result_timeout_ms = 250.0;
  cfg.heartbeat_interval_ms = 1.0;
  cfg.fault.seed = 92;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  SearchStats st1;
  (void)eng.search(w.queries, 10, 0, &st1);
  EXPECT_EQ(st1.workers_failed, 1u);
  EXPECT_EQ(eng.health().workers[1].deaths, 1u);
  // The batch outlives the detection deadline, so live workers got many
  // 1ms beacons through; the master counted them.
  EXPECT_GT(eng.health().workers[0].heartbeats, 0u);

  // Batch 2, no heal: the worker is skipped at dispatch — not re-discovered,
  // not re-counted — and replicas still cover every plan.
  SearchStats st2;
  (void)eng.search(w.queries, 10, 0, &st2);
  EXPECT_EQ(st2.workers_failed, 0u);
  EXPECT_EQ(st2.degraded_queries, 0u);
  EXPECT_EQ(eng.health().workers[1].deaths, 1u);
  EXPECT_FALSE(eng.health().alive(1));
}

TEST(EngineRecovery, HealOnHealthyClusterIsNoOp) {
  auto w = data::make_sift_like(600, 10, 804);
  auto cfg = recovery_config(4);
  cfg.result_timeout_ms = 100.0;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 0u);
  EXPECT_EQ(heal.replicas_restored(), 0u);
  EXPECT_TRUE(heal.fully_healed());
  EXPECT_TRUE(eng.health().all_alive());
}

TEST(EngineRecovery, RejoinUnderContinuedChaos) {
  // The revived worker rejoins a cluster whose fabric is still lossy. Any
  // dropped message eventually kills its sender (the master's deadline-based
  // detector cannot tell a lost result from a dead worker), so a chaos batch
  // may take down *several* workers, not just the scheduled one. Full
  // mirroring (replication == n_workers) makes the test immune to that
  // nondeterminism: every survivor holds every partition, so failover absorbs
  // any death set short of the whole cluster, and heal() always has a live
  // peer to stream from. What stays under test is exactly the satellite
  // contract: revive while drop_probability > 0, re-replication completing
  // over the reliable kTagReplica fabric, and zero degraded queries in every
  // subsequent batch.
  auto w = data::make_sift_like(800, 20, 805);
  auto cfg = recovery_config(4);
  cfg.replication = 4;  // full mirroring: deaths cost retries, never coverage
  cfg.result_timeout_ms = 150.0;
  cfg.fault.seed = 93;
  cfg.fault.drop_probability = 0.005;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  auto clean = fault_free_baseline(w, cfg, 10);
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  SearchStats st1;
  (void)eng.search(w.queries, 10, 0, &st1);
  EXPECT_GE(st1.workers_failed, 1u);
  EXPECT_FALSE(eng.health().alive(1));
  ASSERT_LT(eng.health().dead_workers().size(), 4u);  // someone survived

  for (int round = 0; round < 3; ++round) {
    const auto heal = eng.heal();
    if (round == 0) {
      // The scheduled kill definitely fired, so the first heal revives at
      // least worker 1 and streams back its full complement of replicas —
      // there is no checkpoint dir, peer streaming is the only path.
      EXPECT_GE(heal.workers_revived, 1u);
      EXPECT_GE(heal.replicas_restored_from_peer, cfg.replication);
      EXPECT_EQ(heal.replicas_restored_from_checkpoint, 0u);
    }
    EXPECT_TRUE(heal.fully_healed()) << "round " << round;
    EXPECT_TRUE(eng.health().all_alive()) << "round " << round;
    EXPECT_TRUE(eng.under_replicated_partitions().empty()) << "round " << round;

    // Post-heal batch under the same drop probability: drops may cost
    // retries and even fresh deaths, but never a query's full plan.
    SearchStats st;
    auto res = eng.search(w.queries, 10, 0, &st);
    EXPECT_EQ(st.degraded_queries, 0u) << "round " << round;
    ASSERT_EQ(res.size(), clean.size());
    for (std::size_t q = 0; q < clean.size(); ++q) {
      EXPECT_EQ(res[q], clean[q]) << "round " << round << " query " << q;
    }
  }
}

TEST(EngineRecovery, LoadWithCheckpointDirSnapshotsEveryPartition) {
  EngineRecoveryDir scratch;
  const std::string idx = scratch.path() + ".idx";
  auto w = data::make_sift_like(800, 10, 806);
  {
    DistributedAnnEngine eng(&w.base, recovery_config(4));
    eng.build();
    eng.save(idx);
  }
  auto loaded = DistributedAnnEngine::load(idx, scratch.path());
  EXPECT_EQ(loaded.config().checkpoint_dir, scratch.path());
  recovery::CheckpointStore store(scratch.path());
  EXPECT_EQ(store.partitions(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(loaded.health().all_alive());
  fs::remove(idx);
}

TEST(EngineRecovery, HealIsSeedDeterministic) {
  auto w = data::make_sift_like(800, 15, 807);
  auto cfg = recovery_config(4);
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 94;
  cfg.fault.kills.push_back({/*rank=*/4, /*after_ops=*/2, mpi::kNeverFires});

  auto run_once = [&] {
    DistributedAnnEngine eng(&w.base, cfg);
    eng.build();
    (void)eng.search(w.queries, 8);
    (void)eng.heal();
    return eng.search(w.queries, 8);
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q], b[q]) << "query " << q;
  }
}

}  // namespace
}  // namespace annsim::core
