#include "annsim/core/local_index.hpp"

#include "annsim/core/engine.hpp"

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

LocalIndexParams params_of(LocalIndexKind kind) {
  LocalIndexParams p;
  p.kind = kind;
  p.hnsw.M = 8;
  p.hnsw.ef_construction = 60;
  p.hnsw.ef_search = 64;
  return p;
}

class LocalIndexKinds : public ::testing::TestWithParam<LocalIndexKind> {};

TEST_P(LocalIndexKinds, BuildsAndReportsKind) {
  auto w = data::make_sift_like(500, 10, 201);
  auto index = build_local_index(&w.base, params_of(GetParam()));
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->kind(), GetParam());
  EXPECT_EQ(index->size(), 500u);
}

TEST_P(LocalIndexKinds, SearchReturnsSortedGlobalIds) {
  auto w = data::make_sift_like(500, 10, 202);
  for (std::size_t i = 0; i < w.base.size(); ++i) w.base.set_id(i, 7000 + i);
  auto index = build_local_index(&w.base, params_of(GetParam()));
  auto res = index->search(w.queries.row(0), 5, 64);
  ASSERT_EQ(res.size(), 5u);
  for (std::size_t i = 0; i < res.size(); ++i) {
    EXPECT_GE(res[i].id, 7000u);
    if (i > 0) {
      EXPECT_LE(res[i - 1].dist, res[i].dist);
    }
  }
}

TEST_P(LocalIndexKinds, BytesRoundTripPreservesResults) {
  auto w = data::make_sift_like(400, 20, 203);
  const auto params = params_of(GetParam());
  auto index = build_local_index(&w.base, params);
  auto copy = local_index_from_bytes(index->to_bytes(), &w.base, params);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(copy->search(w.queries.row(q), 10, 64),
              index->search(w.queries.row(q), 10, 64));
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, LocalIndexKinds,
                         ::testing::Values(LocalIndexKind::kHnsw,
                                           LocalIndexKind::kBruteForce,
                                           LocalIndexKind::kVpTree));

TEST(LocalIndex, ExactKindsMatchGroundTruth) {
  auto w = data::make_deep_like(600, 15, 204);
  auto gt = data::brute_force_knn(w.base, w.queries, 8, simd::Metric::kL2);
  for (auto kind : {LocalIndexKind::kBruteForce, LocalIndexKind::kVpTree}) {
    auto index = build_local_index(&w.base, params_of(kind));
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      auto res = index->search(w.queries.row(q), 8, 0);
      ASSERT_EQ(res.size(), 8u);
      for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(res[i].id, gt[q][i].id)
            << local_index_kind_name(kind) << " q=" << q << " i=" << i;
      }
    }
  }
}

TEST(LocalIndex, KindNamesStable) {
  EXPECT_STREQ(local_index_kind_name(LocalIndexKind::kHnsw), "hnsw");
  EXPECT_STREQ(local_index_kind_name(LocalIndexKind::kBruteForce), "bruteforce");
  EXPECT_STREQ(local_index_kind_name(LocalIndexKind::kVpTree), "vptree");
}

TEST(EngineLocalIndex, BruteForceWithExactRoutingIsExact) {
  // §VI composed: exact local search + exact F(q) routing = exact
  // distributed k-NN, recall 1.0 by construction.
  auto w = data::make_sift_like(2000, 40, 205);
  EngineConfig cfg;
  cfg.n_workers = 8;
  cfg.local_index = LocalIndexKind::kBruteForce;
  cfg.exact_routing = true;
  cfg.one_sided = false;
  cfg.threads_per_worker = 1;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 64;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto res = eng.search(w.queries, 10);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  EXPECT_DOUBLE_EQ(data::mean_recall(res, gt, 10), 1.0);
}

TEST(EngineLocalIndex, VpTreeLocalIndexWorksWithReplication) {
  auto w = data::make_sift_like(1600, 20, 206);
  EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.replication = 2;
  cfg.local_index = LocalIndexKind::kVpTree;
  cfg.n_probe = 2;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 64;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto res = eng.search(w.queries, 10);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  // Local search is exact; residual loss is routing-only.
  EXPECT_GT(data::mean_recall(res, gt, 10), 0.7);
}

TEST(EngineLocalIndex, IvfPqCompressedDistributedEngine) {
  // Compose the compressed index into the distributed engine: recall is
  // bounded by the quantization ceiling but far above chance, and memory
  // per worker is a fraction of the raw vectors.
  auto w = data::make_sift_like(3200, 30, 207);
  EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.n_probe = 3;
  cfg.local_index = LocalIndexKind::kIvfPq;
  cfg.ivfpq.nlist = 16;
  cfg.ivfpq.nprobe = 16;  // scan everything locally: isolates PQ error
  cfg.ivfpq.pq.m = 8;
  cfg.ivfpq.pq.ks = 64;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 64;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto res = eng.search(w.queries, 10);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  // Id-only recall (ADC distances are approximate).
  double recall = 0;
  for (std::size_t q = 0; q < res.size(); ++q) {
    std::size_t hits = 0;
    for (const auto& r : res[q]) {
      for (const auto& t : gt[q]) {
        if (r.id == t.id) { ++hits; break; }
      }
    }
    recall += double(hits) / 10.0;
  }
  recall /= double(res.size());
  EXPECT_GT(recall, 0.3);
  EXPECT_LT(recall, 1.0);  // the compression ceiling is real
}

TEST(EngineLocalIndex, IvfPqRejectsNonL2AtConstruction) {
  auto w = data::make_syn(800, 16, 0, 5, 208);
  EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.local_index = LocalIndexKind::kIvfPq;
  cfg.hnsw.metric = simd::Metric::kL1;
  // Must fail before the SPMD region: a rank throwing mid-build would
  // strand its peers (as in real MPI).
  EXPECT_THROW(DistributedAnnEngine(&w.base, cfg), Error);
}

}  // namespace
}  // namespace annsim::core
