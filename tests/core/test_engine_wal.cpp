/// Engine write-durability tests: the WAL-backed ack contract end to end.
/// What is pinned down:
///  * ack => replayable: after a seeded disk fault kills a worker mid-round,
///    every insert the engine acked is still found after heal(), and every
///    acked delete stays dead — even when the only durable copy briefly
///    lived on the survivors;
///  * heal prefers the revived worker's own WAL tail when it covers the
///    partition's last issued LSN, and falls back to streaming from a
///    current peer when the worker's log went stale while it was dead —
///    a stale checkpoint + short log must never resurrect acked deletes;
///  * load(path, checkpoint_dir, wal_dir) replays the log tail past the
///    saved engine image, so a process restart recovers writes that were
///    acked after the last save();
///  * a corrupted delta blob in a segmented checkpoint fails the restore of
///    exactly that partition and heal falls back to peer streaming.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <unordered_set>
#include <vector>

#include "annsim/core/engine.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/recovery/checkpoint.hpp"

namespace annsim::core {
namespace {

namespace fs = std::filesystem;

EngineConfig wal_config(std::size_t workers = 4) {
  EngineConfig cfg;
  cfg.n_workers = workers;
  cfg.replication = 2;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.local_index = LocalIndexKind::kSegmented;
  cfg.segment_delta_capacity = 64;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

/// Unique per-test scratch tree with checkpoint/ and wal/ subdirectories.
class WalScratch {
 public:
  WalScratch() {
    root_ = (fs::temp_directory_path() /
             ("annsim_engwal_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~WalScratch() { fs::remove_all(root_); }
  [[nodiscard]] std::string checkpoints() const { return root_ + "/ckpt"; }
  [[nodiscard]] std::string wal() const { return root_ + "/wal"; }
  [[nodiscard]] std::string engine_file() const { return root_ + "/eng.idx"; }

 private:
  std::string root_;
};

/// Ids of `ws.assigned_ids` whose row the engine acked (>= 1 replica durable).
std::vector<GlobalId> acked_ids(const WriteStats& ws) {
  std::vector<GlobalId> out;
  for (std::size_t i = 0; i < ws.assigned_ids.size(); ++i) {
    if (i < ws.row_acked.size() && ws.row_acked[i]) {
      out.push_back(ws.assigned_ids[i]);
    }
  }
  return out;
}

void expect_none_returned(const data::KnnResults& res,
                          const std::unordered_set<GlobalId>& banned,
                          const char* when) {
  for (std::size_t q = 0; q < res.size(); ++q) {
    for (const auto& nb : res[q]) {
      EXPECT_FALSE(banned.contains(nb.id))
          << "deleted id " << nb.id << " resurfaced in query " << q << " "
          << when;
    }
  }
}

TEST(EngineWal, TornWriteMidRoundLosesNoAckedWrite) {
  WalScratch scratch;
  auto w = data::make_sift_like(600, 20, 901);
  auto cfg = wal_config(4);
  cfg.checkpoint_dir = scratch.checkpoints();
  cfg.wal_dir = scratch.wal();
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 95;
  // Worker 1 (runtime rank 2) suffers a torn frame on LSN 12 — mid second
  // insert round — and goes fail-silent from there.
  cfg.fault.disk_faults.push_back({/*rank=*/2, /*at_lsn=*/12,
                                   mpi::DiskFaultKind::kTornWrite});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  auto stream1 = data::make_sift_like(8, 1, 902).base;
  auto stream2 = data::make_sift_like(8, 1, 903).base;
  const auto ws1 = eng.insert(stream1);  // LSNs 1..8, fault not yet armed
  const auto ws2 = eng.insert(stream2);  // LSNs 9..16: fault fires at 12

  // The fault leaves the rank fail-silent; a search batch observes the
  // silence and folds the death into the health record.
  SearchStats det;
  (void)eng.search(w.queries, 10, 0, &det);
  EXPECT_EQ(det.workers_failed, 1u);
  ASSERT_FALSE(eng.health().alive(1));

  // Deletes issued while worker 1 is dead: the survivors log + ack them.
  std::vector<GlobalId> dels{3, 40, 77, 150, 222};
  const auto dws = eng.remove(dels);
  EXPECT_TRUE(dws.all_acked);

  std::vector<GlobalId> acked = acked_ids(ws1);
  for (const GlobalId id : acked_ids(ws2)) acked.push_back(id);
  ASSERT_FALSE(acked.empty());
  // Acked before heal: at least one live replica holds each row already.
  for (const GlobalId id : acked) {
    EXPECT_TRUE(eng.contains(id)) << "acked id " << id << " lost before heal";
  }

  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  EXPECT_TRUE(heal.fully_healed());
  // The torn frame is a corrupt tail on worker 1's log; recovery drops it.
  EXPECT_GT(heal.wal_truncated_tail_bytes, 0u);

  // The durability gate: nothing acked lost, nothing deleted resurrected —
  // on any replica, including the one just rebuilt.
  for (const GlobalId id : acked) {
    EXPECT_TRUE(eng.contains(id)) << "acked id " << id << " lost after heal";
  }
  std::unordered_set<GlobalId> banned(dels.begin(), dels.end());
  for (const GlobalId id : dels) {
    EXPECT_FALSE(eng.contains(id)) << "acked delete " << id << " resurrected";
  }
  SearchStats st;
  const auto res = eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 0u);
  EXPECT_EQ(st.degraded_queries, 0u);
  expect_none_returned(res, banned, "after heal");
}

TEST(EngineWal, StaleLogAndCheckpointPreferPeerStream) {
  WalScratch scratch;
  auto w = data::make_sift_like(600, 20, 904);
  auto cfg = wal_config(4);
  cfg.checkpoint_dir = scratch.checkpoints();
  cfg.wal_dir = scratch.wal();
  // Checkpoints only at build time: everything written afterwards exists in
  // the WALs and the live replicas alone — the adversarial case for heal.
  cfg.checkpoint_every_rounds = 1000;
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 96;
  // Worker 1 crashes before its very first frame reaches disk: its log
  // stays empty while the cluster keeps acking writes without it.
  cfg.fault.disk_faults.push_back({/*rank=*/2, /*at_lsn=*/1,
                                   mpi::DiskFaultKind::kCrashAtLsn});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  auto stream = data::make_sift_like(12, 1, 905).base;
  const auto ws = eng.insert(stream);  // kills worker 1 at LSN 1
  SearchStats det;
  (void)eng.search(w.queries, 10, 0, &det);
  EXPECT_EQ(det.workers_failed, 1u);
  ASSERT_FALSE(eng.health().alive(1));
  std::vector<GlobalId> dels{5, 17, 120, 301, 444, 590};
  const auto dws = eng.remove(dels);
  EXPECT_TRUE(dws.all_acked);

  // Worker 1's own log (empty) is behind every partition it hosts, and both
  // its partitions still have a live peer: heal must stream current state,
  // not restore the build-time checkpoint that predates every write above —
  // that stale image would resurrect all six deletes.
  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  EXPECT_EQ(heal.replicas_restored_from_checkpoint, 0u);
  EXPECT_EQ(heal.replicas_restored_from_peer, 2u);
  EXPECT_TRUE(heal.fully_healed());

  for (const GlobalId id : acked_ids(ws)) {
    EXPECT_TRUE(eng.contains(id)) << "acked id " << id << " lost after heal";
  }
  for (const GlobalId id : dels) {
    EXPECT_FALSE(eng.contains(id)) << "acked delete " << id << " resurrected";
  }
  std::unordered_set<GlobalId> banned(dels.begin(), dels.end());
  expect_none_returned(eng.search(w.queries, 10), banned, "after heal");
}

TEST(EngineWal, CurrentLogReplaysInsteadOfStreaming) {
  WalScratch scratch;
  auto w = data::make_sift_like(600, 20, 906);
  auto cfg = wal_config(4);
  cfg.checkpoint_dir = scratch.checkpoints();
  cfg.wal_dir = scratch.wal();
  cfg.checkpoint_every_rounds = 1000;  // build-time checkpoints only
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 97;
  // Worker 1 dies on the SEARCH plane, after every write round committed:
  // its log covers the last LSN issued against its partitions, so heal can
  // take the cheap path — restore the (stale, build-time) checkpoint and
  // replay its own WAL tail locally, no peer stream needed.
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto stream = data::make_sift_like(12, 1, 907).base;
  const auto ws = eng.insert(stream);
  std::vector<GlobalId> dels{9, 33, 140, 287, 402, 555};
  const auto dws = eng.remove(dels);
  EXPECT_TRUE(dws.all_acked);

  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  ASSERT_FALSE(eng.health().alive(1));

  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  EXPECT_TRUE(heal.fully_healed());
  // Both of worker 1's partitions restore from the checkpoint + its own
  // WAL tail — the log is current, so no peer stream and a real replay.
  EXPECT_EQ(heal.replicas_restored_from_checkpoint, 2u);
  EXPECT_EQ(heal.replicas_restored_from_peer, 0u);
  EXPECT_GT(heal.wal_replayed_records, 0u);

  for (const GlobalId id : acked_ids(ws)) {
    EXPECT_TRUE(eng.contains(id)) << "acked id " << id << " lost after heal";
  }
  for (const GlobalId id : dels) {
    EXPECT_FALSE(eng.contains(id)) << "acked delete " << id << " resurrected";
  }
  std::unordered_set<GlobalId> banned(dels.begin(), dels.end());
  SearchStats st2;
  const auto res = eng.search(w.queries, 10, 0, &st2);
  EXPECT_EQ(st2.workers_failed, 0u);
  EXPECT_EQ(st2.degraded_queries, 0u);
  expect_none_returned(res, banned, "after heal");
}

TEST(EngineWal, LoadReplaysWalTailPastTheSavedImage) {
  WalScratch scratch;
  auto w = data::make_sift_like(600, 10, 908);
  std::vector<GlobalId> acked;
  std::vector<GlobalId> dels{7, 42, 299};
  {
    auto cfg = wal_config(4);
    cfg.checkpoint_dir = scratch.checkpoints();
    cfg.wal_dir = scratch.wal();
    DistributedAnnEngine eng(&w.base, cfg);
    eng.build();
    eng.save(scratch.engine_file());

    // Writes acked AFTER the save: the engine image on disk predates them,
    // only the WALs carry them across the "process restart" below.
    auto stream = data::make_sift_like(10, 1, 909).base;
    acked = acked_ids(eng.insert(stream));
    ASSERT_EQ(acked.size(), 10u);
    const auto dws = eng.remove(dels);
    EXPECT_TRUE(dws.all_acked);
  }  // engine destroyed: everything in memory is gone

  auto eng = DistributedAnnEngine::load(scratch.engine_file(),
                                        scratch.checkpoints(), scratch.wal());
  for (const GlobalId id : acked) {
    EXPECT_TRUE(eng.contains(id)) << "acked id " << id << " lost across load";
  }
  for (const GlobalId id : dels) {
    EXPECT_FALSE(eng.contains(id))
        << "acked delete " << id << " resurrected across load";
  }
  // The LSN and id streams resume past the replayed tail: fresh inserts can
  // never reuse an id a replayed record already owns.
  auto more = data::make_sift_like(2, 1, 910).base;
  const auto ws = eng.insert(more);
  ASSERT_EQ(ws.assigned_ids.size(), 2u);
  EXPECT_GT(ws.assigned_ids[0], acked.back());
  std::unordered_set<GlobalId> banned(dels.begin(), dels.end());
  expect_none_returned(eng.search(w.queries, 10), banned, "after load");
}

TEST(EngineWal, CorruptDeltaBlobFallsBackToPeerStream) {
  WalScratch scratch;
  auto w = data::make_sift_like(600, 20, 911);
  auto cfg = wal_config(4);
  cfg.checkpoint_dir = scratch.checkpoints();
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 98;
  // Worker 1 (runtime rank 2) dies three ops into the search batch below.
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  // A write round re-checkpoints every partition with a non-empty delta
  // blob — the file this test is about to corrupt.
  auto stream = data::make_sift_like(40, 1, 912).base;
  (void)eng.insert(stream);

  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  ASSERT_FALSE(eng.health().alive(1));

  // Flip one mid-file byte of partition 1's delta generation: the size
  // stays right, only the checksum can catch it at restore time.
  fs::path delta_path;
  for (const auto& entry : fs::directory_iterator(
           fs::path(scratch.checkpoints()) / "partition_1")) {
    if (entry.path().filename().string().rfind("delta_", 0) == 0) {
      delta_path = entry.path();
    }
  }
  ASSERT_FALSE(delta_path.empty());
  const auto size = fs::file_size(delta_path);
  ASSERT_GT(size, 2u);
  {
    std::fstream f(delta_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(std::streamoff(size / 2));
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x20);
    f.seekp(std::streamoff(size / 2));
    f.write(&c, 1);
  }

  // Heal must not sink on the corrupt partition: partition 0 restores from
  // its (intact) checkpoint, partition 1 detects the bad delta and streams
  // from the surviving peer instead.
  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  EXPECT_EQ(heal.replicas_restored_from_checkpoint, 1u);
  EXPECT_EQ(heal.replicas_restored_from_peer, 1u);
  EXPECT_EQ(heal.replicas_unrecoverable, 0u);
  EXPECT_TRUE(heal.fully_healed());

  SearchStats st2;
  (void)eng.search(w.queries, 10, 0, &st2);
  EXPECT_EQ(st2.workers_failed, 0u);
  EXPECT_EQ(st2.degraded_queries, 0u);
}

}  // namespace
}  // namespace annsim::core
