#include "annsim/core/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "annsim/common/rng.hpp"

namespace annsim::core {
namespace {

TEST(Protocol, QueryJobRoundTrip) {
  QueryJob job;
  job.query_id = 42;
  job.partition = 7;
  job.k = 10;
  job.ef = 128;
  job.reply_to = 3;
  job.query = {1.f, 2.f, 3.f};
  auto bytes = encode_query_job(job);
  QueryJob back = decode_query_job(bytes);
  EXPECT_EQ(back.query_id, 42u);
  EXPECT_EQ(back.partition, 7u);
  EXPECT_EQ(back.k, 10u);
  EXPECT_EQ(back.ef, 128u);
  EXPECT_EQ(back.reply_to, 3u);
  EXPECT_EQ(back.query, job.query);
}

TEST(Protocol, QueryJobRejectsTrailingGarbage) {
  auto bytes = encode_query_job({});
  bytes.push_back(std::byte{1});
  EXPECT_THROW((void)decode_query_job(bytes), Error);
}

TEST(Protocol, LocalResultRoundTrip) {
  LocalResult r;
  r.query_id = 5;
  r.partition = 2;
  r.neighbors = {{0.5f, 100}, {1.5f, 200}};
  auto bytes = encode_local_result(r);
  LocalResult back = decode_local_result(bytes);
  EXPECT_EQ(back.query_id, 5u);
  EXPECT_EQ(back.partition, 2u);
  EXPECT_EQ(back.neighbors, r.neighbors);
}

TEST(SlotLayout, SizesAndOffsets) {
  SlotLayout layout{10};
  EXPECT_EQ(layout.slot_bytes(), 8u + 10 * sizeof(Neighbor));
  EXPECT_EQ(layout.slot_offset(0), 0u);
  EXPECT_EQ(layout.slot_offset(3), 3 * layout.slot_bytes());
  EXPECT_EQ(layout.window_bytes(100), 100 * layout.slot_bytes());
}

TEST(SlotUpdate, PadsWithSentinels) {
  SlotLayout layout{5};
  std::vector<Neighbor> two{{1.f, 1}, {2.f, 2}};
  auto bytes = encode_slot_update(two, layout);
  EXPECT_EQ(bytes.size(), layout.slot_bytes());
  DecodedSlot slot = decode_slot(bytes, layout);
  EXPECT_EQ(slot.merged_count, 1u);
  ASSERT_EQ(slot.neighbors.size(), 2u);  // sentinels stripped
  EXPECT_EQ(slot.neighbors[0].id, 1u);
}

TEST(SlotMerge, EmptySlotTakesOriginAsIs) {
  SlotLayout layout{3};
  std::vector<std::byte> slot(layout.slot_bytes());  // zeroed: count == 0
  std::vector<Neighbor> mine{{1.f, 10}, {2.f, 20}};
  auto update = encode_slot_update(mine, layout);
  knn_slot_merge(layout)(slot, update);
  DecodedSlot out = decode_slot(slot, layout);
  EXPECT_EQ(out.merged_count, 1u);
  ASSERT_EQ(out.neighbors.size(), 2u);
  EXPECT_EQ(out.neighbors[0].id, 10u);
  EXPECT_EQ(out.neighbors[1].id, 20u);
}

TEST(SlotMerge, AccumulatesAcrossPartitions) {
  SlotLayout layout{3};
  std::vector<std::byte> slot(layout.slot_bytes());
  const auto merge = knn_slot_merge(layout);
  merge(slot, encode_slot_update(std::vector<Neighbor>{{3.f, 1}, {5.f, 2}}, layout));
  merge(slot, encode_slot_update(std::vector<Neighbor>{{1.f, 3}, {4.f, 4}}, layout));
  merge(slot, encode_slot_update(std::vector<Neighbor>{{2.f, 5}}, layout));
  DecodedSlot out = decode_slot(slot, layout);
  EXPECT_EQ(out.merged_count, 3u);
  ASSERT_EQ(out.neighbors.size(), 3u);
  EXPECT_EQ(out.neighbors[0].id, 3u);  // 1.0
  EXPECT_EQ(out.neighbors[1].id, 5u);  // 2.0
  EXPECT_EQ(out.neighbors[2].id, 1u);  // 3.0
}

TEST(SlotMerge, OrderIndependent) {
  SlotLayout layout{4};
  Rng rng(3);
  std::vector<std::vector<Neighbor>> parts(4);
  GlobalId id = 0;
  for (auto& p : parts) {
    for (int i = 0; i < 6; ++i) p.push_back({rng.uniformf(), id++});
    std::sort(p.begin(), p.end());
  }
  auto run = [&](std::vector<std::size_t> order) {
    std::vector<std::byte> slot(layout.slot_bytes());
    const auto merge = knn_slot_merge(layout);
    for (auto i : order) merge(slot, encode_slot_update(parts[i], layout));
    return decode_slot(slot, layout).neighbors;
  };
  const auto ref = run({0, 1, 2, 3});
  EXPECT_EQ(ref, run({3, 2, 1, 0}));
  EXPECT_EQ(ref, run({1, 3, 0, 2}));
}

TEST(SlotMerge, ValidatesRegionSizes) {
  SlotLayout layout{2};
  std::vector<std::byte> small(4);
  std::vector<std::byte> slot(layout.slot_bytes());
  EXPECT_THROW(knn_slot_merge(layout)(slot, small), Error);
}

// ---- masked layout (failure detection arms n_partitions > 0) ----------

TEST(MaskedSlot, LayoutSizesGrowByMaskWords) {
  SlotLayout legacy{10};
  EXPECT_EQ(legacy.mask_words(), 0u);
  EXPECT_EQ(legacy.header_bytes(), 8u);

  SlotLayout masked{10, 64};
  EXPECT_EQ(masked.mask_words(), 1u);
  EXPECT_EQ(masked.header_bytes(), 16u);
  EXPECT_EQ(masked.slot_bytes(), legacy.slot_bytes() + 8u);

  SlotLayout wide{10, 65};  // 65 partitions need a second mask word
  EXPECT_EQ(wide.mask_words(), 2u);
  EXPECT_EQ(wide.header_bytes(), 24u);
}

TEST(MaskedSlot, UpdateRecordsSearchedPartition) {
  SlotLayout layout{3, 8};
  std::vector<Neighbor> mine{{1.f, 10}};
  auto update = encode_slot_update(mine, layout, /*partition=*/5);
  std::vector<std::byte> slot(layout.slot_bytes());
  knn_slot_merge(layout)(slot, update);
  DecodedSlot out = decode_slot(slot, layout);
  EXPECT_EQ(out.merged_count, 1u);
  EXPECT_TRUE(out.contains_partition(5));
  EXPECT_FALSE(out.contains_partition(4));
  SlotHeader header = decode_slot_header(slot, layout);
  EXPECT_EQ(header.merged_count, 1u);
  EXPECT_TRUE(header.contains_partition(5));
}

TEST(MaskedSlot, MaskedEncodeRequiresThePartitionId) {
  SlotLayout layout{3, 8};
  std::vector<Neighbor> mine{{1.f, 10}};
  EXPECT_THROW((void)encode_slot_update(mine, layout), Error);
}

TEST(MaskedSlot, DuplicatePartitionMergeIsIdempotent) {
  // A failover retry may replay a merge the dead worker already landed; the
  // second copy must be dropped, leaving count, mask, and neighbors intact.
  SlotLayout layout{3, 4};
  std::vector<std::byte> slot(layout.slot_bytes());
  const auto merge = knn_slot_merge(layout);
  merge(slot, encode_slot_update(std::vector<Neighbor>{{1.f, 10}}, layout, 2));
  merge(slot, encode_slot_update(std::vector<Neighbor>{{0.5f, 99}}, layout, 2));
  DecodedSlot out = decode_slot(slot, layout);
  EXPECT_EQ(out.merged_count, 1u);
  ASSERT_EQ(out.neighbors.size(), 1u);
  EXPECT_EQ(out.neighbors[0].id, 10u);  // the retry's payload never merged
}

TEST(MaskedSlot, DistinctPartitionsAccumulateMaskBits) {
  SlotLayout layout{4, 70};  // two mask words, bits in both
  std::vector<std::byte> slot(layout.slot_bytes());
  const auto merge = knn_slot_merge(layout);
  merge(slot, encode_slot_update(std::vector<Neighbor>{{3.f, 1}}, layout, 0));
  merge(slot, encode_slot_update(std::vector<Neighbor>{{1.f, 2}}, layout, 69));
  DecodedSlot out = decode_slot(slot, layout);
  EXPECT_EQ(out.merged_count, 2u);
  EXPECT_TRUE(out.contains_partition(0));
  EXPECT_TRUE(out.contains_partition(69));
  EXPECT_FALSE(out.contains_partition(1));
  ASSERT_EQ(out.neighbors.size(), 2u);
  EXPECT_EQ(out.neighbors[0].id, 2u);  // still distance-sorted
}

TEST(MaskedSlot, LegacyLayoutBytesUnchangedByMaskSupport) {
  // n_partitions == 0 must produce the exact pre-mask wire bytes, or
  // fault-free runs would stop being bit-identical to the old engine.
  SlotLayout layout{2};
  std::vector<Neighbor> mine{{1.f, 7}};
  auto update = encode_slot_update(mine, layout);
  ASSERT_EQ(update.size(), 8u + 2 * sizeof(Neighbor));
  std::uint32_t count = 0;
  std::memcpy(&count, update.data(), sizeof(count));
  EXPECT_EQ(count, 1u);
  Neighbor first;
  std::memcpy(&first, update.data() + 8, sizeof(first));
  EXPECT_EQ(first.id, 7u);
  EXPECT_TRUE(decode_slot(update, layout).mask.empty());
}

}  // namespace
}  // namespace annsim::core
