#include "annsim/core/dataset_transfer.hpp"

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

TEST(DatasetTransfer, PackUnpackRoundTrip) {
  auto w = data::make_sift_like(50, 1, 801);
  for (std::size_t i = 0; i < w.base.size(); ++i) w.base.set_id(i, 900 + i);
  auto bytes = pack_dataset(w.base);
  auto back = unpack_dataset(bytes, w.base.dim());
  ASSERT_EQ(back.size(), w.base.size());
  ASSERT_EQ(back.dim(), w.base.dim());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.id(i), 900 + i);
    for (std::size_t j = 0; j < back.dim(); ++j) {
      EXPECT_EQ(back.row(i)[j], w.base.row(i)[j]);
    }
  }
}

TEST(DatasetTransfer, PackSelectedRows) {
  auto w = data::make_sift_like(20, 1, 802);
  std::vector<std::size_t> rows{3, 17, 5};
  auto bytes = pack_dataset_rows(w.base, rows);
  auto back = unpack_dataset(bytes, w.base.dim());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.id(0), 3u);
  EXPECT_EQ(back.id(1), 17u);
  EXPECT_EQ(back.id(2), 5u);
}

TEST(DatasetTransfer, ConcatenatesMultipleBuffers) {
  auto w = data::make_sift_like(12, 1, 803);
  std::vector<std::size_t> a{0, 1}, b{5}, c{};
  std::vector<std::vector<std::byte>> bufs{
      pack_dataset_rows(w.base, a), {}, pack_dataset_rows(w.base, b),
      pack_dataset_rows(w.base, c)};
  auto back = unpack_datasets(bufs, w.base.dim());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.id(2), 5u);
}

TEST(DatasetTransfer, EmptyPack) {
  data::Dataset d(0, 16);
  auto bytes = pack_dataset(d);
  auto back = unpack_dataset(bytes, 16);
  EXPECT_EQ(back.size(), 0u);
}

TEST(DatasetTransfer, TruncatedBufferThrows) {
  auto w = data::make_sift_like(8, 1, 804);
  auto bytes = pack_dataset(w.base);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)unpack_dataset(bytes, w.base.dim()), Error);
}

}  // namespace
}  // namespace annsim::core
