#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "annsim/core/engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::core {
namespace {

class EnginePersistence : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("annsim_engine_" + std::to_string(::getpid()) + ".idx"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  static EngineConfig config() {
    EngineConfig cfg;
    cfg.n_workers = 8;
    cfg.replication = 2;
    cfg.n_probe = 3;
    cfg.threads_per_worker = 1;
    cfg.hnsw.M = 8;
    cfg.hnsw.ef_construction = 60;
    cfg.partitioner.vantage_candidates = 8;
    cfg.partitioner.vantage_sample = 64;
    return cfg;
  }

  std::string path_;
};

TEST_F(EnginePersistence, SaveLoadRoundTripPreservesResults) {
  auto w = data::make_sift_like(2000, 40, 301);
  DistributedAnnEngine eng(&w.base, config());
  eng.build();
  auto before = eng.search(w.queries, 10);

  eng.save(path_);
  auto loaded = DistributedAnnEngine::load(path_);
  EXPECT_TRUE(loaded.built());
  auto after = loaded.search(w.queries, 10);

  ASSERT_EQ(before.size(), after.size());
  for (std::size_t q = 0; q < before.size(); ++q) {
    EXPECT_EQ(before[q], after[q]) << "query " << q;
  }
}

TEST_F(EnginePersistence, LoadedEngineRetainsConfigAndStats) {
  auto w = data::make_sift_like(1000, 5, 302);
  DistributedAnnEngine eng(&w.base, config());
  eng.build();
  eng.save(path_);

  auto loaded = DistributedAnnEngine::load(path_);
  EXPECT_EQ(loaded.config().n_workers, 8u);
  EXPECT_EQ(loaded.config().replication, 2u);
  EXPECT_EQ(loaded.config().n_probe, 3u);
  EXPECT_EQ(loaded.config().hnsw.M, 8u);
  EXPECT_EQ(loaded.partition_sizes(), eng.partition_sizes());
  EXPECT_DOUBLE_EQ(loaded.build_stats().total_seconds,
                   eng.build_stats().total_seconds);
  EXPECT_EQ(loaded.router().n_partitions(), 8u);
}

TEST_F(EnginePersistence, LoadedEngineWorksWithoutOriginalCorpus) {
  data::KnnResults results;
  data::Dataset queries;
  {
    auto w = data::make_sift_like(1500, 20, 303);
    queries = w.base.slice(0, 20);  // copies, independent of w
    for (std::size_t i = 0; i < queries.size(); ++i) queries.set_id(i, i);
    DistributedAnnEngine eng(&w.base, config());
    eng.build();
    eng.save(path_);
    // w.base is destroyed here; the loaded engine must not need it.
  }
  auto loaded = DistributedAnnEngine::load(path_);
  results = loaded.search(queries, 5);
  ASSERT_EQ(results.size(), 20u);
  // Base points queried against the index find themselves at distance 0.
  for (std::size_t q = 0; q < results.size(); ++q) {
    ASSERT_FALSE(results[q].empty());
    EXPECT_NEAR(results[q][0].dist, 0.f, 1e-3f) << "query " << q;
  }
}

TEST_F(EnginePersistence, SaveUnbuiltThrows) {
  auto w = data::make_sift_like(500, 5, 304);
  DistributedAnnEngine eng(&w.base, config());
  EXPECT_THROW(eng.save(path_), Error);
}

TEST_F(EnginePersistence, LoadMissingFileThrows) {
  EXPECT_THROW((void)DistributedAnnEngine::load(path_ + ".nope"), Error);
}

TEST_F(EnginePersistence, LoadRejectsCorruptFile) {
  auto w = data::make_sift_like(500, 5, 305);
  DistributedAnnEngine eng(&w.base, config());
  eng.build();
  eng.save(path_);
  // Truncate the file: decoding must throw, not crash.
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) / 2);
  EXPECT_THROW((void)DistributedAnnEngine::load(path_), Error);
}

TEST_F(EnginePersistence, BruteForceEngineRoundTrips) {
  auto w = data::make_deep_like(800, 10, 306);
  auto cfg = config();
  cfg.local_index = LocalIndexKind::kBruteForce;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  auto before = eng.search(w.queries, 5);
  eng.save(path_);
  auto loaded = DistributedAnnEngine::load(path_);
  EXPECT_EQ(loaded.config().local_index, LocalIndexKind::kBruteForce);
  auto after = loaded.search(w.queries, 5);
  for (std::size_t q = 0; q < before.size(); ++q) {
    EXPECT_EQ(before[q], after[q]);
  }
}

}  // namespace
}  // namespace annsim::core
