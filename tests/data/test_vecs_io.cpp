#include "annsim/data/vecs_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "annsim/common/rng.hpp"

namespace annsim::data {
namespace {

class VecsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("annsim_vecs_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(VecsIoTest, FvecsRoundTrip) {
  Dataset d(7, 5);
  Rng rng(1);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < d.dim(); ++j) d.row(i)[j] = float(rng.normal());
  }
  save_fvecs(path("a.fvecs"), d);
  Dataset back = load_fvecs(path("a.fvecs"));
  ASSERT_EQ(back.size(), 7u);
  ASSERT_EQ(back.dim(), 5u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < d.dim(); ++j) {
      EXPECT_FLOAT_EQ(back.row(i)[j], d.row(i)[j]);
    }
  }
}

TEST_F(VecsIoTest, FvecsMaxRowsLimitsLoad) {
  Dataset d(10, 3);
  save_fvecs(path("b.fvecs"), d);
  Dataset back = load_fvecs(path("b.fvecs"), 4);
  EXPECT_EQ(back.size(), 4u);
}

TEST_F(VecsIoTest, BvecsRoundTripQuantizes) {
  Dataset d(3, 4);
  d.row(0)[0] = 0.f;
  d.row(0)[1] = 255.f;
  d.row(0)[2] = 300.f;   // clamped to 255
  d.row(0)[3] = -5.f;    // clamped to 0
  d.row(1)[0] = 127.4f;  // rounds to 127
  d.row(1)[1] = 127.6f;  // rounds to 128
  save_bvecs(path("c.bvecs"), d);
  Dataset back = load_bvecs(path("c.bvecs"));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_FLOAT_EQ(back.row(0)[0], 0.f);
  EXPECT_FLOAT_EQ(back.row(0)[1], 255.f);
  EXPECT_FLOAT_EQ(back.row(0)[2], 255.f);
  EXPECT_FLOAT_EQ(back.row(0)[3], 0.f);
  EXPECT_FLOAT_EQ(back.row(1)[0], 127.f);
  EXPECT_FLOAT_EQ(back.row(1)[1], 128.f);
}

TEST_F(VecsIoTest, IvecsRoundTrip) {
  std::vector<std::vector<std::int32_t>> rows{{1, 2, 3}, {}, {42}};
  save_ivecs(path("d.ivecs"), rows);
  auto back = load_ivecs(path("d.ivecs"));
  EXPECT_EQ(back, rows);
}

TEST_F(VecsIoTest, IvecsMaxRows) {
  std::vector<std::vector<std::int32_t>> rows{{1}, {2}, {3}};
  save_ivecs(path("e.ivecs"), rows);
  EXPECT_EQ(load_ivecs(path("e.ivecs"), 2).size(), 2u);
}

TEST_F(VecsIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_fvecs(path("missing.fvecs")), Error);
  EXPECT_THROW((void)load_bvecs(path("missing.bvecs")), Error);
  EXPECT_THROW((void)load_ivecs(path("missing.ivecs")), Error);
}

TEST_F(VecsIoTest, CorruptSizeThrows) {
  // A file whose size is not a whole number of rows.
  Dataset d(2, 3);
  save_fvecs(path("f.fvecs"), d);
  {
    std::ofstream out(path("f.fvecs"), std::ios::binary | std::ios::app);
    out.put('x');
  }
  EXPECT_THROW((void)load_fvecs(path("f.fvecs")), Error);
}

}  // namespace
}  // namespace annsim::data
