#include "annsim/data/recipes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "annsim/simd/distance.hpp"

namespace annsim::data {
namespace {

TEST(Recipes, SiftLikeShapeAndRange) {
  auto w = make_sift_like(2000, 50);
  EXPECT_EQ(w.base.dim(), 128u);
  EXPECT_EQ(w.base.size(), 2000u);
  EXPECT_EQ(w.queries.size(), 50u);
  EXPECT_EQ(w.queries.dim(), 128u);
  // SIFT descriptors: non-negative integral byte range.
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < w.base.dim(); ++j) {
      const float v = w.base.row(i)[j];
      ASSERT_GE(v, 0.f);
      ASSERT_LE(v, 255.f);
      ASSERT_FLOAT_EQ(v, std::round(v));
    }
  }
}

TEST(Recipes, DeepLikeIsUnitNorm) {
  auto w = make_deep_like(1000, 20);
  EXPECT_EQ(w.base.dim(), 96u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(simd::l2_norm(w.base.row(i), 96), 1.f, 1e-4f);
    if (i < w.queries.size()) {
      EXPECT_NEAR(simd::l2_norm(w.queries.row(i), 96), 1.f, 1e-4f);
    }
  }
}

TEST(Recipes, GistLikeHighDim) {
  auto w = make_gist_like(500, 10);
  EXPECT_EQ(w.base.dim(), 960u);
  EXPECT_EQ(w.base.size(), 500u);
}

TEST(Recipes, SynMatchesPaperSetup) {
  auto w = make_syn(4000, 512, 20, 100);
  EXPECT_EQ(w.base.dim(), 512u);
  EXPECT_EQ(w.base.size(), 4000u);
  EXPECT_EQ(w.queries.size(), 100u);
}

TEST(Recipes, DeterministicBySeed) {
  auto a = make_sift_like(500, 10, 1);
  auto b = make_sift_like(500, 10, 1);
  auto c = make_sift_like(500, 10, 2);
  EXPECT_EQ(a.base.row(3)[5], b.base.row(3)[5]);
  bool diff = false;
  for (std::size_t j = 0; j < a.base.dim(); ++j) {
    if (a.base.row(3)[j] != c.base.row(3)[j]) diff = true;
  }
  EXPECT_TRUE(diff);
}

TEST(Recipes, QueriesComeFromSameDistribution) {
  // Mean query-to-nearest-base distance should be comparable to mean
  // base-to-nearest-base distance (same mixture), not an outlier regime.
  auto w = make_deep_like(1000, 30, 5);
  const simd::DistanceComputer dist(simd::Metric::kL2, w.base.dim());
  auto nearest = [&](const float* v, std::size_t skip) {
    float best = std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < w.base.size(); ++i) {
      if (i == skip) continue;
      best = std::min(best, dist(v, w.base.row(i)));
    }
    return best;
  };
  double q_sum = 0, b_sum = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    q_sum += nearest(w.queries.row(i), SIZE_MAX);
    b_sum += nearest(w.base.row(i), i);
  }
  EXPECT_LT(q_sum / 20.0, 3.0 * (b_sum / 20.0));
}

class RecipeByName : public ::testing::TestWithParam<const char*> {};

TEST_P(RecipeByName, LooksUpAndBuilds) {
  auto w = make_by_name(GetParam(), 600, 10);
  EXPECT_EQ(w.base.size(), 600u);
  EXPECT_EQ(w.queries.size(), 10u);
  EXPECT_GT(w.base.dim(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Names, RecipeByName,
                         ::testing::Values("SIFT", "ANN_SIFT1B", "DEEP",
                                           "DEEP1B", "GIST", "ANN_GIST1M",
                                           "SYN_1M", "SYN_10M"));

TEST(Recipes, UnknownNameThrows) {
  EXPECT_THROW((void)make_by_name("NOPE", 100, 10), Error);
}

}  // namespace
}  // namespace annsim::data
