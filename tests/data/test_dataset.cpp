#include "annsim/data/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace annsim::data {
namespace {

Dataset make_counting(std::size_t n, std::size_t dim) {
  Dataset d(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) d.row(i)[j] = float(i * 100 + j);
  }
  return d;
}

TEST(Dataset, ShapeAndStride) {
  Dataset d(10, 13);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.dim(), 13u);
  EXPECT_EQ(d.stride(), 16u);  // padded to 8 floats
  EXPECT_EQ(d.stride() % 8, 0u);
}

TEST(Dataset, RowsAreAligned) {
  Dataset d(5, 16);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.row(i)) % 64, 0u);
  }
}

TEST(Dataset, IdentityIdsByDefault) {
  Dataset d(4, 2);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(d.id(i), GlobalId(i));
}

TEST(Dataset, SetRowValidatesShape) {
  Dataset d(2, 3);
  std::vector<float> bad(2);
  EXPECT_THROW(d.set_row(0, bad), Error);
  std::vector<float> good{1, 2, 3};
  d.set_row(1, good);
  EXPECT_FLOAT_EQ(d.row(1)[2], 3.f);
  EXPECT_THROW(d.set_row(2, good), Error);
}

TEST(Dataset, SubsetPreservesIdsAndValues) {
  Dataset d = make_counting(10, 4);
  d.set_id(7, 777);
  std::vector<std::size_t> rows{7, 2};
  Dataset s = d.subset(rows);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.id(0), 777u);
  EXPECT_EQ(s.id(1), 2u);
  EXPECT_FLOAT_EQ(s.row(0)[1], 701.f);
  EXPECT_FLOAT_EQ(s.row(1)[0], 200.f);
}

TEST(Dataset, SubsetRejectsOutOfRange) {
  Dataset d = make_counting(3, 2);
  std::vector<std::size_t> rows{5};
  EXPECT_THROW((void)d.subset(rows), Error);
}

TEST(Dataset, SliceContiguousRange) {
  Dataset d = make_counting(10, 2);
  Dataset s = d.slice(3, 6);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.id(0), 3u);
  EXPECT_FLOAT_EQ(s.row(2)[0], 500.f);
  EXPECT_THROW((void)d.slice(6, 3), Error);
  EXPECT_THROW((void)d.slice(0, 11), Error);
  EXPECT_EQ(d.slice(4, 4).size(), 0u);
}

TEST(Dataset, AppendConcatenates) {
  Dataset a = make_counting(2, 3);
  Dataset b = make_counting(3, 3);
  b.set_id(0, 99);
  a.append(b);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.id(2), 99u);
  EXPECT_FLOAT_EQ(a.row(4)[2], 202.f);
}

TEST(Dataset, AppendDimMismatchThrows) {
  Dataset a = make_counting(2, 3);
  Dataset b = make_counting(2, 4);
  EXPECT_THROW(a.append(b), Error);
}

TEST(Dataset, AppendToDefaultConstructed) {
  Dataset a;
  Dataset b = make_counting(2, 3);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.dim(), 3u);
}

TEST(Dataset, AppendEmptyIsNoop) {
  Dataset a = make_counting(2, 3);
  Dataset empty;
  a.append(empty);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Dataset, RowSpanMatchesDim) {
  Dataset d = make_counting(2, 5);
  EXPECT_EQ(d.row_span(0).size(), 5u);
  EXPECT_FLOAT_EQ(d.row_span(1)[4], 104.f);
}

TEST(Dataset, PaddingBeyondDimIsZero) {
  Dataset d(1, 3);
  d.row(0)[0] = 1.f;
  // stride is 8; padding floats 3..7 must stay zero for SIMD tails.
  for (std::size_t j = 3; j < d.stride(); ++j) EXPECT_EQ(d.row(0)[j], 0.f);
}

}  // namespace
}  // namespace annsim::data
