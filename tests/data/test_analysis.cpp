#include "annsim/data/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "annsim/common/rng.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::data {
namespace {

/// Synthetic GT rows following r_k = c * k^(1/d) exactly.
KnnResults power_law_gt(double d, std::size_t k, std::size_t n_queries) {
  KnnResults gt(n_queries);
  for (auto& row : gt) {
    for (std::size_t i = 1; i <= k; ++i) {
      row.push_back({float(std::pow(double(i), 1.0 / d)), GlobalId(i)});
    }
  }
  return gt;
}

TEST(IntrinsicDim, RecoversPowerLawExponent) {
  for (double d : {6.0, 12.0, 24.0}) {
    const double est = intrinsic_dimension(power_law_gt(d, 10, 50), 128);
    EXPECT_NEAR(est, d, 0.5) << "d=" << d;
  }
}

TEST(IntrinsicDim, ClampsToAmbient) {
  // Nearly flat profile => enormous raw estimate => clamped to ambient.
  KnnResults gt(10);
  for (auto& row : gt) {
    row = {{1.0f, 1}, {1.0000005f, 2}, {1.000001f, 3}, {1.0000015f, 4},
           {1.000002f, 5}, {1.0000025f, 6}, {1.000003f, 7}, {1.0000035f, 8},
           {1.000004f, 9}, {1.0000045f, 10}};
  }
  EXPECT_DOUBLE_EQ(intrinsic_dimension(gt, 64), 64.0);
}

TEST(IntrinsicDim, DegenerateInputFallsBackToAmbient) {
  EXPECT_DOUBLE_EQ(intrinsic_dimension({}, 96), 96.0);
  KnnResults zero(3);
  for (auto& row : zero) row = {{0.f, 1}, {0.f, 2}};
  EXPECT_DOUBLE_EQ(intrinsic_dimension(zero, 96), 96.0);
}

TEST(IntrinsicDim, RealDescriptorDataIsBelowAmbient) {
  auto w = make_sift_like(4000, 50, 401);
  auto gt = brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  const double d = intrinsic_dimension(gt, 128);
  EXPECT_GE(d, 4.0);
  EXPECT_LT(d, 128.0);  // descriptor manifolds are much thinner than R^128
}

TEST(DensityRadiusScale, ShrinksWithDensityGrowth) {
  // 1000x more points at intrinsic dim 10 => radius shrinks by 1000^(1/10).
  const double s = density_radius_scale(1'000'000, 1'000'000'000, 10.0);
  EXPECT_NEAR(s, std::pow(1e-3, 0.1), 1e-9);
  EXPECT_LT(s, 1.0);
}

TEST(DensityRadiusScale, IdentityAndInverse) {
  EXPECT_DOUBLE_EQ(density_radius_scale(5000, 5000, 12.0), 1.0);
  const double down = density_radius_scale(1000, 8000, 8.0);
  const double up = density_radius_scale(8000, 1000, 8.0);
  EXPECT_NEAR(down * up, 1.0, 1e-12);
}

TEST(DensityRadiusScale, HighIntrinsicDimBarelyMoves) {
  // The curse of dimensionality: density helps little at high d_int.
  const double s = density_radius_scale(8192, 1'000'000, 52.0);
  EXPECT_GT(s, 0.9);
}

TEST(NeighborProfile, ComputesMeansAndContrast) {
  KnnResults gt(2);
  gt[0] = {{1.f, 1}, {2.f, 2}};
  gt[1] = {{3.f, 3}, {4.f, 4}};
  const auto p = neighbor_profile(gt);
  EXPECT_DOUBLE_EQ(p.mean_r1, 2.0);
  EXPECT_DOUBLE_EQ(p.mean_rk, 3.0);
  EXPECT_NEAR(p.contrast, (0.5 + 0.25) / 2, 1e-12);
  EXPECT_EQ(p.k, 2u);
}

TEST(NeighborProfile, EmptyIsZero) {
  const auto p = neighbor_profile({});
  EXPECT_DOUBLE_EQ(p.mean_r1, 0.0);
  EXPECT_EQ(p.k, 0u);
}

TEST(LoadImbalanceCv, BalancedIsZero) {
  EXPECT_DOUBLE_EQ(load_imbalance_cv({5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance_cv({}), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance_cv({0, 0}), 0.0);
}

TEST(LoadImbalanceCv, SkewRaisesCv) {
  const double even = load_imbalance_cv({9, 10, 11, 10});
  const double skew = load_imbalance_cv({1, 1, 1, 37});
  EXPECT_LT(even, 0.1);
  EXPECT_GT(skew, 1.0);
}

}  // namespace
}  // namespace annsim::data
