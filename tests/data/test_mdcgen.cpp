#include "annsim/data/mdcgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "annsim/simd/distance.hpp"

namespace annsim::data {
namespace {

MDCGenParams small_params() {
  MDCGenParams p;
  p.n_points = 5000;
  p.dim = 16;
  p.n_clusters = 10;
  p.n_outliers = 50;
  p.seed = 42;
  return p;
}

TEST(MDCGen, ShapesAndCounts) {
  MDCGenerator gen(small_params());
  auto out = gen.generate();
  EXPECT_EQ(out.points.size(), 5000u);
  EXPECT_EQ(out.points.dim(), 16u);
  EXPECT_EQ(out.labels.size(), 5000u);
  EXPECT_EQ(out.centroids.size(), 10u);
  EXPECT_EQ(out.radii.size(), 10u);
  EXPECT_EQ(out.cluster_sizes.size(), 10u);
}

TEST(MDCGen, OutlierCountMatches) {
  MDCGenerator gen(small_params());
  auto out = gen.generate();
  const auto outliers =
      std::count(out.labels.begin(), out.labels.end(), std::uint32_t(10));
  EXPECT_EQ(outliers, 50);
}

TEST(MDCGen, ClusterSizesSumToNonOutliers) {
  MDCGenerator gen(small_params());
  auto out = gen.generate();
  std::size_t sum = 0;
  for (auto s : out.cluster_sizes) sum += s;
  EXPECT_EQ(sum, 5000u - 50u);
}

TEST(MDCGen, DeterministicForSameSeed) {
  MDCGenerator gen(small_params());
  auto a = gen.generate();
  auto b = gen.generate();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    for (std::size_t j = 0; j < a.points.dim(); ++j) {
      ASSERT_EQ(a.points.row(i)[j], b.points.row(i)[j]);
    }
    ASSERT_EQ(a.labels[i], b.labels[i]);
  }
}

TEST(MDCGen, DifferentSeedsDiffer) {
  auto p = small_params();
  MDCGenerator gen_a(p);
  p.seed = 43;
  MDCGenerator gen_b(p);
  auto a = gen_a.generate();
  auto b = gen_b.generate();
  bool any_diff = false;
  for (std::size_t j = 0; j < a.points.dim(); ++j) {
    if (a.points.row(0)[j] != b.points.row(0)[j]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MDCGen, GaussianClusterMembersNearCentroid) {
  auto p = small_params();
  p.n_outliers = 0;
  p.distributions = {ClusterDistribution::kGaussian};
  MDCGenerator gen(p);
  auto out = gen.generate();
  const simd::DistanceComputer dist(simd::Metric::kL2, p.dim);
  // Nearly all members should sit within ~3 sigma = 1.5 radii.
  std::size_t far = 0, total = 0;
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    const auto c = out.labels[i];
    ASSERT_LT(c, p.n_clusters);
    const float d = dist(out.points.row(i), out.centroids.row(c));
    if (d > 1.6 * out.radii[c]) ++far;
    ++total;
  }
  EXPECT_LT(double(far) / double(total), 0.05);
}

TEST(MDCGen, UniformClusterMembersInsideBox) {
  auto p = small_params();
  p.n_outliers = 0;
  p.distributions = {ClusterDistribution::kUniform};
  MDCGenerator gen(p);
  auto out = gen.generate();
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    const auto c = out.labels[i];
    for (std::size_t j = 0; j < p.dim; ++j) {
      ASSERT_LE(std::fabs(out.points.row(i)[j] - out.centroids.row(c)[j]),
                float(out.radii[c]) + 1e-5f);
    }
  }
}

TEST(MDCGen, MassImbalanceSkewsClusterSizes) {
  auto p = small_params();
  p.mass_imbalance = 0.0;
  auto balanced = MDCGenerator(p).generate();
  p.mass_imbalance = 1.0;
  p.seed = 42;
  auto skewed = MDCGenerator(p).generate();
  auto spread = [](const std::vector<std::size_t>& v) {
    auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return double(*hi) - double(*lo);
  };
  EXPECT_GT(spread(skewed.cluster_sizes), spread(balanced.cluster_sizes));
}

TEST(MDCGen, QueriesStayWithinCompactnessBall) {
  auto p = small_params();
  MDCGenerator gen(p);
  auto out = gen.generate();
  const double compactness = 0.01;
  Dataset q = gen.generate_queries(out, 200, 3, compactness, 7);
  EXPECT_EQ(q.size(), 200u);
  const double span = p.domain_max - p.domain_min;
  for (std::size_t i = 0; i < q.size(); ++i) {
    for (std::size_t j = 0; j < p.dim; ++j) {
      ASSERT_LE(std::fabs(q.row(i)[j] - out.centroids.row(3)[j]),
                compactness * span + 1e-6);
    }
  }
}

TEST(MDCGen, RejectsBadParams) {
  auto p = small_params();
  p.n_clusters = 0;
  EXPECT_THROW(MDCGenerator{p}, Error);
  p = small_params();
  p.compactness = 0.0;
  EXPECT_THROW(MDCGenerator{p}, Error);
  p = small_params();
  p.n_outliers = p.n_points + 1;
  EXPECT_THROW(MDCGenerator{p}, Error);
  p = small_params();
  p.domain_max = p.domain_min;
  EXPECT_THROW(MDCGenerator{p}, Error);
}

TEST(MDCGen, QueryGenValidatesClusterId) {
  MDCGenerator gen(small_params());
  auto out = gen.generate();
  EXPECT_THROW((void)gen.generate_queries(out, 1, 10, 0.01, 1), Error);
}

}  // namespace
}  // namespace annsim::data
