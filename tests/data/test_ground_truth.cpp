#include "annsim/data/ground_truth.hpp"

#include <gtest/gtest.h>

#include "annsim/common/rng.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::data {
namespace {

TEST(BruteForce, FindsExactNeighborsInPlantedSet) {
  // Base points on a line; queries between them with known answers.
  Dataset base(10, 2);
  for (std::size_t i = 0; i < 10; ++i) base.row(i)[0] = float(i);
  Dataset queries(1, 2);
  queries.row(0)[0] = 3.2f;
  auto res = brute_force_knn(base, queries, 3, simd::Metric::kL2);
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].size(), 3u);
  EXPECT_EQ(res[0][0].id, 3u);
  EXPECT_EQ(res[0][1].id, 4u);
  EXPECT_EQ(res[0][2].id, 2u);
  EXPECT_NEAR(res[0][0].dist, 0.2f, 1e-5f);
}

TEST(BruteForce, SortedAscending) {
  auto w = make_sift_like(300, 5);
  auto res = brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  for (const auto& r : res) {
    for (std::size_t i = 1; i < r.size(); ++i) {
      EXPECT_LE(r[i - 1].dist, r[i].dist);
    }
  }
}

TEST(BruteForce, ParallelMatchesSerial) {
  auto w = make_deep_like(400, 20);
  ThreadPool pool(4);
  auto serial = brute_force_knn(w.base, w.queries, 5, simd::Metric::kL2);
  auto parallel = brute_force_knn(w.base, w.queries, 5, simd::Metric::kL2, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    EXPECT_EQ(serial[q], parallel[q]);
  }
}

TEST(BruteForce, UsesGlobalIds) {
  Dataset base(3, 1);
  base.row(1)[0] = 0.1f;
  base.set_id(1, 500);
  Dataset q(1, 1);
  auto res = brute_force_knn(base, q, 1, simd::Metric::kL2);
  EXPECT_EQ(res[0][0].id, 0u);
  q.row(0)[0] = 0.1f;
  res = brute_force_knn(base, q, 1, simd::Metric::kL2);
  EXPECT_EQ(res[0][0].id, 500u);
}

TEST(BruteForce, DimMismatchThrows) {
  Dataset base(5, 3), q(1, 4);
  EXPECT_THROW((void)brute_force_knn(base, q, 1, simd::Metric::kL2), Error);
}

TEST(Recall, PerfectAndZero) {
  std::vector<Neighbor> truth{{1.f, 1}, {2.f, 2}, {3.f, 3}};
  std::vector<Neighbor> perfect = truth;
  EXPECT_DOUBLE_EQ(recall_at_k(perfect, truth, 3), 1.0);
  std::vector<Neighbor> wrong{{9.f, 7}, {9.f, 8}, {9.f, 9}};
  EXPECT_DOUBLE_EQ(recall_at_k(wrong, truth, 3), 0.0);
}

TEST(Recall, PartialOverlap) {
  std::vector<Neighbor> truth{{1.f, 1}, {2.f, 2}, {3.f, 3}, {4.f, 4}};
  std::vector<Neighbor> got{{1.f, 1}, {9.f, 9}, {3.f, 3}, {8.f, 8}};
  EXPECT_DOUBLE_EQ(recall_at_k(got, truth, 4), 0.5);
}

TEST(Recall, DistanceTiesAtBoundaryCount) {
  // id 9 is not in the truth list, but its distance equals the k-th true
  // distance — an equally-correct answer, so it must count.
  std::vector<Neighbor> truth{{1.f, 1}, {2.f, 2}};
  std::vector<Neighbor> got{{1.f, 1}, {2.f, 9}};
  EXPECT_DOUBLE_EQ(recall_at_k(got, truth, 2), 1.0);
}

TEST(Recall, ShortResultPenalized) {
  std::vector<Neighbor> truth{{1.f, 1}, {2.f, 2}};
  std::vector<Neighbor> got{{1.f, 1}};
  EXPECT_DOUBLE_EQ(recall_at_k(got, truth, 2), 0.5);
}

TEST(Recall, MeanAcrossQueries) {
  KnnResults truth{{{1.f, 1}}, {{1.f, 2}}};
  KnnResults got{{{1.f, 1}}, {{5.f, 9}}};
  EXPECT_DOUBLE_EQ(mean_recall(got, truth, 1), 0.5);
}

TEST(Recall, EmptyBatchIsPerfect) {
  EXPECT_DOUBLE_EQ(mean_recall({}, {}, 5), 1.0);
}

}  // namespace
}  // namespace annsim::data
