#include "annsim/kdtree/kd_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::kdtree {
namespace {

TEST(KdTree, ExactOnLowDim) {
  auto w = data::make_syn(1500, 8, 0, 30, 61);
  KdTree tree(&w.base, {});
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto res = tree.search(w.queries.row(q), 10);
    ASSERT_EQ(res.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(res[i].id, gt[q][i].id) << "q=" << q << " i=" << i;
    }
  }
}

TEST(KdTree, ExactOnHighDim) {
  auto w = data::make_sift_like(800, 15, 62);
  KdTree tree(&w.base, {});
  auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto res = tree.search(w.queries.row(q), 5);
    for (std::size_t i = 0; i < res.size(); ++i) {
      EXPECT_EQ(res[i].id, gt[q][i].id);
    }
  }
}

TEST(KdTree, ExactUnderL1) {
  auto w = data::make_syn(600, 6, 0, 15, 63);
  KdTreeParams p;
  p.metric = simd::Metric::kL1;
  KdTree tree(&w.base, p);
  auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL1);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto res = tree.search(w.queries.row(q), 5);
    for (std::size_t i = 0; i < res.size(); ++i) {
      EXPECT_EQ(res[i].id, gt[q][i].id);
    }
  }
}

TEST(KdTree, RejectsNonCoordinateMetric) {
  data::Dataset d(10, 4);
  KdTreeParams p;
  p.metric = simd::Metric::kCosine;
  EXPECT_THROW(KdTree(&d, p), Error);
}

TEST(KdTree, EmptyAndSingle) {
  data::Dataset empty(0, 3);
  KdTree t0(&empty, {});
  float q[3] = {};
  EXPECT_TRUE(t0.search(q, 2).empty());

  data::Dataset one(1, 3);
  KdTree t1(&one, {});
  auto res = t1.search(q, 2);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 0u);
}

TEST(KdTree, PruningCollapsesInLowDimOnly) {
  // The paper's central claim: KD pruning works at low dimension and decays
  // at high dimension. Compare the visited fraction at dim 4 vs dim 128.
  auto low = data::make_syn(2000, 4, 0, 20, 64);
  auto high = data::make_sift_like(2000, 20, 64);
  KdTree t_low(&low.base, {});
  KdTree t_high(&high.base, {});
  auto mean_evals = [](const KdTree& t, const data::Dataset& queries) {
    std::size_t total = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      std::size_t evals = 0;
      (void)t.search(queries.row(q), 10, &evals);
      total += evals;
    }
    return double(total) / double(queries.size());
  };
  const double frac_low = mean_evals(t_low, low.queries) / 2000.0;
  const double frac_high = mean_evals(t_high, high.queries) / 2000.0;
  EXPECT_LT(frac_low, 0.5);
  EXPECT_GT(frac_high, 2.0 * frac_low);
}

// ------------------------------------------------------ PartitionKdTree ---

TEST(PartitionKdTree, BalancedBuild) {
  auto w = data::make_sift_like(1024, 5, 65);
  std::vector<PartitionId> assignment;
  auto tree = PartitionKdTree::build(w.base, {.target_partitions = 8}, &assignment);
  EXPECT_EQ(tree.n_partitions(), 8u);
  std::vector<std::size_t> sizes(8, 0);
  for (auto a : assignment) {
    ASSERT_NE(a, kInvalidPartition);
    ++sizes[a];
  }
  for (auto s : sizes) EXPECT_EQ(s, 128u);
}

TEST(PartitionKdTree, RejectsNonPowerOfTwo) {
  auto w = data::make_sift_like(100, 1, 66);
  EXPECT_THROW(
      (void)PartitionKdTree::build(w.base, {.target_partitions = 3}, nullptr),
      Error);
}

TEST(PartitionKdTree, RouteNearestMatchesAssignment) {
  auto w = data::make_sift_like(1000, 1, 67);
  std::vector<PartitionId> assignment;
  auto tree = PartitionKdTree::build(w.base, {.target_partitions = 8}, &assignment);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < w.base.size(); ++i) {
    if (tree.route_nearest(w.base.row(i)) == assignment[i]) ++agree;
  }
  // SIFT-like coordinates are integers, so ties exactly on a split plane are
  // common; those points may legitimately route to the sibling cell.
  EXPECT_GE(agree, w.base.size() * 97 / 100);
}

TEST(PartitionKdTree, RouteBallCoversTrueNeighbors) {
  auto w = data::make_sift_like(1200, 25, 68);
  std::vector<PartitionId> assignment;
  auto tree = PartitionKdTree::build(w.base, {.target_partitions = 8}, &assignment);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const float radius = gt[q].back().dist * (1.f + 1e-5f);
    auto parts = tree.route_ball(w.queries.row(q), radius);
    std::set<PartitionId> visited(parts.begin(), parts.end());
    for (const auto& nb : gt[q]) {
      EXPECT_TRUE(visited.contains(assignment[nb.id]));
    }
  }
}

TEST(PartitionKdTree, HighDimVisitsMorePartitionsThanLowDim) {
  // The Table III mechanism, stated as a property of the two routers.
  auto low = data::make_syn(2048, 4, 0, 30, 69);
  auto high = data::make_sift_like(2048, 30, 69);
  auto visited_frac = [](const data::Workload& w) {
    std::vector<PartitionId> assignment;
    auto tree =
        PartitionKdTree::build(w.base, {.target_partitions = 16}, &assignment);
    auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
    std::size_t total = 0;
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      total += tree.route_ball(w.queries.row(q), gt[q].back().dist).size();
    }
    return double(total) / double(w.queries.size() * 16);
  };
  const double frac_low = visited_frac(low);
  const double frac_high = visited_frac(high);
  EXPECT_GT(frac_high, frac_low);
  EXPECT_GT(frac_high, 0.5);  // near-total visit at 128-d
}

}  // namespace
}  // namespace annsim::kdtree
