/// Additional KD-baseline coverage: router edge geometry and engine
/// behaviour under unusual shapes.

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/core/kd_engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/kdtree/kd_tree.hpp"

namespace annsim::kdtree {
namespace {

TEST(KdTreeExtras, LeafSizeOneStillExact) {
  auto w = data::make_syn(400, 6, 0, 10, 901);
  KdTreeParams p;
  p.leaf_size = 1;
  KdTree tree(&w.base, p);
  auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto res = tree.search(w.queries.row(q), 5);
    for (std::size_t i = 0; i < res.size(); ++i) {
      EXPECT_EQ(res[i].id, gt[q][i].id);
    }
  }
}

TEST(KdTreeExtras, ConstantAxisData) {
  // All points identical on every axis: splits are degenerate but search
  // must still return k results.
  data::Dataset d(64, 4);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 4; ++j) d.row(i)[j] = 2.f;
  }
  KdTree tree(&d, {});
  float q[4] = {2.f, 2.f, 2.f, 2.f};
  auto res = tree.search(q, 10);
  EXPECT_EQ(res.size(), 10u);
  for (const auto& nb : res) EXPECT_NEAR(nb.dist, 0.f, 1e-6f);
}

TEST(KdTreeExtras, PartitionRouterSingleLeaf) {
  auto w = data::make_sift_like(64, 5, 902);
  std::vector<PartitionId> assignment;
  auto tree = PartitionKdTree::build(w.base, {.target_partitions = 1}, &assignment);
  EXPECT_EQ(tree.n_partitions(), 1u);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(tree.route_nearest(w.queries.row(q)), 0u);
    EXPECT_EQ(tree.route_ball(w.queries.row(q), 1e9f).size(), 1u);
  }
}

TEST(KdEngineExtras, RepeatedSearchesDeterministic) {
  auto w = data::make_sift_like(800, 15, 903);
  core::KdEngineConfig cfg;
  cfg.n_workers = 4;
  core::DistributedKdEngine eng(&w.base, cfg);
  eng.build();
  auto a = eng.search(w.queries, 5);
  auto b = eng.search(w.queries, 5);
  for (std::size_t q = 0; q < a.size(); ++q) EXPECT_EQ(a[q], b[q]);
}

TEST(KdEngineExtras, DoubleBuildThrows) {
  auto w = data::make_sift_like(300, 5, 904);
  core::DistributedKdEngine eng(&w.base, {.n_workers = 4});
  eng.build();
  EXPECT_THROW(eng.build(), Error);
}

TEST(KdEngineExtras, KOne) {
  auto w = data::make_sift_like(500, 10, 905);
  core::DistributedKdEngine eng(&w.base, {.n_workers = 4});
  eng.build();
  auto res = eng.search(w.queries, 1);
  auto gt = data::brute_force_knn(w.base, w.queries, 1, simd::Metric::kL2);
  for (std::size_t q = 0; q < res.size(); ++q) {
    ASSERT_EQ(res[q].size(), 1u);
    EXPECT_EQ(res[q][0].id, gt[q][0].id);
  }
}

}  // namespace
}  // namespace annsim::kdtree
