#include <gtest/gtest.h>

#include <cstring>

#include "annsim/common/error.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::mpi {
namespace {

TEST(MpiWindow, PutThenGet) {
  Runtime rt(3);
  rt.run([&](Comm& c) {
    // Rank 0 exposes 64 bytes; others expose nothing (the paper's setup:
    // only the master passes a buffer to MPI_Win_create).
    Window win = c.create_window(c.rank() == 0 ? 64 : 0);
    c.barrier();
    if (c.rank() == 1) {
      const char msg[] = "rma!";
      win.lock_shared(0);
      win.put(0, 8, std::as_bytes(std::span<const char>(msg, 4)));
      win.unlock(0);
    }
    c.barrier();
    if (c.rank() == 0) {
      win.lock_shared(0);
      auto bytes = win.get(0, 8, 4);
      win.unlock(0);
      EXPECT_EQ(std::memcmp(bytes.data(), "rma!", 4), 0);
    }
  });
}

TEST(MpiWindow, LocalDataViewsOwnBuffer) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    Window win = c.create_window(c.rank() == 0 ? 16 : 0);
    if (c.rank() == 0) {
      EXPECT_EQ(win.local_size(), 16u);
      EXPECT_EQ(win.local_data().size(), 16u);
    } else {
      EXPECT_EQ(win.local_size(), 0u);
    }
  });
}

TEST(MpiWindow, RmaOutsideEpochRejected) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([&](Comm& c) {
    Window win = c.create_window(8);
    win.put(0, 0, {});
  }),
               Error);
}

TEST(MpiWindow, NestedLockRejected) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([&](Comm& c) {
    Window win = c.create_window(8);
    win.lock_shared(0);
    win.lock_shared(0);
  }),
               Error);
}

TEST(MpiWindow, UnlockWithoutLockRejected) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([&](Comm& c) {
    Window win = c.create_window(8);
    win.unlock(0);
  }),
               Error);
}

TEST(MpiWindow, OutOfRangeAccessRejected) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([&](Comm& c) {
    Window win = c.create_window(8);
    win.lock_shared(0);
    (void)win.get(0, 4, 8);
  }),
               Error);
}

TEST(MpiWindow, GetAccumulateReturnsPreviousContents) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    Window win = c.create_window(c.rank() == 0 ? 8 : 0);
    c.barrier();
    if (c.rank() == 1) {
      win.lock_shared(0);
      auto add = [](std::span<std::byte> target, std::span<const std::byte> in) {
        std::uint64_t t, v;
        std::memcpy(&t, target.data(), 8);
        std::memcpy(&v, in.data(), 8);
        t += v;
        std::memcpy(target.data(), &t, 8);
      };
      const std::uint64_t five = 5;
      std::vector<std::byte> prev;
      win.get_accumulate(0, 0, std::as_bytes(std::span<const std::uint64_t>(&five, 1)),
                         add, &prev);
      std::uint64_t old;
      std::memcpy(&old, prev.data(), 8);
      EXPECT_EQ(old, 0u);
      win.get_accumulate(0, 0, std::as_bytes(std::span<const std::uint64_t>(&five, 1)),
                         add, &prev);
      std::memcpy(&old, prev.data(), 8);
      EXPECT_EQ(old, 5u);
      win.unlock(0);
    }
    c.barrier();
    if (c.rank() == 0) {
      win.lock_shared(0);
      auto bytes = win.get(0, 0, 8);
      win.unlock(0);
      std::uint64_t v;
      std::memcpy(&v, bytes.data(), 8);
      EXPECT_EQ(v, 10u);
    }
  });
}

TEST(MpiWindow, ConcurrentAccumulatesAreAtomic) {
  // Every worker increments a shared counter many times through
  // get_accumulate; the final value proves read-modify-write atomicity —
  // the property §IV-C1 relies on.
  const int n = 8;
  const int reps = 500;
  Runtime rt(n);
  rt.run([&](Comm& c) {
    Window win = c.create_window(c.rank() == 0 ? 8 : 0);
    c.barrier();
    if (c.rank() != 0) {
      auto add1 = [](std::span<std::byte> target, std::span<const std::byte>) {
        std::uint64_t t;
        std::memcpy(&t, target.data(), 8);
        ++t;
        std::memcpy(target.data(), &t, 8);
      };
      const std::uint64_t dummy = 0;
      win.lock_shared(0);
      for (int i = 0; i < reps; ++i) {
        win.get_accumulate(0, 0,
                           std::as_bytes(std::span<const std::uint64_t>(&dummy, 1)),
                           add1);
      }
      win.unlock(0);
    }
    c.barrier();
    if (c.rank() == 0) {
      win.lock_shared(0);
      auto bytes = win.get(0, 0, 8);
      win.unlock(0);
      std::uint64_t v;
      std::memcpy(&v, bytes.data(), 8);
      EXPECT_EQ(v, std::uint64_t((n - 1) * reps));
    }
  });
}

TEST(MpiWindow, TrafficCountsRmaOps) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    Window win = c.create_window(c.rank() == 0 ? 32 : 0);
    c.barrier();
    if (c.rank() == 1) {
      win.lock_shared(0);
      std::vector<std::byte> data(16);
      win.put(0, 0, data);
      (void)win.get(0, 0, 16);
      win.unlock(0);
    }
    c.barrier();
  });
  const auto t = rt.total_traffic();
  EXPECT_EQ(t.rma_ops, 2u);
  EXPECT_EQ(t.rma_bytes, 32u);
}

TEST(MpiWindow, MultipleWindowsCoexist) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    Window a = c.create_window(c.rank() == 0 ? 8 : 0);
    Window b = c.create_window(c.rank() == 0 ? 8 : 0);
    c.barrier();
    if (c.rank() == 1) {
      const std::uint64_t va = 1, vb = 2;
      a.lock_shared(0);
      a.put(0, 0, std::as_bytes(std::span<const std::uint64_t>(&va, 1)));
      a.unlock(0);
      b.lock_shared(0);
      b.put(0, 0, std::as_bytes(std::span<const std::uint64_t>(&vb, 1)));
      b.unlock(0);
    }
    c.barrier();
    if (c.rank() == 0) {
      std::uint64_t va, vb;
      a.lock_shared(0);
      auto ba = a.get(0, 0, 8);
      a.unlock(0);
      b.lock_shared(0);
      auto bb = b.get(0, 0, 8);
      b.unlock(0);
      std::memcpy(&va, ba.data(), 8);
      std::memcpy(&vb, bb.data(), 8);
      EXPECT_EQ(va, 1u);
      EXPECT_EQ(vb, 2u);
    }
  });
}

}  // namespace
}  // namespace annsim::mpi
