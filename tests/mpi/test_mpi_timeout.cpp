/// Bounded-wait primitives: Request::wait_for and Comm::recv_for. These are
/// what the failure-detecting master leans on — a timed-out wait must leave
/// the posted receive intact (or cancellable) and must never steal a message
/// that arrives after the caller gave up.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "annsim/mpi/mpi.hpp"

namespace annsim::mpi {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string string_of(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(MpiTimeout, RecvForReturnsMessageWhenAlreadyQueued) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, bytes_of("hello"));
      c.barrier();
    } else {
      c.barrier();
      auto m = c.recv_for(0, 7, 100ms);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->source, 0);
      EXPECT_EQ(m->tag, 7);
      EXPECT_EQ(string_of(m->payload), "hello");
    }
  });
}

TEST(MpiTimeout, RecvForReturnsMessageArrivingMidWait) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::this_thread::sleep_for(5ms);
      c.send(1, 7, bytes_of("late"));
    } else {
      auto m = c.recv_for(0, 7, 2s);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(string_of(m->payload), "late");
    }
  });
}

TEST(MpiTimeout, RecvForTimesOutOnSilentPeer) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 1) {
      const auto t0 = std::chrono::steady_clock::now();
      auto m = c.recv_for(0, 7, 2ms);
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      EXPECT_FALSE(m.has_value());
      EXPECT_GE(elapsed, 2ms);
    }
    c.barrier();  // rank 0 stays silent on tag 7 but joins the barrier
  });
}

TEST(MpiTimeout, TimedOutRecvForDoesNotStealLaterMessage) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();  // wait until rank 1's recv_for has given up
      c.send(1, 7, bytes_of("after-timeout"));
    } else {
      auto m = c.recv_for(0, 7, 1ms);
      EXPECT_FALSE(m.has_value());
      c.barrier();
      // The cancelled receive must not have consumed the later message.
      auto direct = c.recv(0, 7);
      EXPECT_EQ(string_of(direct.payload), "after-timeout");
    }
  });
}

TEST(MpiTimeout, WildcardRecvForMatchesAnySource) {
  Runtime rt(3);
  rt.run([&](Comm& c) {
    if (c.rank() != 0) {
      c.send(0, 9, bytes_of("w"));
    } else {
      for (int i = 0; i < 2; ++i) {
        auto m = c.recv_for(kAnySource, 9, 2s);
        ASSERT_TRUE(m.has_value());
        EXPECT_NE(m->source, 0);
      }
    }
  });
}

TEST(MpiTimeout, WaitForTrueOnCompletionFalseOnTimeout) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();  // phase 1: stay silent
      c.send(1, 5, bytes_of("finally"));
    } else {
      Request r = c.irecv(0, 5);
      EXPECT_FALSE(r.wait_for(1ms));  // nothing sent yet
      c.barrier();
      // The timed-out request stays posted: a second wait can succeed.
      EXPECT_TRUE(r.wait_for(2s));
      auto m = r.take();
      EXPECT_EQ(string_of(m.payload), "finally");
    }
  });
}

TEST(MpiTimeout, TimedOutRequestCanBeCancelled) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 1) {
      Request r = c.irecv(0, 5);
      EXPECT_FALSE(r.wait_for(1ms));
      EXPECT_TRUE(r.cancel());
    }
    c.barrier();
  });
}

TEST(MpiTimeout, WaitForZeroTimeoutActsAsTest) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 3, bytes_of("x"));
      c.barrier();
    } else {
      c.barrier();
      Request r = c.irecv(0, 3);
      EXPECT_TRUE(r.wait_for(0us));  // already deliverable
      (void)r.take();
    }
  });
}

TEST(MpiTimeout, WildcardCancelRaceNeverHangsOrDuplicates) {
  // Stress the deliver/cancel race: rank 0 posts wildcard receives and
  // cancels them on timeout while two senders blast messages. Every message
  // must end up either taken by a successful wait or still queued — never
  // lost in a cancelled request, never delivered twice.
  constexpr int kPerSender = 200;
  Runtime rt(3);
  std::atomic<int> taken{0};
  rt.run([&](Comm& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < kPerSender; ++i) c.send(0, 1, bytes_of("s"));
      c.barrier();
    } else {
      int got = 0;
      while (got < 2 * kPerSender) {
        Request r = c.irecv(kAnySource, 1);
        if (r.wait_for(50us)) {
          (void)r.take();
          ++got;
        } else if (!r.cancel()) {
          // Completed between timeout and cancel: the message is ours.
          (void)r.take();
          ++got;
        }
      }
      taken.store(got);
      c.barrier();
      EXPECT_FALSE(c.iprobe(kAnySource, 1));  // nothing stranded
    }
  });
  EXPECT_EQ(taken.load(), 2 * kPerSender);
}

}  // namespace
}  // namespace annsim::mpi
