#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::mpi {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string string_of(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(MpiP2p, SendRecvDeliversPayload) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 5, bytes_of("hello"));
    } else {
      Message m = c.recv(0, 5);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 5);
      EXPECT_EQ(string_of(m.payload), "hello");
    }
  });
}

TEST(MpiP2p, SelfSendWorks) {
  Runtime rt(1);
  rt.run([&](Comm& c) {
    c.send(0, 1, bytes_of("self"));
    Message m = c.recv(0, 1);
    EXPECT_EQ(string_of(m.payload), "self");
  });
}

TEST(MpiP2p, FifoOrderPerSender) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        BinaryWriter w;
        w.write(i);
        c.send(1, 7, w.bytes());
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        Message m = c.recv(0, 7);
        BinaryReader r(m.payload);
        EXPECT_EQ(r.read<int>(), i);
      }
    }
  });
}

TEST(MpiP2p, TagMatchingSelectsMessages) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, bytes_of("one"));
      c.send(1, 2, bytes_of("two"));
    } else {
      // Receive out of send order, by tag.
      EXPECT_EQ(string_of(c.recv(0, 2).payload), "two");
      EXPECT_EQ(string_of(c.recv(0, 1).payload), "one");
    }
  });
}

TEST(MpiP2p, AnySourceAnyTagWildcards) {
  Runtime rt(3);
  rt.run([&](Comm& c) {
    if (c.rank() != 0) {
      c.send(0, c.rank() * 10, bytes_of("x"));
    } else {
      for (int i = 0; i < 2; ++i) {
        Message m = c.recv(kAnySource, kAnyTag);
        EXPECT_EQ(m.tag, m.source * 10);
      }
    }
  });
}

TEST(MpiP2p, NegativeUserTagRejected) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([&](Comm& c) { c.send(0, -5, {}); }), Error);
}

TEST(MpiP2p, BadDestinationRejected) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([&](Comm& c) { c.send(3, 1, {}); }), Error);
}

TEST(MpiP2p, IsendCompletesImmediately) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      Request r = c.isend(1, 3, bytes_of("a"));
      EXPECT_TRUE(r.test());
      r.wait();  // must not block
    } else {
      (void)c.recv(0, 3);
    }
  });
}

TEST(MpiP2p, IrecvTestPollsUntilArrival) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      // Deterministic handshake instead of a timing-based sleep: rank 1
      // only signals ready after posting its irecv, so the payload always
      // arrives at an already-posted (and polling) receive.
      (void)c.recv(1, 8);
      c.send(1, 9, bytes_of("late"));
    } else {
      Request r = c.irecv(0, 9);
      c.send(0, 8, {});
      // MPI_Test-style polling loop (Algorithm 4's idiom).
      while (!r.test()) std::this_thread::yield();
      Message m = r.take();
      EXPECT_EQ(string_of(m.payload), "late");
    }
  });
}

TEST(MpiP2p, IrecvMatchesAlreadyQueuedMessage) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 4, bytes_of("early"));
      c.barrier();
    } else {
      c.barrier();  // message is queued before the irecv is posted
      Request r = c.irecv(0, 4);
      EXPECT_TRUE(r.test());
      EXPECT_EQ(string_of(r.take().payload), "early");
    }
  });
}

TEST(MpiP2p, CancelPendingRecv) {
  Runtime rt(1);
  rt.run([&](Comm& c) {
    Request r = c.irecv(kAnySource, 8);
    EXPECT_FALSE(r.test());
    EXPECT_TRUE(r.cancel());
  });
}

TEST(MpiP2p, CancelCompletedRecvFails) {
  Runtime rt(1);
  rt.run([&](Comm& c) {
    c.send(0, 2, bytes_of("z"));
    Request r = c.irecv(0, 2);
    EXPECT_TRUE(r.test());
    EXPECT_FALSE(r.cancel());
    EXPECT_EQ(string_of(r.take().payload), "z");
  });
}

TEST(MpiP2p, CancelledRecvDoesNotStealMessage) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();
      c.send(1, 6, bytes_of("keep"));
    } else {
      Request r = c.irecv(0, 6);
      EXPECT_TRUE(r.cancel());
      c.barrier();
      // The message must still be deliverable to a fresh recv.
      EXPECT_EQ(string_of(c.recv(0, 6).payload), "keep");
    }
  });
}

TEST(MpiP2p, IprobeSeesQueuedMessageOnly) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.iprobe(kAnySource, kAnyTag));
      c.barrier();
      c.send(1, 11, bytes_of("p"));
      c.barrier();
    } else {
      c.barrier();
      c.barrier();
      EXPECT_TRUE(c.iprobe(0, 11));
      EXPECT_FALSE(c.iprobe(0, 12));
      (void)c.recv(0, 11);
      EXPECT_FALSE(c.iprobe(0, 11));
    }
  });
}

TEST(MpiP2p, ManyToOneStress) {
  const int n = 8;
  Runtime rt(n);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::uint64_t sum = 0;
      for (int i = 0; i < (n - 1) * 20; ++i) {
        Message m = c.recv(kAnySource, 1);
        BinaryReader r(m.payload);
        sum += r.read<std::uint64_t>();
      }
      EXPECT_EQ(sum, std::uint64_t(20 * (1 + 2 + 3 + 4 + 5 + 6 + 7)));
    } else {
      for (int i = 0; i < 20; ++i) {
        BinaryWriter w;
        w.write(std::uint64_t(c.rank()));
        c.send(0, 1, w.bytes());
      }
    }
  });
}

TEST(MpiP2p, ConcurrentReceiverThreadsShareOneRank) {
  // Algorithm 4 posts irecvs from several OpenMP-style threads of the same
  // worker process; every message must be consumed exactly once.
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 40; ++i) c.send(1, 1, bytes_of("m"));
    } else {
      std::atomic<int> got{0};
      auto consume = [&] {
        for (;;) {
          if (got.load() >= 40) return;
          Request r = c.irecv(0, 1);
          while (!r.test()) {
            if (got.load() >= 40) {
              if (r.cancel()) return;
              break;
            }
            std::this_thread::yield();
          }
          (void)r.take();
          got.fetch_add(1);
        }
      };
      std::thread t1(consume), t2(consume);
      t1.join();
      t2.join();
      EXPECT_EQ(got.load(), 40);
    }
  });
}

TEST(MpiP2p, ExceptionInRankPropagates) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([](Comm&) { throw Error("rank boom"); }), Error);
}

TEST(MpiP2p, TrafficCountersTrackMessages) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, bytes_of("abcd"));
    } else {
      (void)c.recv(0, 1);
    }
  });
  const auto t = rt.total_traffic();
  EXPECT_EQ(t.p2p_messages, 1u);
  EXPECT_EQ(t.p2p_bytes, 4u);
  EXPECT_EQ(rt.per_rank_traffic().size(), 2u);
  EXPECT_EQ(rt.per_rank_traffic()[0].p2p_messages, 1u);
  EXPECT_EQ(rt.per_rank_traffic()[1].p2p_messages, 0u);
}

TEST(MpiP2p, RuntimeRejectsZeroRanks) { EXPECT_THROW(Runtime(0), Error); }

}  // namespace
}  // namespace annsim::mpi
