#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "annsim/common/error.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::mpi {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string string_of(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(MpiCollectives, BarrierSynchronizes) {
  const int n = 6;
  Runtime rt(n);
  std::atomic<int> before{0}, after{0};
  rt.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    // Every rank must have passed `before` by now.
    EXPECT_EQ(before.load(), n);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), n);
}

TEST(MpiCollectives, RepeatedBarriersDoNotInterleave) {
  Runtime rt(4);
  rt.run([&](Comm& c) {
    for (int i = 0; i < 25; ++i) c.barrier();
  });
  SUCCEED();
}

TEST(MpiCollectives, BcastDeliversRootBuffer) {
  Runtime rt(5);
  rt.run([&](Comm& c) {
    auto payload = c.rank() == 2 ? bytes_of("from-two") : bytes_of("junk");
    auto out = c.bcast(payload, 2);
    EXPECT_EQ(string_of(out), "from-two");
  });
}

TEST(MpiCollectives, BcastValueTyped) {
  Runtime rt(4);
  rt.run([&](Comm& c) {
    const double v = c.bcast_value(c.rank() == 0 ? 3.5 : -1.0, 0);
    EXPECT_DOUBLE_EQ(v, 3.5);
  });
}

TEST(MpiCollectives, GatherCollectsAtRootOnly) {
  Runtime rt(4);
  rt.run([&](Comm& c) {
    BinaryWriter w;
    w.write(c.rank() * 11);
    auto out = c.gather(w.bytes(), 1);
    if (c.rank() == 1) {
      ASSERT_EQ(out.size(), 4u);
      for (int i = 0; i < 4; ++i) {
        BinaryReader r(out[std::size_t(i)]);
        EXPECT_EQ(r.read<int>(), i * 11);
      }
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(MpiCollectives, GatherValuesTyped) {
  Runtime rt(3);
  rt.run([&](Comm& c) {
    auto vals = c.gather_values(std::uint64_t(c.rank() + 1), 0);
    if (c.rank() == 0) {
      EXPECT_EQ(vals, (std::vector<std::uint64_t>{1, 2, 3}));
    }
  });
}

TEST(MpiCollectives, ScatterDistributesPerRankBuffers) {
  Runtime rt(3);
  rt.run([&](Comm& c) {
    std::vector<std::vector<std::byte>> bufs;
    if (c.rank() == 0) {
      bufs = {bytes_of("r0"), bytes_of("r1"), bytes_of("r2")};
    }
    auto mine = c.scatter(bufs, 0);
    EXPECT_EQ(string_of(mine), "r" + std::to_string(c.rank()));
  });
}

TEST(MpiCollectives, ScatterValidatesBufferCount) {
  // Single-rank runtime: a throwing rank with live peers would deadlock the
  // collective (as it would in real MPI).
  Runtime rt(1);
  EXPECT_THROW(rt.run([&](Comm& c) {
    std::vector<std::vector<std::byte>> bufs(3);
    (void)c.scatter(bufs, 0);
  }),
               Error);
}

TEST(MpiCollectives, AlltoallvPersonalizedExchange) {
  const int n = 5;
  Runtime rt(n);
  rt.run([&](Comm& c) {
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      BinaryWriter w;
      w.write(c.rank() * 100 + d);  // "from rank, for dest"
      send[std::size_t(d)] = w.take();
    }
    auto recv = c.alltoallv(send);
    ASSERT_EQ(recv.size(), std::size_t(n));
    for (int s = 0; s < n; ++s) {
      BinaryReader r(recv[std::size_t(s)]);
      EXPECT_EQ(r.read<int>(), s * 100 + c.rank());
    }
  });
}

TEST(MpiCollectives, AlltoallvVariableSizes) {
  Runtime rt(3);
  rt.run([&](Comm& c) {
    std::vector<std::vector<std::byte>> send(3);
    // Rank r sends r+1 copies of 'x' to each destination d weighted by d.
    for (int d = 0; d < 3; ++d) {
      send[std::size_t(d)] =
          bytes_of(std::string(std::size_t((c.rank() + 1) * d), 'x'));
    }
    auto recv = c.alltoallv(send);
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(recv[std::size_t(s)].size(),
                std::size_t((s + 1) * c.rank()));
    }
  });
}

TEST(MpiCollectives, AllreduceSumAndMax) {
  Runtime rt(6);
  rt.run([&](Comm& c) {
    const auto sum = c.allreduce(std::uint64_t(c.rank() + 1),
                                 [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, 21u);
    const auto mx = c.allreduce(double(c.rank()),
                                [](double a, double b) { return std::max(a, b); });
    EXPECT_DOUBLE_EQ(mx, 5.0);
  });
}

TEST(MpiCollectives, SplitByParity) {
  Runtime rt(6);
  rt.run([&](Comm& c) {
    Comm sub = c.split(c.rank() % 2);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // The new communicator is fully functional.
    const auto sum = sub.allreduce(std::uint64_t(c.rank()),
                                   [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, c.rank() % 2 == 0 ? 6u : 9u);  // 0+2+4 or 1+3+5
  });
}

TEST(MpiCollectives, SplitIsolatesTraffic) {
  Runtime rt(4);
  rt.run([&](Comm& c) {
    Comm sub = c.split(c.rank() / 2);  // {0,1} and {2,3}
    // Same local ranks and tags in both halves must not cross-deliver.
    if (sub.rank() == 0) {
      BinaryWriter w;
      w.write(c.rank());
      sub.send(1, 1, w.bytes());
    } else {
      Message m = sub.recv(0, 1);
      BinaryReader r(m.payload);
      EXPECT_EQ(r.read<int>(), c.rank() < 2 ? 0 : 2);
    }
  });
}

TEST(MpiCollectives, RecursiveSplitToSingletons) {
  // The construction algorithm halves the communicator log2(P) times.
  Runtime rt(8);
  rt.run([&](Comm& c) {
    Comm cur = c.split(0);
    while (cur.size() > 1) {
      const int half = cur.size() / 2;
      cur = cur.split(cur.rank() < half ? 0 : 1);
    }
    EXPECT_EQ(cur.size(), 1);
    EXPECT_EQ(cur.rank(), 0);
  });
}

TEST(MpiCollectives, SplitSingleColorKeepsOrder) {
  Runtime rt(5);
  rt.run([&](Comm& c) {
    Comm sub = c.split(42);
    EXPECT_EQ(sub.size(), 5);
    EXPECT_EQ(sub.rank(), c.rank());
  });
}

}  // namespace
}  // namespace annsim::mpi
