#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/mpi/fault.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::mpi {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

TEST(MpiFault, InertPlanInstallsNoInjector) {
  Runtime rt(2, FaultPlan{});
  EXPECT_EQ(rt.fault_injector(), nullptr);
  EXPECT_TRUE(rt.failed_ranks().empty());
  rt.run([&](Comm& c) {
    if (c.rank() == 0) c.send(1, 1, bytes_of("x"));
    else (void)c.recv(0, 1);
  });
}

TEST(MpiFault, KillAfterOpsSilencesLaterSends) {
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/0, /*after_ops=*/3, kNeverFires});
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, 1, bytes_of("m"));
      c.barrier();  // collectives survive the kill
    } else {
      c.barrier();
      // Exactly the first three sends got through.
      for (int i = 0; i < 3; ++i) (void)c.recv(0, 1);
      EXPECT_FALSE(c.iprobe(0, 1));
    }
  });
  EXPECT_EQ(rt.failed_ranks(), std::vector<int>{0});
  ASSERT_NE(rt.fault_injector(), nullptr);
  EXPECT_TRUE(rt.fault_injector()->is_dead(0));
  EXPECT_FALSE(rt.fault_injector()->is_dead(1));
}

TEST(MpiFault, KillAtLogicalStep) {
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, kNeverFires, /*at_step=*/2});
  Runtime rt(2, plan);
  FaultInjector* inj = rt.fault_injector();
  ASSERT_NE(inj, nullptr);

  rt.run([&](Comm& c) {
    if (c.rank() == 1) c.send(0, 1, bytes_of("before"));
    else (void)c.recv(1, 1);
  });
  EXPECT_TRUE(rt.failed_ranks().empty());

  inj->advance_step();
  inj->advance_step();
  EXPECT_EQ(inj->step(), 2u);

  // Injector state persists across run() calls: rank 1 is now past its step.
  rt.run([&](Comm& c) {
    if (c.rank() == 1) {
      c.send(0, 1, bytes_of("after"));
      c.barrier();
    } else {
      c.barrier();
      EXPECT_FALSE(c.iprobe(1, 1));
    }
  });
  EXPECT_EQ(rt.failed_ranks(), std::vector<int>{1});
}

TEST(MpiFault, DropProbabilityOneEatsEveryUserSend) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_probability = 1.0;
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) c.send(1, 1, bytes_of("gone"));
      c.barrier();  // internal tags are never dropped
    } else {
      c.barrier();
      EXPECT_FALSE(c.iprobe(0, 1));
    }
  });
  // Dropping is not death: no rank's kill rule fired.
  EXPECT_TRUE(rt.failed_ranks().empty());
  // The sender still paid for the attempted messages.
  EXPECT_EQ(rt.per_rank_traffic()[0].p2p_messages, 5u);
}

TEST(MpiFault, DropDecisionsAreSeedDeterministic) {
  // The op-indexed hash must give the same verdicts run after run.
  auto delivered_count = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_probability = 0.5;
    Runtime rt(2, plan);
    int got = 0;
    rt.run([&](Comm& c) {
      if (c.rank() == 0) {
        for (int i = 0; i < 64; ++i) c.send(1, 1, bytes_of("d"));
        c.barrier();
      } else {
        c.barrier();
        while (c.iprobe(0, 1)) {
          (void)c.recv(0, 1);
          ++got;
        }
      }
    });
    return got;
  };
  const int a = delivered_count(7);
  EXPECT_EQ(a, delivered_count(7));
  EXPECT_GT(a, 0);
  EXPECT_LT(a, 64);
}

TEST(MpiFault, DelayStallsTheSenderButDelivers) {
  FaultPlan plan;
  plan.delay_probability = 1.0;
  plan.delay = std::chrono::microseconds(2000);
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < 5; ++i) c.send(1, 1, bytes_of("slow"));
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      EXPECT_GE(elapsed, std::chrono::microseconds(5 * 2000));
    } else {
      for (int i = 0; i < 5; ++i) (void)c.recv(0, 1);
    }
  });
}

TEST(MpiFault, RmaMutationsFromDeadRankVanish) {
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, /*after_ops=*/0, kNeverFires});
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    Window win = c.create_window(c.rank() == 0 ? 8 : 0);
    c.barrier();
    if (c.rank() == 1) {
      win.lock_shared(0);
      const std::uint64_t v = 0xdeadbeef;
      win.put(0, 0, std::as_bytes(std::span<const std::uint64_t, 1>(&v, 1)));
      // Reads are never faulted: the dead rank still sees the target.
      auto back = win.get(0, 0, 8);
      std::uint64_t read_back = 1;
      std::memcpy(&read_back, back.data(), 8);
      EXPECT_EQ(read_back, 0u);  // its own put was swallowed
      win.unlock(0);
    }
    c.barrier();
    if (c.rank() == 0) {
      std::uint64_t mine = 1;
      std::memcpy(&mine, win.local_data().data(), 8);
      EXPECT_EQ(mine, 0u);
    }
  });
  EXPECT_EQ(rt.failed_ranks(), std::vector<int>{1});
}

TEST(MpiFault, ReliableTagsBypassDropButNotDeath) {
  // Control-plane tags survive the drop roll like internal collective
  // traffic, but reliable is not death-proof: a dead rank is silent on
  // every user tag (see fault.hpp).
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_probability = 1.0;  // eats every gated send
  plan.reliable_tags.push_back(7);
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, bytes_of("data"));      // gated: dropped
      c.send(1, 7, bytes_of("control"));   // reliable: delivered (alive)
      c.barrier();
    } else {
      c.barrier();
      EXPECT_FALSE(c.iprobe(0, 1));
      Message m = c.recv(0, 7);
      EXPECT_EQ(m.payload.size(), 7u);
    }
  });
  EXPECT_TRUE(rt.failed_ranks().empty());
}

TEST(MpiFault, DeadRankIsSilentOnReliableTags) {
  // A crashed process loses its control plane along with everything else:
  // reliable tags model a lossless fabric, not a worker that outlives death.
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/0, /*after_ops=*/0, kNeverFires});
  plan.reliable_tags.push_back(7);
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, bytes_of("control"));  // reliable, but the sender is dead
      c.barrier();
    } else {
      c.barrier();
      EXPECT_FALSE(c.iprobe(0, 7));
    }
  });
  EXPECT_EQ(rt.failed_ranks(), std::vector<int>{0});
}

TEST(MpiFault, ReliableSendsDoNotConsumeTheOpBudget) {
  // after_ops counts gated ops only: interleaved reliable sends must not
  // advance a rank toward its kill trigger. Once the gated budget is spent
  // the rank is dead and its reliable sends go silent too.
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/0, /*after_ops=*/2, kNeverFires});
  plan.reliable_tags.push_back(9);
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        c.send(1, 9, bytes_of("r"));  // reliable: free while alive
        c.send(1, 1, bytes_of("g"));  // gated: consumes the budget
      }
      c.barrier();
    } else {
      c.barrier();
      int gated = 0, reliable = 0;
      while (c.iprobe(0, 1)) { (void)c.recv(0, 1); ++gated; }
      while (c.iprobe(0, 9)) { (void)c.recv(0, 9); ++reliable; }
      EXPECT_EQ(gated, 2);     // first two gated ops, then dead
      EXPECT_EQ(reliable, 2);  // control flows only while the rank lives
    }
  });
  EXPECT_EQ(rt.failed_ranks(), std::vector<int>{0});
}

TEST(MpiFault, ReviveRestoresDeliveryAndDisarmsTheKill) {
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/0, /*after_ops=*/0, kNeverFires});
  auto inj = std::make_shared<FaultInjector>(plan, 2);
  {
    Runtime rt(2, inj);
    rt.run([&](Comm& c) {
      if (c.rank() == 0) {
        c.send(1, 1, bytes_of("lost"));
        c.barrier();
      } else {
        c.barrier();
        EXPECT_FALSE(c.iprobe(0, 1));
      }
    });
  }
  EXPECT_TRUE(inj->is_dead(0));

  inj->revive(0);
  EXPECT_FALSE(inj->is_dead(0));

  // The kill rule is disarmed, not re-armed: every post-revive send lands.
  Runtime rt(2, inj);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) c.send(1, 1, bytes_of("back"));
      c.barrier();
    } else {
      c.barrier();
      for (int i = 0; i < 8; ++i) (void)c.recv(0, 1);
      EXPECT_FALSE(c.iprobe(0, 1));
    }
  });
  EXPECT_TRUE(rt.failed_ranks().empty());
}

TEST(MpiFault, SharedInjectorPersistsDeathAcrossRuntimes) {
  // An engine-owned injector carries death flags between search() batches:
  // a rank killed in one Runtime stays dead in the next one.
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/0, /*after_ops=*/1, kNeverFires});
  auto inj = std::make_shared<FaultInjector>(plan, 2);
  {
    Runtime rt(2, inj);
    rt.run([&](Comm& c) {
      if (c.rank() == 0) {
        c.send(1, 1, bytes_of("a"));  // delivered, spends the budget
        c.send(1, 1, bytes_of("b"));  // kill fires
        c.barrier();
      } else {
        c.barrier();
        (void)c.recv(0, 1);
        EXPECT_FALSE(c.iprobe(0, 1));
      }
    });
  }
  EXPECT_TRUE(inj->is_dead(0));

  Runtime rt(2, inj);
  EXPECT_EQ(rt.fault_injector(), inj.get());
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, bytes_of("still-dead"));
      c.barrier();
    } else {
      c.barrier();
      EXPECT_FALSE(c.iprobe(0, 1));
    }
  });
  EXPECT_EQ(rt.failed_ranks(), std::vector<int>{0});
}

TEST(MpiFault, DuplicateDeliveryArrivesTwiceButControlPlaneStaysExactlyOnce) {
  // duplicate_probability == 1 retransmits every best-effort op: the same
  // bytes land twice, back to back. Reliable tags ride the exactly-once
  // control plane and are exempt from the roll.
  FaultPlan plan;
  plan.seed = 21;
  plan.duplicate_probability = 1.0;
  plan.reliable_tags.push_back(7);
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        c.send(1, 1, bytes_of("m" + std::to_string(i)));
      }
      c.send(1, 7, bytes_of("control"));
      c.barrier();
    } else {
      c.barrier();
      std::vector<std::string> got;
      while (c.iprobe(0, 1)) {
        Message m = c.recv(0, 1);
        got.emplace_back(reinterpret_cast<const char*>(m.payload.data()),
                         m.payload.size());
      }
      // Each send delivered twice, retransmission adjacent to the original
      // and bit-identical to it.
      const std::vector<std::string> want = {"m0", "m0", "m1", "m1",
                                             "m2", "m2"};
      EXPECT_EQ(got, want);
      int control = 0;
      while (c.iprobe(0, 7)) { (void)c.recv(0, 7); ++control; }
      EXPECT_EQ(control, 1);
    }
  });
  EXPECT_TRUE(rt.failed_ranks().empty());
  // Duplication is fabric-side: the sender paid for three attempts, not six.
  EXPECT_EQ(rt.per_rank_traffic()[0].p2p_messages, 4u);
}

TEST(MpiFault, ReorderDeliveryOvertakesEverythingQueuedAhead) {
  // reorder_probability == 1 makes every message jump the receiver's queue,
  // so a backlog drains in reverse send order. A recv already pending sees
  // the message immediately either way (nothing to overtake).
  FaultPlan plan;
  plan.seed = 22;
  plan.reorder_probability = 1.0;
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        c.send(1, 1, bytes_of("m" + std::to_string(i)));
      }
      c.barrier();
    } else {
      c.barrier();  // all three are queued before the first recv posts
      std::vector<std::string> got;
      while (c.iprobe(0, 1)) {
        Message m = c.recv(0, 1);
        got.emplace_back(reinterpret_cast<const char*>(m.payload.data()),
                         m.payload.size());
      }
      const std::vector<std::string> want = {"m2", "m1", "m0"};
      EXPECT_EQ(got, want);
    }
  });
  EXPECT_TRUE(rt.failed_ranks().empty());
}

TEST(MpiFault, PlanValidationRejectsBadFields) {
  {
    FaultPlan p;
    p.drop_probability = 1.5;
    EXPECT_THROW(FaultInjector(p, 2), Error);
  }
  {
    FaultPlan p;
    p.delay_probability = -0.1;
    EXPECT_THROW(FaultInjector(p, 2), Error);
  }
  {
    FaultPlan p;
    p.duplicate_probability = 1.5;
    EXPECT_THROW(FaultInjector(p, 2), Error);
  }
  {
    FaultPlan p;
    p.reorder_probability = -0.5;
    EXPECT_THROW(FaultInjector(p, 2), Error);
  }
  {
    FaultPlan p;
    p.kills.push_back({/*rank=*/5, 0, kNeverFires});
    EXPECT_THROW(FaultInjector(p, 2), Error);
  }
  {
    FaultPlan p;
    p.reliable_tags.push_back(-2);  // internal tags cannot be declared
    EXPECT_THROW(FaultInjector(p, 2), Error);
  }
}

TEST(MpiFault, ThreadTeamRacesOnOneRankKillExactlyOnce) {
  // A killed worker's whole thread team funnels through allow_op; the op
  // budget must be consumed exactly once per send regardless of interleaving.
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/0, /*after_ops=*/100, kNeverFires});
  Runtime rt(2, plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::thread> team;
      for (int t = 0; t < 4; ++t) {
        team.emplace_back([&] {
          for (int i = 0; i < 50; ++i) c.send(1, 1, bytes_of("t"));
        });
      }
      for (auto& t : team) t.join();
      c.barrier();
    } else {
      c.barrier();
      int got = 0;
      while (c.iprobe(0, 1)) {
        (void)c.recv(0, 1);
        ++got;
      }
      // 200 attempted, first 100 ops allowed.
      EXPECT_EQ(got, 100);
    }
  });
  EXPECT_EQ(rt.failed_ranks(), std::vector<int>{0});
}

TEST(MpiFault, DiskFaultFiresOnceAtLsnAndKillsTheRank) {
  FaultPlan plan;
  plan.disk_faults.push_back(
      {/*rank=*/2, /*at_lsn=*/10, DiskFaultKind::kTornWrite});
  EXPECT_TRUE(plan.enabled());  // disk faults alone arm the injector
  FaultInjector inj(plan, 4);

  // Below the trigger: the fast path, nothing fires, nobody dies.
  EXPECT_EQ(inj.disk_fault_at(2, 9), std::nullopt);
  EXPECT_FALSE(inj.is_dead(2));
  // Other ranks never consult this rule.
  EXPECT_EQ(inj.disk_fault_at(1, 10), std::nullopt);
  EXPECT_FALSE(inj.is_dead(1));

  // The first frame whose LSN reaches the trigger gets the fault kind back
  // and the rank is dead from that point on (all disk faults are terminal).
  const auto kind = inj.disk_fault_at(2, 10);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, DiskFaultKind::kTornWrite);
  EXPECT_TRUE(inj.is_dead(2));

  // Fires exactly once: later frames see a disarmed rule.
  EXPECT_EQ(inj.disk_fault_at(2, 11), std::nullopt);
  EXPECT_EQ(inj.disk_fault_at(2, 10), std::nullopt);
}

TEST(MpiFault, DiskFaultFiresOnTheFirstLsnPastTheTrigger) {
  // LSNs are global while each worker logs only its own subset, so the
  // armed LSN may never appear verbatim in this rank's stream: the rule
  // fires on the first frame at or past it.
  FaultPlan plan;
  plan.disk_faults.push_back(
      {/*rank=*/1, /*at_lsn=*/10, DiskFaultKind::kFlipByte});
  FaultInjector inj(plan, 3);
  EXPECT_EQ(inj.disk_fault_at(1, 7), std::nullopt);
  const auto kind = inj.disk_fault_at(1, 13);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, DiskFaultKind::kFlipByte);
  EXPECT_TRUE(inj.is_dead(1));
}

TEST(MpiFault, ReviveDisarmsAFiredDiskFault) {
  FaultPlan plan;
  plan.disk_faults.push_back(
      {/*rank=*/1, /*at_lsn=*/5, DiskFaultKind::kCrashAtLsn});
  FaultInjector inj(plan, 3);
  ASSERT_TRUE(inj.disk_fault_at(1, 5).has_value());
  ASSERT_TRUE(inj.is_dead(1));

  // Heal revives the rank; the spent rule must not re-fire on the next
  // frame the recovered log commits.
  inj.revive(1);
  EXPECT_FALSE(inj.is_dead(1));
  EXPECT_EQ(inj.disk_fault_at(1, 6), std::nullopt);
  EXPECT_EQ(inj.disk_fault_at(1, 1000), std::nullopt);
  EXPECT_FALSE(inj.is_dead(1));
}

TEST(MpiFault, ReviveDisarmsAPendingDiskFault) {
  FaultPlan plan;
  plan.disk_faults.push_back(
      {/*rank=*/2, /*at_lsn=*/50, DiskFaultKind::kShortWrite});
  FaultInjector inj(plan, 4);
  // Revive before the trigger ever fires: the schedule is cleared, the rank
  // cannot be re-killed by its own (stale) plan after a heal.
  inj.revive(2);
  EXPECT_EQ(inj.disk_fault_at(2, 50), std::nullopt);
  EXPECT_EQ(inj.disk_fault_at(2, 100), std::nullopt);
  EXPECT_FALSE(inj.is_dead(2));
}

TEST(MpiFault, DiskFaultScheduleIsDeterministicAcrossInjectors) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.disk_faults.push_back(
      {/*rank=*/1, /*at_lsn=*/20, DiskFaultKind::kTornWrite});
  // Two injectors fed the same monotone LSN stream fire on the same frame
  // with the same kind — a chaos run replays from its logged plan.
  for (int run = 0; run < 2; ++run) {
    FaultInjector inj(plan, 3);
    std::optional<DiskFaultKind> fired;
    std::uint64_t fired_at = 0;
    for (std::uint64_t lsn = 1; lsn <= 40; ++lsn) {
      const auto k = inj.disk_fault_at(1, lsn);
      if (k.has_value()) {
        fired = k;
        fired_at = lsn;
      }
    }
    ASSERT_TRUE(fired.has_value()) << "run " << run;
    EXPECT_EQ(*fired, DiskFaultKind::kTornWrite) << "run " << run;
    EXPECT_EQ(fired_at, 20u) << "run " << run;
  }
}

}  // namespace
}  // namespace annsim::mpi
