/// Cross-feature runtime scenarios: the RMA k-NN merge end to end, mixed
/// communicators, and high-concurrency stress — the exact usage patterns the
/// engine's search phase relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/core/protocol.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::mpi {
namespace {

TEST(MpiIntegration, KnnMergeThroughWindowMatchesSequentialMerge) {
  // Fig 2's full path: every worker accumulates a sorted partial k-NN list
  // into the master's slot; the final content must equal the sequential
  // merge regardless of arrival order.
  const int n_workers = 7;
  const core::SlotLayout layout{10};
  Rng gen(42);

  std::vector<std::vector<Neighbor>> partials(n_workers);
  GlobalId id = 0;
  for (auto& p : partials) {
    for (int i = 0; i < 25; ++i) p.push_back({gen.uniformf(), id++});
    std::sort(p.begin(), p.end());
    p.resize(10);
  }
  TopK expected(10);
  for (const auto& p : partials) expected.merge(p);
  const auto want = expected.take_sorted();

  Runtime rt(n_workers + 1);
  rt.run([&](Comm& c) {
    Window win =
        c.create_window(c.rank() == 0 ? layout.window_bytes(1) : 0);
    c.barrier();
    if (c.rank() != 0) {
      win.lock_shared(0);
      win.get_accumulate(
          0, layout.slot_offset(0),
          core::encode_slot_update(partials[std::size_t(c.rank() - 1)], layout),
          core::knn_slot_merge(layout));
      win.unlock(0);
    }
    c.barrier();
    if (c.rank() == 0) {
      win.lock_shared(0);
      auto bytes = win.get(0, 0, layout.slot_bytes());
      win.unlock(0);
      const auto slot = core::decode_slot(bytes, layout);
      EXPECT_EQ(slot.merged_count, std::uint32_t(n_workers));
      EXPECT_EQ(slot.neighbors, want);
    }
  });
}

TEST(MpiIntegration, SubcommunicatorsRunCollectivesConcurrently) {
  // The construction phase has disjoint halves running alltoallv at the
  // same time; traffic must not bleed between them.
  Runtime rt(8);
  rt.run([&](Comm& world) {
    Comm half = world.split(world.rank() < 4 ? 0 : 1);
    for (int round = 0; round < 10; ++round) {
      std::vector<std::vector<std::byte>> send(std::size_t(half.size()));
      for (int d = 0; d < half.size(); ++d) {
        BinaryWriter w;
        w.write(world.rank() * 1000 + round);
        send[std::size_t(d)] = w.take();
      }
      auto recv = half.alltoallv(send);
      for (int s = 0; s < half.size(); ++s) {
        BinaryReader r(recv[std::size_t(s)]);
        const int v = r.read<int>();
        const int sender_world = world.rank() < 4 ? s : s + 4;
        EXPECT_EQ(v, sender_world * 1000 + round);
      }
    }
  });
}

TEST(MpiIntegration, NestedSplitsWithWindows) {
  // Windows created on the world communicator keep working while subgroups
  // run their own traffic.
  Runtime rt(4);
  rt.run([&](Comm& world) {
    Window win = world.create_window(world.rank() == 0 ? 64 : 0);
    Comm pair = world.split(world.rank() / 2);
    const auto sum = pair.allreduce(
        std::uint64_t(world.rank()),
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, world.rank() < 2 ? 1u : 5u);
    world.barrier();
    if (world.rank() == 3) {
      win.lock_shared(0);
      const std::uint64_t v = 99;
      win.put(0, 0, std::as_bytes(std::span<const std::uint64_t>(&v, 1)));
      win.unlock(0);
    }
    world.barrier();
    if (world.rank() == 0) {
      win.lock_shared(0);
      auto bytes = win.get(0, 0, 8);
      win.unlock(0);
      std::uint64_t v;
      std::memcpy(&v, bytes.data(), 8);
      EXPECT_EQ(v, 99u);
    }
  });
}

TEST(MpiIntegration, MasterWorkerPatternStress) {
  // Algorithm 3/4 in miniature under load: a master dispatches many tagged
  // jobs; two threads per worker consume and reply; everything reconciles.
  const int P = 4;
  const int jobs_per_worker = 60;
  Runtime rt(P + 1);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int j = 0; j < jobs_per_worker * P; ++j) {
        BinaryWriter w;
        w.write(j);
        c.send(1 + j % P, core::kTagQuery, w.bytes());
      }
      for (int wkr = 1; wkr <= P; ++wkr) {
        (void)c.isend(wkr, core::kTagEoq, {});
      }
      std::uint64_t sum = 0;
      for (int j = 0; j < jobs_per_worker * P; ++j) {
        Message m = c.recv(kAnySource, core::kTagResult);
        BinaryReader r(m.payload);
        sum += r.read<std::uint64_t>();
      }
      const std::uint64_t n = std::uint64_t(jobs_per_worker) * P;
      EXPECT_EQ(sum, n * (n - 1) / 2);  // echoes of 0..n-1
    } else {
      std::atomic<bool> done{false};
      auto worker_thread = [&] {
        for (;;) {
          Request req = c.irecv(0, kAnyTag);
          bool cancelled = false;
          while (!req.test()) {
            if (done.load()) {
              if (req.cancel()) {
                cancelled = true;
                break;
              }
            }
            std::this_thread::yield();
          }
          if (cancelled) return;
          Message m = req.take();
          if (m.tag == core::kTagEoq) {
            done.store(true);
            return;
          }
          BinaryReader r(m.payload);
          BinaryWriter w;
          w.write(std::uint64_t(r.read<int>()));
          (void)c.isend(0, core::kTagResult, w.bytes());
        }
      };
      std::thread t1(worker_thread), t2(worker_thread);
      t1.join();
      t2.join();
    }
  });
}

TEST(MpiIntegration, LargePayloadsSurvive) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    const std::size_t mb = 4 * 1024 * 1024;
    if (c.rank() == 0) {
      std::vector<std::byte> big(mb);
      for (std::size_t i = 0; i < big.size(); i += 4096) {
        big[i] = std::byte(i / 4096);
      }
      c.send(1, 1, big);
    } else {
      Message m = c.recv(0, 1);
      ASSERT_EQ(m.payload.size(), mb);
      EXPECT_EQ(m.payload[8 * 4096], std::byte(8));
    }
  });
}

}  // namespace
}  // namespace annsim::mpi
