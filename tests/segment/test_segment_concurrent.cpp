/// Concurrency tests for SegmentedIndex, written to run under TSan: readers
/// search continuously while a writer streams inserts/erases and a dedicated
/// compactor hot-swaps views. The assertions are deliberately weak during
/// the storm (no crashes, no torn reads, erased ids never surface) and exact
/// at quiescence.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "annsim/data/recipes.hpp"
#include "annsim/segment/segmented_index.hpp"

namespace annsim::segment {
namespace {

SegmentedParams storm_params() {
  SegmentedParams p;
  p.hnsw.M = 8;
  p.hnsw.ef_construction = 32;
  p.hnsw.ef_search = 32;
  p.delta_capacity = 16;  // small, so auto-compactions happen mid-storm
  return p;
}

TEST(SegmentConcurrent, ReadersWritersAndCompactorInterleave) {
  auto w = data::make_sift_like(400, 16, 91);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), storm_params());

  constexpr std::size_t kInserts = 160;
  constexpr GlobalId kFirstStreamId = 10000;
  std::atomic<bool> writer_done{false};

  // Writer: stream new rows in, erasing every fourth previously streamed id.
  std::thread writer([&] {
    for (std::size_t i = 0; i < kInserts; ++i) {
      std::vector<float> v(w.base.row_span(i % w.base.size()).begin(),
                           w.base.row_span(i % w.base.size()).end());
      v[0] += 3.0f + float(i) * 0.01f;
      idx.insert(v, kFirstStreamId + GlobalId(i));
      if (i % 4 == 3) {
        EXPECT_TRUE(idx.erase(kFirstStreamId + GlobalId(i - 1)));
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Compactor: keep folding the delta while the writer runs.
  std::thread compactor([&] {
    while (!writer_done.load(std::memory_order_acquire)) {
      idx.compact();
      std::this_thread::yield();
    }
  });

  // Readers: continuous searches; results must always be well-formed and
  // sorted, and must never contain an id after its erase completed (checked
  // at quiescence below — mid-storm the erase may race the search).
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t q = std::size_t(r);
      while (!writer_done.load(std::memory_order_acquire)) {
        const auto res = idx.search(w.queries.row(q % w.queries.size()), 10);
        EXPECT_LE(res.size(), 10u);
        for (std::size_t i = 1; i < res.size(); ++i) {
          EXPECT_LE(res[i - 1].dist, res[i].dist);
        }
        ++q;
      }
    });
  }

  writer.join();
  compactor.join();
  for (auto& t : readers) t.join();

  // Quiescent truth: every streamed id is live except the erased quarter.
  const std::size_t erased = kInserts / 4;
  EXPECT_EQ(idx.size(), w.base.size() + kInserts - erased);
  for (std::size_t i = 0; i < kInserts; ++i) {
    const GlobalId id = kFirstStreamId + GlobalId(i);
    const bool was_erased = i % 4 == 2;
    EXPECT_EQ(idx.contains(id), !was_erased) << "id " << id;
  }
  // A final major-capable compaction must not change the live set.
  idx.compact();
  EXPECT_EQ(idx.size(), w.base.size() + kInserts - erased);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    for (const auto& nb : idx.search(w.queries.row(q), 10)) {
      if (nb.id >= kFirstStreamId) {
        const std::size_t i = std::size_t(nb.id - kFirstStreamId);
        EXPECT_NE(i % 4, 2u) << "erased id " << nb.id << " resurfaced";
      }
    }
  }
}

TEST(SegmentConcurrent, SnapshotsStayConsistentUnderWrites) {
  auto w = data::make_sift_like(200, 4, 92);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), storm_params());
  std::atomic<bool> done{false};

  // Serialization takes a consistent cut while the index mutates.
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto bytes = idx.to_bytes();
      const auto clone = SegmentedIndex::from_bytes(bytes);
      ASSERT_NE(clone, nullptr);
      // The cut is internally consistent: a reload of it agrees with itself.
      EXPECT_EQ(clone->to_bytes(), bytes);
      std::this_thread::yield();
    }
  });

  for (std::size_t i = 0; i < 96; ++i) {
    idx.insert(w.queries.row_span(i % w.queries.size()),
               GlobalId(20000 + i));
    if (i % 3 == 2) idx.erase(GlobalId(20000 + i));
  }
  done.store(true, std::memory_order_release);
  snapshotter.join();

  EXPECT_EQ(idx.size(), 200u + 96u - 32u);
}

}  // namespace
}  // namespace annsim::segment
