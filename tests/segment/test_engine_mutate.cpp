/// Engine write-plane tests: streaming insert/delete routed through the
/// reserved control-plane tags into segmented replicas, and the interaction
/// of tombstones with the fault-tolerance machinery. The contract:
///  * insert() routes each row to every live member of its partition's
///    workgroup and assigns monotonically increasing global ids;
///  * remove() tombstones the id on every hosted replica; no search — not a
///    degraded merge, not a failover answer, not a post-heal answer — may
///    ever return it again;
///  * heal() mid-delta replays streamed rows AND tombstones, through both
///    restore paths (checkpoint store and peer streaming);
///  * compact() folds every replica's delta and never changes the live set.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>
#include <unordered_set>
#include <vector>

#include "annsim/core/engine.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/recovery/checkpoint.hpp"

namespace annsim::core {
namespace {

namespace fs = std::filesystem;

EngineConfig mutate_config(std::size_t workers = 4) {
  EngineConfig cfg;
  cfg.n_workers = workers;
  cfg.replication = 2;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.local_index = LocalIndexKind::kSegmented;
  cfg.segment_delta_capacity = 64;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

class MutateScratchDir {
 public:
  MutateScratchDir() {
    dir_ = (fs::temp_directory_path() /
            ("annsim_mutate_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  ~MutateScratchDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// Assert no result row of `res` contains any id in `banned`.
void expect_none_of(const data::KnnResults& res,
                    const std::unordered_set<GlobalId>& banned,
                    const char* when) {
  for (std::size_t q = 0; q < res.size(); ++q) {
    for (const auto& nb : res[q]) {
      EXPECT_FALSE(banned.contains(nb.id))
          << "deleted id " << nb.id << " resurfaced in query " << q << " "
          << when;
    }
  }
}

/// Fraction of `rows` whose own vector, searched with k=1, returns the id
/// the engine assigned to it.
double self_hit_rate(DistributedAnnEngine& eng, const data::Dataset& rows,
                     const std::vector<GlobalId>& ids) {
  data::Dataset queries(rows.size(), rows.dim());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    queries.set_row(i, rows.row_span(i));
  }
  const auto res = eng.search(queries, 1);
  double hits = 0.0;
  for (std::size_t i = 0; i < res.size(); ++i) {
    if (!res[i].empty() && res[i][0].id == ids[i]) hits += 1.0;
  }
  return hits / double(rows.size());
}

class EngineMutateSided : public ::testing::TestWithParam<bool> {};

TEST_P(EngineMutateSided, InsertRemoveCompactLifecycle) {
  auto w = data::make_sift_like(600, 20, 811);
  auto cfg = mutate_config(4);
  cfg.one_sided = GetParam();
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  // Stream 40 new rows: ids continue after the base corpus, every row lands
  // on both workgroup replicas.
  auto stream = data::make_sift_like(40, 1, 812).base;
  const auto ws = eng.insert(stream);
  ASSERT_EQ(ws.assigned_ids.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(ws.assigned_ids[i], GlobalId(600 + i));
  }
  EXPECT_EQ(ws.inserted_replicas, 40u * cfg.replication);
  EXPECT_EQ(ws.dropped_rows, 0u);
  EXPECT_GT(ws.max_delta_fill, 0u);
  EXPECT_GE(self_hit_rate(eng, stream, ws.assigned_ids), 0.95);

  // Delete a slice of the *frozen* base: tombstones on every hosted copy.
  std::vector<GlobalId> dels;
  std::unordered_set<GlobalId> banned;
  for (GlobalId id = 10; id < 40; ++id) {
    dels.push_back(id);
    banned.insert(id);
  }
  const auto dws = eng.remove(dels);
  EXPECT_EQ(dws.erased_replicas, dels.size() * cfg.replication);
  expect_none_of(eng.search(w.queries, 10), banned, "after remove");

  // compact() folds every delta; the live set must be unchanged.
  EXPECT_GT(eng.compact(), 0u);
  EXPECT_EQ(eng.max_delta_fill(), 0u);
  EXPECT_GE(self_hit_rate(eng, stream, ws.assigned_ids), 0.95);
  expect_none_of(eng.search(w.queries, 10), banned, "after compact");

  // A second compact with nothing pending is a no-op.
  EXPECT_EQ(eng.compact(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, EngineMutateSided, ::testing::Bool(),
                         [](const auto& pinfo) {
                           return pinfo.param ? "OneSided" : "TwoSided";
                         });

TEST(EngineMutate, WritesRejectNonSegmentedEngines) {
  auto w = data::make_sift_like(200, 5, 813);
  auto cfg = mutate_config(4);
  cfg.local_index = LocalIndexKind::kHnsw;
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  data::Dataset one(1, w.base.dim());
  EXPECT_THROW((void)eng.insert(one), Error);
  const std::vector<GlobalId> ids{3};
  EXPECT_THROW((void)eng.remove(ids), Error);
  EXPECT_THROW((void)eng.compact(), Error);
}

TEST(EngineMutate, TombstoneNeverResurrectsAcrossFailover) {
  auto w = data::make_sift_like(800, 25, 814);
  auto cfg = mutate_config(4);
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 93;
  // Worker 1 (runtime rank 2) dies three ops into the first search batch;
  // its partitions fail over to the surviving workgroup copies.
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  // Delete across the whole id space BEFORE the kill, so every partition —
  // including the ones that will fail over — carries tombstones.
  std::vector<GlobalId> dels;
  std::unordered_set<GlobalId> banned;
  for (GlobalId id = 0; id < 800; id += 13) {
    dels.push_back(id);
    banned.insert(id);
  }
  const auto dws = eng.remove(dels);
  EXPECT_EQ(dws.erased_replicas, dels.size() * cfg.replication);

  SearchStats st;
  const auto res = eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  EXPECT_EQ(st.degraded_queries, 0u);  // replication 2 covered the plan
  expect_none_of(res, banned, "in the failover batch");

  // Masked-slot follow-up batches keep filtering too.
  expect_none_of(eng.search(w.queries, 10), banned, "after failover");
}

TEST(EngineMutate, DegradedAnswersNeverResurrectAtReplicationOne) {
  auto w = data::make_sift_like(600, 25, 815);
  auto cfg = mutate_config(4);
  cfg.replication = 1;  // lost partitions degrade instead of failing over
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 94;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  std::vector<GlobalId> dels;
  std::unordered_set<GlobalId> banned;
  for (GlobalId id = 0; id < 600; id += 7) {
    dels.push_back(id);
    banned.insert(id);
  }
  (void)eng.remove(dels);

  SearchStats st;
  const auto res = eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  // Degraded merges assemble partial top-k from surviving partitions only —
  // and none of those partials may contain a deleted id.
  expect_none_of(res, banned, "in degraded answers");
}

class EngineMutateHeal : public ::testing::TestWithParam<bool> {};

TEST_P(EngineMutateHeal, HealMidDeltaReplaysStreamedRowsAndTombstones) {
  const bool from_checkpoint = GetParam();
  MutateScratchDir scratch;
  auto w = data::make_sift_like(800, 25, 816);
  auto cfg = mutate_config(4);
  if (from_checkpoint) cfg.checkpoint_dir = scratch.path();
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 95;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  // Mutate mid-delta: stream rows in and tombstone a slice of the frozen
  // base, all before the kill. Nothing is compacted — the heal must carry
  // the delta and the tombstones, not just the frozen segments.
  auto stream = data::make_sift_like(32, 1, 817).base;
  const auto ws = eng.insert(stream);
  ASSERT_EQ(ws.dropped_rows, 0u);
  std::vector<GlobalId> dels;
  std::unordered_set<GlobalId> banned;
  for (GlobalId id = 5; id < 800; id += 31) {
    dels.push_back(id);
    banned.insert(id);
  }
  (void)eng.remove(dels);
  EXPECT_GT(eng.max_delta_fill(), 0u);

  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_EQ(st.workers_failed, 1u);
  EXPECT_FALSE(eng.under_replicated_partitions().empty());

  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  if (from_checkpoint) {
    EXPECT_GT(heal.replicas_restored_from_checkpoint, 0u);
    EXPECT_EQ(heal.replicas_restored_from_peer, 0u);
  } else {
    EXPECT_EQ(heal.replicas_restored_from_checkpoint, 0u);
    EXPECT_GT(heal.replicas_restored_from_peer, 0u);
  }
  EXPECT_TRUE(heal.fully_healed());
  EXPECT_TRUE(eng.under_replicated_partitions().empty());

  // The healed replicas answer like everyone else: streamed rows found,
  // deleted ids gone — even though both lived only in the delta when the
  // snapshot/stream was taken.
  EXPECT_GE(self_hit_rate(eng, stream, ws.assigned_ids), 0.95);
  SearchStats post_st;
  const auto post = eng.search(w.queries, 10, 0, &post_st);
  EXPECT_EQ(post_st.degraded_queries, 0u);
  expect_none_of(post, banned, "after heal");

  // And the delta state survives a subsequent compaction round.
  EXPECT_GT(eng.compact(), 0u);
  expect_none_of(eng.search(w.queries, 10), banned, "after post-heal compact");
  EXPECT_GE(self_hit_rate(eng, stream, ws.assigned_ids), 0.95);
}

INSTANTIATE_TEST_SUITE_P(RestorePaths, EngineMutateHeal, ::testing::Bool(),
                         [](const auto& pinfo) {
                           return pinfo.param ? "FromCheckpoint" : "FromPeer";
                         });

TEST(EngineMutate, WritesRouteAroundDeadWorkersAndCheckpointsStayFresh) {
  MutateScratchDir scratch;
  auto w = data::make_sift_like(800, 25, 818);
  auto cfg = mutate_config(4);
  cfg.checkpoint_dir = scratch.path();
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 96;
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  // Kill worker 1 via a search batch FIRST, then write: rows owned by its
  // partitions must land on the surviving workgroup member (not dropped),
  // and the post-write checkpoint must be taken from a live replica so the
  // tombstones written after the death are durable.
  SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  ASSERT_EQ(st.workers_failed, 1u);

  auto stream = data::make_sift_like(24, 1, 819).base;
  const auto ws = eng.insert(stream);
  EXPECT_EQ(ws.dropped_rows, 0u);
  // Replication 2 workgroups with exactly one dead worker: some rows get
  // both copies, rows owned by the dead worker's partitions get one.
  EXPECT_LT(ws.inserted_replicas, 24u * cfg.replication + 1);
  EXPECT_GE(ws.inserted_replicas, 24u);
  std::vector<GlobalId> dels;
  std::unordered_set<GlobalId> banned;
  for (GlobalId id = 2; id < 800; id += 41) {
    dels.push_back(id);
    banned.insert(id);
  }
  (void)eng.remove(dels);

  // Heal from the checkpoints written during the outage: streamed rows and
  // tombstones must all come back.
  const auto heal = eng.heal();
  EXPECT_TRUE(heal.fully_healed());
  EXPECT_GT(heal.replicas_restored_from_checkpoint, 0u);
  EXPECT_GE(self_hit_rate(eng, stream, ws.assigned_ids), 0.95);
  SearchStats post_st;
  const auto post = eng.search(w.queries, 10, 0, &post_st);
  EXPECT_EQ(post_st.degraded_queries, 0u);
  expect_none_of(post, banned, "after heal from mid-outage checkpoints");
}

TEST(EngineMutate, SaveLoadPreservesStreamStateAndIdCursor) {
  MutateScratchDir scratch;
  auto w = data::make_sift_like(400, 10, 820);
  auto cfg = mutate_config(4);
  DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  auto stream = data::make_sift_like(16, 1, 821).base;
  const auto ws = eng.insert(stream);
  ASSERT_EQ(ws.assigned_ids.back(), GlobalId(415));
  const std::vector<GlobalId> dels{7, 8, 9};
  (void)eng.remove(dels);

  const std::string path = scratch.path() + "/mutated.idx";
  fs::create_directories(scratch.path());
  eng.save(path);
  auto loaded = DistributedAnnEngine::load(path);

  // The reloaded engine serves the mutated state...
  EXPECT_GE(self_hit_rate(loaded, stream, ws.assigned_ids), 0.95);
  expect_none_of(loaded.search(w.queries, 10), {7, 8, 9}, "after reload");
  // ... and keeps assigning ids where the saved engine left off.
  data::Dataset one(1, w.base.dim());
  one.set_row(0, stream.row_span(0));
  const auto ws2 = loaded.insert(one);
  ASSERT_EQ(ws2.assigned_ids.size(), 1u);
  EXPECT_EQ(ws2.assigned_ids[0], GlobalId(416));
}

}  // namespace
}  // namespace annsim::core
