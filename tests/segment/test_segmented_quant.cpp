/// Quantized SegmentedIndex tests: the SQ8 tier wired into live mutability.
///  * quantize_frozen stores frozen segments as codes (stats expose the
///    compression) while the delta stays full-float;
///  * inserts/erases/compaction behave identically to the float tier;
///  * the serialized image round-trips byte-identically (version 2 wire) and
///    non-quantized indexes keep the version 1 bytes;
///  * major compaction re-selects the re-rank cache from measured traffic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/segment/segmented_index.hpp"

namespace annsim::segment {
namespace {

SegmentedParams quant_params(std::size_t delta_capacity = 64,
                             double fraction = 0.02) {
  SegmentedParams p;
  p.hnsw.M = 8;
  p.hnsw.ef_construction = 48;
  p.hnsw.ef_search = 48;
  p.delta_capacity = delta_capacity;
  p.quantize_frozen = true;
  p.float_cache_fraction = fraction;
  return p;
}

double recall_at(const SegmentedIndex& idx, const data::Dataset& base,
                 const data::Dataset& queries, std::size_t k) {
  const auto gt = data::brute_force_knn(base, queries, k, simd::Metric::kL2);
  double hits = 0.0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto res = idx.search(queries.row(q), k);
    for (const auto& nb : res) {
      if (nb.id == gt[q][0].id) {
        hits += 1.0;
        break;
      }
    }
  }
  return hits / double(queries.size());
}

TEST(SegmentedQuant, BuildQuantizesFrozenAndKeepsRecall) {
  auto w = data::make_sift_like(600, 25, 91);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params());
  const auto st = idx.stats();
  EXPECT_EQ(st.quant_rows, 600u);
  EXPECT_GT(st.quant_resident_bytes, 0u);
  EXPECT_GT(st.quant_float_bytes, st.quant_resident_bytes * 3);
  EXPECT_GT(st.quant_cached_rows, 0u);
  EXPECT_GE(recall_at(idx, w.base, w.queries, 10), 0.9);
}

TEST(SegmentedQuant, DeltaStaysFullFloat) {
  auto w = data::make_sift_like(200, 5, 92);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params());
  const auto before = idx.stats();
  const std::vector<float> v(w.queries.row_span(0).begin(),
                             w.queries.row_span(0).end());
  idx.insert(v, GlobalId(9000));
  // The insert landed in the float delta: quantized row count unchanged,
  // and the new id is searchable at exact (unquantized) distance.
  EXPECT_EQ(idx.stats().quant_rows, before.quant_rows);
  const auto res = idx.search(v.data(), 1);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, GlobalId(9000));
  EXPECT_NEAR(res[0].dist, 0.f, 1e-5f);
}

TEST(SegmentedQuant, CompactionQuantizesDeltaRows) {
  auto w = data::make_sift_like(128, 5, 93);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params(32));
  for (std::size_t i = 0; i < 16; ++i) {
    const std::vector<float> v(w.queries.row_span(i % w.queries.size()).begin(),
                               w.queries.row_span(i % w.queries.size()).end());
    idx.insert(v, GlobalId(5000 + i));
  }
  ASSERT_TRUE(idx.compact());
  const auto st = idx.stats();
  EXPECT_EQ(st.quant_rows, 128u + 16u);  // every frozen row is coded
  EXPECT_EQ(idx.delta_fill(), 0u);
  EXPECT_TRUE(idx.contains(GlobalId(5000)));
}

TEST(SegmentedQuant, EraseAndMajorCompactPurge) {
  auto w = data::make_sift_like(300, 10, 94);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params(16));
  for (GlobalId id = 0; id < 100; ++id) EXPECT_TRUE(idx.erase(id));
  EXPECT_EQ(idx.size(), 200u);
  for (const auto q : {0u, 3u, 7u}) {
    for (const auto& nb : idx.search(w.queries.row(q), 10))
      EXPECT_GE(nb.id, GlobalId(100));
  }
  // Tombstones exceed a quarter of frozen rows -> compact() goes major and
  // rebuilds one quantized segment without the dead rows.
  ASSERT_TRUE(idx.compact());
  const auto st = idx.stats();
  EXPECT_EQ(st.n_segments, 1u);
  EXPECT_EQ(st.quant_rows, 200u);
  EXPECT_EQ(st.tombstones, 0u);
}

TEST(SegmentedQuant, SearchTrafficSurvivesMajorCompaction) {
  // Pre-compaction searches bump per-row access counters; the major merge
  // harvests them, so the rebuilt segment still caches and still answers.
  auto w = data::make_sift_like(400, 25, 95);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params(16));
  for (std::size_t q = 0; q < w.queries.size(); ++q)
    (void)idx.search(w.queries.row(q), 10);
  const auto st_before = idx.stats();
  EXPECT_GT(st_before.rerank_exact + st_before.rerank_coded, 0u);
  for (GlobalId id = 0; id < 150; ++id) EXPECT_TRUE(idx.erase(id));
  ASSERT_TRUE(idx.compact());  // major: tombstone pressure
  const auto st = idx.stats();
  EXPECT_EQ(st.quant_rows, 250u);
  EXPECT_GT(st.quant_cached_rows, 0u);
  // Ground truth over the survivors only — the erased rows are gone.
  const auto survivors = w.base.slice(150, w.base.size());
  EXPECT_GE(recall_at(idx, survivors, w.queries, 10), 0.85);
}

TEST(SegmentedQuant, WireRoundTripsByteIdentically) {
  auto w = data::make_sift_like(250, 10, 96);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params(16));
  const std::vector<float> v(w.queries.row_span(0).begin(),
                             w.queries.row_span(0).end());
  idx.insert(v, GlobalId(7777));
  idx.erase(GlobalId(3));

  const auto bytes = idx.to_bytes();
  const auto back = SegmentedIndex::from_bytes(bytes);
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->params().quantize_frozen);
  EXPECT_EQ(back->size(), idx.size());
  EXPECT_EQ(back->stats().quant_rows, idx.stats().quant_rows);
  EXPECT_EQ(back->to_bytes(), bytes);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto a = idx.search(w.queries.row(q), 10);
    const auto b = back->search(w.queries.row(q), 10);
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(a[i].dist, b[i].dist) << "query " << q << " rank " << i;
    }
  }
}

TEST(SegmentedQuant, PartsRoundTripMatchesFullImage) {
  auto w = data::make_sift_like(200, 5, 97);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params(16));
  const auto parts = idx.snapshot_parts();
  const auto back =
      SegmentedIndex::from_parts(parts.header, parts.segments, parts.delta);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->to_bytes(), idx.to_bytes());
}

TEST(SegmentedQuant, FloatIndexKeepsVersion1Bytes) {
  // The non-quantized wire image must not grow a version bump: its header
  // bytes are the contract the incremental checkpoint store's immutable
  // seg_<id>.bin files were written under.
  auto w = data::make_sift_like(100, 1, 98);
  SegmentedParams fp = quant_params();
  fp.quantize_frozen = false;
  SegmentedIndex idx(w.base.slice(0, w.base.size()), fp);
  const auto st = idx.stats();
  EXPECT_EQ(st.quant_rows, 0u);
  EXPECT_EQ(st.quant_resident_bytes, 0u);
  const auto back = SegmentedIndex::from_bytes(idx.to_bytes());
  ASSERT_TRUE(back);
  EXPECT_FALSE(back->params().quantize_frozen);
}

}  // namespace
}  // namespace annsim::segment
