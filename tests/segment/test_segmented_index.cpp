/// SegmentedIndex unit tests: the live-mutability contract.
///  * searches see frozen segments + delta minus tombstones, immediately;
///  * the delta absorbs inserts up to capacity then auto-compacts;
///  * compaction is tiered — minor folds only the delta (O(delta)), major
///    (fanout / tombstone pressure, or forced by a re-insert) merges
///    everything and purges tombstones;
///  * the serialized image round-trips whole (to_bytes/from_bytes) and in
///    parts (snapshot_parts/from_parts), byte-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "annsim/common/serialize.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/segment/segmented_index.hpp"

namespace annsim::segment {
namespace {

SegmentedParams small_params(std::size_t delta_capacity = 64) {
  SegmentedParams p;
  p.hnsw.M = 8;
  p.hnsw.ef_construction = 48;
  p.hnsw.ef_search = 48;
  p.delta_capacity = delta_capacity;
  return p;
}

/// Fraction of queries whose true nearest neighbor (per brute force over
/// `base`) appears in the index's top-k.
double recall_at(const SegmentedIndex& idx, const data::Dataset& base,
                 const data::Dataset& queries, std::size_t k) {
  const auto gt = data::brute_force_knn(base, queries, k, simd::Metric::kL2);
  double hits = 0.0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto res = idx.search(queries.row(q), k);
    for (const auto& nb : res) {
      if (nb.id == gt[q][0].id) {
        hits += 1.0;
        break;
      }
    }
  }
  return hits / double(queries.size());
}

bool result_contains(const std::vector<Neighbor>& res, GlobalId id) {
  return std::any_of(res.begin(), res.end(),
                     [&](const Neighbor& nb) { return nb.id == id; });
}

TEST(SegmentedIndex, InitialBuildMatchesBruteForce) {
  auto w = data::make_sift_like(500, 25, 71);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params());
  EXPECT_EQ(idx.size(), 500u);
  EXPECT_EQ(idx.stats().n_segments, 1u);
  EXPECT_GE(recall_at(idx, w.base, w.queries, 10), 0.9);
}

TEST(SegmentedIndex, InsertIsVisibleImmediately) {
  auto w = data::make_sift_like(200, 5, 72);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params());
  const std::vector<float> v(w.queries.row_span(0).begin(),
                             w.queries.row_span(0).end());
  idx.insert(v, GlobalId(9000));
  EXPECT_EQ(idx.size(), 201u);
  EXPECT_TRUE(idx.contains(GlobalId(9000)));
  EXPECT_EQ(idx.delta_fill(), 1u);
  const auto res = idx.search(v.data(), 1);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, GlobalId(9000));
}

TEST(SegmentedIndex, EraseHidesIdEverywhere) {
  auto w = data::make_sift_like(200, 10, 73);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params());
  ASSERT_TRUE(idx.erase(GlobalId(17)));
  EXPECT_FALSE(idx.erase(GlobalId(17)));  // already gone
  EXPECT_FALSE(idx.contains(GlobalId(17)));
  EXPECT_EQ(idx.size(), 199u);
  // Query with the erased row itself: its physical row still sits in the
  // frozen segment but must never surface.
  const auto res = idx.search(w.base.row(17), 10);
  EXPECT_FALSE(result_contains(res, GlobalId(17)));
  // ... including after a compaction folds the tombstone away.
  idx.compact();
  EXPECT_FALSE(result_contains(idx.search(w.base.row(17), 10), GlobalId(17)));
}

TEST(SegmentedIndex, DeltaOverflowAutoCompacts) {
  auto w = data::make_sift_like(100, 5, 74);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params(8));
  for (std::size_t i = 0; i < 20; ++i) {
    std::vector<float> v(w.base.row_span(i % 100).begin(),
                         w.base.row_span(i % 100).end());
    v[0] += 1.0f + float(i);
    idx.insert(v, GlobalId(1000 + i));
    EXPECT_LE(idx.delta_fill(), 8u);
    const auto res = idx.search(v.data(), 1);
    ASSERT_FALSE(res.empty());
    EXPECT_EQ(res[0].id, GlobalId(1000 + i));
  }
  EXPECT_EQ(idx.size(), 120u);
  EXPECT_GT(idx.stats().compactions, 0u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(idx.contains(GlobalId(1000 + i)));
  }
}

TEST(SegmentedIndex, MinorCompactionFreezesDeltaOnly) {
  auto w = data::make_sift_like(200, 5, 75);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params());
  for (std::size_t i = 0; i < 10; ++i) {
    idx.insert(w.queries.row_span(i % 5), GlobalId(2000 + i));
  }
  ASSERT_TRUE(idx.erase(GlobalId(3)));  // tombstone against the frozen tier
  ASSERT_TRUE(idx.compact());
  const auto st = idx.stats();
  EXPECT_EQ(st.n_segments, 2u);  // original + freshly frozen delta
  EXPECT_EQ(st.delta_used, 0u);
  // Minor compaction leaves the frozen rows (and the tombstone filtering
  // them) in place.
  EXPECT_EQ(st.tombstones, 1u);
  EXPECT_FALSE(result_contains(idx.search(w.base.row(3), 10), GlobalId(3)));
  EXPECT_EQ(idx.size(), 209u);
}

TEST(SegmentedIndex, FanoutPressureEscalatesToMajor) {
  auto w = data::make_sift_like(64, 5, 76);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params(4));
  // Each overflowing batch of 4 minor-compacts into its own segment; the
  // count must never exceed the fanout bound because a major merge kicks in.
  for (std::size_t i = 0; i < 64; ++i) {
    std::vector<float> v(w.base.row_span(i).begin(), w.base.row_span(i).end());
    v[1] += 2.0f;
    idx.insert(v, GlobalId(500 + i));
    EXPECT_LE(idx.stats().n_segments, SegmentedIndex::kMajorFanout);
  }
  EXPECT_EQ(idx.size(), 128u);
}

TEST(SegmentedIndex, TombstonePressureEscalatesToMajor) {
  auto w = data::make_sift_like(100, 5, 77);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params());
  for (std::size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(idx.erase(GlobalId(i)));
  }
  ASSERT_TRUE(idx.compact());  // 30% tombstoned -> major, purges the set
  const auto st = idx.stats();
  EXPECT_EQ(st.n_segments, 1u);
  EXPECT_EQ(st.tombstones, 0u);
  EXPECT_EQ(st.segment_rows, 70u);  // physically gone, not just hidden
  EXPECT_EQ(idx.size(), 70u);
}

TEST(SegmentedIndex, ReinsertOfErasedIdServesTheNewVector) {
  auto w = data::make_sift_like(100, 5, 78);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params());
  ASSERT_TRUE(idx.erase(GlobalId(42)));
  std::vector<float> v(w.queries.row_span(0).begin(),
                       w.queries.row_span(0).end());
  idx.insert(v, GlobalId(42));
  EXPECT_TRUE(idx.contains(GlobalId(42)));
  EXPECT_EQ(idx.size(), 100u);
  const auto res = idx.search(v.data(), 1);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, GlobalId(42));
  EXPECT_NEAR(res[0].dist, 0.0f, 1e-3f);  // serves the NEW vector
  // The forced major purge physically removed the old copy and its
  // tombstone; only the fresh delta row carries id 42 now.
  const auto st = idx.stats();
  EXPECT_EQ(st.n_segments, 1u);
  EXPECT_EQ(st.segment_rows, 99u);
  EXPECT_EQ(st.delta_used, 1u);
  EXPECT_EQ(st.tombstones, 0u);
}

TEST(SegmentedIndex, ToBytesRoundTripsSearchState) {
  auto w = data::make_sift_like(300, 20, 79);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params(16));
  for (std::size_t i = 0; i < 24; ++i) {
    idx.insert(w.queries.row_span(i % 20), GlobalId(4000 + i));
  }
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(idx.erase(GlobalId(i * 7)));
  }
  const auto bytes = idx.to_bytes();
  const auto clone = SegmentedIndex::from_bytes(bytes);
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->size(), idx.size());
  EXPECT_EQ(clone->dim(), idx.dim());
  EXPECT_EQ(clone->stats().n_segments, idx.stats().n_segments);
  EXPECT_EQ(clone->stats().tombstones, idx.stats().tombstones);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(clone->search(w.queries.row(q), 10),
              idx.search(w.queries.row(q), 10))
        << "query " << q;
  }
  // The clone stays writable: the reloaded delta keeps absorbing.
  clone->insert(w.queries.row_span(0), GlobalId(9999));
  EXPECT_TRUE(clone->contains(GlobalId(9999)));
}

TEST(SegmentedIndex, SnapshotPartsReassembleTheExactImage) {
  auto w = data::make_sift_like(200, 8, 80);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params(16));
  for (std::size_t i = 0; i < 20; ++i) {
    idx.insert(w.queries.row_span(i % 8), GlobalId(6000 + i));
  }
  ASSERT_TRUE(idx.erase(GlobalId(11)));

  const auto parts = idx.snapshot_parts();
  BinaryWriter image;
  image.write_vector(parts.header);
  image.write(std::uint64_t(parts.segments.size()));
  for (const auto& [seg_id, blob] : parts.segments) {
    image.write(seg_id);
    image.write_vector(blob);
  }
  image.write_vector(parts.delta);
  EXPECT_EQ(image.bytes(), idx.to_bytes());

  const auto clone =
      SegmentedIndex::from_parts(parts.header, parts.segments, parts.delta);
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->to_bytes(), idx.to_bytes());
}

TEST(SegmentedIndex, SegmentBlobsAreStableAcrossSnapshots) {
  auto w = data::make_sift_like(150, 4, 81);
  SegmentedIndex idx(w.base.slice(0, w.base.size()), small_params());
  idx.insert(w.queries.row_span(0), GlobalId(7000));
  const auto first = idx.snapshot_parts();
  ASSERT_TRUE(idx.erase(GlobalId(5)));  // mutates delta blob, not segments
  const auto second = idx.snapshot_parts();
  ASSERT_EQ(first.segments.size(), second.segments.size());
  for (std::size_t i = 0; i < first.segments.size(); ++i) {
    EXPECT_EQ(first.segments[i].first, second.segments[i].first);
    EXPECT_EQ(first.segments[i].second, second.segments[i].second);
  }
  EXPECT_NE(first.delta, second.delta);
}

}  // namespace
}  // namespace annsim::segment
