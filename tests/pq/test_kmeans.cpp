#include "annsim/pq/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "annsim/common/error.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::pq {
namespace {

TEST(KMeans, RecoversWellSeparatedClusters) {
  // 4 tight clusters far apart: k-means must put one centroid in each.
  data::Dataset d(400, 2);
  Rng rng(1);
  const float centers[4][2] = {{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  for (std::size_t i = 0; i < 400; ++i) {
    d.row(i)[0] = centers[i % 4][0] + float(rng.normal());
    d.row(i)[1] = centers[i % 4][1] + float(rng.normal());
  }
  KMeansParams p;
  p.k = 4;
  p.max_iters = 25;
  const auto res = kmeans(d, p);
  // Every centroid should sit within a few units of a true center, and all
  // four true centers should be claimed.
  std::set<int> claimed;
  for (std::size_t c = 0; c < 4; ++c) {
    float best = std::numeric_limits<float>::infinity();
    int which = -1;
    for (int t = 0; t < 4; ++t) {
      const float dx = res.centroids.row(c)[0] - centers[t][0];
      const float dy = res.centroids.row(c)[1] - centers[t][1];
      if (dx * dx + dy * dy < best) {
        best = dx * dx + dy * dy;
        which = t;
      }
    }
    EXPECT_LT(best, 25.f);
    claimed.insert(which);
  }
  EXPECT_EQ(claimed.size(), 4u);
}

TEST(KMeans, AssignmentsAreNearest) {
  auto w = data::make_sift_like(500, 1, 2);
  KMeansParams p;
  p.k = 8;
  const auto res = kmeans(w.base, p);
  ASSERT_EQ(res.assignment.size(), 500u);
  for (std::size_t i = 0; i < 50; ++i) {
    const float assigned =
        simd::l2_sq(w.base.row(i), res.centroids.row(res.assignment[i]), 128);
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_LE(assigned,
                simd::l2_sq(w.base.row(i), res.centroids.row(c), 128) + 1e-3f);
    }
  }
}

TEST(KMeans, InertiaImprovesOverSingleIteration) {
  auto w = data::make_deep_like(600, 1, 3);
  KMeansParams one;
  one.k = 16;
  one.max_iters = 1;
  KMeansParams many = one;
  many.max_iters = 20;
  EXPECT_LE(kmeans(w.base, many).inertia, kmeans(w.base, one).inertia);
}

TEST(KMeans, DeterministicAcrossRuns) {
  auto w = data::make_sift_like(300, 1, 4);
  KMeansParams p;
  p.k = 8;
  const auto a = kmeans(w.base, p);
  const auto b = kmeans(w.base, p);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, ParallelMatchesSerial) {
  auto w = data::make_sift_like(400, 1, 5);
  KMeansParams p;
  p.k = 8;
  ThreadPool pool(4);
  const auto serial = kmeans(w.base, p);
  const auto parallel = kmeans(w.base, p, &pool);
  EXPECT_EQ(serial.assignment, parallel.assignment);
}

TEST(KMeans, KEqualsNPutsOneCentroidPerPoint) {
  data::Dataset d(8, 2);
  Rng rng(6);
  for (std::size_t i = 0; i < 8; ++i) {
    d.row(i)[0] = float(i) * 10;
    d.row(i)[1] = float(rng.normal());
  }
  KMeansParams p;
  p.k = 8;
  p.max_iters = 10;
  const auto res = kmeans(d, p);
  EXPECT_NEAR(res.inertia, 0.0, 1e-6);
}

TEST(KMeans, RejectsTooFewPoints) {
  data::Dataset d(3, 2);
  KMeansParams p;
  p.k = 4;
  EXPECT_THROW((void)kmeans(d, p), Error);
}

TEST(KMeans, HandlesDuplicateHeavyData) {
  // Many duplicates force empty clusters; the re-seeding path must not
  // produce NaNs or infinite loops.
  data::Dataset d(100, 2);
  for (std::size_t i = 0; i < 90; ++i) d.row(i)[0] = 1.f;  // 90 identical
  for (std::size_t i = 90; i < 100; ++i) d.row(i)[0] = float(i);
  KMeansParams p;
  p.k = 8;
  const auto res = kmeans(d, p);
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(std::isfinite(res.centroids.row(c)[j]));
    }
  }
}

}  // namespace
}  // namespace annsim::pq
