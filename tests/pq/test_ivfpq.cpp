#include "annsim/pq/ivfpq_index.hpp"

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/hnsw/hnsw_index.hpp"

namespace annsim::pq {
namespace {

IvfPqParams small_params() {
  IvfPqParams p;
  p.nlist = 32;
  p.nprobe = 8;
  p.pq.m = 4;   // coarse codes: 32 bits/vector, a visible error floor
  p.pq.ks = 16;
  p.pq.train_iters = 8;
  return p;
}

/// Recall by id overlap only — the distance-tie credit in recall_at_k
/// assumes exact distances, which ADC approximations would game.
double id_recall(const data::KnnResults& results, const data::KnnResults& gt,
                 std::size_t k) {
  double sum = 0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < std::min(k, results[q].size()); ++i) {
      for (std::size_t j = 0; j < std::min(k, gt[q].size()); ++j) {
        if (results[q][i].id == gt[q][j].id) {
          ++hits;
          break;
        }
      }
    }
    sum += double(hits) / double(k);
  }
  return sum / double(results.size());
}

struct Fixture {
  data::Workload w = data::make_sift_like(4000, 60, 21);
  data::KnnResults gt =
      data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  IvfPqIndex index = IvfPqIndex::build(w.base, small_params());
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(IvfPq, BuildsAndReportsShape) {
  const auto& f = fixture();
  EXPECT_EQ(f.index.size(), 4000u);
  EXPECT_EQ(f.index.dim(), 128u);
}

TEST(IvfPq, CompressionIsReal) {
  const auto& f = fixture();
  const std::size_t raw = 4000 * 128 * sizeof(float);
  // Codes are 8 bytes/vector vs 512 raw; overall footprint (incl. ids and
  // codebooks) must be far below the raw vectors.
  EXPECT_LT(f.index.memory_bytes(), raw / 4);
}

TEST(IvfPq, ReasonableRecallAtModerateProbes) {
  const auto& f = fixture();
  data::KnnResults results(f.w.queries.size());
  for (std::size_t q = 0; q < f.w.queries.size(); ++q) {
    results[q] = f.index.search(f.w.queries.row(q), 10);
  }
  const double recall = id_recall(results, f.gt, 10);
  // The fixture's codes are deliberately coarse (32 bits/vector) to expose
  // the recall ceiling; even so, recall is ~50x above the chance level
  // (10 / 4000 = 0.0025).
  EXPECT_GT(recall, 0.1);
}

TEST(IvfPq, MoreProbesImproveRecallThenPlateau) {
  // §V-F's claim in miniature: recall grows with nprobe but hits a ceiling
  // well below perfect — the quantization error floor.
  const auto& f = fixture();
  auto recall_at = [&](std::size_t nprobe) {
    data::KnnResults results(f.w.queries.size());
    for (std::size_t q = 0; q < f.w.queries.size(); ++q) {
      results[q] = f.index.search(f.w.queries.row(q), 10, nprobe);
    }
    return id_recall(results, f.gt, 10);
  };
  const double r1 = recall_at(1);
  const double r8 = recall_at(8);
  const double r32 = recall_at(32);  // scans every list: the ceiling
  EXPECT_LE(r1, r8 + 1e-9);
  EXPECT_LE(r8, r32 + 1e-9);
  EXPECT_LT(r32, 0.98);  // the plateau: even exhaustive probing can't recover

  // The uncompressed local index clears that ceiling on the same corpus.
  hnsw::HnswParams hp;
  hp.M = 16;
  hp.ef_construction = 100;
  hnsw::HnswIndex hnsw_index(&f.w.base, hp);
  hnsw_index.build();
  const double hnsw_recall =
      id_recall(hnsw_index.search_batch(f.w.queries, 10, 256), f.gt, 10);
  EXPECT_GT(hnsw_recall, r32);
}

TEST(IvfPq, ResultsSortedUniqueIds) {
  const auto& f = fixture();
  for (std::size_t q = 0; q < 10; ++q) {
    auto res = f.index.search(f.w.queries.row(q), 20);
    for (std::size_t i = 1; i < res.size(); ++i) {
      EXPECT_LE(res[i - 1].dist, res[i].dist);
      EXPECT_NE(res[i - 1].id, res[i].id);
    }
  }
}

TEST(IvfPq, UsesGlobalIds) {
  auto w = data::make_sift_like(600, 5, 22);
  for (std::size_t i = 0; i < w.base.size(); ++i) w.base.set_id(i, 5000 + i);
  auto index = IvfPqIndex::build(w.base, small_params());
  auto res = index.search(w.queries.row(0), 5);
  ASSERT_FALSE(res.empty());
  for (const auto& nb : res) EXPECT_GE(nb.id, 5000u);
}

TEST(IvfPq, NprobeZeroUsesDefault) {
  const auto& f = fixture();
  auto def = f.index.search(f.w.queries.row(0), 10, 0);
  auto expl = f.index.search(f.w.queries.row(0), 10, 8);
  EXPECT_EQ(def, expl);
}

TEST(IvfPq, ValidatesBuildInputs) {
  data::Dataset tiny(4, 16);
  IvfPqParams p = small_params();
  p.nlist = 32;
  EXPECT_THROW((void)IvfPqIndex::build(tiny, p), Error);
}

}  // namespace
}  // namespace annsim::pq
