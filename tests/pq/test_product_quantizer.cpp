#include "annsim/pq/product_quantizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "annsim/common/error.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::pq {
namespace {

PqParams small_params() {
  PqParams p;
  p.m = 8;
  p.ks = 16;  // small codebooks keep tests fast
  p.train_iters = 8;
  return p;
}

TEST(ProductQuantizer, ValidatesParams) {
  auto w = data::make_sift_like(300, 1, 11);
  PqParams p = small_params();
  p.m = 7;  // 128 % 7 != 0
  EXPECT_THROW((void)ProductQuantizer::train(w.base, p), Error);
  p = small_params();
  p.ks = 512;  // > 8-bit codes
  EXPECT_THROW((void)ProductQuantizer::train(w.base, p), Error);
}

TEST(ProductQuantizer, CodeShape) {
  auto w = data::make_sift_like(300, 5, 12);
  const auto pq = ProductQuantizer::train(w.base, small_params());
  EXPECT_EQ(pq.dim(), 128u);
  EXPECT_EQ(pq.m(), 8u);
  EXPECT_EQ(pq.sub_dim(), 16u);
  const auto code = pq.encode(w.base.row(0));
  EXPECT_EQ(code.size(), 8u);
  for (auto c : code) EXPECT_LT(c, 16);
}

TEST(ProductQuantizer, ReconstructionReducesError) {
  // Decoding a code must approximate the original far better than a random
  // other vector does.
  auto w = data::make_sift_like(1000, 1, 13);
  const auto pq = ProductQuantizer::train(w.base, small_params());
  double err = 0, baseline = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto code = pq.encode(w.base.row(i));
    const auto rec = pq.decode(code.data());
    err += simd::l2_sq(w.base.row(i), rec.data(), 128);
    baseline += simd::l2_sq(w.base.row(i), w.base.row((i + 500) % 1000), 128);
  }
  EXPECT_LT(err, baseline * 0.25);
}

TEST(ProductQuantizer, AdcMatchesSymmetricDistanceToReconstruction) {
  // ADC(q, code) must equal ||q - decode(code)||^2 exactly (same centroids).
  auto w = data::make_sift_like(500, 10, 14);
  const auto pq = ProductQuantizer::train(w.base, small_params());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto table = pq.adc_table(w.queries.row(q));
    const auto code = pq.encode(w.base.row(q * 3));
    const auto rec = pq.decode(code.data());
    const float adc = pq.adc_distance(table, code.data());
    const float direct = simd::l2_sq(w.queries.row(q), rec.data(), 128);
    EXPECT_NEAR(adc, direct, 1e-1f + direct * 1e-4f);
  }
}

TEST(ProductQuantizer, AdcPreservesRankingRoughly) {
  // The ADC nearest neighbor should be among the true near neighbors much
  // more often than chance.
  auto w = data::make_sift_like(1000, 20, 15);
  const auto pq = ProductQuantizer::train(w.base, small_params());
  const auto codes = pq.encode_dataset(w.base);
  std::size_t good = 0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const auto table = pq.adc_table(w.queries.row(q));
    std::size_t best = 0;
    float best_d = std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < w.base.size(); ++i) {
      const float d = pq.adc_distance(table, codes.data() + i * pq.m());
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    // True rank of the ADC winner.
    const float true_d = simd::l2_sq(w.queries.row(q), w.base.row(best), 128);
    std::size_t rank = 0;
    for (std::size_t i = 0; i < w.base.size(); ++i) {
      if (simd::l2_sq(w.queries.row(q), w.base.row(i), 128) < true_d) ++rank;
    }
    if (rank < 20) ++good;
  }
  EXPECT_GE(good, w.queries.size() / 2);  // far above the ~2% chance level
}

TEST(ProductQuantizer, EncodeDatasetMatchesPerVector) {
  auto w = data::make_sift_like(200, 1, 16);
  const auto pq = ProductQuantizer::train(w.base, small_params());
  const auto codes = pq.encode_dataset(w.base);
  ASSERT_EQ(codes.size(), 200u * 8u);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto single = pq.encode(w.base.row(i));
    for (std::size_t s = 0; s < 8; ++s) {
      EXPECT_EQ(codes[i * 8 + s], single[s]);
    }
  }
}

TEST(ProductQuantizer, SerializeRoundTrip) {
  auto w = data::make_sift_like(300, 5, 17);
  const auto pq = ProductQuantizer::train(w.base, small_params());
  BinaryWriter wtr;
  pq.serialize(wtr);
  auto bytes = wtr.take();
  BinaryReader rd(bytes);
  const auto back = ProductQuantizer::deserialize(rd);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(back.encode(w.base.row(i)), pq.encode(w.base.row(i)));
  }
}

TEST(ProductQuantizer, DeserializeRejectsBadMagic) {
  BinaryWriter w;
  w.write(std::uint32_t{0});
  auto bytes = w.take();
  BinaryReader r(bytes);
  EXPECT_THROW((void)ProductQuantizer::deserialize(r), Error);
}

}  // namespace
}  // namespace annsim::pq
