#include "annsim/des/construction_model.hpp"

#include <gtest/gtest.h>

namespace annsim::des {
namespace {

ConstructionModelConfig sift1b(std::size_t cores) {
  ConstructionModelConfig c;
  c.n_points = 1'000'000'000;
  c.dim = 128;
  c.n_cores = cores;
  c.costs = cluster::default_costs();
  return c;
}

TEST(ConstructionModel, ComponentsArePositive) {
  auto est = estimate_construction(sift1b(256));
  EXPECT_GT(est.total_seconds, 0.0);
  EXPECT_GT(est.hnsw_seconds, 0.0);
  EXPECT_GT(est.vp_tree_seconds, 0.0);
  EXPECT_GT(est.load_seconds, 0.0);
  EXPECT_GT(est.startup_seconds, 0.0);
  EXPECT_NEAR(est.total_seconds,
              est.hnsw_seconds + est.vp_tree_seconds + est.load_seconds +
                  est.startup_seconds,
              1e-9);
}

TEST(ConstructionModel, HnswTimeDropsSteeplyWithCores) {
  // Table II: HNSW construction 17.6 min at 256 cores -> 4.3 min at 8192.
  const auto e256 = estimate_construction(sift1b(256));
  const auto e8192 = estimate_construction(sift1b(8192));
  EXPECT_GT(e256.hnsw_seconds / e8192.hnsw_seconds, 10.0);
}

TEST(ConstructionModel, TotalTimeDecreasesWithCores) {
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t cores : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    const auto est = estimate_construction(sift1b(cores));
    EXPECT_LT(est.total_seconds, prev) << "cores=" << cores;
    prev = est.total_seconds;
  }
}

TEST(ConstructionModel, NonHnswShareGrowsWithCores) {
  // Table II: Total - HNSW grows from ~3.9 min (256) to ~10.4 min (8192).
  const auto e256 = estimate_construction(sift1b(256));
  const auto e8192 = estimate_construction(sift1b(8192));
  const double other256 = e256.total_seconds - e256.hnsw_seconds;
  const double other8192 = e8192.total_seconds - e8192.hnsw_seconds;
  EXPECT_GT(other8192, other256);
}

TEST(ConstructionModel, RejectsNonPowerOfTwo) {
  auto cfg = sift1b(300);
  EXPECT_THROW((void)estimate_construction(cfg), Error);
}

TEST(ConstructionModel, ScalesWithDatasetSize) {
  auto big = sift1b(1024);
  auto small = sift1b(1024);
  small.n_points = 10'000'000;
  EXPECT_GT(estimate_construction(big).hnsw_seconds,
            estimate_construction(small).hnsw_seconds);
}

}  // namespace
}  // namespace annsim::des
