#include "annsim/des/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace annsim::des {
namespace {

TEST(EventQueue, ProcessesInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule(3.0, [&] { order.push_back(3); });
  eq.schedule(1.0, [&] { order.push_back(1); });
  eq.schedule(2.0, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue eq;
  double seen = -1;
  eq.schedule(5.5, [&] { seen = eq.now(); });
  eq.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(eq.now(), 5.5);
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue eq;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) eq.schedule_in(1.0, hop);
  };
  eq.schedule(0.0, hop);
  eq.run();
  EXPECT_EQ(hops, 5);
  EXPECT_DOUBLE_EQ(eq.now(), 4.0);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue eq;
  double when = -1;
  eq.schedule(2.0, [&] { eq.schedule_in(3.0, [&] { when = eq.now(); }); });
  eq.run();
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(EventQueue, EmptyQueueRunsInstantly) {
  EventQueue eq;
  eq.run();
  EXPECT_TRUE(eq.empty());
  EXPECT_DOUBLE_EQ(eq.now(), 0.0);
}

}  // namespace
}  // namespace annsim::des
