#include "annsim/des/search_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"

namespace annsim::des {
namespace {

/// Uniform plans: every query probes `probes` random partitions.
std::vector<std::vector<PartitionId>> uniform_plans(std::size_t nq,
                                                    std::size_t n_parts,
                                                    std::size_t probes,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<PartitionId>> plans(nq);
  for (auto& plan : plans) {
    while (plan.size() < probes) {
      const auto p = PartitionId(rng.uniform_below(n_parts));
      if (std::find(plan.begin(), plan.end(), p) == plan.end()) {
        plan.push_back(p);
      }
    }
  }
  return plans;
}

/// Skewed plans: all queries hammer partition 0 (worst-case imbalance).
std::vector<std::vector<PartitionId>> skewed_plans(std::size_t nq) {
  return {nq, std::vector<PartitionId>{0}};
}

SearchSimConfig config(std::size_t cores) {
  SearchSimConfig c;
  c.n_cores = cores;
  return c;
}

TEST(SearchSim, JobConservation) {
  const auto plans = uniform_plans(500, 64, 4, 1);
  const std::vector<double> cost(64, 1e-4);
  auto res = simulate_search(config(64), plans, cost);
  EXPECT_EQ(res.total_jobs, 2000u);
  const auto sum = std::accumulate(res.jobs_per_core.begin(),
                                   res.jobs_per_core.end(), std::uint64_t{0});
  EXPECT_EQ(sum, 2000u);
  EXPECT_NEAR(res.compute_seconds, 2000 * 1e-4, 1e-9);
}

TEST(SearchSim, MakespanAtLeastCriticalPath) {
  const auto plans = skewed_plans(100);
  const std::vector<double> cost(16, 1e-3);
  auto res = simulate_search(config(16), plans, cost);
  // All 100 jobs target partition 0's node (24 cores, but only jobs for one
  // node): lower bound = 100 jobs / 16 available... in fact all jobs land on
  // node 0 which hosts all 16 cores, so >= 100/16 * 1ms.
  EXPECT_GE(res.makespan_seconds, 100.0 / 16.0 * 1e-3 * 0.99);
}

TEST(SearchSim, MoreCoresReduceMakespan) {
  const std::vector<double> cost(1024, 5e-4);
  const auto plans256 = uniform_plans(2000, 256, 4, 2);
  const auto plans1024 = uniform_plans(2000, 1024, 4, 2);
  auto r256 = simulate_search(config(256), plans256, cost);
  auto r1024 = simulate_search(config(1024), plans1024, cost);
  EXPECT_LT(r1024.makespan_seconds, r256.makespan_seconds);
}

TEST(SearchSim, NearLinearScalingInTheDenseRegime) {
  // Plenty of jobs per core: doubling cores should give ~2x speedup.
  const std::vector<double> cost(512, 1e-3);
  auto r64 = simulate_search(config(64), uniform_plans(5000, 64, 4, 3), cost);
  auto r128 = simulate_search(config(128), uniform_plans(5000, 128, 4, 3), cost);
  const double speedup = r64.makespan_seconds / r128.makespan_seconds;
  EXPECT_GT(speedup, 1.6);
  EXPECT_LT(speedup, 2.4);
}

TEST(SearchSim, ReplicationFlattensSkewedLoad) {
  // The Fig 4 mechanism: replication spreads a hot partition's queries over
  // its workgroup. With the default cyclic rank placement, consecutive
  // cores live on distinct nodes, so the r=5 workgroup of the hot partition
  // engages five nodes instead of one.
  std::vector<std::vector<PartitionId>> plans;
  Rng rng(4);
  for (int q = 0; q < 2000; ++q) {
    const auto p = rng.uniform() < 0.8 ? PartitionId(23)
                                       : PartitionId(rng.uniform_below(256));
    plans.push_back({p});
  }
  const std::vector<double> cost(256, 1e-3);
  auto cfg = config(256);
  cfg.replication = 1;
  auto base = simulate_search(cfg, plans, cost);
  cfg.replication = 5;
  auto repl = simulate_search(cfg, plans, cost);

  EXPECT_LT(repl.makespan_seconds, base.makespan_seconds);
  const auto max_base = *std::max_element(base.jobs_per_core.begin(),
                                          base.jobs_per_core.end());
  const auto max_repl = *std::max_element(repl.jobs_per_core.begin(),
                                          repl.jobs_per_core.end());
  EXPECT_LT(max_repl, max_base);
}

TEST(SearchSim, OneSidedRemovesMasterMergeBottleneck) {
  // Two-sided returns serialize at the master; one-sided must be at least as
  // fast, and strictly faster when results are plentiful.
  const auto plans = uniform_plans(20000, 1024, 4, 5);
  const std::vector<double> cost(1024, 2e-4);
  auto cfg = config(1024);
  cfg.one_sided = false;
  auto two = simulate_search(cfg, plans, cost);
  cfg.one_sided = true;
  auto one = simulate_search(cfg, plans, cost);
  EXPECT_LT(one.makespan_seconds, two.makespan_seconds);
  EXPECT_LT(one.master_busy_seconds, two.master_busy_seconds);
}

TEST(SearchSim, BreakdownFractionsSumToOne) {
  const auto plans = uniform_plans(1000, 128, 4, 6);
  const std::vector<double> cost(128, 1e-3);
  auto res = simulate_search(config(128), plans, cost);
  EXPECT_NEAR(res.computation_fraction + res.communication_fraction +
                  res.idle_fraction,
              1.0, 1e-9);
  EXPECT_GT(res.computation_fraction, 0.0);
  EXPECT_GT(res.communication_fraction, 0.0);
  // Fig 5's claim in the dense regime: communication is a small share.
  EXPECT_LT(res.communication_fraction, 0.1);
}

TEST(SearchSim, EmptyPlansDegenerate) {
  const std::vector<double> cost(8, 1e-4);
  auto res = simulate_search(config(8), {}, cost);
  EXPECT_EQ(res.total_jobs, 0u);
  EXPECT_DOUBLE_EQ(res.compute_seconds, 0.0);
}

TEST(SearchSim, ValidatesInputs) {
  const std::vector<double> cost(4, 1e-4);
  auto cfg = config(8);  // cost vector too small
  EXPECT_THROW((void)simulate_search(cfg, {}, cost), Error);
  cfg = config(8);
  cfg.replication = 9;
  const std::vector<double> ok(8, 1e-4);
  EXPECT_THROW((void)simulate_search(cfg, {}, ok), Error);
}

TEST(SearchSim, DeterministicReplay) {
  const auto plans = uniform_plans(300, 64, 3, 7);
  const std::vector<double> cost(64, 1e-4);
  auto a = simulate_search(config(64), plans, cost);
  auto b = simulate_search(config(64), plans, cost);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.jobs_per_core, b.jobs_per_core);
}

}  // namespace
}  // namespace annsim::des
