/// Property sweeps of the performance simulator: invariants that must hold
/// across the whole configuration space the benches explore.

#include <gtest/gtest.h>

#include <numeric>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/des/search_sim.hpp"

namespace annsim::des {
namespace {

std::vector<std::vector<PartitionId>> random_plans(std::size_t nq,
                                                   std::size_t parts,
                                                   std::size_t probes,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<PartitionId>> plans(nq);
  for (auto& p : plans) {
    while (p.size() < probes) {
      const auto c = PartitionId(rng.uniform_below(parts));
      if (std::find(p.begin(), p.end(), c) == p.end()) p.push_back(c);
    }
  }
  return plans;
}

struct Case {
  std::size_t cores;
  std::size_t replication;
  bool one_sided;
  bool cyclic;
};

class SimSweep : public ::testing::TestWithParam<Case> {};

TEST_P(SimSweep, InvariantsHold) {
  const Case c = GetParam();
  const auto plans = random_plans(800, c.cores, 3, c.cores * 7 + 1);
  const std::vector<double> cost(c.cores, 3e-4);

  SearchSimConfig cfg;
  cfg.n_cores = c.cores;
  cfg.replication = c.replication;
  cfg.one_sided = c.one_sided;
  cfg.cyclic_rank_mapping = c.cyclic;
  const auto res = simulate_search(cfg, plans, cost);

  // Conservation.
  EXPECT_EQ(res.total_jobs, 800u * 3u);
  EXPECT_EQ(std::accumulate(res.jobs_per_core.begin(), res.jobs_per_core.end(),
                            std::uint64_t{0}),
            res.total_jobs);
  EXPECT_NEAR(res.compute_seconds, 2400 * 3e-4, 1e-9);

  // Makespan bounds: at least the critical compute path per core, at most
  // a fully serialized execution.
  const double per_core = res.compute_seconds / double(c.cores);
  EXPECT_GE(res.makespan_seconds, per_core * 0.99);
  EXPECT_LE(res.makespan_seconds, res.compute_seconds + 1.0);

  // Busy time never exceeds makespan on any core.
  for (double b : res.busy_per_core) {
    EXPECT_LE(b, res.makespan_seconds * (1.0 + 1e-9));
  }

  // Breakdown is a partition of unity.
  EXPECT_NEAR(res.computation_fraction + res.communication_fraction +
                  res.idle_fraction,
              1.0, 1e-9);
  EXPECT_GE(res.idle_fraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimSweep,
    ::testing::Values(Case{16, 1, true, true}, Case{16, 1, false, true},
                      Case{16, 4, true, true}, Case{64, 1, true, false},
                      Case{64, 5, false, true}, Case{256, 1, true, true},
                      Case{256, 3, true, false}, Case{1024, 5, true, true}));

TEST(SimProperties, ReplicationNeverChangesJobTotals) {
  const auto plans = random_plans(500, 64, 4, 9);
  const std::vector<double> cost(64, 1e-4);
  SearchSimConfig cfg;
  cfg.n_cores = 64;
  std::uint64_t jobs = 0;
  for (std::size_t r = 1; r <= 5; ++r) {
    cfg.replication = r;
    const auto res = simulate_search(cfg, plans, cost);
    if (r == 1) jobs = res.total_jobs;
    EXPECT_EQ(res.total_jobs, jobs) << "r=" << r;
  }
}

TEST(SimProperties, HeavierJobsScaleMakespanProportionally) {
  const auto plans = random_plans(2000, 128, 4, 10);
  SearchSimConfig cfg;
  cfg.n_cores = 128;
  const auto cheap = simulate_search(cfg, plans, std::vector<double>(128, 1e-4));
  const auto costly = simulate_search(cfg, plans, std::vector<double>(128, 1e-3));
  const double ratio = costly.makespan_seconds / cheap.makespan_seconds;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 15.0);
}

TEST(SimProperties, PerPartitionCostsAreRespected) {
  // One expensive partition dominates the makespan when all queries hit it.
  SearchSimConfig cfg;
  cfg.n_cores = 16;
  std::vector<double> cost(16, 1e-5);
  cost[7] = 1e-2;
  std::vector<std::vector<PartitionId>> plans(100, {PartitionId(7)});
  const auto res = simulate_search(cfg, plans, cost);
  EXPECT_GE(res.makespan_seconds, 100.0 / 16.0 * 1e-2 * 0.99);
}

TEST(SimProperties, QueryLatencyTracksCompletion) {
  const auto plans = random_plans(200, 32, 3, 12);
  SearchSimConfig cfg;
  cfg.n_cores = 32;
  const std::vector<double> cost(32, 2e-4);
  const auto res = simulate_search(cfg, plans, cost);
  ASSERT_EQ(res.query_latency.size(), 200u);
  double max_lat = 0.0;
  for (double l : res.query_latency) {
    EXPECT_GT(l, 0.0);
    EXPECT_LE(l, res.makespan_seconds + 1e-9);
    max_lat = std::max(max_lat, l);
  }
  // The slowest query essentially defines the makespan (modulo the
  // one-sided final window read).
  EXPECT_GE(max_lat, res.makespan_seconds * 0.5);
}

TEST(SimProperties, LaterQueriesFinishNoEarlierOnAverage) {
  // Dispatch order matters: the master routes queries sequentially, so the
  // last decile of queries must on average complete later than the first.
  const auto plans = random_plans(1000, 64, 4, 13);
  SearchSimConfig cfg;
  cfg.n_cores = 64;
  const std::vector<double> cost(64, 5e-4);
  const auto res = simulate_search(cfg, plans, cost);
  double first = 0, last = 0;
  for (std::size_t q = 0; q < 100; ++q) first += res.query_latency[q];
  for (std::size_t q = 900; q < 1000; ++q) last += res.query_latency[q];
  EXPECT_GT(last, first);
}

TEST(SimProperties, MasterBusyAccountsAllPhases) {
  const auto plans = random_plans(300, 32, 2, 11);
  SearchSimConfig cfg;
  cfg.n_cores = 32;
  cfg.route_seconds = 1e-5;
  const std::vector<double> cost(32, 1e-4);
  const auto res = simulate_search(cfg, plans, cost);
  EXPECT_GE(res.master_busy_seconds, 300 * 1e-5);  // at least routing
}

}  // namespace
}  // namespace annsim::des
