/// \file test_hnsw_flat.cpp
/// \brief Differential suite for the frozen FlatGraph representation: the
/// read-optimized search path (CSR slab, batched kernels, deferred sqrt) must
/// be bit-identical to the mutable linked-graph path, and serialization must
/// round-trip through the flat form losslessly.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/hnsw/hnsw_index.hpp"

namespace annsim::hnsw {
namespace {

HnswParams test_params(simd::Metric metric) {
  HnswParams p;
  p.M = 10;
  p.ef_construction = 60;
  p.ef_search = 48;
  p.seed = 4242;
  p.metric = metric;
  return p;
}

/// Builds the same graph twice: once via build() (which freezes into the
/// flat form) and once via a manual insert loop (which stays on the mutable
/// linked form). Identical params + seed + single-threaded insertion order
/// give identical graphs, so any search divergence is a bug in the flat path.
struct GraphPair {
  HnswIndex frozen;
  HnswIndex linked;

  GraphPair(const data::Dataset& base, simd::Metric metric)
      : frozen(&base, test_params(metric)), linked(&base, test_params(metric)) {
    frozen.build();  // single-threaded: deterministic insertion order
    for (std::size_t i = 0; i < base.size(); ++i) linked.insert(LocalId(i));
  }
};

void expect_identical_results(const std::vector<Neighbor>& a,
                              const std::vector<Neighbor>& b,
                              const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << what << " pos " << i;
    EXPECT_EQ(a[i].dist, b[i].dist) << what << " pos " << i;  // bit-identical
  }
}

class FlatDifferential : public ::testing::TestWithParam<simd::Metric> {};

TEST_P(FlatDifferential, FlatSearchBitIdenticalToLinked) {
  const auto metric = GetParam();
  auto w = data::make_sift_like(1200, 40, 31);
  GraphPair pair(w.base, metric);
  ASSERT_TRUE(pair.frozen.is_frozen());
  ASSERT_FALSE(pair.linked.is_frozen());

  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    for (std::size_t ef : {std::size_t(10), std::size_t(48), std::size_t(96)}) {
      auto rf = pair.frozen.search(w.queries.row(q), 10, ef);
      auto rl = pair.linked.search(w.queries.row(q), 10, ef);
      expect_identical_results(rf, rl, simd::metric_name(metric));
    }
  }
}

TEST_P(FlatDifferential, FreezingTheLinkedGraphChangesNothing) {
  const auto metric = GetParam();
  auto w = data::make_deep_like(600, 20, 17);
  GraphPair pair(w.base, metric);

  std::vector<std::vector<Neighbor>> before;
  for (std::size_t q = 0; q < w.queries.size(); ++q)
    before.push_back(pair.linked.search(w.queries.row(q), 8));

  pair.linked.freeze();
  EXPECT_TRUE(pair.linked.is_frozen());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto after = pair.linked.search(w.queries.row(q), 8);
    expect_identical_results(before[q], after, simd::metric_name(metric));
  }
}

TEST_P(FlatDifferential, BytesRoundTripPreservesResults) {
  const auto metric = GetParam();
  auto w = data::make_sift_like(800, 25, 53);
  HnswIndex index(&w.base, test_params(metric));
  index.build();

  auto bytes = index.to_bytes();
  auto restored = HnswIndex::from_bytes(bytes, &w.base);
  EXPECT_TRUE(restored.is_frozen());
  EXPECT_EQ(restored.size(), index.size());

  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto r0 = index.search(w.queries.row(q), 10);
    auto r1 = restored.search(w.queries.row(q), 10);
    expect_identical_results(r0, r1, simd::metric_name(metric));
  }
  // A second freeze-serialize cycle must be byte-stable.
  EXPECT_EQ(restored.to_bytes(), bytes);
}

INSTANTIATE_TEST_SUITE_P(Metrics, FlatDifferential,
                         ::testing::Values(simd::Metric::kL2, simd::Metric::kL1,
                                           simd::Metric::kInnerProduct,
                                           simd::Metric::kCosine),
                         [](const auto& param_info) {
                           return std::string(simd::metric_name(param_info.param));
                         });

TEST(HnswFlat, BuildFreezesAndInsertThrows) {
  auto w = data::make_sift_like(200, 5, 7);
  HnswIndex index(&w.base, test_params(simd::Metric::kL2));
  EXPECT_FALSE(index.is_frozen());
  index.build();
  EXPECT_TRUE(index.is_frozen());
  EXPECT_THROW(index.insert(0), Error);
}

TEST(HnswFlat, FreezeIsIdempotent) {
  auto w = data::make_sift_like(300, 5, 9);
  HnswIndex index(&w.base, test_params(simd::Metric::kL2));
  index.build();
  auto before = index.search(w.queries.row(0), 5);
  index.freeze();  // second call: no-op
  index.freeze();
  auto after = index.search(w.queries.row(0), 5);
  expect_identical_results(before, after, "idempotent freeze");
}

TEST(HnswFlat, EmptyIndexFreezesCleanly) {
  data::Dataset d(0, 8);
  HnswIndex index(&d, test_params(simd::Metric::kL2));
  index.build();
  EXPECT_TRUE(index.is_frozen());
  float q[8] = {};
  EXPECT_TRUE(index.search(q, 3).empty());
}

TEST(HnswFlat, StatsAgreeAcrossRepresentations) {
  auto w = data::make_sift_like(700, 5, 23);
  GraphPair pair(w.base, simd::Metric::kL2);
  const auto sf = pair.frozen.stats();
  const auto sl = pair.linked.stats();
  EXPECT_EQ(sf.n_nodes, sl.n_nodes);
  EXPECT_EQ(sf.max_level, sl.max_level);
  EXPECT_EQ(sf.nodes_per_level, sl.nodes_per_level);
  EXPECT_DOUBLE_EQ(sf.avg_degree_level0, sl.avg_degree_level0);
}

TEST(HnswFlat, SaveLoadThroughFlatForm) {
  auto w = data::make_sift_like(500, 10, 41);
  HnswIndex index(&w.base, test_params(simd::Metric::kL2));
  index.build();

  const auto path = (std::filesystem::temp_directory_path() /
                     ("annsim_flat_" + std::to_string(::getpid()) + ".idx"))
                        .string();
  index.save(path);
  auto loaded = HnswIndex::load(path, &w.base);
  std::filesystem::remove(path);

  EXPECT_TRUE(loaded.is_frozen());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto r0 = index.search(w.queries.row(q), 10);
    auto r1 = loaded.search(w.queries.row(q), 10);
    expect_identical_results(r0, r1, "save/load");
  }
}

}  // namespace
}  // namespace annsim::hnsw
