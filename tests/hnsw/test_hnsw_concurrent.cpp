/// \file test_hnsw_concurrent.cpp
/// \brief Concurrent insert + search on the mutable linked graph. Separate
/// binary so the TSan CI job can exercise it by name; the entry-point
/// snapshot race this guards against (entry_point/max_level read without
/// entry_mu) was TSan-visible before the fix.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "annsim/data/recipes.hpp"
#include "annsim/hnsw/hnsw_index.hpp"

namespace annsim::hnsw {
namespace {

TEST(HnswConcurrent, SearchDuringInsertIsRaceFree) {
  auto w = data::make_sift_like(1500, 20, 67);
  HnswParams p;
  p.M = 8;
  p.ef_construction = 40;
  p.seed = 99;
  HnswIndex index(&w.base, p);

  // Seed a few nodes so searches always have an entry point.
  constexpr std::size_t kSeeded = 32;
  for (std::size_t i = 0; i < kSeeded; ++i) index.insert(LocalId(i));

  std::atomic<bool> done{false};
  std::atomic<std::size_t> next{kSeeded};

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t n_writers = hw > 4 ? 3 : 2;
  const std::size_t n_readers = hw > 4 ? 3 : 2;

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < n_writers; ++t) {
    writers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= w.base.size()) break;
        index.insert(LocalId(i));
      }
    });
  }

  std::vector<std::thread> readers;
  std::atomic<std::size_t> searches{0};
  for (std::size_t t = 0; t < n_readers; ++t) {
    readers.emplace_back([&, t] {
      std::size_t q = t;
      while (!done.load(std::memory_order_acquire)) {
        auto res = index.search(w.queries.row(q % w.queries.size()), 5);
        EXPECT_LE(res.size(), 5u);
        for (std::size_t i = 1; i < res.size(); ++i)
          EXPECT_LE(res[i - 1].dist, res[i].dist);  // sorted output
        ++q;
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(index.size(), w.base.size());
  EXPECT_GT(searches.load(), 0u);

  // After quiescence the graph freezes; the frozen path must see every node.
  index.freeze();
  auto res = index.search(w.queries.row(0), 10, /*ef=*/64);
  EXPECT_EQ(res.size(), 10u);
}

TEST(HnswConcurrent, ParallelBuildThenConcurrentFrozenSearches) {
  auto w = data::make_sift_like(1200, 16, 5);
  HnswParams p;
  p.M = 8;
  p.ef_construction = 40;
  HnswIndex index(&w.base, p);
  ThreadPool pool(4);
  index.build(&pool);
  ASSERT_TRUE(index.is_frozen());

  // Frozen searches are lock-free; hammer them from several threads and
  // check they all agree with a single-threaded reference pass.
  std::vector<std::vector<Neighbor>> ref;
  for (std::size_t q = 0; q < w.queries.size(); ++q)
    ref.push_back(index.search(w.queries.row(q), 8));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 5; ++rep) {
        for (std::size_t q = 0; q < w.queries.size(); ++q) {
          auto res = index.search(w.queries.row(q), 8);
          ASSERT_EQ(res.size(), ref[q].size());
          for (std::size_t i = 0; i < res.size(); ++i) {
            EXPECT_EQ(res[i].id, ref[q][i].id);
            EXPECT_EQ(res[i].dist, ref[q][i].dist);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace annsim::hnsw
