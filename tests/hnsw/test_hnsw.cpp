#include "annsim/hnsw/hnsw_index.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::hnsw {
namespace {

const data::Workload& sift_workload() {
  static data::Workload w = data::make_sift_like(3000, 50, 77);
  return w;
}

HnswParams fast_params() {
  HnswParams p;
  p.M = 12;
  p.ef_construction = 80;
  p.ef_search = 64;
  return p;
}

TEST(Hnsw, RejectsBadParams) {
  data::Dataset d(10, 4);
  HnswParams p;
  p.M = 1;
  EXPECT_THROW(HnswIndex(&d, p), Error);
  p = HnswParams{};
  p.ef_construction = p.M - 1;
  EXPECT_THROW(HnswIndex(&d, p), Error);
}

TEST(Hnsw, EmptyIndexReturnsNothing) {
  data::Dataset d(0, 4);
  HnswIndex index(&d, fast_params());
  index.build();
  float q[4] = {0, 0, 0, 0};
  EXPECT_TRUE(index.search(q, 5).empty());
}

TEST(Hnsw, SingleElement) {
  data::Dataset d(1, 4);
  d.row(0)[0] = 1.f;
  HnswIndex index(&d, fast_params());
  index.build();
  float q[4] = {1.f, 0, 0, 0};
  auto res = index.search(q, 3);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 0u);
  EXPECT_NEAR(res[0].dist, 0.f, 1e-6f);
}

TEST(Hnsw, ExactOnTinySetWithFullBeam) {
  // With ef >= n the beam covers everything: results must be exact.
  auto w = data::make_deep_like(60, 10, 5);
  HnswIndex index(&w.base, fast_params());
  index.build();
  auto gt = data::brute_force_knn(w.base, w.queries, 5, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    auto res = index.search(w.queries.row(q), 5, /*ef=*/60);
    ASSERT_EQ(res.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(res[i].id, gt[q][i].id) << "query " << q << " pos " << i;
    }
  }
}

TEST(Hnsw, HighRecallOnSiftLike) {
  const auto& w = sift_workload();
  HnswIndex index(&w.base, fast_params());
  index.build();
  data::KnnResults results(w.queries.size());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    results[q] = index.search(w.queries.row(q), 10);
  }
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  EXPECT_GT(data::mean_recall(results, gt, 10), 0.9);
}

TEST(Hnsw, LargerEfImprovesRecall) {
  const auto& w = sift_workload();
  HnswIndex index(&w.base, fast_params());
  index.build();
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  auto run = [&](std::size_t ef) {
    data::KnnResults results(w.queries.size());
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      results[q] = index.search(w.queries.row(q), 10, ef);
    }
    return data::mean_recall(results, gt, 10);
  };
  const double lo = run(10);
  const double hi = run(200);
  EXPECT_GE(hi, lo);
  EXPECT_GT(hi, 0.95);
}

TEST(Hnsw, ResultsSortedAndUnique) {
  const auto& w = sift_workload();
  HnswIndex index(&w.base, fast_params());
  index.build();
  for (std::size_t q = 0; q < 10; ++q) {
    auto res = index.search(w.queries.row(q), 20);
    for (std::size_t i = 1; i < res.size(); ++i) {
      EXPECT_LE(res[i - 1].dist, res[i].dist);
      EXPECT_NE(res[i - 1].id, res[i].id);
    }
  }
}

TEST(Hnsw, ReportsGlobalIds) {
  auto w = data::make_sift_like(200, 5, 3);
  for (std::size_t i = 0; i < w.base.size(); ++i) {
    w.base.set_id(i, 1000 + i);
  }
  HnswIndex index(&w.base, fast_params());
  index.build();
  auto res = index.search(w.queries.row(0), 5);
  ASSERT_FALSE(res.empty());
  for (const auto& n : res) EXPECT_GE(n.id, 1000u);
}

TEST(Hnsw, DeterministicBuildWithSameSeed) {
  auto w = data::make_sift_like(500, 10, 4);
  HnswIndex a(&w.base, fast_params());
  HnswIndex b(&w.base, fast_params());
  a.build();
  b.build();
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(a.search(w.queries.row(q), 10), b.search(w.queries.row(q), 10));
  }
}

TEST(Hnsw, ParallelBuildMatchesQuality) {
  const auto& w = sift_workload();
  ThreadPool pool(4);
  HnswIndex index(&w.base, fast_params());
  index.build(&pool);
  EXPECT_EQ(index.size(), w.base.size());
  data::KnnResults results(w.queries.size());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    results[q] = index.search(w.queries.row(q), 10);
  }
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  EXPECT_GT(data::mean_recall(results, gt, 10), 0.85);
}

TEST(Hnsw, DoubleInsertThrows) {
  data::Dataset d(5, 4);
  HnswIndex index(&d, fast_params());
  index.insert(0);
  EXPECT_THROW(index.insert(0), Error);
}

TEST(Hnsw, StatsReflectStructure) {
  const auto& w = sift_workload();
  HnswIndex index(&w.base, fast_params());
  index.build();
  const auto s = index.stats();
  EXPECT_EQ(s.n_nodes, w.base.size());
  EXPECT_GE(s.max_level, 1);
  ASSERT_FALSE(s.nodes_per_level.empty());
  EXPECT_EQ(s.nodes_per_level[0], w.base.size());
  for (std::size_t l = 1; l < s.nodes_per_level.size(); ++l) {
    EXPECT_LE(s.nodes_per_level[l], s.nodes_per_level[l - 1]);
  }
  EXPECT_GT(s.avg_degree_level0, 1.0);
  EXPECT_LE(s.avg_degree_level0, double(2 * fast_params().M));
}

TEST(Hnsw, BytesRoundTripPreservesSearch) {
  auto w = data::make_sift_like(800, 10, 6);
  HnswIndex index(&w.base, fast_params());
  index.build();
  auto bytes = index.to_bytes();
  HnswIndex copy = HnswIndex::from_bytes(bytes, &w.base);
  EXPECT_EQ(copy.size(), index.size());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(copy.search(w.queries.row(q), 10),
              index.search(w.queries.row(q), 10));
  }
}

TEST(Hnsw, FileSaveLoadRoundTrip) {
  auto w = data::make_sift_like(400, 5, 8);
  HnswIndex index(&w.base, fast_params());
  index.build();
  const auto path = (std::filesystem::temp_directory_path() /
                     ("annsim_hnsw_" + std::to_string(::getpid()) + ".bin"))
                        .string();
  index.save(path);
  HnswIndex loaded = HnswIndex::load(path, &w.base);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(loaded.search(w.queries.row(q), 5),
              index.search(w.queries.row(q), 5));
  }
  std::filesystem::remove(path);
}

TEST(Hnsw, LoadRejectsWrongDataset) {
  auto w = data::make_sift_like(100, 2, 9);
  HnswIndex index(&w.base, fast_params());
  index.build();
  auto bytes = index.to_bytes();
  data::Dataset other(50, 128);
  EXPECT_THROW((void)HnswIndex::from_bytes(bytes, &other), Error);
}

/// Fig 6's knob: the index must build and search sensibly at every M the
/// paper sweeps.
class HnswMSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HnswMSweep, BuildsAndSearchesAtEveryM) {
  const std::size_t M = GetParam();
  auto w = data::make_sift_like(1000, 20, 10);
  HnswParams p;
  p.M = M;
  p.ef_construction = std::max<std::size_t>(M * 2, 60);
  p.ef_search = 50;
  HnswIndex index(&w.base, p);
  index.build();
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  data::KnnResults results(w.queries.size());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    results[q] = index.search(w.queries.row(q), 10);
  }
  EXPECT_GT(data::mean_recall(results, gt, 10), 0.6) << "M=" << M;
}

INSTANTIATE_TEST_SUITE_P(PaperMs, HnswMSweep, ::testing::Values(8, 16, 32, 64));

TEST(Hnsw, InsertAfterFreezeThrowsTypedError) {
  auto w = data::make_sift_like(100, 2, 33);
  HnswIndex index(&w.base, fast_params());
  index.build();  // build() freezes into the flat read-optimized graph
  ASSERT_TRUE(index.is_frozen());

  // The violation carries its own type so callers needing mutability (the
  // segmented delta) can distinguish "this index froze" from generic errors
  // and roll over to a fresh delta instead of failing the write.
  EXPECT_THROW(index.insert(LocalId(0)), FrozenIndexError);
  try {
    index.insert(LocalId(0));
    FAIL() << "insert after freeze must throw";
  } catch (const Error& e) {
    EXPECT_NE(dynamic_cast<const FrozenIndexError*>(&e), nullptr)
        << "FrozenIndexError must stay catchable through the Error base";
  }

  // Deserialized replicas come up frozen and enforce the same contract.
  auto clone = HnswIndex::from_bytes(index.to_bytes(), &w.base);
  ASSERT_TRUE(clone.is_frozen());
  EXPECT_THROW(clone.insert(LocalId(0)), FrozenIndexError);
}

TEST(BruteForceIndex, MatchesGroundTruth) {
  auto w = data::make_deep_like(300, 10, 11);
  BruteForceIndex index(&w.base, simd::Metric::kL2);
  auto gt = data::brute_force_knn(w.base, w.queries, 7, simd::Metric::kL2);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(index.search(w.queries.row(q), 7), gt[q]);
  }
}

}  // namespace
}  // namespace annsim::hnsw
