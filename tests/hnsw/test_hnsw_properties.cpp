/// Structural and statistical properties of the HNSW implementation beyond
/// end-to-end recall: level distribution, parameter effects, batch search,
/// and graph invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/hnsw/hnsw_index.hpp"

namespace annsim::hnsw {
namespace {

HnswParams params(std::size_t M = 12) {
  HnswParams p;
  p.M = M;
  p.ef_construction = 80;
  p.ef_search = 64;
  return p;
}

TEST(HnswProperties, LevelOccupancyDecaysGeometrically) {
  // With level_mult = 1/ln(M), P(level >= l) = M^-l: each level should hold
  // roughly a 1/M fraction of the one below.
  auto w = data::make_sift_like(8000, 1, 601);
  HnswIndex index(&w.base, params(12));
  index.build();
  const auto s = index.stats();
  ASSERT_GE(s.nodes_per_level.size(), 2u);
  const double ratio =
      double(s.nodes_per_level[1]) / double(s.nodes_per_level[0]);
  EXPECT_NEAR(ratio, 1.0 / 12.0, 0.035);
}

TEST(HnswProperties, LevelMultOverrideChangesHierarchyDepth) {
  auto w = data::make_sift_like(3000, 1, 602);
  HnswParams flat = params();
  flat.level_mult = 0.05;  // almost everything stays on layer 0
  HnswParams tall = params();
  tall.level_mult = 0.9;
  HnswIndex f(&w.base, flat);
  HnswIndex t(&w.base, tall);
  f.build();
  t.build();
  EXPECT_LT(f.stats().max_level, t.stats().max_level);
}

TEST(HnswProperties, GraphDegreesRespectCaps) {
  auto w = data::make_sift_like(3000, 1, 603);
  const std::size_t M = 10;
  HnswIndex index(&w.base, params(M));
  index.build();
  const auto s = index.stats();
  EXPECT_LE(s.avg_degree_level0, double(2 * M));
  EXPECT_GT(s.avg_degree_level0, 2.0);  // graph is actually connected
}

TEST(HnswProperties, SearchBatchMatchesSequentialSearch) {
  auto w = data::make_sift_like(2000, 50, 604);
  HnswIndex index(&w.base, params());
  index.build();
  auto batch = index.search_batch(w.queries, 10);
  ASSERT_EQ(batch.size(), w.queries.size());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(batch[q], index.search(w.queries.row(q), 10));
  }
}

TEST(HnswProperties, SearchBatchParallelMatchesSerial) {
  auto w = data::make_sift_like(2000, 50, 605);
  HnswIndex index(&w.base, params());
  index.build();
  ThreadPool pool(4);
  auto serial = index.search_batch(w.queries, 10);
  auto parallel = index.search_batch(w.queries, 10, 0, &pool);
  for (std::size_t q = 0; q < serial.size(); ++q) {
    EXPECT_EQ(serial[q], parallel[q]);
  }
}

TEST(HnswProperties, SearchBatchValidatesDim) {
  auto w = data::make_sift_like(500, 5, 606);
  HnswIndex index(&w.base, params());
  index.build();
  data::Dataset wrong(2, 64);
  EXPECT_THROW((void)index.search_batch(wrong, 5), Error);
}

TEST(HnswProperties, InsertionOrderInvariantQuality) {
  // Insert the same corpus in two different orders; both graphs must reach
  // comparable recall (the structure differs, the quality should not).
  auto w = data::make_sift_like(2000, 40, 607);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);

  HnswIndex fwd(&w.base, params());
  for (std::size_t i = 0; i < w.base.size(); ++i) fwd.insert(LocalId(i));
  HnswIndex rev(&w.base, params());
  for (std::size_t i = w.base.size(); i-- > 0;) rev.insert(LocalId(i));

  const double r_fwd = data::mean_recall(fwd.search_batch(w.queries, 10), gt, 10);
  const double r_rev = data::mean_recall(rev.search_batch(w.queries, 10), gt, 10);
  EXPECT_GT(r_fwd, 0.85);
  EXPECT_GT(r_rev, 0.85);
  EXPECT_NEAR(r_fwd, r_rev, 0.08);
}

TEST(HnswProperties, PartialIndexSearchesOnlyInserted) {
  auto w = data::make_sift_like(1000, 10, 608);
  HnswIndex index(&w.base, params());
  for (std::size_t i = 0; i < 100; ++i) index.insert(LocalId(i));
  EXPECT_EQ(index.size(), 100u);
  auto res = index.search(w.queries.row(0), 20);
  for (const auto& nb : res) EXPECT_LT(nb.id, 100u);
}

TEST(HnswProperties, DuplicatePointsHandled) {
  // Many identical vectors: the graph must still build and return each id
  // at distance 0 exactly once.
  data::Dataset d(64, 8);
  for (std::size_t i = 0; i < 32; ++i) d.row(i)[0] = 1.f;  // 32 duplicates
  for (std::size_t i = 32; i < 64; ++i) d.row(i)[0] = float(i);
  HnswIndex index(&d, params(4));
  index.build();
  float q[8] = {1.f, 0, 0, 0, 0, 0, 0, 0};
  auto res = index.search(q, 10, 64);
  ASSERT_EQ(res.size(), 10u);
  std::set<GlobalId> ids;
  for (const auto& nb : res) {
    EXPECT_NEAR(nb.dist, 0.f, 1e-6f);
    EXPECT_TRUE(ids.insert(nb.id).second);
  }
}

TEST(HnswProperties, MetricParameterHonored) {
  auto w = data::make_syn(800, 16, 0, 20, 609);
  HnswParams p = params();
  p.metric = simd::Metric::kL1;
  HnswIndex index(&w.base, p);
  index.build();
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL1);
  const double recall =
      data::mean_recall(index.search_batch(w.queries, 10, 128), gt, 10);
  EXPECT_GT(recall, 0.85);
}

/// Recall grows (weakly) with ef across a parameter sweep.
class EfSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EfSweep, RecallAtLeastFloor) {
  static auto w = data::make_sift_like(2000, 30, 610);
  static auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  static HnswIndex index = [] {
    HnswIndex idx(&w.base, params());
    idx.build();
    return idx;
  }();
  const std::size_t ef = GetParam();
  const double recall =
      data::mean_recall(index.search_batch(w.queries, 10, ef), gt, 10);
  // Coarse floors per beam width; exact values are data-dependent.
  const double floor = ef >= 128 ? 0.95 : ef >= 32 ? 0.8 : 0.45;
  EXPECT_GT(recall, floor) << "ef=" << ef;
}

INSTANTIATE_TEST_SUITE_P(Efs, EfSweep, ::testing::Values(10, 32, 64, 128, 256));

}  // namespace
}  // namespace annsim::hnsw
