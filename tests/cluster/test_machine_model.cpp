#include "annsim/cluster/machine_model.hpp"

#include <gtest/gtest.h>

namespace annsim::cluster {
namespace {

TEST(MachineModel, NodeMapping) {
  MachineModel m;  // 24 cores/node
  EXPECT_EQ(m.node_of_core(0), 0u);
  EXPECT_EQ(m.node_of_core(23), 0u);
  EXPECT_EQ(m.node_of_core(24), 1u);
  EXPECT_EQ(m.node_of_core(8191), 341u);
}

TEST(MachineModel, NodesForCoresRoundsUp) {
  MachineModel m;
  EXPECT_EQ(m.nodes_for_cores(1), 1u);
  EXPECT_EQ(m.nodes_for_cores(24), 1u);
  EXPECT_EQ(m.nodes_for_cores(25), 2u);
  EXPECT_EQ(m.nodes_for_cores(8192), 342u);
}

TEST(MachineModel, IntraNodeFasterThanInterNode) {
  MachineModel m;
  const double intra = m.message_seconds(0, 1, 1024);
  const double inter = m.message_seconds(0, 24, 1024);
  EXPECT_LT(intra, inter);
}

TEST(MachineModel, HockneyLatencyPlusBandwidth) {
  MachineParams p;
  p.inter_node_latency = 1e-6;
  p.inter_node_bandwidth = 1e9;
  MachineModel m(p);
  EXPECT_DOUBLE_EQ(m.message_seconds(0, 100, 0), 1e-6);
  EXPECT_DOUBLE_EQ(m.message_seconds(0, 100, 1000), 1e-6 + 1e-6);
}

TEST(MachineModel, MessageTimeMonotoneInSize) {
  MachineModel m;
  double prev = 0.0;
  for (std::size_t bytes : {0u, 64u, 4096u, 1u << 20}) {
    const double t = m.message_seconds(0, 100, bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(MachineModel, RmaCostsAtLeastLatency) {
  MachineModel m;
  EXPECT_GE(m.rma_seconds(0), m.params().rma_op_latency);
  EXPECT_GT(m.rma_seconds(1 << 20), m.rma_seconds(64));
}

}  // namespace
}  // namespace annsim::cluster
