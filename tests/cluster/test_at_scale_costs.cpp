/// The at-scale cost corrections feeding the performance plane: smooth
/// memory ramp, beam overrides, and the KD traversal overhead.

#include <gtest/gtest.h>

#include <cmath>

#include "annsim/cluster/calibration.hpp"

namespace annsim::cluster {
namespace {

TEST(AtScaleCosts, MemoryFactorIsOneWhenCacheResident) {
  const auto c = default_costs();
  EXPECT_DOUBLE_EQ(c.memory_factor(100), 1.0);
  EXPECT_DOUBLE_EQ(c.memory_factor(c.cache_resident_n), 1.0);
}

TEST(AtScaleCosts, MemoryFactorRampsSmoothly) {
  const auto c = default_costs();
  // The ramp is linear in log n: each doubling adds at most
  // (dram_penalty - 1) * ln2 / ln32 — no cliffs.
  const double max_step = (c.dram_penalty - 1.0) * std::log(2.0) /
                              std::log(32.0) +
                          1e-9;
  double prev = 1.0;
  for (std::size_t n = c.cache_resident_n; n < 100'000'000; n *= 2) {
    const double f = c.memory_factor(n);
    EXPECT_GE(f, prev);            // monotone
    EXPECT_LE(f, c.dram_penalty);  // bounded
    EXPECT_LE(f - prev, max_step);
    prev = f;
  }
  EXPECT_NEAR(c.memory_factor(1'000'000'000), c.dram_penalty, 1e-9);
}

TEST(AtScaleCosts, AtScaleQueryIncludesBeamAndMemory) {
  const auto c = default_costs();
  const std::size_t n = 1'000'000;
  EXPECT_NEAR(c.hnsw_query_seconds_at_scale(n),
              c.hnsw_query_seconds(n) * c.beam_ratio * c.memory_factor(n),
              1e-12);
}

TEST(AtScaleCosts, BeamOverrideReplacesDefault) {
  const auto c = default_costs();
  const std::size_t n = 500'000;
  EXPECT_NEAR(c.hnsw_query_seconds_at_scale(n, 2.0),
              c.hnsw_query_seconds_at_scale(n) * 2.0 / c.beam_ratio, 1e-12);
}

TEST(AtScaleCosts, ExactScanScalesWithFraction) {
  const auto c = default_costs();
  const std::size_t n = 200'000;
  EXPECT_NEAR(c.exact_search_seconds_at_scale(n, 0.5),
              c.exact_search_seconds_at_scale(n, 1.0) * 0.5, 1e-12);
}

TEST(AtScaleCosts, ExactScanIncludesTraversalOverhead) {
  auto c = default_costs();
  const std::size_t n = 200'000;
  const double with3 = c.exact_search_seconds_at_scale(n, 1.0);
  c.kd_traversal_overhead = 1.0;
  const double with1 = c.exact_search_seconds_at_scale(n, 1.0);
  EXPECT_NEAR(with3 / with1, 3.0, 1e-9);
}

TEST(AtScaleCosts, HnswBeatsExactScanAtPaperPartitionSizes) {
  // The Table III mechanism at the cost level: on a 122k-point partition
  // (1B / 8192 cores) a beam search must be far cheaper than a full scan.
  const auto c = default_costs();
  const std::size_t n = 1'000'000'000 / 8192;
  EXPECT_LT(c.hnsw_query_seconds_at_scale(n),
            c.exact_search_seconds_at_scale(n, 0.8));
}

}  // namespace
}  // namespace annsim::cluster
