#include "annsim/cluster/calibration.hpp"

#include <gtest/gtest.h>

#include "annsim/data/recipes.hpp"

namespace annsim::cluster {
namespace {

TEST(CalibratedCosts, DefaultsArePositiveAndOrdered) {
  const auto c = default_costs();
  EXPECT_GT(c.dist_eval, 0.0);
  EXPECT_GT(c.hnsw_query_c, 0.0);
  EXPECT_GT(c.hnsw_insert_c, 0.0);
  EXPECT_GT(c.exact_scan_per_point, 0.0);
  // One HNSW query at n=1e6 must be far cheaper than an exact scan.
  EXPECT_LT(c.hnsw_query_seconds(1'000'000), c.exact_search_seconds(1'000'000));
}

TEST(CalibratedCosts, QueryCostGrowsLogarithmically) {
  const auto c = default_costs();
  const double t1k = c.hnsw_query_seconds(1'000);
  const double t1m = c.hnsw_query_seconds(1'000'000);
  EXPECT_GT(t1m, t1k);
  EXPECT_LT(t1m, 3.0 * t1k);  // ln growth, not linear
}

TEST(CalibratedCosts, BuildCostSuperlinearInN) {
  const auto c = default_costs();
  EXPECT_GT(c.hnsw_build_seconds(200'000), 10.0 * c.hnsw_build_seconds(10'000));
}

TEST(CalibratedCosts, CoreSpeedRatioScalesEverything) {
  auto c = default_costs();
  const double base = c.hnsw_query_seconds(100'000);
  c.core_speed_ratio = 2.0;
  EXPECT_DOUBLE_EQ(c.hnsw_query_seconds(100'000), 2.0 * base);
}

TEST(CalibratedCosts, RouteCostGrowsWithPartitions) {
  const auto c = default_costs();
  EXPECT_GT(c.route_seconds(8192), c.route_seconds(256));
}

TEST(Calibrate, MeasuresPlausibleConstantsOnRealKernels) {
  auto w = data::make_sift_like(20000, 64, 5);
  CalibrationConfig cfg;
  cfg.small_n = 2000;
  cfg.large_n = 8000;
  cfg.n_queries = 16;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 40;
  const auto c = calibrate(w.base, w.queries, cfg);
  // Sanity windows, generous enough for any host.
  EXPECT_GT(c.dist_eval, 1e-10);
  EXPECT_LT(c.dist_eval, 1e-4);
  EXPECT_GT(c.hnsw_query_c, 1e-9);
  EXPECT_LT(c.hnsw_query_c, 1e-1);
  EXPECT_GT(c.hnsw_insert_c, 1e-9);
  // Window, not a ratio against dist_eval: the two are measured in separate
  // timing passes, so on a loaded host (parallel ctest, CI) their noise is
  // uncorrelated and any cross-measurement inequality flakes.
  EXPECT_GT(c.exact_scan_per_point, 1e-10);
  EXPECT_LT(c.exact_scan_per_point, 1e-4);
  EXPECT_GT(c.route_c, 0.0);
}

TEST(Calibrate, ValidatesConfig) {
  auto w = data::make_sift_like(1000, 8, 6);
  CalibrationConfig cfg;
  cfg.small_n = 500;
  cfg.large_n = 2000;  // larger than the dataset
  EXPECT_THROW((void)calibrate(w.base, w.queries, cfg), Error);
}

}  // namespace
}  // namespace annsim::cluster
