/// QueryServer behaviour: micro-batch flush rules (max_batch vs max_delay),
/// per-request deadlines, admission-queue backpressure (reject vs block),
/// graceful shutdown, and exactly-once completion under concurrent clients
/// whose answers must match the offline engine.search of the same queries.

#include "annsim/serve/query_server.hpp"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "annsim/common/timer.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/serve/load_gen.hpp"

namespace annsim::serve {
namespace {

core::EngineConfig engine_config() {
  core::EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

/// One small built engine shared by every test — building dominates runtime.
struct Shared {
  data::Workload w = data::make_sift_like(1500, 64, 321);
  core::DistributedAnnEngine engine{&w.base, engine_config()};
  data::KnnResults reference;  ///< offline engine.search of all queries, k=5

  Shared() {
    engine.build();
    reference = engine.search(w.queries, 5);
  }
};

Shared& shared() {
  static Shared s;
  return s;
}

std::vector<float> qvec(const data::Dataset& ds, std::size_t i) {
  const float* p = ds.row(i);
  return {p, p + ds.dim()};
}

TEST(QueryServer, LoneRequestFlushesByMaxDelayNotMaxBatch) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 64;     // never reached by a single request
  sc.max_delay_ms = 5.0; // ... so only the delay flush can serve it
  QueryServer server(&s.engine, sc);

  WallTimer t;
  auto fut = server.submit(qvec(s.w.queries, 0), 5);
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  const QueryResponse resp = fut.get();
  EXPECT_EQ(resp.status, QueryStatus::kOk);
  EXPECT_EQ(resp.batch_size, 1u);
  EXPECT_EQ(resp.neighbors, s.reference[0]);
  // Served promptly after the 5ms delay flush, not stuck waiting for 63
  // batch-mates that never arrive.
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(QueryServer, DeadlineExpiryReturnsTimeoutStatusPromptly) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 64;
  sc.max_delay_ms = 2000.0;  // flush far beyond the deadline
  QueryServer server(&s.engine, sc);

  WallTimer t;
  auto fut = server.submit(qvec(s.w.queries, 1), 5, /*deadline_ms=*/5.0);
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  const QueryResponse resp = fut.get();
  EXPECT_EQ(resp.status, QueryStatus::kDeadlineExpired);
  EXPECT_TRUE(resp.neighbors.empty());
  // Completed at its deadline, not at the 2s flush point.
  EXPECT_LT(t.seconds(), 1.0);
  EXPECT_EQ(server.metrics().expired, 1u);
}

TEST(QueryServer, RejectPolicyBouncesWhenQueueFull) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 128;
  sc.max_delay_ms = 500.0;  // keep the queue from draining mid-test
  sc.queue_capacity = 2;
  sc.overflow = OverflowPolicy::kReject;
  QueryServer server(&s.engine, sc);

  auto f1 = server.submit(qvec(s.w.queries, 0), 5);
  auto f2 = server.submit(qvec(s.w.queries, 1), 5);
  auto f3 = server.submit(qvec(s.w.queries, 2), 5);
  // The third bounced immediately; its future is already ready.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().status, QueryStatus::kRejected);

  server.stop();  // drains the two admitted requests
  EXPECT_EQ(f1.get().status, QueryStatus::kOk);
  EXPECT_EQ(f2.get().status, QueryStatus::kOk);
  const auto m = server.metrics();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.completed_ok, 2u);
}

TEST(QueryServer, BlockPolicyBackpressuresInsteadOfRejecting) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 4;
  sc.max_delay_ms = 1.0;
  sc.queue_capacity = 1;
  sc.overflow = OverflowPolicy::kBlock;
  QueryServer server(&s.engine, sc);

  std::vector<std::future<QueryResponse>> futs;
  for (std::size_t i = 0; i < 6; ++i) {
    futs.push_back(server.submit(qvec(s.w.queries, i), 5));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, QueryStatus::kOk);
  EXPECT_EQ(server.metrics().rejected, 0u);
  EXPECT_EQ(server.metrics().completed_ok, 6u);
}

TEST(QueryServer, ConcurrentClientsCompleteExactlyOnceAndMatchOfflineSearch) {
  auto& s = shared();
  const std::size_t kClients = 4, kPerClient = 40;
  const std::size_t nq = s.w.queries.size();

  ServerConfig sc;
  sc.max_batch = 16;
  sc.max_delay_ms = 1.0;
  sc.queue_capacity = 64;
  sc.overflow = OverflowPolicy::kBlock;  // no shedding: every request answers
  QueryServer server(&s.engine, sc);

  std::vector<std::vector<std::pair<std::size_t, std::future<QueryResponse>>>>
      per_client(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t row = (c * kPerClient + i) % nq;
        per_client[c].emplace_back(row,
                                   server.submit(qvec(s.w.queries, row), 5));
      }
    });
  }
  for (auto& t : clients) t.join();

  std::size_t completions = 0;
  for (auto& futs : per_client) {
    for (auto& [row, fut] : futs) {
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                std::future_status::ready);
      const QueryResponse resp = fut.get();
      ++completions;
      EXPECT_EQ(resp.status, QueryStatus::kOk);
      // Batching must not change answers: identical to the offline batch
      // search of the same query against the same engine.
      EXPECT_EQ(resp.neighbors, s.reference[row]) << "query row " << row;
      EXPECT_GE(resp.batch_size, 1u);
      EXPECT_LE(resp.batch_size, sc.max_batch);
    }
  }
  EXPECT_EQ(completions, kClients * kPerClient);
  const auto m = server.metrics();
  EXPECT_EQ(m.submitted, kClients * kPerClient);
  EXPECT_EQ(m.completed_ok, kClients * kPerClient);
  EXPECT_EQ(m.rejected + m.expired + m.failed, 0u);
}

TEST(QueryServer, SubmitAfterStopCompletesAsShutdown) {
  auto& s = shared();
  QueryServer server(&s.engine, ServerConfig{});
  server.stop();
  auto fut = server.submit(qvec(s.w.queries, 0), 5);
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(fut.get().status, QueryStatus::kShutdown);
  server.stop();  // idempotent
}

TEST(QueryServer, RejectsBadConfigAndBadRequests) {
  auto& s = shared();
  {
    ServerConfig sc;
    sc.max_batch = 0;
    EXPECT_THROW(QueryServer(&s.engine, sc), Error);
  }
  {
    ServerConfig sc;
    sc.queue_capacity = 0;
    EXPECT_THROW(QueryServer(&s.engine, sc), Error);
  }
  {
    ServerConfig sc;
    sc.max_delay_ms = -1.0;
    EXPECT_THROW(QueryServer(&s.engine, sc), Error);
  }
  {
    data::Workload w2 = data::make_sift_like(64, 2, 5);
    core::DistributedAnnEngine unbuilt(&w2.base, engine_config());
    EXPECT_THROW(QueryServer(&unbuilt, ServerConfig{}), Error);
  }
  QueryServer server(&s.engine, ServerConfig{});
  EXPECT_THROW((void)server.submit(std::vector<float>(3, 0.f), 5), Error);
  EXPECT_THROW((void)server.submit(qvec(s.w.queries, 0), 0), Error);
}

TEST(LoadGen, OpenLoopPoissonAccountsForEveryRequest) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 16;
  sc.max_delay_ms = 1.0;
  QueryServer server(&s.engine, sc);

  LoadGenConfig lg;
  lg.open_loop = true;
  lg.qps = 3000.0;
  lg.n_requests = 150;
  lg.k = 5;
  lg.seed = 3;
  const LoadGenReport rep = run_load(server, s.w.queries, lg);
  EXPECT_EQ(rep.ok + rep.rejected + rep.expired + rep.failed, lg.n_requests);
  EXPECT_GT(rep.ok, 0u);
  EXPECT_GT(rep.wall_seconds, 0.0);
  EXPECT_EQ(rep.metrics.submitted, rep.ok + rep.expired);
  EXPECT_GE(rep.metrics.batches, 1u);
}

TEST(LoadGen, ClosedLoopDrivesAllClients) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 8;
  sc.max_delay_ms = 0.5;
  QueryServer server(&s.engine, sc);

  LoadGenConfig lg;
  lg.open_loop = false;
  lg.n_clients = 3;
  lg.n_requests = 60;
  lg.k = 5;
  const LoadGenReport rep = run_load(server, s.w.queries, lg);
  EXPECT_EQ(rep.ok, 60u);
  EXPECT_EQ(rep.metrics.completed_ok, 60u);
  // Closed loop with 3 clients can never queue more than 3 at once.
  EXPECT_LE(rep.metrics.queue_depth.max, 3.0);
}

}  // namespace
}  // namespace annsim::serve
