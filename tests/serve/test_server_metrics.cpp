/// ServerMetrics: counter accounting, report derivation (throughput, tail
/// quantiles, distributions), thread-safety of concurrent recording, and the
/// human-readable rendering used by bench_serving / the serve-bench CLI.

#include "annsim/serve/server_metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace annsim::serve {
namespace {

TEST(ServerMetrics, EmptyReportIsAllZeros) {
  ServerMetrics m;
  const MetricsReport r = m.report();
  EXPECT_EQ(r.submitted, 0u);
  EXPECT_EQ(r.completed_ok, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.expired, 0u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.batches, 0u);
  EXPECT_DOUBLE_EQ(r.throughput_qps, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_p999_ms, 0.0);
}

TEST(ServerMetrics, CountersAndDistributionsAddUp) {
  ServerMetrics m;
  for (std::size_t i = 0; i < 10; ++i) m.on_submit(/*depth=*/i + 1);
  m.on_reject();
  m.on_reject();
  m.on_expire_in_queue();
  m.on_fail();
  m.on_batch(4);
  m.on_batch(6);
  for (int i = 0; i < 8; ++i) {
    m.on_complete_ok(/*latency_ms=*/1.0 + i, /*queue_wait_ms=*/0.5);
  }

  const MetricsReport r = m.report();
  EXPECT_EQ(r.submitted, 10u);
  EXPECT_EQ(r.rejected, 2u);
  EXPECT_EQ(r.expired, 1u);
  EXPECT_EQ(r.expired_in_queue, 1u);
  EXPECT_EQ(r.completed_late, 0u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.batches, 2u);
  EXPECT_EQ(r.completed_ok, 8u);

  EXPECT_NEAR(r.latency_mean_ms, 4.5, 1e-9);  // mean of 1..8
  EXPECT_NEAR(r.latency_max_ms, 8.0, 1e-9);
  EXPECT_NEAR(r.queue_wait_mean_ms, 0.5, 1e-9);
  // Tail quantiles are monotone and bracketed by the observed range.
  EXPECT_GE(r.latency_p50_ms, 1.0);
  EXPECT_LE(r.latency_p50_ms, r.latency_p95_ms);
  EXPECT_LE(r.latency_p95_ms, r.latency_p99_ms);
  EXPECT_LE(r.latency_p99_ms, r.latency_p999_ms);
  EXPECT_LE(r.latency_p999_ms, r.latency_max_ms + 1e-9);

  EXPECT_NEAR(r.batch_size.mean, 5.0, 1e-9);
  EXPECT_NEAR(r.batch_size.max, 6.0, 1e-9);
  EXPECT_NEAR(r.queue_depth.max, 10.0, 1e-9);
  EXPECT_NEAR(r.queue_depth.min, 1.0, 1e-9);

  EXPECT_GE(r.wall_seconds, 0.0);
  if (r.wall_seconds > 0.0) {
    EXPECT_NEAR(r.throughput_qps, 8.0 / r.wall_seconds, 1e-6);
  }
}

TEST(ServerMetrics, ExpiredSplitsIntoQueueAndLateButSumsForBackCompat) {
  ServerMetrics m;
  m.on_expire_in_queue();
  m.on_expire_in_queue();
  m.on_complete_late();
  const MetricsReport r = m.report();
  EXPECT_EQ(r.expired_in_queue, 2u);
  EXPECT_EQ(r.completed_late, 1u);
  EXPECT_EQ(r.expired, 3u);  // pre-split consumers keep reading the sum
}

TEST(ServerMetrics, OverloadCountersFlowIntoReportAndRendering) {
  ServerMetrics m;
  m.on_shed();
  m.on_shed();
  m.on_breaker_reject();
  m.on_breaker_trip();
  m.on_brownout(/*n=*/5, /*factor=*/0.5);
  m.on_brownout(/*n=*/3, /*factor=*/0.25);
  m.on_pressure(0.75);
  const MetricsReport r = m.report();
  EXPECT_EQ(r.shed, 2u);
  EXPECT_EQ(r.breaker_rejections, 1u);
  EXPECT_EQ(r.breaker_trips, 1u);
  EXPECT_EQ(r.browned_out, 8u);
  EXPECT_DOUBLE_EQ(r.brownout_min_factor, 0.25);  // lowest ever dispatched
  EXPECT_DOUBLE_EQ(r.brownout_pressure, 0.75);
  const std::string s = to_string(r);
  EXPECT_NE(s.find("overload"), std::string::npos);
  EXPECT_NE(s.find("shed"), std::string::npos);
  EXPECT_NE(s.find("browned out"), std::string::npos);
}

TEST(ServerMetrics, OverloadSectionOmittedWhenQuiet) {
  ServerMetrics m;
  m.on_submit(1);
  m.on_complete_ok(1.0, 0.1);
  EXPECT_EQ(to_string(m.report()).find("overload"), std::string::npos);
}

TEST(ServerMetrics, ConcurrentRecordingLosesNothing) {
  ServerMetrics m;
  const std::size_t kThreads = 4, kEach = 500;
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&m] {
      for (std::size_t i = 0; i < kEach; ++i) {
        m.on_submit(1);
        m.on_complete_ok(0.25 + double(i % 7), 0.1);
        if (i % 10 == 0) m.on_reject();
      }
    });
  }
  for (auto& t : ts) t.join();

  const MetricsReport r = m.report();
  EXPECT_EQ(r.submitted, kThreads * kEach);
  EXPECT_EQ(r.completed_ok, kThreads * kEach);
  EXPECT_EQ(r.rejected, kThreads * (kEach / 10));
}

TEST(ServerMetrics, ToStringMentionsTheHeadlineNumbers) {
  ServerMetrics m;
  m.on_submit(1);
  m.on_batch(1);
  m.on_complete_ok(2.0, 0.5);
  const std::string s = to_string(m.report());
  EXPECT_NE(s.find("p999"), std::string::npos);
  EXPECT_NE(s.find("throughput"), std::string::npos);
  EXPECT_NE(s.find("rejected"), std::string::npos);
  EXPECT_NE(s.find("batch"), std::string::npos);
}

}  // namespace
}  // namespace annsim::serve
