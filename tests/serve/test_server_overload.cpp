/// Overload control in the QueryServer (DESIGN.md §4.11): config validation
/// with field-specific messages, deadline-aware admission (won't-make-it
/// culls, urgency flush, priority eviction), the expired_in_queue vs
/// completed_late metric split, brownout engagement and recovery, and the
/// circuit breaker's trip / fast-fail / half-open-probe / close cycle
/// composed with auto_heal after a worker kill.

#include "annsim/serve/query_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/mpi/fault.hpp"
#include "annsim/serve/load_gen.hpp"

namespace annsim::serve {
namespace {

core::EngineConfig engine_config() {
  core::EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

/// One small built engine shared by the non-fault tests.
struct Shared {
  data::Workload w = data::make_sift_like(1500, 64, 777);
  core::DistributedAnnEngine engine{&w.base, engine_config()};
  Shared() { engine.build(); }
};

Shared& shared() {
  static Shared s;
  return s;
}

std::vector<float> qvec(const data::Dataset& ds, std::size_t i) {
  const float* p = ds.row(i % ds.size());
  return {p, p + ds.dim()};
}

TEST(ServerOverloadConfig, FieldSpecificValidationMessages) {
  auto& s = shared();
  auto expect_msg = [&](ServerConfig sc, const char* needle) {
    try {
      QueryServer server(&s.engine, sc);
      FAIL() << "expected validation to reject the config";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  { ServerConfig c; c.brownout_target_ms = -1.0;
    expect_msg(c, "brownout_target_ms cannot be negative"); }
  { ServerConfig c; c.brownout_target_ms = 1.0; c.brownout_floor = 0.0;
    expect_msg(c, "brownout_floor must be within (0, 1]"); }
  { ServerConfig c; c.brownout_floor = 1.5;
    expect_msg(c, "brownout_floor must be within (0, 1]"); }
  { ServerConfig c; c.breaker_threshold = 1.5;
    expect_msg(c, "breaker_threshold must be within [0, 1]"); }
  { ServerConfig c; c.breaker_threshold = -0.1;
    expect_msg(c, "breaker_threshold must be within [0, 1]"); }
  { ServerConfig c; c.breaker_threshold = 0.5; c.breaker_open_ms = -1.0;
    expect_msg(c, "breaker_open_ms cannot be negative"); }
  { ServerConfig c; c.breaker_threshold = 0.5; c.breaker_window = 0;
    expect_msg(c, "breaker_window must be nonzero"); }
  { ServerConfig c; c.breaker_threshold = 0.5; c.breaker_probes = 0;
    expect_msg(c, "breaker_probes must be nonzero"); }
}

TEST(ServerOverloadConfig, UnknownPriorityClassRejectedAtSubmit) {
  auto& s = shared();
  QueryServer server(&s.engine, ServerConfig{});
  try {
    (void)server.submit(qvec(s.w.queries, 0), 5, 0.0, PriorityClass(7));
    FAIL() << "expected submit to reject the class";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("priority class"), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(ServerOverload, PriorityClassNamesRender) {
  EXPECT_STREQ(to_string(PriorityClass::kInteractive), "interactive");
  EXPECT_STREQ(to_string(PriorityClass::kBatch), "batch");
  EXPECT_STREQ(to_string(PriorityClass::kBestEffort), "best-effort");
  EXPECT_STREQ(to_string(QueryStatus::kShed), "shed");
}

TEST(ServerOverload, WontMakeItIsShedBeforeTouchingAWorker) {
  auto& s = shared();
  ServerConfig sc;
  sc.deadline_scheduling = true;
  sc.max_batch = 64;
  sc.max_delay_ms = 1.0;
  QueryServer server(&s.engine, sc);

  // Seed the service-time EWMA with one real batch: 64 queries, no deadline.
  {
    std::vector<std::future<QueryResponse>> warm;
    for (std::size_t i = 0; i < 64; ++i) {
      warm.push_back(server.submit(qvec(s.w.queries, i), 5));
    }
    for (auto& f : warm) EXPECT_EQ(f.get().status, QueryStatus::kOk);
    // A response future resolves from inside the batch, before its EWMA
    // write lands; one follow-up batch makes the seeded estimate visible to
    // the next admission deterministically.
    EXPECT_EQ(server.submit(qvec(s.w.queries, 0), 5).get().status,
              QueryStatus::kOk);
  }

  // A 64-query batch takes well over a microsecond, so a 0.001ms deadline is
  // provably unreachable: the estimator must shed at admission — empty
  // result, no worker time spent.
  auto fut = server.submit(qvec(s.w.queries, 0), 5, /*deadline_ms=*/0.001);
  const auto resp = fut.get();
  EXPECT_EQ(resp.status, QueryStatus::kShed);
  EXPECT_TRUE(resp.neighbors.empty());
  EXPECT_GE(server.metrics().shed, 1u);
}

TEST(ServerOverload, UrgencyFlushBeatsMaxDelayOnlyWithDeadlineScheduling) {
  auto& s = shared();
  constexpr double kMaxDelayMs = 400.0;
  constexpr double kDeadlineMs = 150.0;

  auto run_one = [&](bool scheduling) {
    ServerConfig sc;
    sc.deadline_scheduling = scheduling;
    sc.max_batch = 2;
    sc.max_delay_ms = kMaxDelayMs;
    QueryServer server(&s.engine, sc);
    // Warm the batch-time EWMA (a full batch flushes immediately), twice:
    // the second batch guarantees the first one's EWMA write is visible.
    for (int round = 0; round < 2; ++round) {
      auto w1 = server.submit(qvec(s.w.queries, 0), 5);
      auto w2 = server.submit(qvec(s.w.queries, 1), 5);
      EXPECT_EQ(w1.get().status, QueryStatus::kOk);
      EXPECT_EQ(w2.get().status, QueryStatus::kOk);
    }
    // A lone request with a deadline tighter than max_delay: only the
    // urgency flush can dispatch it in time.
    auto fut = server.submit(qvec(s.w.queries, 2), 5, kDeadlineMs);
    return fut.get();
  };

  const auto with = run_one(true);
  EXPECT_EQ(with.status, QueryStatus::kOk);
  EXPECT_LT(with.total_ms, kMaxDelayMs);

  // Control: without deadline scheduling the lone request waits for the
  // max_delay flush and its deadline fires while it is still queued.
  const auto without = run_one(false);
  EXPECT_EQ(without.status, QueryStatus::kDeadlineExpired);
}

TEST(ServerOverload, FullQueueEvictsStrictlyLowerClassBottomUp) {
  auto& s = shared();
  ServerConfig sc;
  sc.deadline_scheduling = true;
  sc.max_batch = 64;        // the scheduler cannot fill a batch...
  sc.max_delay_ms = 1000.0; // ... and will not flush on delay during the test
  sc.queue_capacity = 2;
  QueryServer server(&s.engine, sc);

  auto best = server.submit(qvec(s.w.queries, 0), 5, 0.0,
                            PriorityClass::kBestEffort);
  auto batch = server.submit(qvec(s.w.queries, 1), 5, 0.0,
                             PriorityClass::kBatch);
  // Queue full. An interactive arrival evicts the lowest class first.
  auto inter1 = server.submit(qvec(s.w.queries, 2), 5, 0.0,
                              PriorityClass::kInteractive);
  EXPECT_EQ(best.get().status, QueryStatus::kShed);
  // Full again. The next interactive arrival evicts the batch request.
  auto inter2 = server.submit(qvec(s.w.queries, 3), 5, 0.0,
                              PriorityClass::kInteractive);
  EXPECT_EQ(batch.get().status, QueryStatus::kShed);
  // Full of interactive: nothing strictly lower remains, so the arrival
  // falls back to the overflow policy instead of evicting a peer.
  auto inter3 = server.submit(qvec(s.w.queries, 4), 5, 0.0,
                              PriorityClass::kInteractive);
  EXPECT_EQ(inter3.get().status, QueryStatus::kRejected);

  server.stop();  // drains the two admitted interactive requests
  EXPECT_EQ(inter1.get().status, QueryStatus::kOk);
  EXPECT_EQ(inter2.get().status, QueryStatus::kOk);
  const auto m = server.metrics();
  EXPECT_EQ(m.shed, 2u);
  EXPECT_EQ(m.rejected, 1u);
}

TEST(ServerOverload, ExpiredSplitsIntoInQueueAndCompletedLate) {
  auto& s = shared();
  // In-queue expiry: a lone request whose deadline fires while the scheduler
  // is still waiting for max_delay.
  {
    ServerConfig sc;
    sc.max_batch = 64;
    sc.max_delay_ms = 500.0;
    QueryServer server(&s.engine, sc);
    auto fut = server.submit(qvec(s.w.queries, 0), 5, /*deadline_ms=*/5.0);
    const auto resp = fut.get();
    EXPECT_EQ(resp.status, QueryStatus::kDeadlineExpired);
    EXPECT_TRUE(resp.neighbors.empty());  // no worker ever touched it
    const auto m = server.metrics();
    EXPECT_EQ(m.expired_in_queue, 1u);
    EXPECT_EQ(m.completed_late, 0u);
    EXPECT_EQ(m.expired, 1u);
  }
  // Late completion: detect-mode engine with a killed worker — every search
  // after the kill stalls on the 60ms result timeout, so a 20ms deadline is
  // met in the queue (dispatch is immediate) but missed in flight.
  {
    auto cfg = engine_config();
    cfg.replication = 2;
    cfg.result_timeout_ms = 60.0;
    cfg.fault.seed = 5;
    cfg.fault.kills.push_back({/*global_rank=*/2, /*after_ops=*/2,
                               mpi::kNeverFires});
    data::Workload w = data::make_sift_like(1200, 48, 13);
    core::DistributedAnnEngine engine(&w.base, cfg);
    engine.build();

    ServerConfig sc;
    sc.max_batch = 1;
    sc.max_delay_ms = 0.0;
    QueryServer server(&engine, sc);
    bool saw_late_answer = false;
    for (std::size_t i = 0; i < 4; ++i) {
      const float* p = w.queries.row(i);
      auto fut = server.submit({p, p + w.queries.dim()}, 5,
                               /*deadline_ms=*/20.0);
      const auto resp = fut.get();
      if (resp.status == QueryStatus::kDeadlineExpired &&
          !resp.neighbors.empty()) {
        saw_late_answer = true;  // partial service: the late answer shipped
      }
    }
    EXPECT_TRUE(saw_late_answer);
    const auto m = server.metrics();
    EXPECT_GE(m.completed_late, 1u);
    EXPECT_EQ(m.expired, m.expired_in_queue + m.completed_late);
    server.stop();
  }
}

TEST(ServerOverload, BrownoutEngagesUnderBurstAndRecoversWhenQuiet) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 8;
  sc.max_delay_ms = 1.0;
  sc.brownout_target_ms = 5.0;
  sc.brownout_floor = 0.25;
  QueryServer server(&s.engine, sc);

  // Burst far beyond one batch: the queue backs up, measured queue delay
  // blows through the target, and pressure ratchets up batch by batch.
  std::vector<std::future<QueryResponse>> burst;
  for (std::size_t i = 0; i < 300; ++i) {
    burst.push_back(server.submit(qvec(s.w.queries, i), 5, 0.0,
                                  PriorityClass::kBestEffort));
  }
  double best_effort_min = 1.0;
  for (auto& f : burst) {
    const auto resp = f.get();
    EXPECT_EQ(resp.status, QueryStatus::kOk);
    EXPECT_GE(resp.effort_factor, sc.brownout_floor - 1e-9);
    best_effort_min = std::min(best_effort_min, resp.effort_factor);
  }
  const auto mid = server.metrics();
  EXPECT_GT(mid.browned_out, 0u);
  EXPECT_LT(mid.brownout_min_factor, 1.0);
  EXPECT_LT(best_effort_min, 1.0);

  // Quiet period: serve lone requests one at a time. Each dispatches after
  // ~max_delay (1ms), under half the target, so pressure decays 0.25 per
  // batch and full effort returns within a handful of requests.
  double last_effort = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    auto fut = server.submit(qvec(s.w.queries, i), 5);
    last_effort = fut.get().effort_factor;
  }
  EXPECT_DOUBLE_EQ(last_effort, 1.0);
  EXPECT_DOUBLE_EQ(server.metrics().brownout_pressure, 0.0);
}

TEST(ServerOverload, InteractiveKeepsMoreEffortThanBestEffort) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 8;
  sc.max_delay_ms = 1.0;
  sc.brownout_target_ms = 5.0;
  QueryServer server(&s.engine, sc);

  std::vector<std::future<QueryResponse>> inter, best;
  for (std::size_t i = 0; i < 150; ++i) {
    inter.push_back(server.submit(qvec(s.w.queries, i), 5, 0.0,
                                  PriorityClass::kInteractive));
    best.push_back(server.submit(qvec(s.w.queries, i + 1), 5, 0.0,
                                 PriorityClass::kBestEffort));
  }
  double inter_min = 1.0, best_min = 1.0;
  for (auto& f : inter) inter_min = std::min(inter_min, f.get().effort_factor);
  for (auto& f : best) best_min = std::min(best_min, f.get().effort_factor);
  // Bottom-up brownout: at any pressure the interactive factor is >= the
  // best-effort factor (best-effort's onset is 0, interactive's is 0.75).
  EXPECT_GE(inter_min, best_min);
  EXPECT_LT(best_min, 1.0);  // the burst did push best-effort below full
}

/// Breaker + auto_heal composition needs an engine whose searches go slow
/// deterministically: detect-mode with a killed worker stalls every batch on
/// the result timeout until heal() revives it.
TEST(ServerOverloadBreaker, TripsFastFailsThenRecoversThroughProbes) {
  auto cfg = engine_config();
  cfg.replication = 2;               // survivors hold every partition
  cfg.result_timeout_ms = 60.0;      // detect mode: dead worker = slow batch
  cfg.fault.seed = 7;
  cfg.fault.kills.push_back({/*global_rank=*/2, /*after_ops=*/2,
                             mpi::kNeverFires});
  data::Workload w = data::make_sift_like(1200, 48, 31);
  core::DistributedAnnEngine engine(&w.base, cfg);
  engine.build();

  ServerConfig sc;
  sc.max_batch = 4;
  sc.max_delay_ms = 0.5;
  sc.auto_heal = true;               // heal on the batch boundary after the kill
  sc.breaker_threshold = 0.5;
  sc.breaker_window = 4;
  sc.breaker_open_ms = 30.0;
  sc.breaker_probes = 2;
  QueryServer server(&engine, sc);
  auto q = [&](std::size_t i) {
    const float* p = w.queries.row(i % w.queries.size());
    return std::vector<float>(p, p + w.queries.dim());
  };

  // Phase 1 — trip: a batch of 4 tight-deadline requests. The kill fires
  // under it, the batch stalls on the 60ms result timeout, and all four
  // complete late: 4 failures in a window of 4 >= threshold 0.5.
  {
    std::vector<std::future<QueryResponse>> fs;
    for (std::size_t i = 0; i < 4; ++i) {
      fs.push_back(server.submit(q(i), 5, /*deadline_ms=*/5.0));
    }
    for (auto& f : fs) {
      EXPECT_EQ(f.get().status, QueryStatus::kDeadlineExpired);
    }
  }
  ASSERT_GE(server.metrics().breaker_trips, 1u);

  // Phase 2 — fast-fail: while open, admissions shed without queueing.
  {
    auto f = server.submit(q(5), 5, /*deadline_ms=*/5.0);
    EXPECT_EQ(f.get().status, QueryStatus::kShed);
    EXPECT_GE(server.metrics().breaker_rejections, 1u);
  }

  // Phase 3 — recover: auto_heal revived the worker on the batch boundary,
  // so once the open period lapses, half-open probes (no deadline = cannot
  // fail) succeed and close the breaker; service is normal again.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  for (std::size_t i = 0; i < sc.breaker_probes; ++i) {
    auto f = server.submit(q(6 + i), 5);
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
  auto f = server.submit(q(9), 5);
  EXPECT_EQ(f.get().status, QueryStatus::kOk);
  const auto m = server.metrics();
  EXPECT_GE(m.heals, 1u);            // the breaker composed with auto_heal
  EXPECT_GE(m.completed_late, 4u);
  server.stop();
}

TEST(ServerOverload, MixedClassLoadGenTalliesPerClass) {
  auto& s = shared();
  ServerConfig sc;
  sc.max_batch = 16;
  sc.max_delay_ms = 1.0;
  QueryServer server(&s.engine, sc);

  LoadGenConfig lg;
  lg.open_loop = false;
  lg.n_clients = 3;
  lg.n_requests = 120;
  lg.k = 5;
  lg.class_mix = {0.5, 0.3, 0.2};
  const auto rep = run_load(server, s.w.queries, lg);

  std::size_t sent = 0;
  for (const auto& ct : rep.by_class) sent += ct.sent;
  EXPECT_EQ(sent, lg.n_requests);
  EXPECT_EQ(rep.ok, lg.n_requests);  // unloaded: everything answered
  // With 120 draws at 50/30/20 every class sees traffic.
  for (const auto& ct : rep.by_class) {
    EXPECT_GT(ct.sent, 0u);
    EXPECT_EQ(ct.ok, ct.sent);
    EXPECT_DOUBLE_EQ(ct.hit_rate, 1.0);
    EXPECT_GT(ct.p999_ms, 0.0);
  }
}

TEST(ServerOverload, LoadGenRejectsBadClassMix) {
  auto& s = shared();
  QueryServer server(&s.engine, ServerConfig{});
  LoadGenConfig lg;
  lg.n_requests = 1;
  lg.class_mix = {-0.5, 1.0, 0.5};
  try {
    (void)run_load(server, s.w.queries, lg);
    FAIL() << "expected the mix to be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("class_mix"), std::string::npos)
        << "message was: " << e.what();
  }
}

}  // namespace
}  // namespace annsim::serve
