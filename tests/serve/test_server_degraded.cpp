/// Degraded answers crossing the serving plane: a query the engine completes
/// with partial coverage surfaces as kDegraded (with its coverage numbers),
/// unless the server's retry budget buys another attempt first. Faults here
/// are injected through the engine config, so every batch the server runs
/// sees the same deterministic worker death.

#include "annsim/serve/query_server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

namespace annsim::serve {
namespace {

core::EngineConfig engine_config() {
  core::EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  return cfg;
}

core::EngineConfig faulty_config() {
  auto cfg = engine_config();
  cfg.result_timeout_ms = 50.0;
  // Worker 1 (runtime rank 2) is dead on arrival in every batch the server
  // dispatches: with replication = 1 its partition is simply gone.
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/0, mpi::kNeverFires});
  return cfg;
}

std::vector<float> qvec(const data::Dataset& ds, std::size_t i) {
  const float* p = ds.row(i);
  return {p, p + ds.dim()};
}

TEST(ServerDegraded, PartialCoverageSurfacesAsDegradedStatus) {
  auto w = data::make_sift_like(800, 24, 701);

  // Fault-free reference for the queries that keep full coverage.
  core::DistributedAnnEngine clean(&w.base, engine_config());
  clean.build();
  auto reference = clean.search(w.queries, 5);

  core::DistributedAnnEngine eng(&w.base, faulty_config());
  eng.build();
  ServerConfig sc;
  sc.max_batch = 8;
  sc.max_delay_ms = 5.0;
  QueryServer server(&eng, sc);  // max_retries = 0: surface immediately

  std::vector<std::future<QueryResponse>> futs;
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    futs.push_back(server.submit(qvec(w.queries, i), 5));
  }
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    auto r = futs[i].get();
    if (r.status == QueryStatus::kDegraded) {
      ++degraded;
      EXPECT_LT(r.partitions_searched, r.partitions_planned);
      EXPECT_GT(r.partitions_searched, 0u);  // live partitions still answered
      EXPECT_FALSE(r.neighbors.empty());
    } else {
      ASSERT_EQ(r.status, QueryStatus::kOk) << to_string(r.status);
      EXPECT_EQ(r.partitions_searched, r.partitions_planned);
      EXPECT_EQ(r.neighbors, reference[i]) << "query " << i;
    }
  }
  // n_probe = 2 of 4 partitions: the dead worker's partition sits in some
  // plans but not all (both routing and the kill are deterministic).
  EXPECT_GT(degraded, 0u);
  EXPECT_LT(degraded, futs.size());

  server.stop();
  const auto m = server.metrics();
  EXPECT_EQ(m.degraded, degraded);
  EXPECT_EQ(m.completed_ok, futs.size() - degraded);
  EXPECT_EQ(m.retries, 0u);
}

TEST(ServerDegraded, RetryBudgetSpendsThenSurfaces) {
  auto w = data::make_sift_like(800, 16, 702);
  core::DistributedAnnEngine eng(&w.base, faulty_config());
  eng.build();

  ServerConfig sc;
  sc.max_batch = 8;
  sc.max_delay_ms = 5.0;
  sc.max_retries = 2;
  sc.retry_backoff_ms = 1.0;
  QueryServer server(&eng, sc);

  std::vector<std::future<QueryResponse>> futs;
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    futs.push_back(server.submit(qvec(w.queries, i), 5));
  }
  std::size_t degraded = 0;
  for (auto& f : futs) {
    auto r = f.get();  // every future completes despite the retry loop
    if (r.status == QueryStatus::kDegraded) ++degraded;
  }
  EXPECT_GT(degraded, 0u);

  server.stop();
  const auto m = server.metrics();
  // The worker dies in every batch, so each degraded query burned its whole
  // budget before the server gave up on it.
  EXPECT_EQ(m.degraded, degraded);
  EXPECT_EQ(m.retries, 2 * degraded);
}

TEST(ServerDegraded, RetryRespectsRequestDeadline) {
  auto w = data::make_sift_like(800, 8, 703);
  core::DistributedAnnEngine eng(&w.base, faulty_config());
  eng.build();

  ServerConfig sc;
  sc.max_batch = 8;
  sc.max_delay_ms = 2.0;
  sc.max_retries = 5;
  sc.retry_backoff_ms = 60'000.0;  // a retry could never beat any deadline
  QueryServer server(&eng, sc);

  std::vector<std::future<QueryResponse>> futs;
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    futs.push_back(server.submit(qvec(w.queries, i), 5, /*deadline_ms=*/5000));
  }
  for (auto& f : futs) {
    auto r = f.get();
    // Backoff past the deadline disqualifies the retry: degraded answers
    // surface at once rather than being parked until they expire.
    EXPECT_TRUE(r.status == QueryStatus::kOk ||
                r.status == QueryStatus::kDegraded)
        << to_string(r.status);
  }
  server.stop();
  EXPECT_EQ(server.metrics().retries, 0u);
}

TEST(ServerDegraded, RetryForfeitedWhenAdmissionQueueIsFull) {
  // A degraded retry re-enters through the same bounded admission queue as
  // any submit: when the queue is full the retry is forfeit and the degraded
  // partial answer goes out, instead of overflowing queue_capacity.
  auto w = data::make_sift_like(800, 4, 704);
  auto cfg = engine_config();
  cfg.result_timeout_ms = 50.0;
  // Every worker is dead on arrival, so every query in every batch degrades
  // (and every batch takes at least the detection timeout to come back).
  for (int rank = 1; rank <= 4; ++rank) {
    cfg.fault.kills.push_back({rank, /*after_ops=*/0, mpi::kNeverFires});
  }
  core::DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  ServerConfig sc;
  sc.max_batch = 1;
  sc.max_delay_ms = 0.0;
  sc.queue_capacity = 1;
  sc.max_retries = 1;
  sc.retry_backoff_ms = 1.0;
  QueryServer server(&eng, sc);

  // q0 dispatches immediately (the queue drains to zero); while its batch is
  // stuck in the engine for the 50ms detection timeout, q1 is admitted and
  // fills the queue to capacity.
  auto f0 = server.submit(qvec(w.queries, 0), 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto f1 = server.submit(qvec(w.queries, 1), 5);

  // q0's retry finds the queue full and is forfeited; q1 retries once into an
  // empty queue, degrades again, and surfaces after spending its budget.
  auto r0 = f0.get();
  auto r1 = f1.get();
  EXPECT_EQ(r0.status, QueryStatus::kDegraded) << to_string(r0.status);
  EXPECT_EQ(r1.status, QueryStatus::kDegraded) << to_string(r1.status);

  server.stop();
  const auto m = server.metrics();
  EXPECT_EQ(m.degraded, 2u);
  EXPECT_EQ(m.retries, 1u);  // only q1's retry was admitted
}

TEST(ServerDegraded, AutoHealRestoresCoverageBetweenBatches) {
  // Self-healing across the serving plane: the first wave loses a worker and
  // degrades (replication = 1, nothing to fail over to); auto_heal repairs
  // the cluster from its checkpoints on the batch boundary, so a second wave
  // answers clean.
  auto w = data::make_sift_like(800, 24, 705);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() /
       ("annsim_serve_heal_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(ckpt);

  core::DistributedAnnEngine clean(&w.base, engine_config());
  clean.build();
  auto reference = clean.search(w.queries, 5);

  auto cfg = faulty_config();
  cfg.checkpoint_dir = ckpt;
  core::DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  ServerConfig sc;
  sc.max_batch = 24;  // the whole first wave rides in one batch
  sc.max_delay_ms = 20.0;
  sc.auto_heal = true;
  QueryServer server(&eng, sc);

  std::vector<std::future<QueryResponse>> wave1;
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    wave1.push_back(server.submit(qvec(w.queries, i), 5));
  }
  std::size_t degraded = 0;
  for (auto& f : wave1) {
    if (f.get().status == QueryStatus::kDegraded) ++degraded;
  }
  EXPECT_GT(degraded, 0u);  // the death was felt...

  // ...but every wave-1 future has resolved, so its batch's boundary heal
  // has run. The second wave must see a fully repaired cluster.
  std::vector<std::future<QueryResponse>> wave2;
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    wave2.push_back(server.submit(qvec(w.queries, i), 5));
  }
  for (std::size_t i = 0; i < wave2.size(); ++i) {
    auto r = wave2[i].get();
    ASSERT_EQ(r.status, QueryStatus::kOk) << to_string(r.status);
    EXPECT_EQ(r.partitions_searched, r.partitions_planned);
    EXPECT_EQ(r.neighbors, reference[i]) << "query " << i;
  }

  server.stop();
  const auto m = server.metrics();
  EXPECT_GE(m.heals, 1u);
  EXPECT_GE(m.workers_revived, 1u);
  EXPECT_GE(m.coverage_restored, 1u);
  EXPECT_EQ(m.under_replicated_partitions, 0u);
  const std::string rendered = to_string(m);
  EXPECT_NE(rendered.find("healing:"), std::string::npos) << rendered;
  std::filesystem::remove_all(ckpt);
}

TEST(ServerDegraded, MetricsRenderingShowsDegradedAndRetries) {
  ServerMetrics m;
  m.on_submit(1);
  m.on_complete_degraded(/*latency_ms=*/3.0, /*queue_wait_ms=*/1.0);
  m.on_retry();
  m.on_retry();
  const std::string s = to_string(m.report());
  EXPECT_NE(s.find("1 degraded"), std::string::npos) << s;
  EXPECT_NE(s.find("(2 retries)"), std::string::npos) << s;
  // Degraded completions feed the shared latency histogram.
  EXPECT_GT(m.report().latency_mean_ms, 0.0);
}

}  // namespace
}  // namespace annsim::serve
