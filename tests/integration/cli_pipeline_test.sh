#!/usr/bin/env bash
# End-to-end test of the annsim CLI: generate -> ground truth -> build ->
# search -> eval -> info, asserting the reported recall is high.
set -euo pipefail

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" gen SIFT 4000 100 "$DIR/demo" 7
"$CLI" gt "$DIR/demo_base.fvecs" "$DIR/demo_query.fvecs" 10 "$DIR/gt.ivecs"
"$CLI" build "$DIR/demo_base.fvecs" "$DIR/demo.idx" --workers 8 --M 12 --efc 80
"$CLI" search "$DIR/demo.idx" "$DIR/demo_query.fvecs" 10 "$DIR/res.ivecs"
"$CLI" info "$DIR/demo.idx" | grep -q "8 partitions"

RECALL_LINE="$("$CLI" eval "$DIR/res.ivecs" "$DIR/gt.ivecs" 10)"
echo "$RECALL_LINE"
RECALL="$(echo "$RECALL_LINE" | sed -n 's/recall@10 = \([0-9.]*\).*/\1/p')"
awk -v r="$RECALL" 'BEGIN { exit !(r > 0.85) }' || {
  echo "FAIL: recall $RECALL too low"
  exit 1
}

# Exact configuration: brute-force local indexes must hit recall 1.0 when
# probing everything.
"$CLI" build "$DIR/demo_base.fvecs" "$DIR/exact.idx" --workers 4 --nprobe 4 \
  --local bruteforce
"$CLI" search "$DIR/exact.idx" "$DIR/demo_query.fvecs" 10 "$DIR/res2.ivecs"
RECALL2="$("$CLI" eval "$DIR/res2.ivecs" "$DIR/gt.ivecs" 10 |
  sed -n 's/recall@10 = \([0-9.]*\).*/\1/p')"
awk -v r="$RECALL2" 'BEGIN { exit !(r > 0.9999) }' || {
  echo "FAIL: exact recall $RECALL2 != 1.0"
  exit 1
}

# Quantized configuration: --quantize sq8 stores frozen segments as SQ8
# codes with an exact re-rank cache; recall must survive the compression
# and the index must save/load/search round-trip.
QUANT_BUILD="$("$CLI" build "$DIR/demo_base.fvecs" "$DIR/quant.idx" \
  --workers 4 --M 12 --efc 80 --quantize sq8 --float-cache 0.02)"
echo "$QUANT_BUILD" | grep -q "sq8"
"$CLI" search "$DIR/quant.idx" "$DIR/demo_query.fvecs" 10 "$DIR/res3.ivecs"
RECALL3="$("$CLI" eval "$DIR/res3.ivecs" "$DIR/gt.ivecs" 10 |
  sed -n 's/recall@10 = \([0-9.]*\).*/\1/p')"
awk -v r="$RECALL3" 'BEGIN { exit !(r > 0.85) }' || {
  echo "FAIL: quantized recall $RECALL3 too low"
  exit 1
}

echo "CLI pipeline OK (recall $RECALL, exact $RECALL2, quantized $RECALL3)"
