/// End-to-end integration: the full paper pipeline on downscaled data —
/// generate a workload, build the distributed index through the simulated
/// MPI runtime, run the batched search in all modes, compare against the
/// exact KD baseline, and feed the real routing plans into the performance
/// simulator.

#include <gtest/gtest.h>

#include <numeric>

#include "annsim/cluster/calibration.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/core/kd_engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/des/search_sim.hpp"

namespace annsim {
namespace {

struct Pipeline {
  data::Workload w = data::make_sift_like(6000, 100, 2020);
  data::KnnResults gt =
      data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  core::EngineConfig cfg;

  Pipeline() {
    cfg.n_workers = 16;
    cfg.n_probe = 4;
    cfg.replication = 2;
    cfg.threads_per_worker = 2;
    cfg.hnsw.M = 8;
    cfg.hnsw.ef_construction = 60;
    cfg.partitioner.vantage_candidates = 16;
    cfg.partitioner.vantage_sample = 64;
  }
};

const Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(EndToEnd, FullPipelineRecallAndExactBaseline) {
  const auto& p = pipeline();
  core::DistributedAnnEngine eng(&p.w.base, p.cfg);
  eng.build();
  core::SearchStats st;
  auto res = eng.search(p.w.queries, 10, 0, &st);
  const double recall = data::mean_recall(res, p.gt, 10);
  EXPECT_GT(recall, 0.8);

  core::KdEngineConfig kcfg;
  kcfg.n_workers = 16;
  core::DistributedKdEngine kd(&p.w.base, kcfg);
  kd.build();
  core::KdSearchStats kst;
  auto kres = kd.search(p.w.queries, 10, &kst);
  EXPECT_DOUBLE_EQ(data::mean_recall(kres, p.gt, 10), 1.0);

  // The Table III mechanism on real (downscaled) data: at 128-d, exact KD
  // search visits far more partitions per query than VP+HNSW probes.
  EXPECT_GT(kst.mean_partitions_per_query, st.mean_partitions_per_query);
}

TEST(EndToEnd, RealPlansDriveThePerformanceSimulator) {
  const auto& p = pipeline();
  core::DistributedAnnEngine eng(&p.w.base, p.cfg);
  eng.build();
  auto plans = eng.plan_queries(p.w.queries);

  const auto costs = cluster::default_costs();
  const auto sizes = eng.partition_sizes();
  std::vector<double> cost(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    cost[i] = costs.hnsw_query_seconds(sizes[i]);
  }

  des::SearchSimConfig sim;
  sim.n_cores = 16;
  sim.dim = p.w.base.dim();
  auto r = des::simulate_search(sim, plans, cost);
  EXPECT_EQ(r.total_jobs, std::uint64_t(p.w.queries.size()) * p.cfg.n_probe);
  EXPECT_GT(r.makespan_seconds, 0.0);
  // DES job counts mirror the functional engine's dispatch decisions:
  // totals match because both replay the same plans and round-robin.
  core::SearchStats st;
  (void)eng.search(p.w.queries, 10, 0, &st);
  EXPECT_EQ(st.total_jobs, r.total_jobs);
}

TEST(EndToEnd, ScalingShapeOnRealRouting) {
  // Build engines at 8 and 32 partitions over the same corpus; the DES
  // makespan must shrink substantially with more cores (Fig 3's shape).
  const auto& p = pipeline();
  const auto costs = cluster::default_costs();
  auto run_at = [&](std::size_t workers) {
    auto cfg = p.cfg;
    cfg.n_workers = workers;
    cfg.replication = 1;
    core::DistributedAnnEngine eng(&p.w.base, cfg);
    eng.build();
    auto plans = eng.plan_queries(p.w.queries);
    const auto sizes = eng.partition_sizes();
    std::vector<double> cost(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      // Model the paper-scale partition: 1B points over `workers` cores.
      cost[i] = costs.hnsw_query_seconds(1'000'000'000 / workers);
    }
    des::SearchSimConfig sim;
    sim.n_cores = workers;
    sim.dim = p.w.base.dim();
    return des::simulate_search(sim, plans, cost).makespan_seconds;
  };
  const double t8 = run_at(8);
  const double t32 = run_at(32);
  EXPECT_GT(t8 / t32, 2.0);
}

TEST(EndToEnd, RecallTimeTradeoffAcrossM) {
  // Fig 6's shape on real data: larger M gives equal-or-better recall.
  const auto& p = pipeline();
  double prev_recall = 0.0;
  for (std::size_t M : {4u, 16u}) {
    auto cfg = p.cfg;
    cfg.hnsw.M = M;
    cfg.hnsw.ef_construction = std::max<std::size_t>(2 * M, 60);
    core::DistributedAnnEngine eng(&p.w.base, cfg);
    eng.build();
    auto res = eng.search(p.w.queries, 10);
    const double recall = data::mean_recall(res, p.gt, 10);
    EXPECT_GE(recall + 0.03, prev_recall) << "M=" << M;  // noise tolerance
    prev_recall = recall;
  }
  EXPECT_GT(prev_recall, 0.8);
}

}  // namespace
}  // namespace annsim
