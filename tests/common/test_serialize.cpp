#include "annsim/common/serialize.hpp"

#include <gtest/gtest.h>

#include "annsim/common/types.hpp"

namespace annsim {
namespace {

TEST(Serialize, PodRoundTrip) {
  BinaryWriter w;
  w.write(std::int32_t{-7});
  w.write(3.25);
  w.write(std::uint64_t{1} << 40);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint64_t>(), std::uint64_t{1} << 40);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  BinaryWriter w;
  w.write_vector(std::vector<float>{1.f, 2.f, 3.f});
  w.write_vector(std::vector<std::uint8_t>{});
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_vector<float>(), (std::vector<float>{1.f, 2.f, 3.f}));
  EXPECT_TRUE(r.read_vector<std::uint8_t>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  BinaryWriter w;
  w.write_string("hello annsim");
  w.write_string("");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello annsim");
  EXPECT_EQ(r.read_string(), "");
}

TEST(Serialize, StructRoundTrip) {
  BinaryWriter w;
  w.write(Neighbor{1.5f, 42});
  BinaryReader r(w.bytes());
  const auto n = r.read<Neighbor>();
  EXPECT_FLOAT_EQ(n.dist, 1.5f);
  EXPECT_EQ(n.id, 42u);
}

TEST(Serialize, UnderflowThrows) {
  BinaryWriter w;
  w.write(std::uint16_t{5});
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.read<std::uint64_t>(), Error);
}

TEST(Serialize, VectorUnderflowThrows) {
  BinaryWriter w;
  w.write(std::uint64_t{1000});  // claims 1000 elements, provides none
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.read_vector<double>(), Error);
}

TEST(Serialize, RemainingTracksPosition) {
  BinaryWriter w;
  w.write(std::uint32_t{1});
  w.write(std::uint32_t{2});
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.read<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.exhausted());
  (void)r.read<std::uint32_t>();
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TakeMovesBuffer) {
  BinaryWriter w;
  w.write(std::uint8_t{9});
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(Serialize, InterleavedMixedPayload) {
  BinaryWriter w;
  w.write(std::uint8_t{1});
  w.write_vector(std::vector<std::uint64_t>{10, 20});
  w.write(float{2.5f});
  w.write_string("x");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read<std::uint8_t>(), 1u);
  EXPECT_EQ(r.read_vector<std::uint64_t>(), (std::vector<std::uint64_t>{10, 20}));
  EXPECT_FLOAT_EQ(r.read<float>(), 2.5f);
  EXPECT_EQ(r.read_string(), "x");
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace annsim
