#include "annsim/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace annsim {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto first = a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(99);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = parent.split(1);
  EXPECT_NE(c1.next(), c2.next());
  Rng c1_ref = Rng(99).split(1);
  c1_ref.next();  // align with c1 (already advanced once)
  EXPECT_EQ(c1.next(), c1_ref.next());
  EXPECT_EQ(Rng(99).split(1).next(), c1_again.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformBelowCoversRangeWithoutOverflow) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformBelowOne) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_below(1), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(8);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng r(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(10);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(4.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, UsableWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Rng r(11);
  std::shuffle(v.begin(), v.end(), r);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace annsim
