#include "annsim/common/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "annsim/common/rng.hpp"

namespace annsim {
namespace {

TEST(TopK, KeepsKSmallest) {
  TopK t(3);
  for (float d : {5.f, 1.f, 4.f, 2.f, 3.f}) t.push(d, GlobalId(d));
  auto out = t.take_sorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0].dist, 1.f);
  EXPECT_FLOAT_EQ(out[1].dist, 2.f);
  EXPECT_FLOAT_EQ(out[2].dist, 3.f);
}

TEST(TopK, WorstDistInfUntilFull) {
  TopK t(2);
  EXPECT_EQ(t.worst_dist(), std::numeric_limits<float>::infinity());
  t.push(1.f, 1);
  EXPECT_EQ(t.worst_dist(), std::numeric_limits<float>::infinity());
  t.push(2.f, 2);
  EXPECT_FLOAT_EQ(t.worst_dist(), 2.f);
  t.push(0.5f, 3);
  EXPECT_FLOAT_EQ(t.worst_dist(), 1.f);
}

TEST(TopK, PushReportsAcceptance) {
  TopK t(1);
  EXPECT_TRUE(t.push(2.f, 1));
  EXPECT_FALSE(t.push(3.f, 2));
  EXPECT_TRUE(t.push(1.f, 3));
}

TEST(TopK, RejectsZeroK) { EXPECT_THROW(TopK(0), Error); }

TEST(TopK, TieBreakById) {
  TopK t(2);
  t.push(1.f, 9);
  t.push(1.f, 3);
  t.push(1.f, 7);
  auto out = t.take_sorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 3u);
  EXPECT_EQ(out[1].id, 7u);
}

TEST(TopK, SortedIsNonDestructive) {
  TopK t(2);
  t.push(2.f, 1);
  t.push(1.f, 2);
  auto copy = t.sorted();
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TopK, MergePullsFromOtherResultSet) {
  TopK t(3);
  t.push(5.f, 1);
  std::vector<Neighbor> other{{1.f, 2}, {2.f, 3}, {9.f, 4}};
  t.merge(other);
  auto out = t.take_sorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_EQ(out[2].id, 1u);
}

/// Property: TopK over a random stream == sort + truncate.
class TopKProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopKProperty, MatchesSortTruncate) {
  const std::size_t k = GetParam();
  Rng rng(k * 31 + 1);
  std::vector<Neighbor> all;
  TopK t(k);
  for (int i = 0; i < 500; ++i) {
    const Neighbor n{rng.uniformf(), GlobalId(i)};
    all.push_back(n);
    t.push(n);
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min(all.size(), k));
  EXPECT_EQ(t.take_sorted(), all);
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 64, 1000));

TEST(MergeSortedKnn, BasicMerge) {
  std::vector<Neighbor> a{{1.f, 1}, {3.f, 3}};
  std::vector<Neighbor> b{{2.f, 2}, {4.f, 4}};
  auto out = merge_sorted_knn(a, b, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(out[2].id, 3u);
}

TEST(MergeSortedKnn, DropsDuplicateIds) {
  std::vector<Neighbor> a{{1.f, 7}, {3.f, 8}};
  std::vector<Neighbor> b{{1.f, 7}, {2.f, 9}};
  auto out = merge_sorted_knn(a, b, 4);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 7u);
  EXPECT_EQ(out[1].id, 9u);
  EXPECT_EQ(out[2].id, 8u);
}

TEST(MergeSortedKnn, HandlesEmptySides) {
  std::vector<Neighbor> a;
  std::vector<Neighbor> b{{2.f, 2}};
  EXPECT_EQ(merge_sorted_knn(a, b, 3).size(), 1u);
  EXPECT_EQ(merge_sorted_knn(b, a, 3).size(), 1u);
  EXPECT_TRUE(merge_sorted_knn(a, a, 3).empty());
}

TEST(MergeSortedKnn, TruncatesAtK) {
  std::vector<Neighbor> a{{1.f, 1}, {2.f, 2}, {3.f, 3}};
  std::vector<Neighbor> b{{1.5f, 4}, {2.5f, 5}};
  auto out = merge_sorted_knn(a, b, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 4u);
}

/// Property: merge_sorted_knn is associative enough for the RMA accumulate —
/// merging partitions in any order gives the same final top-k.
TEST(MergeSortedKnn, OrderIndependentAcrossPartitions) {
  Rng rng(123);
  const std::size_t k = 10;
  std::vector<std::vector<Neighbor>> parts(5);
  GlobalId id = 0;
  for (auto& p : parts) {
    for (int i = 0; i < 20; ++i) p.push_back({rng.uniformf(), id++});
    std::sort(p.begin(), p.end());
  }
  auto merge_order = [&](std::vector<std::size_t> order) {
    std::vector<Neighbor> acc;
    for (std::size_t idx : order) {
      acc = merge_sorted_knn(acc, parts[idx], k);
    }
    return acc;
  };
  const auto ref = merge_order({0, 1, 2, 3, 4});
  EXPECT_EQ(ref, merge_order({4, 3, 2, 1, 0}));
  EXPECT_EQ(ref, merge_order({2, 0, 4, 1, 3}));
}

}  // namespace
}  // namespace annsim
