/// Backoff phase contract: the first kSpins+kYields pauses never sleep (cheap
/// fast path), the sleep phase actually sleeps and grows toward max_sleep,
/// and reset() restarts the cheap phase. Timing asserts use generous one-sided
/// bounds only — CI machines stall, so upper bounds stay loose and lower
/// bounds come from the sleep durations the class guarantees.

#include <gtest/gtest.h>

#include <chrono>

#include "annsim/common/backoff.hpp"

namespace annsim {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::microseconds;

double elapsed_us(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

TEST(Backoff, SpinPhaseIsCheap) {
  Backoff b;
  const auto t0 = Clock::now();
  for (int i = 0; i < 64; ++i) b.pause();  // kSpins=64: pure cpu-relax
  // 64 relax instructions are sub-microsecond; 50ms allows four orders of
  // magnitude of scheduler noise. The yield phase is deliberately NOT
  // bounded here: sched_yield latency is unbounded on an oversubscribed
  // runner, so asserting its wall-clock would flake exactly when CI is
  // busiest.
  EXPECT_LT(elapsed_us(t0), 50'000.0);
  for (int i = 0; i < 16; ++i) b.pause();  // kYields=16: smoke, no bound
}

TEST(Backoff, SleepPhaseActuallySleeps) {
  Backoff b(microseconds(200));
  for (int i = 0; i < 80; ++i) b.pause();  // exhaust spin+yield phases
  const auto t0 = Clock::now();
  // Sleeps: 25, 50, 100, 200, 200 us — at least 575us of requested sleep.
  for (int i = 0; i < 5; ++i) b.pause();
  EXPECT_GE(elapsed_us(t0), 300.0);  // well above noise, below the 575 target
}

TEST(Backoff, MaxSleepCapsGrowth) {
  // With a tiny cap the doubling stops immediately: 14 capped sleeps request
  // 350us total, while uncapped doubling would request 25us * 2^14 ~ 410ms
  // for the tail alone — so the 200ms ceiling fails iff the cap is ignored,
  // with two orders of magnitude of load noise to spare.
  Backoff b(microseconds(25));
  for (int i = 0; i < 80; ++i) b.pause();
  const auto t0 = Clock::now();
  for (int i = 0; i < 14; ++i) b.pause();
  const double us = elapsed_us(t0);
  EXPECT_GE(us, 175.0);
  EXPECT_LT(us, 200'000.0);
}

TEST(Backoff, ResetRestartsTheCheapPhase) {
  Backoff b;
  for (int i = 0; i < 85; ++i) b.pause();  // deep into the sleep phase
  b.reset();
  const auto t0 = Clock::now();
  for (int i = 0; i < 64; ++i) b.pause();  // back inside the spin phase
  EXPECT_LT(elapsed_us(t0), 50'000.0);
}

TEST(Backoff, SleepApproxSleepsAtLeastTheRequest) {
  const auto t0 = Clock::now();
  sleep_approx(microseconds(500));
  EXPECT_GE(elapsed_us(t0), 450.0);
}

}  // namespace
}  // namespace annsim
