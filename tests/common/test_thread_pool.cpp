#include "annsim/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace annsim {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForChunksPartitionsRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(10, 110, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, WaitIdleWithNoJobsReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

}  // namespace
}  // namespace annsim
