#include <gtest/gtest.h>

#include <thread>

#include "annsim/common/log.hpp"
#include "annsim/common/timer.hpp"

namespace annsim {
namespace {

TEST(WallTimer, MonotoneNonNegative) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimer, MeasuresSleep) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 18.0);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(WallTimer, ResetRestarts) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.millis(), 9.0);
}

TEST(WallTimer, UnitConversions) {
  WallTimer t;
  const double s = t.seconds();
  EXPECT_NEAR(t.millis(), s * 1e3, 2.0);
  EXPECT_NEAR(t.micros() / 1e6, t.seconds(), 1e-2);
}

TEST(PhaseTimer, AccumulatesIntervals) {
  PhaseTimer p;
  for (int i = 0; i < 3; ++i) {
    p.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    p.stop();
  }
  EXPECT_EQ(p.intervals(), 3u);
  EXPECT_GE(p.total_seconds(), 0.012);
}

TEST(PhaseTimer, StopWithoutStartIsNoop) {
  PhaseTimer p;
  p.stop();
  EXPECT_EQ(p.intervals(), 0u);
  EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
}

TEST(PhaseTimer, DoubleStopCountsOnce) {
  PhaseTimer p;
  p.start();
  p.stop();
  p.stop();
  EXPECT_EQ(p.intervals(), 1u);
}

TEST(PhaseTimer, ResetClears) {
  PhaseTimer p;
  p.start();
  p.stop();
  p.reset();
  EXPECT_EQ(p.intervals(), 0u);
  EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
}

TEST(ScopedPhase, AddsOnDestruction) {
  PhaseTimer p;
  {
    ScopedPhase guard(p);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(p.intervals(), 1u);
  EXPECT_GT(p.total_seconds(), 0.003);
}

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  ANNSIM_INFO("suppressed at kOff: " << 42);  // must not crash
  set_log_level(before);
}

TEST(Log, MacroEvaluatesLazily) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 1;
  };
  ANNSIM_DEBUG("value " << expensive());
  EXPECT_EQ(evaluations, 0);  // below threshold: stream never built
  set_log_level(before);
}

}  // namespace
}  // namespace annsim
