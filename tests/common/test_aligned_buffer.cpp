#include "annsim/common/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace annsim {
namespace {

TEST(AlignedBuffer, DataIsSimdAligned) {
  AlignedBuffer<float> buf(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kSimdAlignment, 0u);
  EXPECT_EQ(buf.size(), 37u);
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer<float> buf(100);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.f);
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  AlignedBuffer<double> zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer<int> a(4);
  a[0] = 7;
  AlignedBuffer<int> b(a);
  b[0] = 9;
  EXPECT_EQ(a[0], 7);
  EXPECT_EQ(b[0], 9);
  EXPECT_NE(a.data(), b.data());
}

TEST(AlignedBuffer, CopyAssign) {
  AlignedBuffer<int> a(4), b(2);
  a[3] = 5;
  b = a;
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[3], 5);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(4);
  a[1] = 3;
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[1], 3);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, ResetReallocates) {
  AlignedBuffer<float> buf(8);
  buf[0] = 1.f;
  buf.reset(16);
  EXPECT_EQ(buf.size(), 16u);
  EXPECT_EQ(buf[0], 0.f);  // zero-filled again
}

TEST(AlignedBuffer, SpanViewsWholeBuffer) {
  AlignedBuffer<int> buf(5);
  auto s = buf.span();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.data(), buf.data());
}

TEST(AlignedBuffer, SelfAssignIsNoop) {
  AlignedBuffer<int> a(3);
  a[0] = 4;
  a = *&a;
  EXPECT_EQ(a[0], 4);
  EXPECT_EQ(a.size(), 3u);
}

}  // namespace
}  // namespace annsim
