#include "annsim/common/stats.hpp"

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"

namespace annsim {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.0);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{7};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 50), Error);
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), Error);
  EXPECT_THROW(percentile(v, 101), Error);
}

TEST(Median, OddAndEven) {
  std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Summary, FiveNumbers) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.count, 9u);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
}

TEST(Summary, ToStringMentionsMean) {
  std::vector<double> v{1, 2, 3};
  EXPECT_NE(to_string(summarize(v)).find("mean"), std::string::npos);
}

TEST(Histogram, EmptyReturnsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.p999(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleElementIsEveryPercentile) {
  Histogram h;
  h.add(7.25);
  EXPECT_EQ(h.count(), 1u);
  for (double p : {0.0, 1.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 7.25) << "p=" << p;
  }
}

TEST(Histogram, ExtremesAreExact) {
  Histogram h(1e-3, 1e3, 1.5);  // coarse buckets on purpose
  for (double x : {0.017, 0.4, 3.0, 11.0, 250.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.017);
  EXPECT_DOUBLE_EQ(h.percentile(100), 250.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.017);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
}

TEST(Histogram, RejectsBadPercentileAndBadLayout) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW(h.percentile(-0.1), Error);
  EXPECT_THROW(h.percentile(100.1), Error);
  EXPECT_THROW(Histogram(0.0, 1.0), Error);
  EXPECT_THROW(Histogram(1.0, 1.0), Error);
  EXPECT_THROW(Histogram(1.0, 2.0, 1.0), Error);
}

TEST(Histogram, BoundedRelativeErrorVsExactPercentile) {
  const double growth = 1.08;
  Histogram h(1e-4, 1e5, growth);
  Rng rng(7);
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(1.0 / 3.0) + 0.01;  // latency-like tail
    h.add(x);
    exact.push_back(x);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double e = percentile(exact, p);
    // One bucket of slack: the estimate and the exact value may sit on
    // opposite ends of the bucket containing the target rank.
    EXPECT_NEAR(h.percentile(p), e, e * (growth - 1.0) * 1.5 + 1e-9) << "p=" << p;
  }
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) h.add(rng.uniform(0.5, 80.0));
  double prev = h.percentile(0);
  for (double p = 1; p <= 100; p += 1) {
    const double cur = h.percentile(p);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(Histogram, UnderflowAndOverflowLandInExtremeBuckets) {
  Histogram h(1.0, 100.0, 2.0);
  h.add(1e-9);   // below lo
  h.add(1e9);    // above hi
  h.add(-3.0);   // negative: underflow, interpolates against exact min
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.percentile(0), -3.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1e9);
  // Everything in between stays within the observed range.
  const double mid = h.percentile(50);
  EXPECT_GE(mid, -3.0);
  EXPECT_LE(mid, 1e9);
}

TEST(Histogram, MergeMatchesSingleStream) {
  Histogram whole, a, b;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(0.001, 50.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (double p : {5.0, 50.0, 95.0, 99.9}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), whole.percentile(p)) << "p=" << p;
  }
  Histogram other(0.5, 2.0, 1.5);
  EXPECT_THROW(a.merge(other), Error);
}

}  // namespace
}  // namespace annsim
