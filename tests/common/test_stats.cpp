#include "annsim/common/stats.hpp"

#include <gtest/gtest.h>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"

namespace annsim {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.0);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{7};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 50), Error);
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), Error);
  EXPECT_THROW(percentile(v, 101), Error);
}

TEST(Median, OddAndEven) {
  std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Summary, FiveNumbers) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.count, 9u);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
}

TEST(Summary, ToStringMentionsMean) {
  std::vector<double> v{1, 2, 3};
  EXPECT_NE(to_string(summarize(v)).find("mean"), std::string::npos);
}

}  // namespace
}  // namespace annsim
