/// Quantized checkpoints: SQ8 segments through the durable store.
///  * a quantized segmented image round-trips byte-identically and the
///    immutable seg_<id>.bin skip logic still applies (quantized segments
///    are frozen-at-freeze, never rewritten);
///  * a flipped byte inside a quantized segment's codebook region fails the
///    checksum — a corrupted codec can never decode into a silently wrong
///    index;
///  * a dead worker hosting quantized replicas heals back from the
///    checkpoint store to full coverage, bit-identical to a fault-free run.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/recovery/checkpoint.hpp"
#include "annsim/segment/segmented_index.hpp"

namespace annsim::recovery {
namespace {

namespace fs = std::filesystem;

segment::SegmentedParams quant_params() {
  segment::SegmentedParams p;
  p.hnsw.M = 8;
  p.hnsw.ef_construction = 48;
  p.delta_capacity = 16;
  p.quantize_frozen = true;
  p.float_cache_fraction = 0.05;
  return p;
}

CheckpointMeta meta_of(const segment::SegmentedIndex& idx, std::uint32_t pid) {
  CheckpointMeta meta;
  meta.partition = pid;
  meta.dim = idx.dim();
  meta.count = idx.size();
  meta.index_kind = 3;
  return meta;
}

CheckpointStore::SaveReport save_parts(const CheckpointStore& store,
                                       const segment::SegmentedIndex& idx,
                                       std::uint32_t pid) {
  const auto parts = idx.snapshot_parts();
  return store.save_segmented(meta_of(idx, pid), parts.header, parts.segments,
                              parts.delta);
}

class QuantCheckpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("annsim_qckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(QuantCheckpoint, QuantizedImageRoundTripsByteIdentically) {
  auto w = data::make_sift_like(250, 4, 71);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params());
  idx.insert(w.queries.row_span(0), GlobalId(9000));
  ASSERT_TRUE(idx.erase(GlobalId(3)));

  CheckpointStore store(dir_);
  const auto rep = save_parts(store, idx, 4);
  EXPECT_EQ(rep.segments_written, 1u);

  ASSERT_TRUE(store.has(4));
  const auto loaded = store.load(4);
  EXPECT_TRUE(loaded.data_bytes.empty());  // vectors live inside the image
  EXPECT_EQ(loaded.index_bytes, idx.to_bytes());
  const auto clone = segment::SegmentedIndex::from_bytes(loaded.index_bytes);
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(clone->params().quantize_frozen);
  EXPECT_EQ(clone->stats().quant_rows, idx.stats().quant_rows);
  EXPECT_TRUE(clone->contains(GlobalId(9000)));
  EXPECT_FALSE(clone->contains(GlobalId(3)));
  // The quantized blob earns its keep: far smaller than the float rows.
  EXPECT_LT(loaded.index_bytes.size(),
            idx.size() * idx.dim() * sizeof(float));
}

TEST_F(QuantCheckpoint, QuantizedSegmentsStayImmutableAcrossResaves) {
  auto w = data::make_sift_like(150, 4, 72);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params());
  CheckpointStore store(dir_);

  const auto first = save_parts(store, idx, 0);
  EXPECT_EQ(first.segments_written, 1u);

  // Delta-only mutation: the durable quantized segment is skipped, proving
  // its bytes never went stale (quantize-at-freeze, never rewritten).
  ASSERT_TRUE(idx.erase(GlobalId(7)));
  const auto second = save_parts(store, idx, 0);
  EXPECT_EQ(second.segments_written, 0u);
  EXPECT_EQ(second.segments_skipped, 1u);

  // A minor compaction freezes (and quantizes) the delta into one NEW
  // segment: exactly that one is written.
  idx.insert(w.queries.row_span(1), GlobalId(9100));
  ASSERT_TRUE(idx.compact());
  const auto third = save_parts(store, idx, 0);
  EXPECT_EQ(third.segments_written, 1u);
  EXPECT_EQ(third.segments_skipped, 1u);
  EXPECT_EQ(store.load(0).index_bytes, idx.to_bytes());
}

TEST_F(QuantCheckpoint, CodebookByteFlipFailsChecksum) {
  auto w = data::make_sift_like(120, 4, 73);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()), quant_params());
  CheckpointStore store(dir_);
  save_parts(store, idx, 8);
  ASSERT_NO_THROW((void)store.load(8));

  fs::path seg_path;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "partition_8")) {
    if (entry.path().filename().string().rfind("seg_", 0) == 0) {
      seg_path = entry.path();
    }
  }
  ASSERT_FALSE(seg_path.empty());
  // Flip one byte in the codebook region (the codec's mins/scales live right
  // after the magic + row count at the head of the quantized blob). The
  // store-level checksum must catch it before any decode runs.
  {
    std::fstream f(seg_path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(48);
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x20);
    f.seekp(48);
    f.write(&c, 1);
  }
  EXPECT_THROW((void)store.load(8), Error);
}

TEST_F(QuantCheckpoint, HealRestoresQuantizedReplicaFromCheckpoint) {
  auto w = data::make_sift_like(800, 25, 74);
  core::EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.replication = 2;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 8;
  cfg.hnsw.ef_construction = 48;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 32;
  cfg.local_index = core::LocalIndexKind::kSegmented;
  cfg.quantize_frozen = true;
  cfg.float_cache_fraction = 0.05;

  // Fault-free baseline with the same quantized config.
  data::KnnResults clean;
  {
    core::DistributedAnnEngine eng(&w.base, cfg);
    eng.build();
    clean = eng.search(w.queries, 10);
  }

  cfg.checkpoint_dir = dir_;
  cfg.result_timeout_ms = 250.0;
  cfg.fault.seed = 90;
  // Worker 1 (runtime rank 2) delivers three results, then crashes.
  cfg.fault.kills.push_back({/*rank=*/2, /*after_ops=*/3, mpi::kNeverFires});
  core::DistributedAnnEngine eng(&w.base, cfg);
  eng.build();
  CheckpointStore store(dir_);
  EXPECT_EQ(store.partitions().size(), cfg.n_workers);

  core::SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  EXPECT_FALSE(eng.health().alive(1));

  const auto heal = eng.heal();
  EXPECT_EQ(heal.workers_revived, 1u);
  EXPECT_EQ(heal.replicas_restored_from_checkpoint, 2u);
  EXPECT_TRUE(heal.fully_healed());

  // Full coverage and bit-identical answers: the healed quantized replicas
  // carry the same codes, codebooks, and re-rank caches as the originals.
  EXPECT_TRUE(eng.health().all_alive());
  core::SearchStats st2;
  const auto res = eng.search(w.queries, 10, 0, &st2);
  EXPECT_EQ(st2.degraded_queries, 0u);
  ASSERT_EQ(res.size(), clean.size());
  for (std::size_t q = 0; q < clean.size(); ++q) {
    EXPECT_EQ(res[q], clean[q]) << "query " << q;
  }
  const auto cs = eng.compression_stats();
  EXPECT_EQ(cs.quant_rows, 800u * cfg.replication);
  EXPECT_GT(cs.compression_ratio(), 3.0);
}

}  // namespace
}  // namespace annsim::recovery
