/// Write-ahead-log unit tests: the frame format, the crash-recovery scan,
/// and the durability primitives underneath it. The contract being pinned:
///  * a committed frame round-trips byte-exact through read_tail();
///  * recover() truncates a torn / short / bit-flipped tail at the first bad
///    frame and never discards a frame that a successful commit() covered;
///  * an injected disk fault fails the commit (no ack), crashes the log, and
///    recover() brings it back accepting appends;
///  * rotation splits the stream across `wal_<first_lsn>.log` files and
///    gc(watermark) drops exactly the closed files a checkpoint covers;
///  * DurableFile::write_atomic leaves either the old or the new bytes,
///    never a prefix, and no staging sibling behind.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "annsim/mpi/fault.hpp"
#include "annsim/recovery/durable_file.hpp"
#include "annsim/recovery/write_log.hpp"

namespace annsim::recovery {
namespace {

namespace fs = std::filesystem;

class WriteLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("annsim_wal_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::vector<fs::path> log_files() const {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().filename().string().rfind("wal_", 0) == 0) {
        out.push_back(entry.path());
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// XOR one byte at `offset` from the end of the last log file in place.
  void flip_tail_byte(std::uint64_t offset_from_end) const {
    const auto files = log_files();
    ASSERT_FALSE(files.empty());
    const fs::path& p = files.back();
    const auto size = fs::file_size(p);
    ASSERT_GT(size, offset_from_end);
    std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(std::streamoff(size - 1 - offset_from_end));
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x10);
    f.seekp(std::streamoff(size - 1 - offset_from_end));
    f.write(&c, 1);
  }

  std::string dir_;
};

std::vector<float> vec_of(float a, float b) { return {a, b}; }

TEST_F(WriteLogTest, Crc32cMatchesTheCastagnoliReference) {
  // The canonical check vector for CRC32C: "123456789" -> 0xE3069283. Pin it
  // so a silent polynomial or init/final-xor change cannot invalidate every
  // log on disk undetected.
  const std::string s = "123456789";
  std::vector<std::byte> b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) b[i] = std::byte(s[i]);
  EXPECT_EQ(crc32c(b), 0xE3069283u);
  EXPECT_EQ(crc32c({}), 0u);
}

TEST_F(WriteLogTest, Crc32cSingleByteAndRfc3720Vectors) {
  // Single-byte inputs exercise the table edges the 9-byte vector never
  // touches; the 32-zero vector is RFC 3720's iSCSI check value.
  const auto one = [](unsigned char c) {
    const std::byte b{c};
    return crc32c({&b, 1});
  };
  EXPECT_EQ(one('a'), 0xC1D04330u);
  EXPECT_EQ(one(0x00), 0x527D5351u);
  EXPECT_EQ(one(0xFF), 0xFF000000u);
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST_F(WriteLogTest, FrameEndingExactlyOnThe4KiBBoundaryRoundTrips) {
  // Land the last committed byte exactly on a page boundary — the classic
  // off-by-one zone for torn-tail scans. Layout arithmetic, kept in step
  // with the frame format: file header 8, frame overhead 8 (crc + len),
  // insert payload 25 + 4*dim (lsn u64, type u8, partition u32, id u64,
  // n_floats u32), delete payload 25.
  const std::size_t kDim = 989;  // 8 + (33 + 4*989) + 3*33 == 4096
  WriteLog log(dir_);
  log.append_insert(1, PartitionId(0), GlobalId(10),
                    std::vector<float>(kDim, 0.25f));
  log.append_delete(2, PartitionId(0), GlobalId(11));
  log.append_delete(3, PartitionId(0), GlobalId(12));
  log.append_delete(4, PartitionId(0), GlobalId(13));
  ASSERT_TRUE(log.commit());
  const auto files = log_files();
  ASSERT_EQ(files.size(), 1u);
  ASSERT_EQ(fs::file_size(files.front()), 4096u)
      << "frame layout changed: retune kDim so the commit ends on the page";

  // A fresh open rescans the file; the boundary-ending tail must be kept
  // whole and appends must continue past it.
  WriteLog reopened(dir_);
  const auto tail = reopened.read_tail(0);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].vec.size(), kDim);
  EXPECT_EQ(reopened.last_synced_lsn(), 4u);
  reopened.append_insert(5, PartitionId(1), GlobalId(14), vec_of(1.0f, 2.0f));
  ASSERT_TRUE(reopened.commit());
  EXPECT_EQ(reopened.read_tail(0).size(), 5u);
}

TEST_F(WriteLogTest, FrameSpanningThe4KiBBoundaryRecoversFromATornTail) {
  // One frame straddling the page boundary (payload alone is a full page),
  // then a small frame behind it. Tearing the small frame must truncate to
  // the straddling frame's end — a mid-page cut, not a page-aligned one.
  WriteLog log(dir_);
  log.append_insert(1, PartitionId(2), GlobalId(20),
                    std::vector<float>(1024, -0.5f));
  ASSERT_TRUE(log.commit());
  log.append_insert(2, PartitionId(2), GlobalId(21), vec_of(3.0f, 4.0f));
  ASSERT_TRUE(log.commit());

  flip_tail_byte(0);  // corrupt the last frame's final payload byte
  WriteLog recovered(dir_);
  const auto tail = recovered.read_tail(0);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].id, GlobalId(20));
  EXPECT_EQ(tail[0].vec.size(), 1024u);
}

TEST_F(WriteLogTest, CommittedFramesRoundTrip) {
  WriteLog log(dir_);
  log.append_insert(1, PartitionId(2), GlobalId(100), vec_of(0.5f, -1.25f));
  log.append_delete(2, PartitionId(0), GlobalId(7));
  log.append_compact_mark(3, PartitionId(1));
  EXPECT_EQ(log.last_synced_lsn(), 0u);  // nothing durable before commit
  ASSERT_TRUE(log.commit());
  EXPECT_EQ(log.last_synced_lsn(), 3u);

  const auto tail = log.read_tail(0);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].lsn, 1u);
  EXPECT_EQ(tail[0].type, WalRecordType::kInsert);
  EXPECT_EQ(tail[0].partition, PartitionId(2));
  EXPECT_EQ(tail[0].id, GlobalId(100));
  EXPECT_EQ(tail[0].vec, vec_of(0.5f, -1.25f));
  EXPECT_EQ(tail[1].lsn, 2u);
  EXPECT_EQ(tail[1].type, WalRecordType::kDelete);
  EXPECT_TRUE(tail[1].vec.empty());
  EXPECT_EQ(tail[2].type, WalRecordType::kCompactMark);

  // read_tail is exclusive of after_lsn.
  EXPECT_EQ(log.read_tail(1).size(), 2u);
  EXPECT_EQ(log.read_tail(3).size(), 0u);
}

TEST_F(WriteLogTest, ReopenRecoversAndAppendsContinue) {
  {
    WriteLog log(dir_);
    log.append_insert(1, PartitionId(0), GlobalId(1), vec_of(1, 2));
    ASSERT_TRUE(log.commit());
  }
  WriteLog reopened(dir_);
  EXPECT_EQ(reopened.last_synced_lsn(), 1u);
  EXPECT_EQ(reopened.truncated_tail_bytes(), 0u);
  reopened.append_insert(2, PartitionId(0), GlobalId(2), vec_of(3, 4));
  ASSERT_TRUE(reopened.commit());
  EXPECT_EQ(reopened.read_tail(0).size(), 2u);
}

TEST_F(WriteLogTest, FlippedTailByteIsTruncatedKeepingEarlierFrames) {
  {
    WriteLog log(dir_);
    log.append_insert(1, PartitionId(0), GlobalId(1), vec_of(1, 2));
    log.append_insert(2, PartitionId(0), GlobalId(2), vec_of(3, 4));
    ASSERT_TRUE(log.commit());
  }
  // Flip a byte inside the last frame's payload: size is unchanged, so only
  // the CRC can catch it.
  flip_tail_byte(2);
  WriteLog reopened(dir_);
  EXPECT_GT(reopened.truncated_tail_bytes(), 0u);
  const auto tail = reopened.read_tail(0);
  ASSERT_EQ(tail.size(), 1u);  // frame 2 gone, frame 1 intact
  EXPECT_EQ(tail[0].lsn, 1u);
  EXPECT_EQ(reopened.last_synced_lsn(), 1u);
}

TEST_F(WriteLogTest, ShortTailIsTruncatedKeepingEarlierFrames) {
  {
    WriteLog log(dir_);
    log.append_insert(1, PartitionId(0), GlobalId(1), vec_of(1, 2));
    log.append_insert(2, PartitionId(0), GlobalId(2), vec_of(3, 4));
    ASSERT_TRUE(log.commit());
  }
  const auto files = log_files();
  ASSERT_EQ(files.size(), 1u);
  // Chop the last 5 bytes: a power-loss prefix of the final frame.
  fs::resize_file(files[0], fs::file_size(files[0]) - 5);
  WriteLog reopened(dir_);
  EXPECT_GT(reopened.truncated_tail_bytes(), 0u);
  ASSERT_EQ(reopened.read_tail(0).size(), 1u);
  EXPECT_EQ(reopened.last_synced_lsn(), 1u);
  // The truncated tail is gone from disk too: appends after recovery start
  // at the last valid frame, and a re-scan finds nothing more to drop.
  reopened.append_insert(2, PartitionId(0), GlobalId(2), vec_of(5, 6));
  ASSERT_TRUE(reopened.commit());
  WriteLog again(dir_);
  EXPECT_EQ(again.truncated_tail_bytes(), 0u);
  EXPECT_EQ(again.read_tail(0).size(), 2u);
}

TEST_F(WriteLogTest, InjectedFaultFailsCommitAndRecoverRestoresService) {
  for (const auto kind :
       {mpi::DiskFaultKind::kCrashAtLsn, mpi::DiskFaultKind::kShortWrite,
        mpi::DiskFaultKind::kTornWrite, mpi::DiskFaultKind::kFlipByte}) {
    fs::remove_all(dir_);
    WriteLog log(dir_);
    log.append_insert(1, PartitionId(0), GlobalId(1), vec_of(1, 2));
    ASSERT_TRUE(log.commit());

    log.append_insert(2, PartitionId(0), GlobalId(2), vec_of(3, 4));
    const bool ok = log.commit([&](std::uint64_t lsn) {
      return lsn == 2 ? std::optional(kind) : std::nullopt;
    });
    EXPECT_FALSE(ok) << int(kind);  // the caller must not ack
    EXPECT_TRUE(log.crashed()) << int(kind);
    EXPECT_EQ(log.last_synced_lsn(), 1u) << int(kind);

    // A crashed log drops appends — the worker is dead, nothing is acked.
    log.append_insert(3, PartitionId(0), GlobalId(3), vec_of(5, 6));
    EXPECT_FALSE(log.commit()) << int(kind);

    // Heal-time recovery: truncate whatever the fault left behind and start
    // accepting appends again. Frame 1 always survives (it was acked).
    (void)log.recover();
    EXPECT_FALSE(log.crashed()) << int(kind);
    auto tail = log.read_tail(0);
    ASSERT_GE(tail.size(), 1u) << int(kind);
    EXPECT_EQ(tail[0].lsn, 1u) << int(kind);
    log.append_insert(4, PartitionId(0), GlobalId(4), vec_of(7, 8));
    EXPECT_TRUE(log.commit()) << int(kind);
    EXPECT_EQ(log.last_synced_lsn(), 4u) << int(kind);
  }
}

TEST_F(WriteLogTest, FaultBeforeTheFrameKeepsEarlierFramesOfTheSameCommit) {
  WriteLog log(dir_);
  log.append_insert(1, PartitionId(0), GlobalId(1), vec_of(1, 2));
  log.append_insert(2, PartitionId(0), GlobalId(2), vec_of(3, 4));
  log.append_insert(3, PartitionId(0), GlobalId(3), vec_of(5, 6));
  const bool ok = log.commit([&](std::uint64_t lsn) {
    return lsn == 3 ? std::optional(mpi::DiskFaultKind::kTornWrite)
                    : std::nullopt;
  });
  EXPECT_FALSE(ok);
  (void)log.recover();
  // Frames 1 and 2 preceded the faulted frame and were written + synced on
  // the fault path: the batch fails as a unit (no ack) but recovery keeps
  // every valid prefix frame.
  const auto tail = log.read_tail(0);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[1].lsn, 2u);
}

TEST_F(WriteLogTest, RotationSplitsFilesAndReadTailSpansThem) {
  WalOptions opt;
  opt.segment_bytes = 4096;  // the floor; a dim-512 insert frame is ~2 KiB
  const std::vector<float> fat(512, 1.5f);
  WriteLog log(dir_, opt);
  for (std::uint64_t lsn = 1; lsn <= 12; ++lsn) {
    log.append_insert(lsn, PartitionId(0), GlobalId(lsn), fat);
    ASSERT_TRUE(log.commit());
  }
  EXPECT_GT(log_files().size(), 1u);
  const auto tail = log.read_tail(0);
  ASSERT_EQ(tail.size(), 12u);
  for (std::uint64_t lsn = 1; lsn <= 12; ++lsn) {
    EXPECT_EQ(tail[lsn - 1].lsn, lsn);
  }
  // Reopen across the rotated set: the scan stitches the same stream.
  WriteLog reopened(dir_, opt);
  EXPECT_EQ(reopened.last_synced_lsn(), 12u);
  EXPECT_EQ(reopened.read_tail(6).size(), 6u);
}

TEST_F(WriteLogTest, GcDropsOnlyClosedFullyCoveredFiles) {
  WalOptions opt;
  opt.segment_bytes = 4096;
  const std::vector<float> fat(512, 1.5f);
  WriteLog log(dir_, opt);
  for (std::uint64_t lsn = 1; lsn <= 12; ++lsn) {
    log.append_insert(lsn, PartitionId(0), GlobalId(lsn), fat);
    ASSERT_TRUE(log.commit());
  }
  const std::size_t before = log_files().size();
  ASSERT_GT(before, 2u);

  // Watermark 0: nothing is covered, nothing is dropped.
  EXPECT_EQ(log.gc(0), 0u);
  EXPECT_EQ(log_files().size(), before);

  // A mid-stream watermark drops the closed files whose every record is
  // covered; records past the watermark all survive.
  const std::size_t dropped = log.gc(6);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(log_files().size(), before - dropped);
  const auto tail = log.read_tail(6);
  ASSERT_EQ(tail.size(), 6u);
  EXPECT_EQ(tail[0].lsn, 7u);

  // Covering everything still keeps the active file: the append cursor (and
  // the log's idea of last_synced_lsn) lives there.
  (void)log.gc(12);
  EXPECT_GE(log_files().size(), 1u);
  EXPECT_EQ(log.last_synced_lsn(), 12u);
  log.append_insert(13, PartitionId(0), GlobalId(13), vec_of(1, 2));
  EXPECT_TRUE(log.commit());
}

TEST_F(WriteLogTest, BadHeaderMagicInvalidatesTheFile) {
  {
    WriteLog log(dir_);
    log.append_insert(1, PartitionId(0), GlobalId(1), vec_of(1, 2));
    ASSERT_TRUE(log.commit());
  }
  const auto files = log_files();
  ASSERT_EQ(files.size(), 1u);
  {
    std::fstream f(files[0], std::ios::binary | std::ios::in | std::ios::out);
    const char junk[4] = {'J', 'U', 'N', 'K'};
    f.write(junk, 4);
  }
  WriteLog reopened(dir_);
  EXPECT_EQ(reopened.read_tail(0).size(), 0u);
  EXPECT_EQ(reopened.last_synced_lsn(), 0u);
}

// ---- DurableFile ----

TEST_F(WriteLogTest, WriteAtomicReplacesWholeFileAndLeavesNoStaging) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/blob.bin";
  std::vector<std::byte> v1(64, std::byte{0xAA});
  std::vector<std::byte> v2(32, std::byte{0xBB});
  DurableFile::write_atomic(path, v1);
  EXPECT_EQ(fs::file_size(path), 64u);
  DurableFile::write_atomic(path, v2);
  EXPECT_EQ(fs::file_size(path), 32u);
  std::ifstream in(path, std::ios::binary);
  char c = 0;
  in.read(&c, 1);
  EXPECT_EQ(std::byte(c), std::byte{0xBB});
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().rfind(".", 0),
              std::string::npos)
        << "staging sibling left behind: " << entry.path();
  }
}

TEST_F(WriteLogTest, AppendSyncSizeLifecycle) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/appendlog.bin";
  auto f = DurableFile::open_append(path);
  ASSERT_TRUE(f.is_open());
  std::vector<std::byte> chunk(16, std::byte{0x01});
  f.append(chunk);
  f.append(chunk);
  EXPECT_EQ(f.size(), 32u);
  f.sync();
  f.close();
  EXPECT_FALSE(f.is_open());
  // Reopen appends at the end, not over.
  auto g = DurableFile::open_append(path);
  g.append(chunk);
  EXPECT_EQ(g.size(), 48u);
}

}  // namespace
}  // namespace annsim::recovery
