#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/recovery/checkpoint.hpp"
#include "annsim/recovery/health.hpp"

namespace annsim::recovery {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> some_bytes(std::size_t n, std::uint8_t salt) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::byte(std::uint8_t(i * 31 + salt));
  }
  return out;
}

/// Expect `fn` to throw annsim::Error whose message contains `needle`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

class Checkpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("annsim_ckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Path of one payload/manifest file of a committed partition.
  [[nodiscard]] fs::path file_of(std::uint32_t pid, const char* name) const {
    return fs::path(dir_) / ("partition_" + std::to_string(pid)) / name;
  }

  std::string dir_;
};

TEST_F(Checkpoint, RoundTripPreservesBytesAndMeta) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 3;
  meta.dim = 16;
  meta.count = 97;
  meta.index_kind = 1;
  const auto data = some_bytes(1024, 7);
  const auto index = some_bytes(333, 9);
  store.save(meta, data, index);

  EXPECT_TRUE(store.has(3));
  EXPECT_FALSE(store.has(4));
  auto loaded = store.load(3);
  EXPECT_EQ(loaded.meta.partition, 3u);
  EXPECT_EQ(loaded.meta.dim, 16u);
  EXPECT_EQ(loaded.meta.count, 97u);
  EXPECT_EQ(loaded.meta.index_kind, 1u);
  EXPECT_EQ(loaded.data_bytes, data);
  EXPECT_EQ(loaded.index_bytes, index);
}

TEST_F(Checkpoint, PartitionsListsCommittedSnapshotsAscending) {
  CheckpointStore store(dir_);
  for (std::uint32_t pid : {5u, 0u, 12u}) {
    CheckpointMeta meta;
    meta.partition = pid;
    store.save(meta, some_bytes(8, std::uint8_t(pid)), some_bytes(4, 1));
  }
  EXPECT_EQ(store.partitions(), (std::vector<std::uint32_t>{0, 5, 12}));
}

TEST_F(Checkpoint, SaveReplacesAtomically) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 1;
  store.save(meta, some_bytes(64, 1), some_bytes(64, 2));
  // Overwrite with different payloads: the old snapshot is fully replaced
  // and no staging directory is left behind.
  const auto data2 = some_bytes(128, 3);
  const auto index2 = some_bytes(32, 4);
  store.save(meta, data2, index2);

  auto loaded = store.load(1);
  EXPECT_EQ(loaded.data_bytes, data2);
  EXPECT_EQ(loaded.index_bytes, index2);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().rfind(".", 0), std::string::npos)
        << "staging left behind: " << entry.path();
  }
}

TEST_F(Checkpoint, MissingManifestFailsWithSpecificError) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 2;
  store.save(meta, some_bytes(16, 1), some_bytes(16, 2));
  fs::remove(file_of(2, "manifest.bin"));
  EXPECT_FALSE(store.has(2));
  expect_error_containing([&] { (void)store.load(2); },
                          "checkpoint manifest missing for partition 2");
}

TEST_F(Checkpoint, TruncatedFileFailsWithSpecificError) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 4;
  store.save(meta, some_bytes(100, 1), some_bytes(50, 2));
  fs::resize_file(file_of(4, "data.bin"), 60);
  expect_error_containing([&] { (void)store.load(4); },
                          "checkpoint file data.bin truncated for partition 4");
}

TEST_F(Checkpoint, FlippedByteFailsChecksum) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 6;
  store.save(meta, some_bytes(100, 1), some_bytes(50, 2));
  {
    // Flip one bit in the middle of index.bin; the size stays right, so only
    // the checksum can catch it.
    std::fstream f(file_of(6, "index.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(25);
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x40);
    f.seekp(25);
    f.write(&c, 1);
  }
  expect_error_containing(
      [&] { (void)store.load(6); },
      "checkpoint checksum mismatch in index.bin for partition 6");
}

TEST_F(Checkpoint, BadMagicRejected) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 7;
  store.save(meta, some_bytes(10, 1), some_bytes(10, 2));
  {
    std::fstream f(file_of(7, "manifest.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    const char junk[4] = {'J', 'U', 'N', 'K'};
    f.write(junk, 4);
  }
  expect_error_containing([&] { (void)store.load(7); },
                          "bad checkpoint manifest magic");
}

TEST_F(Checkpoint, ChecksumIsStable) {
  // FNV-1a with the standard offset/prime: pin a known vector so a silent
  // algorithm change cannot invalidate old checkpoints undetected.
  const std::string s = "annsim";
  std::vector<std::byte> b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) b[i] = std::byte(s[i]);
  EXPECT_EQ(checksum64({}), 0xcbf29ce484222325ULL);
  EXPECT_NE(checksum64(b), checksum64({}));
  EXPECT_EQ(checksum64(b), checksum64(b));
}

TEST_F(Checkpoint, HealReportRendering) {
  HealReport r;
  r.workers_revived = 1;
  r.replicas_restored_from_checkpoint = 2;
  r.replicas_restored_from_peer = 1;
  r.seconds = 0.25;
  EXPECT_EQ(r.replicas_restored(), 3u);
  EXPECT_TRUE(r.fully_healed());
  const auto s = to_string(r);
  EXPECT_NE(s.find("1 workers revived"), std::string::npos) << s;
  EXPECT_NE(s.find("3 replicas restored"), std::string::npos) << s;
  r.replicas_unrecoverable = 2;
  EXPECT_FALSE(r.fully_healed());
}

}  // namespace
}  // namespace annsim::recovery
